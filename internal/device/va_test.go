package device

import (
	"math/rand"
	"testing"

	"vibguard/internal/acoustics"
	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
)

func TestWearableProfiles(t *testing.T) {
	for _, w := range []*Wearable{NewFossilGen5(), NewMoto360()} {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
	if NewFossilGen5().Name == NewMoto360().Name {
		t.Error("wearables share a name")
	}
}

func TestWearableSenseVibration(t *testing.T) {
	w := NewFossilGen5()
	rng := rand.New(rand.NewSource(1))
	audio := dsp.Mix(dsp.Tone(300, 0.1, 1.0, 16000), dsp.Tone(2000, 0.1, 1.0, 16000))
	vib, err := w.SenseVibration(audio, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(vib) < 150 || len(vib) > 250 {
		t.Errorf("vibration length = %d, want ~200 for 1s", len(vib))
	}
	if dsp.RMS(vib) == 0 {
		t.Error("silent vibration")
	}
}

func TestWearableRecord(t *testing.T) {
	w := NewFossilGen5()
	rng := rand.New(rand.NewSource(2))
	rec, err := w.Record(dsp.Tone(500, 0.05, 0.5, 16000), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 8000 {
		t.Errorf("recording length = %d", len(rec))
	}
}

func TestVADeviceProfiles(t *testing.T) {
	devices := AllVADevices()
	if len(devices) != 4 {
		t.Fatalf("devices = %d, want 4", len(devices))
	}
	for _, d := range devices {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	// Susceptibility ordering: thresholds must rise Google Home -> iPhone.
	for i := 1; i < len(devices); i++ {
		if devices[i].WakeThresholdDB <= devices[i-1].WakeThresholdDB {
			t.Errorf("threshold ordering broken: %s (%v) <= %s (%v)",
				devices[i].Name, devices[i].WakeThresholdDB,
				devices[i-1].Name, devices[i-1].WakeThresholdDB)
		}
	}
	// Only the Siri devices enforce speaker verification.
	if devices[0].SpeakerVerification || devices[1].SpeakerVerification {
		t.Error("smart speakers should not have speaker verification")
	}
	if !devices[2].SpeakerVerification || !devices[3].SpeakerVerification {
		t.Error("Siri devices should have speaker verification")
	}
}

func TestWakeScoreOrdering(t *testing.T) {
	d := NewGoogleHome()
	rng := rand.New(rand.NewSource(3))
	// Build a loud recording and a barely-audible one.
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 7)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.WakeWords()[0])
	if err != nil {
		t.Fatal(err)
	}
	room, err := acoustics.RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	loudP, err := room.Transmit(utt.Samples, acoustics.PathConfig{SourceSPL: 80, DistanceM: 1, SampleRate: 16000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	quietP, err := room.Transmit(utt.Samples, acoustics.PathConfig{SourceSPL: 40, DistanceM: 5, ThroughBarrier: true, SampleRate: 16000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	loudRec, err := d.Record(loudP, rng)
	if err != nil {
		t.Fatal(err)
	}
	quietRec, err := d.Record(quietP, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.WakeScore(loudRec) <= d.WakeScore(quietRec) {
		t.Errorf("loud score %v not above quiet score %v",
			d.WakeScore(loudRec), d.WakeScore(quietRec))
	}
}

func TestWakeScoreShortRecording(t *testing.T) {
	d := NewGoogleHome()
	if s := d.WakeScore(make([]float64, 100)); s != -60 {
		t.Errorf("short recording score = %v, want -60", s)
	}
}

func TestTryWakeExtremes(t *testing.T) {
	d := NewGoogleHome()
	rng := rand.New(rand.NewSource(4))
	// A very loud clean command should almost always trigger; silence never.
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 7)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.WakeWords()[0])
	if err != nil {
		t.Fatal(err)
	}
	loud, err := dsp.NormalizeRMS(utt.Samples, dsp.SPLToAmplitude(80))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := d.Record(loud, rng)
	if err != nil {
		t.Fatal(err)
	}
	wakes := 0
	for i := 0; i < 20; i++ {
		if d.TryWake(rec, rng) {
			wakes++
		}
	}
	if wakes < 18 {
		t.Errorf("loud command woke %d/20, want >= 18", wakes)
	}
	silence := make([]float64, 16000)
	recSilent, err := d.Record(silence, rng)
	if err != nil {
		t.Fatal(err)
	}
	wakes = 0
	for i := 0; i < 20; i++ {
		if d.TryWake(recSilent, rng) {
			wakes++
		}
	}
	if wakes > 2 {
		t.Errorf("silence woke %d/20, want <= 2", wakes)
	}
}
