package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vibguard/internal/dsp"
)

// Property: the accelerometer capture is always finite and has the
// expected length for any bounded input.
func TestCaptureFiniteProperty(t *testing.T) {
	a := NewAccelerometer()
	f := func(raw []float64, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 4000 {
			raw = raw[:4000]
		}
		audio := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			audio[i] = math.Mod(v, 10)
		}
		vib, err := a.Capture(audio, 16000, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		wantLen := len(audio) / 80
		if wantLen == 0 {
			wantLen = 1
		}
		if len(vib) != wantLen && len(vib) != wantLen+1 {
			return false
		}
		for _, v := range vib {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: wake score is monotone in recording loudness for speech-like
// input (louder recording relative to a fixed noise floor gives a higher
// score).
func TestWakeScoreMonotoneInLevel(t *testing.T) {
	d := NewGoogleHome()
	rng := rand.New(rand.NewSource(4))
	// Build a speech-like signal: bursts of tone separated by silence.
	burst := dsp.Tone(800, 1, 0.12, 16000)
	gap := make([]float64, 2400)
	speech := dsp.Concat(gap, burst, gap, burst, gap, burst, gap)
	noise := make([]float64, len(speech))
	for i := range noise {
		noise[i] = 1e-3 * rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for _, gain := range []float64{0.002, 0.01, 0.05, 0.25} {
		rec := dsp.Mix(dsp.Scale(speech, gain), noise)
		score := d.WakeScore(rec)
		if score < prev {
			t.Fatalf("wake score not monotone: gain %v score %v < prev %v", gain, score, prev)
		}
		prev = score
	}
}

// Property: TryWake success frequency increases with score.
func TestTryWakeProbabilityOrdering(t *testing.T) {
	d := NewGoogleHome()
	trials := 400
	countWakes := func(rec []float64, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		n := 0
		for i := 0; i < trials; i++ {
			if d.TryWake(rec, rng) {
				n++
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(9))
	burst := dsp.Tone(800, 0.3, 0.12, 16000)
	gap := make([]float64, 2400)
	speech := dsp.Concat(gap, burst, gap, burst, gap)
	noise := make([]float64, len(speech))
	for i := range noise {
		noise[i] = 2e-3 * rng.NormFloat64()
	}
	strong := dsp.Mix(speech, noise)
	weak := dsp.Mix(dsp.Scale(speech, 0.01), noise)
	if countWakes(strong, 1) <= countWakes(weak, 2) {
		t.Error("stronger recording should wake more often")
	}
}

// Failure injection: a wearable with an invalid component must refuse to
// sense rather than produce garbage.
func TestWearableInvalidComponentRejected(t *testing.T) {
	w := NewFossilGen5()
	w.Accel.SampleRate = 0
	if _, err := w.SenseVibration(dsp.Tone(500, 0.1, 0.5, 16000), rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid accelerometer should error")
	}
	w = NewFossilGen5()
	w.Speaker.HighCutHz = 1 // below low cut
	if _, err := w.SenseVibration(dsp.Tone(500, 0.1, 0.5, 16000), rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid speaker should error")
	}
	w = NewFossilGen5()
	w.Mic.Gain = -1
	if _, err := w.Record(dsp.Tone(500, 0.1, 0.5, 16000), rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid mic should error")
	}
}
