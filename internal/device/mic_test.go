package device

import (
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/dsp"
)

func TestMicrophoneValidate(t *testing.T) {
	m := NewMicrophone(16000)
	if err := m.Validate(); err != nil {
		t.Errorf("default mic invalid: %v", err)
	}
	bad := m
	bad.SampleRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate should error")
	}
	bad = m
	bad.Gain = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero gain should error")
	}
	bad = m
	bad.HighCutHz = 10
	if err := bad.Validate(); err == nil {
		t.Error("inverted band should error")
	}
	bad = m
	bad.HighCutHz = 9000
	if err := bad.Validate(); err == nil {
		t.Error("band above Nyquist should error")
	}
}

func TestMicrophoneRecordBandLimits(t *testing.T) {
	m := NewMicrophone(16000)
	m.NoiseFloorSPL = 0 // suppress noise for spectral measurement
	rng := rand.New(rand.NewSource(1))
	inBand := dsp.Tone(1000, 0.1, 0.5, 16000)
	subsonic := dsp.Tone(10, 0.1, 0.5, 16000)
	recIn, err := m.Record(inBand, rng)
	if err != nil {
		t.Fatal(err)
	}
	recSub, err := m.Record(subsonic, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(recSub) > dsp.RMS(recIn)*0.3 {
		t.Errorf("subsonic content not attenuated: %v vs %v", dsp.RMS(recSub), dsp.RMS(recIn))
	}
}

func TestMicrophoneGainAndNoise(t *testing.T) {
	m := NewMicrophone(16000)
	m.Gain = 2
	m.NoiseFloorSPL = 0
	rng := rand.New(rand.NewSource(2))
	x := dsp.Tone(1000, 0.1, 0.2, 16000)
	rec, err := m.Record(x, rng)
	if err != nil {
		t.Fatal(err)
	}
	ratio := dsp.RMS(rec) / dsp.RMS(x)
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("gain ratio = %v, want ~2", ratio)
	}
	// Noise floor: silence should record as noise at the floor SPL.
	m.NoiseFloorSPL = 40
	silent := make([]float64, 16000)
	rec, err = m.Record(silent, rng)
	if err != nil {
		t.Fatal(err)
	}
	spl := dsp.AmplitudeToSPL(dsp.RMS(rec))
	if math.Abs(spl-40) > 1.5 {
		t.Errorf("noise floor recorded at %v dB SPL, want ~40", spl)
	}
}

func TestLoudspeakerValidate(t *testing.T) {
	s := NewLoudspeaker(16000)
	if err := s.Validate(); err != nil {
		t.Errorf("default speaker invalid: %v", err)
	}
	bad := s
	bad.Distortion = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("excessive distortion should error")
	}
	bad = s
	bad.SampleRate = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative rate should error")
	}
}

func TestLoudspeakerBandLimits(t *testing.T) {
	s := NewLoudspeaker(16000)
	deep := dsp.Tone(30, 0.5, 0.3, 16000)
	mid := dsp.Tone(1000, 0.5, 0.3, 16000)
	outDeep, err := s.Render(deep)
	if err != nil {
		t.Fatal(err)
	}
	outMid, err := s.Render(mid)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(outDeep) > dsp.RMS(outMid)*0.2 {
		t.Errorf("30Hz should be nearly inaudible from a small speaker: %v vs %v",
			dsp.RMS(outDeep), dsp.RMS(outMid))
	}
}

func TestLoudspeakerDistortionAddsHarmonics(t *testing.T) {
	s := NewLoudspeaker(16000)
	s.Distortion = 0.2
	x := dsp.Tone(500, 0.5, 0.5, 16000)
	out, err := s.Render(x)
	if err != nil {
		t.Fatal(err)
	}
	spec := dsp.MagnitudeSpectrum(out)
	fund := spec[dsp.FrequencyBin(500, len(out), 16000)]
	third := spec[dsp.FrequencyBin(1500, len(out), 16000)]
	if third < fund*0.01 {
		t.Errorf("cubic distortion should create a 3rd harmonic: fund %v, 3rd %v", fund, third)
	}
	// Ideal speaker: no harmonic.
	s.Distortion = 0
	out, err = s.Render(x)
	if err != nil {
		t.Fatal(err)
	}
	spec = dsp.MagnitudeSpectrum(out)
	third = spec[dsp.FrequencyBin(1500, len(out), 16000)]
	fund = spec[dsp.FrequencyBin(500, len(out), 16000)]
	if third > fund*0.01 {
		t.Errorf("ideal speaker created harmonics: fund %v, 3rd %v", fund, third)
	}
}

func TestLoudspeakerSilence(t *testing.T) {
	s := NewLoudspeaker(16000)
	out, err := s.Render(make([]float64, 100))
	if err != nil {
		t.Fatal(err)
	}
	if dsp.MaxAbs(out) != 0 {
		t.Error("silence should render as silence")
	}
}
