// Package device models the hardware of the paper's testbed: microphones,
// loudspeakers, the wearable's accelerometer with its measured artifacts
// (aliasing, 0-5 Hz hypersensitivity, low-frequency-driven amplifier
// noise), complete wearables (Fossil Gen 5, Moto 360 2020) and VA devices
// (Google Home, Alexa Echo, MacBook Pro, iPhone) with wake-word
// recognition.
package device

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/dsp"
)

// Microphone models a device microphone: a band-limited frequency response,
// an input gain, and a self-noise floor.
type Microphone struct {
	// SampleRate in Hz (16 kHz for all recordings in the paper).
	SampleRate float64
	// Gain is the linear input gain (sensitivity).
	Gain float64
	// NoiseFloorSPL is the equivalent self-noise level in dB SPL.
	NoiseFloorSPL float64
	// LowCutHz and HighCutHz bound the usable band.
	LowCutHz, HighCutHz float64
}

// NewMicrophone returns a typical MEMS microphone at the given sample rate.
func NewMicrophone(sampleRate float64) Microphone {
	return Microphone{
		SampleRate:    sampleRate,
		Gain:          1.0,
		NoiseFloorSPL: 30,
		LowCutHz:      50,
		HighCutHz:     7500,
	}
}

// Validate checks microphone parameters.
func (m *Microphone) Validate() error {
	if m.SampleRate <= 0 {
		return fmt.Errorf("device: mic sample rate %v must be positive", m.SampleRate)
	}
	if m.Gain <= 0 {
		return fmt.Errorf("device: mic gain %v must be positive", m.Gain)
	}
	if m.LowCutHz < 0 || m.HighCutHz <= m.LowCutHz || m.HighCutHz > m.SampleRate/2 {
		return fmt.Errorf("device: mic band [%v, %v] invalid for rate %v", m.LowCutHz, m.HighCutHz, m.SampleRate)
	}
	return nil
}

// response is the microphone's magnitude response at frequency f: flat in
// band with smooth roll-offs outside.
func (m *Microphone) response(f float64) float64 {
	switch {
	case f < m.LowCutHz:
		return f / m.LowCutHz
	case f > m.HighCutHz:
		r := 1 - (f-m.HighCutHz)/(m.SampleRate/2-m.HighCutHz)
		if r < 0 {
			return 0
		}
		return r
	default:
		return 1
	}
}

// Record converts an acoustic pressure waveform (already at the mic's
// position) into a recording: band-limits it, applies gain, and adds the
// microphone's own noise floor. The rng drives the self-noise.
func (m *Microphone) Record(pressure []float64, rng *rand.Rand) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	shaped := dsp.FrequencyShape(pressure, m.SampleRate, m.response)
	out := dsp.Scale(shaped, m.Gain)
	floor := dsp.SPLToAmplitude(m.NoiseFloorSPL)
	for i := range out {
		out[i] += floor * rng.NormFloat64()
	}
	return out, nil
}

// Loudspeaker models a playback device: a band-limited response and a mild
// cubic nonlinearity typical of small drivers. It is used both by the
// replay-attack path and by the wearable's built-in speaker during
// cross-domain sensing.
type Loudspeaker struct {
	// SampleRate in Hz.
	SampleRate float64
	// LowCutHz and HighCutHz bound the reproducible band.
	LowCutHz, HighCutHz float64
	// Distortion is the cubic nonlinearity coefficient (0 = ideal).
	Distortion float64
	// Gain is the linear output gain.
	Gain float64
}

// NewLoudspeaker returns the profile of a compact loudspeaker such as the
// Razer Sound Bar RC30 used by the paper's attacks.
func NewLoudspeaker(sampleRate float64) Loudspeaker {
	return Loudspeaker{
		SampleRate: sampleRate,
		LowCutHz:   90,
		HighCutHz:  7000,
		Distortion: 0.02,
		Gain:       1.0,
	}
}

// NewWearableSpeaker returns the profile of a smartwatch's tiny built-in
// speaker: a narrower band and more distortion than a full loudspeaker.
func NewWearableSpeaker(sampleRate float64) Loudspeaker {
	return Loudspeaker{
		SampleRate: sampleRate,
		LowCutHz:   180,
		HighCutHz:  6500,
		Distortion: 0.05,
		Gain:       1.0,
	}
}

// Validate checks loudspeaker parameters.
func (s *Loudspeaker) Validate() error {
	if s.SampleRate <= 0 {
		return fmt.Errorf("device: speaker sample rate %v must be positive", s.SampleRate)
	}
	if s.LowCutHz < 0 || s.HighCutHz <= s.LowCutHz || s.HighCutHz > s.SampleRate/2 {
		return fmt.Errorf("device: speaker band [%v, %v] invalid for rate %v", s.LowCutHz, s.HighCutHz, s.SampleRate)
	}
	if s.Distortion < 0 || s.Distortion > 0.5 {
		return fmt.Errorf("device: speaker distortion %v outside [0, 0.5]", s.Distortion)
	}
	return nil
}

// Render converts a digital waveform into the emitted acoustic pressure:
// band-limits it and applies the driver nonlinearity.
func (s *Loudspeaker) Render(x []float64) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	shaped := dsp.FrequencyShape(x, s.SampleRate, func(f float64) float64 {
		switch {
		case f < s.LowCutHz:
			return math.Pow(f/s.LowCutHz, 2)
		case f > s.HighCutHz:
			r := 1 - (f-s.HighCutHz)/(s.SampleRate/2-s.HighCutHz)
			if r < 0 {
				return 0
			}
			return r
		default:
			return 1
		}
	})
	out := make([]float64, len(shaped))
	peak := dsp.MaxAbs(shaped)
	if peak == 0 {
		return out, nil
	}
	for i, v := range shaped {
		u := v / peak
		out[i] = s.Gain * peak * (u - s.Distortion*u*u*u)
	}
	return out, nil
}
