package device

import (
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/dsp"
)

func TestAccelerometerValidate(t *testing.T) {
	a := NewAccelerometer()
	if err := a.Validate(); err != nil {
		t.Errorf("default accel invalid: %v", err)
	}
	bad := a
	bad.SampleRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate should error")
	}
	bad = a
	bad.ArtifactGain = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("artifact gain < 1 should error")
	}
	bad = a
	bad.CouplingLow = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero coupling should error")
	}
	bad = a
	bad.NoiseFloor = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative noise should error")
	}
}

func TestLowFrequencyDominance(t *testing.T) {
	const fs = 16000.0
	low := dsp.Tone(200, 1, 0.5, fs)
	high := dsp.Tone(3000, 1, 0.5, fs)
	if rho := LowFrequencyDominance(low, fs); rho < 0.9 {
		t.Errorf("pure low tone dominance = %v, want > 0.9", rho)
	}
	if rho := LowFrequencyDominance(high, fs); rho > 0.1 {
		t.Errorf("pure high tone dominance = %v, want < 0.1", rho)
	}
	mixed := dsp.Mix(low, high)
	rho := LowFrequencyDominance(mixed, fs)
	if rho < 0.3 || rho > 0.7 {
		t.Errorf("balanced mix dominance = %v, want ~0.5", rho)
	}
	if LowFrequencyDominance(nil, fs) != 0 {
		t.Error("empty signal dominance should be 0")
	}
	if LowFrequencyDominance(make([]float64, 100), fs) != 0 {
		t.Error("silent signal dominance should be 0")
	}
}

func TestCaptureOutputRate(t *testing.T) {
	a := NewAccelerometer()
	rng := rand.New(rand.NewSource(1))
	audio := dsp.Tone(1000, 0.3, 1.0, 16000)
	vib, err := a.Capture(audio, 16000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 1 second of audio -> ~200 vibration samples.
	if math.Abs(float64(len(vib))-200) > 2 {
		t.Errorf("vibration samples = %d, want ~200", len(vib))
	}
}

func TestCaptureAliasing(t *testing.T) {
	a := NewAccelerometer()
	a.NoiseFloor = 0
	a.LowFreqNoiseFactor = 0
	rng := rand.New(rand.NewSource(2))
	// 1130 Hz audio samples at 200 Hz: alias = |1130 - 6*200| = 70 Hz.
	audio := dsp.Tone(1130, 0.3, 2.0, 16000)
	vib, err := a.Capture(audio, 16000, rng)
	if err != nil {
		t.Fatal(err)
	}
	spec := dsp.MagnitudeSpectrum(vib)
	best, bestV := 0, 0.0
	for k, v := range spec {
		if f := dsp.BinFrequency(k, len(vib), 200); f > 6 && v > bestV {
			best, bestV = k, v
		}
	}
	aliasFreq := dsp.BinFrequency(best, len(vib), 200)
	if math.Abs(aliasFreq-70) > 3 {
		t.Errorf("alias peak at %vHz, want 70Hz", aliasFreq)
	}
}

func TestCaptureLowFrequencyCouplingWeak(t *testing.T) {
	a := NewAccelerometer()
	a.NoiseFloor = 0
	a.LowFreqNoiseFactor = 0
	rng := rand.New(rand.NewSource(3))
	// A 70 Hz audio tone couples weakly; a 1670 Hz tone (alias 70 Hz after
	// folding: 1670-8*200=70) couples strongly. Same vibration-domain
	// frequency, very different coupling.
	lowAudio := dsp.Tone(70, 0.3, 2.0, 16000)
	highAudio := dsp.Tone(1670, 0.3, 2.0, 16000)
	vibLow, err := a.Capture(lowAudio, 16000, rng)
	if err != nil {
		t.Fatal(err)
	}
	vibHigh, err := a.Capture(highAudio, 16000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(vibLow) > dsp.RMS(vibHigh)*0.3 {
		t.Errorf("low-frequency audio coupled too strongly: %v vs %v",
			dsp.RMS(vibLow), dsp.RMS(vibHigh))
	}
}

func TestCaptureNoiseGrowsWithLowFreqDominance(t *testing.T) {
	a := NewAccelerometer()
	// Measure injected noise via capture of two equal-RMS signals.
	lowDominated := dsp.Tone(300, 0.3, 2.0, 16000) // thru-barrier-like
	broadband := dsp.Mix(dsp.Tone(300, 0.15, 2.0, 16000), dsp.Tone(2500, 0.25, 2.0, 16000))
	// Capture each twice with different rngs; the *difference* between two
	// captures isolates the random noise component.
	noiseRMS := func(x []float64) float64 {
		v1, err := a.Capture(x, 16000, rand.New(rand.NewSource(10)))
		if err != nil {
			t.Fatal(err)
		}
		v2, err := a.Capture(x, 16000, rand.New(rand.NewSource(20)))
		if err != nil {
			t.Fatal(err)
		}
		diff := make([]float64, len(v1))
		for i := range v1 {
			diff[i] = v1[i] - v2[i]
		}
		return dsp.RMS(diff)
	}
	// Normalize by captured signal level to compare noise-to-signal.
	sigRMS := func(x []float64) float64 {
		clean := a
		clean.NoiseFloor = 0
		clean.LowFreqNoiseFactor = 0
		v, err := clean.Capture(x, 16000, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		return dsp.RMS(v)
	}
	nsLow := noiseRMS(lowDominated) / sigRMS(lowDominated)
	nsBroad := noiseRMS(broadband) / sigRMS(broadband)
	// The broadband conduction-noise floor applies to both, so the
	// low-frequency amplifier noise shows up as a ~1.5-2x relative excess.
	if nsLow < 1.5*nsBroad {
		t.Errorf("low-frequency-dominated sound should be noisier: %v vs %v", nsLow, nsBroad)
	}
}

func TestChirpResponseLowFrequencyArtifact(t *testing.T) {
	// Fig. 7: the accelerometer responds strongly below 5 Hz to a
	// 500-2500 Hz chirp.
	a := NewAccelerometer()
	a.NoiseFloor = 0
	a.LowFreqNoiseFactor = 0
	rng := rand.New(rand.NewSource(4))
	spec, err := a.ChirpResponse(500, 2500, 4.0, 16000, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := (len(spec) - 1) * 2
	low, lowCount := 0.0, 0
	mid, midCount := 0.0, 0
	for k, v := range spec {
		f := dsp.BinFrequency(k, n, 200)
		switch {
		case f > 0.2 && f <= 5:
			low += v
			lowCount++
		case f >= 20 && f <= 80:
			mid += v
			midCount++
		}
	}
	if lowCount == 0 || midCount == 0 {
		t.Fatal("bad bin coverage")
	}
	if low/float64(lowCount) < 3*mid/float64(midCount) {
		t.Errorf("0-5Hz response %v not dominant over 20-80Hz %v",
			low/float64(lowCount), mid/float64(midCount))
	}
}

func TestCaptureBodyMotion(t *testing.T) {
	a := NewAccelerometer()
	a.BodyMotionAmp = 0.05
	a.NoiseFloor = 0
	a.LowFreqNoiseFactor = 0
	rng := rand.New(rand.NewSource(5))
	silent := make([]float64, 32000)
	vib, err := a.Capture(silent, 16000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Motion should appear below 5 Hz (x8 artifact gain applies too).
	spec := dsp.PowerSpectrum(vib)
	n := len(vib)
	lowE, highE := 0.0, 0.0
	for k, v := range spec {
		f := dsp.BinFrequency(k, n, 200)
		if f > 0 && f < 5 {
			lowE += v
		} else if f > 10 {
			highE += v
		}
	}
	if lowE <= highE*10 {
		t.Errorf("body motion not concentrated below 5Hz: low %v, high %v", lowE, highE)
	}
}

func TestCaptureEmptyAndErrors(t *testing.T) {
	a := NewAccelerometer()
	rng := rand.New(rand.NewSource(1))
	out, err := a.Capture(nil, 16000, rng)
	if err != nil || out != nil {
		t.Errorf("empty capture: %v, %v", out, err)
	}
	if _, err := a.Capture([]float64{1}, 0, rng); err == nil {
		t.Error("zero audio rate should error")
	}
}
