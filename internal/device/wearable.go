package device

import (
	"fmt"
	"math/rand"
)

// Wearable models a smartwatch: its microphone (recording the voice
// command), its built-in speaker, and its accelerometer. Cross-domain
// sensing replays audio through the speaker and captures the resulting
// chassis vibration with the accelerometer (Section IV-A).
type Wearable struct {
	// Name identifies the model, e.g. "Fossil Gen 5".
	Name string
	// Mic records the voice command at 16 kHz.
	Mic Microphone
	// Speaker is the built-in speaker used for vibration generation.
	Speaker Loudspeaker
	// Accel is the built-in accelerometer.
	Accel Accelerometer
}

// NewFossilGen5 returns the Fossil Gen 5 smartwatch profile used for most
// of the paper's experiments.
func NewFossilGen5() *Wearable {
	return &Wearable{
		Name:    "Fossil Gen 5",
		Mic:     NewMicrophone(16000),
		Speaker: NewWearableSpeaker(16000),
		Accel:   NewAccelerometer(),
	}
}

// NewMoto360 returns the Moto 360 2020 smartwatch profile (slightly
// different speaker band and sensor noise).
func NewMoto360() *Wearable {
	w := &Wearable{
		Name:    "Moto 360 2020",
		Mic:     NewMicrophone(16000),
		Speaker: NewWearableSpeaker(16000),
		Accel:   NewAccelerometer(),
	}
	w.Speaker.HighCutHz = 6000
	w.Accel.NoiseFloor = 1.5e-4
	w.Accel.ArtifactGain = 7.0
	return w
}

// Validate checks all component parameters.
func (w *Wearable) Validate() error {
	if err := w.Mic.Validate(); err != nil {
		return fmt.Errorf("wearable %s: %w", w.Name, err)
	}
	if err := w.Speaker.Validate(); err != nil {
		return fmt.Errorf("wearable %s: %w", w.Name, err)
	}
	if err := w.Accel.Validate(); err != nil {
		return fmt.Errorf("wearable %s: %w", w.Name, err)
	}
	return nil
}

// SenseVibration performs one cross-domain sensing pass: it replays the
// given 16 kHz audio through the built-in speaker and captures the induced
// conductive vibration with the accelerometer, returning the 200 Hz
// vibration signal.
func (w *Wearable) SenseVibration(audio []float64, rng *rand.Rand) ([]float64, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	emitted, err := w.Speaker.Render(audio)
	if err != nil {
		return nil, fmt.Errorf("wearable %s: %w", w.Name, err)
	}
	vib, err := w.Accel.Capture(emitted, w.Speaker.SampleRate, rng)
	if err != nil {
		return nil, fmt.Errorf("wearable %s: %w", w.Name, err)
	}
	return vib, nil
}

// Record captures a voice command with the wearable's microphone.
func (w *Wearable) Record(pressure []float64, rng *rand.Rand) ([]float64, error) {
	rec, err := w.Mic.Record(pressure, rng)
	if err != nil {
		return nil, fmt.Errorf("wearable %s: %w", w.Name, err)
	}
	return rec, nil
}
