package device

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/dsp"
)

// VADevice models a voice-assistant device: a microphone profile and a
// wake-word recognizer whose sensitivity differs per product. Smart
// speakers use far-field microphone arrays and trigger easily; phones use
// close-talking microphones and need much stronger input (Table I).
type VADevice struct {
	// Name is the product name.
	Name string
	// Mic is the device microphone.
	Mic Microphone
	// WakeThresholdDB is the in-band SNR (dB) at which wake-word
	// recognition succeeds 50% of the time.
	WakeThresholdDB float64
	// WakeSlopeDB controls how sharply success probability rises with
	// SNR around the threshold.
	WakeSlopeDB float64
	// SpeakerVerification is true for devices (Siri) that reject voices
	// not enrolled by the owner, so random and synthesis attacks do not
	// trigger them at all (Table I's "-" cells).
	SpeakerVerification bool
}

// VA device profiles from the Table I study. Thresholds are calibrated so
// the simulated attack study reproduces the table's ordering: Google Home
// is the most susceptible, then Alexa Echo, then MacBook Pro, with iPhone
// the hardest to trigger.
func NewGoogleHome() *VADevice {
	d := &VADevice{Name: "Google Home", Mic: NewMicrophone(16000), WakeThresholdDB: 10, WakeSlopeDB: 3}
	d.Mic.Gain = 1.6 // far-field array
	return d
}

// NewAlexaEcho returns the Amazon Echo profile.
func NewAlexaEcho() *VADevice {
	d := &VADevice{Name: "Alexa Echo", Mic: NewMicrophone(16000), WakeThresholdDB: 14, WakeSlopeDB: 3}
	d.Mic.Gain = 1.5
	return d
}

// NewMacBookPro returns the MacBook Pro profile (Hey Siri, with speaker
// verification).
func NewMacBookPro() *VADevice {
	d := &VADevice{Name: "MacBook Pro", Mic: NewMicrophone(16000), WakeThresholdDB: 18, WakeSlopeDB: 3, SpeakerVerification: true}
	d.Mic.Gain = 1.1
	return d
}

// NewIPhone returns the iPhone profile (Hey Siri, close-talking mic,
// speaker verification).
func NewIPhone() *VADevice {
	d := &VADevice{Name: "iPhone", Mic: NewMicrophone(16000), WakeThresholdDB: 26, WakeSlopeDB: 2.5, SpeakerVerification: true}
	d.Mic.Gain = 0.8
	return d
}

// AllVADevices returns the four devices of the Table I study in table
// order.
func AllVADevices() []*VADevice {
	return []*VADevice{NewGoogleHome(), NewAlexaEcho(), NewMacBookPro(), NewIPhone()}
}

// Validate checks device parameters.
func (d *VADevice) Validate() error {
	if err := d.Mic.Validate(); err != nil {
		return fmt.Errorf("va %s: %w", d.Name, err)
	}
	if d.WakeSlopeDB <= 0 {
		return fmt.Errorf("va %s: wake slope %v must be positive", d.Name, d.WakeSlopeDB)
	}
	return nil
}

// Record captures a voice command with the VA device's microphone.
func (d *VADevice) Record(pressure []float64, rng *rand.Rand) ([]float64, error) {
	rec, err := d.Mic.Record(pressure, rng)
	if err != nil {
		return nil, fmt.Errorf("va %s: %w", d.Name, err)
	}
	return rec, nil
}

// WakeScore estimates the in-band SNR (dB) of a recording: frame energy of
// the loudest frames versus the quietest frames in the 100-3000 Hz speech
// band. It is the input to the wake-word success model.
func (d *VADevice) WakeScore(recording []float64) float64 {
	frame := int(0.01 * d.Mic.SampleRate) // 10 ms frames
	if frame < 16 || len(recording) < 8*frame {
		return -60
	}
	band, err := dsp.NewBandPass(800, d.Mic.SampleRate, 0.5)
	if err != nil {
		return -60
	}
	filtered := band.Process(recording)
	energies := make([]float64, 0, len(filtered)/frame)
	for start := 0; start+frame <= len(filtered); start += frame {
		energies = append(energies, dsp.Energy(filtered[start:start+frame]))
	}
	if len(energies) < 8 {
		return -60
	}
	// The quietest frames estimate the noise floor (stop closures and
	// inter-word pauses); the loudest sustained frames estimate speech.
	signal := dsp.Percentile(energies, 0.8)
	noise := dsp.Percentile(energies, 0.05)
	if noise <= 0 {
		noise = 1e-12
	}
	return 10 * math.Log10(signal/noise)
}

// TryWake performs one wake-word attempt on a recording, returning whether
// the device triggered. Success is stochastic with probability given by a
// logistic curve over the wake score, matching the per-attempt variability
// of the Table I study.
func (d *VADevice) TryWake(recording []float64, rng *rand.Rand) bool {
	score := d.WakeScore(recording)
	p := 1 / (1 + math.Exp(-(score-d.WakeThresholdDB)/d.WakeSlopeDB))
	return rng.Float64() < p
}
