package device

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/dsp"
)

// AccelSampleRate is the accelerometer sampling rate of commercial
// smartwatches (200 Hz in the paper's Fossil Gen 5 and Moto 360 2020).
const AccelSampleRate = 200.0

// lowFreqCutoff is the boundary below which audio couples weakly into the
// accelerometer and above which the paper's cross-domain sensing argument
// applies (Section IV-A: the accelerometer attenuates audio below ~500 Hz
// and captures components above ~1000 Hz via conduction and aliasing).
const lowFreqCutoff = 500.0

// Accelerometer models the wearable's accelerometer and the three measured
// behaviours the defense exploits:
//
//  1. Sampling at 200 Hz with no anti-alias filter, so high-frequency
//     audio-induced vibration folds into the 0-100 Hz band (aliasing,
//     Section IV-B).
//  2. A high-sensitivity artifact below 5 Hz (Fig. 7), plus body-motion
//     interference at 0.3-3.5 Hz.
//  3. Amplifier noise injection that grows with the low-frequency
//     dominance of the driving sound ([9], Section IV-A) — the property
//     that makes thru-barrier sound *noisy* in the vibration domain.
type Accelerometer struct {
	// SampleRate in Hz.
	SampleRate float64
	// ArtifactGain is the extra gain applied below ArtifactCutoffHz,
	// reproducing the strong 0-5 Hz response of Fig. 7.
	ArtifactGain     float64
	ArtifactCutoffHz float64
	// CouplingLow is the relative conduction gain for audio below 500 Hz
	// (weak); CouplingHigh for audio above 1000 Hz (strong).
	CouplingLow, CouplingHigh float64
	// NoiseFloor is the baseline sensor noise standard deviation.
	NoiseFloor float64
	// LowFreqNoiseFactor scales the extra amplifier noise injected in
	// proportion to the input's low-frequency energy dominance.
	LowFreqNoiseFactor float64
	// BroadbandNoiseFactor scales conduction noise proportional to the
	// captured vibration level regardless of spectral shape.
	BroadbandNoiseFactor float64
	// NoiseCeiling caps the level-proportional noise terms: the amplifier
	// noise saturates, so strong drives are captured at high SNR while
	// weak thru-barrier residues drown (0 disables the cap).
	NoiseCeiling float64
	// LowFreqNoiseSharpness is the exponent applied to the low-frequency
	// dominance before it scales amplifier noise. The amplifier's noise
	// injection is a threshold-like effect that only engages when the
	// drive is dominated by low frequencies ([9]): direct speech
	// (dominance ~0.8) stays nearly clean while thru-barrier sound
	// (dominance ~1.0) is heavily degraded.
	LowFreqNoiseSharpness float64
	// BodyMotionAmp is the amplitude of wearer body-motion interference
	// (0 when the arm is still).
	BodyMotionAmp float64
}

// NewAccelerometer returns the accelerometer profile of a commercial
// smartwatch (calibrated against the behaviours reported for the Fossil
// Gen 5).
func NewAccelerometer() Accelerometer {
	return Accelerometer{
		SampleRate:            AccelSampleRate,
		ArtifactGain:          8.0,
		ArtifactCutoffHz:      5.0,
		CouplingLow:           0.05,
		CouplingHigh:          1.0,
		NoiseFloor:            1e-4,
		LowFreqNoiseFactor:    0.7,
		BroadbandNoiseFactor:  0.08,
		NoiseCeiling:          0.002,
		LowFreqNoiseSharpness: 12,
		BodyMotionAmp:         0,
	}
}

// Validate checks accelerometer parameters.
func (a *Accelerometer) Validate() error {
	if a.SampleRate <= 0 {
		return fmt.Errorf("device: accel sample rate %v must be positive", a.SampleRate)
	}
	if a.ArtifactGain < 1 {
		return fmt.Errorf("device: artifact gain %v must be >= 1", a.ArtifactGain)
	}
	if a.CouplingLow <= 0 || a.CouplingHigh <= 0 {
		return fmt.Errorf("device: coupling gains (%v, %v) must be positive", a.CouplingLow, a.CouplingHigh)
	}
	if a.NoiseFloor < 0 || a.LowFreqNoiseFactor < 0 {
		return fmt.Errorf("device: noise parameters (%v, %v) must be non-negative", a.NoiseFloor, a.LowFreqNoiseFactor)
	}
	return nil
}

// LowFrequencyDominance returns the fraction of the signal's spectral
// energy below the 500 Hz coupling cutoff. Thru-barrier attack sounds are
// dominated by low frequencies (ratio near 1); a user's direct speech has a
// substantially lower ratio because its high-frequency content survives.
func LowFrequencyDominance(audio []float64, sampleRate float64) float64 {
	if len(audio) == 0 {
		return 0
	}
	spec := dsp.PowerSpectrum(audio)
	cut := dsp.FrequencyBin(lowFreqCutoff, len(audio), sampleRate)
	low, total := 0.0, 0.0
	for k, v := range spec {
		if k == 0 {
			continue // ignore DC
		}
		total += v
		if k <= cut {
			low += v
		}
	}
	if total == 0 {
		return 0
	}
	return low / total
}

// Capture converts an audio waveform (the sound driving the wearable's
// chassis during cross-domain replay) into the accelerometer's vibration
// recording at 200 Hz.
func (a *Accelerometer) Capture(audio []float64, audioRate float64, rng *rand.Rand) ([]float64, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if audioRate <= 0 {
		return nil, fmt.Errorf("device: audio rate %v must be positive", audioRate)
	}
	if len(audio) == 0 {
		return nil, nil
	}
	rho := LowFrequencyDominance(audio, audioRate)

	// 1. Frequency-dependent conduction coupling at the audio rate: audio
	// below ~800 Hz drives the chassis very weakly (falling off
	// quadratically toward DC), with full coupling only above ~1.6 kHz
	// (Section IV-A: the accelerometer attenuates low-frequency audio and
	// captures components above 1 kHz).
	const couplingKnee = 800.0
	coupled := dsp.FrequencyShape(audio, audioRate, func(f float64) float64 {
		switch {
		case f < couplingKnee:
			r := f / couplingKnee
			return a.CouplingLow * r * r
		case f < 2*couplingKnee:
			frac := (f - couplingKnee) / couplingKnee
			return a.CouplingLow + (a.CouplingHigh-a.CouplingLow)*frac
		default:
			return a.CouplingHigh
		}
	})

	// 2. Point-sample at the accelerometer rate with no anti-alias filter:
	// content above 100 Hz folds into the vibration band.
	factor := int(audioRate / a.SampleRate)
	if factor < 1 {
		factor = 1
	}
	vib, err := dsp.DecimateSampleHold(coupled, factor)
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}

	// 3. The 0-5 Hz hypersensitivity artifact of Fig. 7.
	vib = dsp.FrequencyShape(vib, a.SampleRate, func(f float64) float64 {
		if f <= a.ArtifactCutoffHz {
			return a.ArtifactGain
		}
		return 1
	})

	// 4. Amplifier noise: a fixed floor, broadband conduction noise, and
	// the low-frequency-driven amplifier noise of [9], which engages
	// sharply as the drive becomes dominated by low frequencies and
	// saturates at the amplifier's noise ceiling. The stationary noise is
	// drawn once per capture: two captures of the same sound get
	// independent noise, which is why noisy (thru-barrier) captures
	// decorrelate.
	sharp := a.LowFreqNoiseSharpness
	if sharp <= 0 {
		sharp = 1
	}
	gain := a.BroadbandNoiseFactor + a.LowFreqNoiseFactor*math.Pow(rho, sharp)
	sigma := gain * dsp.RMS(vib)
	if a.NoiseCeiling > 0 && sigma > a.NoiseCeiling {
		sigma = a.NoiseCeiling
	}
	sigma += a.NoiseFloor
	for i := range vib {
		vib[i] += sigma * rng.NormFloat64()
	}

	// 5. Body-motion interference at 0.3-3.5 Hz, if the wearer moves.
	if a.BodyMotionAmp > 0 {
		motionFreq := 0.3 + rng.Float64()*3.2
		phase := rng.Float64() * 2 * math.Pi
		for i := range vib {
			t := float64(i) / a.SampleRate
			vib[i] += a.BodyMotionAmp * math.Sin(2*math.Pi*motionFreq*t+phase)
		}
	}
	return vib, nil
}

// ChirpResponse measures the accelerometer's output power per vibration-
// domain frequency bin in response to an audio chirp, reproducing the
// Fig. 7 experiment. It returns the average power spectrum of the captured
// vibration at the accelerometer rate.
func (a *Accelerometer) ChirpResponse(f0, f1, duration float64, audioRate float64, rng *rand.Rand) ([]float64, error) {
	chirp := dsp.Chirp(f0, f1, 0.3, duration, audioRate)
	vib, err := a.Capture(chirp, audioRate, rng)
	if err != nil {
		return nil, err
	}
	return dsp.PowerSpectrum(vib), nil
}
