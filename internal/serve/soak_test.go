package serve_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vibguard/internal/detector"
	"vibguard/internal/obs"
	"vibguard/internal/serve"
)

// soakSessions is the concurrent end-to-end soak size: every session runs
// the full stack (TCP front-end -> admission queue -> worker -> hardened
// syncnet fetch over TCP -> align -> Inspect) simultaneously with the
// others, under -race in CI.
const soakSessions = 64

// soakFleet is one simulated wearable fleet: half the agents heard a
// legitimate command, half heard a thru-barrier replay.
type soakFleet struct {
	addrs        []string
	expectAttack []bool
	va           [][]float64
}

func newSoakFleet(t *testing.T, wearables int) *soakFleet {
	t.Helper()
	sc := scenarioFor(t)
	f := &soakFleet{}
	for j := 0; j < wearables; j++ {
		attack := j%2 == 1
		wear, va := sc.legitWear, sc.legitVA
		if attack {
			wear, va = sc.attackWear, sc.attackVA
		}
		agent := newAgent(t, wear)
		f.addrs = append(f.addrs, agent.Addr())
		f.expectAttack = append(f.expectAttack, attack)
		f.va = append(f.va, va)
	}
	return f
}

// session returns the request and expected verdict of soak session i.
func (f *soakFleet) session(i int) (serve.Request, bool) {
	j := i % len(f.addrs)
	return serve.Request{
		WearableAddr: f.addrs[j],
		VARecording:  f.va[j],
		RNGSeed:      serve.SessionSeed(serveSeed, uint64(i)),
	}, f.expectAttack[j]
}

// TestSoakConcurrentSessions is the race-gated soak: 64 simultaneous
// sessions through the TCP front-end against an 8-wearable fleet. Every
// session must come back (none lost), every verdict must match the
// wearable's scenario, and with the queue sized for the burst nothing may
// be shed.
func TestSoakConcurrentSessions(t *testing.T) {
	before := obs.Default().Snapshot()
	fleet := newSoakFleet(t, 8)
	srv := newServer(t, serve.Config{
		Workers:        4,
		QueueDepth:     soakSessions,
		SessionTimeout: 2 * time.Minute,
		Seed:           serveSeed,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		attack bool
		score  float64
		err    error
	}
	results := make([]outcome, soakSessions)
	var wg sync.WaitGroup
	for i := 0; i < soakSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := serve.DialServer(addr, 5*time.Second)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			defer func() { _ = client.Close() }()
			req, _ := fleet.session(i)
			v, err := client.Inspect(req)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			results[i] = outcome{attack: v.Attack, score: v.Score}
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		_, expectAttack := fleet.session(i)
		if res.err != nil {
			t.Errorf("session %d lost: %v", i, res.err)
			continue
		}
		if math.IsNaN(res.score) || math.IsInf(res.score, 0) {
			t.Errorf("session %d: non-finite score %v", i, res.score)
		}
		if res.attack != expectAttack {
			t.Errorf("session %d: attack=%v (score %v), want %v", i, res.attack, res.score, expectAttack)
		}
	}

	after := obs.Default().Snapshot()
	if got := after.Counters["serve.sessions.accepted"] - before.Counters["serve.sessions.accepted"]; got < soakSessions {
		t.Errorf("accepted counter rose by %d, want >= %d", got, soakSessions)
	}
	if got := after.Counters["serve.sessions.completed"] - before.Counters["serve.sessions.completed"]; got < soakSessions {
		t.Errorf("completed counter rose by %d, want >= %d", got, soakSessions)
	}
	if got := after.Counters["serve.sessions.shed"] - before.Counters["serve.sessions.shed"]; got != 0 {
		t.Errorf("queue sized for the burst, but %d sessions shed", got)
	}
	lat := after.Histograms["serve.session.latency_seconds"]
	if lat.Count == before.Histograms["serve.session.latency_seconds"].Count {
		t.Error("session latency histogram did not advance")
	}
}

// TestSoakOverloadSheds drives a burst far past a tiny queue behind a
// deliberately slow wearable: the excess must be shed immediately with
// ErrOverloaded (no unbounded goroutines, no silent queuing), while every
// admitted session still completes with the right verdict.
func TestSoakOverloadSheds(t *testing.T) {
	sc := scenarioFor(t)
	var recordCalls atomic.Int64
	slowAgent := newSlowAgent(t, sc.legitWear, 50*time.Millisecond, &recordCalls)
	srv := newServer(t, serve.Config{
		Workers:        1,
		QueueDepth:     2,
		SessionTimeout: time.Minute,
		Seed:           serveSeed,
	})

	const burst = 16
	var shed, completed, wrong atomic.Int64
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := srv.Submit(context.Background(), serve.Request{
				WearableAddr: slowAgent,
				VARecording:  sc.legitVA,
				RNGSeed:      serve.SessionSeed(serveSeed, uint64(1000+i)),
			})
			errs[i] = err
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				shed.Add(1)
			case err == nil:
				completed.Add(1)
				if v.Attack {
					wrong.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil && !errors.Is(err, serve.ErrOverloaded) {
			t.Errorf("session %d: unexpected error %v", i, err)
		}
	}
	if shed.Load() == 0 {
		t.Error("no session shed: queue depth 2 with a 16-session burst must overflow")
	}
	if completed.Load() == 0 {
		t.Error("no session completed under overload")
	}
	if wrong.Load() != 0 {
		t.Errorf("%d legitimate sessions flagged as attacks under overload", wrong.Load())
	}
	if got := shed.Load() + completed.Load(); got != burst {
		t.Errorf("sessions lost: shed %d + completed %d != %d", shed.Load(), completed.Load(), burst)
	}
}

// TestNonFiniteScorePropagatesThroughLiveSession pins the
// ErrNonFiniteScore contract end to end: recordings whose power overflows
// float64 survive validation (every sample is finite) but blow up the
// spectral feature pipeline, and the resulting typed error must cross the
// session server — and its wire protocol — intact.
func TestNonFiniteScorePropagatesThroughLiveSession(t *testing.T) {
	sc := scenarioFor(t)
	huge := func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = v * 1e160 // finite, but power ~ v^2 overflows to +Inf
		}
		return out
	}
	agent := newAgent(t, huge(sc.legitWear))
	srv := newServer(t, serve.Config{Workers: 1, SessionTimeout: time.Minute, Seed: serveSeed})
	req := serve.Request{
		WearableAddr: agent.Addr(),
		VARecording:  huge(sc.legitVA),
		RNGSeed:      serve.SessionSeed(serveSeed, 7777),
	}

	_, err := srv.Submit(context.Background(), req)
	if !errors.Is(err, detector.ErrNonFiniteScore) {
		t.Fatalf("Submit err = %v, want detector.ErrNonFiniteScore", err)
	}

	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	_, err = client.Inspect(req)
	if !errors.Is(err, detector.ErrNonFiniteScore) {
		t.Fatalf("wire err = %v, want detector.ErrNonFiniteScore", err)
	}
}
