package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vibguard/internal/core"
)

// Connection multiplexing: many concurrent sessions share one TCP
// connection, each tagged with a stream id. The server side reads request
// frames in a loop and dispatches each to its own goroutine, so a slow
// session never head-of-line-blocks its neighbors; responses are
// serialized through a mutex-guarded writer. The client side keeps a
// pending-stream table and a demux read loop, so one Client supports any
// number of concurrent Inspect calls — the per-connection cost of a
// session is one frame each way, not a dial plus gob type negotiation.

// ErrConnLost is the client-side transport failure: the multiplexed
// connection died (or delivered an undecodable frame) while sessions were
// pending. Every pending session fails with an error wrapping this
// sentinel, so callers — the router above all — can distinguish "the node
// vanished" from a typed application error the node itself sent.
var ErrConnLost = errors.New("serve: connection to server lost")

// frameWriter serializes frame writes from concurrent streams onto one
// connection. Each write flushes: frames are small (a verdict is ~30
// bytes) and latency beats batching for interactive sessions.
type frameWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
}

func newFrameWriter(conn net.Conn) *frameWriter {
	return &frameWriter{bw: bufio.NewWriter(conn)}
}

func (w *frameWriter) write(f Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := WriteFrame(w.bw, f); err != nil {
		return err
	}
	return w.bw.Flush()
}

// SessionHandler runs one decoded session to a verdict or a typed error.
// Server uses Submit; the router front-end uses Router.Submit, which is
// how both hops speak the identical protocol.
type SessionHandler func(ctx context.Context, req Request) (*core.Verdict, error)

// ServeMuxConn runs the server half of the multiplexed protocol on conn
// until the peer closes (or half-closes) it: request frames fan out to
// handler goroutines, pings are answered immediately, and the call only
// returns once every in-flight stream has written its response — which is
// what lets a drain half-close the connection and still flush final
// verdicts. The caller owns closing conn.
func ServeMuxConn(conn net.Conn, handle SessionHandler) {
	ServeMuxConnStream(conn, handle, nil)
}

// PingConn performs one ping/pong round trip on a raw connection within
// timeout. It is the router's health probe: a fresh dial plus PingConn
// proves the node accepts connections and speaks the protocol, not just
// that its port is open.
func PingConn(conn net.Conn, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	if err := WriteFrame(conn, Frame{Type: FramePing, Stream: 1}); err != nil {
		return fmt.Errorf("serve: ping: %w", err)
	}
	f, err := ReadFrame(bufio.NewReader(conn))
	if err != nil {
		return fmt.Errorf("serve: ping: %w", err)
	}
	if f.Type != FramePong || f.Stream != 1 {
		return fmt.Errorf("serve: ping: unexpected %d/%d reply", f.Type, f.Stream)
	}
	return nil
}

// clientResult is one stream's terminal delivery on the client side.
type clientResult struct {
	verdict *core.Verdict
	err     error
}

// Client is a VA-side client of the session front-end (a serve node or a
// router front-door — both speak the same protocol). One Client
// multiplexes any number of concurrent Inspect calls over a single TCP
// connection.
type Client struct {
	conn net.Conn
	w    *frameWriter

	mu      sync.Mutex
	next    uint64
	pending map[uint64]chan clientResult
	// aborted tombstones streams abandoned by Abort: the peer will still
	// send exactly one terminal frame for each, which must be dropped
	// silently instead of tripping deliver's unknown-stream kill.
	aborted map[uint64]bool
	dead    error // set once the read loop exits; nil while healthy
}

// DialServer connects to a session front-end.
func DialServer(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (the router reuses this with
// its own fault-injectable dialer) and starts the demux read loop.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		w:       newFrameWriter(conn),
		pending: make(map[uint64]chan clientResult),
		aborted: make(map[uint64]bool),
	}
	go c.readLoop()
	return c
}

// Close closes the client connection; pending sessions fail with
// ErrConnLost.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop demuxes response frames to their pending streams. Any read or
// decode failure is terminal for the connection: framing can no longer be
// trusted, so every pending stream fails with ErrConnLost.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
			return
		}
		switch f.Type {
		case FramePong:
			c.deliver(f.Stream, clientResult{})
		case FrameVerdict:
			v, err := DecodeVerdictPayload(f.Payload)
			if err != nil {
				c.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
				return
			}
			c.deliver(f.Stream, clientResult{verdict: &core.Verdict{
				Score: v.Score, Attack: v.Attack, SyncOffset: v.SyncOffset,
			}})
		case FrameVerdictEarly:
			v, consumed, err := DecodeEarlyVerdictPayload(f.Payload)
			if err != nil {
				c.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
				return
			}
			c.deliver(f.Stream, clientResult{verdict: &core.Verdict{
				Score: v.Score, Attack: v.Attack, SyncOffset: v.SyncOffset,
				Early: true, Consumed: consumed,
			}})
		case FrameError:
			sessErr, err := DecodeErrorPayload(f.Payload)
			if err != nil {
				c.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
				return
			}
			c.deliver(f.Stream, clientResult{err: sessErr})
		default:
			c.fail(fmt.Errorf("%w: unexpected frame type %d", ErrConnLost, f.Type))
			return
		}
	}
}

// deliver resolves one stream. A response for a stream that is neither
// pending nor aborted — double-assignment of a session, or a response
// invented by the peer — is a protocol violation that kills the
// connection, which is how the soak's "none double-assigned" contract is
// enforced at the wire. An aborted stream's single terminal frame
// consumes its tombstone and is dropped silently.
func (c *Client) deliver(stream uint64, res clientResult) {
	c.mu.Lock()
	ch, ok := c.pending[stream]
	if ok {
		delete(c.pending, stream)
	} else if c.aborted[stream] {
		delete(c.aborted, stream)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	if !ok {
		c.fail(fmt.Errorf("%w: response for unknown stream %d", ErrConnLost, stream))
		return
	}
	ch <- res
}

// fail marks the connection dead and resolves every pending stream.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	stale := c.pending
	c.pending = make(map[uint64]chan clientResult)
	c.aborted = make(map[uint64]bool)
	c.mu.Unlock()
	_ = c.conn.Close()
	for _, ch := range stale {
		ch <- clientResult{err: err}
	}
}

// register allocates a stream id and its delivery channel.
func (c *Client) register() (uint64, chan clientResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return 0, nil, c.dead
	}
	c.next++
	ch := make(chan clientResult, 1)
	c.pending[c.next] = ch
	return c.next, ch, nil
}

// abandon removes a stream that failed to send. No tombstone: the frame
// never reached the peer, so no response will ever arrive for it.
func (c *Client) abandon(stream uint64) {
	c.mu.Lock()
	delete(c.pending, stream)
	c.mu.Unlock()
}

// abortPending abandons a pending stream whose request DID reach the peer
// and tombstones it, so the peer's eventual terminal frame is swallowed.
// It reports whether the stream was still pending; false means a result
// (or connection failure) already resolved it and no tombstone is needed.
func (c *Client) abortPending(stream uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[stream]; !ok {
		return false
	}
	delete(c.pending, stream)
	if c.dead == nil {
		c.aborted[stream] = true
	}
	return true
}

// InFlight returns the number of pending streams — sessions submitted but
// not yet resolved. A stream abandoned without Abort stays pending
// forever; this is the counter the relay-leak regression tests watch.
func (c *Client) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Inspect submits one session and blocks until the verdict arrives. The
// returned verdict carries no spans (only their count crosses the wire);
// failures come back as the same typed errors Submit returns, and a dead
// connection as an error wrapping ErrConnLost. Concurrent Inspect calls
// multiplex the one connection.
func (c *Client) Inspect(req Request) (*core.Verdict, error) {
	stream, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	if err := c.w.write(Frame{Type: FrameRequest, Stream: stream,
		Payload: AppendRequestPayload(nil, req)}); err != nil {
		c.abandon(stream)
		return nil, fmt.Errorf("%w: send: %v", ErrConnLost, err)
	}
	res := <-ch
	return res.verdict, res.err
}

// Ping performs one application-level round trip, bounded by timeout.
func (c *Client) Ping(timeout time.Duration) error {
	stream, ch, err := c.register()
	if err != nil {
		return err
	}
	if err := c.w.write(Frame{Type: FramePing, Stream: stream}); err != nil {
		c.abandon(stream)
		return fmt.Errorf("%w: send: %v", ErrConnLost, err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.err
	case <-timer.C:
		c.abandon(stream)
		return fmt.Errorf("serve: ping timeout after %v", timeout)
	}
}
