package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/profile"
	"vibguard/internal/syncnet"
)

// Server lifecycle states.
const (
	stateRunning = iota
	stateDraining
	stateStopped
)

// session is one admitted detection session moving through the queue.
type session struct {
	id       uint64
	req      Request
	ctx      context.Context
	enqueued time.Time
	// chunks is non-nil for a streamed session: VA audio arrives on it
	// instead of req.VARecording, and the worker runs the streaming
	// pipeline (early exit included) until the channel closes.
	chunks <-chan []float64
	// done receives the single terminal result. It is buffered so a
	// worker finishing an abandoned session never blocks.
	done chan sessionResult
}

type sessionResult struct {
	verdict *core.Verdict
	err     error
}

// Server is the session-oriented detection service: a bounded admission
// queue in front of a fixed worker pool, each worker owning a private
// core.Defense and a per-address cache of hardened wearable clients. See
// the package comment for the architecture.
type Server struct {
	cfg   Config
	queue chan *session

	nextID atomic.Uint64

	mu       sync.RWMutex
	state    int
	listener net.Listener
	conns    map[net.Conn]struct{}

	workerWG sync.WaitGroup
	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	// drained closes when a Shutdown completes, so concurrent Shutdown
	// calls converge.
	drained chan struct{}
}

// NewServer builds and starts a server: the worker pool is live and
// Submit accepts sessions immediately.
func NewServer(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *session, cfg.QueueDepth),
		conns:   make(map[net.Conn]struct{}),
		drained: make(chan struct{}),
	}
	gaugeWorkers.Set(float64(cfg.Workers))
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// QueueDepth returns the admission-queue capacity.
func (s *Server) QueueDepth() int { return s.cfg.QueueDepth }

// Submit admits one session and blocks until its verdict (or typed
// failure) is ready. Admission is non-blocking: a full queue returns
// ErrOverloaded immediately and a draining server returns ErrDraining.
// The session inherits ctx, bounded by Config.SessionTimeout; if the
// deadline expires first, Submit returns ErrSessionTimeout and the worker
// abandons the session.
func (s *Server) Submit(ctx context.Context, req Request) (*core.Verdict, error) {
	if len(req.VARecording) == 0 {
		return nil, fmt.Errorf("serve: session needs a VA recording")
	}
	return s.submitSession(ctx, req, nil)
}

// SubmitStream admits one streamed session: the request carries the
// session fields (its VARecording must be empty), VA audio arrives on
// chunks, and the call blocks until the verdict — which the streaming
// pipeline may reach before chunks closes (Verdict.Early). Admission,
// shedding, draining, and timeout semantics match Submit. It satisfies
// StreamSessionHandler, so it is the front door's chunk-frame handler.
func (s *Server) SubmitStream(ctx context.Context, req Request, chunks <-chan []float64) (*core.Verdict, error) {
	if len(req.VARecording) != 0 {
		return nil, fmt.Errorf("serve: streamed session carries audio in chunks, not the request")
	}
	if chunks == nil {
		return nil, fmt.Errorf("serve: streamed session needs a chunk channel")
	}
	return s.submitSession(ctx, req, chunks)
}

// submitSession is the shared admission + wait path of Submit and
// SubmitStream.
func (s *Server) submitSession(ctx context.Context, req Request, chunks <-chan []float64) (*core.Verdict, error) {
	if req.WearableAddr == "" {
		return nil, fmt.Errorf("serve: session needs a wearable address")
	}
	// Profile-backed sessions (any WearableAddrs) are keyed by user
	// identity: fusion and calibration are per-user, and routing a
	// multi-wearable session by its first address would scatter the user's
	// state across nodes.
	if len(req.WearableAddrs) > 0 && req.UserID == "" {
		return nil, ErrUserIDRequired
	}
	sctx, cancel := context.WithTimeout(ctx, s.cfg.SessionTimeout)
	defer cancel()
	sess := &session{
		id:       s.nextID.Add(1),
		req:      req,
		ctx:      sctx,
		enqueued: time.Now(),
		chunks:   chunks,
		done:     make(chan sessionResult, 1),
	}

	// Admission. The state check and the enqueue share the read lock so a
	// session can never slip into the queue after Shutdown's drain pass:
	// Shutdown flips the state under the write lock before draining.
	s.mu.RLock()
	if s.state != stateRunning {
		s.mu.RUnlock()
		metSessionsDrainRej.Inc()
		return nil, ErrDraining
	}
	// The gauge moves before the enqueue so a worker's decrement can
	// never be observed ahead of the matching increment.
	gaugeQueueDepth.Add(1)
	select {
	case s.queue <- sess:
		s.mu.RUnlock()
		metSessionsAccepted.Inc()
	default:
		s.mu.RUnlock()
		gaugeQueueDepth.Add(-1)
		metSessionsShed.Inc()
		return nil, ErrOverloaded
	}

	select {
	case res := <-sess.done:
		return res.verdict, res.err
	case <-sctx.Done():
		// The result may have raced the deadline; prefer it.
		select {
		case res := <-sess.done:
			return res.verdict, res.err
		default:
		}
		if errors.Is(sctx.Err(), context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w (limit %v)", ErrSessionTimeout, s.cfg.SessionTimeout)
		}
		return nil, sctx.Err()
	}
}

// worker owns one private Defense, a per-address client cache, and (when
// the profile layer is on) a private LRU of effective per-user
// thresholds, and drains the admission queue until it closes.
func (s *Server) worker() {
	defer s.workerWG.Done()
	defense, defErr := s.cfg.NewDefense()
	clients := make(map[string]*syncnet.ReliableClient)
	var cache *profile.LRU
	if s.cfg.Profiles != nil {
		cache = profile.NewLRU(s.cfg.ProfileCacheSize)
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	for sess := range s.queue {
		gaugeQueueDepth.Add(-1)
		histQueueWait.Observe(time.Since(sess.enqueued).Seconds())
		if defErr != nil {
			// The factory was probed at construction, so this is a
			// transient resource failure; fail the session with it.
			s.finish(sess, nil, fmt.Errorf("serve: defense factory: %w", defErr))
			continue
		}
		s.process(defense, clients, cache, sess)
	}
}

// clientFor returns the worker's cached hardened client for addr,
// dialing one on first use.
func (s *Server) clientFor(clients map[string]*syncnet.ReliableClient, addr string) (*syncnet.ReliableClient, error) {
	if client, ok := clients[addr]; ok {
		return client, nil
	}
	client, err := syncnet.NewReliableClient(addr,
		syncnet.WithDialFunc(s.cfg.Dial),
		syncnet.WithRetryPolicy(s.cfg.RetryPolicy),
		syncnet.WithTimeouts(s.cfg.DialTimeout, s.cfg.RequestTimeout))
	if err != nil {
		return nil, err
	}
	clients[addr] = client
	return client, nil
}

// effectiveThreshold resolves the session's decision threshold: the
// defense's configured threshold, shifted by the user's calibrated offset
// when the profile layer is on and the session carries a user identity.
// The worker's LRU answers known users without touching the shared store.
func (s *Server) effectiveThreshold(defense *core.Defense, cache *profile.LRU, userID string) (float64, bool) {
	if cache == nil || userID == "" {
		return defense.Threshold(), false
	}
	if thr, ok := cache.Get(userID); ok {
		return thr, true
	}
	off, _ := s.cfg.Profiles.Offset(userID)
	thr := defense.Threshold() + off
	cache.Put(userID, thr)
	return thr, true
}

// process runs one session end to end: deadline check, wearable fetch
// through the cached hardened clients, then the full Inspect pipeline —
// once per wearable for a profile-backed multi-wearable session, with the
// per-device verdicts fused at the score level.
func (s *Server) process(defense *core.Defense, clients map[string]*syncnet.ReliableClient, cache *profile.LRU, sess *session) {
	if err := sess.ctx.Err(); err != nil {
		s.finish(sess, nil, sessionCtxError(err))
		return
	}
	seed := sess.req.RNGSeed
	if seed == 0 {
		seed = SessionSeed(s.cfg.Seed, sess.id)
	}
	if len(sess.req.WearableAddrs) == 0 {
		// Single-wearable path, unchanged from the pre-profile protocol:
		// fetch and inspection errors surface directly, and with the
		// profile layer off the verdict is bit-identical to the seed
		// deployment.
		client, err := s.clientFor(clients, sess.req.WearableAddr)
		if err != nil {
			s.finish(sess, nil, err)
			return
		}
		wear, err := client.RequestRecordingContext(sess.ctx)
		if err != nil {
			if ctxErr := sess.ctx.Err(); ctxErr != nil {
				err = fmt.Errorf("%w (fetch: %v)", sessionCtxError(ctxErr), err)
			}
			s.finish(sess, nil, err)
			return
		}
		if sess.chunks != nil {
			s.processStream(defense, sess, wear, seed)
			return
		}
		verdict, err := defense.Inspect(sess.req.VARecording, wear, rand.New(rand.NewSource(seed)))
		if err == nil {
			thr, calibrated := s.effectiveThreshold(defense, cache, sess.req.UserID)
			if calibrated {
				verdict.Attack = detector.DetectAt(verdict.Score, thr)
				s.observeSession(defense, cache, sess, verdict, thr)
			}
		}
		s.finish(sess, verdict, err)
		return
	}
	s.processFused(defense, clients, cache, sess, seed)
}

// processFused runs a profile-backed multi-wearable session: every
// wearable's recording is fetched and scored independently (the extras
// under SplitMix64-derived per-device seeds, so their sensing streams are
// decorrelated from the primary's), and the per-device verdicts fuse by
// weighted mean under the quorum rule — any single finite score still
// decides the session. Streamed sessions are admitted but fuse only after
// the stream: the chunked VA audio feeds the primary device's streaming
// pipeline unchanged, and the extras are scored batch-style on the full
// recording only if no early exit fired.
func (s *Server) processFused(defense *core.Defense, clients map[string]*syncnet.ReliableClient, cache *profile.LRU, sess *session, seed int64) {
	addrs := append([]string{sess.req.WearableAddr}, sess.req.WearableAddrs...)
	seen := make(map[string]bool, len(addrs))
	devices := make([]core.DeviceVerdict, 0, len(addrs))
	recordings := make([][]float64, 0, len(addrs))
	fetched := addrs[:0:0]
	for _, addr := range addrs {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		client, err := s.clientFor(clients, addr)
		if err != nil {
			devices = append(devices, core.DeviceVerdict{Addr: addr, Err: err})
			continue
		}
		wear, err := client.RequestRecordingContext(sess.ctx)
		if err != nil {
			// A session-level deadline fails the whole session; a
			// device-level fetch failure just costs that device its vote.
			if ctxErr := sess.ctx.Err(); ctxErr != nil {
				s.finish(sess, nil, fmt.Errorf("%w (fetch %s: %v)", sessionCtxError(ctxErr), addr, err))
				return
			}
			devices = append(devices, core.DeviceVerdict{Addr: addr, Err: err})
			continue
		}
		devices = append(devices, core.DeviceVerdict{Addr: addr})
		recordings = append(recordings, wear)
		fetched = append(fetched, addr)
	}
	thr, calibrated := s.effectiveThreshold(defense, cache, sess.req.UserID)
	if sess.chunks != nil {
		s.processFusedStream(defense, sess, devices, recordings, fetched, seed, thr, cache, calibrated)
		return
	}
	va := sess.req.VARecording
	di := 0
	for i := range devices {
		if devices[i].Err != nil {
			continue
		}
		v, err := defense.Inspect(va, recordings[di], rand.New(rand.NewSource(deviceSeed(seed, uint64(di)))))
		devices[i].Verdict, devices[i].Err = v, err
		di++
	}
	s.finishFused(defense, cache, sess, devices, thr, calibrated)
}

// processFusedStream is the streamed shape of processFused: the primary
// device (the first fetched) runs the streaming pipeline on the chunked
// VA audio; an early exit decides the session on the primary alone (the
// extras' full-recording scores could shift a verdict the early exit
// already committed), while a stream that runs to completion scores the
// extras batch-style on the buffered recording and fuses all devices.
func (s *Server) processFusedStream(defense *core.Defense, sess *session, devices []core.DeviceVerdict, recordings [][]float64, fetched []string, seed int64, thr float64, cache *profile.LRU, calibrated bool) {
	if len(recordings) == 0 {
		// Every fetch failed; fuse immediately for the typed quorum error.
		s.finishFused(defense, cache, sess, devices, thr, calibrated)
		return
	}
	si, err := defense.NewStreamInspector(s.cfg.Stream, deviceSeed(seed, 0))
	if err != nil {
		s.finish(sess, nil, err)
		return
	}
	if err := si.FeedWearable(recordings[0]); err != nil {
		s.finish(sess, nil, err)
		return
	}
	var va []float64
	for {
		select {
		case <-sess.ctx.Done():
			s.finish(sess, nil, sessionCtxError(sess.ctx.Err()))
			return
		case chunk, ok := <-sess.chunks:
			if !ok {
				v, err := si.Finish()
				setDevice(devices, fetched[0], v, err)
				di := 0
				for i := range devices {
					if devices[i].Err != nil || devices[i].Verdict != nil {
						continue
					}
					di++
					v, err := defense.Inspect(va, recordings[di], rand.New(rand.NewSource(deviceSeed(seed, uint64(di)))))
					devices[i].Verdict, devices[i].Err = v, err
				}
				s.finishFused(defense, cache, sess, devices, thr, calibrated)
				return
			}
			va = append(va, chunk...)
			v, err := si.Feed(chunk)
			if err != nil {
				s.finish(sess, nil, err)
				return
			}
			if v != nil {
				metStreamSessionsEarly.Inc()
				setDevice(devices, fetched[0], v, nil)
				// The unscored extras carry neither verdict nor error, so
				// the fusion sees exactly one contributing device.
				s.finishFused(defense, cache, sess, devices, thr, calibrated)
				return
			}
		}
	}
}

// setDevice records the verdict of the named device.
func setDevice(devices []core.DeviceVerdict, addr string, v *core.Verdict, err error) {
	for i := range devices {
		if devices[i].Addr == addr {
			devices[i].Verdict, devices[i].Err = v, err
			return
		}
	}
}

// finishFused fuses the per-device verdicts, feeds the profile layer, and
// delivers the session result.
func (s *Server) finishFused(defense *core.Defense, cache *profile.LRU, sess *session, devices []core.DeviceVerdict, thr float64, calibrated bool) {
	fused, contributing, err := core.FuseVerdicts(devices, thr)
	if err != nil {
		s.finish(sess, nil, err)
		return
	}
	histFusionDevices.Observe(float64(contributing))
	if calibrated {
		s.observeSession(defense, cache, sess, fused, thr)
	}
	s.finish(sess, fused, nil)
}

// observeSession feeds a completed session back into the profile layer:
// a legitimate (non-attack) score moves the user's calibration EWMA, the
// session's wearables register as known devices, and the worker's cached
// effective threshold is refreshed so the next session sees the updated
// calibration. Attack scores never touch the EWMA — calibration tracks
// the user's legitimate voice, not the adversary's.
func (s *Server) observeSession(defense *core.Defense, cache *profile.LRU, sess *session, v *core.Verdict, thr float64) {
	if v.Attack {
		return
	}
	p := s.cfg.Profiles.Observe(sess.req.UserID, v.Score)
	profile.RecordOffset(p.Offset)
	s.cfg.Profiles.AddDevices(sess.req.UserID, sess.req.WearableAddr)
	s.cfg.Profiles.AddDevices(sess.req.UserID, sess.req.WearableAddrs...)
	cache.Put(sess.req.UserID, defense.Threshold()+p.Offset)
}

// processStream runs one streamed session: the wearable recording seeds
// the inspector up front (it is fetched whole, like a batch session's),
// then VA chunks feed the streaming pipeline until an early exit fires or
// the stream closes and the batch fallback decides. The session deadline
// keeps covering the stream: an expired context fails the session even
// mid-stream.
func (s *Server) processStream(defense *core.Defense, sess *session, wear []float64, seed int64) {
	si, err := defense.NewStreamInspector(s.cfg.Stream, seed)
	if err != nil {
		s.finish(sess, nil, err)
		return
	}
	if err := si.FeedWearable(wear); err != nil {
		s.finish(sess, nil, err)
		return
	}
	for {
		select {
		case <-sess.ctx.Done():
			s.finish(sess, nil, sessionCtxError(sess.ctx.Err()))
			return
		case chunk, ok := <-sess.chunks:
			if !ok {
				v, err := si.Finish()
				s.finish(sess, v, err)
				return
			}
			v, err := si.Feed(chunk)
			if err != nil {
				s.finish(sess, nil, err)
				return
			}
			if v != nil {
				metStreamSessionsEarly.Inc()
				s.finish(sess, v, nil)
				return
			}
		}
	}
}

// sessionCtxError maps a session-context error to the typed server error.
func sessionCtxError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrSessionTimeout
	}
	return err
}

// finish delivers the terminal result and records the session outcome.
func (s *Server) finish(sess *session, v *core.Verdict, err error) {
	histSessionLatency.Observe(time.Since(sess.enqueued).Seconds())
	switch {
	case err == nil:
		metSessionsDone.Inc()
	case errors.Is(err, ErrSessionTimeout) || errors.Is(err, context.Canceled):
		metSessionsExpired.Inc()
	default:
		metSessionsFailed.Inc()
	}
	sess.done <- sessionResult{verdict: v, err: err}
}

// Shutdown drains the server: it closes the front-end listener (no new
// connections), rejects every queued-but-unstarted session with
// ErrDraining, waits for in-flight sessions to finish (bounded by ctx),
// and finally half-closes lingering front-end connections so their last
// responses are still delivered. Submit returns ErrDraining from the
// moment Shutdown begins. Concurrent and repeated calls converge on the
// first drain; they return ctx.Err() if it outlives their context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.state != stateRunning {
		s.mu.Unlock()
		select {
		case <-s.drained:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.state = stateDraining
	ln := s.listener
	s.mu.Unlock()

	// 1. Close the listener first: by the time Shutdown returns (and
	// throughout the drain), no new connection can be accepted.
	if ln != nil {
		_ = ln.Close()
		s.acceptWG.Wait()
	}

	// 2. Reject queued-but-unstarted sessions. No Submit can enqueue
	// after the state flip, so this empties the queue exactly once; a
	// worker racing for the same session simply makes it in-flight
	// instead, which the drain then waits for.
	for {
		sess, ok := popNonBlocking(s.queue)
		if !ok {
			break
		}
		gaugeQueueDepth.Add(-1)
		metSessionsDrainRej.Inc()
		sess.done <- sessionResult{err: ErrDraining}
	}
	close(s.queue)

	// 3. Wait for in-flight sessions (bounded by ctx).
	workersDone := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
		return ctx.Err()
	}

	// 4. Every session now has its result; half-close lingering
	// connections so handlers can still flush a final response, then see
	// EOF and exit.
	s.mu.Lock()
	for conn := range s.conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseRead()
		} else {
			_ = conn.Close()
		}
	}
	s.mu.Unlock()
	connsDone := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(connsDone)
	}()
	select {
	case <-connsDone:
	case <-ctx.Done():
		return ctx.Err()
	}

	s.mu.Lock()
	s.state = stateStopped
	s.mu.Unlock()
	close(s.drained)
	return nil
}

// popNonBlocking takes one queued session if any is ready.
func popNonBlocking(q chan *session) (*session, bool) {
	select {
	case sess, ok := <-q:
		return sess, ok
	default:
		return nil, false
	}
}

// Listen mounts the session front-end on addr and returns the resolved
// listen address. One listener per server; sessions arriving over it run
// through the same admission queue as Submit. The front-end speaks the
// framed binary protocol (wire.go) with connection multiplexing: many
// concurrent sessions per connection, each tagged with a stream id.
func (s *Server) Listen(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateRunning {
		return "", ErrDraining
	}
	if s.listener != nil {
		return "", fmt.Errorf("serve: already listening on %s", s.listener.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	s.listener = ln
	s.acceptWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the front-end listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.state != stateRunning {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// handleConn serves one multiplexed front-end connection until the peer
// (or the drain's half-close) ends the read side; ServeMuxConn flushes
// every in-flight stream's response before returning.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.connWG.Done()
	}()
	ServeMuxConnStream(conn, s.Submit, s.SubmitStream)
}

// Kill abruptly severs the server's network presence — the listener and
// every front-end connection close hard, with no drain and no final
// responses — simulating node death for the chaos harness. Peers observe
// resets mid-session. The worker pool keeps running in-process; use
// Shutdown to release it (safe after Kill).
func (s *Server) Kill() {
	s.mu.Lock()
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, conn := range conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) // RST, not FIN: the peer sees a dead node
		}
		_ = conn.Close()
	}
}
