package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// The session wire protocol: length-prefixed binary frames with a
// versioned fixed header, varint lengths, and explicit error-kind codes.
// It replaces the gob front-end, whose per-connection type negotiation
// and reflection walk are the wrong cost shape for millions of short
// sessions (every fresh connection re-paid the type descriptors before
// the first verdict). A frame is:
//
//	byte 0   protocol version (WireVersion)
//	byte 1   frame type (FrameRequest … FrameVerdictEarly)
//	uvarint  stream id — many concurrent sessions multiplex one TCP
//	         connection, each tagged with the stream that owns it
//	uvarint  payload length (0 … MaxFramePayload)
//	payload  frame-type-specific binary payload
//
// Decoding is hardened for fuzzing: unknown versions, unknown frame
// types, oversized or overlong-varint lengths, and truncated frames all
// surface as typed errors, and no length is trusted before it is checked
// against MaxFramePayload (a hostile 2^60 length never allocates).
// Multi-byte integers inside payloads are little-endian; float64s travel
// as IEEE-754 bits.

// WireVersion is the protocol version stamped on every frame. A decoder
// rejects frames from any other version with ErrUnknownVersion.
const WireVersion = 1

// Frame types.
const (
	// FrameRequest carries one session submission (request payload).
	FrameRequest = byte(1)
	// FrameVerdict carries one successful verdict (verdict payload).
	FrameVerdict = byte(2)
	// FrameError carries one typed session failure (error payload).
	FrameError = byte(3)
	// FramePing and FramePong are the health-probe pair; their payloads
	// are empty. Servers answer a ping by echoing the stream id back on a
	// pong.
	FramePing = byte(4)
	FramePong = byte(5)
	// FrameChunk carries one streamed VA audio chunk (chunk payload). The
	// first chunk of a stream sets the header flag and carries the session
	// fields of a request; the last sets the final flag. Chunks interleave
	// freely with other streams' frames on the shared connection.
	FrameChunk = byte(6)
	// FrameVerdictEarly carries a verdict reached before the stream ended
	// (verdict payload plus the consumed-sample count). The sender stops
	// reading the stream's remaining chunks after it.
	FrameVerdictEarly = byte(7)
)

// MaxFramePayload caps a frame payload. The largest legitimate frame is a
// request carrying a VA recording (8 bytes per sample: a minute of 16 kHz
// audio is ~7.7 MiB), so 64 MiB leaves generous headroom while keeping a
// hostile length from allocating unbounded memory.
const MaxFramePayload = 64 << 20

// Typed frame-decode errors. They are the fuzzing contract: any byte
// stream either decodes or fails with one of these (or io.EOF /
// io.ErrUnexpectedEOF for clean and mid-frame truncation) — never a panic
// and never an oversized allocation.
var (
	// ErrUnknownVersion is returned for a frame whose version byte is not
	// WireVersion.
	ErrUnknownVersion = errors.New("serve: unknown wire protocol version")
	// ErrUnknownFrameType is returned for a frame whose type byte is not
	// one of the Frame* constants.
	ErrUnknownFrameType = errors.New("serve: unknown frame type")
	// ErrFrameTooLarge is returned when a frame declares a payload longer
	// than MaxFramePayload. Nothing is allocated for such a frame.
	ErrFrameTooLarge = errors.New("serve: frame payload exceeds limit")
	// ErrMalformedFrame is returned for varints that overflow or payloads
	// whose internal structure is inconsistent with their length.
	ErrMalformedFrame = errors.New("serve: malformed frame")
)

// Frame is one decoded wire frame.
type Frame struct {
	// Type is one of the Frame* constants.
	Type byte
	// Stream tags the session this frame belongs to on its connection.
	Stream uint64
	// Payload is the frame-type-specific body (nil for ping/pong).
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. Encoding never fails for payloads within MaxFramePayload.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, WireVersion, f.Type)
	dst = binary.AppendUvarint(dst, f.Stream)
	dst = binary.AppendUvarint(dst, uint64(len(f.Payload)))
	return append(dst, f.Payload...)
}

// WriteFrame encodes the frame to w in one Write call.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 0, 2+2*binary.MaxVarintLen64+len(f.Payload))
	if _, err := w.Write(AppendFrame(buf, f)); err != nil {
		return err
	}
	return nil
}

// ReadFrame decodes one frame from br. A clean EOF at a frame boundary
// returns io.EOF; truncation inside a frame returns io.ErrUnexpectedEOF.
// The payload length is validated against MaxFramePayload before any
// allocation.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	version, err := br.ReadByte()
	if err != nil {
		return Frame{}, err // io.EOF: clean end of stream
	}
	if version != WireVersion {
		return Frame{}, fmt.Errorf("%w: %d", ErrUnknownVersion, version)
	}
	typ, err := br.ReadByte()
	if err != nil {
		return Frame{}, truncated(err)
	}
	if typ < FrameRequest || typ > FrameVerdictEarly {
		return Frame{}, fmt.Errorf("%w: %d", ErrUnknownFrameType, typ)
	}
	stream, err := readUvarint(br)
	if err != nil {
		return Frame{}, err
	}
	length, err := readUvarint(br)
	if err != nil {
		return Frame{}, err
	}
	if length > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, length)
	}
	f := Frame{Type: typ, Stream: stream}
	if length > 0 {
		f.Payload = make([]byte, length)
		if _, err := io.ReadFull(br, f.Payload); err != nil {
			return Frame{}, truncated(err)
		}
	}
	return f, nil
}

// DecodeFrame decodes one frame from the head of data and returns the
// number of bytes consumed. It is the fuzzing entry point: every failure
// is one of the typed errors above (truncation maps to
// io.ErrUnexpectedEOF), and a declared length is checked against both
// MaxFramePayload and the bytes actually present before allocating.
func DecodeFrame(data []byte) (Frame, int, error) {
	if len(data) == 0 {
		return Frame{}, 0, io.EOF
	}
	if data[0] != WireVersion {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrUnknownVersion, data[0])
	}
	if len(data) < 2 {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	typ := data[1]
	if typ < FrameRequest || typ > FrameVerdictEarly {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrUnknownFrameType, typ)
	}
	off := 2
	stream, n, err := uvarintAt(data, off)
	if err != nil {
		return Frame{}, 0, err
	}
	off += n
	length, n, err := uvarintAt(data, off)
	if err != nil {
		return Frame{}, 0, err
	}
	off += n
	if length > MaxFramePayload {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, length)
	}
	if uint64(len(data)-off) < length {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	f := Frame{Type: typ, Stream: stream}
	if length > 0 {
		f.Payload = make([]byte, length)
		copy(f.Payload, data[off:off+int(length)])
	}
	return f, off + int(length), nil
}

// readUvarint reads a varint, mapping overflow to ErrMalformedFrame and
// truncation to io.ErrUnexpectedEOF.
func readUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("%w: %v", ErrMalformedFrame, err)
	}
	return v, nil
}

// uvarintAt decodes a varint at data[off:], with the same error mapping.
func uvarintAt(data []byte, off int) (uint64, int, error) {
	if off >= len(data) {
		return 0, 0, io.ErrUnexpectedEOF
	}
	v, n := binary.Uvarint(data[off:])
	if n > 0 {
		return v, n, nil
	}
	if n == 0 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	return 0, 0, fmt.Errorf("%w: uvarint overflow", ErrMalformedFrame)
}

// truncated maps an io error inside a frame to io.ErrUnexpectedEOF.
func truncated(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- Request payload -------------------------------------------------

// A request payload mirrors Request:
//
//	uvarint len + bytes  UserID (the routing/tenancy key)
//	uvarint len + bytes  WearableAddr
//	8 bytes              RNGSeed (int64 bits, little-endian)
//	uvarint count        VA sample count
//	count × 8 bytes      samples (float64 bits, little-endian)
//	extension            optional trailing block, see below
//
// The sample count is validated against the bytes actually present
// before the sample slice is allocated.
//
// The extension block is how the request payload grows without a version
// bump: it is appended only when a post-v1 field is actually present, so
// a request without any encodes byte-identically to the original
// protocol, and a v1 decoder reading a payload with one fails loudly
// (trailing bytes) rather than silently dropping fields. Its layout:
//
//	byte                 extension flags (bit 0: extra wearable addrs)
//	uvarint count        extra wearable addr count (bit 0 only)
//	count × string       extra wearable addrs (uvarint len + bytes each)
//
// Unknown extension flag bits are malformed — a decoder must never
// guess at bytes it cannot attribute.

// extWearableAddrs flags the extra-wearable-addrs extension field.
const extWearableAddrs = byte(1)

// AppendRequestPayload appends the encoded request to dst.
func AppendRequestPayload(dst []byte, req Request) []byte {
	dst = appendString(dst, req.UserID)
	dst = appendString(dst, req.WearableAddr)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(req.RNGSeed))
	dst = binary.AppendUvarint(dst, uint64(len(req.VARecording)))
	for _, s := range req.VARecording {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s))
	}
	if len(req.WearableAddrs) > 0 {
		dst = append(dst, extWearableAddrs)
		dst = binary.AppendUvarint(dst, uint64(len(req.WearableAddrs)))
		for _, addr := range req.WearableAddrs {
			dst = appendString(dst, addr)
		}
	}
	return dst
}

// DecodeRequestPayload decodes a request payload. The payload must be
// exactly consumed; trailing bytes are malformed.
func DecodeRequestPayload(p []byte) (Request, error) {
	var req Request
	var err error
	if req.UserID, p, err = takeString(p); err != nil {
		return Request{}, err
	}
	if req.WearableAddr, p, err = takeString(p); err != nil {
		return Request{}, err
	}
	if len(p) < 8 {
		return Request{}, fmt.Errorf("%w: truncated seed", ErrMalformedFrame)
	}
	req.RNGSeed = int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	count, n, err := uvarintAt(p, 0)
	if err != nil {
		return Request{}, fmt.Errorf("%w: sample count", ErrMalformedFrame)
	}
	p = p[n:]
	if uint64(len(p)) < count*8 || count > MaxFramePayload/8 {
		return Request{}, fmt.Errorf("%w: %d samples in %d payload bytes", ErrMalformedFrame, count, len(p))
	}
	if count > 0 {
		req.VARecording = make([]float64, count)
		for i := range req.VARecording {
			req.VARecording[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
		}
		p = p[count*8:]
	}
	if len(p) == 0 {
		return req, nil // pre-extension request
	}
	flags := p[0]
	p = p[1:]
	if flags&^extWearableAddrs != 0 {
		return Request{}, fmt.Errorf("%w: extension flags %#x", ErrMalformedFrame, flags)
	}
	if flags&extWearableAddrs != 0 {
		addrCount, n, err := uvarintAt(p, 0)
		if err != nil {
			return Request{}, fmt.Errorf("%w: wearable addr count", ErrMalformedFrame)
		}
		p = p[n:]
		// Each addr needs at least its length byte, so the count bounds the
		// allocation against the bytes actually present.
		if addrCount == 0 || addrCount > uint64(len(p)) {
			return Request{}, fmt.Errorf("%w: %d wearable addrs in %d bytes", ErrMalformedFrame, addrCount, len(p))
		}
		req.WearableAddrs = make([]string, 0, addrCount)
		for i := uint64(0); i < addrCount; i++ {
			var addr string
			if addr, p, err = takeString(p); err != nil {
				return Request{}, err
			}
			req.WearableAddrs = append(req.WearableAddrs, addr)
		}
	}
	if len(p) != 0 {
		return Request{}, fmt.Errorf("%w: %d trailing bytes", ErrMalformedFrame, len(p))
	}
	return req, nil
}

// --- Verdict payload -------------------------------------------------

// A verdict payload carries the wire-visible subset of core.Verdict:
//
//	byte     flags (bit 0: attack)
//	8 bytes  score (float64 bits, little-endian)
//	varint   sync offset (zigzag-encoded, may be negative)
//	uvarint  span count (spans themselves stay server-side)

// wireVerdict is the wire-visible subset of a verdict.
type wireVerdict struct {
	Score      float64
	Attack     bool
	SyncOffset int
	Spans      int
}

// AppendVerdictPayload appends the encoded verdict to dst.
func AppendVerdictPayload(dst []byte, v wireVerdict) []byte {
	var flags byte
	if v.Attack {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Score))
	dst = binary.AppendVarint(dst, int64(v.SyncOffset))
	return binary.AppendUvarint(dst, uint64(v.Spans))
}

// DecodeVerdictPayload decodes a verdict payload.
func DecodeVerdictPayload(p []byte) (wireVerdict, error) {
	var v wireVerdict
	if len(p) < 9 {
		return v, fmt.Errorf("%w: truncated verdict", ErrMalformedFrame)
	}
	v.Attack = p[0]&1 != 0
	v.Score = math.Float64frombits(binary.LittleEndian.Uint64(p[1:]))
	p = p[9:]
	off, n := binary.Varint(p)
	if n <= 0 {
		return v, fmt.Errorf("%w: sync offset", ErrMalformedFrame)
	}
	v.SyncOffset = int(off)
	p = p[n:]
	spans, n, err := uvarintAt(p, 0)
	if err != nil || spans > math.MaxInt32 {
		return v, fmt.Errorf("%w: span count", ErrMalformedFrame)
	}
	v.Spans = int(spans)
	return v, nil
}

// --- Error payload ---------------------------------------------------

// An error payload is a typed session failure:
//
//	byte                 error-kind code (one of the code* constants)
//	uvarint len + bytes  node id that failed the session ("" when the
//	                     serving node itself answered; the router fills
//	                     it in so shed errors carry the node identity
//	                     across the extra hop)
//	uvarint len + bytes  error message

// Error-kind codes. Explicit constants, not iota: both ends may be
// rebuilt independently, so the numbering is part of the protocol. They
// are the binary counterpart of the legacy gob kind strings, and both
// map to the same typed sentinels (pinned by the equivalence tests).
const (
	codeOverloaded   = byte(1)
	codeDraining     = byte(2)
	codeTimeout      = byte(3)
	codeTransport    = byte(4)
	codeWearable     = byte(5)
	codeNonFinite    = byte(6)
	codeBadRecording = byte(7)
	codeInternal     = byte(8)
	codeNodeLost     = byte(9)
	codeNoNodes      = byte(10)
	codeUserRequired = byte(11)
)

// codeToKind maps wire codes to the stable kind strings shared with the
// legacy gob codec (RemoteError.Kind stays meaningful either way).
var codeToKind = map[byte]string{
	codeOverloaded:   kindOverloaded,
	codeDraining:     kindDraining,
	codeTimeout:      kindTimeout,
	codeTransport:    kindTransport,
	codeWearable:     kindWearable,
	codeNonFinite:    kindNonFinite,
	codeBadRecording: kindBadRecording,
	codeInternal:     kindInternal,
	codeNodeLost:     kindNodeLost,
	codeNoNodes:      kindNoNodes,
	codeUserRequired: kindUserRequired,
}

// errCode classifies a session error for the wire, mirroring errKind.
func errCode(err error) byte {
	switch errKind(err) {
	case kindOverloaded:
		return codeOverloaded
	case kindDraining:
		return codeDraining
	case kindTimeout:
		return codeTimeout
	case kindTransport:
		return codeTransport
	case kindWearable:
		return codeWearable
	case kindNonFinite:
		return codeNonFinite
	case kindBadRecording:
		return codeBadRecording
	case kindNodeLost:
		return codeNodeLost
	case kindNoNodes:
		return codeNoNodes
	case kindUserRequired:
		return codeUserRequired
	default:
		return codeInternal
	}
}

// AppendErrorPayload appends the encoded session failure to dst. The
// node identity is taken from a wrapping NodeError, if any.
func AppendErrorPayload(dst []byte, err error) []byte {
	node := ""
	var ne *NodeError
	if errors.As(err, &ne) {
		node = ne.Node
	}
	dst = append(dst, errCode(err))
	dst = appendString(dst, node)
	return appendString(dst, err.Error())
}

// DecodeErrorPayload decodes an error payload back into the matching
// typed error: the code maps to the same sentinel the server classified
// (errors.Is/As work across the wire), an unknown code degrades to a
// *RemoteError, and a non-empty node id wraps the result in a NodeError.
func DecodeErrorPayload(p []byte) (error, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("%w: empty error payload", ErrMalformedFrame)
	}
	code := p[0]
	node, p, err := takeString(p[1:])
	if err != nil {
		return nil, err
	}
	msg, _, err := takeString(p)
	if err != nil {
		return nil, err
	}
	kind, ok := codeToKind[code]
	if !ok {
		kind = fmt.Sprintf("code_%d", code)
	}
	sessErr := remoteError(kind, msg)
	if node != "" {
		sessErr = &NodeError{Node: node, Err: sessErr}
	}
	return sessErr, nil
}

// --- Chunk payload ---------------------------------------------------
//
// A chunk payload carries one streamed slice of the VA recording:
//
//	byte                 flags (bit 0: header chunk — session fields
//	                     follow; bit 1: final chunk of the stream)
//	header fields        only when the header flag is set: UserID,
//	                     WearableAddr (uvarint len + bytes each) and
//	                     RNGSeed (8 bytes, int64 bits, little-endian)
//	uvarint count        sample count (may be 0, e.g. a bare final chunk)
//	count × 8 bytes      samples (float64 bits, little-endian)
//
// The first chunk of every stream must set the header flag; the stream is
// closed by a chunk with the final flag (which may itself carry samples).

const (
	chunkFlagHeader = byte(1)
	chunkFlagFinal  = byte(2)
)

// wireChunk is one decoded stream chunk.
type wireChunk struct {
	Header  bool
	Final   bool
	Req     Request // UserID/WearableAddr/RNGSeed; only valid when Header
	Samples []float64
}

// AppendChunkPayload appends the encoded chunk to dst. Req's VARecording
// field is ignored; samples travel in the chunk's own sample block.
func AppendChunkPayload(dst []byte, c wireChunk) []byte {
	var flags byte
	if c.Header {
		flags |= chunkFlagHeader
	}
	if c.Final {
		flags |= chunkFlagFinal
	}
	dst = append(dst, flags)
	if c.Header {
		dst = appendString(dst, c.Req.UserID)
		dst = appendString(dst, c.Req.WearableAddr)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Req.RNGSeed))
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.Samples)))
	for _, s := range c.Samples {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s))
	}
	return dst
}

// DecodeChunkPayload decodes a chunk payload with the same hardening as
// DecodeRequestPayload: the sample count is validated against the bytes
// actually present before the sample slice is allocated.
func DecodeChunkPayload(p []byte) (wireChunk, error) {
	var c wireChunk
	if len(p) < 1 {
		return c, fmt.Errorf("%w: empty chunk payload", ErrMalformedFrame)
	}
	flags := p[0]
	if flags&^(chunkFlagHeader|chunkFlagFinal) != 0 {
		return c, fmt.Errorf("%w: chunk flags %#x", ErrMalformedFrame, flags)
	}
	c.Header = flags&chunkFlagHeader != 0
	c.Final = flags&chunkFlagFinal != 0
	p = p[1:]
	var err error
	if c.Header {
		if c.Req.UserID, p, err = takeString(p); err != nil {
			return wireChunk{}, err
		}
		if c.Req.WearableAddr, p, err = takeString(p); err != nil {
			return wireChunk{}, err
		}
		if len(p) < 8 {
			return wireChunk{}, fmt.Errorf("%w: truncated seed", ErrMalformedFrame)
		}
		c.Req.RNGSeed = int64(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	count, n, err := uvarintAt(p, 0)
	if err != nil {
		return wireChunk{}, fmt.Errorf("%w: chunk sample count", ErrMalformedFrame)
	}
	p = p[n:]
	if uint64(len(p)) != count*8 || count > MaxFramePayload/8 {
		return wireChunk{}, fmt.Errorf("%w: %d samples in %d payload bytes", ErrMalformedFrame, count, len(p))
	}
	if count > 0 {
		c.Samples = make([]float64, count)
		for i := range c.Samples {
			c.Samples[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
		}
	}
	return c, nil
}

// --- Early-verdict payload -------------------------------------------
//
// An early-verdict payload is a verdict payload followed by:
//
//	uvarint  consumed VA samples when the verdict fired

// AppendEarlyVerdictPayload appends the encoded early verdict to dst.
func AppendEarlyVerdictPayload(dst []byte, v wireVerdict, consumed int) []byte {
	dst = AppendVerdictPayload(dst, v)
	return binary.AppendUvarint(dst, uint64(consumed))
}

// DecodeEarlyVerdictPayload decodes an early-verdict payload.
func DecodeEarlyVerdictPayload(p []byte) (wireVerdict, int, error) {
	v, err := DecodeVerdictPayload(p)
	if err != nil {
		return v, 0, err
	}
	// Re-walk the verdict prefix to find the consumed field. The verdict
	// payload is flags+score (9 bytes), a varint, and a uvarint.
	off := 9
	_, n := binary.Varint(p[off:])
	off += n
	_, n = binary.Uvarint(p[off:])
	off += n
	consumed, _, err := uvarintAt(p, off)
	if err != nil || consumed > MaxFramePayload {
		return v, 0, fmt.Errorf("%w: consumed count", ErrMalformedFrame)
	}
	return v, int(consumed), nil
}

// appendString appends a uvarint-length-prefixed string to dst.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// takeString decodes a length-prefixed string from the head of p and
// returns the remainder. The length is checked against the bytes present
// before any copy.
func takeString(p []byte) (string, []byte, error) {
	n, sz, err := uvarintAt(p, 0)
	if err != nil {
		return "", nil, fmt.Errorf("%w: string length", ErrMalformedFrame)
	}
	p = p[sz:]
	if uint64(len(p)) < n {
		return "", nil, fmt.Errorf("%w: string of %d bytes in %d remaining", ErrMalformedFrame, n, len(p))
	}
	return string(p[:n]), p[n:], nil
}
