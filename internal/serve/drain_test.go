package serve_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vibguard/internal/serve"
	"vibguard/internal/syncnet"
)

// TestGracefulDrain pins the Shutdown contract: with 2 workers pinned on a
// gated wearable and 4 more sessions queued, Shutdown must (1) close the
// front-end listener immediately — observable while the drain is still
// waiting on in-flight work — (2) reject every queued-but-unstarted
// session with ErrDraining, (3) let both in-flight sessions finish with
// real verdicts, and (4) only then return.
func TestGracefulDrain(t *testing.T) {
	sc := scenarioFor(t)

	// A gated agent: RecordFunc blocks until release closes, so in-flight
	// sessions stay in flight exactly as long as the test wants.
	var recordCalls atomic.Int64
	release := make(chan struct{})
	agent, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		recordCalls.Add(1)
		<-release
		return sc.legitWear, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	srv := newServer(t, serve.Config{
		Workers:        2,
		QueueDepth:     8,
		SessionTimeout: time.Minute,
		Seed:           serveSeed,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const total = 6 // 2 in-flight + 4 queued
	results := make([]error, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Submit(context.Background(), serve.Request{
				WearableAddr: agent.Addr(),
				VARecording:  sc.legitVA,
				RNGSeed:      serve.SessionSeed(serveSeed, uint64(100+i)),
			})
			results[i] = err
		}(i)
	}

	// Wait until both workers are pinned inside the gated RecordFunc.
	waitFor(t, 10*time.Second, func() bool { return recordCalls.Load() >= 2 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := contextWithTimeout(30 * time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// (1) The listener must close while Shutdown is still blocked on the
	// in-flight sessions (nothing has been released yet).
	waitFor(t, 10*time.Second, func() bool {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return false
		}
		return true
	})
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before in-flight sessions finished", err)
	default:
	}

	// (2) New sessions are rejected with the typed drain error.
	if _, err := srv.Submit(context.Background(), serve.Request{
		WearableAddr: agent.Addr(), VARecording: sc.legitVA,
	}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("Submit during drain: err = %v, want ErrDraining", err)
	}

	// (3) Release the gate: the two in-flight sessions complete.
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	var completed, drained int
	for i, err := range results {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, serve.ErrDraining):
			drained++
		default:
			t.Errorf("session %d: unexpected error %v", i, err)
		}
	}
	if completed != 2 {
		t.Errorf("completed = %d, want 2 (the in-flight sessions)", completed)
	}
	if drained != 4 {
		t.Errorf("drain-rejected = %d, want 4 (the queued sessions)", drained)
	}

	// (4) After the drain, Submit keeps returning the typed rejection and
	// a repeated Shutdown converges immediately.
	if _, err := srv.Submit(context.Background(), serve.Request{
		WearableAddr: agent.Addr(), VARecording: sc.legitVA,
	}); !errors.Is(err, serve.ErrDraining) {
		t.Errorf("Submit after drain: err = %v, want ErrDraining", err)
	}
	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("repeated Shutdown: %v", err)
	}
}

// TestDrainDeliversFinalWireResponses verifies the front-end half-close:
// a client whose session is in flight when Shutdown begins still receives
// its verdict over the wire before the connection ends.
func TestDrainDeliversFinalWireResponses(t *testing.T) {
	sc := scenarioFor(t)
	var recordCalls atomic.Int64
	release := make(chan struct{})
	agent, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		recordCalls.Add(1)
		<-release
		return sc.legitWear, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	srv := newServer(t, serve.Config{
		Workers:        1,
		QueueDepth:     4,
		SessionTimeout: time.Minute,
		Seed:           serveSeed,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	type reply struct {
		attack bool
		err    error
	}
	got := make(chan reply, 1)
	go func() {
		v, err := client.Inspect(serve.Request{
			WearableAddr: agent.Addr(),
			VARecording:  sc.legitVA,
			RNGSeed:      serve.SessionSeed(serveSeed, 4242),
		})
		if err != nil {
			got <- reply{err: err}
			return
		}
		got <- reply{attack: v.Attack}
	}()

	waitFor(t, 10*time.Second, func() bool { return recordCalls.Load() >= 1 })
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := contextWithTimeout(30 * time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give the drain a moment to reach the in-flight wait, then release.
	time.Sleep(50 * time.Millisecond)
	close(release)

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight wire session lost its response: %v", r.err)
		}
		if r.attack {
			t.Error("legitimate in-flight session flagged as attack")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight wire response never arrived")
	}
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, limit time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
