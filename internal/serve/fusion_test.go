package serve_test

import (
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"vibguard/internal/core"
	"vibguard/internal/obs"
	"vibguard/internal/profile"
	"vibguard/internal/serve"
)

// deadAddr returns an address with no listener behind it, so wearable
// fetches against it fail after the fast retry budget.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestSubmitUserIDRequired pins the profile-backed session contract: a
// request carrying WearableAddrs without a UserID is rejected with the
// typed sentinel, locally and across the wire.
func TestSubmitUserIDRequired(t *testing.T) {
	sc := scenarioFor(t)
	// Agents before the server: test cleanups run LIFO, and the server's
	// shutdown must close its cached wearable clients before the agents
	// wait out their in-flight connections.
	agent := newAgent(t, sc.legitWear)
	srv := newServer(t, serve.Config{Workers: 2, Seed: serveSeed})

	ctx, cancel := contextWithTimeout(10 * time.Second)
	defer cancel()
	req := serve.Request{
		WearableAddr:  agent.Addr(),
		WearableAddrs: []string{agent.Addr()},
		VARecording:   sc.legitVA,
		RNGSeed:       serveSeed,
	}
	if _, err := srv.Submit(ctx, req); !errors.Is(err, serve.ErrUserIDRequired) {
		t.Fatalf("Submit err %v, want ErrUserIDRequired", err)
	}

	// Across the wire: the rejection must come back as the same sentinel
	// (kind "user_required"), not an opaque RemoteError.
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Inspect(req); !errors.Is(err, serve.ErrUserIDRequired) {
		t.Fatalf("wire Inspect err %v, want ErrUserIDRequired", err)
	}

	// The same request with a UserID is accepted end to end.
	req.UserID = "alice"
	v, err := client.Inspect(req)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Fatal("legitimate fused session flagged as attack")
	}
}

// TestFusionTwoWearables pins the fused path end to end: two wearable
// agents, one session, deterministic bit-identical fused scores for a
// pinned seed, and a fused verdict distinct from neither device failing.
func TestFusionTwoWearables(t *testing.T) {
	sc := scenarioFor(t)
	watch := newAgent(t, sc.legitWear)
	earbud := newAgent(t, sc.legitWear)
	attackWatch := newAgent(t, sc.attackWear)
	attackEarbud := newAgent(t, sc.attackWear)
	srv := newServer(t, serve.Config{Workers: 2, Seed: serveSeed})

	submit := func() *core.Verdict {
		t.Helper()
		ctx, cancel := contextWithTimeout(20 * time.Second)
		defer cancel()
		v, err := srv.Submit(ctx, serve.Request{
			UserID:        "alice",
			WearableAddr:  watch.Addr(),
			WearableAddrs: []string{earbud.Addr()},
			VARecording:   sc.legitVA,
			RNGSeed:       serveSeed + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	v1 := submit()
	if v1.Attack {
		t.Fatal("legitimate two-wearable session fused to attack")
	}
	v2 := submit()
	if math.Float64bits(v1.Score) != math.Float64bits(v2.Score) {
		t.Fatalf("fused score not deterministic: %x vs %x",
			math.Float64bits(v1.Score), math.Float64bits(v2.Score))
	}

	// An attack session fuses to an attack verdict.
	ctx, cancel := contextWithTimeout(20 * time.Second)
	defer cancel()
	va, err := srv.Submit(ctx, serve.Request{
		UserID:        "alice",
		WearableAddr:  attackWatch.Addr(),
		WearableAddrs: []string{attackEarbud.Addr()},
		VARecording:   sc.attackVA,
		RNGSeed:       serveSeed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !va.Attack {
		t.Fatal("thru-barrier attack not flagged by the fused verdict")
	}
}

// TestFusionQuorumSurvivesDeadDevice pins the quorum rule at the server:
// one wearable unreachable, the session still gets a verdict from the
// surviving device; both wearables unreachable is a typed quorum failure.
func TestFusionQuorumSurvivesDeadDevice(t *testing.T) {
	sc := scenarioFor(t)
	watch := newAgent(t, sc.legitWear)
	srv := newServer(t, serve.Config{Workers: 2, Seed: serveSeed})
	hist := obs.Default().Histogram("fusion.devices")
	before := hist.Count()

	ctx, cancel := contextWithTimeout(20 * time.Second)
	defer cancel()
	v, err := srv.Submit(ctx, serve.Request{
		UserID:        "alice",
		WearableAddr:  watch.Addr(),
		WearableAddrs: []string{deadAddr(t)},
		VARecording:   sc.legitVA,
		RNGSeed:       serveSeed + 3,
	})
	if err != nil {
		t.Fatalf("quorum-of-one session failed: %v", err)
	}
	if v.Attack {
		t.Fatal("surviving device's legitimate verdict flipped to attack")
	}
	if hist.Count() != before+1 {
		t.Fatalf("fusion.devices histogram count %d, want %d", hist.Count(), before+1)
	}

	// Both devices dead: typed quorum failure, not a hang or a pass.
	ctx2, cancel2 := contextWithTimeout(20 * time.Second)
	defer cancel2()
	_, err = srv.Submit(ctx2, serve.Request{
		UserID:        "alice",
		WearableAddr:  deadAddr(t),
		WearableAddrs: []string{deadAddr(t)},
		VARecording:   sc.legitVA,
		RNGSeed:       serveSeed + 4,
	})
	if err == nil {
		t.Fatal("session with no reachable wearable produced a verdict")
	}
}

// TestProfileCacheAndCalibration pins the per-user profile layer in the
// worker: the first session for a user misses the worker's LRU, the
// second hits it, legitimate scores move the calibration EWMA, and the
// store accumulates the user's devices.
func TestProfileCacheAndCalibration(t *testing.T) {
	sc := scenarioFor(t)
	store := profile.NewStore(profile.Config{})
	watch := newAgent(t, sc.legitWear)
	// One worker, so both sessions share one LRU.
	srv := newServer(t, serve.Config{Workers: 1, Seed: serveSeed, Profiles: store})

	hits := obs.Default().Counter("profile.cache.hits")
	misses := obs.Default().Counter("profile.cache.misses")
	h0, m0 := hits.Value(), misses.Value()

	submit := func(seedOff int64) *core.Verdict {
		t.Helper()
		ctx, cancel := contextWithTimeout(20 * time.Second)
		defer cancel()
		v, err := srv.Submit(ctx, serve.Request{
			UserID:       "alice",
			WearableAddr: watch.Addr(),
			VARecording:  sc.legitVA,
			RNGSeed:      serveSeed + seedOff,
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := submit(10); v.Attack {
		t.Fatal("legitimate session flagged")
	}
	if misses.Value() != m0+1 {
		t.Fatalf("first session: %d new misses, want 1", misses.Value()-m0)
	}
	p, ok := store.Lookup("alice")
	if !ok || p.Samples != 1 {
		t.Fatalf("profile after first legit session: %+v ok=%v, want 1 sample", p, ok)
	}
	if len(p.Devices) != 1 || p.Devices[0] != watch.Addr() {
		t.Fatalf("devices %v, want [%s]", p.Devices, watch.Addr())
	}

	if v := submit(11); v.Attack {
		t.Fatal("second legitimate session flagged")
	}
	if hits.Value() != h0+1 {
		t.Fatalf("second session: %d new hits, want 1", hits.Value()-h0)
	}
	p, _ = store.Lookup("alice")
	if p.Samples != 2 {
		t.Fatalf("profile samples %d after two legit sessions, want 2", p.Samples)
	}
	if math.Abs(p.Offset) > profile.DefaultMaxOffset {
		t.Fatalf("calibration offset %v escaped the ±%v clamp", p.Offset, profile.DefaultMaxOffset)
	}

	// A session without a UserID bypasses the profile layer entirely.
	ctx, cancel := contextWithTimeout(20 * time.Second)
	defer cancel()
	if _, err := srv.Submit(ctx, serve.Request{
		WearableAddr: watch.Addr(), VARecording: sc.legitVA, RNGSeed: serveSeed + 12,
	}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("anonymous session grew the store to %d users", store.Len())
	}
}

// TestClientStreamAbortNoLeak pins the abort path at the mux layer: a
// stream abandoned with Abort leaves the client's in-flight table empty,
// the server's late verdict is swallowed by the tombstone instead of
// killing the shared connection, and the connection keeps serving.
func TestClientStreamAbortNoLeak(t *testing.T) {
	sc := scenarioFor(t)
	agent := newAgent(t, sc.legitWear)
	srv := newServer(t, serve.Config{Workers: 2, Seed: serveSeed})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	req := serve.Request{WearableAddr: agent.Addr(), RNGSeed: serveSeed}
	s, err := client.OpenStream(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send(sc.legitVA[:4096]); err != nil {
		t.Fatal(err)
	}
	if got := client.InFlight(); got != 1 {
		t.Fatalf("in-flight %d before abort, want 1", got)
	}
	s.Abort()
	if got := client.InFlight(); got != 0 {
		t.Fatalf("in-flight %d after abort, want 0 — stream id leaked", got)
	}
	s.Abort() // idempotent

	// The connection must survive the server's late verdict for the
	// aborted stream: a full session on the same client still works.
	v, err := client.Inspect(serve.Request{
		WearableAddr: agent.Addr(), VARecording: sc.legitVA, RNGSeed: serveSeed,
	})
	if err != nil {
		t.Fatalf("connection unusable after abort: %v", err)
	}
	if v.Attack {
		t.Fatal("legitimate session flagged after abort")
	}
	if got := client.InFlight(); got != 0 {
		t.Fatalf("in-flight %d after follow-up session, want 0", got)
	}
}
