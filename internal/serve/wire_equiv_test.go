package serve

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/syncnet"
)

// The gob→binary cutover pin: every typed error kind and a verdict must
// round-trip through BOTH codecs — the retired gob framing (proto.go) and
// the framed binary protocol (wire.go) — to identical client-side
// sentinels. A client that upgraded across the cutover sees the exact
// same errors.Is/As behavior either way; any divergence here is a silent
// protocol break.

// equivCase is one error kind's round-trip expectation.
type equivCase struct {
	name string
	// err is the server-side session error being classified.
	err error
	// wantKind is the stable wire kind both codecs must agree on.
	wantKind string
	// check asserts the decoded client-side error matches the sentinel.
	check func(t *testing.T, decoded error)
}

func isCheck(sentinel error) func(*testing.T, error) {
	return func(t *testing.T, decoded error) {
		t.Helper()
		if !errors.Is(decoded, sentinel) {
			t.Errorf("decoded error %v does not match sentinel %v", decoded, sentinel)
		}
	}
}

func equivCases() []equivCase {
	return []equivCase{
		{"overloaded", fmt.Errorf("session: %w", ErrOverloaded), kindOverloaded, isCheck(ErrOverloaded)},
		{"draining", ErrDraining, kindDraining, isCheck(ErrDraining)},
		{"timeout", fmt.Errorf("worker: %w", ErrSessionTimeout), kindTimeout, isCheck(ErrSessionTimeout)},
		{"transport", fmt.Errorf("fetch: %w", syncnet.ErrRetriesExhausted), kindTransport, isCheck(syncnet.ErrRetriesExhausted)},
		{"wearable", &syncnet.WearableError{Msg: "mic busy"}, kindWearable, func(t *testing.T, decoded error) {
			t.Helper()
			var we *syncnet.WearableError
			if !errors.As(decoded, &we) {
				t.Errorf("decoded error %v is not a WearableError", decoded)
			}
		}},
		{"nonfinite", fmt.Errorf("inspect: %w", detector.ErrNonFiniteScore), kindNonFinite, isCheck(detector.ErrNonFiniteScore)},
		{"bad_recording", &core.RecordingIssue{Source: "va", Err: errors.New("NaN sample"), Detail: "index 3"},
			kindBadRecording, func(t *testing.T, decoded error) {
				t.Helper()
				var re *RemoteError
				if !errors.As(decoded, &re) || re.Kind != kindBadRecording {
					t.Errorf("decoded error %v is not a RemoteError of kind %q", decoded, kindBadRecording)
				}
			}},
		{"internal", errors.New("defense exploded"), kindInternal, func(t *testing.T, decoded error) {
			t.Helper()
			var re *RemoteError
			if !errors.As(decoded, &re) || re.Kind != kindInternal {
				t.Errorf("decoded error %v is not a RemoteError of kind %q", decoded, kindInternal)
			}
		}},
		{"node_lost", fmt.Errorf("router: %w", ErrNodeLost), kindNodeLost, isCheck(ErrNodeLost)},
		{"no_nodes", ErrNoNodes, kindNoNodes, isCheck(ErrNoNodes)},
	}
}

// TestErrorKindEquivalenceAcrossCodecs round-trips every kind through the
// legacy gob frames and through the binary error payload, asserting both
// paths classify to the same kind and decode to the same sentinel.
func TestErrorKindEquivalenceAcrossCodecs(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			if got := errKind(tc.err); got != tc.wantKind {
				t.Fatalf("errKind = %q, want %q", got, tc.wantKind)
			}

			// Legacy gob path: kind string + message in a wireResponse.
			reqBuf, respBuf, err := gobEncodeSession(wireRequest{ID: 1}, wireResponse{
				ID: 1, OK: false, ErrKind: errKind(tc.err), Err: tc.err.Error(),
			})
			if err != nil {
				t.Fatalf("gob encode: %v", err)
			}
			_, resp, err := gobDecodeSession(reqBuf, respBuf)
			if err != nil {
				t.Fatalf("gob decode: %v", err)
			}
			if resp.ErrKind != tc.wantKind {
				t.Fatalf("gob carried kind %q, want %q", resp.ErrKind, tc.wantKind)
			}
			tc.check(t, remoteError(resp.ErrKind, resp.Err))

			// Binary path: kind code + message in an error payload.
			decoded, err := DecodeErrorPayload(AppendErrorPayload(nil, tc.err))
			if err != nil {
				t.Fatalf("binary decode: %v", err)
			}
			tc.check(t, decoded)
		})
	}
}

// TestErrorPayloadCarriesNodeIdentity pins the binary codec's routing
// extension: a NodeError wrapping survives the wire with both the node id
// and the inner sentinel intact. (The gob codec predates the routing tier
// and never carried node identity — one of the reasons it was retired.)
func TestErrorPayloadCarriesNodeIdentity(t *testing.T) {
	src := &NodeError{Node: "node3", Err: fmt.Errorf("remote: %w", ErrOverloaded)}
	decoded, err := DecodeErrorPayload(AppendErrorPayload(nil, src))
	if err != nil {
		t.Fatal(err)
	}
	var ne *NodeError
	if !errors.As(decoded, &ne) {
		t.Fatalf("decoded error %v lost the NodeError wrapper", decoded)
	}
	if ne.Node != "node3" {
		t.Errorf("node identity %q survived as %q", src.Node, ne.Node)
	}
	if !errors.Is(decoded, ErrOverloaded) {
		t.Errorf("decoded error %v lost the ErrOverloaded sentinel", decoded)
	}
}

// TestUnknownErrorCodeDegradesGracefully pins forward compatibility: a
// code from a newer server decodes to a RemoteError (never a panic or a
// misclassification onto some existing sentinel).
func TestUnknownErrorCodeDegradesGracefully(t *testing.T) {
	payload := appendString(appendString([]byte{0xEE}, ""), "a future failure")
	decoded, err := DecodeErrorPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if !errors.As(decoded, &re) {
		t.Fatalf("decoded error %v is not a RemoteError", decoded)
	}
	if re.Kind != "code_238" {
		t.Errorf("unknown code decoded to kind %q, want code_238", re.Kind)
	}
}

// TestVerdictEquivalenceAcrossCodecs round-trips a verdict through both
// codecs and asserts the client-visible fields agree bit-for-bit.
func TestVerdictEquivalenceAcrossCodecs(t *testing.T) {
	want := wireVerdict{Score: 0.8125, Attack: true, SyncOffset: -272, Spans: 5}

	reqBuf, respBuf, err := gobEncodeSession(wireRequest{ID: 2}, wireResponse{
		ID: 2, OK: true, Score: want.Score, Attack: want.Attack,
		SyncOffset: want.SyncOffset, Spans: want.Spans,
	})
	if err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	_, resp, err := gobDecodeSession(reqBuf, respBuf)
	if err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	fromGob := wireVerdict{Score: resp.Score, Attack: resp.Attack, SyncOffset: resp.SyncOffset, Spans: resp.Spans}

	fromBinary, err := DecodeVerdictPayload(AppendVerdictPayload(nil, want))
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}

	for name, got := range map[string]wireVerdict{"gob": fromGob, "binary": fromBinary} {
		if math.Float64bits(got.Score) != math.Float64bits(want.Score) {
			t.Errorf("%s: score bits %#x, want %#x", name, math.Float64bits(got.Score), math.Float64bits(want.Score))
		}
		if got.Attack != want.Attack || got.SyncOffset != want.SyncOffset || got.Spans != want.Spans {
			t.Errorf("%s: verdict %+v, want %+v", name, got, want)
		}
	}
}

// TestRequestEquivalenceAcrossCodecs round-trips a request through both
// codecs: same wearable address, same seed, bit-identical samples.
func TestRequestEquivalenceAcrossCodecs(t *testing.T) {
	samples := []float64{0.5, -0.25, 1e-9, math.Pi}
	wantReq := Request{UserID: "user-a", WearableAddr: "10.0.0.5:7700", VARecording: samples, RNGSeed: -77}

	reqBuf, respBuf, err := gobEncodeSession(wireRequest{
		ID: 3, WearableAddr: wantReq.WearableAddr, VASamples: samples, RNGSeed: wantReq.RNGSeed,
	}, wireResponse{ID: 3, OK: true})
	if err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	gotGob, _, err := gobDecodeSession(reqBuf, respBuf)
	if err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	if gotGob.WearableAddr != wantReq.WearableAddr || gotGob.RNGSeed != wantReq.RNGSeed {
		t.Fatalf("gob request round trip: %+v", gotGob)
	}
	for i, s := range gotGob.VASamples {
		if math.Float64bits(s) != math.Float64bits(samples[i]) {
			t.Errorf("gob sample %d: bits %#x, want %#x", i, math.Float64bits(s), math.Float64bits(samples[i]))
		}
	}

	gotBin, err := DecodeRequestPayload(AppendRequestPayload(nil, wantReq))
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	if gotBin.UserID != wantReq.UserID || gotBin.WearableAddr != wantReq.WearableAddr || gotBin.RNGSeed != wantReq.RNGSeed {
		t.Fatalf("binary request round trip: %+v", gotBin)
	}
	for i, s := range gotBin.VARecording {
		if math.Float64bits(s) != math.Float64bits(samples[i]) {
			t.Errorf("binary sample %d: bits %#x, want %#x", i, math.Float64bits(s), math.Float64bits(samples[i]))
		}
	}
}
