package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"vibguard/internal/core"
)

// Streamed sessions over the multiplexed connection: instead of one
// request frame carrying the whole VA recording, the client sends chunk
// frames as audio arrives and the server answers the moment the streaming
// pipeline reaches a verdict — before the recording ends when the early
// exit fires (FrameVerdictEarly), at stream close otherwise. Chunks of
// many sessions interleave freely on one connection; a stream's chunks are
// ordered by TCP, which is all the inspector needs.

// ErrStreamingUnsupported is returned (across the wire) when a peer
// receives chunk frames but was not configured with a stream handler.
var ErrStreamingUnsupported = errors.New("serve: peer does not accept streamed sessions")

// StreamSessionHandler runs one streamed session: the request carries the
// session fields (no recording); chunks arrive on the channel until the
// sender closes it. The handler may return before the channel closes —
// that is the early exit, and the mux then answers with FrameVerdictEarly.
// The context is canceled if the connection dies mid-stream.
type StreamSessionHandler func(ctx context.Context, req Request, chunks <-chan []float64) (*core.Verdict, error)

// inboundStream is the server-side state of one open chunk stream.
type inboundStream struct {
	ch     chan []float64
	done   chan struct{} // closed when the handler returns
	cancel context.CancelFunc
}

// inboundChunkBuffer bounds the per-stream chunk queue between the read
// loop and the handler. A full queue backpressures the whole connection
// (the read loop blocks), which is the same head-of-line tradeoff TCP
// would impose anyway — chunks are ordered within a stream.
const inboundChunkBuffer = 256

// ServeMuxConnStream runs the server half of the multiplexed protocol with
// streamed-session support: request frames fan out exactly as in
// ServeMuxConn, and chunk frames feed per-stream handler goroutines. The
// call returns once the peer closes the connection and every in-flight
// stream has written its response. A nil stream handler rejects chunk
// frames with ErrStreamingUnsupported instead of killing the connection.
func ServeMuxConnStream(conn net.Conn, handle SessionHandler, stream StreamSessionHandler) {
	br := bufio.NewReader(conn)
	w := newFrameWriter(conn)
	var streams sync.WaitGroup
	open := make(map[uint64]*inboundStream)
	// Streams whose header chunk was rejected: the client learns of the
	// rejection asynchronously, so chunks it already had in flight keep
	// arriving and must be discarded — answering each with another error
	// frame would double-resolve the stream client-side. The tombstone
	// lives until the stream's final chunk.
	rejected := make(map[uint64]bool)
	defer func() {
		// The read loop is done (close, half-close, or framing error).
		// Abort streams still open: cancel their contexts and close their
		// channels so handlers unblock; their writes go to the dead
		// connection and fail harmlessly.
		for _, st := range open {
			st.cancel()
			close(st.ch)
		}
		streams.Wait()
	}()
	for {
		f, err := ReadFrame(br)
		if err != nil {
			return
		}
		switch f.Type {
		case FramePing:
			_ = w.write(Frame{Type: FramePong, Stream: f.Stream})
		case FrameRequest:
			req, err := DecodeRequestPayload(f.Payload)
			if err != nil {
				_ = w.write(Frame{Type: FrameError, Stream: f.Stream,
					Payload: AppendErrorPayload(nil, err)})
				continue
			}
			streams.Add(1)
			go func(stream uint64, req Request) {
				defer streams.Done()
				v, err := handle(context.Background(), req)
				writeSessionResult(w, stream, v, err)
			}(f.Stream, req)
		case FrameChunk:
			c, err := DecodeChunkPayload(f.Payload)
			if err != nil {
				_ = w.write(Frame{Type: FrameError, Stream: f.Stream,
					Payload: AppendErrorPayload(nil, err)})
				continue
			}
			st, ok := open[f.Stream]
			if !ok {
				if rejected[f.Stream] {
					if c.Final {
						delete(rejected, f.Stream)
					}
					continue
				}
				if !c.Header {
					_ = w.write(Frame{Type: FrameError, Stream: f.Stream,
						Payload: AppendErrorPayload(nil,
							fmt.Errorf("%w: chunk for unopened stream", ErrMalformedFrame))})
					if !c.Final {
						rejected[f.Stream] = true
					}
					continue
				}
				if stream == nil {
					_ = w.write(Frame{Type: FrameError, Stream: f.Stream,
						Payload: AppendErrorPayload(nil, ErrStreamingUnsupported)})
					if !c.Final {
						rejected[f.Stream] = true
					}
					continue
				}
				ctx, cancel := context.WithCancel(context.Background())
				st = &inboundStream{
					ch:     make(chan []float64, inboundChunkBuffer),
					done:   make(chan struct{}),
					cancel: cancel,
				}
				open[f.Stream] = st
				streams.Add(1)
				go func(streamID uint64, req Request, st *inboundStream) {
					defer streams.Done()
					defer close(st.done)
					defer cancel()
					v, err := stream(ctx, req, st.ch)
					writeSessionResult(w, streamID, v, err)
				}(f.Stream, c.Req, st)
			}
			if len(c.Samples) > 0 {
				// A handler that already returned (early exit) stops
				// draining; the done channel keeps the read loop moving.
				select {
				case st.ch <- c.Samples:
				case <-st.done:
				}
			}
			if c.Final {
				close(st.ch)
				delete(open, f.Stream)
			}
		default:
			// Verdict/error frames never flow client→server; a peer that
			// sends one is broken, so stop reading (in-flight streams
			// still flush via the deferred drain).
			return
		}
	}
}

// writeSessionResult writes one stream's terminal frame: a typed error, an
// early verdict (FrameVerdictEarly with the consumed-sample count), or a
// plain verdict.
func writeSessionResult(w *frameWriter, stream uint64, v *core.Verdict, err error) {
	if err != nil {
		_ = w.write(Frame{Type: FrameError, Stream: stream,
			Payload: AppendErrorPayload(nil, err)})
		return
	}
	wv := wireVerdict{
		Score: v.Score, Attack: v.Attack,
		SyncOffset: v.SyncOffset, Spans: len(v.Spans),
	}
	if v.Early {
		_ = w.write(Frame{Type: FrameVerdictEarly, Stream: stream,
			Payload: AppendEarlyVerdictPayload(nil, wv, v.Consumed)})
		return
	}
	_ = w.write(Frame{Type: FrameVerdict, Stream: stream,
		Payload: AppendVerdictPayload(nil, wv)})
}

// ClientStream is one streamed session on a Client: opened with
// OpenStream, fed with Send, closed with CloseSend, resolved with Wait.
// Not safe for concurrent use (one goroutine feeds one session).
type ClientStream struct {
	c      *Client
	stream uint64
	ch     chan clientResult

	res    clientResult
	hasRes bool
	closed bool
}

// OpenStream starts a streamed session: the request's session fields
// (UserID, WearableAddr, RNGSeed) travel on the stream's header chunk; its
// VARecording field is ignored — audio flows through Send.
func (c *Client) OpenStream(req Request) (*ClientStream, error) {
	stream, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	if err := c.w.write(Frame{Type: FrameChunk, Stream: stream,
		Payload: AppendChunkPayload(nil, wireChunk{Header: true, Req: req})}); err != nil {
		c.abandon(stream)
		return nil, fmt.Errorf("%w: send: %v", ErrConnLost, err)
	}
	return &ClientStream{c: c, stream: stream, ch: ch}, nil
}

// Send ships one chunk of VA audio. It returns done=true once the server's
// verdict has already arrived (the early exit): the caller should stop
// feeding and call Wait — further audio would only be dropped server-side.
func (s *ClientStream) Send(samples []float64) (done bool, err error) {
	if s.hasRes {
		return true, nil
	}
	select {
	case res := <-s.ch:
		s.res, s.hasRes = res, true
		return true, nil
	default:
	}
	if s.closed {
		return false, fmt.Errorf("serve: send on closed stream")
	}
	if err := s.c.w.write(Frame{Type: FrameChunk, Stream: s.stream,
		Payload: AppendChunkPayload(nil, wireChunk{Samples: samples})}); err != nil {
		return false, fmt.Errorf("%w: send: %v", ErrConnLost, err)
	}
	return false, nil
}

// CloseSend marks the stream's audio complete (the final chunk). The
// server's fallback pipeline then produces the verdict if no early exit
// fired. Idempotent; skipped when the verdict already arrived.
func (s *ClientStream) CloseSend() error {
	if s.closed || s.hasRes {
		s.closed = true
		return nil
	}
	s.closed = true
	if err := s.c.w.write(Frame{Type: FrameChunk, Stream: s.stream,
		Payload: AppendChunkPayload(nil, wireChunk{Final: true})}); err != nil {
		return fmt.Errorf("%w: send: %v", ErrConnLost, err)
	}
	return nil
}

// Wait blocks until the session's verdict (or typed error) arrives.
func (s *ClientStream) Wait() (*core.Verdict, error) {
	if !s.hasRes {
		s.res, s.hasRes = <-s.ch, true
	}
	return s.res.verdict, s.res.err
}

// Abort abandons the stream: the client stops waiting for its verdict and
// tombstones the stream id, so the server's eventual terminal frame is
// dropped silently instead of killing the shared connection as an
// unknown-stream protocol violation — and the stream id does not leak in
// the client's in-flight table. If the final chunk has not been sent yet,
// a best-effort one goes out so the server-side handler winds down with
// the batch fallback instead of waiting for audio that will never come
// (if it has, the server owes exactly one terminal frame already, and a
// second final chunk would draw a spurious error frame). A verdict that
// raced the abort wins: the stream resolves normally and Wait returns it.
// Idempotent; safe after CloseSend.
func (s *ClientStream) Abort() {
	if s.hasRes {
		return
	}
	select {
	case res := <-s.ch:
		s.res, s.hasRes = res, true
		return
	default:
	}
	if !s.c.abortPending(s.stream) {
		// Already resolved (result in flight to s.ch) or the connection
		// died and failed the stream; either way nothing is leaked.
		return
	}
	if !s.closed {
		s.closed = true
		_ = s.c.w.write(Frame{Type: FrameChunk, Stream: s.stream,
			Payload: AppendChunkPayload(nil, wireChunk{Final: true})})
	}
	s.res, s.hasRes = clientResult{err: fmt.Errorf("serve: stream aborted")}, true
}

// InspectStream streams a whole recording in cfg-sized chunks and returns
// the verdict — the convenience wrapper benchmarks and smoke tests use.
// The chunk size must be positive.
func (c *Client) InspectStream(req Request, chunkSamples int) (*core.Verdict, error) {
	if chunkSamples <= 0 {
		return nil, fmt.Errorf("serve: chunk size %d must be positive", chunkSamples)
	}
	rec := req.VARecording
	req.VARecording = nil
	s, err := c.OpenStream(req)
	if err != nil {
		return nil, err
	}
	for lo := 0; lo < len(rec); lo += chunkSamples {
		hi := lo + chunkSamples
		if hi > len(rec) {
			hi = len(rec)
		}
		done, err := s.Send(rec[lo:hi])
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	if err := s.CloseSend(); err != nil {
		return nil, err
	}
	return s.Wait()
}
