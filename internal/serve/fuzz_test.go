package serve

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeFrame is the wire-protocol fuzz target. The decoding
// contract (wire.go): any byte stream either decodes into a frame or
// fails with one of the typed errors — ErrUnknownVersion,
// ErrUnknownFrameType, ErrFrameTooLarge, ErrMalformedFrame, io.EOF, or
// io.ErrUnexpectedEOF — and a declared payload length is never trusted
// before it is checked against both MaxFramePayload and the bytes
// actually present, so hostile lengths (a 2^60 uvarint) neither panic
// nor allocate. Successful decodes must round-trip bit-exactly through
// AppendFrame, and the streaming decoder (ReadFrame) must agree with the
// in-memory one on every input.
//
// Seeds live in testdata/fuzz/FuzzDecodeFrame; `make fuzz` runs the
// target for real.
func FuzzDecodeFrame(f *testing.F) {
	// A valid frame of every type, plus the documented failure shapes.
	f.Add(AppendFrame(nil, Frame{Type: FramePing, Stream: 1}))
	f.Add(AppendFrame(nil, Frame{Type: FramePong, Stream: 1}))
	f.Add(AppendFrame(nil, Frame{Type: FrameRequest, Stream: 7, Payload: AppendRequestPayload(nil, Request{
		UserID:       "user-1",
		WearableAddr: "127.0.0.1:9000",
		VARecording:  []float64{0.25, -0.5, 1e-3},
		RNGSeed:      42,
	})}))
	f.Add(AppendFrame(nil, Frame{Type: FrameVerdict, Stream: 3, Payload: AppendVerdictPayload(nil, wireVerdict{
		Score: 0.75, Attack: true, SyncOffset: -160, Spans: 4,
	})}))
	f.Add(AppendFrame(nil, Frame{Type: FrameError, Stream: 9, Payload: AppendErrorPayload(nil,
		&NodeError{Node: "node2", Err: ErrOverloaded})}))
	f.Add(AppendFrame(nil, Frame{Type: FrameChunk, Stream: 11, Payload: AppendChunkPayload(nil, wireChunk{
		Header:  true,
		Req:     Request{UserID: "user-2", WearableAddr: "127.0.0.1:9001", RNGSeed: 7},
		Samples: []float64{0.125, -0.25},
	})}))
	f.Add(AppendFrame(nil, Frame{Type: FrameChunk, Stream: 11, Payload: AppendChunkPayload(nil, wireChunk{
		Final: true, Samples: []float64{1e-4},
	})}))
	f.Add(AppendFrame(nil, Frame{Type: FrameVerdictEarly, Stream: 13, Payload: AppendEarlyVerdictPayload(nil, wireVerdict{
		Score: 0.9, Attack: false, SyncOffset: 320, Spans: 2,
	}, 48000)}))
	f.Add([]byte{})                                            // clean EOF
	f.Add([]byte{WireVersion})                                 // truncated after version
	f.Add([]byte{0xff, 0x01})                                  // unknown version
	f.Add([]byte{WireVersion, 0x00})                           // unknown frame type (low)
	f.Add([]byte{WireVersion, 0x63})                           // unknown frame type (high)
	f.Add([]byte{WireVersion, FramePing, 0x80})                // truncated stream varint
	f.Add([]byte{WireVersion, FrameVerdict, 0x01, 0x05, 0xaa}) // payload shorter than declared
	// Oversized payload length: uvarint 2^60 must be rejected before any
	// allocation is sized from it.
	f.Add([]byte{WireVersion, FrameRequest, 0x01,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10})
	// Overlong varint (11 continuation bytes) in the stream id.
	f.Add([]byte{WireVersion, FramePing,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	// Two back-to-back frames: DecodeFrame must report the exact boundary.
	f.Add(AppendFrame(AppendFrame(nil, Frame{Type: FramePing, Stream: 5}),
		Frame{Type: FramePong, Stream: 5}))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrUnknownVersion) &&
				!errors.Is(err, ErrUnknownFrameType) &&
				!errors.Is(err, ErrFrameTooLarge) &&
				!errors.Is(err, ErrMalformedFrame) &&
				!errors.Is(err, io.EOF) &&
				!errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped decode error: %v", err)
			}
			// The streaming decoder may differ on which typed error it
			// reports for garbage (it cannot rewind), but it must also fail.
			if _, rerr := ReadFrame(bufio.NewReader(bytes.NewReader(data))); rerr == nil {
				t.Fatalf("DecodeFrame failed (%v) but ReadFrame accepted the same bytes", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if frame.Type < FrameRequest || frame.Type > FrameVerdictEarly {
			t.Fatalf("decoded out-of-range frame type %d", frame.Type)
		}
		if len(frame.Payload) > MaxFramePayload {
			t.Fatalf("decoded payload of %d bytes exceeds MaxFramePayload", len(frame.Payload))
		}

		// Round trip: re-encoding the decoded frame reproduces the
		// consumed bytes exactly (the encoding is canonical for the
		// canonical varint forms the encoder emits; the fuzzer finding a
		// non-canonical input that still decodes is fine as long as the
		// re-encode decodes back to the same frame).
		re := AppendFrame(nil, frame)
		frame2, n2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-encoded frame left %d trailing bytes", len(re)-n2)
		}
		if frame2.Type != frame.Type || frame2.Stream != frame.Stream || !bytes.Equal(frame2.Payload, frame.Payload) {
			t.Fatalf("round trip changed the frame: %+v vs %+v", frame, frame2)
		}

		// The streaming decoder agrees with the in-memory one.
		rframe, rerr := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if rerr != nil {
			t.Fatalf("DecodeFrame accepted bytes ReadFrame rejects: %v", rerr)
		}
		if rframe.Type != frame.Type || rframe.Stream != frame.Stream || !bytes.Equal(rframe.Payload, frame.Payload) {
			t.Fatalf("ReadFrame decoded %+v, DecodeFrame %+v", rframe, frame)
		}

		// Typed payloads must also decode or fail typed — never panic.
		switch frame.Type {
		case FrameRequest:
			if _, perr := DecodeRequestPayload(frame.Payload); perr != nil && !errors.Is(perr, ErrMalformedFrame) {
				t.Fatalf("untyped request payload error: %v", perr)
			}
		case FrameVerdict:
			if _, perr := DecodeVerdictPayload(frame.Payload); perr != nil && !errors.Is(perr, ErrMalformedFrame) {
				t.Fatalf("untyped verdict payload error: %v", perr)
			}
		case FrameError:
			if _, perr := DecodeErrorPayload(frame.Payload); perr != nil && !errors.Is(perr, ErrMalformedFrame) {
				t.Fatalf("untyped error payload error: %v", perr)
			}
		case FrameChunk:
			if _, perr := DecodeChunkPayload(frame.Payload); perr != nil && !errors.Is(perr, ErrMalformedFrame) {
				t.Fatalf("untyped chunk payload error: %v", perr)
			}
		case FrameVerdictEarly:
			if _, _, perr := DecodeEarlyVerdictPayload(frame.Payload); perr != nil && !errors.Is(perr, ErrMalformedFrame) {
				t.Fatalf("untyped early-verdict payload error: %v", perr)
			}
		}
	})
}
