package serve_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vibguard/internal/acoustics"
	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/phoneme"
	"vibguard/internal/segment"
	"vibguard/internal/selection"
	"vibguard/internal/serve"
	"vibguard/internal/syncnet"
)

// The serve suite drives the real end-to-end stack: wearable agents over
// TCP, the hardened syncnet client inside the server's workers, and the
// full Inspect pipeline — under heavy concurrency and the race detector.
// All randomness is seeded (per-session via Request.RNGSeed), so every
// test is deterministic under arbitrary scheduling.

const serveSeed = 2027

// serveScenario holds one synthesized command heard through both acoustic
// paths, built once and shared read-only by every test.
type serveScenario struct {
	spans      []segment.Span
	legitVA    []float64
	legitWear  []float64
	attackVA   []float64
	attackWear []float64
}

var (
	scnOnce sync.Once
	scn     *serveScenario
	scnErr  error
)

func scenarioFor(t *testing.T) *serveScenario {
	t.Helper()
	scnOnce.Do(func() { scn, scnErr = buildServeScenario() })
	if scnErr != nil {
		t.Fatal(scnErr)
	}
	return scn
}

func buildServeScenario() (*serveScenario, error) {
	rng := rand.New(rand.NewSource(serveSeed))
	synth, err := phoneme.NewSynthesizer(phoneme.NewStudioVoicePool(1, serveSeed)[0])
	if err != nil {
		return nil, err
	}
	utt, err := synth.Synthesize(phoneme.Commands()[2])
	if err != nil {
		return nil, err
	}
	spans := segment.OracleSpans(utt, selection.CanonicalSelected())
	room, err := acoustics.RoomByName("A")
	if err != nil {
		return nil, err
	}
	transmit := func(spl, dist float64, barrier bool) ([]float64, error) {
		return room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: barrier, SampleRate: 16000,
		}, rng)
	}
	legitVA, err := transmit(72, 1.5, false)
	if err != nil {
		return nil, err
	}
	legitNear, err := transmit(72, 0.3, false)
	if err != nil {
		return nil, err
	}
	attackVA, err := transmit(80, 2.1, true)
	if err != nil {
		return nil, err
	}
	attackNear, err := transmit(80, 2.4, true)
	if err != nil {
		return nil, err
	}
	return &serveScenario{
		spans:      spans,
		legitVA:    legitVA,
		legitWear:  syncnet.SimulateNetworkDelay(legitNear, 0.1, 16000, rng),
		attackVA:   attackVA,
		attackWear: syncnet.SimulateNetworkDelay(attackNear, 0.08, 16000, rng),
	}, nil
}

// defenseFactory builds one worker's private Defense: a cloned wearable
// and a static segmenter holding the scenario's oracle spans (cheap, no
// BRNN training — the per-worker pattern of eval.scorerSpec.newDefense).
func (sc *serveScenario) defenseFactory() func() (*core.Defense, error) {
	return func() (*core.Defense, error) {
		clone := *device.NewFossilGen5()
		return core.NewDefense(core.DefaultConfig(&clone, &detector.StaticSegmenter{Spans: sc.spans}))
	}
}

// contextWithTimeout shortens the ubiquitous deadline-context dance.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// fastRetries keeps transport retries snappy for the fault tests.
func fastRetries() syncnet.RetryPolicy {
	return syncnet.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2}
}

// newAgent starts a wearable agent serving a fixed recording.
func newAgent(t *testing.T, rec []float64) *syncnet.WearableAgent {
	t.Helper()
	agent, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return rec, nil })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	return agent
}

// newSlowAgent starts a wearable agent whose RecordFunc sleeps before
// serving, to hold sessions in flight; calls counts record invocations.
func newSlowAgent(t *testing.T, rec []float64, delay time.Duration, calls *atomic.Int64) string {
	t.Helper()
	agent, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		if calls != nil {
			calls.Add(1)
		}
		time.Sleep(delay)
		return rec, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	return agent.Addr()
}

// newServer builds and starts a server for the scenario, registering a
// cleanup drain so tests cannot leak worker goroutines.
func newServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.NewDefense == nil {
		cfg.NewDefense = scenarioFor(t).defenseFactory()
	}
	if cfg.RetryPolicy.MaxAttempts == 0 {
		cfg.RetryPolicy = fastRetries()
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(30 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}
