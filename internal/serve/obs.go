package serve

import "vibguard/internal/obs"

// Server instrumentation, in the process-wide registry next to the
// pipeline and syncnet metrics (DESIGN.md section 10). Counters split the
// admission outcomes (accepted / shed / rejected-draining) from the
// terminal outcomes (completed / failed / expired); the queue-depth gauge
// tracks the bounded admission queue; the histograms give per-session
// latency and queue-wait quantiles. All recording is lock-free and
// allocation-free, so the worker hot path stays uncontended.
var (
	metSessionsAccepted = obs.Default().Counter("serve.sessions.accepted")
	metSessionsShed     = obs.Default().Counter("serve.sessions.shed")
	metSessionsDrainRej = obs.Default().Counter("serve.sessions.rejected_draining")
	metSessionsDone     = obs.Default().Counter("serve.sessions.completed")
	metSessionsFailed   = obs.Default().Counter("serve.sessions.failed")
	metSessionsExpired  = obs.Default().Counter("serve.sessions.expired")
	gaugeQueueDepth     = obs.Default().Gauge("serve.queue.depth")
	gaugeWorkers        = obs.Default().Gauge("serve.workers")
	histSessionLatency  = obs.Default().Histogram("serve.session.latency_seconds")
	histQueueWait       = obs.Default().Histogram("serve.session.queue_wait_seconds")

	// Streamed-session split: how many streamed sessions ended on the
	// early exit vs. ran the stream to completion plus batch fallback.
	metStreamSessionsEarly = obs.Default().Counter("serve.sessions.stream_early")

	// Multi-wearable fusion: how many devices actually contributed a
	// finite score to each profile-backed session's fused verdict. A mode
	// sliding below the fleet's configured device count means wearable
	// links are dropping out of quorum.
	histFusionDevices = obs.Default().Histogram("fusion.devices")
)
