package serve

import (
	"math"
	"testing"
)

// Wire-protocol benchmarks: one "session" is a request (wearable address,
// seed, a 2-second 16 kHz VA recording) plus its verdict response,
// encoded AND decoded — the full serialization cost of one detection
// round trip. The gob variant uses fresh encoders/decoders per session,
// exactly as the retired front-end paid it on every connection (gob
// renegotiates type descriptors per stream); the binary variant is the
// framed codec the serving path speaks now. bytes/session reports the
// on-wire size of the pair. Results feed the EXPERIMENTS.md table.

// benchSamples is a 2 s, 16 kHz recording — a typical short command.
const benchSamples = 32000

func benchRecording() []float64 {
	rec := make([]float64, benchSamples)
	for i := range rec {
		rec[i] = math.Sin(float64(i) / 37)
	}
	return rec
}

func BenchmarkGobSessionRoundTrip(b *testing.B) {
	rec := benchRecording()
	req := wireRequest{ID: 1, WearableAddr: "127.0.0.1:7700", VASamples: rec, RNGSeed: 42}
	resp := wireResponse{ID: 1, OK: true, Score: 0.75, Attack: false, SyncOffset: -120, Spans: 4}
	var bytesPerSession int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqBuf, respBuf, err := gobEncodeSession(req, resp)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := gobDecodeSession(reqBuf, respBuf); err != nil {
			b.Fatal(err)
		}
		bytesPerSession = len(reqBuf) + len(respBuf)
	}
	b.ReportMetric(float64(bytesPerSession), "bytes/session")
}

func BenchmarkBinarySessionRoundTrip(b *testing.B) {
	rec := benchRecording()
	req := Request{UserID: "user-1", WearableAddr: "127.0.0.1:7700", VARecording: rec, RNGSeed: 42}
	verdict := wireVerdict{Score: 0.75, Attack: false, SyncOffset: -120, Spans: 4}
	var bytesPerSession int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqFrame := AppendFrame(nil, Frame{Type: FrameRequest, Stream: 1, Payload: AppendRequestPayload(nil, req)})
		respFrame := AppendFrame(nil, Frame{Type: FrameVerdict, Stream: 1, Payload: AppendVerdictPayload(nil, verdict)})
		f1, _, err := DecodeFrame(reqFrame)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeRequestPayload(f1.Payload); err != nil {
			b.Fatal(err)
		}
		f2, _, err := DecodeFrame(respFrame)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeVerdictPayload(f2.Payload); err != nil {
			b.Fatal(err)
		}
		bytesPerSession = len(reqFrame) + len(respFrame)
	}
	b.ReportMetric(float64(bytesPerSession), "bytes/session")
}

// The error-path pair: a typed shed crossing the wire, both codecs.

func BenchmarkGobErrorRoundTrip(b *testing.B) {
	resp := wireResponse{ID: 1, OK: false, ErrKind: kindOverloaded, Err: ErrOverloaded.Error()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqBuf, respBuf, err := gobEncodeSession(wireRequest{ID: 1}, resp)
		if err != nil {
			b.Fatal(err)
		}
		_, decoded, err := gobDecodeSession(reqBuf, respBuf)
		if err != nil {
			b.Fatal(err)
		}
		_ = remoteError(decoded.ErrKind, decoded.Err)
	}
}

func BenchmarkBinaryErrorRoundTrip(b *testing.B) {
	src := &NodeError{Node: "node1", Err: ErrOverloaded}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := AppendFrame(nil, Frame{Type: FrameError, Stream: 1, Payload: AppendErrorPayload(nil, src)})
		f, _, err := DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeErrorPayload(f.Payload); err != nil {
			b.Fatal(err)
		}
	}
}
