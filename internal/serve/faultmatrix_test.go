package serve_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"vibguard/internal/core"
	"vibguard/internal/faults"
	"vibguard/internal/serve"
	"vibguard/internal/syncnet"
)

// The server-side fault matrix: each wearable in the fleet sits behind a
// different internal/faults NetSpec (or misbehaves at the application /
// signal layer), all sessions run concurrently against one server, and
// every faulty session must fail with its expected typed error while the
// healthy sessions — sharing the same worker pool and admission queue —
// still complete with the correct verdicts.

// faultRouter is a syncnet.DialFunc that applies a per-wearable-address
// fault injector; addresses without an injector dial cleanly. It gives the
// server's single global Config.Dial per-wearable fault behavior.
type faultRouter struct {
	mu    sync.RWMutex
	dials map[string]syncnet.DialFunc
}

func newFaultRouter() *faultRouter {
	return &faultRouter{dials: make(map[string]syncnet.DialFunc)}
}

// fault wraps addr's dials with spec and returns addr for chaining.
func (r *faultRouter) fault(addr string, spec faults.NetSpec) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dials[addr] = faults.NewInjector(spec).WrapDial(nil)
	return addr
}

func (r *faultRouter) dialFunc() syncnet.DialFunc {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		r.mu.RLock()
		dial := r.dials[addr]
		r.mu.RUnlock()
		if dial == nil {
			return net.DialTimeout("tcp", addr, timeout)
		}
		return dial(addr, timeout)
	}
}

// serverFaultCase is one cell of the server fault matrix.
type serverFaultCase struct {
	name string
	// addr is the wearable this session talks to (set during setup).
	addr string
	// va is the VA-side recording submitted with the session.
	va []float64
	// wantErr is nil for sessions that must complete; otherwise the typed
	// error the session must fail with (checked via errors.Is).
	wantErr error
	// wantWearableErr asserts the failure is a *syncnet.WearableError.
	wantWearableErr bool
	// wantAttack is the expected verdict for completing sessions.
	wantAttack bool
}

func TestServerFaultMatrix(t *testing.T) {
	sc := scenarioFor(t)
	router := newFaultRouter()

	// Application-layer failure: the wearable itself reports a sensor
	// error, which must surface as a WearableError without retries.
	failing, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		return nil, fmt.Errorf("gyroscope offline")
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = failing.Close() })

	// Signal-layer failure: the wearable serves a recording corrupted with
	// non-finite samples, which pipeline validation must reject typed.
	corrupt := newAgent(t, faults.SignalSpec{Kind: faults.SignalNonFinite, Seed: serveSeed}.Apply(sc.legitWear))

	cases := []*serverFaultCase{
		{
			name:       "healthy legit",
			addr:       newAgent(t, sc.legitWear).Addr(),
			va:         sc.legitVA,
			wantAttack: false,
		},
		{
			name:       "healthy attack",
			addr:       newAgent(t, sc.attackWear).Addr(),
			va:         sc.attackVA,
			wantAttack: true,
		},
		{
			name: "latency and jitter",
			addr: router.fault(newAgent(t, sc.legitWear).Addr(),
				faults.NetSpec{Seed: faults.Mix(serveSeed, 1), Latency: 2 * time.Millisecond, Jitter: 3 * time.Millisecond}),
			va:         sc.legitVA,
			wantAttack: false,
		},
		{
			name: "partial reads",
			addr: router.fault(newAgent(t, sc.attackWear).Addr(),
				faults.NetSpec{Seed: faults.Mix(serveSeed, 2), ReadChunk: 61}),
			va:         sc.attackVA,
			wantAttack: true,
		},
		{
			name: "reset then recover",
			addr: router.fault(newAgent(t, sc.legitWear).Addr(),
				faults.NetSpec{Seed: faults.Mix(serveSeed, 3), ResetConnections: 1, ResetAfterBytes: 4096}),
			va:         sc.legitVA,
			wantAttack: false,
		},
		{
			name: "black hole",
			addr: router.fault(newAgent(t, sc.legitWear).Addr(),
				faults.NetSpec{Seed: faults.Mix(serveSeed, 4), ResetConnections: -1, ResetAfterBytes: 1024}),
			va:      sc.legitVA,
			wantErr: syncnet.ErrRetriesExhausted,
		},
		{
			name: "refused dials",
			addr: router.fault(newAgent(t, sc.legitWear).Addr(),
				faults.NetSpec{Seed: faults.Mix(serveSeed, 5), RefuseDials: 1 << 20}),
			va:      sc.legitVA,
			wantErr: syncnet.ErrRetriesExhausted,
		},
		{
			name:            "wearable sensor error",
			addr:            failing.Addr(),
			va:              sc.legitVA,
			wantWearableErr: true,
		},
		{
			name:    "corrupted recording",
			addr:    corrupt.Addr(),
			va:      sc.legitVA,
			wantErr: core.ErrNonFiniteRecording,
		},
	}

	srv := newServer(t, serve.Config{
		Workers:        4,
		QueueDepth:     len(cases),
		SessionTimeout: time.Minute,
		Seed:           serveSeed,
		Dial:           router.dialFunc(),
	})

	type outcome struct {
		verdict *core.Verdict
		err     error
	}
	results := make([]outcome, len(cases))
	var wg sync.WaitGroup
	for i, c := range cases {
		wg.Add(1)
		go func(i int, c *serverFaultCase) {
			defer wg.Done()
			v, err := srv.Submit(context.Background(), serve.Request{
				WearableAddr: c.addr,
				VARecording:  c.va,
				RNGSeed:      serve.SessionSeed(serveSeed, uint64(2000+i)),
			})
			results[i] = outcome{verdict: v, err: err}
		}(i, c)
	}
	wg.Wait()

	for i, c := range cases {
		res := results[i]
		switch {
		case c.wantWearableErr:
			var wearErr *syncnet.WearableError
			if !errors.As(res.err, &wearErr) {
				t.Errorf("%s: err = %v, want *syncnet.WearableError", c.name, res.err)
			}
		case c.wantErr != nil:
			if !errors.Is(res.err, c.wantErr) {
				t.Errorf("%s: err = %v, want %v", c.name, res.err, c.wantErr)
			}
			if c.wantErr == core.ErrNonFiniteRecording {
				var issue *core.RecordingIssue
				if !errors.As(res.err, &issue) {
					t.Errorf("%s: err = %v, want a *core.RecordingIssue wrapper", c.name, res.err)
				}
			}
		default:
			if res.err != nil {
				t.Errorf("%s: session failed (%v) despite a survivable fault", c.name, res.err)
				continue
			}
			if res.verdict.Attack != c.wantAttack {
				t.Errorf("%s: attack = %v (score %v), want %v",
					c.name, res.verdict.Attack, res.verdict.Score, c.wantAttack)
			}
		}
	}
}

// TestServerFaultMatrixOverWire repeats the terminal fault cells through
// the TCP front-end: the wire protocol must carry the typed errors intact
// (errors.Is still matches on the client side) while a healthy session on
// the same server completes.
func TestServerFaultMatrixOverWire(t *testing.T) {
	sc := scenarioFor(t)
	router := newFaultRouter()
	healthy := newAgent(t, sc.legitWear)
	blackholed := router.fault(newAgent(t, sc.legitWear).Addr(),
		faults.NetSpec{Seed: faults.Mix(serveSeed, 6), ResetConnections: -1, ResetAfterBytes: 512})
	failing, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		return nil, fmt.Errorf("battery empty")
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = failing.Close() })

	srv := newServer(t, serve.Config{
		Workers:        2,
		QueueDepth:     4,
		SessionTimeout: time.Minute,
		Seed:           serveSeed,
		Dial:           router.dialFunc(),
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	if _, err := client.Inspect(serve.Request{WearableAddr: blackholed, VARecording: sc.legitVA}); !errors.Is(err, syncnet.ErrRetriesExhausted) {
		t.Errorf("black hole over wire: err = %v, want ErrRetriesExhausted", err)
	}
	var wearErr *syncnet.WearableError
	if _, err := client.Inspect(serve.Request{WearableAddr: failing.Addr(), VARecording: sc.legitVA}); !errors.As(err, &wearErr) {
		t.Errorf("wearable error over wire: err = %v, want *syncnet.WearableError", err)
	}
	v, err := client.Inspect(serve.Request{
		WearableAddr: healthy.Addr(),
		VARecording:  sc.legitVA,
		RNGSeed:      serve.SessionSeed(serveSeed, 3000),
	})
	if err != nil {
		t.Fatalf("healthy session after faulty neighbors: %v", err)
	}
	if v.Attack {
		t.Errorf("healthy legit session flagged as attack (score %v)", v.Score)
	}
}
