// Package serve is the session-oriented detection server: the long-running
// deployment shape of Section VI-A, where a VA device continuously guards
// voice commands against thru-barrier attacks with the help of a paired
// wearable. Each session carries one VA recording and the address of the
// wearable that heard the same command; the server fetches the wearable
// recording through the hardened syncnet.ReliableClient, aligns it with
// the Eq. (5) cross-correlation, and runs core.Defense.Inspect — all on a
// bounded worker pool with explicit load-shedding, so sustained probing
// (the BarrierBypass attack model) degrades service to typed rejections
// instead of unbounded goroutines.
//
// Architecture (DESIGN.md section 11):
//
//   - Admission: Submit places the session on a bounded queue. A full
//     queue sheds the session immediately with ErrOverloaded — the caller
//     learns about the overload in microseconds instead of joining an
//     invisible backlog.
//   - Worker pool: a fixed number of workers, each owning a private
//     core.Defense (the per-worker pattern of eval.ParallelScorer) and a
//     private per-address cache of ReliableClients, so the hot path takes
//     no shared locks.
//   - Deadlines: every session gets a context deadline at admission.
//     Sessions that expire while queued are abandoned without wasting a
//     worker; in-flight fetches abort their retries and backoff sleeps
//     through syncnet.RequestRecordingContext.
//   - Determinism: the stochastic cross-domain sensing of session n is
//     driven by SessionSeed(Config.Seed, n) (or the request's pinned
//     RNGSeed), so any session can be replayed bit-exactly.
//   - Drain: Shutdown closes the front-end listener first, rejects every
//     queued-but-unstarted session with ErrDraining, waits for in-flight
//     sessions to finish, then half-closes lingering connections so final
//     responses are still delivered.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"vibguard/internal/core"
	"vibguard/internal/profile"
	"vibguard/internal/syncnet"
)

// Typed admission and lifecycle errors. They are the server's load-shedding
// and drain contract: a caller can distinguish "try again later"
// (ErrOverloaded) from "this server is going away" (ErrDraining) from
// "your session took too long" (ErrSessionTimeout) without string matching.
var (
	// ErrOverloaded is returned by Submit when the admission queue is
	// full. The session was not enqueued; the caller owns the retry
	// decision.
	ErrOverloaded = errors.New("serve: overloaded, admission queue full")
	// ErrDraining is returned by Submit once Shutdown has begun, and
	// delivered to queued-but-unstarted sessions that the drain rejects.
	ErrDraining = errors.New("serve: server draining, session rejected")
	// ErrSessionTimeout is returned when a session's deadline expires
	// before its verdict is ready (whether still queued or mid-fetch).
	ErrSessionTimeout = errors.New("serve: session deadline exceeded")
	// ErrUserIDRequired is returned for a profile-backed session (one that
	// carries WearableAddrs) with an empty UserID. Multi-wearable fusion
	// and per-user calibration are keyed by user identity, and the routing
	// tier's legacy fallback — hashing WearableAddr when UserID is empty —
	// would scatter a multi-wearable user's sessions across nodes by
	// whichever address came first. The error crosses the wire typed
	// (kind "user_required").
	ErrUserIDRequired = errors.New("serve: profile-backed session needs a user id")
)

// Request is one detection session: a VA recording and the wearable that
// heard the same command.
type Request struct {
	// UserID identifies the wearable-paired user the session belongs to.
	// The server ignores it; the routing tier consistent-hashes it to
	// pick the serving node (falling back to WearableAddr when empty), so
	// one user's sessions — and any per-user state a node caches — stay
	// on one node.
	UserID string
	// WearableAddr is the paired wearable agent's network address (the
	// user's primary wearable).
	WearableAddr string
	// WearableAddrs lists additional paired wearables (earbud, second
	// watch, …) whose recordings are scored independently and fused at the
	// score level (core.FuseVerdicts). A session carrying any is
	// profile-backed and must set UserID (ErrUserIDRequired otherwise).
	// On the wire the list travels in a backward-compatible trailing
	// extension of the request payload: a request without extras encodes
	// byte-identically to the pre-extension protocol.
	WearableAddrs []string
	// VARecording is the VA device's capture of the voice command.
	VARecording []float64
	// RNGSeed pins the session's stochastic cross-domain sensing; 0
	// derives a seed from (Config.Seed, session ID) instead.
	RNGSeed int64
}

// Config parameterizes a Server.
type Config struct {
	// NewDefense builds one worker's private detection pipeline. It is
	// called once per worker (the per-worker-Defense pattern of
	// eval.ParallelScorer) and must be safe to call concurrently.
	NewDefense func() (*core.Defense, error)
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 2×Workers). A full
	// queue sheds new sessions with ErrOverloaded.
	QueueDepth int
	// SessionTimeout is the per-session deadline from admission to
	// verdict (default 30s).
	SessionTimeout time.Duration
	// Seed drives per-session RNG derivation via SessionSeed.
	Seed int64
	// Dial overrides the transport dial of every wearable fetch (fault
	// injection, testing). Nil dials TCP.
	Dial syncnet.DialFunc
	// RetryPolicy bounds the transport retries of every wearable fetch.
	// The zero value uses syncnet.DefaultRetryPolicy.
	RetryPolicy syncnet.RetryPolicy
	// DialTimeout and RequestTimeout are the per-attempt deadlines of
	// the wearable fetch (non-positive keeps the syncnet defaults).
	DialTimeout    time.Duration
	RequestTimeout time.Duration
	// Stream tunes the streamed-session pipeline (SubmitStream); the zero
	// value uses the core.StreamConfig defaults at the pipeline sample
	// rate.
	Stream core.StreamConfig
	// Profiles is the per-user profile store. Nil disables the profile
	// layer entirely: no calibrated thresholds, no device registration,
	// and every session runs at the defense's configured threshold —
	// existing deployments are bit-compatible.
	Profiles *profile.Store
	// ProfileCacheSize bounds each worker's private LRU of effective
	// per-user thresholds (default 1024; used only when Profiles is set).
	ProfileCacheSize int
}

// withDefaults fills in defaults and validates the configuration.
func (c Config) withDefaults() (Config, error) {
	if c.NewDefense == nil {
		return c, fmt.Errorf("serve: config needs a NewDefense factory")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 30 * time.Second
	}
	if c.RetryPolicy.MaxAttempts == 0 {
		c.RetryPolicy = syncnet.DefaultRetryPolicy()
	}
	if c.ProfileCacheSize <= 0 {
		c.ProfileCacheSize = 1024
	}
	if err := c.RetryPolicy.Validate(); err != nil {
		return c, err
	}
	// Build one throwaway Defense now so configuration errors surface at
	// construction, not inside the worker pool (same probe as
	// eval.NewParallelScorer).
	if _, err := c.NewDefense(); err != nil {
		return c, fmt.Errorf("serve: defense factory: %w", err)
	}
	return c, nil
}

// SessionSeed derives the RNG seed of a session from the server seed with
// the SplitMix64 finalizer — the same derivation scheme as eval.SampleSeed
// and faults.Mix, so per-session random streams are mutually decorrelated
// and depend only on (seed, session ID), never on which worker runs the
// session or in what order.
func SessionSeed(seed int64, sessionID uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(sessionID+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// deviceSeed derives the RNG seed of device i in a fused multi-wearable
// session from the session seed, with the same SplitMix64 finalizer but
// an XOR pre-whitening distinct from core's provisional-evaluation
// derivation. Device 0 keeps the session seed untouched, so a fused
// session with a single contributing device scores bit-identically to
// the single-wearable path.
func deviceSeed(seed int64, device uint64) int64 {
	if device == 0 {
		return seed
	}
	z := uint64(seed) ^ 0x5a5a5a5aa5a5a5a5 + 0x9e3779b97f4a7c15*device
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
