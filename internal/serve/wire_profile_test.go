package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// legacyRequestBytes hand-encodes a request the way the pre-extension
// protocol did: UserID, WearableAddr, seed, samples — nothing after.
func legacyRequestBytes(req Request) []byte {
	var dst []byte
	dst = appendString(dst, req.UserID)
	dst = appendString(dst, req.WearableAddr)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(req.RNGSeed))
	dst = binary.AppendUvarint(dst, uint64(len(req.VARecording)))
	for _, s := range req.VARecording {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s))
	}
	return dst
}

// TestRequestPayloadLegacyByteIdentity pins backward compatibility at the
// byte level: a request without WearableAddrs encodes identically to the
// pre-extension protocol, so deployed decoders keep working and the
// wire-equivalence goldens stay valid.
func TestRequestPayloadLegacyByteIdentity(t *testing.T) {
	reqs := []Request{
		{},
		{UserID: "alice", WearableAddr: "watch:1", RNGSeed: -7,
			VARecording: []float64{0.25, -1, math.Pi}},
		{WearableAddr: "watch:1", VARecording: make([]float64, 100)},
	}
	for _, req := range reqs {
		got := AppendRequestPayload(nil, req)
		want := legacyRequestBytes(req)
		if !bytes.Equal(got, want) {
			t.Fatalf("request %+v: encoding diverged from the legacy layout\n got % x\nwant % x", req, got, want)
		}
		// And the legacy bytes decode with no extras.
		dec, err := DecodeRequestPayload(want)
		if err != nil {
			t.Fatalf("decode legacy payload: %v", err)
		}
		if dec.WearableAddrs != nil {
			t.Fatalf("legacy payload decoded extras %v", dec.WearableAddrs)
		}
	}
}

// TestRequestPayloadExtensionRoundTrip pins the extension: extras
// round-trip, and the encoding is the legacy bytes plus a trailing block.
func TestRequestPayloadExtensionRoundTrip(t *testing.T) {
	req := Request{
		UserID:        "alice",
		WearableAddr:  "watch:1",
		WearableAddrs: []string{"earbud:2", "anklet:3"},
		RNGSeed:       42,
		VARecording:   []float64{1, 2, 3},
	}
	enc := AppendRequestPayload(nil, req)
	legacy := legacyRequestBytes(req)
	if !bytes.HasPrefix(enc, legacy) {
		t.Fatal("extended encoding does not extend the legacy layout")
	}
	dec, err := DecodeRequestPayload(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.WearableAddrs) != 2 || dec.WearableAddrs[0] != "earbud:2" || dec.WearableAddrs[1] != "anklet:3" {
		t.Fatalf("extras %v, want [earbud:2 anklet:3]", dec.WearableAddrs)
	}
	if dec.UserID != req.UserID || dec.WearableAddr != req.WearableAddr || dec.RNGSeed != req.RNGSeed {
		t.Fatalf("session fields mangled: %+v", dec)
	}
}

// TestRequestPayloadExtensionMalformed pins the hardened decode: mangled
// extension blocks are typed ErrMalformedFrame, never a panic or a
// silently dropped field.
func TestRequestPayloadExtensionMalformed(t *testing.T) {
	base := AppendRequestPayload(nil, Request{WearableAddr: "w", VARecording: []float64{1}})
	cases := []struct {
		name string
		blob []byte
	}{
		{"unknown extension flag", append(append([]byte(nil), base...), 0x02)},
		{"flag without count", append(append([]byte(nil), base...), extWearableAddrs)},
		{"zero addr count", append(append([]byte(nil), base...), extWearableAddrs, 0x00)},
		{"count past end", append(append([]byte(nil), base...), extWearableAddrs, 0x09, 0x01, 'a')},
		{"addr length past end", append(append([]byte(nil), base...), extWearableAddrs, 0x01, 0x7f)},
		{"trailing after extras", append(append([]byte(nil), base...), extWearableAddrs, 0x01, 0x01, 'a', 0x00)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeRequestPayload(tc.blob); !errors.Is(err, ErrMalformedFrame) {
				t.Fatalf("decode err %v, want ErrMalformedFrame", err)
			}
		})
	}
}

// TestUserRequiredErrorCode pins the new wire code end to end through the
// error payload codec: ErrUserIDRequired classifies as code 11 / kind
// "user_required" and decodes back to the same sentinel.
func TestUserRequiredErrorCode(t *testing.T) {
	if got := errCode(ErrUserIDRequired); got != codeUserRequired {
		t.Fatalf("errCode(ErrUserIDRequired) = %d, want %d", got, codeUserRequired)
	}
	if got := errKind(ErrUserIDRequired); got != kindUserRequired {
		t.Fatalf("errKind(ErrUserIDRequired) = %q, want %q", got, kindUserRequired)
	}
	payload := AppendErrorPayload(nil, ErrUserIDRequired)
	if payload[0] != codeUserRequired {
		t.Fatalf("error payload code %d, want %d", payload[0], codeUserRequired)
	}
	sessErr, err := DecodeErrorPayload(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !errors.Is(sessErr, ErrUserIDRequired) {
		t.Fatalf("decoded error %v does not wrap ErrUserIDRequired", sessErr)
	}
}
