package serve

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/syncnet"
)

// The front-end wire protocol mirrors the syncnet transport: length-free
// gob frames over TCP, one request/response pair at a time per
// connection. Clients that want concurrent sessions open several
// connections — that keeps per-connection state trivial and lets the
// drain half-close each connection knowing at most one response is in
// flight on it.

// wireRequest is one session submission frame.
type wireRequest struct {
	// ID correlates the response; chosen by the client.
	ID uint64
	// WearableAddr, VASamples, RNGSeed mirror Request.
	WearableAddr string
	VASamples    []float64
	RNGSeed      int64
}

// wireResponse is one verdict (or typed failure) frame.
type wireResponse struct {
	ID uint64
	OK bool
	// Verdict fields (OK only). Spans carries the span count; the spans
	// themselves stay server-side.
	Score      float64
	Attack     bool
	SyncOffset int
	Spans      int
	// ErrKind and Err describe the failure (!OK only). ErrKind is one of
	// the kind* constants so clients recover typed errors.
	ErrKind string
	Err     string
}

// Error kinds of the wire protocol. Stable strings, not iota: both ends
// may be rebuilt independently.
const (
	kindOverloaded   = "overloaded"
	kindDraining     = "draining"
	kindTimeout      = "timeout"
	kindTransport    = "transport"
	kindWearable     = "wearable"
	kindNonFinite    = "nonfinite_score"
	kindBadRecording = "bad_recording"
	kindInternal     = "internal"
)

// errKind classifies a session error for the wire.
func errKind(err error) string {
	var wearErr *syncnet.WearableError
	var issue *core.RecordingIssue
	switch {
	case errors.Is(err, ErrOverloaded):
		return kindOverloaded
	case errors.Is(err, ErrDraining):
		return kindDraining
	case errors.Is(err, ErrSessionTimeout):
		return kindTimeout
	case errors.Is(err, syncnet.ErrRetriesExhausted):
		return kindTransport
	case errors.As(err, &wearErr):
		return kindWearable
	case errors.Is(err, detector.ErrNonFiniteScore):
		return kindNonFinite
	case errors.As(err, &issue):
		return kindBadRecording
	default:
		return kindInternal
	}
}

// RemoteError is a server-side session failure whose kind has no local
// typed equivalent (or an unrecognized kind from a newer server).
type RemoteError struct {
	// Kind is the wire error kind.
	Kind string
	// Msg is the server's error text.
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return "serve: remote " + e.Kind + ": " + e.Msg }

// remoteError maps a wire failure back to the matching typed error, so
// errors.Is/As work across the wire exactly as they do in-process.
func remoteError(kind, msg string) error {
	switch kind {
	case kindOverloaded:
		return fmt.Errorf("%w (remote: %s)", ErrOverloaded, msg)
	case kindDraining:
		return fmt.Errorf("%w (remote: %s)", ErrDraining, msg)
	case kindTimeout:
		return fmt.Errorf("%w (remote: %s)", ErrSessionTimeout, msg)
	case kindTransport:
		return fmt.Errorf("%w (remote: %s)", syncnet.ErrRetriesExhausted, msg)
	case kindNonFinite:
		return fmt.Errorf("%w (remote: %s)", detector.ErrNonFiniteScore, msg)
	case kindWearable:
		return &syncnet.WearableError{Msg: msg}
	default:
		return &RemoteError{Kind: kind, Msg: msg}
	}
}

// Listen mounts the session front-end on addr and returns the resolved
// listen address. One listener per server; sessions arriving over it run
// through the same admission queue as Submit.
func (s *Server) Listen(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateRunning {
		return "", ErrDraining
	}
	if s.listener != nil {
		return "", fmt.Errorf("serve: already listening on %s", s.listener.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	s.listener = ln
	s.acceptWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the front-end listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.state != stateRunning {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// handleConn serves one front-end connection: decode a session, run it
// through Submit, encode the verdict, repeat until the peer (or the
// drain's half-close) ends the stream.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.connWG.Done()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		verdict, err := s.Submit(context.Background(), Request{
			WearableAddr: req.WearableAddr,
			VARecording:  req.VASamples,
			RNGSeed:      req.RNGSeed,
		})
		resp := wireResponse{ID: req.ID}
		if err != nil {
			resp.ErrKind = errKind(err)
			resp.Err = err.Error()
		} else {
			resp.OK = true
			resp.Score = verdict.Score
			resp.Attack = verdict.Attack
			resp.SyncOffset = verdict.SyncOffset
			resp.Spans = len(verdict.Spans)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Client is a VA-side client of the session front-end. One Client issues
// one session at a time (Inspect holds an internal lock); open several
// clients for concurrent sessions.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	mu   sync.Mutex
	next uint64
}

// DialServer connects to a session front-end.
func DialServer(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }

// Inspect submits one session and blocks until the verdict arrives. The
// returned verdict carries no spans (only their count crosses the wire);
// failures come back as the same typed errors Submit returns.
func (c *Client) Inspect(req Request) (*core.Verdict, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	id := c.next
	if err := c.enc.Encode(&wireRequest{
		ID:           id,
		WearableAddr: req.WearableAddr,
		VASamples:    req.VARecording,
		RNGSeed:      req.RNGSeed,
	}); err != nil {
		return nil, fmt.Errorf("serve: send session: %w", err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("serve: read verdict: %w", err)
	}
	if resp.ID != id {
		return nil, fmt.Errorf("serve: session mismatch: got %d, want %d", resp.ID, id)
	}
	if !resp.OK {
		return nil, remoteError(resp.ErrKind, resp.Err)
	}
	return &core.Verdict{Score: resp.Score, Attack: resp.Attack, SyncOffset: resp.SyncOffset}, nil
}
