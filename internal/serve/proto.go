package serve

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/syncnet"
)

// Error-kind vocabulary of the wire protocol and the typed-sentinel
// mapping shared by the binary codec (wire.go) and the retired gob codec
// below. Failures cross the wire as stable kinds that the client maps
// back to the same typed sentinels, so errors.Is/As work across the wire
// exactly as they do in-process.

// Error kinds. Stable strings, not iota: both ends may be rebuilt
// independently. The binary protocol sends the code* constants instead;
// codeToKind in wire.go ties the two vocabularies together.
const (
	kindOverloaded   = "overloaded"
	kindDraining     = "draining"
	kindTimeout      = "timeout"
	kindTransport    = "transport"
	kindWearable     = "wearable"
	kindNonFinite    = "nonfinite_score"
	kindBadRecording = "bad_recording"
	kindInternal     = "internal"
	kindNodeLost     = "node_lost"
	kindNoNodes      = "no_nodes"
	kindUserRequired = "user_required"
)

// Routing-tier sentinels. They live here, next to the rest of the wire
// error vocabulary, because the wire protocol must carry them between a
// router front-door and its clients; internal/router returns them.
var (
	// ErrNodeLost reports that the serving node died (or its link reset)
	// while the session was in flight. The session's verdict, if any, is
	// unrecoverable; the caller owns the retry decision.
	ErrNodeLost = errors.New("serve: node lost mid-session")
	// ErrNoNodes reports that no healthy node was available to take the
	// session.
	ErrNoNodes = errors.New("serve: no healthy nodes")
)

// NodeError attributes a session failure to a named serving node — the
// router wraps every per-node failure in one, so a shed (ErrOverloaded,
// ErrDraining) or a lost node surfaces to the router's client with the
// node identity attached. Unwrap exposes the inner sentinel to
// errors.Is/As.
type NodeError struct {
	// Node is the failing node's registered id.
	Node string
	// Err is the underlying typed error.
	Err error
}

// Error implements the error interface.
func (e *NodeError) Error() string { return "node " + e.Node + ": " + e.Err.Error() }

// Unwrap exposes the wrapped error.
func (e *NodeError) Unwrap() error { return e.Err }

// errKind classifies a session error for the wire.
func errKind(err error) string {
	var wearErr *syncnet.WearableError
	var issue *core.RecordingIssue
	switch {
	case errors.Is(err, ErrNodeLost):
		return kindNodeLost
	case errors.Is(err, ErrNoNodes):
		return kindNoNodes
	case errors.Is(err, ErrUserIDRequired):
		return kindUserRequired
	case errors.Is(err, ErrOverloaded):
		return kindOverloaded
	case errors.Is(err, ErrDraining):
		return kindDraining
	case errors.Is(err, ErrSessionTimeout):
		return kindTimeout
	case errors.Is(err, syncnet.ErrRetriesExhausted):
		return kindTransport
	case errors.As(err, &wearErr):
		return kindWearable
	case errors.Is(err, detector.ErrNonFiniteScore):
		return kindNonFinite
	case errors.As(err, &issue):
		return kindBadRecording
	default:
		return kindInternal
	}
}

// RemoteError is a server-side session failure whose kind has no local
// typed equivalent (or an unrecognized kind from a newer server).
type RemoteError struct {
	// Kind is the wire error kind.
	Kind string
	// Msg is the server's error text.
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return "serve: remote " + e.Kind + ": " + e.Msg }

// remoteError maps a wire failure back to the matching typed error, so
// errors.Is/As work across the wire exactly as they do in-process.
func remoteError(kind, msg string) error {
	switch kind {
	case kindOverloaded:
		return fmt.Errorf("%w (remote: %s)", ErrOverloaded, msg)
	case kindDraining:
		return fmt.Errorf("%w (remote: %s)", ErrDraining, msg)
	case kindTimeout:
		return fmt.Errorf("%w (remote: %s)", ErrSessionTimeout, msg)
	case kindTransport:
		return fmt.Errorf("%w (remote: %s)", syncnet.ErrRetriesExhausted, msg)
	case kindNonFinite:
		return fmt.Errorf("%w (remote: %s)", detector.ErrNonFiniteScore, msg)
	case kindWearable:
		return &syncnet.WearableError{Msg: msg}
	case kindNodeLost:
		return fmt.Errorf("%w (remote: %s)", ErrNodeLost, msg)
	case kindNoNodes:
		return fmt.Errorf("%w (remote: %s)", ErrNoNodes, msg)
	case kindUserRequired:
		return fmt.Errorf("%w (remote: %s)", ErrUserIDRequired, msg)
	default:
		return &RemoteError{Kind: kind, Msg: msg}
	}
}

// --- Legacy gob codec ------------------------------------------------
//
// The original front-end spoke gob: one wireRequest/wireResponse pair at
// a time per connection, with gob's per-connection type negotiation paid
// on every fresh connection. The serving path now speaks the framed
// binary protocol (wire.go, mux.go); this codec is retained only so the
// equivalence suite can pin that every typed error kind and a verdict
// round-trip through BOTH codecs to identical client-side sentinels —
// the cutover stays pinned until the gob path is deleted outright.

// wireRequest is one legacy session submission frame.
type wireRequest struct {
	// ID correlates the response; chosen by the client.
	ID uint64
	// WearableAddr, VASamples, RNGSeed mirror Request.
	WearableAddr string
	VASamples    []float64
	RNGSeed      int64
}

// wireResponse is one legacy verdict (or typed failure) frame.
type wireResponse struct {
	ID uint64
	OK bool
	// Verdict fields (OK only). Spans carries the span count; the spans
	// themselves stay server-side.
	Score      float64
	Attack     bool
	SyncOffset int
	Spans      int
	// ErrKind and Err describe the failure (!OK only).
	ErrKind string
	Err     string
}

// gobEncodeSession encodes one request/response pair the way the legacy
// front-end did on a fresh connection: a new encoder per direction, so
// the buffer includes gob's type-descriptor negotiation — the per-session
// cost the binary protocol removes.
func gobEncodeSession(req wireRequest, resp wireResponse) (reqBuf, respBuf []byte, err error) {
	var rb, pb bytes.Buffer
	if err := gob.NewEncoder(&rb).Encode(&req); err != nil {
		return nil, nil, err
	}
	if err := gob.NewEncoder(&pb).Encode(&resp); err != nil {
		return nil, nil, err
	}
	return rb.Bytes(), pb.Bytes(), nil
}

// gobDecodeSession decodes the pair with fresh decoders, mirroring the
// legacy client.
func gobDecodeSession(reqBuf, respBuf []byte) (wireRequest, wireResponse, error) {
	var req wireRequest
	var resp wireResponse
	if err := gob.NewDecoder(bytes.NewReader(reqBuf)).Decode(&req); err != nil {
		return req, resp, err
	}
	if err := gob.NewDecoder(bytes.NewReader(respBuf)).Decode(&resp); err != nil {
		return req, resp, err
	}
	return req, resp, nil
}
