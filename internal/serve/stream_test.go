package serve_test

import (
	"context"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vibguard/internal/core"
	"vibguard/internal/serve"
)

// The streamed-session suite: SubmitStream in-process, the chunked wire
// protocol over real TCP, early-exit propagation, and concurrent streams
// multiplexing one connection — all seeded and race-clean.

const streamChunk = 1600 // 100 ms of 16 kHz audio

// chunksOf slices a recording into a closed channel of chunk copies.
func chunksOf(rec []float64, chunk int) <-chan []float64 {
	ch := make(chan []float64, len(rec)/chunk+2)
	for lo := 0; lo < len(rec); lo += chunk {
		hi := lo + chunk
		if hi > len(rec) {
			hi = len(rec)
		}
		ch <- rec[lo:hi]
	}
	close(ch)
	return ch
}

// TestSubmitStreamMatchesSubmit pins the in-process contract: a streamed
// session with early exit disabled returns a verdict bit-identical to
// Submit with the same seed, and a streamed session with the default
// config never flips the verdict.
func TestSubmitStreamMatchesSubmit(t *testing.T) {
	sc := scenarioFor(t)
	legit := newAgent(t, sc.legitWear)
	attackAgent := newAgent(t, sc.attackWear)

	for _, tc := range []struct {
		name       string
		va, wear   []float64
		agent      string
		wantAttack bool
	}{
		{"legit", sc.legitVA, sc.legitWear, legit.Addr(), false},
		{"attack", sc.attackVA, sc.attackWear, attackAgent.Addr(), true},
	} {
		srv := newServer(t, serve.Config{Workers: 2, Seed: serveSeed})
		req := serve.Request{UserID: "u", WearableAddr: tc.agent, RNGSeed: 42}
		batchReq := req
		batchReq.VARecording = tc.va
		want, err := srv.Submit(context.Background(), batchReq)
		if err != nil {
			t.Fatalf("%s: batch submit: %v", tc.name, err)
		}
		if want.Attack != tc.wantAttack {
			t.Fatalf("%s: batch verdict attack=%v, want %v", tc.name, want.Attack, tc.wantAttack)
		}
		got, err := srv.SubmitStream(context.Background(), req, chunksOf(tc.va, streamChunk))
		if err != nil {
			t.Fatalf("%s: stream submit: %v", tc.name, err)
		}
		if got.Attack != want.Attack {
			t.Errorf("%s: streamed verdict attack=%v flips batch attack=%v", tc.name, got.Attack, want.Attack)
		}
		if !got.Early && math.Float64bits(got.Score) != math.Float64bits(want.Score) {
			t.Errorf("%s: full-run streamed score %v != batch score %v", tc.name, got.Score, want.Score)
		}
		if got.Early && got.Consumed >= len(tc.va) {
			t.Errorf("%s: early verdict consumed all %d samples", tc.name, got.Consumed)
		}
	}
}

// TestSubmitStreamValidation pins the request contract.
func TestSubmitStreamValidation(t *testing.T) {
	srv := newServer(t, serve.Config{Workers: 1, Seed: serveSeed})
	sc := scenarioFor(t)
	if _, err := srv.SubmitStream(context.Background(),
		serve.Request{WearableAddr: "x", VARecording: sc.legitVA}, chunksOf(sc.legitVA, streamChunk)); err == nil {
		t.Fatal("request-borne audio accepted on a streamed session")
	}
	if _, err := srv.SubmitStream(context.Background(), serve.Request{WearableAddr: "x"}, nil); err == nil {
		t.Fatal("nil chunk channel accepted")
	}
	if _, err := srv.SubmitStream(context.Background(), serve.Request{}, chunksOf(sc.legitVA, streamChunk)); err == nil {
		t.Fatal("missing wearable address accepted")
	}
}

// TestStreamOverWire drives streamed sessions through the real TCP
// front-end: OpenStream/Send/CloseSend/Wait against a listening server,
// with early-exit verdicts crossing the wire as FrameVerdictEarly.
func TestStreamOverWire(t *testing.T) {
	sc := scenarioFor(t)
	legit := newAgent(t, sc.legitWear)
	srv := newServer(t, serve.Config{Workers: 2, Seed: serveSeed})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The same seeded session twice: once as one request frame, once
	// chunked over the stream protocol (InspectStream chunks VARecording).
	req := serve.Request{UserID: "wire-user", WearableAddr: legit.Addr(),
		RNGSeed: 42, VARecording: sc.legitVA}
	want, err := cl.Inspect(req)
	if err != nil {
		t.Fatal(err)
	}

	v, err := cl.InspectStream(req, streamChunk)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack != want.Attack {
		t.Errorf("streamed wire verdict attack=%v flips batch attack=%v", v.Attack, want.Attack)
	}
	if v.Early && v.Consumed == 0 {
		t.Error("early wire verdict carries no consumed count")
	}
	if !v.Early && math.Float64bits(v.Score) != math.Float64bits(want.Score) {
		t.Errorf("full-run wire score %v != batch score %v", v.Score, want.Score)
	}
}

// TestStreamOverWireConcurrent multiplexes many concurrent streamed
// sessions over one connection, interleaved with batch requests, and
// requires every session to resolve with the right verdict.
func TestStreamOverWireConcurrent(t *testing.T) {
	sc := scenarioFor(t)
	legit := newAgent(t, sc.legitWear)
	attackAgent := newAgent(t, sc.attackWear)
	srv := newServer(t, serve.Config{Workers: 4, QueueDepth: 64, Seed: serveSeed})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const sessions = 16
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	flips := make([]bool, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			attack := i%2 == 1
			va, agent := sc.legitVA, legit.Addr()
			if attack {
				va, agent = sc.attackVA, attackAgent.Addr()
			}
			req := serve.Request{UserID: "u", WearableAddr: agent,
				RNGSeed: int64(1000 + i), VARecording: va}
			if i%4 == 0 {
				// Interleave plain requests on the same connection.
				bv, err := cl.Inspect(req)
				if err != nil {
					errs[i] = err
					return
				}
				flips[i] = bv.Attack != attack
				return
			}
			sv, err := cl.InspectStream(req, streamChunk)
			if err != nil {
				errs[i] = err
				return
			}
			flips[i] = sv.Attack != attack
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Errorf("session %d: %v", i, errs[i])
		}
		if flips[i] {
			t.Errorf("session %d: wrong verdict", i)
		}
	}
}

// TestStreamUnsupportedPeer pins the rejection when a streamed session
// reaches a mux serving only the batch protocol (nil stream handler): the
// peer must answer the chunk with an error frame carrying
// ErrStreamingUnsupported's message rather than killing the connection,
// and the same connection must keep serving batch requests afterwards.
func TestStreamUnsupportedPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				serve.ServeMuxConn(conn, func(ctx context.Context, req serve.Request) (*core.Verdict, error) {
					return &core.Verdict{Score: 0.9}, nil
				})
			}()
		}
	}()

	cl, err := serve.DialServer(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.InspectStream(serve.Request{UserID: "u", WearableAddr: "x"}, streamChunk)
	if err == nil {
		t.Fatal("streamed session accepted by a batch-only peer")
	}
	if !strings.Contains(err.Error(), "streamed sessions") {
		t.Fatalf("unsupported-peer error = %v, want ErrStreamingUnsupported's message", err)
	}
	// The connection must have survived the rejection.
	v, err := cl.Inspect(serve.Request{UserID: "u", WearableAddr: "x", VARecording: []float64{1}})
	if err != nil {
		t.Fatalf("batch request after a rejected stream: %v", err)
	}
	if v.Score != 0.9 {
		t.Fatalf("batch verdict score = %v after a rejected stream", v.Score)
	}
}
