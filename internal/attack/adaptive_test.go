package attack

import (
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/acoustics"
	"vibguard/internal/dsp"
)

// stubOracle is a deterministic stand-in for core.Defense: it rewards
// high-frequency energy (as the real defense's correlation score does for
// signals that keep the accelerometer amplifier quiet) plus a small
// rng-driven term, so the test exercises the per-iteration rng derivation.
type stubOracle struct{}

func (stubOracle) Score(vaRec, wearRec []float64, rng *rand.Rand) (float64, error) {
	spec := dsp.PowerSpectrum(vaRec)
	var low, high float64
	for k := 1; k < len(spec); k++ {
		f := dsp.BinFrequency(k, len(vaRec), testRate)
		if f < 500 {
			low += spec[k]
		} else {
			high += spec[k]
		}
	}
	if low+high == 0 {
		return 0, nil
	}
	return high/(low+high) + 0.01*rng.Float64(), nil
}

func adaptiveRun(t *testing.T, seed int64) *AdaptiveResult {
	t.Helper()
	a := NewAttacker(10)
	cmd := testCommand(t)
	est := noiselessEstimate(t, acoustics.GlassWindow)
	cfg := DefaultAdaptiveConfig(seed)
	cfg.Iterations = 12
	res, err := a.AdaptiveAttack(cmd, est, stubOracle{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptiveAttackDeterministicPerSeed is the attack-level half of the
// determinism satellite: the same seed yields a bit-identical waveform and
// score trajectory, and the result must not depend on the Attacker's own
// rng stream position.
func TestAdaptiveAttackDeterministicPerSeed(t *testing.T) {
	r1 := adaptiveRun(t, 42)
	r2 := adaptiveRun(t, 42)
	if len(r1.Audio) != len(r2.Audio) {
		t.Fatalf("audio lengths differ: %d vs %d", len(r1.Audio), len(r2.Audio))
	}
	for i := range r1.Audio {
		if math.Float64bits(r1.Audio[i]) != math.Float64bits(r2.Audio[i]) {
			t.Fatalf("audio differs at sample %d: %x vs %x", i,
				math.Float64bits(r1.Audio[i]), math.Float64bits(r2.Audio[i]))
		}
	}
	if len(r1.Trajectory) != len(r2.Trajectory) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(r1.Trajectory), len(r2.Trajectory))
	}
	for i := range r1.Trajectory {
		if math.Float64bits(r1.Trajectory[i]) != math.Float64bits(r2.Trajectory[i]) {
			t.Fatalf("trajectory differs at %d: %v vs %v", i, r1.Trajectory[i], r2.Trajectory[i])
		}
	}

	// Burn the attacker's own rng before the run: the adaptive loop must
	// seed all its randomness from cfg.Seed, not the attacker stream.
	a := NewAttacker(10)
	for i := 0; i < 100; i++ {
		a.rng.Float64()
	}
	cmd := testCommand(t)
	est := noiselessEstimate(t, acoustics.GlassWindow)
	cfg := DefaultAdaptiveConfig(42)
	cfg.Iterations = 12
	r3, err := a.AdaptiveAttack(cmd, est, stubOracle{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Audio {
		if math.Float64bits(r1.Audio[i]) != math.Float64bits(r3.Audio[i]) {
			t.Fatal("adaptive result depends on the attacker's rng stream position")
		}
	}
}

// TestAdaptiveAttackSeedsDiverge: different seeds explore different move
// sequences, so the trajectories must differ.
func TestAdaptiveAttackSeedsDiverge(t *testing.T) {
	r1 := adaptiveRun(t, 1)
	r2 := adaptiveRun(t, 2)
	same := len(r1.Trajectory) == len(r2.Trajectory)
	if same {
		for i := range r1.Trajectory {
			if math.Float64bits(r1.Trajectory[i]) != math.Float64bits(r2.Trajectory[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

// TestAdaptiveAttackImproves: the climb never regresses (trajectory is the
// best-so-far, monotone non-decreasing) and ends at BestScore ≥
// InitialScore within the iteration budget.
func TestAdaptiveAttackImproves(t *testing.T) {
	res := adaptiveRun(t, 3)
	if len(res.Trajectory) != 13 { // initial + 12 iterations
		t.Fatalf("trajectory length %d, want 13", len(res.Trajectory))
	}
	if res.Trajectory[0] != res.InitialScore {
		t.Error("trajectory[0] should be the initial score")
	}
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i] < res.Trajectory[i-1] {
			t.Errorf("trajectory regressed at %d: %v -> %v", i, res.Trajectory[i-1], res.Trajectory[i])
		}
	}
	if res.BestScore != res.Trajectory[len(res.Trajectory)-1] {
		t.Error("BestScore should equal the final trajectory entry")
	}
	if res.BestScore < res.InitialScore {
		t.Error("hill climb regressed below its starting point")
	}
	for _, g := range res.GainsDB {
		if g < 0 || g > DefaultAdaptiveConfig(3).MaxBoostDB {
			t.Errorf("gain %v dB outside [0, budget]", g)
		}
	}
}

func TestAdaptiveAttackErrors(t *testing.T) {
	a := NewAttacker(11)
	cmd := testCommand(t)
	est := noiselessEstimate(t, acoustics.GlassWindow)
	cfg := DefaultAdaptiveConfig(1)
	if _, err := a.AdaptiveAttack(nil, est, stubOracle{}, cfg); err == nil {
		t.Error("empty command should error")
	}
	if _, err := a.AdaptiveAttack(cmd, nil, stubOracle{}, cfg); err == nil {
		t.Error("nil estimate should error")
	}
	if _, err := a.AdaptiveAttack(cmd, est, nil, cfg); err == nil {
		t.Error("nil oracle should error")
	}
	bad := cfg
	bad.Bands = 1
	if _, err := a.AdaptiveAttack(cmd, est, stubOracle{}, bad); err == nil {
		t.Error("single band should error")
	}
}
