package attack

import (
	"errors"
	"fmt"
	"math"

	"vibguard/internal/dsp"
)

// The BarrierBypass attack (following the BarrierBypass paper) directly
// counters the defense's core mechanism: instead of accepting the
// barrier's frequency-selective attenuation — the physical signature the
// vibration-domain correlation keys on — the adversary first estimates the
// barrier's transmission curve with probe audio, then pre-equalizes the
// command with the inverse curve so the post-barrier signal is near-flat.
// The equalizer is bounded by a loudspeaker amplitude budget: per-frequency
// boost is capped and the pre-equalized waveform never clips past the
// playback ceiling, so a heavy barrier (brick) stays physically
// unbypassable.

// ErrBadProbe is returned when the probe pair is unusable for barrier
// estimation: too short, silent, or carrying no measurable band energy.
var ErrBadProbe = errors.New("attack: probe unusable for barrier estimation")

// minProbeSamples is the shortest probe the estimator accepts.
const minProbeSamples = 512

// Estimated gains are clamped to this range: a barrier never amplifies
// (beyond small measurement ripple) and the estimator never reports a
// band as fully opaque, so the inverse equalizer stays finite.
const (
	minEstimatedGain = 1e-4
	maxEstimatedGain = 10.0
)

// GainEstimate is an estimated barrier transmission curve: per-band
// pressure gains at ascending center frequencies. All gains are finite and
// within [minEstimatedGain, maxEstimatedGain] by construction.
type GainEstimate struct {
	// Freqs are the band center frequencies in Hz, ascending.
	Freqs []float64
	// Gains are the estimated pressure gains per band.
	Gains []float64
}

// Gain interpolates the estimated transmission gain at frequency f
// (piecewise linear between band centers, clamped at the ends). It is
// total: any f, including non-finite values, yields a finite positive
// gain.
func (e *GainEstimate) Gain(f float64) float64 {
	if len(e.Gains) == 0 {
		return 1
	}
	if math.IsNaN(f) || f <= e.Freqs[0] {
		return e.Gains[0]
	}
	last := len(e.Freqs) - 1
	if f >= e.Freqs[last] {
		return e.Gains[last]
	}
	for i := 1; i <= last; i++ {
		if f <= e.Freqs[i] {
			span := e.Freqs[i] - e.Freqs[i-1]
			if span <= 0 {
				return e.Gains[i]
			}
			frac := (f - e.Freqs[i-1]) / span
			return e.Gains[i-1] + (e.Gains[i]-e.Gains[i-1])*frac
		}
	}
	return e.Gains[last]
}

// ProbeSignal returns the deterministic wide-band chirp the adversary
// plays through the barrier to measure its transmission curve (85 Hz to
// just under the loudspeaker band edge, one second).
func ProbeSignal(sampleRate float64) []float64 {
	hi := 7000.0
	if hi > 0.45*sampleRate {
		hi = 0.45 * sampleRate
	}
	return dsp.Chirp(85, hi, 0.5, 1.0, sampleRate)
}

// EstimateBarrierGain estimates a barrier's transmission curve from a
// probe played on the attacker's side and the signal received behind the
// barrier. It splits the spectrum into geometrically spaced bands and
// takes the per-band energy ratio. The estimator is total over corrupt
// input: non-finite samples are treated as dropouts, unmeasurable bands
// inherit the nearest measured neighbor, and every returned gain is
// finite and clamped; genuinely unusable probes (short, silent) return
// ErrBadProbe instead.
func EstimateBarrierGain(probe, received []float64, sampleRate float64, bands int) (*GainEstimate, error) {
	if math.IsNaN(sampleRate) || math.IsInf(sampleRate, 0) || sampleRate <= 0 {
		return nil, fmt.Errorf("attack: sample rate %v must be positive", sampleRate)
	}
	if bands < 2 {
		return nil, fmt.Errorf("attack: need at least 2 estimation bands, got %d", bands)
	}
	if bands > 128 {
		bands = 128
	}
	n := len(probe)
	if len(received) < n {
		n = len(received)
	}
	if n < minProbeSamples {
		return nil, fmt.Errorf("%w: %d samples", ErrBadProbe, n)
	}
	sanitize := func(x []float64) []float64 {
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			if v := x[i]; !math.IsNaN(v) && !math.IsInf(v, 0) {
				out[i] = v
			}
		}
		return out
	}
	ps := dsp.PowerSpectrum(sanitize(probe))
	rs := dsp.PowerSpectrum(sanitize(received))

	lo := 85.0
	hi := 7000.0
	if hi > 0.45*sampleRate {
		hi = 0.45 * sampleRate
	}
	if hi <= lo*1.2 {
		return nil, fmt.Errorf("attack: band [%v, %v] too narrow at rate %v", lo, hi, sampleRate)
	}
	// Geometric band edges: speech-relevant resolution at the low end,
	// coarser where the barrier curve is smooth.
	ratio := math.Pow(hi/lo, 1/float64(bands))
	edges := make([]float64, bands+1)
	edges[0] = lo
	for i := 1; i <= bands; i++ {
		edges[i] = edges[i-1] * ratio
	}
	probeE := make([]float64, bands)
	recvE := make([]float64, bands)
	var totalProbe float64
	for k := 1; k < len(ps); k++ {
		f := dsp.BinFrequency(k, n, sampleRate)
		if f < lo || f >= hi {
			continue
		}
		b := int(math.Log(f/lo) / math.Log(ratio))
		if b < 0 {
			b = 0
		}
		if b >= bands {
			b = bands - 1
		}
		probeE[b] += ps[k]
		recvE[b] += rs[k]
		totalProbe += ps[k]
	}
	if totalProbe <= 0 || math.IsNaN(totalProbe) || math.IsInf(totalProbe, 0) {
		return nil, fmt.Errorf("%w: silent probe", ErrBadProbe)
	}

	est := &GainEstimate{
		Freqs: make([]float64, bands),
		Gains: make([]float64, bands),
	}
	measured := false
	for b := 0; b < bands; b++ {
		est.Freqs[b] = math.Sqrt(edges[b] * edges[b+1])
		g := math.NaN()
		// A band carrying less than a millionth of the probe energy is a
		// measurement hole, not a barrier property.
		if probeE[b] > totalProbe*1e-6 {
			g = math.Sqrt(recvE[b] / probeE[b])
		}
		if math.IsNaN(g) || math.IsInf(g, 0) {
			est.Gains[b] = math.NaN() // fill from neighbors below
			continue
		}
		if g < minEstimatedGain {
			g = minEstimatedGain
		}
		if g > maxEstimatedGain {
			g = maxEstimatedGain
		}
		est.Gains[b] = g
		measured = true
	}
	if !measured {
		return nil, fmt.Errorf("%w: no measurable band", ErrBadProbe)
	}
	// Unmeasured bands inherit the nearest measured neighbor (forward
	// pass fills from the left, backward pass covers a leading hole).
	for b := 1; b < bands; b++ {
		if math.IsNaN(est.Gains[b]) && !math.IsNaN(est.Gains[b-1]) {
			est.Gains[b] = est.Gains[b-1]
		}
	}
	for b := bands - 2; b >= 0; b-- {
		if math.IsNaN(est.Gains[b]) && !math.IsNaN(est.Gains[b+1]) {
			est.Gains[b] = est.Gains[b+1]
		}
	}
	return est, nil
}

// BypassConfig bounds the inverse equalizer by the loudspeaker's physical
// limits.
type BypassConfig struct {
	// MaxBoostDB caps the per-frequency inverse-EQ boost: the
	// loudspeaker's amplitude budget. Bands whose required boost exceeds
	// it stay under-equalized.
	MaxBoostDB float64
	// CeilingPeak is the playback ceiling on the pre-equalized waveform
	// (digital full scale); the waveform is rescaled below it rather
	// than clipped.
	CeilingPeak float64
	// SampleRate of the command audio.
	SampleRate float64
}

// DefaultBypassConfig returns the budget of a strong consumer
// loudspeaker: 40 dB of equalization headroom at a 0.999 full-scale
// ceiling.
func DefaultBypassConfig(sampleRate float64) BypassConfig {
	return BypassConfig{MaxBoostDB: 40, CeilingPeak: 0.999, SampleRate: sampleRate}
}

// Validate checks the bypass configuration.
func (c *BypassConfig) Validate() error {
	if c.MaxBoostDB < 0 {
		return fmt.Errorf("attack: max boost %v dB must be non-negative", c.MaxBoostDB)
	}
	if c.CeilingPeak <= 0 {
		return fmt.Errorf("attack: ceiling %v must be positive", c.CeilingPeak)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("attack: sample rate %v must be positive", c.SampleRate)
	}
	return nil
}

// PreEqualize applies the budget-bounded inverse of the estimated barrier
// curve to the command: each frequency is boosted by min(1/gain,
// MaxBoostDB) so the post-barrier spectrum is near-flat wherever the
// budget allows, and the result is rescaled to the playback ceiling if the
// boost pushed its peak past it.
func PreEqualize(commandAudio []float64, est *GainEstimate, cfg BypassConfig) ([]float64, error) {
	if len(commandAudio) == 0 {
		return nil, fmt.Errorf("attack: empty command audio")
	}
	if est == nil || len(est.Gains) == 0 {
		return nil, fmt.Errorf("attack: nil barrier estimate")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxBoost := dsp.DBToAmplitude(cfg.MaxBoostDB)
	out := dsp.FrequencyShape(commandAudio, cfg.SampleRate, func(f float64) float64 {
		boost := 1 / est.Gain(f)
		if boost > maxBoost {
			boost = maxBoost
		}
		if boost < 1 {
			// The estimate can exceed unity on measurement ripple; never
			// attenuate the command below its own level.
			boost = 1
		}
		return boost
	})
	if peak := dsp.MaxAbs(out); peak > cfg.CeilingPeak {
		out = dsp.Scale(out, cfg.CeilingPeak/peak)
	}
	return out, nil
}

// BarrierBypassAttack pre-equalizes the command against the estimated
// barrier curve and renders it through the attack loudspeaker.
func (a *Attacker) BarrierBypassAttack(commandAudio []float64, est *GainEstimate, cfg BypassConfig) ([]float64, error) {
	eq, err := PreEqualize(commandAudio, est, cfg)
	if err != nil {
		return nil, err
	}
	out, err := a.Loudspeaker.Render(eq)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return out, nil
}
