package attack

import "testing"

// TestKindsExhaustive pins Kinds() and String() to the kindCount sentinel:
// adding an eighth kind to the const block without naming it (and without
// wiring it through the corpus builder, which has its own exhaustiveness
// test in internal/eval) fails here instead of silently shrinking
// coverage.
func TestKindsExhaustive(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != int(kindCount)-1 {
		t.Fatalf("Kinds() returned %d kinds, const block declares %d", len(kinds), int(kindCount)-1)
	}
	seen := make(map[Kind]bool, len(kinds))
	for i, k := range kinds {
		if k != Kind(i+1) {
			t.Errorf("Kinds()[%d] = %v, want %v", i, k, Kind(i+1))
		}
		if seen[k] {
			t.Errorf("Kinds() repeats %v", k)
		}
		seen[k] = true
		if k.String() == "unknown" {
			t.Errorf("kind %d has no String() case", k)
		}
	}
	for _, k := range []Kind{0, kindCount, kindCount + 1} {
		if got := Kind(k).String(); got != "unknown" {
			t.Errorf("out-of-range kind %d.String() = %q, want unknown", k, got)
		}
	}
}

// TestPaperKindsSubset pins the paper's four kinds as a strict prefix of
// the full kind set: figure sweeps iterate PaperKinds and must stay on the
// threat model of Section II.
func TestPaperKindsSubset(t *testing.T) {
	paper := PaperKinds()
	want := []Kind{Random, Replay, Synthesis, HiddenVoice}
	if len(paper) != len(want) {
		t.Fatalf("PaperKinds() has %d kinds, want %d", len(paper), len(want))
	}
	for i, k := range want {
		if paper[i] != k {
			t.Errorf("PaperKinds()[%d] = %v, want %v", i, paper[i], k)
		}
	}
	all := Kinds()
	for i, k := range paper {
		if all[i] != k {
			t.Errorf("PaperKinds()[%d] = %v is not a prefix of Kinds()", i, k)
		}
	}
}
