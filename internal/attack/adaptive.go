package attack

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/dsp"
)

// The Adaptive attack models the strongest adversary in the extended
// threat model: one who has the defense itself (or a faithful replica) and
// tunes their playback chain against it, in the style of VRifle's
// IR-robust training loop. The adversary holds an estimated barrier
// response, simulates the victim-side capture by convolving candidate
// commands with it, and hill-climbs per-band loudspeaker EQ gains to
// maximize the defense's own correlation score. The loop is deterministic
// per seed and bounded in iterations — the budget a real adversary pays in
// trial playbacks.

// Oracle scores a (VA recording, wearable recording) pair exactly as the
// defense does; core.Defense satisfies it.
type Oracle interface {
	Score(vaRec, wearRec []float64, rng *rand.Rand) (float64, error)
}

// AdaptiveConfig bounds and seeds the optimization loop.
type AdaptiveConfig struct {
	// Iterations is the optimization budget: each iteration is one
	// simulated trial playback against the oracle.
	Iterations int
	// Bands is the number of EQ bands the adversary tunes.
	Bands int
	// StepDB is the hill-climbing step size per move.
	StepDB float64
	// MaxBoostDB caps each band's gain: the loudspeaker amplitude budget
	// shared with the bypass attack.
	MaxBoostDB float64
	// CeilingPeak is the playback ceiling on the final waveform.
	CeilingPeak float64
	// Seed drives every random choice in the loop. The same seed yields a
	// bit-identical waveform and trajectory.
	Seed int64
	// VADistanceM and WearDistanceM are the adversary's guesses of the
	// receiver distances used in the simulated capture.
	VADistanceM, WearDistanceM float64
	// SampleRate of the command audio.
	SampleRate float64
}

// DefaultAdaptiveConfig returns the standard adversary budget: 28 trial
// playbacks over a 10-band equalizer.
func DefaultAdaptiveConfig(seed int64) AdaptiveConfig {
	return AdaptiveConfig{
		Iterations:    28,
		Bands:         10,
		StepDB:        4,
		MaxBoostDB:    40,
		CeilingPeak:   0.999,
		Seed:          seed,
		VADistanceM:   2.0,
		WearDistanceM: 2.2,
		SampleRate:    16000,
	}
}

// Validate checks the adaptive configuration.
func (c *AdaptiveConfig) Validate() error {
	if c.Iterations < 0 || c.Iterations > 10000 {
		return fmt.Errorf("attack: iteration budget %d outside [0, 10000]", c.Iterations)
	}
	if c.Bands < 2 {
		return fmt.Errorf("attack: need at least 2 EQ bands, got %d", c.Bands)
	}
	if c.StepDB <= 0 {
		return fmt.Errorf("attack: step %v dB must be positive", c.StepDB)
	}
	if c.MaxBoostDB < 0 {
		return fmt.Errorf("attack: max boost %v dB must be non-negative", c.MaxBoostDB)
	}
	if c.CeilingPeak <= 0 {
		return fmt.Errorf("attack: ceiling %v must be positive", c.CeilingPeak)
	}
	if c.VADistanceM <= 0 || c.WearDistanceM <= 0 {
		return fmt.Errorf("attack: distances (%v, %v) must be positive", c.VADistanceM, c.WearDistanceM)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("attack: sample rate %v must be positive", c.SampleRate)
	}
	return nil
}

// AdaptiveResult is the outcome of one adaptive optimization run.
type AdaptiveResult struct {
	// Audio is the optimized loudspeaker waveform.
	Audio []float64
	// GainsDB are the optimized per-band EQ gains.
	GainsDB []float64
	// Trajectory is the best oracle score after each iteration
	// (Trajectory[0] is the score of the initial candidate).
	Trajectory []float64
	// InitialScore and BestScore bracket the optimization.
	InitialScore, BestScore float64
}

// adaptiveMix is SplitMix64: it derives one independent sub-seed per
// iteration so the oracle's noise stream cannot depend on the acceptance
// path taken to reach that iteration.
func adaptiveMix(seed, i uint64) uint64 {
	z := seed + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// eqBandCenters returns geometrically spaced EQ band centers across the
// loudspeaker's usable band.
func eqBandCenters(bands int) []float64 {
	const lo, hi = 150.0, 6500.0
	ratio := math.Pow(hi/lo, 1/float64(bands-1))
	centers := make([]float64, bands)
	f := lo
	for i := range centers {
		centers[i] = f
		f *= ratio
	}
	return centers
}

// eqGain interpolates per-band dB gains to a continuous amplitude gain
// (linear in dB against log-frequency, clamped at the band edges).
func eqGain(centers, gainsDB []float64, f float64) float64 {
	if math.IsNaN(f) || f <= centers[0] {
		return dsp.DBToAmplitude(gainsDB[0])
	}
	last := len(centers) - 1
	if f >= centers[last] {
		return dsp.DBToAmplitude(gainsDB[last])
	}
	for i := 1; i <= last; i++ {
		if f <= centers[i] {
			frac := math.Log(f/centers[i-1]) / math.Log(centers[i]/centers[i-1])
			return dsp.DBToAmplitude(gainsDB[i-1] + (gainsDB[i]-gainsDB[i-1])*frac)
		}
	}
	return dsp.DBToAmplitude(gainsDB[last])
}

// AdaptiveAttack hill-climbs per-band EQ gains against the oracle. The
// gains start at the budget-capped inverse of the estimated barrier curve
// (the bypass attack's solution) and each iteration perturbs one random
// band by ±StepDB, keeping the change when the simulated defense score
// improves. All randomness derives from cfg.Seed, never from the
// Attacker's own stream, so the run is reproducible independent of what
// the attacker generated before.
func (a *Attacker) AdaptiveAttack(commandAudio []float64, est *GainEstimate, oracle Oracle, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	if len(commandAudio) == 0 {
		return nil, fmt.Errorf("attack: empty command audio")
	}
	if est == nil || len(est.Gains) == 0 {
		return nil, fmt.Errorf("attack: nil barrier estimate")
	}
	if oracle == nil {
		return nil, fmt.Errorf("attack: nil oracle")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	centers := eqBandCenters(cfg.Bands)

	// Seed the climb with the bypass solution: the budget-capped inverse
	// of the estimated barrier curve in dB.
	gains := make([]float64, cfg.Bands)
	for i, f := range centers {
		boost := -dsp.AmplitudeToDB(est.Gain(f))
		if boost < 0 {
			boost = 0
		}
		if boost > cfg.MaxBoostDB {
			boost = cfg.MaxBoostDB
		}
		gains[i] = boost
	}

	// render produces the loudspeaker output for a candidate gain vector.
	render := func(g []float64) ([]float64, error) {
		eq := dsp.FrequencyShape(commandAudio, cfg.SampleRate, func(f float64) float64 {
			return eqGain(centers, g, f)
		})
		if peak := dsp.MaxAbs(eq); peak > cfg.CeilingPeak {
			eq = dsp.Scale(eq, cfg.CeilingPeak/peak)
		}
		return a.Loudspeaker.Render(eq)
	}
	// evaluate simulates the victim-side capture — emitted sound through
	// the estimated barrier, 1/d spreading to each receiver — and asks the
	// oracle for the defense's score. The rng is derived per iteration so
	// the oracle's noise stream is independent of the acceptance path.
	spread := func(d float64) float64 {
		if d < 1 {
			return 1
		}
		return 1 / d
	}
	evaluate := func(g []float64, iter int) (float64, error) {
		emitted, err := render(g)
		if err != nil {
			return 0, err
		}
		behind := dsp.FrequencyShape(emitted, cfg.SampleRate, est.Gain)
		va := dsp.Scale(behind, spread(cfg.VADistanceM))
		wear := dsp.Scale(behind, spread(cfg.WearDistanceM))
		rng := rand.New(rand.NewSource(int64(adaptiveMix(uint64(cfg.Seed), uint64(iter)))))
		return oracle.Score(va, wear, rng)
	}

	best, err := evaluate(gains, 0)
	if err != nil {
		return nil, fmt.Errorf("attack: adaptive oracle: %w", err)
	}
	result := &AdaptiveResult{
		GainsDB:      gains,
		Trajectory:   make([]float64, 0, cfg.Iterations+1),
		InitialScore: best,
	}
	result.Trajectory = append(result.Trajectory, best)

	rng := rand.New(rand.NewSource(cfg.Seed))
	for iter := 1; iter <= cfg.Iterations; iter++ {
		band := rng.Intn(cfg.Bands)
		step := cfg.StepDB
		if rng.Intn(2) == 0 {
			step = -step
		}
		candidate := make([]float64, cfg.Bands)
		copy(candidate, gains)
		candidate[band] += step
		if candidate[band] < 0 {
			candidate[band] = 0
		}
		if candidate[band] > cfg.MaxBoostDB {
			candidate[band] = cfg.MaxBoostDB
		}
		score, err := evaluate(candidate, iter)
		if err != nil {
			return nil, fmt.Errorf("attack: adaptive oracle: %w", err)
		}
		if score > best {
			best = score
			copy(gains, candidate)
		}
		result.Trajectory = append(result.Trajectory, best)
	}
	result.BestScore = best
	result.Audio, err = render(gains)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return result, nil
}
