package attack

import (
	"math"
	"testing"

	"vibguard/internal/device"
	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Random: "random attack", Replay: "replay attack",
		Synthesis: "voice synthesis attack", HiddenVoice: "hidden voice attack",
		SolidChannel: "solid channel attack", BarrierBypass: "barrier bypass attack",
		Adaptive: "adaptive attack",
		Kind(0): "unknown",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if len(Kinds()) != 7 {
		t.Errorf("Kinds() returned %d attacks, want 7", len(Kinds()))
	}
	if len(PaperKinds()) != 4 {
		t.Errorf("PaperKinds() returned %d attacks, want 4", len(PaperKinds()))
	}
}

func TestRandomAttack(t *testing.T) {
	a := NewAttacker(1)
	adversary := phoneme.NewVoicePool(2, 9)[1]
	out, err := a.RandomAttack(adversary, phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(out) == 0 {
		t.Error("silent attack")
	}
	if _, err := a.RandomAttack(adversary, phoneme.Command{Text: "bad", Phonemes: []string{"zz"}}); err == nil {
		t.Error("bad command should error")
	}
}

func TestReplayAttack(t *testing.T) {
	a := NewAttacker(2)
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[1])
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.ReplayAttack(utt.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(utt.Samples) {
		t.Errorf("length changed: %d -> %d", len(utt.Samples), len(out))
	}
	// The replay chain (mic + loudspeaker) must color the signal: deep
	// lows are gone.
	specIn := dsp.PowerSpectrum(utt.Samples)
	specOut := dsp.PowerSpectrum(out)
	lowBin := dsp.FrequencyBin(60, len(out), 16000)
	if specOut[lowBin] > specIn[lowBin] {
		t.Error("replay chain did not attenuate deep lows")
	}
	if _, err := a.ReplayAttack(nil); err == nil {
		t.Error("empty utterance should error")
	}
}

func TestEstimateF0(t *testing.T) {
	for _, want := range []float64{90, 120, 200, 280} {
		x := dsp.Tone(want, 0.5, 1.0, 16000)
		// Add harmonics so it resembles voice.
		x = dsp.Mix(x, dsp.Tone(2*want, 0.25, 1.0, 16000), dsp.Tone(3*want, 0.12, 1.0, 16000))
		got, ok := EstimateF0(x, 16000)
		if !ok {
			t.Errorf("F0 %v: no estimate", want)
			continue
		}
		if math.Abs(got-want) > want*0.05 {
			t.Errorf("F0 estimate = %v, want %v", got, want)
		}
	}
	if _, ok := EstimateF0(make([]float64, 100), 16000); ok {
		t.Error("short signal should not estimate")
	}
	if _, ok := EstimateF0(make([]float64, 16000), 16000); ok {
		t.Error("silence should not estimate")
	}
}

func TestEstimateF0OnSynthesizedVoice(t *testing.T) {
	profile := phoneme.NewVoicePool(1, 3)[0]
	synth, err := phoneme.NewSynthesizer(profile)
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[3])
	if err != nil {
		t.Fatal(err)
	}
	got, ok := EstimateF0(utt.Samples, 16000)
	if !ok {
		t.Fatal("no F0 estimate from synthesized speech")
	}
	if math.Abs(got-profile.F0) > profile.F0*0.25 {
		t.Errorf("estimated F0 %v too far from true %v", got, profile.F0)
	}
}

func TestCloneVoiceTracksVictim(t *testing.T) {
	a := NewAttacker(3)
	for _, victim := range phoneme.NewVoicePool(4, 11) {
		synth, err := phoneme.NewSynthesizer(victim)
		if err != nil {
			t.Fatal(err)
		}
		var samples [][]float64
		for _, cmd := range phoneme.Commands()[:3] {
			utt, err := synth.Synthesize(cmd)
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, utt.Samples)
		}
		clone, err := a.CloneVoice(samples)
		if err != nil {
			t.Fatal(err)
		}
		if err := clone.Validate(); err != nil {
			t.Errorf("clone of %s invalid: %v", victim.Name, err)
		}
		if math.Abs(clone.F0-victim.F0) > victim.F0*0.3 {
			t.Errorf("clone F0 %v far from victim %s F0 %v", clone.F0, victim.Name, victim.F0)
		}
		if clone.Sex != victim.Sex {
			t.Errorf("clone sex %v != victim %s sex %v", clone.Sex, victim.Name, victim.Sex)
		}
	}
	if _, err := a.CloneVoice(nil); err == nil {
		t.Error("no samples should error")
	}
}

func TestSynthesisAttack(t *testing.T) {
	a := NewAttacker(4)
	victim := phoneme.NewVoicePool(1, 3)[0]
	synth, err := phoneme.NewSynthesizer(victim)
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.SynthesisAttack([][]float64{utt.Samples}, phoneme.Commands()[7])
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(out) == 0 {
		t.Error("silent synthesis attack")
	}
}

func TestHiddenVoiceAttackIsWideband(t *testing.T) {
	a := NewAttacker(5)
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	hidden, err := a.HiddenVoiceAttack(utt.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(hidden) != len(utt.Samples) {
		t.Errorf("length changed: %d -> %d", len(utt.Samples), len(hidden))
	}
	// Hidden commands occupy 0-6 kHz, much wider than clear speech
	// (Section VII-C/VII-D).
	clearBW := Bandwidth(utt.Samples, 16000, 0.95)
	hiddenBW := Bandwidth(hidden, 16000, 0.95)
	if hiddenBW < clearBW {
		t.Errorf("hidden bandwidth %v not wider than clear %v", hiddenBW, clearBW)
	}
	if hiddenBW < 2500 {
		t.Errorf("hidden bandwidth %v too narrow", hiddenBW)
	}
	// It must be temporally modulated like the command (shares envelope),
	// not steady noise: frame energies vary.
	var energies []float64
	for start := 0; start+1600 <= len(hidden); start += 1600 {
		energies = append(energies, dsp.Energy(hidden[start:start+1600]))
	}
	maxE, minE := energies[0], energies[0]
	for _, e := range energies {
		if e > maxE {
			maxE = e
		}
		if e < minE {
			minE = e
		}
	}
	if maxE < 3*minE {
		t.Error("hidden attack has no temporal modulation")
	}
	if _, err := a.HiddenVoiceAttack(nil); err == nil {
		t.Error("empty command should error")
	}
}

func TestBandwidth(t *testing.T) {
	low := dsp.Tone(200, 1, 0.5, 16000)
	if bw := Bandwidth(low, 16000, 0.95); bw > 400 {
		t.Errorf("pure 200Hz tone bandwidth = %v", bw)
	}
	if bw := Bandwidth(nil, 16000, 0.95); bw != 0 {
		t.Errorf("empty bandwidth = %v", bw)
	}
	if bw := Bandwidth(make([]float64, 100), 16000, 0.95); bw != 0 {
		t.Errorf("silent bandwidth = %v", bw)
	}
}

func TestAttackerLoudspeakerProfile(t *testing.T) {
	a := NewAttacker(6)
	if a.Loudspeaker.SampleRate != 16000 {
		t.Error("loudspeaker rate")
	}
	if err := a.Loudspeaker.Validate(); err != nil {
		t.Error(err)
	}
	_ = device.NewLoudspeaker // package linkage sanity
}
