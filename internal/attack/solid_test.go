package attack

import (
	"testing"

	"vibguard/internal/dsp"
)

func TestSolidChannelAttack(t *testing.T) {
	a := NewAttacker(8)
	cmd := testCommand(t)
	out, err := a.SolidChannelAttack(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(cmd) {
		t.Errorf("length changed: %d -> %d", len(cmd), len(out))
	}
	if dsp.RMS(out) == 0 {
		t.Error("silent solid-channel attack")
	}
	if _, err := a.SolidChannelAttack(nil); err == nil {
		t.Error("empty command should error")
	}
}

func TestContactTransducerProfile(t *testing.T) {
	tr := NewContactTransducer(16000)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	normal := NewAttacker(9).Loudspeaker
	if tr.LowCutHz >= normal.LowCutHz {
		t.Errorf("contact transducer low cut %v should be below a loudspeaker's %v", tr.LowCutHz, normal.LowCutHz)
	}
	if tr.Distortion <= normal.Distortion {
		t.Errorf("contact transducer distortion %v should exceed a loudspeaker's %v", tr.Distortion, normal.Distortion)
	}
}
