package attack

import (
	"fmt"

	"vibguard/internal/device"
)

// NewContactTransducer returns the profile of a surface/contact exciter
// (the SUAD injection device): clamped to the structure it drives well
// below a normal loudspeaker's low cut, at the cost of more driver
// distortion.
func NewContactTransducer(sampleRate float64) device.Loudspeaker {
	return device.Loudspeaker{
		SampleRate: sampleRate,
		LowCutHz:   40,
		HighCutHz:  6000,
		Distortion: 0.08,
		Gain:       1.0,
	}
}

// SolidChannelAttack renders the command through a contact transducer
// clamped to the structure the victim devices sit on (the SUAD attack).
// The returned waveform is the mechanical drive at the injection point;
// acoustics.Room.TransmitSolid then carries it along the structure to each
// receiver. Because the solid path sidesteps the barrier entirely — and
// the structure's modal ridges pass part of the high band — the
// cross-domain correlation the defense keys on is only partially
// destroyed, making this the hard case of the extended threat model.
func (a *Attacker) SolidChannelAttack(commandAudio []float64) ([]float64, error) {
	if len(commandAudio) == 0 {
		return nil, fmt.Errorf("attack: empty command audio")
	}
	transducer := NewContactTransducer(a.Loudspeaker.SampleRate)
	out, err := transducer.Render(commandAudio)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return out, nil
}
