package attack

import (
	"errors"
	"math"
	"testing"

	"vibguard/internal/acoustics"
	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
)

const testRate = 16000.0

// noiselessEstimate measures a barrier with the deterministic probe, as
// the corpus builder does.
func noiselessEstimate(t *testing.T, b acoustics.Barrier) *GainEstimate {
	t.Helper()
	probe := ProbeSignal(testRate)
	est, err := EstimateBarrierGain(probe, b.Apply(probe, testRate), testRate, 24)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func testCommand(t *testing.T) []float64 {
	t.Helper()
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	return utt.Samples
}

// profileBands are the coarse speech bands the flatness property compares.
var profileBands = []struct{ lo, hi float64 }{
	{150, 500}, {500, 1500}, {1500, 3000}, {3000, 5000},
}

// bandProfileDB returns the signal's per-band energy in dB, normalized to
// the first band, so only the spectral *shape* is compared.
func bandProfileDB(x []float64) []float64 {
	spec := dsp.PowerSpectrum(x)
	energies := make([]float64, len(profileBands))
	for k := 1; k < len(spec); k++ {
		f := dsp.BinFrequency(k, len(x), testRate)
		for b, band := range profileBands {
			if f >= band.lo && f < band.hi {
				energies[b] += spec[k]
			}
		}
	}
	out := make([]float64, len(energies))
	for b, e := range energies {
		out[b] = 10 * math.Log10(e/energies[0])
	}
	return out
}

// TestEstimateBarrierGainTracksTruth checks the estimator against the
// analytic transmission curve for every preset barrier: in bands the
// clamp does not flatten, the estimate stays within a few dB of truth.
func TestEstimateBarrierGainTracksTruth(t *testing.T) {
	for _, b := range []acoustics.Barrier{acoustics.GlassWindow, acoustics.WoodenDoor, acoustics.GlassWall, acoustics.BrickWall} {
		est := noiselessEstimate(t, b)
		for i, f := range est.Freqs {
			truth := b.Gain(f)
			if truth < minEstimatedGain*2 || truth > maxEstimatedGain/2 {
				continue // clamp region: the estimate saturates by design
			}
			gotDB := dsp.AmplitudeToDB(est.Gains[i])
			wantDB := dsp.AmplitudeToDB(truth)
			if math.Abs(gotDB-wantDB) > 4 {
				t.Errorf("%s: estimated gain at %.0f Hz = %.1f dB, true %.1f dB", b.Name, f, gotDB, wantDB)
			}
		}
	}
}

// TestPreEqualizeFlattensFeasibleBarriers is the bypass property: for each
// preset barrier, the pre-equalized command after Barrier.Apply has a
// spectral shape within tolerance of the clean command in every band the
// amplitude budget can reach. Glass and wood are fully feasible under the
// default 40 dB budget; the brick wall is infeasible in every band, and
// the post-barrier spectrum must stay far from flat — the physical reason
// the defense holds against bypass through brick.
func TestPreEqualizeFlattensFeasibleBarriers(t *testing.T) {
	cmd := testCommand(t)
	cleanProfile := bandProfileDB(cmd)
	cfg := DefaultBypassConfig(testRate)
	for _, b := range []acoustics.Barrier{acoustics.GlassWindow, acoustics.WoodenDoor, acoustics.GlassWall, acoustics.BrickWall} {
		est := noiselessEstimate(t, b)
		eq, err := PreEqualize(cmd, est, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if peak := dsp.MaxAbs(eq); peak > cfg.CeilingPeak+1e-12 {
			t.Errorf("%s: pre-equalized peak %v exceeds ceiling %v", b.Name, peak, cfg.CeilingPeak)
		}
		behind := b.Apply(eq, testRate)
		profile := bandProfileDB(behind)

		// A band is feasible when the budget covers the required boost
		// across the whole band (sampled at its edges and center).
		feasible := func(lo, hi float64) bool {
			for _, f := range []float64{lo, math.Sqrt(lo * hi), hi} {
				if -dsp.AmplitudeToDB(est.Gain(f)) > cfg.MaxBoostDB {
					return false
				}
			}
			return true
		}
		anyFeasible := false
		for i, band := range profileBands {
			if !feasible(band.lo, band.hi) {
				continue
			}
			anyFeasible = true
			if diff := math.Abs(profile[i] - cleanProfile[i]); diff > 6 {
				t.Errorf("%s: band %.0f-%.0f Hz off by %.1f dB after bypass (clean %.1f, got %.1f)",
					b.Name, band.lo, band.hi, diff, cleanProfile[i], profile[i])
			}
		}
		if b.Name == acoustics.BrickWall.Name {
			if anyFeasible {
				t.Error("brick wall should have no feasible band under a 40 dB budget")
			}
			// The un-equalizable tilt must survive: high band still far
			// below the clean shape.
			last := len(profileBands) - 1
			if cleanProfile[last]-profile[last] < 15 {
				t.Errorf("brick wall post-bypass high band only %.1f dB below clean shape; bypass should fail",
					cleanProfile[last]-profile[last])
			}
		} else if !anyFeasible {
			t.Errorf("%s: expected feasible bands under a 40 dB budget", b.Name)
		}
	}
}

// TestPreEqualizeRespectsTinyCeiling exercises the rescale path: a ceiling
// below the command's own peak must still be respected.
func TestPreEqualizeRespectsTinyCeiling(t *testing.T) {
	cmd := testCommand(t)
	est := noiselessEstimate(t, acoustics.GlassWindow)
	cfg := DefaultBypassConfig(testRate)
	cfg.CeilingPeak = 0.01
	eq, err := PreEqualize(cmd, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if peak := dsp.MaxAbs(eq); peak > cfg.CeilingPeak+1e-12 {
		t.Errorf("peak %v exceeds tiny ceiling %v", peak, cfg.CeilingPeak)
	}
}

func TestEstimateBarrierGainErrors(t *testing.T) {
	probe := ProbeSignal(testRate)
	if _, err := EstimateBarrierGain(probe[:100], probe[:100], testRate, 24); !errors.Is(err, ErrBadProbe) {
		t.Errorf("short probe: err = %v, want ErrBadProbe", err)
	}
	silent := make([]float64, 4096)
	if _, err := EstimateBarrierGain(silent, silent, testRate, 24); !errors.Is(err, ErrBadProbe) {
		t.Errorf("silent probe: err = %v, want ErrBadProbe", err)
	}
	if _, err := EstimateBarrierGain(probe, probe, 0, 24); err == nil {
		t.Error("zero sample rate should error")
	}
	if _, err := EstimateBarrierGain(probe, probe, testRate, 1); err == nil {
		t.Error("single band should error")
	}
}

func TestGainEstimateInterpolation(t *testing.T) {
	est := &GainEstimate{Freqs: []float64{100, 1000}, Gains: []float64{1, 0.1}}
	if g := est.Gain(50); g != 1 {
		t.Errorf("below range: %v", g)
	}
	if g := est.Gain(5000); g != 0.1 {
		t.Errorf("above range: %v", g)
	}
	if g := est.Gain(550); g <= 0.1 || g >= 1 {
		t.Errorf("interpolated gain %v outside (0.1, 1)", g)
	}
	if g := est.Gain(math.NaN()); g != 1 {
		t.Errorf("NaN frequency: %v", g)
	}
	empty := &GainEstimate{}
	if g := empty.Gain(100); g != 1 {
		t.Errorf("empty estimate: %v", g)
	}
}

func TestBarrierBypassAttackRenders(t *testing.T) {
	a := NewAttacker(7)
	cmd := testCommand(t)
	est := noiselessEstimate(t, acoustics.GlassWindow)
	out, err := a.BarrierBypassAttack(cmd, est, DefaultBypassConfig(testRate))
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(out) == 0 {
		t.Error("silent bypass attack")
	}
	if _, err := a.BarrierBypassAttack(nil, est, DefaultBypassConfig(testRate)); err == nil {
		t.Error("empty command should error")
	}
	if _, err := a.BarrierBypassAttack(cmd, nil, DefaultBypassConfig(testRate)); err == nil {
		t.Error("nil estimate should error")
	}
}
