// Package attack implements the thru-barrier attack types of the paper's
// threat model (Section II) — random attacks (another speaker's voice),
// replay attacks (recorded victim audio through a loudspeaker), voice
// synthesis attacks (a parametric voice clone trained on victim samples),
// and hidden voice attacks (obfuscated noise-like commands that remain
// machine-recognizable) — plus the adaptive-adversary corpus that followed
// the paper: solid-channel injection through the structure the devices sit
// on (SUAD), barrier-bypass pre-equalization that cancels the barrier's
// frequency-selective attenuation (BarrierBypass), and a seeded
// optimization loop that tunes loudspeaker EQ against the defense's own
// correlation score (VRifle-style adaptive attack).
//
// Every attack produces the waveform the adversary's playback device
// emits; the acoustics package then carries it through the barrier (or the
// solid structure) into the room.
package attack

import (
	"fmt"

	"math/rand"

	"vibguard/internal/device"
	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
)

// Kind identifies an attack type.
type Kind int

// Attack kinds: the four of Section II in paper order, then the
// adaptive-adversary extensions in publication order. kindCount is a
// sentinel pinning the exhaustiveness tests: adding a kind without
// updating String, Kinds, and the eval corpus builder fails a test
// instead of silently shrinking coverage.
const (
	Random Kind = iota + 1
	Replay
	Synthesis
	HiddenVoice
	// SolidChannel is the SUAD-style attack: the command is injected
	// through the solid structure the devices sit on, a propagation path
	// the air/barrier model never sees.
	SolidChannel
	// BarrierBypass pre-equalizes the command to cancel the barrier's
	// frequency-selective attenuation, so the post-barrier signal is
	// near-flat — a direct counter to the defense's core mechanism.
	BarrierBypass
	// Adaptive hill-climbs loudspeaker EQ parameters against the
	// defense's own correlation score (the VRifle-style IR-robust
	// training loop), using estimated barrier responses.
	Adaptive

	kindCount
)

// String names the attack as in the paper (and the follow-up literature
// for the extension kinds).
func (k Kind) String() string {
	switch k {
	case Random:
		return "random attack"
	case Replay:
		return "replay attack"
	case Synthesis:
		return "voice synthesis attack"
	case HiddenVoice:
		return "hidden voice attack"
	case SolidChannel:
		return "solid channel attack"
	case BarrierBypass:
		return "barrier bypass attack"
	case Adaptive:
		return "adaptive attack"
	default:
		return "unknown"
	}
}

// Kinds returns every attack kind: the paper's four, then the
// adaptive-adversary extensions. The golden EER/AUC regression and the
// eval corpus builder iterate this list, so a kind added here is
// automatically part of every future regression run.
func Kinds() []Kind {
	kinds := make([]Kind, 0, kindCount-1)
	for k := Random; k < kindCount; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// PaperKinds returns only the four attack kinds of the paper's threat
// model (Section II), the set every figure reproduction sweeps.
func PaperKinds() []Kind { return []Kind{Random, Replay, Synthesis, HiddenVoice} }

// Attacker generates attack waveforms against a victim.
type Attacker struct {
	// Loudspeaker is the playback device (Razer Sound Bar RC30 in the
	// paper's experiments).
	Loudspeaker device.Loudspeaker
	rng         *rand.Rand
}

// NewAttacker creates an attacker with the standard loudspeaker.
func NewAttacker(seed int64) *Attacker {
	return &Attacker{
		Loudspeaker: device.NewLoudspeaker(16000),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// RandomAttack speaks the command with the adversary's own voice: a voice
// profile different from the victim's.
func (a *Attacker) RandomAttack(adversary phoneme.VoiceProfile, cmd phoneme.Command) ([]float64, error) {
	synth, err := phoneme.NewSynthesizer(adversary)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	out, err := a.Loudspeaker.Render(utt.Samples)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return out, nil
}

// ReplayAttack replays a recording of the victim's own voice through the
// attacker's loudspeaker. The recording is assumed to have been captured
// previously (e.g., from public speech), so it carries a microphone's
// band-limit and noise before the loudspeaker's coloration.
func (a *Attacker) ReplayAttack(victimUtterance []float64) ([]float64, error) {
	if len(victimUtterance) == 0 {
		return nil, fmt.Errorf("attack: empty victim utterance")
	}
	mic := device.NewMicrophone(16000)
	recorded, err := mic.Record(victimUtterance, a.rng)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	out, err := a.Loudspeaker.Render(recorded)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return out, nil
}

// CloneVoice estimates a victim's voice profile from sample utterances, as
// a stand-in for the transfer-learning synthesis model of [11]: it
// estimates F0 by autocorrelation and reuses plausible defaults for the
// remaining parameters, with small estimation errors.
func (a *Attacker) CloneVoice(victimSamples [][]float64) (phoneme.VoiceProfile, error) {
	if len(victimSamples) == 0 {
		return phoneme.VoiceProfile{}, fmt.Errorf("attack: no victim samples")
	}
	var f0Sum float64
	var f0Count int
	for _, s := range victimSamples {
		if f0, ok := EstimateF0(s, 16000); ok {
			f0Sum += f0
			f0Count++
		}
	}
	if f0Count == 0 {
		return phoneme.VoiceProfile{}, fmt.Errorf("attack: could not estimate F0 from victim samples")
	}
	f0 := f0Sum / float64(f0Count)
	sex := phoneme.Male
	formantScale := 0.98
	if f0 > 160 {
		sex = phoneme.Female
		formantScale = 1.14
	}
	// Estimation error: the clone is close but not identical.
	clone := phoneme.VoiceProfile{
		Name:         "clone",
		Sex:          sex,
		F0:           f0 * (1 + 0.03*a.rng.NormFloat64()),
		FormantScale: formantScale * (1 + 0.02*a.rng.NormFloat64()),
		Loudness:     1.0,
		Jitter:       0.02,
		Seed:         a.rng.Int63(),
	}
	if clone.F0 < 60 {
		clone.F0 = 60
	}
	if clone.F0 > 400 {
		clone.F0 = 400
	}
	return clone, nil
}

// SynthesisAttack clones the victim's voice from samples and synthesizes
// the target command with the cloned profile.
func (a *Attacker) SynthesisAttack(victimSamples [][]float64, cmd phoneme.Command) ([]float64, error) {
	clone, err := a.CloneVoice(victimSamples)
	if err != nil {
		return nil, err
	}
	synth, err := phoneme.NewSynthesizer(clone)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	out, err := a.Loudspeaker.Render(utt.Samples)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return out, nil
}

// HiddenVoiceAttack obfuscates a command into a noise-like signal that
// preserves the band-energy envelope a speech recognizer keys on but is
// unintelligible to humans [3]. It vocodes the command with a noise
// carrier across 0-6 kHz subbands, so the result occupies a wider
// frequency range than clear speech — which, as Section VII-C notes, makes
// the barrier's frequency selectivity even more visible.
func (a *Attacker) HiddenVoiceAttack(commandAudio []float64) ([]float64, error) {
	if len(commandAudio) == 0 {
		return nil, fmt.Errorf("attack: empty command audio")
	}
	const sampleRate = 16000.0
	bands := []struct{ lo, hi float64 }{
		{100, 500}, {500, 1000}, {1000, 2000}, {2000, 3000}, {3000, 4500}, {4500, 6000},
	}
	out := make([]float64, len(commandAudio))
	const frame = 160 // 10 ms envelope resolution
	for _, band := range bands {
		center := (band.lo + band.hi) / 2
		q := center / (band.hi - band.lo)
		bp, err := dsp.NewBandPass(center, sampleRate, q)
		if err != nil {
			return nil, fmt.Errorf("attack: %w", err)
		}
		sub := bp.Process(commandAudio)
		// Noise carrier in the same band.
		noise := make([]float64, len(commandAudio))
		for i := range noise {
			noise[i] = a.rng.NormFloat64()
		}
		bp2, err := dsp.NewBandPass(center, sampleRate, q)
		if err != nil {
			return nil, fmt.Errorf("attack: %w", err)
		}
		carrier := bp2.Process(noise)
		carrierRMS := dsp.RMS(carrier)
		if carrierRMS == 0 {
			continue
		}
		// Modulate the carrier with the subband envelope.
		for start := 0; start < len(sub); start += frame {
			end := start + frame
			if end > len(sub) {
				end = len(sub)
			}
			env := dsp.RMS(sub[start:end])
			g := env / carrierRMS
			for i := start; i < end; i++ {
				out[i] += carrier[i] * g
			}
		}
	}
	rendered, err := a.Loudspeaker.Render(out)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return rendered, nil
}

// EstimateF0 estimates the fundamental frequency of a voiced signal by
// normalized autocorrelation over the plausible speech range (60-400 Hz).
// It returns false when no clear periodicity exists.
func EstimateF0(x []float64, sampleRate float64) (float64, bool) {
	if len(x) < int(sampleRate/60)*3 {
		return 0, false
	}
	// Use a strongly voiced window: the highest-energy 4096 samples.
	window := 4096
	if window > len(x) {
		window = len(x)
	}
	bestStart, bestEnergy := 0, -1.0
	for start := 0; start+window <= len(x); start += window / 2 {
		e := dsp.Energy(x[start : start+window])
		if e > bestEnergy {
			bestEnergy, bestStart = e, start
		}
	}
	seg := x[bestStart : bestStart+window]
	minLag := int(sampleRate / 400)
	maxLag := int(sampleRate / 60)
	if maxLag >= len(seg)/2 {
		maxLag = len(seg)/2 - 1
	}
	energy := dsp.Energy(seg)
	if energy == 0 {
		return 0, false
	}
	bestLag, bestCorr := 0, 0.0
	for lag := minLag; lag <= maxLag; lag++ {
		sum := 0.0
		for i := 0; i+lag < len(seg); i++ {
			sum += seg[i] * seg[i+lag]
		}
		norm := sum / energy
		if norm > bestCorr {
			bestCorr, bestLag = norm, lag
		}
	}
	if bestLag == 0 || bestCorr < 0.2 {
		return 0, false
	}
	return sampleRate / float64(bestLag), true
}

// Bandwidth returns the frequency below which the given fraction of the
// signal's spectral energy lies, a measure of how wide-band an attack
// sound is (hidden voice commands span ~0-6 kHz).
func Bandwidth(x []float64, sampleRate, fraction float64) float64 {
	if len(x) == 0 {
		return 0
	}
	spec := dsp.PowerSpectrum(x)
	total := 0.0
	for _, v := range spec[1:] {
		total += v
	}
	if total == 0 {
		return 0
	}
	cum := 0.0
	for k := 1; k < len(spec); k++ {
		cum += spec[k]
		if cum >= fraction*total {
			return dsp.BinFrequency(k, len(x), sampleRate)
		}
	}
	return sampleRate / 2
}
