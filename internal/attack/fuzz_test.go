package attack

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzBytesToSamples reinterprets fuzz bytes as float64 samples, capped so
// a large input cannot stall the FFT.
func fuzzBytesToSamples(b []byte, maxSamples int) []float64 {
	n := len(b) / 8
	if n > maxSamples {
		n = maxSamples
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// FuzzEstimateBarrierGain fuzzes the barrier-response estimator with
// corrupt probe pairs: arbitrary bit patterns (NaN, Inf, denormals),
// short, silent, or mismatched-length inputs. The estimator must never
// panic, and whenever it returns an estimate every gain — and every
// interpolated Gain(f) lookup, including non-finite frequencies — must be
// finite and inside the clamp range.
func FuzzEstimateBarrierGain(f *testing.F) {
	probe := ProbeSignal(16000)[:2048]
	probeBytes := make([]byte, len(probe)*8)
	for i, v := range probe {
		binary.LittleEndian.PutUint64(probeBytes[i*8:], math.Float64bits(v))
	}
	attenuated := make([]byte, len(probeBytes))
	for i := 0; i < len(probe); i++ {
		binary.LittleEndian.PutUint64(attenuated[i*8:], math.Float64bits(probe[i]*0.01))
	}
	nanBytes := make([]byte, 8192)
	for i := 0; i+8 <= len(nanBytes); i += 8 {
		binary.LittleEndian.PutUint64(nanBytes[i:], math.Float64bits(math.NaN()))
	}
	f.Add(probeBytes, attenuated, 24, 16000.0)
	f.Add(probeBytes, nanBytes, 8, 16000.0)
	f.Add(nanBytes, nanBytes, 4, 8000.0)
	f.Add([]byte{}, []byte{}, 24, 16000.0)
	f.Add(probeBytes[:1024], probeBytes[:1024], 2, 100.0)
	f.Add(probeBytes, probeBytes, 1000, math.Inf(1))
	f.Add(probeBytes, attenuated, -3, math.NaN())

	f.Fuzz(func(t *testing.T, probeB, recvB []byte, bands int, rate float64) {
		const maxSamples = 1 << 15
		p := fuzzBytesToSamples(probeB, maxSamples)
		r := fuzzBytesToSamples(recvB, maxSamples)
		est, err := EstimateBarrierGain(p, r, rate, bands)
		if err != nil {
			if est != nil {
				t.Fatal("non-nil estimate alongside error")
			}
			return
		}
		if len(est.Freqs) != len(est.Gains) || len(est.Gains) == 0 {
			t.Fatalf("malformed estimate: %d freqs, %d gains", len(est.Freqs), len(est.Gains))
		}
		prev := 0.0
		for i, g := range est.Gains {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				t.Fatalf("non-finite gain %v at band %d", g, i)
			}
			if g < minEstimatedGain || g > maxEstimatedGain {
				t.Fatalf("gain %v at band %d outside clamp range", g, i)
			}
			if math.IsNaN(est.Freqs[i]) || est.Freqs[i] <= prev {
				t.Fatalf("band centers not ascending at %d: %v after %v", i, est.Freqs[i], prev)
			}
			prev = est.Freqs[i]
		}
		for _, q := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -500, 0, 85, 1000, 1e12} {
			g := est.Gain(q)
			if math.IsNaN(g) || math.IsInf(g, 0) || g <= 0 {
				t.Fatalf("Gain(%v) = %v not finite positive", q, g)
			}
		}
	})
}
