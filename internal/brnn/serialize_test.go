package brnn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
)

// encodeSerializable gob-encodes a raw serializable, bypassing
// MarshalBinary, so tests can craft corrupt blobs.
func encodeSerializable(t *testing.T, s *serializable) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validSerializable returns a structurally correct blob payload for a
// small architecture.
func validSerializable(t *testing.T) *serializable {
	t.Helper()
	m, err := New(Config{InputDim: 3, HiddenDim: 4, NumClasses: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var s serializable
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return &s
}

// TestUnmarshalRejectsCorruptSlices is the corrupt/truncated-blob table:
// every weight slice is tried short, long, and nil; each must fail with a
// DimError naming the field instead of copying partially over random init.
func TestUnmarshalRejectsCorruptSlices(t *testing.T) {
	fields := []struct {
		name   string
		mutate func(*serializable, []float64)
	}{
		{"FwdWx", func(s *serializable, v []float64) { s.FwdWx = v }},
		{"FwdWh", func(s *serializable, v []float64) { s.FwdWh = v }},
		{"FwdB", func(s *serializable, v []float64) { s.FwdB = v }},
		{"BwdWx", func(s *serializable, v []float64) { s.BwdWx = v }},
		{"BwdWh", func(s *serializable, v []float64) { s.BwdWh = v }},
		{"BwdB", func(s *serializable, v []float64) { s.BwdB = v }},
		{"Dense", func(s *serializable, v []float64) { s.Dense = v }},
		{"DenseBias", func(s *serializable, v []float64) { s.DenseBias = v }},
	}
	corruptions := []struct {
		name string
		make func(orig []float64) []float64
	}{
		{"truncated", func(orig []float64) []float64 { return orig[:len(orig)-1] }},
		{"oversized", func(orig []float64) []float64 { return append(append([]float64(nil), orig...), 0) }},
		{"nil", func([]float64) []float64 { return nil }},
	}
	for _, f := range fields {
		for _, c := range corruptions {
			t.Run(f.name+"/"+c.name, func(t *testing.T) {
				s := validSerializable(t)
				var orig []float64
				switch f.name {
				case "FwdWx":
					orig = s.FwdWx
				case "FwdWh":
					orig = s.FwdWh
				case "FwdB":
					orig = s.FwdB
				case "BwdWx":
					orig = s.BwdWx
				case "BwdWh":
					orig = s.BwdWh
				case "BwdB":
					orig = s.BwdB
				case "Dense":
					orig = s.Dense
				case "DenseBias":
					orig = s.DenseBias
				}
				f.mutate(s, c.make(orig))
				var m Model
				err := m.UnmarshalBinary(encodeSerializable(t, s))
				if err == nil {
					t.Fatalf("%s %s blob decoded without error", c.name, f.name)
				}
				var dimErr *DimError
				if !errors.As(err, &dimErr) {
					t.Fatalf("error %v is not a DimError", err)
				}
				if dimErr.Field != f.name {
					t.Errorf("DimError names %q, want %q", dimErr.Field, f.name)
				}
			})
		}
	}
}

// TestUnmarshalRejectsBadArchitecture covers blobs whose dims themselves
// are invalid (the architecture validation path, before slice checks).
func TestUnmarshalRejectsBadArchitecture(t *testing.T) {
	for _, mutate := range []func(*serializable){
		func(s *serializable) { s.InputDim = 0 },
		func(s *serializable) { s.HiddenDim = -4 },
		func(s *serializable) { s.NumClasses = 1 },
	} {
		s := validSerializable(t)
		mutate(s)
		var m Model
		if err := m.UnmarshalBinary(encodeSerializable(t, s)); err == nil {
			t.Error("invalid architecture should error")
		}
	}
}

// TestUnmarshalErrorLeavesModelUsable verifies a failed restore does not
// clobber the receiver.
func TestUnmarshalErrorLeavesModelUsable(t *testing.T) {
	m, err := New(Config{InputDim: 3, HiddenDim: 4, NumClasses: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	inputs := randomSeq(4, 3, 2, 6).Inputs
	want, err := m.Forward(inputs)
	if err != nil {
		t.Fatal(err)
	}
	s := validSerializable(t)
	s.FwdWx = s.FwdWx[:3]
	if err := m.UnmarshalBinary(encodeSerializable(t, s)); err == nil {
		t.Fatal("corrupt blob should error")
	}
	got, err := m.Forward(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for f := range want {
		for k := range want[f] {
			if want[f][k] != got[f][k] {
				t.Fatal("failed UnmarshalBinary mutated the receiver")
			}
		}
	}
}
