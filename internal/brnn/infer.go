package brnn

import (
	"fmt"
	"math"
)

// Inference is a reusable inference session for one Model: it owns every
// scratch buffer the batched forward pass needs, so steady-state inference
// allocates nothing. The model weights are read-only and may be shared by
// any number of sessions; one Inference must only be used by one goroutine
// at a time (pool sessions across workers — see segment.Detector — rather
// than locking one).
//
// Compared to the per-frame reference path (Model.Forward), the session
// computes the input projections Wx·x_t of all timesteps of all sequences
// in one pass per direction over SIMD-packed weights (see packNT), keeps
// the recurrent step allocation-free with hoisted gate/cell buffers, and
// batches the recurrent projection Wh·h_{t-1} across the sequences of a
// ForwardBatch call so the weight matrices are traversed once per timestep
// instead of once per sequence per timestep. Every accumulation runs in
// the same order as the reference kernels, so the results are bit-exact —
// TestInferenceMatchesReference pins this the way dspbench pins the
// legacy FFT.
type Inference struct {
	m *Model

	// Weight matrices packed for the SIMD kernel (see packNT): Wx and Wh
	// per direction plus the dense head. Read-only after NewInference.
	pfx, pbx packedNT
	pfh, pbh packedNT
	pd       packedNT

	// Packed inputs in ragged time-major order (forward and time-reversed),
	// and their input projections X·Wxᵀ per direction.
	xf, xr []float64 // N x D
	zf, zb []float64 // N x 4H
	// Hidden states per direction in the same ragged time-major layout:
	// the rows of timestep t are the active sequences, longest first, so
	// the previous step's hidden block is contiguous for the batched
	// recurrent projection.
	hf, hb []float64 // N x H
	// Per-step recurrence scratch (B = batch size).
	zh    []float64 // B x 4H recurrent pre-activations
	cells []float64 // B x H cell states, overwritten in place per step
	// Dense head scratch: combined hidden states in sequence-major output
	// order, then logits+bias and probabilities per frame.
	comb  []float64   // N x H
	probs []float64   // N x C
	prows [][]float64 // row headers into probs
	out   [][][]float64

	// Batch bookkeeping: sequence order sorted by length descending
	// (stable), per-step ragged row offsets, per-sequence output bases.
	order []int
	off   []int
	base  []int
}

// NewInference creates an inference session bound to the model, packing
// the weight matrices into the SIMD kernel's interleaved layout (a
// snapshot: create sessions after training, not between training steps).
// The per-call scratch grows lazily.
func (m *Model) NewInference() *Inference {
	D, H := m.inputDim, m.hiddenDim
	return &Inference{
		m:   m,
		pfx: packNT(m.fwd.wx.Data, D, 4*H),
		pbx: packNT(m.bwd.wx.Data, D, 4*H),
		pfh: packNT(m.fwd.wh.Data, H, 4*H),
		pbh: packNT(m.bwd.wh.Data, H, 4*H),
		pd:  packNT(m.dense.Data, H, m.numClasses),
	}
}

// Model returns the model the session is bound to.
func (inf *Inference) Model() *Model { return inf.m }

// growF ensures a float64 scratch slice has length n.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growI ensures an int scratch slice has length n.
func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Forward computes per-frame class probabilities for one sequence on the
// batched kernels. The returned rows point into the session's scratch:
// they are valid until the next call on this session. Results are
// bit-identical to Model.Forward.
func (inf *Inference) Forward(inputs [][]float64) ([][]float64, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	out, err := inf.ForwardBatch([][][]float64{inputs})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Predict returns the argmax class per frame, appending into dst (pass a
// reused slice for allocation-free steady state). Results are
// bit-identical to Model.Predict.
func (inf *Inference) Predict(inputs [][]float64, dst []int) ([]int, error) {
	probs, err := inf.Forward(inputs)
	if err != nil {
		return nil, err
	}
	dst = dst[:0]
	for _, p := range probs {
		best := 0
		for k, v := range p {
			if v > p[best] {
				best = k
			}
		}
		dst = append(dst, best)
	}
	return dst, nil
}

// ForwardBatch computes per-frame class probabilities for several
// sequences at once. The input projections of every frame of every
// sequence go through one blocked pass per direction, and the recurrent
// projections are batched across sequences per timestep, so concurrent
// sessions handed to one session amortize the weight traversal. Sequences
// may have different lengths (including zero, which yields a nil entry,
// matching Model.Forward on an empty sequence). The returned slices point
// into the session's scratch and are valid until the next call. Each
// sequence's result is bit-identical to Model.Forward on that sequence.
func (inf *Inference) ForwardBatch(seqs [][][]float64) ([][][]float64, error) {
	m := inf.m
	B := len(seqs)
	if B == 0 {
		return nil, nil
	}
	D, H, C := m.inputDim, m.hiddenDim, m.numClasses

	// Order sequences by length descending (stable insertion sort on
	// scratch): the active set of any timestep is then a prefix, which
	// keeps the previous hidden block contiguous as short sequences
	// drop out.
	inf.order = growI(inf.order, B)
	order := inf.order
	for i := range order {
		order[i] = i
	}
	for i := 1; i < B; i++ {
		for j := i; j > 0 && len(seqs[order[j]]) > len(seqs[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	maxT := len(seqs[order[0]])
	if maxT == 0 {
		inf.out = inf.out[:0]
		for range seqs {
			inf.out = append(inf.out, nil)
		}
		return inf.out, nil
	}

	// Ragged time-major offsets: off[t] is the packed row index of the
	// first active sequence at timestep t; active counts are recovered as
	// off[t+1]-off[t]. base[b] is sequence b's first row in the
	// sequence-major output layout.
	inf.off = growI(inf.off, maxT+1)
	off := inf.off
	inf.base = growI(inf.base, B+1)
	base := inf.base
	N := 0
	base[0] = 0
	for i := 0; i < B; i++ {
		N += len(seqs[i])
		base[i+1] = base[i] + len(seqs[i])
	}
	off[0] = 0
	active := B
	for t := 0; t < maxT; t++ {
		for active > 0 && len(seqs[order[active-1]]) <= t {
			active--
		}
		off[t+1] = off[t] + active
	}

	// Pack the inputs: xf in time order, xr time-reversed, both ragged
	// time-major. Dimension validation happens here, once per frame.
	inf.xf = growF(inf.xf, N*D)
	inf.xr = growF(inf.xr, N*D)
	for t := 0; t < maxT; t++ {
		act := off[t+1] - off[t]
		for pos := 0; pos < act; pos++ {
			b := order[pos]
			seq := seqs[b]
			in := seq[t]
			if len(in) != D {
				return nil, fmt.Errorf("brnn: seq %d input %d has dim %d, want %d", b, t, len(in), D)
			}
			copy(inf.xf[(off[t]+pos)*D:], in)
			copy(inf.xr[(off[t]+pos)*D:], seq[len(seq)-1-t])
		}
	}

	// Input projections for all frames of all sequences: one blocked pass
	// per direction.
	inf.zf = growF(inf.zf, N*4*H)
	inf.zb = growF(inf.zb, N*4*H)
	inf.pfx.apply(inf.zf, inf.xf, N)
	inf.pbx.apply(inf.zb, inf.xr, N)

	// Recurrences. The backward direction runs on the reversed packing
	// with the same ragged layout, so one routine serves both.
	inf.zh = growF(inf.zh, B*4*H)
	inf.cells = growF(inf.cells, B*H)
	inf.hf = growF(inf.hf, N*H)
	inf.hb = growF(inf.hb, N*H)
	inf.recur(m.fwd, &inf.pfh, inf.zf, inf.hf, off, maxT)
	inf.recur(m.bwd, &inf.pbh, inf.zb, inf.hb, off, maxT)

	// Combine the directions per frame into sequence-major order: sequence
	// b sits at a fixed position pos in every timestep it is active for,
	// so its forward row at time t is off[t]+pos and its backward row is
	// off[T-1-t]+pos.
	inf.comb = growF(inf.comb, N*H)
	for pos, b := range order {
		T := len(seqs[b])
		for t := 0; t < T; t++ {
			hfRow := inf.hf[(off[t]+pos)*H : (off[t]+pos)*H+H]
			hbRow := inf.hb[(off[T-1-t]+pos)*H : (off[T-1-t]+pos)*H+H]
			dst := inf.comb[(base[b]+t)*H : (base[b]+t)*H+H]
			for j := 0; j < H; j++ {
				dst[j] = hfRow[j] + hbRow[j]
			}
		}
	}

	// Dense head over every frame in one blocked pass, then the softmax of
	// the reference path, expression for expression.
	inf.probs = growF(inf.probs, N*C)
	inf.pd.apply(inf.probs, inf.comb, N)
	if cap(inf.prows) < N {
		inf.prows = make([][]float64, N)
	}
	inf.prows = inf.prows[:N]
	bias := m.denseBias
	for i := 0; i < N; i++ {
		p := inf.probs[i*C : i*C+C]
		maxL := math.Inf(-1)
		for k, v := range p {
			if v+bias[k] > maxL {
				maxL = v + bias[k]
			}
		}
		sum := 0.0
		for k, v := range p {
			p[k] = math.Exp(v + bias[k] - maxL)
			sum += p[k]
		}
		for k := range p {
			p[k] /= sum
		}
		inf.prows[i] = p
	}

	inf.out = inf.out[:0]
	for b := range seqs {
		if len(seqs[b]) == 0 {
			inf.out = append(inf.out, nil)
			continue
		}
		inf.out = append(inf.out, inf.prows[base[b]:base[b+1]])
	}
	return inf.out, nil
}

// recur runs one direction's LSTM recurrence over the ragged time-major
// pre-activations zx, writing hidden states into h. The recurrent
// projection of each step covers every active sequence in one blocked
// pass over wh. The gate arithmetic matches lstmCell.forward expression
// for expression, so each hidden state is bit-identical to the reference.
func (inf *Inference) recur(c *lstmCell, wh *packedNT, zx, h []float64, off []int, maxT int) {
	H := c.hiddenDim
	bias := c.b
	for t := 0; t < maxT; t++ {
		act := off[t+1] - off[t]
		if t == 0 {
			// Wh · 0 is exactly +0 in the reference too.
			zh := inf.zh[:act*4*H]
			for i := range zh {
				zh[i] = 0
			}
			cells := inf.cells[:act*H]
			for i := range cells {
				cells[i] = 0
			}
		} else {
			prevH := h[off[t-1]*H : (off[t-1]+act)*H]
			wh.apply(inf.zh, prevH, act)
		}
		for pos := 0; pos < act; pos++ {
			row := off[t] + pos
			zxr := zx[row*4*H : row*4*H+4*H]
			zhr := inf.zh[pos*4*H : pos*4*H+4*H]
			cell := inf.cells[pos*H : pos*H+H]
			hid := h[row*H : row*H+H]
			for j := 0; j < H; j++ {
				zi := zxr[j] + zhr[j] + bias[j]
				zf := zxr[H+j] + zhr[H+j] + bias[H+j]
				zg := zxr[2*H+j] + zhr[2*H+j] + bias[2*H+j]
				zo := zxr[3*H+j] + zhr[3*H+j] + bias[3*H+j]
				i := sigmoid(zi)
				f := sigmoid(zf)
				g := math.Tanh(zg)
				o := sigmoid(zo)
				cv := f*cell[j] + i*g
				cell[j] = cv
				hid[j] = o * math.Tanh(cv)
			}
		}
	}
}
