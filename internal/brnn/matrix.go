// Package brnn implements the paper's phoneme-detection model from
// scratch: a bidirectional LSTM (Section V-B, 64 units per direction,
// combined by summation) with a dense softmax head, trained with BPTT and
// the Adam optimizer. Only the standard library is used.
package brnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixRandom allocates a matrix with Xavier/Glorot-scaled random
// entries drawn from rng.
func NewMatrixRandom(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	scale := math.Sqrt(2.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears all entries in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes m · x for a vector x of length Cols into out (length
// Rows). out is overwritten.
func (m *Matrix) MulVec(x, out []float64) error {
	if len(x) != m.Cols || len(out) != m.Rows {
		return fmt.Errorf("brnn: mulvec shape mismatch: (%dx%d)·%d -> %d", m.Rows, m.Cols, len(x), len(out))
	}
	for r := 0; r < m.Rows; r++ {
		sum := 0.0
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, w := range row {
			sum += w * x[c]
		}
		out[r] = sum
	}
	return nil
}

// AddOuterScaled accumulates m += scale * a·bᵀ where len(a)==Rows and
// len(b)==Cols. Used for weight-gradient accumulation.
func (m *Matrix) AddOuterScaled(a, b []float64, scale float64) error {
	if len(a) != m.Rows || len(b) != m.Cols {
		return fmt.Errorf("brnn: outer shape mismatch: %dx%d vs (%dx%d)", len(a), len(b), m.Rows, m.Cols)
	}
	for r, av := range a {
		if av == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		f := av * scale
		for c, bv := range b {
			row[c] += f * bv
		}
	}
	return nil
}

// MulVecTransposed computes mᵀ · x for a vector x of length Rows into out
// (length Cols). Used to backpropagate through a matrix multiply.
func (m *Matrix) MulVecTransposed(x, out []float64) error {
	if len(x) != m.Rows || len(out) != m.Cols {
		return fmt.Errorf("brnn: mulvecT shape mismatch: (%dx%d)ᵀ·%d -> %d", m.Rows, m.Cols, len(x), len(out))
	}
	for c := range out {
		out[c] = 0
	}
	for r, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, w := range row {
			out[c] += w * xv
		}
	}
	return nil
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
