// Package brnn implements the paper's phoneme-detection model from
// scratch: a bidirectional LSTM (Section V-B, 64 units per direction,
// combined by summation) with a dense softmax head, trained with BPTT and
// the Adam optimizer. Only the standard library is used.
package brnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixRandom allocates a matrix with Xavier/Glorot-scaled random
// entries drawn from rng.
func NewMatrixRandom(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	scale := math.Sqrt(2.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears all entries in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes m · x for a vector x of length Cols into out (length
// Rows). out is overwritten.
func (m *Matrix) MulVec(x, out []float64) error {
	if len(x) != m.Cols || len(out) != m.Rows {
		return fmt.Errorf("brnn: mulvec shape mismatch: (%dx%d)·%d -> %d", m.Rows, m.Cols, len(x), len(out))
	}
	for r := 0; r < m.Rows; r++ {
		sum := 0.0
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, w := range row {
			sum += w * x[c]
		}
		out[r] = sum
	}
	return nil
}

// MulMat computes out = x · mᵀ for row-major matrices: row i of out is
// m · (row i of x), i.e. MulVec applied to every row of x in one blocked
// pass. x is (N x Cols), out is (N x Rows). It is the batched inference
// kernel: every output element accumulates its dot product over the
// shared dimension in increasing index order with a single accumulator —
// exactly the order MulVec uses — so the blocked kernel is bit-identical
// to the per-frame reference path, element for element.
func (m *Matrix) MulMat(x, out *Matrix) error {
	if x.Cols != m.Cols || out.Rows != x.Rows || out.Cols != m.Rows {
		return fmt.Errorf("brnn: mulmat shape mismatch: (%dx%d)·(%dx%d)ᵀ -> (%dx%d)",
			x.Rows, x.Cols, m.Rows, m.Cols, out.Rows, out.Cols)
	}
	gemmNT(out.Data, x.Data, m.Data, x.Rows, m.Cols, m.Rows)
	return nil
}

// gemmRowBlock is the weight-panel height of the blocked kernel: 64 rows
// of a 64-wide weight matrix are 32 KiB of float64 — resident in L1 while
// a panel is streamed against every input row.
const gemmRowBlock = 64

// gemmNT computes out = X · Wᵀ over packed row-major buffers: X is n
// rows of length k (stride k), W is r rows of length k, out is n rows of
// length r. Blocking scheme: W is processed in panels of gemmRowBlock
// rows that stay hot in cache while the X rows stream past; within a
// panel, four W rows are walked per pass so each X element loaded from
// memory feeds four accumulators. Each accumulator still sums strictly
// in increasing k, so every out element is bit-identical to the naive
// dot product of MulVec.
func gemmNT(out, x, w []float64, n, k, r int) {
	for r0 := 0; r0 < r; r0 += gemmRowBlock {
		r1 := r0 + gemmRowBlock
		if r1 > r {
			r1 = r
		}
		for i := 0; i < n; i++ {
			xi := x[i*k : i*k+k]
			oi := out[i*r : i*r+r]
			j := r0
			// Eight W rows per pass: eight independent accumulator
			// chains hide the FP add latency that a narrower unroll
			// leaves exposed, while each output element still sums
			// over k in increasing order through one accumulator.
			// The [:len(xi)] re-slices pin every weight row to the
			// range bound so the compiler drops the per-element
			// bounds checks inside the hot loop.
			for ; j+8 <= r1; j += 8 {
				w0 := w[(j+0)*k:][:len(xi)]
				w1 := w[(j+1)*k:][:len(xi)]
				w2 := w[(j+2)*k:][:len(xi)]
				w3 := w[(j+3)*k:][:len(xi)]
				w4 := w[(j+4)*k:][:len(xi)]
				w5 := w[(j+5)*k:][:len(xi)]
				w6 := w[(j+6)*k:][:len(xi)]
				w7 := w[(j+7)*k:][:len(xi)]
				var a0, a1, a2, a3, a4, a5, a6, a7 float64
				for c, xv := range xi {
					a0 += w0[c] * xv
					a1 += w1[c] * xv
					a2 += w2[c] * xv
					a3 += w3[c] * xv
					a4 += w4[c] * xv
					a5 += w5[c] * xv
					a6 += w6[c] * xv
					a7 += w7[c] * xv
				}
				o := oi[j : j+8 : j+8]
				o[0], o[1], o[2], o[3] = a0, a1, a2, a3
				o[4], o[5], o[6], o[7] = a4, a5, a6, a7
			}
			for ; j+4 <= r1; j += 4 {
				w0 := w[(j+0)*k:][:len(xi)]
				w1 := w[(j+1)*k:][:len(xi)]
				w2 := w[(j+2)*k:][:len(xi)]
				w3 := w[(j+3)*k:][:len(xi)]
				var a0, a1, a2, a3 float64
				for c, xv := range xi {
					a0 += w0[c] * xv
					a1 += w1[c] * xv
					a2 += w2[c] * xv
					a3 += w3[c] * xv
				}
				o := oi[j : j+4 : j+4]
				o[0], o[1], o[2], o[3] = a0, a1, a2, a3
			}
			for ; j < r1; j++ {
				wj := w[j*k:][:len(xi)]
				var a float64
				for c, xv := range xi {
					a += wj[c] * xv
				}
				oi[j] = a
			}
		}
	}
}

// AddOuterScaled accumulates m += scale * a·bᵀ where len(a)==Rows and
// len(b)==Cols. Used for weight-gradient accumulation.
func (m *Matrix) AddOuterScaled(a, b []float64, scale float64) error {
	if len(a) != m.Rows || len(b) != m.Cols {
		return fmt.Errorf("brnn: outer shape mismatch: %dx%d vs (%dx%d)", len(a), len(b), m.Rows, m.Cols)
	}
	for r, av := range a {
		if av == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		f := av * scale
		for c, bv := range b {
			row[c] += f * bv
		}
	}
	return nil
}

// MulVecTransposed computes mᵀ · x for a vector x of length Rows into out
// (length Cols). Used to backpropagate through a matrix multiply.
func (m *Matrix) MulVecTransposed(x, out []float64) error {
	if len(x) != m.Rows || len(out) != m.Cols {
		return fmt.Errorf("brnn: mulvecT shape mismatch: (%dx%d)ᵀ·%d -> %d", m.Rows, m.Cols, len(x), len(out))
	}
	for c := range out {
		out[c] = 0
	}
	for r, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, w := range row {
			out[c] += w * xv
		}
	}
	return nil
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
