// Package brnnbench defines the BRNN inference benchmark kernels: the
// per-frame reference path (Model.Forward, naive mat-vecs and per-timestep
// allocations) next to the batched Inference path on identical workloads.
// The kernels are shared by the `go test -bench` wrappers in internal/brnn
// and by cmd/benchbrnn, which emits the checked-in BENCH_brnn.json
// baseline, so the two can never measure different workloads — the same
// arrangement dspbench uses for the FFT engine.
package brnnbench

import (
	"math/rand"
	"testing"

	"vibguard/internal/brnn"
)

// Case is one benchmark kernel: Group matches a Benchmark<Group> wrapper
// in internal/brnn and Name is the sub-benchmark label.
type Case struct {
	Group string
	Name  string
	Fn    func(b *testing.B)
}

// paperModel returns the paper architecture (64 units per direction, 14
// MFCCs, binary head) with seeded weights.
func paperModel(b *testing.B) *brnn.Model {
	m, err := brnn.New(brnn.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// inputs builds a deterministic T-frame MFCC-shaped sequence.
func inputs(T, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, T)
	for t := range out {
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		out[t] = x
	}
	return out
}

// benchT is the single-sequence benchmark length: ~1 s of audio at the
// 10 ms frame shift.
const benchT = 100

// batchSize is the multi-sequence workload: the concurrent-session count
// one serve worker's batch would amortize weights over.
const batchSize = 8

// Cases returns every benchmark kernel, batched path and per-frame
// reference side by side on identical workloads.
func Cases() []Case {
	return []Case{
		{"Forward", "batched-64x14-T100", func(b *testing.B) {
			m := paperModel(b)
			in := inputs(benchT, 14, 1)
			inf := m.NewInference()
			if _, err := inf.Forward(in); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inf.Forward(in); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Forward", "naive-64x14-T100", func(b *testing.B) {
			m := paperModel(b)
			in := inputs(benchT, 14, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Forward(in); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ForwardBatch", "batched-8seq-64x14-T100", func(b *testing.B) {
			m := paperModel(b)
			seqs := make([][][]float64, batchSize)
			for s := range seqs {
				seqs[s] = inputs(benchT, 14, int64(s)+1)
			}
			inf := m.NewInference()
			if _, err := inf.ForwardBatch(seqs); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inf.ForwardBatch(seqs); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ForwardBatch", "naive-8seq-64x14-T100", func(b *testing.B) {
			m := paperModel(b)
			seqs := make([][][]float64, batchSize)
			for s := range seqs {
				seqs[s] = inputs(benchT, 14, int64(s)+1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, seq := range seqs {
					if _, err := m.Forward(seq); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"Predict", "batched-64x14-T100", func(b *testing.B) {
			m := paperModel(b)
			in := inputs(benchT, 14, 2)
			inf := m.NewInference()
			pred, err := inf.Predict(in, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pred, err = inf.Predict(in, pred); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MulMat", "blocked-100x14x256", func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			w := brnn.NewMatrixRandom(256, 14, rng)
			x := brnn.NewMatrixRandom(benchT, 14, rng)
			out := brnn.NewMatrix(benchT, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.MulMat(x, out); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MulMat", "mulvec-loop-100x14x256", func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			w := brnn.NewMatrixRandom(256, 14, rng)
			x := brnn.NewMatrixRandom(benchT, 14, rng)
			row := make([]float64, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for t := 0; t < benchT; t++ {
					if err := w.MulVec(x.Data[t*14:(t+1)*14], row); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	}
}
