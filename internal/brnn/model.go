package brnn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
)

// Model is the paper's bidirectional phoneme detector: a forward LSTM and
// a backward LSTM over the MFCC sequence whose hidden states are summed
// per frame (Eq. 4) and classified by a dense softmax layer with
// NumClasses outputs (2 for effective-phoneme detection).
type Model struct {
	inputDim, hiddenDim, numClasses int

	fwd, bwd *lstmCell
	// dense is (numClasses x hiddenDim); denseBias is (numClasses).
	dense     *Matrix
	denseBias []float64
}

// Config describes the model architecture.
type Config struct {
	// InputDim is the per-frame feature dimension (14 MFCCs).
	InputDim int
	// HiddenDim is the LSTM width per direction (64 in the paper).
	HiddenDim int
	// NumClasses is the softmax width (2 for binary detection).
	NumClasses int
	// Seed drives weight initialization.
	Seed int64
}

// DefaultConfig returns the paper's architecture for 14-dimensional MFCC
// inputs.
func DefaultConfig() Config {
	return Config{InputDim: 14, HiddenDim: 64, NumClasses: 2, Seed: 1}
}

// Validate checks the architecture parameters.
func (c *Config) Validate() error {
	if c.InputDim <= 0 || c.HiddenDim <= 0 || c.NumClasses < 2 {
		return fmt.Errorf("brnn: invalid architecture %+v", *c)
	}
	return nil
}

// New creates a randomly initialized model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Model{
		inputDim:   cfg.InputDim,
		hiddenDim:  cfg.HiddenDim,
		numClasses: cfg.NumClasses,
		fwd:        newLSTMCell(cfg.InputDim, cfg.HiddenDim, rng),
		bwd:        newLSTMCell(cfg.InputDim, cfg.HiddenDim, rng),
		dense:      NewMatrixRandom(cfg.NumClasses, cfg.HiddenDim, rng),
		denseBias:  make([]float64, cfg.NumClasses),
	}, nil
}

// InputDim returns the expected per-frame feature dimension.
func (m *Model) InputDim() int { return m.inputDim }

// HiddenDim returns the LSTM width per direction.
func (m *Model) HiddenDim() int { return m.hiddenDim }

// NumClasses returns the softmax width.
func (m *Model) NumClasses() int { return m.numClasses }

// reverse returns a reversed copy of a sequence (shallow: frame slices are
// shared).
func reverse(seq [][]float64) [][]float64 {
	out := make([][]float64, len(seq))
	for i, v := range seq {
		out[len(seq)-1-i] = v
	}
	return out
}

// Forward computes per-frame class probabilities for an input sequence
// with the per-frame reference kernels (one MulVec per timestep, fresh
// buffers). It is the checked reference the batched path is pinned
// against; hot paths should use NewInference, whose results are
// bit-identical without the per-timestep allocations.
func (m *Model) Forward(inputs [][]float64) ([][]float64, error) {
	probs, _, _, err := m.forwardFull(inputs)
	return probs, err
}

func (m *Model) forwardFull(inputs [][]float64) ([][]float64, *lstmTrace, *lstmTrace, error) {
	if len(inputs) == 0 {
		return nil, nil, nil, nil
	}
	fwdTr, err := m.fwd.forward(inputs)
	if err != nil {
		return nil, nil, nil, err
	}
	bwdTr, err := m.bwd.forward(reverse(inputs))
	if err != nil {
		return nil, nil, nil, err
	}
	T := len(inputs)
	probs := make([][]float64, T)
	combined := make([]float64, m.hiddenDim)
	logits := make([]float64, m.numClasses)
	for t := 0; t < T; t++ {
		hf := fwdTr.hidden[t]
		hb := bwdTr.hidden[T-1-t]
		for j := 0; j < m.hiddenDim; j++ {
			combined[j] = hf[j] + hb[j]
		}
		if err := m.dense.MulVec(combined, logits); err != nil {
			return nil, nil, nil, err
		}
		p := make([]float64, m.numClasses)
		maxL := math.Inf(-1)
		for k, v := range logits {
			if v+m.denseBias[k] > maxL {
				maxL = v + m.denseBias[k]
			}
		}
		sum := 0.0
		for k, v := range logits {
			p[k] = math.Exp(v + m.denseBias[k] - maxL)
			sum += p[k]
		}
		for k := range p {
			p[k] /= sum
		}
		probs[t] = p
	}
	return probs, fwdTr, bwdTr, nil
}

// Predict returns the argmax class per frame.
func (m *Model) Predict(inputs [][]float64) ([]int, error) {
	probs, err := m.Forward(inputs)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	for t, p := range probs {
		best := 0
		for k, v := range p {
			if v > p[best] {
				best = k
			}
		}
		out[t] = best
	}
	return out, nil
}

// serializable mirrors Model for gob encoding.
type serializable struct {
	InputDim, HiddenDim, NumClasses int
	FwdWx, FwdWh, BwdWx, BwdWh      []float64
	FwdB, BwdB                      []float64
	Dense, DenseBias                []float64
}

// MarshalBinary serializes the model weights.
func (m *Model) MarshalBinary() ([]byte, error) {
	s := serializable{
		InputDim: m.inputDim, HiddenDim: m.hiddenDim, NumClasses: m.numClasses,
		FwdWx: m.fwd.wx.Data, FwdWh: m.fwd.wh.Data, FwdB: m.fwd.b,
		BwdWx: m.bwd.wx.Data, BwdWh: m.bwd.wh.Data, BwdB: m.bwd.b,
		Dense: m.dense.Data, DenseBias: m.denseBias,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		return nil, fmt.Errorf("brnn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DimError reports a serialized weight slice whose length does not match
// the architecture dims carried in the same blob — a truncated or corrupt
// model file. Before this check, a short slice would copy partially over
// fresh random init and yield a silently-wrong model.
type DimError struct {
	// Field names the weight slice (e.g. "FwdWx").
	Field string
	// Got and Want are the decoded and required lengths.
	Got, Want int
}

func (e *DimError) Error() string {
	return fmt.Sprintf("brnn: serialized %s has %d values, want %d", e.Field, e.Got, e.Want)
}

// validate checks every weight slice against the architecture dims.
func (s *serializable) validate() error {
	d, h, c := s.InputDim, s.HiddenDim, s.NumClasses
	for _, f := range []struct {
		name string
		got  int
		want int
	}{
		{"FwdWx", len(s.FwdWx), 4 * h * d},
		{"FwdWh", len(s.FwdWh), 4 * h * h},
		{"FwdB", len(s.FwdB), 4 * h},
		{"BwdWx", len(s.BwdWx), 4 * h * d},
		{"BwdWh", len(s.BwdWh), 4 * h * h},
		{"BwdB", len(s.BwdB), 4 * h},
		{"Dense", len(s.Dense), c * h},
		{"DenseBias", len(s.DenseBias), c},
	} {
		if f.got != f.want {
			return &DimError{Field: f.name, Got: f.got, Want: f.want}
		}
	}
	return nil
}

// UnmarshalBinary restores model weights serialized by MarshalBinary. The
// architecture dims are validated first, then every weight slice length
// is checked against them (DimError on mismatch), so a truncated or
// corrupt blob fails loudly instead of yielding a silently-wrong model.
func (m *Model) UnmarshalBinary(data []byte) error {
	var s serializable
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return fmt.Errorf("brnn: decode: %w", err)
	}
	restored, err := New(Config{InputDim: s.InputDim, HiddenDim: s.HiddenDim, NumClasses: s.NumClasses, Seed: 1})
	if err != nil {
		return err
	}
	if err := s.validate(); err != nil {
		return err
	}
	copy(restored.fwd.wx.Data, s.FwdWx)
	copy(restored.fwd.wh.Data, s.FwdWh)
	copy(restored.fwd.b, s.FwdB)
	copy(restored.bwd.wx.Data, s.BwdWx)
	copy(restored.bwd.wh.Data, s.BwdWh)
	copy(restored.bwd.b, s.BwdB)
	copy(restored.dense.Data, s.Dense)
	copy(restored.denseBias, s.DenseBias)
	*m = *restored
	return nil
}
