// SSE2 packed GEMM kernel. See gemm.go (packNT) for the interleaved
// weight layout and gemm_amd64.go for the contract. Each XMM lane holds
// one output row's accumulator; MULPD/ADDPD keep the two roundings of the
// scalar reference (no FMA), so results are bit-identical to gemmNT.

#include "textflag.h"

// func gemmPacked16(out, x, w []float64)
TEXT ·gemmPacked16(SB), NOSPLIT, $0-72
	MOVQ out_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX
	MOVQ w_base+48(FP), DX

	// Eight two-lane accumulators = 16 output rows.
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ CX, CX
	JE    done

loop:
	// Broadcast x[c] into both lanes.
	MOVSD    (SI), X8
	UNPCKLPD X8, X8

	MOVUPD 0(DX), X9
	MULPD  X8, X9
	ADDPD  X9, X0
	MOVUPD 16(DX), X10
	MULPD  X8, X10
	ADDPD  X10, X1
	MOVUPD 32(DX), X11
	MULPD  X8, X11
	ADDPD  X11, X2
	MOVUPD 48(DX), X12
	MULPD  X8, X12
	ADDPD  X12, X3
	MOVUPD 64(DX), X13
	MULPD  X8, X13
	ADDPD  X13, X4
	MOVUPD 80(DX), X14
	MULPD  X8, X14
	ADDPD  X14, X5
	MOVUPD 96(DX), X15
	MULPD  X8, X15
	ADDPD  X15, X6
	MOVUPD 112(DX), X9
	MULPD  X8, X9
	ADDPD  X9, X7

	ADDQ $8, SI
	ADDQ $128, DX
	DECQ CX
	JNE  loop

done:
	MOVUPD X0, 0(DI)
	MOVUPD X1, 16(DI)
	MOVUPD X2, 32(DI)
	MOVUPD X3, 48(DI)
	MOVUPD X4, 64(DI)
	MOVUPD X5, 80(DI)
	MOVUPD X6, 96(DI)
	MOVUPD X7, 112(DI)
	RET
