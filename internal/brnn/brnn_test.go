package brnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixOps(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	m.Set(1, 0, 4)
	m.Set(1, 1, 5)
	m.Set(1, 2, 6)
	out := make([]float64, 2)
	if err := m.MulVec([]float64{1, 1, 1}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 || out[1] != 15 {
		t.Errorf("MulVec = %v", out)
	}
	outT := make([]float64, 3)
	if err := m.MulVecTransposed([]float64{1, 1}, outT); err != nil {
		t.Fatal(err)
	}
	if outT[0] != 5 || outT[1] != 7 || outT[2] != 9 {
		t.Errorf("MulVecTransposed = %v", outT)
	}
	if err := m.MulVec([]float64{1}, out); err == nil {
		t.Error("shape mismatch should error")
	}
	if err := m.MulVecTransposed([]float64{1}, outT); err == nil {
		t.Error("transposed shape mismatch should error")
	}
	g := NewMatrix(2, 3)
	if err := g.AddOuterScaled([]float64{1, 2}, []float64{3, 4, 5}, 2); err != nil {
		t.Fatal(err)
	}
	if g.At(1, 2) != 20 {
		t.Errorf("outer(1,2) = %v, want 20", g.At(1, 2))
	}
	if err := g.AddOuterScaled([]float64{1}, []float64{1, 1, 1}, 1); err == nil {
		t.Error("outer shape mismatch should error")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
	c.Zero()
	if c.At(1, 1) != 0 {
		t.Error("Zero failed")
	}
}

func TestSigmoidProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		s := sigmoid(x)
		if s < 0 || s > 1 || math.IsNaN(s) {
			return false
		}
		// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
		return math.Abs(sigmoid(-x)-(1-s)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModelConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{InputDim: 0, HiddenDim: 8, NumClasses: 2},
		{InputDim: 4, HiddenDim: 0, NumClasses: 2},
		{InputDim: 4, HiddenDim: 8, NumClasses: 1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.InputDim() != 14 || m.HiddenDim() != 64 || m.NumClasses() != 2 {
		t.Error("default architecture mismatch")
	}
}

func TestForwardShapes(t *testing.T) {
	m, err := New(Config{InputDim: 4, HiddenDim: 8, NumClasses: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq := randomSeq(10, 4, 3, 1)
	probs, err := m.Forward(seq.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 10 {
		t.Fatalf("probs len = %d", len(probs))
	}
	for t2, p := range probs {
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range at %d: %v", t2, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probs at %d sum to %v", t2, sum)
		}
	}
	// Empty sequence.
	probs, err = m.Forward(nil)
	if err != nil || probs != nil {
		t.Errorf("empty forward: %v, %v", probs, err)
	}
	// Wrong input dim.
	if _, err := m.Forward([][]float64{{1, 2}}); err == nil {
		t.Error("wrong input dim should error")
	}
}

func TestBidirectionalUsesFutureContext(t *testing.T) {
	// A BRNN's output at t=0 must depend on later frames; a pure forward
	// RNN's would not.
	m, err := New(Config{InputDim: 2, HiddenDim: 8, NumClasses: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seqA := [][]float64{{0.5, 0.5}, {0.1, 0.1}, {0.1, 0.1}}
	seqB := [][]float64{{0.5, 0.5}, {0.9, -0.9}, {-0.9, 0.9}}
	pa, err := m.Forward(seqA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Forward(seqB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa[0][0]-pb[0][0]) < 1e-9 {
		t.Error("output at t=0 ignores future frames; backward direction broken")
	}
}

// randomSeq builds a toy sequence where the label is determined by which
// input coordinate is larger — linearly separable per frame.
func randomSeq(T, dim, classes int, seed int64) Sequence {
	rng := rand.New(rand.NewSource(seed))
	s := Sequence{Inputs: make([][]float64, T), Labels: make([]int, T)}
	for t := 0; t < T; t++ {
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		label := t % classes
		x[label] += 2.5 // strong class signal on one coordinate
		s.Inputs[t] = x
		s.Labels[t] = label
	}
	return s
}

func TestTrainingLearnsSeparableTask(t *testing.T) {
	m, err := New(Config{InputDim: 4, HiddenDim: 12, NumClasses: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var data []Sequence
	for i := 0; i < 24; i++ {
		data = append(data, randomSeq(15, 4, 2, int64(i)))
	}
	before, err := Evaluate(m, data)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(m, TrainConfig{Epochs: 12, LearningRate: 0.01, ClipNorm: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	losses, err := tr.Train(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 12 {
		t.Fatalf("losses = %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	after, err := Evaluate(m, data)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.9 {
		t.Errorf("training accuracy = %v, want >= 0.9 (before: %v)", after, before)
	}
	if after <= before {
		t.Errorf("accuracy did not improve: %v -> %v", before, after)
	}
}

func TestGradientCheckDense(t *testing.T) {
	// Numerical gradient check on a tiny model: perturb one dense weight
	// and compare loss delta to the analytic gradient.
	m, err := New(Config{InputDim: 3, HiddenDim: 4, NumClasses: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	seq := randomSeq(5, 3, 2, 99)
	lossOf := func() float64 {
		probs, err := m.Forward(seq.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		loss := 0.0
		for t2, p := range probs {
			loss -= math.Log(p[seq.Labels[t2]] + 1e-12)
		}
		return loss / float64(len(probs))
	}
	// Analytic gradient via one trainer step with a tiny LR and inspecting
	// the accumulated gradient.
	tr, err := NewTrainer(m, TrainConfig{Epochs: 1, LearningRate: 1e-9, ClipNorm: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.step(&seq); err != nil {
		t.Fatal(err)
	}
	analytic := tr.denseGrad.At(0, 0)
	const h = 1e-5
	orig := m.dense.At(0, 0)
	m.dense.Set(0, 0, orig+h)
	lossPlus := lossOf()
	m.dense.Set(0, 0, orig-h)
	lossMinus := lossOf()
	m.dense.Set(0, 0, orig)
	numeric := (lossPlus - lossMinus) / (2 * h)
	if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
		t.Errorf("dense gradient mismatch: numeric %v, analytic %v", numeric, analytic)
	}
}

func TestGradientCheckLSTM(t *testing.T) {
	m, err := New(Config{InputDim: 3, HiddenDim: 4, NumClasses: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	seq := randomSeq(6, 3, 2, 55)
	lossOf := func() float64 {
		probs, err := m.Forward(seq.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		loss := 0.0
		for t2, p := range probs {
			loss -= math.Log(p[seq.Labels[t2]] + 1e-12)
		}
		return loss / float64(len(probs))
	}
	tr, err := NewTrainer(m, TrainConfig{Epochs: 1, LearningRate: 1e-12, ClipNorm: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.step(&seq); err != nil {
		t.Fatal(err)
	}
	// Check several weights in the forward LSTM's input matrix.
	for _, idx := range []int{0, 5, 17, 30} {
		analytic := tr.fwdGrads.wx.Data[idx]
		const h = 1e-5
		orig := m.fwd.wx.Data[idx]
		m.fwd.wx.Data[idx] = orig + h
		lossPlus := lossOf()
		m.fwd.wx.Data[idx] = orig - h
		lossMinus := lossOf()
		m.fwd.wx.Data[idx] = orig
		numeric := (lossPlus - lossMinus) / (2 * h)
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("wx[%d] gradient mismatch: numeric %v, analytic %v", idx, numeric, analytic)
		}
	}
}

func TestSequenceValidate(t *testing.T) {
	m, err := New(Config{InputDim: 3, HiddenDim: 4, NumClasses: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := Sequence{Inputs: [][]float64{{1, 2, 3}}, Labels: []int{0, 1}}
	if err := bad.Validate(m); err == nil {
		t.Error("length mismatch should error")
	}
	bad = Sequence{Inputs: [][]float64{{1, 2}}, Labels: []int{0}}
	if err := bad.Validate(m); err == nil {
		t.Error("dim mismatch should error")
	}
	bad = Sequence{Inputs: [][]float64{{1, 2, 3}}, Labels: []int{5}}
	if err := bad.Validate(m); err == nil {
		t.Error("label out of range should error")
	}
}

func TestTrainerConfigValidation(t *testing.T) {
	m, err := New(Config{InputDim: 3, HiddenDim: 4, NumClasses: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrainer(m, TrainConfig{Epochs: 0, LearningRate: 0.01}); err == nil {
		t.Error("zero epochs should error")
	}
	if _, err := NewTrainer(m, TrainConfig{Epochs: 1, LearningRate: 0}); err == nil {
		t.Error("zero LR should error")
	}
}

func TestAdamStepMismatch(t *testing.T) {
	params := [][]float64{make([]float64, 4)}
	opt := NewAdam(params, 0.01)
	if err := opt.Step(params, [][]float64{make([]float64, 3)}); err == nil {
		t.Error("grad size mismatch should error")
	}
	if err := opt.Step([][]float64{}, [][]float64{}); err == nil {
		t.Error("group count mismatch should error")
	}
}

func TestAdamConverges(t *testing.T) {
	// Minimize (x-3)^2 with Adam.
	x := []float64{0}
	opt := NewAdam([][]float64{x}, 0.1)
	for i := 0; i < 500; i++ {
		g := []float64{2 * (x[0] - 3)}
		if err := opt.Step([][]float64{x}, [][]float64{g}); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(x[0]-3) > 0.05 {
		t.Errorf("Adam converged to %v, want 3", x[0])
	}
}

func TestClipByGlobalNorm(t *testing.T) {
	g := [][]float64{{3, 4}} // norm 5
	clipByGlobalNorm(g, 1)
	norm := math.Hypot(g[0][0], g[0][1])
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("clipped norm = %v", norm)
	}
	// No clipping below the threshold.
	g = [][]float64{{0.3, 0.4}}
	clipByGlobalNorm(g, 1)
	if g[0][0] != 0.3 {
		t.Error("small gradient should be untouched")
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	m, err := New(Config{InputDim: 4, HiddenDim: 6, NumClasses: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	seq := randomSeq(8, 4, 2, 5)
	want, err := m.Forward(seq.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Forward(seq.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range want {
		for k := range want[t2] {
			if math.Abs(want[t2][k]-got[t2][k]) > 1e-12 {
				t.Fatalf("restored model diverges at frame %d class %d", t2, k)
			}
		}
	}
	if err := restored.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Error("garbage decode should error")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m, err := New(Config{InputDim: 3, HiddenDim: 4, NumClasses: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Evaluate(m, nil)
	if err != nil || acc != 0 {
		t.Errorf("empty evaluate: %v, %v", acc, err)
	}
}
