package brnn

// gemmPackedLanes is the output-row group width of the packed kernel: 16
// independent accumulators (eight two-lane XMM registers on amd64) per
// pass over the shared input row.
const gemmPackedLanes = 16

// packedNT is a weight matrix prepared for the batched x·Wᵀ kernels: the
// rows of W are regrouped into 16-lane interleaved blocks so the SIMD
// kernel can load one value of 16 consecutive output rows with a single
// vector load. Lane l of block b accumulates output row b*16+l on its
// own — each output element still sums over k in increasing order through
// a single accumulator, which keeps the packed path bit-identical to
// gemmNT and to the per-frame reference kernels.
//
// The packing is a snapshot: build a packedNT only after the weights are
// final (inference sessions, not training steps). The up-to-15 tail rows
// that do not fill a block are served straight from the original row-major
// weights by the scalar kernel.
type packedNT struct {
	k, r int
	w    []float64 // original row-major rows, shared read-only with the model
	blk  []float64 // interleaved 16-lane blocks; nil off amd64 or when r < 16
}

// packNT prepares W (r rows of k values, row-major) for apply. On
// architectures without the packed kernel it records the shape only and
// apply falls back to the pure-Go blocked kernel.
func packNT(w []float64, k, r int) packedNT {
	p := packedNT{k: k, r: r, w: w}
	nblk := r / gemmPackedLanes
	if !gemmPackedEnabled || nblk == 0 {
		return p
	}
	p.blk = make([]float64, nblk*gemmPackedLanes*k)
	for b := 0; b < nblk; b++ {
		dst := p.blk[b*gemmPackedLanes*k:]
		for c := 0; c < k; c++ {
			for l := 0; l < gemmPackedLanes; l++ {
				dst[c*gemmPackedLanes+l] = w[(b*gemmPackedLanes+l)*k+c]
			}
		}
	}
	return p
}

// apply computes out = X·Wᵀ for n packed input rows: X is n rows of k
// values, out is n rows of r values, both row-major. Bit-identical to
// gemmNT(out, x, w, n, k, r).
func (p *packedNT) apply(out, x []float64, n int) {
	k, r := p.k, p.r
	if p.blk == nil {
		gemmNT(out, x, p.w, n, k, r)
		return
	}
	nblk := r / gemmPackedLanes
	full := nblk * gemmPackedLanes
	for i := 0; i < n; i++ {
		xi := x[i*k : i*k+k]
		oi := out[i*r : i*r+r]
		for b := 0; b < nblk; b++ {
			gemmPacked16(oi[b*gemmPackedLanes:(b+1)*gemmPackedLanes],
				xi, p.blk[b*gemmPackedLanes*k:(b+1)*gemmPackedLanes*k])
		}
		if full < r {
			gemmNT(oi[full:], xi, p.w[full*k:], 1, k, r-full)
		}
	}
}
