//go:build !amd64

package brnn

// gemmPackedEnabled reports whether the packed SIMD kernel is compiled in.
// Without it, packNT skips the interleaved copy and apply falls back to
// the pure-Go blocked kernel.
const gemmPackedEnabled = false

// gemmPacked16 is never reached when gemmPackedEnabled is false.
func gemmPacked16(out, x, w []float64) {
	panic("brnn: packed gemm kernel not available on this architecture")
}
