package brnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Adam is the Adam optimizer over a flat list of parameter slices.
type Adam struct {
	lr, beta1, beta2, eps float64
	t                     int
	m, v                  [][]float64
}

// NewAdam creates an optimizer for the given parameter slices with
// standard hyperparameters.
func NewAdam(params [][]float64, lr float64) *Adam {
	a := &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p))
		a.v[i] = make([]float64, len(p))
	}
	return a
}

// Step applies one Adam update: params -= lr * mhat / (sqrt(vhat)+eps).
func (a *Adam) Step(params, grads [][]float64) error {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		return fmt.Errorf("brnn: adam group count mismatch")
	}
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		if len(p) != len(a.m[i]) || len(g) != len(a.m[i]) {
			return fmt.Errorf("brnn: adam param %d size mismatch", i)
		}
		m, v := a.m[i], a.v[i]
		for j := range p {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g[j]
			v[j] = a.beta2*v[j] + (1-a.beta2)*g[j]*g[j]
			p[j] -= a.lr * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.eps)
		}
	}
	return nil
}

// Sequence is one training example: a feature sequence with per-frame
// class labels.
type Sequence struct {
	// Inputs[t] is the feature vector of frame t.
	Inputs [][]float64
	// Labels[t] is the class of frame t.
	Labels []int
}

// Validate checks shape consistency against a model.
func (s *Sequence) Validate(m *Model) error {
	if len(s.Inputs) != len(s.Labels) {
		return fmt.Errorf("brnn: sequence has %d inputs but %d labels", len(s.Inputs), len(s.Labels))
	}
	for t, in := range s.Inputs {
		if len(in) != m.InputDim() {
			return fmt.Errorf("brnn: frame %d has dim %d, want %d", t, len(in), m.InputDim())
		}
		if s.Labels[t] < 0 || s.Labels[t] >= m.NumClasses() {
			return fmt.Errorf("brnn: frame %d label %d outside [0, %d)", t, s.Labels[t], m.NumClasses())
		}
	}
	return nil
}

// TrainConfig controls training.
type TrainConfig struct {
	// Epochs over the training set.
	Epochs int
	// LearningRate for Adam.
	LearningRate float64
	// ClipNorm is the global gradient-norm clip (0 disables).
	ClipNorm float64
	// Seed shuffles the training order.
	Seed int64
}

// DefaultTrainConfig returns sensible defaults for phoneme detection.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 8, LearningRate: 0.004, ClipNorm: 5, Seed: 1}
}

// Trainer runs BPTT training on a model.
type Trainer struct {
	model *Model
	cfg   TrainConfig
	opt   *Adam

	fwdGrads, bwdGrads *lstmGrads
	denseGrad          *Matrix
	denseBiasGrad      []float64
}

// NewTrainer creates a trainer bound to a model.
func NewTrainer(m *Model, cfg TrainConfig) (*Trainer, error) {
	if cfg.Epochs <= 0 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("brnn: invalid train config %+v", cfg)
	}
	tr := &Trainer{
		model:         m,
		cfg:           cfg,
		fwdGrads:      newLSTMGrads(m.fwd),
		bwdGrads:      newLSTMGrads(m.bwd),
		denseGrad:     NewMatrix(m.dense.Rows, m.dense.Cols),
		denseBiasGrad: make([]float64, len(m.denseBias)),
	}
	tr.opt = NewAdam(tr.params(), cfg.LearningRate)
	return tr, nil
}

func (tr *Trainer) params() [][]float64 {
	out := tr.model.fwd.params()
	out = append(out, tr.model.bwd.params()...)
	out = append(out, tr.model.dense.Data, tr.model.denseBias)
	return out
}

func (tr *Trainer) grads() [][]float64 {
	out := tr.fwdGrads.slices()
	out = append(out, tr.bwdGrads.slices()...)
	out = append(out, tr.denseGrad.Data, tr.denseBiasGrad)
	return out
}

func (tr *Trainer) zeroGrads() {
	tr.fwdGrads.zero()
	tr.bwdGrads.zero()
	tr.denseGrad.Zero()
	for i := range tr.denseBiasGrad {
		tr.denseBiasGrad[i] = 0
	}
}

// step runs forward+backward on one sequence and applies an update,
// returning the mean cross-entropy loss.
func (tr *Trainer) step(seq *Sequence) (float64, error) {
	m := tr.model
	probs, fwdTr, bwdTr, err := m.forwardFull(seq.Inputs)
	if err != nil {
		return 0, err
	}
	T := len(seq.Inputs)
	if T == 0 {
		return 0, nil
	}
	tr.zeroGrads()
	H := m.hiddenDim
	loss := 0.0
	dHf := make([][]float64, T)
	dHb := make([][]float64, T)
	combined := make([]float64, H)
	dCombined := make([]float64, H)
	invT := 1 / float64(T)
	for t := 0; t < T; t++ {
		p := probs[t]
		label := seq.Labels[t]
		loss -= math.Log(p[label] + 1e-12)
		// dL/dlogit_k = (p_k - y_k) / T.
		dLogits := make([]float64, m.numClasses)
		for k := range p {
			dLogits[k] = p[k] * invT
		}
		dLogits[label] -= invT
		hf := fwdTr.hidden[t]
		hb := bwdTr.hidden[T-1-t]
		for j := 0; j < H; j++ {
			combined[j] = hf[j] + hb[j]
		}
		if err := tr.denseGrad.AddOuterScaled(dLogits, combined, 1); err != nil {
			return 0, err
		}
		for k, v := range dLogits {
			tr.denseBiasGrad[k] += v
		}
		if err := m.dense.MulVecTransposed(dLogits, dCombined); err != nil {
			return 0, err
		}
		df := make([]float64, H)
		db := make([]float64, H)
		copy(df, dCombined)
		copy(db, dCombined)
		dHf[t] = df
		dHb[T-1-t] = db
	}
	if _, err := m.fwd.backward(fwdTr, dHf, tr.fwdGrads); err != nil {
		return 0, err
	}
	if _, err := m.bwd.backward(bwdTr, dHb, tr.bwdGrads); err != nil {
		return 0, err
	}
	if tr.cfg.ClipNorm > 0 {
		clipByGlobalNorm(tr.grads(), tr.cfg.ClipNorm)
	}
	if err := tr.opt.Step(tr.params(), tr.grads()); err != nil {
		return 0, err
	}
	return loss * invT, nil
}

func clipByGlobalNorm(grads [][]float64, maxNorm float64) {
	total := 0.0
	for _, g := range grads {
		for _, v := range g {
			total += v * v
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, g := range grads {
		for j := range g {
			g[j] *= scale
		}
	}
}

// Train fits the model on the given sequences, returning the mean loss of
// each epoch.
func (tr *Trainer) Train(data []Sequence) ([]float64, error) {
	for i := range data {
		if err := data[i].Validate(tr.model); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(tr.cfg.Seed))
	losses := make([]float64, 0, tr.cfg.Epochs)
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < tr.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sum := 0.0
		for _, idx := range order {
			l, err := tr.step(&data[idx])
			if err != nil {
				return nil, fmt.Errorf("brnn: epoch %d: %w", epoch, err)
			}
			sum += l
		}
		if len(data) > 0 {
			sum /= float64(len(data))
		}
		losses = append(losses, sum)
	}
	return losses, nil
}

// Evaluate returns frame-level accuracy of the model on labeled sequences.
// One inference session (and one prediction buffer) is reused across the
// whole pass, so evaluation runs on the batched kernels without
// per-sequence allocations; predictions are bit-identical to
// Model.Predict.
func Evaluate(m *Model, data []Sequence) (float64, error) {
	correct, total := 0, 0
	inf := m.NewInference()
	var pred []int
	for i := range data {
		if err := data[i].Validate(m); err != nil {
			return 0, err
		}
		var err error
		pred, err = inf.Predict(data[i].Inputs, pred)
		if err != nil {
			return 0, err
		}
		for t, p := range pred {
			if p == data[i].Labels[t] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(correct) / float64(total), nil
}
