package brnn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// inferConfigs spans the architectures the equivalence suite pins: the
// paper config (64 units, 14 MFCCs), odd sizes that exercise the blocked
// kernel's tail loops, and a multi-class head.
func inferConfigs() []Config {
	return []Config{
		{InputDim: 14, HiddenDim: 64, NumClasses: 2, Seed: 1},
		{InputDim: 3, HiddenDim: 5, NumClasses: 2, Seed: 2},
		{InputDim: 7, HiddenDim: 33, NumClasses: 4, Seed: 3},
		{InputDim: 1, HiddenDim: 1, NumClasses: 2, Seed: 4},
	}
}

func randomInputs(T, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, T)
	for t := range out {
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		out[t] = x
	}
	return out
}

// requireBitEqual fails unless the batched probabilities are bit-identical
// (==, not within tolerance) to the reference path's.
func requireBitEqual(t *testing.T, label string, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d frames, want %d", label, len(got), len(want))
	}
	for f := range want {
		if len(want[f]) != len(got[f]) {
			t.Fatalf("%s: frame %d has %d classes, want %d", label, f, len(got[f]), len(want[f]))
		}
		for k := range want[f] {
			if want[f][k] != got[f][k] {
				t.Fatalf("%s: frame %d class %d: batched %v != reference %v",
					label, f, k, got[f][k], want[f][k])
			}
		}
	}
}

// TestInferenceMatchesReference pins the batched inference path
// bit-identical to the per-frame reference (Model.Forward) on seeded
// random models — the brnn analogue of the dspbench legacy-FFT pin.
func TestInferenceMatchesReference(t *testing.T) {
	for _, cfg := range inferConfigs() {
		for _, T := range []int{1, 2, 7, 50, 130} {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			inputs := randomInputs(T, cfg.InputDim, int64(100*T)+cfg.Seed)
			want, err := m.Forward(inputs)
			if err != nil {
				t.Fatal(err)
			}
			inf := m.NewInference()
			got, err := inf.Forward(inputs)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("cfg %+v T=%d", cfg, T)
			requireBitEqual(t, label, want, got)

			wantPred, err := m.Predict(inputs)
			if err != nil {
				t.Fatal(err)
			}
			gotPred, err := inf.Predict(inputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			for f := range wantPred {
				if wantPred[f] != gotPred[f] {
					t.Fatalf("%s: prediction %d differs", label, f)
				}
			}
		}
	}
}

// TestInferenceSessionReuse runs many different-length sequences through
// one session; every result must still match the reference, proving the
// scratch is fully re-initialized between calls.
func TestInferenceSessionReuse(t *testing.T) {
	cfg := Config{InputDim: 14, HiddenDim: 64, NumClasses: 2, Seed: 9}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inf := m.NewInference()
	for i, T := range []int{40, 3, 120, 1, 77, 40} {
		inputs := randomInputs(T, cfg.InputDim, int64(i)*17+1)
		want, err := m.Forward(inputs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inf.Forward(inputs)
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, fmt.Sprintf("call %d T=%d", i, T), want, got)
	}
}

// TestForwardBatchMatchesReference pins the multi-sequence batch entry
// point against per-sequence reference forwards, including mixed lengths,
// empty sequences, and unsorted length order.
func TestForwardBatchMatchesReference(t *testing.T) {
	cfg := Config{InputDim: 14, HiddenDim: 64, NumClasses: 2, Seed: 5}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{17, 80, 0, 80, 1, 44, 130, 2}
	seqs := make([][][]float64, len(lengths))
	for i, T := range lengths {
		seqs[i] = randomInputs(T, cfg.InputDim, int64(i)+500)
	}
	inf := m.NewInference()
	got, err := inf.ForwardBatch(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seqs) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(seqs))
	}
	for i, seq := range seqs {
		want, err := m.Forward(seq)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) == 0 {
			if got[i] != nil {
				t.Fatalf("seq %d: empty sequence should yield nil", i)
			}
			continue
		}
		requireBitEqual(t, fmt.Sprintf("batch seq %d T=%d", i, len(seq)), want, got[i])
	}

	// All-empty batch and empty batch.
	out, err := inf.ForwardBatch([][][]float64{nil, nil})
	if err != nil || len(out) != 2 || out[0] != nil || out[1] != nil {
		t.Fatalf("all-empty batch: %v, %v", out, err)
	}
	out, err = inf.ForwardBatch(nil)
	if err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

// TestInferenceErrors pins input validation on the batched path.
func TestInferenceErrors(t *testing.T) {
	m, err := New(Config{InputDim: 4, HiddenDim: 8, NumClasses: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inf := m.NewInference()
	if _, err := inf.Forward([][]float64{{1, 2}}); err == nil {
		t.Error("wrong input dim should error")
	}
	if _, err := inf.ForwardBatch([][][]float64{randomInputs(3, 4, 1), {{1}}}); err == nil {
		t.Error("wrong dim in batch should error")
	}
	probs, err := inf.Forward(nil)
	if err != nil || probs != nil {
		t.Errorf("empty forward: %v, %v", probs, err)
	}
	// The session must still work after an error.
	inputs := randomInputs(5, 4, 2)
	want, err := m.Forward(inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inf.Forward(inputs)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "post-error call", want, got)
}

// TestInferenceZeroAlloc pins the steady-state allocation count of the
// batched forward at zero (the same pin style as the obs and dsp layers).
func TestInferenceZeroAlloc(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inputs := randomInputs(100, 14, 42)
	inf := m.NewInference()
	var pred []int
	// Warm the scratch to steady state.
	if _, err := inf.Forward(inputs); err != nil {
		t.Fatal(err)
	}
	if pred, err = inf.Predict(inputs, pred); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := inf.Forward(inputs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Inference.Forward steady state allocates %v/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(10, func() {
		var err error
		pred, err = inf.Predict(inputs, pred)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Inference.Predict steady state allocates %v/op, want 0", allocs)
	}
}

// TestConcurrentInferenceSessions hammers one read-only model from many
// goroutines, each with a private session (the serve-worker sharing
// pattern); run under -race by the CI brnn job.
func TestConcurrentInferenceSessions(t *testing.T) {
	cfg := Config{InputDim: 14, HiddenDim: 32, NumClasses: 2, Seed: 7}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inputs := randomInputs(60, cfg.InputDim, 11)
	want, err := m.Forward(inputs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inf := m.NewInference()
			for i := 0; i < 20; i++ {
				got, err := inf.Forward(inputs)
				if err != nil {
					errs <- err
					return
				}
				for f := range want {
					for k := range want[f] {
						if want[f][k] != got[f][k] {
							errs <- fmt.Errorf("concurrent session diverged at frame %d", f)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPackedGemmMatchesReference pins packNT/apply bit-identical to the
// pure-Go blocked kernel across shapes that exercise full 16-lane blocks,
// scalar tails, tiny matrices (no blocks at all), and multi-row inputs.
func TestPackedGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, shape := range []struct{ n, k, r int }{
		{1, 64, 256}, {3, 14, 256}, {1, 5, 20}, {2, 33, 132},
		{1, 1, 4}, {7, 13, 16}, {4, 8, 15}, {1, 64, 17},
	} {
		w := NewMatrixRandom(shape.r, shape.k, rng)
		x := NewMatrixRandom(shape.n, shape.k, rng)
		want := make([]float64, shape.n*shape.r)
		got := make([]float64, shape.n*shape.r)
		gemmNT(want, x.Data, w.Data, shape.n, shape.k, shape.r)
		p := packNT(w.Data, shape.k, shape.r)
		p.apply(got, x.Data, shape.n)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("shape %+v: packed[%d] = %v, reference = %v",
					shape, i, got[i], want[i])
			}
		}
	}
}

// TestMulMatMatchesMulVec pins the blocked matrix-matrix kernel
// bit-identical to MulVec row by row, across shapes that exercise the
// panel and 4-row tail paths.
func TestMulMatMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, shape := range []struct{ n, k, r int }{
		{1, 1, 1}, {3, 5, 7}, {10, 14, 256}, {5, 64, 256}, {2, 64, 2}, {9, 13, 130},
	} {
		w := NewMatrixRandom(shape.r, shape.k, rng)
		x := NewMatrixRandom(shape.n, shape.k, rng)
		out := NewMatrix(shape.n, shape.r)
		if err := w.MulMat(x, out); err != nil {
			t.Fatal(err)
		}
		want := make([]float64, shape.r)
		for i := 0; i < shape.n; i++ {
			if err := w.MulVec(x.Data[i*shape.k:(i+1)*shape.k], want); err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if out.At(i, j) != want[j] {
					t.Fatalf("shape %+v: out(%d,%d) = %v, MulVec = %v",
						shape, i, j, out.At(i, j), want[j])
				}
			}
		}
	}
	// Shape validation.
	w := NewMatrix(4, 3)
	if err := w.MulMat(NewMatrix(2, 5), NewMatrix(2, 4)); err == nil {
		t.Error("mismatched inner dim should error")
	}
	if err := w.MulMat(NewMatrix(2, 3), NewMatrix(3, 4)); err == nil {
		t.Error("mismatched out rows should error")
	}
	if err := w.MulMat(NewMatrix(2, 3), NewMatrix(2, 5)); err == nil {
		t.Error("mismatched out cols should error")
	}
}
