//go:build amd64

package brnn

// gemmPackedEnabled reports whether the packed SIMD kernel is compiled in.
// The amd64 kernel uses only SSE2, which is part of the architecture
// baseline, so no runtime feature detection is needed.
const gemmPackedEnabled = true

// gemmPacked16 computes the 16 dot products out[l] = Σ_c x[c]·w[c*16+l]
// over an interleaved 16-lane weight block (see packNT). Each XMM lane is
// one output row's private accumulator advancing over c in increasing
// order, and MULPD/ADDPD round exactly like the scalar * and + of the
// reference kernels — FMA would fuse the rounding and is deliberately not
// used — so the result is bit-identical to gemmNT row by row.
//
// Preconditions: len(out) >= 16, len(w) >= 16*len(x).
//
//go:noescape
func gemmPacked16(out, x, w []float64)
