package brnn

import (
	"fmt"
	"math"
	"math/rand"
)

// lstmCell is one unidirectional LSTM layer. Gate order in the stacked
// weight matrices is input, forget, candidate, output.
type lstmCell struct {
	inputDim, hiddenDim int
	// wx is (4H x D), wh is (4H x H), b is (4H).
	wx, wh *Matrix
	b      []float64
}

func newLSTMCell(inputDim, hiddenDim int, rng *rand.Rand) *lstmCell {
	c := &lstmCell{
		inputDim:  inputDim,
		hiddenDim: hiddenDim,
		wx:        NewMatrixRandom(4*hiddenDim, inputDim, rng),
		wh:        NewMatrixRandom(4*hiddenDim, hiddenDim, rng),
		b:         make([]float64, 4*hiddenDim),
	}
	// Forget-gate bias starts at 1 so memory persists early in training.
	for i := hiddenDim; i < 2*hiddenDim; i++ {
		c.b[i] = 1
	}
	return c
}

// lstmTrace stores per-timestep activations needed for BPTT.
type lstmTrace struct {
	// inputs[t] is the input vector at t (not owned).
	inputs [][]float64
	// gates[t] holds i, f, g, o concatenated (4H) after nonlinearity.
	gates [][]float64
	// cells[t] and hidden[t] are c_t and h_t (H each).
	cells, hidden [][]float64
	// tanhC[t] is tanh(c_t), cached for the backward pass.
	tanhC [][]float64
}

// forward runs the cell over a sequence, returning hidden states and a
// trace for BPTT (nil trace members when train is false is unnecessary —
// the trace is cheap relative to the gradients, so it is always kept).
func (c *lstmCell) forward(inputs [][]float64) (*lstmTrace, error) {
	T := len(inputs)
	tr := &lstmTrace{
		inputs: inputs,
		gates:  make([][]float64, T),
		cells:  make([][]float64, T),
		hidden: make([][]float64, T),
		tanhC:  make([][]float64, T),
	}
	H := c.hiddenDim
	prevH := make([]float64, H)
	prevC := make([]float64, H)
	zx := make([]float64, 4*H)
	zh := make([]float64, 4*H)
	for t := 0; t < T; t++ {
		if len(inputs[t]) != c.inputDim {
			return nil, fmt.Errorf("brnn: input %d has dim %d, want %d", t, len(inputs[t]), c.inputDim)
		}
		if err := c.wx.MulVec(inputs[t], zx); err != nil {
			return nil, err
		}
		if err := c.wh.MulVec(prevH, zh); err != nil {
			return nil, err
		}
		gates := make([]float64, 4*H)
		cell := make([]float64, H)
		hid := make([]float64, H)
		tc := make([]float64, H)
		for j := 0; j < H; j++ {
			zi := zx[j] + zh[j] + c.b[j]
			zf := zx[H+j] + zh[H+j] + c.b[H+j]
			zg := zx[2*H+j] + zh[2*H+j] + c.b[2*H+j]
			zo := zx[3*H+j] + zh[3*H+j] + c.b[3*H+j]
			i := sigmoid(zi)
			f := sigmoid(zf)
			g := math.Tanh(zg)
			o := sigmoid(zo)
			gates[j], gates[H+j], gates[2*H+j], gates[3*H+j] = i, f, g, o
			cell[j] = f*prevC[j] + i*g
			tc[j] = math.Tanh(cell[j])
			hid[j] = o * tc[j]
		}
		tr.gates[t] = gates
		tr.cells[t] = cell
		tr.hidden[t] = hid
		tr.tanhC[t] = tc
		prevH, prevC = hid, cell
	}
	return tr, nil
}

// lstmGrads accumulates parameter gradients for one cell.
type lstmGrads struct {
	wx, wh *Matrix
	b      []float64
}

func newLSTMGrads(c *lstmCell) *lstmGrads {
	return &lstmGrads{
		wx: NewMatrix(c.wx.Rows, c.wx.Cols),
		wh: NewMatrix(c.wh.Rows, c.wh.Cols),
		b:  make([]float64, len(c.b)),
	}
}

// backward propagates per-timestep hidden-state gradients dH through the
// trace, accumulating parameter gradients into g and returning the
// gradients with respect to the inputs.
func (c *lstmCell) backward(tr *lstmTrace, dH [][]float64, g *lstmGrads) ([][]float64, error) {
	T := len(tr.hidden)
	if len(dH) != T {
		return nil, fmt.Errorf("brnn: dH length %d, want %d", len(dH), T)
	}
	H := c.hiddenDim
	dInputs := make([][]float64, T)
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	dz := make([]float64, 4*H)
	tmpH := make([]float64, H)
	tmpX := make([]float64, c.inputDim)
	for t := T - 1; t >= 0; t-- {
		var prevC, prevH []float64
		if t > 0 {
			prevC = tr.cells[t-1]
			prevH = tr.hidden[t-1]
		} else {
			prevC = make([]float64, H)
			prevH = make([]float64, H)
		}
		gates := tr.gates[t]
		for j := 0; j < H; j++ {
			dh := dH[t][j] + dhNext[j]
			i, f, gg, o := gates[j], gates[H+j], gates[2*H+j], gates[3*H+j]
			tc := tr.tanhC[t][j]
			dc := dh*o*(1-tc*tc) + dcNext[j]
			dz[j] = dc * gg * i * (1 - i)         // input gate pre-activation
			dz[H+j] = dc * prevC[j] * f * (1 - f) // forget gate
			dz[2*H+j] = dc * i * (1 - gg*gg)      // candidate
			dz[3*H+j] = dh * tc * o * (1 - o)     // output gate
			dcNext[j] = dc * f
		}
		if err := g.wx.AddOuterScaled(dz, tr.inputs[t], 1); err != nil {
			return nil, err
		}
		if err := g.wh.AddOuterScaled(dz, prevH, 1); err != nil {
			return nil, err
		}
		for j := range dz {
			g.b[j] += dz[j]
		}
		if err := c.wh.MulVecTransposed(dz, tmpH); err != nil {
			return nil, err
		}
		copy(dhNext, tmpH)
		if err := c.wx.MulVecTransposed(dz, tmpX); err != nil {
			return nil, err
		}
		din := make([]float64, c.inputDim)
		copy(din, tmpX)
		dInputs[t] = din
	}
	return dInputs, nil
}

// params returns the cell's parameter slices for the optimizer.
func (c *lstmCell) params() [][]float64 {
	return [][]float64{c.wx.Data, c.wh.Data, c.b}
}

func (g *lstmGrads) slices() [][]float64 {
	return [][]float64{g.wx.Data, g.wh.Data, g.b}
}

func (g *lstmGrads) zero() {
	g.wx.Zero()
	g.wh.Zero()
	for i := range g.b {
		g.b[i] = 0
	}
}
