package brnn_test

import (
	"testing"

	"vibguard/internal/brnn/brnnbench"
)

// The benchmark bodies live in brnnbench so that cmd/benchbrnn (which
// writes the BENCH_brnn.json baseline) measures exactly the same kernels
// as `go test -bench` / `make bench-brnn` — the dspbench arrangement.

func runGroup(b *testing.B, group string) {
	ran := false
	for _, c := range brnnbench.Cases() {
		if c.Group == group {
			ran = true
			b.Run(c.Name, c.Fn)
		}
	}
	if !ran {
		b.Fatalf("no benchmark cases in group %q", group)
	}
}

// BenchmarkForward measures single-sequence inference on the paper config
// (64 units per direction, 14 MFCCs, ~1 s of frames): the batched
// Inference session (zero steady-state allocations) next to the per-frame
// reference path.
func BenchmarkForward(b *testing.B) { runGroup(b, "Forward") }

// BenchmarkForwardBatch measures the multi-sequence batch entry point
// against a per-sequence loop over the reference path.
func BenchmarkForwardBatch(b *testing.B) { runGroup(b, "ForwardBatch") }

// BenchmarkPredict measures argmax inference into a reused buffer.
func BenchmarkPredict(b *testing.B) { runGroup(b, "Predict") }

// BenchmarkMulMat measures the blocked matrix-matrix kernel against the
// equivalent per-row MulVec loop on the Wx projection shape.
func BenchmarkMulMat(b *testing.B) { runGroup(b, "MulMat") }
