package detector

import (
	"math/rand"
	"testing"

	"vibguard/internal/acoustics"
	"vibguard/internal/brnn"
	"vibguard/internal/device"
	"vibguard/internal/phoneme"
	"vibguard/internal/segment"
	"vibguard/internal/selection"
	"vibguard/internal/sensing"
)

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodAudio:     "audio-domain baseline",
		MethodVibration: "vibration-domain baseline",
		MethodFull:      "our defense system",
		Method(0):       "unknown",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w := device.NewFossilGen5()
	seg := &StaticSegmenter{}
	cases := []Config{
		{Method: MethodAudio, AudioFFTSize: 100}, // not pow2
		{Method: MethodVibration},                // no wearable
		{Method: MethodFull, Wearable: w},        // no segmenter
		{Method: Method(9), Wearable: w},         // unknown method
		{Method: MethodFull, Wearable: w, Segmenter: seg, Sensing: sensing.Config{FFTSize: 63}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	good := DefaultConfig(w, seg)
	d, err := New(good)
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if d.Method() != MethodFull {
		t.Error("method mismatch")
	}
	if d.Threshold() != good.Threshold {
		t.Error("threshold mismatch")
	}
}

func TestDetectUsesThreshold(t *testing.T) {
	d, err := New(DefaultConfig(device.NewFossilGen5(), &StaticSegmenter{}))
	if err != nil {
		t.Fatal(err)
	}
	th := d.Threshold()
	if !d.Detect(th - 0.01) {
		t.Error("score below threshold should flag attack")
	}
	if d.Detect(th + 0.01) {
		t.Error("score above threshold should pass")
	}
}

// scenario builds one legit and one attack pair of recordings.
func scenario(t *testing.T, seed int64) (utt *phoneme.Utterance, legitVA, legitWear, atkVA, atkWear []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	synth, err := phoneme.NewSynthesizer(phoneme.NewStudioVoicePool(1, seed)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err = synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	room, err := acoustics.RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	transmit := func(spl, dist float64, barrier bool) []float64 {
		p, err := room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: barrier, SampleRate: 16000,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	legitVA = transmit(72, 1.5, false)
	legitWear = transmit(72, 0.3, false)
	atkVA = transmit(75, 2.1, true)
	atkWear = transmit(75, 2.4, true)
	return utt, legitVA, legitWear, atkVA, atkWear
}

func TestAllMethodsSeparateLegitFromAttack(t *testing.T) {
	utt, legitVA, legitWear, atkVA, atkWear := scenario(t, 3)
	spans := segment.OracleSpans(utt, selection.CanonicalSelected())
	w := device.NewFossilGen5()
	for _, method := range []Method{MethodAudio, MethodVibration, MethodFull} {
		cfg := DefaultConfig(w, &StaticSegmenter{Spans: spans})
		cfg.Method = method
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		legitScore, err := d.Score(legitVA, legitWear, rng)
		if err != nil {
			t.Fatal(err)
		}
		attackScore, err := d.Score(atkVA, atkWear, rng)
		if err != nil {
			t.Fatal(err)
		}
		if legitScore <= attackScore {
			t.Errorf("%v: legit %v not above attack %v", method, legitScore, attackScore)
		}
	}
}

func TestFullScoreNoEffectivePhonemes(t *testing.T) {
	d, err := New(DefaultConfig(device.NewFossilGen5(), &StaticSegmenter{}))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	score, err := d.Score(make([]float64, 16000), make([]float64, 16000), rng)
	if err != nil {
		t.Fatal(err)
	}
	if score != -1 {
		t.Errorf("no effective phonemes should score -1, got %v", score)
	}
}

func TestBRNNSegmenterImplementsInterface(t *testing.T) {
	// Compile-time assertions exist; check runtime behaviour with an
	// untrained detector (spans may be arbitrary but must not error).
	det, err := segment.NewDetector(selection.CanonicalSelected(),
		briefModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	seg := &BRNNSegmenter{Detector: det}
	spans, err := seg.EffectiveSpans(make([]float64, 8000))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range spans {
		if sp.End <= sp.Start {
			t.Error("invalid span")
		}
	}
}

func TestAudioScoreErrors(t *testing.T) {
	cfg := Config{Method: MethodAudio, AudioFFTSize: 256}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(nil, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty VA recording should error")
	}
}

func briefModelCfg() brnn.Config {
	return brnn.Config{InputDim: 14, HiddenDim: 8, NumClasses: 2, Seed: 1}
}
