package detector

import (
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/acoustics"
	"vibguard/internal/brnn"
	"vibguard/internal/device"
	"vibguard/internal/phoneme"
	"vibguard/internal/segment"
	"vibguard/internal/selection"
	"vibguard/internal/sensing"
)

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodAudio:     "audio-domain baseline",
		MethodVibration: "vibration-domain baseline",
		MethodFull:      "our defense system",
		Method(0):       "unknown",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w := device.NewFossilGen5()
	seg := &StaticSegmenter{}
	rate := DefaultSampleRate
	cases := []Config{
		{Method: MethodAudio, AudioFFTSize: 100, SampleRate: rate}, // not pow2
		{Method: MethodVibration, SampleRate: rate},                // no wearable
		{Method: MethodFull, Wearable: w, Segmenter: seg},          // no sample rate
		{Method: Method(9), Wearable: w, SampleRate: rate},         // unknown method
		{Method: MethodFull, Wearable: w, Segmenter: seg, SampleRate: rate, Sensing: sensing.Config{FFTSize: 63}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	good := DefaultConfig(w, seg)
	d, err := New(good)
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if d.Method() != MethodFull {
		t.Error("method mismatch")
	}
	if d.Threshold() != good.Threshold {
		t.Error("threshold mismatch")
	}
}

func TestDetectUsesThreshold(t *testing.T) {
	d, err := New(DefaultConfig(device.NewFossilGen5(), &StaticSegmenter{}))
	if err != nil {
		t.Fatal(err)
	}
	th := d.Threshold()
	if !d.Detect(th - 0.01) {
		t.Error("score below threshold should flag attack")
	}
	if d.Detect(th + 0.01) {
		t.Error("score above threshold should pass")
	}
}

// scenario builds one legit and one attack pair of recordings.
func scenario(t *testing.T, seed int64) (utt *phoneme.Utterance, legitVA, legitWear, atkVA, atkWear []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	synth, err := phoneme.NewSynthesizer(phoneme.NewStudioVoicePool(1, seed)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err = synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	room, err := acoustics.RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	transmit := func(spl, dist float64, barrier bool) []float64 {
		p, err := room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: barrier, SampleRate: 16000,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	legitVA = transmit(72, 1.5, false)
	legitWear = transmit(72, 0.3, false)
	atkVA = transmit(75, 2.1, true)
	atkWear = transmit(75, 2.4, true)
	return utt, legitVA, legitWear, atkVA, atkWear
}

func TestAllMethodsSeparateLegitFromAttack(t *testing.T) {
	utt, legitVA, legitWear, atkVA, atkWear := scenario(t, 3)
	spans := segment.OracleSpans(utt, selection.CanonicalSelected())
	w := device.NewFossilGen5()
	for _, method := range []Method{MethodAudio, MethodVibration, MethodFull} {
		cfg := DefaultConfig(w, &StaticSegmenter{Spans: spans})
		cfg.Method = method
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		legitScore, err := d.Score(legitVA, legitWear, rng)
		if err != nil {
			t.Fatal(err)
		}
		attackScore, err := d.Score(atkVA, atkWear, rng)
		if err != nil {
			t.Fatal(err)
		}
		if legitScore <= attackScore {
			t.Errorf("%v: legit %v not above attack %v", method, legitScore, attackScore)
		}
	}
}

func TestFullScoreNoEffectivePhonemes(t *testing.T) {
	d, err := New(DefaultConfig(device.NewFossilGen5(), &StaticSegmenter{}))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	score, err := d.Score(make([]float64, 16000), make([]float64, 16000), rng)
	if err != nil {
		t.Fatal(err)
	}
	if score != -1 {
		t.Errorf("no effective phonemes should score -1, got %v", score)
	}
}

func TestBRNNSegmenterImplementsInterface(t *testing.T) {
	// Compile-time assertions exist; check runtime behaviour with an
	// untrained detector (spans may be arbitrary but must not error).
	det, err := segment.NewDetector(selection.CanonicalSelected(),
		briefModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	seg := &BRNNSegmenter{Detector: det}
	spans, err := seg.EffectiveSpans(make([]float64, 8000))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range spans {
		if sp.End <= sp.Start {
			t.Error("invalid span")
		}
	}
}

func TestAudioScoreErrors(t *testing.T) {
	cfg := Config{Method: MethodAudio, AudioFFTSize: 256, SampleRate: DefaultSampleRate}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(nil, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty VA recording should error")
	}
}

// TestAudioScoreUsesConfiguredRate guards the sample-rate plumbing: the
// audio baseline's 1 kHz/4 kHz band edges must follow Config.SampleRate,
// so the same waveform interpreted at a doubled rate (halving every
// physical frequency under the fixed band edges) must score differently.
func TestAudioScoreUsesConfiguredRate(t *testing.T) {
	mk := func(rate float64) *Detector {
		d, err := New(Config{Method: MethodAudio, AudioFFTSize: 256, SampleRate: rate})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// A 3 kHz tone at 16 kHz: inside the 1-4 kHz high band. The same
	// samples declared as 32 kHz audio contain a 6 kHz tone: outside it.
	x := make([]float64, 4096)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 3000 * float64(i) / 16000)
	}
	rng := rand.New(rand.NewSource(1))
	at16k, err := mk(16000).Score(x, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	at32k, err := mk(32000).Score(x, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if at16k <= at32k {
		t.Errorf("3kHz tone: score at 16kHz (%v) should exceed score at 32kHz (%v)", at16k, at32k)
	}
}

// TestDefaultThresholdUnified asserts the single-source-of-truth default:
// DefaultConfig must carry the exported constant, and the constant must be
// the calibrated equal-error value.
func TestDefaultThresholdUnified(t *testing.T) {
	cfg := DefaultConfig(device.NewFossilGen5(), &StaticSegmenter{})
	if cfg.Threshold != DefaultThreshold {
		t.Errorf("DefaultConfig threshold %v != DefaultThreshold %v", cfg.Threshold, DefaultThreshold)
	}
	if DefaultThreshold != 0.45 {
		t.Errorf("DefaultThreshold = %v, want calibrated 0.45", DefaultThreshold)
	}
}

// TestScoreWithSpansMatchesScore proves the per-call span path computes
// the same score as the segmenter path when given the segmenter's spans.
func TestScoreWithSpansMatchesScore(t *testing.T) {
	utt, legitVA, legitWear, _, _ := scenario(t, 21)
	spans := segment.OracleSpans(utt, selection.CanonicalSelected())
	d, err := New(DefaultConfig(device.NewFossilGen5(), &StaticSegmenter{Spans: spans}))
	if err != nil {
		t.Fatal(err)
	}
	viaSegmenter, err := d.Score(legitVA, legitWear, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	viaSpans, err := d.ScoreWithSpans(legitVA, legitWear, spans, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if viaSegmenter != viaSpans {
		t.Errorf("Score %v != ScoreWithSpans %v for identical spans and rng", viaSegmenter, viaSpans)
	}
}

// TestScoreRequiresSegmenter: a nil-segmenter MethodFull detector is valid
// (the parallel engine supplies spans per call) but its Score entry point
// must fail loudly rather than segment nothing.
func TestScoreRequiresSegmenter(t *testing.T) {
	d, err := New(DefaultConfig(device.NewFossilGen5(), nil))
	if err != nil {
		t.Fatalf("nil segmenter should be constructible: %v", err)
	}
	if _, err := d.Score(make([]float64, 16000), make([]float64, 16000), rand.New(rand.NewSource(1))); err == nil {
		t.Error("Score without a segmenter should error")
	}
	if _, err := d.ScoreWithSpans(make([]float64, 16000), make([]float64, 16000), nil, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("ScoreWithSpans should work without a segmenter: %v", err)
	}
}

func briefModelCfg() brnn.Config {
	return brnn.Config{InputDim: 14, HiddenDim: 8, NumClasses: 2, Seed: 1}
}
