package detector

import (
	"math"
	"testing"

	"vibguard/internal/device"
)

// newThresholdDetector builds a detector with the given decision threshold
// (everything else default).
func newThresholdDetector(t *testing.T, threshold float64) *Detector {
	t.Helper()
	cfg := DefaultConfig(device.NewFossilGen5(), &StaticSegmenter{})
	cfg.Threshold = threshold
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDetectBoundary pins the exact decision boundary: Detect is a strict
// less-than, so a score exactly at the threshold — and the next float64
// above it — passes, while the next float64 below it is flagged. The
// Nextafter cases make the contract bit-exact: moving the score by one ULP
// across the threshold must flip the verdict, and nothing closer can.
func TestDetectBoundary(t *testing.T) {
	cases := []struct {
		name       string
		threshold  float64
		score      float64
		wantAttack bool
	}{
		{"default at threshold", DefaultThreshold, DefaultThreshold, false},
		{"default one ulp below", DefaultThreshold, math.Nextafter(DefaultThreshold, math.Inf(-1)), true},
		{"default one ulp above", DefaultThreshold, math.Nextafter(DefaultThreshold, math.Inf(1)), false},
		{"default well below", DefaultThreshold, 0.1, true},
		{"default well above", DefaultThreshold, 0.9, false},
		{"custom at threshold", 0.7, 0.7, false},
		{"custom one ulp below", 0.7, math.Nextafter(0.7, math.Inf(-1)), true},
		{"custom one ulp above", 0.7, math.Nextafter(0.7, math.Inf(1)), false},
		{"zero threshold at", 0, 0, false},
		{"zero threshold below", 0, math.Nextafter(0, math.Inf(-1)), true},
		{"negative score below threshold", DefaultThreshold, -0.3, true},
		{"perfect correlation", DefaultThreshold, 1, false},
		{"perfect anticorrelation", DefaultThreshold, -1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newThresholdDetector(t, tc.threshold)
			if got := d.Detect(tc.score); got != tc.wantAttack {
				t.Errorf("Detect(%v) with threshold %v = %v, want %v",
					tc.score, tc.threshold, got, tc.wantAttack)
			}
		})
	}
}

// TestDetectNonFiniteScores documents how the boundary treats non-finite
// scores if one ever reaches Detect (Score refuses to return them): NaN
// compares false against everything so it passes, which is exactly why the
// pipeline must keep returning ErrNonFiniteScore upstream.
func TestDetectNonFiniteScores(t *testing.T) {
	d := newThresholdDetector(t, DefaultThreshold)
	if d.Detect(math.NaN()) {
		t.Error("NaN < threshold must compare false; the guard lives in Score, not Detect")
	}
	if !d.Detect(math.Inf(-1)) {
		t.Error("-Inf is below any threshold")
	}
	if d.Detect(math.Inf(1)) {
		t.Error("+Inf is above any threshold")
	}
}
