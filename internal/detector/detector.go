// Package detector implements the thru-barrier attack detectors compared
// in the evaluation: the paper's full system (2D correlation of
// vibration-domain features on barrier-effect-sensitive phoneme segments,
// Section VI-C), a vibration-domain baseline without phoneme selection,
// and an audio-domain correlation baseline.
//
// All three produce a similarity score in [-1, 1]; legitimate commands
// score high and thru-barrier attacks score low (the adversary's
// low-frequency-dominated sound becomes noisy in the vibration domain), so
// a threshold on the score separates them without any training.
package detector

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/device"
	"vibguard/internal/dsp"
	"vibguard/internal/obs"
	"vibguard/internal/segment"
	"vibguard/internal/sensing"
)

// Stage timers of the "pipeline.stage.*" family (see internal/core/obs.go):
// phoneme-select is the span extraction of Section VI-A, correlate the 2D
// correlation of Eq. (6). Both record into the process-wide registry with
// lock-free, allocation-free observations.
var (
	stagePhonemeSelect = obs.Default().StageTimer("pipeline.stage.phoneme-select")
	stageCorrelate     = obs.Default().StageTimer("pipeline.stage.correlate")
)

// DefaultThreshold is the decision threshold on the correlation score,
// calibrated at the equal-error point of the evaluation datasets. It is
// the single source of truth for the default: package core and every
// config path reference it, so the two layers cannot drift apart.
const DefaultThreshold = 0.45

// DefaultSampleRate is the audio sampling rate of all recordings in the
// paper (16 kHz).
const DefaultSampleRate = 16000.0

// Method selects one of the three detectors of the evaluation.
type Method int

// Detection methods.
const (
	// MethodAudio correlates audio-domain spectrograms directly (the
	// audio-domain baseline of Figs. 9-11).
	MethodAudio Method = iota + 1
	// MethodVibration correlates vibration-domain features of the whole
	// command, without phoneme selection (the vibration-domain baseline).
	MethodVibration
	// MethodFull is the proposed system: vibration-domain correlation on
	// barrier-effect-sensitive phoneme segments only.
	MethodFull
)

// String names the method as it appears in the paper's figures.
func (m Method) String() string {
	switch m {
	case MethodAudio:
		return "audio-domain baseline"
	case MethodVibration:
		return "vibration-domain baseline"
	case MethodFull:
		return "our defense system"
	default:
		return "unknown"
	}
}

// Segmenter provides effective-phoneme spans for a VA recording. The
// production implementation is the BRNN detector of package segment; the
// evaluation can also use ground-truth alignments.
type Segmenter interface {
	// EffectiveSpans returns the sample spans of barrier-effect-sensitive
	// phonemes in the recording.
	EffectiveSpans(recording []float64) ([]segment.Span, error)
}

// BRNNSegmenter adapts segment.Detector to the Segmenter interface.
type BRNNSegmenter struct {
	Detector *segment.Detector
}

var _ Segmenter = (*BRNNSegmenter)(nil)

// The coalescer batches concurrent EffectiveSpans calls into single BRNN
// passes; serve workers share one as their segmenter.
var _ Segmenter = (*segment.Coalescer)(nil)

// EffectiveSpans runs frame detection and span merging.
func (s *BRNNSegmenter) EffectiveSpans(recording []float64) ([]segment.Span, error) {
	frames, err := s.Detector.DetectFrames(recording)
	if err != nil {
		return nil, err
	}
	return s.Detector.Spans(frames), nil
}

// StaticSegmenter returns precomputed spans regardless of input, used with
// ground-truth alignments in controlled experiments.
type StaticSegmenter struct {
	Spans []segment.Span
}

var _ Segmenter = (*StaticSegmenter)(nil)

// EffectiveSpans returns the fixed spans.
func (s *StaticSegmenter) EffectiveSpans([]float64) ([]segment.Span, error) {
	return s.Spans, nil
}

// Config parameterizes a detector.
type Config struct {
	// Method selects the detector variant.
	Method Method
	// Wearable performs cross-domain sensing (vibration methods).
	Wearable *device.Wearable
	// Segmenter provides effective-phoneme spans (MethodFull only). It
	// may be nil when every score call supplies spans directly through
	// ScoreWithSpans; Score returns an error in that case.
	Segmenter Segmenter
	// Sensing configures vibration feature extraction.
	Sensing sensing.Config
	// AudioFFTSize is the STFT size for the audio-domain baseline.
	AudioFFTSize int
	// Threshold is the decision threshold: scores below it are flagged
	// as attacks.
	Threshold float64
	// SampleRate of the recordings in Hz. The audio-domain baseline's
	// 1 kHz/4 kHz band edges are computed against it.
	SampleRate float64
}

// DefaultConfig returns the full-system configuration with the paper's
// parameters and a threshold calibrated on the evaluation datasets.
func DefaultConfig(w *device.Wearable, seg Segmenter) Config {
	return Config{
		Method:       MethodFull,
		Wearable:     w,
		Segmenter:    seg,
		Sensing:      sensing.DefaultConfig(),
		AudioFFTSize: 256,
		Threshold:    DefaultThreshold,
		SampleRate:   DefaultSampleRate,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("detector: sample rate %v must be positive", c.SampleRate)
	}
	switch c.Method {
	case MethodAudio:
		if err := dsp.ValidateLength(c.AudioFFTSize); err != nil {
			return fmt.Errorf("detector: %w", err)
		}
	case MethodVibration:
		if c.Wearable == nil {
			return fmt.Errorf("detector: vibration method needs a wearable")
		}
	case MethodFull:
		if c.Wearable == nil {
			return fmt.Errorf("detector: full method needs a wearable")
		}
	default:
		return fmt.Errorf("detector: unknown method %d", c.Method)
	}
	if c.Method != MethodAudio {
		if err := c.Sensing.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Detector scores pairs of recordings and flags thru-barrier attacks.
type Detector struct {
	cfg Config
}

// New creates a detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Method returns the detector's method.
func (d *Detector) Method() Method { return d.cfg.Method }

// Threshold returns the decision threshold.
func (d *Detector) Threshold() float64 { return d.cfg.Threshold }

// Score computes the similarity score between the VA recording and the
// (already synchronized) wearable recording. Higher means more likely
// legitimate. The rng drives the stochastic cross-domain sensing. For
// MethodFull the configured Segmenter runs exactly once; callers that
// already hold the spans (or provide them per call, like the parallel
// evaluation engine) should use ScoreWithSpans instead.
func (d *Detector) Score(vaRec, wearRec []float64, rng *rand.Rand) (float64, error) {
	var spans []segment.Span
	if d.cfg.Method == MethodFull {
		if d.cfg.Segmenter == nil {
			return 0, fmt.Errorf("detector: full method needs a segmenter (or use ScoreWithSpans)")
		}
		var err error
		spans, err = d.cfg.Segmenter.EffectiveSpans(vaRec)
		if err != nil {
			return 0, fmt.Errorf("detector: %w", err)
		}
	}
	return d.ScoreWithSpans(vaRec, wearRec, spans, rng)
}

// ErrNonFiniteScore is returned when a detector produces a NaN or ±Inf
// similarity score — degenerate features from corrupt input. The defense
// layer guarantees callers never see a non-finite score as a value, so a
// threshold comparison can never silently mis-verdict on NaN (which
// compares false against every threshold).
var ErrNonFiniteScore = errors.New("detector: non-finite similarity score")

// ScoreWithSpans scores the pair using caller-provided effective-phoneme
// spans, bypassing the configured Segmenter entirely. It is the
// concurrency-safe entry point: the detector reads only immutable
// configuration, so any number of goroutines may call it at once (each
// with its own rng). The spans are ignored by the audio- and
// vibration-domain baselines. The returned score is always finite; a
// degenerate computation yields ErrNonFiniteScore instead.
func (d *Detector) ScoreWithSpans(vaRec, wearRec []float64, spans []segment.Span, rng *rand.Rand) (float64, error) {
	var score float64
	var err error
	switch d.cfg.Method {
	case MethodAudio:
		score, err = d.audioScore(vaRec, wearRec)
	case MethodVibration:
		score, err = d.vibrationScore(vaRec, wearRec, rng)
	default:
		score, err = d.fullScore(vaRec, wearRec, spans, rng)
	}
	if err != nil {
		return 0, err
	}
	if math.IsNaN(score) || math.IsInf(score, 0) {
		return 0, ErrNonFiniteScore
	}
	return score, nil
}

// Detect reports whether a score indicates a thru-barrier attack.
func (d *Detector) Detect(score float64) bool { return score < d.cfg.Threshold }

// DetectAt is Detect against an explicit threshold — the per-user
// calibrated path: the profile layer supplies an effective threshold
// (DefaultThreshold plus a clamped personal offset) without rebuilding
// the detector. The comparison is identical to Detect's strict <, so
// DetectAt(score, d.Threshold()) ≡ d.Detect(score) bit for bit.
func DetectAt(score, threshold float64) bool { return score < threshold }

// CorrelateSegments senses two already-extracted effective-phoneme segment
// signals in the vibration domain and returns the Eq. (6) correlation
// score together with the number of overlapping (frame, bin) cells that
// entered it — the sample size behind the streaming pipeline's
// confidence-interval early exit. It is the inner loop of fullScore with
// the span extraction hoisted out (the streaming inspector extracts only
// the completed spans itself). MethodFull only; empty segments return the
// minimum score with zero cells, mirroring fullScore's no-usable-content
// rule. The returned score is always finite.
func (d *Detector) CorrelateSegments(vaSeg, wearSeg []float64, rng *rand.Rand) (float64, int, error) {
	if d.cfg.Method != MethodFull {
		return 0, 0, fmt.Errorf("detector: CorrelateSegments needs MethodFull, have %v", d.cfg.Method)
	}
	if len(vaSeg) == 0 || len(wearSeg) == 0 {
		return -1, 0, nil
	}
	featA, err := sensing.SenseFeatures(d.cfg.Wearable, vaSeg, d.cfg.Sensing, rng)
	if err != nil {
		return 0, 0, err
	}
	featB, err := sensing.SenseFeatures(d.cfg.Wearable, wearSeg, d.cfg.Sensing, rng)
	if err != nil {
		return 0, 0, err
	}
	sp := stageCorrelate.Start()
	score := dsp.Correlate2D(featA, featB)
	sp.End()
	if math.IsNaN(score) || math.IsInf(score, 0) {
		return 0, 0, ErrNonFiniteScore
	}
	frames := featA.NumFrames()
	if featB.NumFrames() < frames {
		frames = featB.NumFrames()
	}
	bins := featA.NumBins()
	if featB.NumBins() < bins {
		bins = featB.NumBins()
	}
	return score, frames * bins, nil
}

// audioScore is the audio-domain baseline the paper describes (and finds
// unreliable) in Section I: examine the high-frequency spectral energy of
// the VA recording. Thru-barrier sound loses its high band, so a low
// high-frequency energy fraction suggests an attack — but some voices
// inherently have little high-frequency energy, so legitimate commands
// from dark voices at a distance are misclassified, which is exactly the
// weakness Figs. 9-11 quantify. The fraction is mapped through a smooth
// squash so scores live on the same [0, 1) scale as the correlators.
func (d *Detector) audioScore(vaRec, wearRec []float64) (float64, error) {
	_ = wearRec // the audio-domain check only uses the VA recording
	if len(vaRec) == 0 {
		return 0, fmt.Errorf("detector: empty VA recording")
	}
	spec := dsp.PowerSpectrum(vaRec)
	lowCut := dsp.FrequencyBin(1000, len(vaRec), d.cfg.SampleRate)
	highCut := dsp.FrequencyBin(4000, len(vaRec), d.cfg.SampleRate)
	var low, high float64
	for k := 1; k < len(spec); k++ {
		switch {
		case k <= lowCut:
			low += spec[k]
		case k <= highCut:
			high += spec[k]
		}
	}
	if low+high == 0 {
		return 0, nil
	}
	ratio := high / (low + high)
	// Squash: ratio ~0.01 (thru-barrier) maps near 0.2, ratio ~0.1+
	// (direct broadband speech) approaches 1.
	return 1 - math.Exp(-ratio/0.04), nil
}

// vibrationScore senses both recordings in the vibration domain and
// correlates the features (Eq. 6) without phoneme selection.
func (d *Detector) vibrationScore(vaRec, wearRec []float64, rng *rand.Rand) (float64, error) {
	featA, err := sensing.SenseFeatures(d.cfg.Wearable, vaRec, d.cfg.Sensing, rng)
	if err != nil {
		return 0, err
	}
	featB, err := sensing.SenseFeatures(d.cfg.Wearable, wearRec, d.cfg.Sensing, rng)
	if err != nil {
		return 0, err
	}
	sp := stageCorrelate.Start()
	score := dsp.Correlate2D(featA, featB)
	sp.End()
	return score, nil
}

// fullScore is the proposed system: apply the effective-phoneme spans of
// the VA recording to both recordings (Section VI-A), then correlate the
// vibration-domain features of the extracted segments.
func (d *Detector) fullScore(vaRec, wearRec []float64, spans []segment.Span, rng *rand.Rand) (float64, error) {
	sp := stagePhonemeSelect.Start()
	vaSeg := segment.ExtractSpans(vaRec, spans)
	wearSeg := segment.ExtractSpans(wearRec, spans)
	sp.End()
	if len(vaSeg) == 0 || len(wearSeg) == 0 {
		// No effective phonemes found: the command has no usable content,
		// which itself is suspicious; return the minimum score.
		return -1, nil
	}
	featA, err := sensing.SenseFeatures(d.cfg.Wearable, vaSeg, d.cfg.Sensing, rng)
	if err != nil {
		return 0, err
	}
	featB, err := sensing.SenseFeatures(d.cfg.Wearable, wearSeg, d.cfg.Sensing, rng)
	if err != nil {
		return 0, err
	}
	sp = stageCorrelate.Start()
	score := dsp.Correlate2D(featA, featB)
	sp.End()
	return score, nil
}
