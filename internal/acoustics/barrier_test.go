package acoustics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vibguard/internal/dsp"
)

func TestMaterialString(t *testing.T) {
	if Glass.String() != "glass" || Wood.String() != "wood" || Brick.String() != "brick" {
		t.Error("material names wrong")
	}
	if Material(0).String() != "unknown" {
		t.Error("zero material should be unknown")
	}
}

func TestAlphaShapeForGlassAndWood(t *testing.T) {
	// The attenuation coefficient follows the standard panel
	// transmission-loss shape: monotone mass-law rise up to ~1.8 kHz, a
	// coincidence dip near 2.5 kHz, then damping-controlled rise again.
	for _, m := range []Material{Glass, Wood} {
		prev := -1.0
		for f := 50.0; f <= 1800; f += 50 {
			a := m.Alpha(f)
			if a < prev {
				t.Fatalf("%v: alpha not monotonic at %vHz", m, f)
			}
			prev = a
		}
		// Coincidence dip: 2.5 kHz must attenuate less than 1.8 kHz.
		if m.Alpha(2550) >= m.Alpha(1800) {
			t.Errorf("%v: no coincidence dip: alpha(2550)=%v >= alpha(1800)=%v",
				m, m.Alpha(2550), m.Alpha(1800))
		}
		// Above the dip the loss recovers.
		if m.Alpha(5000) <= m.Alpha(2550) {
			t.Errorf("%v: no recovery above the dip", m)
		}
		// High-frequency alpha must be much larger than low-frequency.
		if m.Alpha(3000) < 3*m.Alpha(100) {
			t.Errorf("%v: alpha(3k)=%v not >> alpha(100)=%v", m, m.Alpha(3000), m.Alpha(100))
		}
	}
}

func TestBrickAttenuatesBroadband(t *testing.T) {
	// Brick absorbs heavily at ALL frequencies: even the low band must be
	// hard to get through a 20 cm wall.
	if loss := BrickWall.TransmissionLossDB(100); loss < 30 {
		t.Errorf("brick wall low-frequency loss %v dB, want >= 30", loss)
	}
	if loss := BrickWall.TransmissionLossDB(3000); loss < 40 {
		t.Errorf("brick wall high-frequency loss %v dB, want >= 40", loss)
	}
}

func TestBarrierEffectFrequencySelectivity(t *testing.T) {
	// The barrier effect (Section III-B): glass window and wooden door pass
	// low frequencies with only a few dB of loss but attenuate >500 Hz
	// heavily.
	for _, b := range []Barrier{GlassWindow, WoodenDoor} {
		lowLoss := b.TransmissionLossDB(150)
		highLoss := b.TransmissionLossDB(3000)
		if lowLoss > 8 {
			t.Errorf("%s: low-frequency loss %v dB, want <= 8", b.Name, lowLoss)
		}
		if highLoss < 20 {
			t.Errorf("%s: high-frequency loss %v dB, want >= 20", b.Name, highLoss)
		}
		if highLoss < lowLoss+12 {
			t.Errorf("%s: selectivity %v dB, want >= 12", b.Name, highLoss-lowLoss)
		}
	}
}

func TestBarrierGainBounds(t *testing.T) {
	f := func(freq float64) bool {
		freq = math.Abs(math.Mod(freq, 8000))
		for _, b := range []Barrier{GlassWindow, WoodenDoor, GlassWall, BrickWall} {
			g := b.Gain(freq)
			if g <= 0 || g > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBarrierApplyShapesSpectrum(t *testing.T) {
	const fs = 16000.0
	low := dsp.Tone(150, 1, 0.5, fs)
	high := dsp.Tone(3000, 1, 0.5, fs)
	mixed := dsp.Mix(low, high)
	out := GlassWindow.Apply(mixed, fs)
	spec := dsp.MagnitudeSpectrum(out)
	lowBin := dsp.FrequencyBin(150, len(out), fs)
	highBin := dsp.FrequencyBin(3000, len(out), fs)
	if spec[highBin] > spec[lowBin]*0.2 {
		t.Errorf("high tone %v not attenuated relative to low %v", spec[highBin], spec[lowBin])
	}
}

func TestBarrierValidate(t *testing.T) {
	if err := GlassWindow.Validate(); err != nil {
		t.Errorf("standard barrier invalid: %v", err)
	}
	bad := Barrier{Material: Material(9), ThicknessCM: 1}
	if err := bad.Validate(); err == nil {
		t.Error("unknown material should error")
	}
	bad = Barrier{Material: Glass, ThicknessCM: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero thickness should error")
	}
}

func TestSpreadingGain(t *testing.T) {
	if g := SpreadingGain(1); g != 1 {
		t.Errorf("gain at 1m = %v", g)
	}
	if g := SpreadingGain(2); g != 0.5 {
		t.Errorf("gain at 2m = %v", g)
	}
	// Near-field clamp.
	if g := SpreadingGain(0.01); g != 10 {
		t.Errorf("clamped gain = %v", g)
	}
	// Monotone decreasing beyond the clamp.
	if SpreadingGain(5) >= SpreadingGain(3) {
		t.Error("spreading gain not decreasing")
	}
}

func TestPropagate(t *testing.T) {
	x := []float64{1, -1}
	y := Propagate(x, 4)
	if y[0] != 0.25 || y[1] != -0.25 {
		t.Errorf("Propagate = %v", y)
	}
}

func TestAmbientNoiseLevelAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const fs = 16000.0
	noise := AmbientNoise(16384, 40, fs, rng)
	spl := dsp.AmplitudeToSPL(dsp.RMS(noise))
	if math.Abs(spl-40) > 0.5 {
		t.Errorf("ambient noise SPL = %v, want 40", spl)
	}
	// Pink-ish: low band power above high band power.
	spec := dsp.PowerSpectrum(noise)
	lowSum, highSum := 0.0, 0.0
	for k := dsp.FrequencyBin(30, len(noise), fs); k <= dsp.FrequencyBin(300, len(noise), fs); k++ {
		lowSum += spec[k]
	}
	for k := dsp.FrequencyBin(4000, len(noise), fs); k <= dsp.FrequencyBin(7000, len(noise), fs); k++ {
		highSum += spec[k]
	}
	lowBins := dsp.FrequencyBin(300, len(noise), fs) - dsp.FrequencyBin(30, len(noise), fs)
	highBins := dsp.FrequencyBin(7000, len(noise), fs) - dsp.FrequencyBin(4000, len(noise), fs)
	if lowSum/float64(lowBins) < 2*highSum/float64(highBins) {
		t.Error("ambient noise is not low-frequency weighted")
	}
	if AmbientNoise(0, 40, fs, rng) != nil {
		t.Error("zero-length noise should be nil")
	}
}
