// Package acoustics models the sound-propagation substrate of the paper's
// experiments: the frequency-selective barrier effect of Eq. (1), spherical
// spreading loss over distance, ambient room noise, and the four room
// environments (A-D) of the evaluation.
package acoustics

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/dsp"
)

// Material identifies a barrier material with its frequency-dependent sound
// attenuation behaviour.
type Material int

// Barrier materials studied in the paper (Section III-B).
const (
	Glass Material = iota + 1
	Wood
	Brick
)

// String returns the material name.
func (m Material) String() string {
	switch m {
	case Glass:
		return "glass"
	case Wood:
		return "wood"
	case Brick:
		return "brick"
	default:
		return "unknown"
	}
}

// Alpha returns the attenuation coefficient α(f, η) of Eq. (1) in nepers
// per centimeter at frequency f, following the standard transmission-loss
// shape of panel barriers: a steep mass-law rise above ~500 Hz (matching
// the paper's observation that thru-barrier sound is dominated by
// 85-500 Hz components), a coincidence dip near 2.5 kHz where the panel's
// bending waves match the airborne wavelength and transmission improves,
// and damping-controlled loss above. Brick attenuates heavily across the
// whole band, which is why the paper focuses attacks on glass windows and
// wooden doors.
func (m Material) Alpha(f float64) float64 {
	s1 := sigmoid((f - 500) / 180)
	s2 := sigmoid((f - 3300) / 300)
	d := f - 2550
	dip := math.Exp(-d * d / (280 * 280))
	switch m {
	case Glass:
		return 0.40 + 7.2*s1 - 2.3*dip + 1.75*s2
	case Wood:
		return 0.06 + 0.90*s1 - 0.29*dip + 0.22*s2
	case Brick:
		return 0.40 + 0.30*s1
	default:
		return 0
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Barrier is a physical barrier with a material and thickness.
type Barrier struct {
	// Material determines the attenuation curve.
	Material Material
	// ThicknessCM is the barrier thickness Δd in centimeters.
	ThicknessCM float64
	// Name labels the barrier in reports, e.g. "glass window".
	Name string
}

// Standard barriers from the paper's four rooms.
var (
	// GlassWindow is the glass window of Room A (~0.5 cm pane).
	GlassWindow = Barrier{Material: Glass, ThicknessCM: 0.5, Name: "glass window"}
	// WoodenDoor is the wooden door of Rooms B and C (~4 cm).
	WoodenDoor = Barrier{Material: Wood, ThicknessCM: 4, Name: "wooden door"}
	// GlassWall is the glass wall of Room D (~1 cm pane).
	GlassWall = Barrier{Material: Glass, ThicknessCM: 0.6, Name: "glass wall"}
	// BrickWall is a heavy masonry wall (~20 cm); attacks through it are
	// impractical (Section III-B).
	BrickWall = Barrier{Material: Brick, ThicknessCM: 20, Name: "brick wall"}
)

// Gain returns the pressure transmission gain of the barrier at frequency
// f, i.e. e^{-α(f,η)·Δd} from Eq. (1).
func (b Barrier) Gain(f float64) float64 {
	return math.Exp(-b.Material.Alpha(f) * b.ThicknessCM)
}

// TransmissionLossDB returns the barrier's insertion loss at f in dB.
func (b Barrier) TransmissionLossDB(f float64) float64 {
	return -dsp.AmplitudeToDB(b.Gain(f))
}

// Apply filters a 16 kHz signal through the barrier's transmission curve.
func (b Barrier) Apply(x []float64, sampleRate float64) []float64 {
	return dsp.FrequencyShape(x, sampleRate, b.Gain)
}

// Validate checks barrier parameters.
func (b Barrier) Validate() error {
	if b.Material.String() == "unknown" {
		return fmt.Errorf("acoustics: unknown material %d", b.Material)
	}
	if b.ThicknessCM <= 0 {
		return fmt.Errorf("acoustics: thickness %vcm must be positive", b.ThicknessCM)
	}
	return nil
}

// SpreadingGain returns the free-field spherical spreading gain at the
// given distance in meters, referenced to 1 m. Distances below 0.1 m clamp
// to avoid unbounded near-field gain.
func SpreadingGain(distanceM float64) float64 {
	if distanceM < 0.1 {
		distanceM = 0.1
	}
	return 1 / distanceM
}

// Propagate attenuates a signal for free-field travel over the given
// distance in meters (referenced to 1 m).
func Propagate(x []float64, distanceM float64) []float64 {
	return dsp.Scale(x, SpreadingGain(distanceM))
}

// AmbientNoise generates n samples of room background noise at the given
// sound pressure level, with a pink-ish (low-frequency-weighted) spectrum
// typical of HVAC and street noise.
func AmbientNoise(n int, splDB float64, sampleRate float64, rng *rand.Rand) []float64 {
	if n <= 0 {
		return nil
	}
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	shaped := dsp.FrequencyShape(noise, sampleRate, func(f float64) float64 {
		if f < 20 {
			return 1
		}
		return math.Sqrt(20 / f)
	})
	target := dsp.SPLToAmplitude(splDB)
	out, err := dsp.NormalizeRMS(shaped, target)
	if err != nil {
		return shaped
	}
	return out
}
