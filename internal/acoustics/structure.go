package acoustics

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/dsp"
)

// Structure models the structure-borne (solid-channel) transfer path of a
// SUAD-style attack: instead of radiating through the air and the barrier,
// the adversary clamps a transducer to the structure the devices sit on
// (a table, a shared floor slab) and the sound reaches the receivers as
// plate vibration re-radiated at close range.
//
// The transfer function has a resonant low-pass character: bending waves
// carry low frequencies efficiently, damping eats the energy above a knee,
// and the plate's modal resonances pass narrow high-frequency ridges. The
// ridges are what make this the hard case for the defense — unlike the
// barrier, which strips the high band wholesale, the solid channel
// preserves part of it, so the cross-domain correlation is only partially
// destroyed.
type Structure struct {
	// Name labels the structure in reports, e.g. "wooden table".
	Name string
	// ContactGain is the broadband drive coupling below the knee.
	ContactGain float64
	// CutoffHz is the low-pass knee: below it the plate carries the
	// drive at ContactGain.
	CutoffHz float64
	// RolloffHz is the exponential damping scale above the knee.
	RolloffHz float64
	// FloorGain is the residual transmission floor at high frequencies.
	FloorGain float64
	// Modes are the resonant bending modes passing high-frequency ridges.
	Modes []StructureMode
	// DampingPerMeter is the along-structure propagation loss in nepers
	// per meter.
	DampingPerMeter float64
}

// StructureMode is one resonant bending mode of the plate.
type StructureMode struct {
	// FreqHz is the modal center frequency.
	FreqHz float64
	// Gain is the peak transmission gain added at the center.
	Gain float64
	// WidthHz is the Gaussian half-width of the ridge.
	WidthHz float64
}

// Standard structures of the solid-channel evaluation.
var (
	// WoodenTable is a typical wooden desk or table the VA device sits
	// on: efficient low-frequency coupling and pronounced modal ridges.
	WoodenTable = Structure{
		Name:        "wooden table",
		ContactGain: 0.9,
		CutoffHz:    500,
		RolloffHz:   600,
		FloorGain:   0.02,
		Modes: []StructureMode{
			{FreqHz: 1300, Gain: 0.18, WidthHz: 220},
			{FreqHz: 2400, Gain: 0.12, WidthHz: 260},
			{FreqHz: 3700, Gain: 0.06, WidthHz: 300},
		},
		DampingPerMeter: 0.35,
	}
	// ConcreteSlab is a shared concrete floor: heavier damping, weaker
	// and lower modal ridges.
	ConcreteSlab = Structure{
		Name:        "concrete slab",
		ContactGain: 0.7,
		CutoffHz:    350,
		RolloffHz:   450,
		FloorGain:   0.01,
		Modes: []StructureMode{
			{FreqHz: 900, Gain: 0.12, WidthHz: 160},
			{FreqHz: 1900, Gain: 0.07, WidthHz: 220},
		},
		DampingPerMeter: 0.8,
	}
)

// Validate checks structure parameters.
func (s Structure) Validate() error {
	if s.ContactGain <= 0 {
		return fmt.Errorf("acoustics: structure %q contact gain %v must be positive", s.Name, s.ContactGain)
	}
	if s.CutoffHz <= 0 || s.RolloffHz <= 0 {
		return fmt.Errorf("acoustics: structure %q knee (%v, %v) must be positive", s.Name, s.CutoffHz, s.RolloffHz)
	}
	if s.FloorGain < 0 || s.FloorGain > s.ContactGain {
		return fmt.Errorf("acoustics: structure %q floor gain %v outside [0, %v]", s.Name, s.FloorGain, s.ContactGain)
	}
	if s.DampingPerMeter < 0 {
		return fmt.Errorf("acoustics: structure %q damping %v must be non-negative", s.Name, s.DampingPerMeter)
	}
	for _, m := range s.Modes {
		if m.FreqHz <= 0 || m.Gain < 0 || m.WidthHz <= 0 {
			return fmt.Errorf("acoustics: structure %q has invalid mode %+v", s.Name, m)
		}
	}
	return nil
}

// Gain returns the structure-borne pressure transmission gain at frequency
// f: the resonant low-pass base curve plus the modal ridges.
func (s Structure) Gain(f float64) float64 {
	if f < 0 {
		f = -f
	}
	base := s.ContactGain
	if f > s.CutoffHz {
		base = s.ContactGain * math.Exp(-(f-s.CutoffHz)/s.RolloffHz)
		if base < s.FloorGain {
			base = s.FloorGain
		}
	}
	for _, m := range s.Modes {
		d := f - m.FreqHz
		base += m.Gain * math.Exp(-d*d/(2*m.WidthHz*m.WidthHz))
	}
	return base
}

// Apply filters a signal through the structure's transmission curve.
func (s Structure) Apply(x []float64, sampleRate float64) []float64 {
	return dsp.FrequencyShape(x, sampleRate, s.Gain)
}

// PropagationGain returns the along-structure amplitude gain after
// traveling the given distance in meters (exponential structural damping;
// negative distances clamp to zero).
func (s Structure) PropagationGain(distanceM float64) float64 {
	if distanceM < 0 {
		distanceM = 0
	}
	return math.Exp(-s.DampingPerMeter * distanceM)
}

// SolidPathConfig describes one structure-borne path from the adversary's
// contact transducer to a receiver sitting on (or right next to) the
// structure.
type SolidPathConfig struct {
	// SourceSPL is the drive level at the injection point in dB SPL.
	SourceSPL float64
	// DistanceM is the along-structure distance to the receiver in
	// meters.
	DistanceM float64
	// SampleRate of the signal.
	SampleRate float64
}

// TransmitSolid carries a unit-calibrated source waveform along the
// structure-borne path: the drive is scaled to SourceSPL, filtered through
// the structure's resonant low-pass transmission, damped over the
// along-structure distance, and mixed with the room's ambient noise. The
// path is a direct mechanical coupling, so unlike Transmit there is no
// spherical spreading, no barrier, and no room reverberation — the
// receivers hear the plate itself. Rooms without an explicit Structure
// fall back to WoodenTable.
func (r *Room) TransmitSolid(source []float64, cfg SolidPathConfig, rng *rand.Rand) ([]float64, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("acoustics: sample rate %v must be positive", cfg.SampleRate)
	}
	if cfg.DistanceM < 0 {
		return nil, fmt.Errorf("acoustics: distance %vm must be non-negative", cfg.DistanceM)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	st := r.Structure
	if st.Name == "" {
		st = WoodenTable
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	calibrated, err := dsp.NormalizeRMS(source, dsp.SPLToAmplitude(cfg.SourceSPL))
	if err != nil {
		return nil, fmt.Errorf("acoustics: %w", err)
	}
	x := st.Apply(calibrated, cfg.SampleRate)
	x = dsp.Scale(x, st.PropagationGain(cfg.DistanceM))
	noise := AmbientNoise(len(x), r.AmbientSPL, cfg.SampleRate, rng)
	return dsp.Mix(x, noise), nil
}
