package acoustics

import (
	"fmt"
	"math/rand"

	"vibguard/internal/dsp"
)

// Room is one evaluation environment: a size, a barrier the adversary hides
// behind, and an ambient noise level.
type Room struct {
	// Name identifies the room ("A".."D").
	Name string
	// LengthM and WidthM are the room dimensions in meters.
	LengthM, WidthM float64
	// Barrier is the room's attackable barrier.
	Barrier Barrier
	// AmbientSPL is the background noise level in dB SPL.
	AmbientSPL float64
	// ReverbGain scales the strength of early reflections (0 disables).
	ReverbGain float64
	// Structure is the solid surface the devices sit on, the injection
	// path of a solid-channel attack (zero value falls back to
	// WoodenTable in TransmitSolid).
	Structure Structure
}

// Rooms returns the four room environments of the evaluation (Section
// VII-A): Room A is a 7x6 m residential apartment with a glass window,
// Rooms B (7x7 m) and C (6x4 m) are offices with wooden doors, and Room D
// (5x3 m) is an office with a glass wall. Rooms A and D have glass
// barriers, B and C wood (Fig. 11b).
func Rooms() []Room {
	return []Room{
		{Name: "A", LengthM: 7, WidthM: 6, Barrier: GlassWindow, AmbientSPL: 40, ReverbGain: 0.3, Structure: WoodenTable},
		{Name: "B", LengthM: 7, WidthM: 7, Barrier: WoodenDoor, AmbientSPL: 39, ReverbGain: 0.32, Structure: WoodenTable},
		{Name: "C", LengthM: 6, WidthM: 4, Barrier: WoodenDoor, AmbientSPL: 41, ReverbGain: 0.28, Structure: WoodenTable},
		{Name: "D", LengthM: 5, WidthM: 3, Barrier: GlassWall, AmbientSPL: 42, ReverbGain: 0.25, Structure: ConcreteSlab},
	}
}

// RoomByName returns the room with the given name.
func RoomByName(name string) (Room, error) {
	for _, r := range Rooms() {
		if r.Name == name {
			return r, nil
		}
	}
	return Room{}, fmt.Errorf("acoustics: unknown room %q", name)
}

// Validate checks room parameters.
func (r *Room) Validate() error {
	if r.LengthM <= 0 || r.WidthM <= 0 {
		return fmt.Errorf("acoustics: room %s has non-positive size", r.Name)
	}
	if err := r.Barrier.Validate(); err != nil {
		return fmt.Errorf("acoustics: room %s: %w", r.Name, err)
	}
	return nil
}

// Reverberate adds simple early reflections scaled by the room size:
// delayed, attenuated copies whose delays correspond to first-order wall
// bounces. The exact bounce path lengths depend on where the source and
// receiver stand, so the rng draws them per call — two receivers at
// different positions hear differently colored versions of the same sound,
// as in a real room. It returns a new slice of the same length.
func (r *Room) Reverberate(x []float64, sampleRate float64, rng *rand.Rand) []float64 {
	if r.ReverbGain <= 0 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	const speedOfSound = 343.0
	// First-order bounce path excess lengths: between roughly half and
	// twice the wall dimensions depending on geometry.
	p1 := r.LengthM * (0.5 + rng.Float64())
	p2 := (r.LengthM + r.WidthM) * (0.5 + rng.Float64())
	d1 := int(p1 / speedOfSound * sampleRate)
	d2 := int(p2 / speedOfSound * sampleRate)
	g1 := r.ReverbGain * (0.7 + 0.6*rng.Float64())
	g2 := g1 * 0.6
	out := make([]float64, len(x))
	copy(out, x)
	for i := range x {
		if i >= d1 && d1 > 0 {
			out[i] += g1 * x[i-d1]
		}
		if i >= d2 && d2 > 0 {
			out[i] += g2 * x[i-d2]
		}
	}
	return out
}

// reverberateAt applies reflections whose strength grows with receiver
// distance: the direct path falls off as 1/d while the diffuse field stays
// roughly constant, so far receivers (a VA across the room) hear heavily
// colored sound while near-field receivers (a wrist-worn wearable) hear
// mostly the direct path.
func (r *Room) reverberateAt(x []float64, sampleRate, distanceM float64, rng *rand.Rand) []float64 {
	scaled := *r
	scaled.ReverbGain = r.ReverbGain * distanceM
	if scaled.ReverbGain > 0.85 {
		scaled.ReverbGain = 0.85
	}
	return scaled.Reverberate(x, sampleRate, rng)
}

// PathConfig describes one acoustic path from a source to a receiver,
// optionally through the room's barrier.
type PathConfig struct {
	// SourceSPL is the source loudness at 1 m in dB SPL.
	SourceSPL float64
	// DistanceM is the total source-to-receiver distance in meters.
	DistanceM float64
	// ThroughBarrier applies the room's barrier transmission.
	ThroughBarrier bool
	// OrientationGain models source directivity: human mouths and
	// loudspeakers beam high frequencies forward, so a receiver off the
	// speaking axis loses high-frequency energy. 1 (or 0, the zero
	// value) means on-axis; values below 1 shelve the band above
	// ~1.2 kHz by that factor.
	OrientationGain float64
	// SampleRate of the signal.
	SampleRate float64
}

// Transmit carries a unit-calibrated source waveform along the path: the
// source is scaled to SourceSPL, passed through the barrier if requested,
// attenuated by spreading loss, reverberated, and mixed with ambient room
// noise. The rng drives the noise; pass a seeded source for reproducible
// experiments.
func (r *Room) Transmit(source []float64, cfg PathConfig, rng *rand.Rand) ([]float64, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("acoustics: sample rate %v must be positive", cfg.SampleRate)
	}
	if cfg.DistanceM < 0 {
		return nil, fmt.Errorf("acoustics: distance %vm must be non-negative", cfg.DistanceM)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	// Calibrate the source to the requested SPL at 1 m.
	calibrated, err := dsp.NormalizeRMS(source, dsp.SPLToAmplitude(cfg.SourceSPL))
	if err != nil {
		return nil, fmt.Errorf("acoustics: %w", err)
	}
	x := calibrated
	if g := cfg.OrientationGain; g > 0 && g < 1 {
		x = dsp.FrequencyShape(x, cfg.SampleRate, func(f float64) float64 {
			switch {
			case f < 1200:
				return 1
			case f < 2400:
				frac := (f - 1200) / 1200
				return 1 + (g-1)*frac
			default:
				return g
			}
		})
	}
	if cfg.ThroughBarrier {
		x = r.Barrier.Apply(x, cfg.SampleRate)
	}
	x = Propagate(x, cfg.DistanceM)
	x = r.reverberateAt(x, cfg.SampleRate, cfg.DistanceM, rng)
	noise := AmbientNoise(len(x), r.AmbientSPL, cfg.SampleRate, rng)
	return dsp.Mix(x, noise), nil
}
