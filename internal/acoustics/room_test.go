package acoustics

import (
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/dsp"
)

func TestRoomsMatchPaperSetup(t *testing.T) {
	rooms := Rooms()
	if len(rooms) != 4 {
		t.Fatalf("rooms = %d, want 4", len(rooms))
	}
	wantSizes := map[string][2]float64{
		"A": {7, 6}, "B": {7, 7}, "C": {6, 4}, "D": {5, 3},
	}
	wantMaterial := map[string]Material{
		"A": Glass, "B": Wood, "C": Wood, "D": Glass,
	}
	for _, r := range rooms {
		if err := r.Validate(); err != nil {
			t.Errorf("room %s: %v", r.Name, err)
		}
		sz := wantSizes[r.Name]
		if r.LengthM != sz[0] || r.WidthM != sz[1] {
			t.Errorf("room %s size %vx%v, want %vx%v", r.Name, r.LengthM, r.WidthM, sz[0], sz[1])
		}
		if r.Barrier.Material != wantMaterial[r.Name] {
			t.Errorf("room %s barrier %v, want %v", r.Name, r.Barrier.Material, wantMaterial[r.Name])
		}
	}
}

func TestRoomByName(t *testing.T) {
	r, err := RoomByName("B")
	if err != nil {
		t.Fatal(err)
	}
	if r.Barrier.Name != "wooden door" {
		t.Errorf("room B barrier = %q", r.Barrier.Name)
	}
	if _, err := RoomByName("Z"); err == nil {
		t.Error("unknown room should error")
	}
}

func TestRoomValidate(t *testing.T) {
	bad := Room{Name: "X", LengthM: 0, WidthM: 5, Barrier: GlassWindow}
	if err := bad.Validate(); err == nil {
		t.Error("zero length should error")
	}
	bad = Room{Name: "X", LengthM: 5, WidthM: 5, Barrier: Barrier{}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid barrier should error")
	}
}

func TestReverberatePreservesLengthAndAddsEnergy(t *testing.T) {
	room, err := RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	x := dsp.Tone(200, 0.5, 0.5, 16000)
	y := room.Reverberate(x, 16000, rand.New(rand.NewSource(4)))
	if len(y) != len(x) {
		t.Fatalf("length changed: %d -> %d", len(x), len(y))
	}
	if dsp.Energy(y) <= dsp.Energy(x) {
		t.Error("reverb added no energy")
	}
	// Zero reverb gain returns a copy.
	dead := room
	dead.ReverbGain = 0
	z := dead.Reverberate(x, 16000, rand.New(rand.NewSource(4)))
	for i := range x {
		if z[i] != x[i] {
			t.Fatal("zero-gain reverb altered signal")
		}
	}
	z[0] = 99
	if x[0] == 99 {
		t.Fatal("zero-gain reverb shares storage with input")
	}
}

func TestTransmitThroughBarrierAttenuatesHighs(t *testing.T) {
	room, err := RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	const fs = 16000.0
	src := dsp.Mix(dsp.Tone(200, 1, 0.5, fs), dsp.Tone(2500, 1, 0.5, fs))
	direct, err := room.Transmit(src, PathConfig{SourceSPL: 70, DistanceM: 2, SampleRate: fs}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	thru, err := room.Transmit(src, PathConfig{SourceSPL: 70, DistanceM: 2, ThroughBarrier: true, SampleRate: fs}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(x []float64) float64 {
		spec := dsp.PowerSpectrum(x)
		lo := spec[dsp.FrequencyBin(200, len(x), fs)]
		hi := spec[dsp.FrequencyBin(2500, len(x), fs)]
		if lo == 0 {
			return 0
		}
		return hi / lo
	}
	if ratio(thru) > ratio(direct)*0.2 {
		t.Errorf("barrier did not skew spectrum: direct ratio %v, thru ratio %v", ratio(direct), ratio(thru))
	}
}

func TestTransmitSPLScaling(t *testing.T) {
	room, err := RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	quiet := room
	quiet.AmbientSPL = 0 // effectively no noise for this measurement
	quiet.ReverbGain = 0
	src := dsp.Tone(300, 1, 0.5, 16000)
	loud, err := quiet.Transmit(src, PathConfig{SourceSPL: 85, DistanceM: 1, SampleRate: 16000}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	soft, err := quiet.Transmit(src, PathConfig{SourceSPL: 65, DistanceM: 1, SampleRate: 16000}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	gotDB := dsp.AmplitudeToDB(dsp.RMS(loud)) - dsp.AmplitudeToDB(dsp.RMS(soft))
	if math.Abs(gotDB-20) > 1 {
		t.Errorf("85dB vs 65dB delta = %v dB, want ~20", gotDB)
	}
}

func TestTransmitDistanceScaling(t *testing.T) {
	room, err := RoomByName("C")
	if err != nil {
		t.Fatal(err)
	}
	room.AmbientSPL = 0
	room.ReverbGain = 0
	src := dsp.Tone(300, 1, 0.5, 16000)
	near, err := room.Transmit(src, PathConfig{SourceSPL: 75, DistanceM: 1, SampleRate: 16000}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	far, err := room.Transmit(src, PathConfig{SourceSPL: 75, DistanceM: 4, SampleRate: 16000}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(far) >= dsp.RMS(near) {
		t.Error("farther receiver louder than near one")
	}
}

func TestTransmitErrors(t *testing.T) {
	room, err := RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	src := []float64{1, 2, 3}
	if _, err := room.Transmit(src, PathConfig{SourceSPL: 70, DistanceM: 1}, rng); err == nil {
		t.Error("missing sample rate should error")
	}
	if _, err := room.Transmit(src, PathConfig{SourceSPL: 70, DistanceM: -1, SampleRate: 16000}, rng); err == nil {
		t.Error("negative distance should error")
	}
}
