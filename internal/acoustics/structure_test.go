package acoustics

import (
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/dsp"
)

func TestStructurePresetsValid(t *testing.T) {
	for _, s := range []Structure{WoodenTable, ConcreteSlab} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := WoodenTable
	bad.ContactGain = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero contact gain should fail validation")
	}
	bad = WoodenTable
	bad.Modes = []StructureMode{{FreqHz: -1, Gain: 0.1, WidthHz: 100}}
	if err := bad.Validate(); err == nil {
		t.Error("negative mode frequency should fail validation")
	}
}

// TestStructureGainShape pins the resonant low-pass character: full
// coupling below the knee, decay above it, but modal ridges that pass
// measurably more than the surrounding floor — the partial high-frequency
// leak that distinguishes the solid channel from a barrier.
func TestStructureGainShape(t *testing.T) {
	s := WoodenTable
	if g := s.Gain(200); g < s.ContactGain*0.9 {
		t.Errorf("low-frequency gain %v should be near contact gain %v", g, s.ContactGain)
	}
	if s.Gain(5500) >= s.Gain(300) {
		t.Error("structure should attenuate highs relative to lows")
	}
	for _, m := range s.Modes {
		ridge := s.Gain(m.FreqHz)
		shoulder := s.Gain(m.FreqHz + 4*m.WidthHz)
		if ridge < 1.5*shoulder {
			t.Errorf("mode at %v Hz: ridge gain %v not clearly above shoulder %v", m.FreqHz, ridge, shoulder)
		}
	}
	// The ridge pass-through is what a barrier never allows: compare with
	// the glass window at the first mode.
	mode := s.Modes[0]
	if s.Gain(mode.FreqHz) < 10*GlassWindow.Gain(mode.FreqHz) {
		t.Errorf("solid channel at %v Hz (%v) should dominate the glass barrier (%v)",
			mode.FreqHz, s.Gain(mode.FreqHz), GlassWindow.Gain(mode.FreqHz))
	}
	if g := s.Gain(-300); g != s.Gain(300) {
		t.Errorf("negative frequency gain %v != positive %v", g, s.Gain(300))
	}
}

func TestStructurePropagationGain(t *testing.T) {
	s := WoodenTable
	if g := s.PropagationGain(0); g != 1 {
		t.Errorf("zero distance gain %v != 1", g)
	}
	if g := s.PropagationGain(-5); g != 1 {
		t.Errorf("negative distance gain %v != 1", g)
	}
	if s.PropagationGain(2) >= s.PropagationGain(1) {
		t.Error("farther along the structure should be quieter")
	}
	want := math.Exp(-s.DampingPerMeter * 1.5)
	if got := s.PropagationGain(1.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("PropagationGain(1.5) = %v, want %v", got, want)
	}
}

func TestTransmitSolid(t *testing.T) {
	room, err := RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	src := dsp.Chirp(100, 4000, 0.5, 0.5, 16000)
	rng := rand.New(rand.NewSource(1))
	out, err := room.TransmitSolid(src, SolidPathConfig{SourceSPL: 75, DistanceM: 0.5, SampleRate: 16000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(src) {
		t.Errorf("length changed: %d -> %d", len(src), len(out))
	}
	if dsp.RMS(out) == 0 {
		t.Error("silent solid transmission")
	}
	// The structural low-pass must tilt the spectrum toward the lows
	// relative to the flat input chirp.
	highLowRatio := func(x []float64) float64 {
		spec := dsp.PowerSpectrum(x)
		var low, high float64
		for k := 1; k < len(spec); k++ {
			f := dsp.BinFrequency(k, len(x), 16000)
			if f < 600 {
				low += spec[k]
			} else if f < 8000 {
				high += spec[k]
			}
		}
		return high / low
	}
	if rOut, rIn := highLowRatio(out), highLowRatio(src); rOut >= rIn {
		t.Errorf("solid path should tilt energy toward lows: high/low ratio %v in, %v out", rIn, rOut)
	}

	if _, err := room.TransmitSolid(src, SolidPathConfig{SourceSPL: 75, DistanceM: -1, SampleRate: 16000}, rng); err == nil {
		t.Error("negative distance should error")
	}
	if _, err := room.TransmitSolid(src, SolidPathConfig{SourceSPL: 75, DistanceM: 1, SampleRate: 0}, rng); err == nil {
		t.Error("zero sample rate should error")
	}
	// A silent source transmits as ambient noise only, matching Transmit.
	quiet, err := room.TransmitSolid(make([]float64, 1000), SolidPathConfig{SourceSPL: 75, DistanceM: 1, SampleRate: 16000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(quiet) == 0 {
		t.Error("silent source should still carry ambient noise")
	}
}

// TestTransmitSolidFallsBackToWoodenTable: a room constructed without an
// explicit structure still transmits.
func TestTransmitSolidFallsBackToWoodenTable(t *testing.T) {
	room := Room{Name: "bare", LengthM: 5, WidthM: 4, Barrier: GlassWindow, AmbientSPL: 40}
	src := dsp.Chirp(100, 4000, 0.5, 0.25, 16000)
	rng := rand.New(rand.NewSource(2))
	out, err := room.TransmitSolid(src, SolidPathConfig{SourceSPL: 75, DistanceM: 0.5, SampleRate: 16000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(out) == 0 {
		t.Error("silent fallback transmission")
	}
}

func TestRoomsHaveStructures(t *testing.T) {
	for _, r := range Rooms() {
		if err := r.Structure.Validate(); err != nil {
			t.Errorf("room %s: %v", r.Name, err)
		}
	}
}
