package core_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/segment"
)

// fv builds a finite device verdict with the given score and span count.
func fv(addr string, score float64, spans int) core.DeviceVerdict {
	v := &core.Verdict{Score: score, SyncOffset: 7}
	for i := 0; i < spans; i++ {
		v.Spans = append(v.Spans, segment.Span{Start: i * 10, End: i*10 + 5})
	}
	return core.DeviceVerdict{Addr: addr, Verdict: v}
}

// TestFuseSingleDeviceBitIdentical pins that fusion is a strict
// generalization of the single-wearable path: one device fuses to that
// device's own verdict, score bits untouched.
func TestFuseSingleDeviceBitIdentical(t *testing.T) {
	score := 0.6123456789012345
	dv := fv("watch:1", score, 3)
	fused, n, e := core.FuseVerdicts([]core.DeviceVerdict{dv}, core.DefaultThreshold)
	if e != nil || n != 1 {
		t.Fatalf("fuse: n=%d err=%v", n, e)
	}
	if math.Float64bits(fused.Score) != math.Float64bits(score) {
		t.Fatalf("single-device fused score %v not bit-identical to %v", fused.Score, score)
	}
	if fused.SyncOffset != dv.Verdict.SyncOffset || len(fused.Spans) != len(dv.Verdict.Spans) {
		t.Fatal("single-device fusion did not carry the primary verdict through")
	}
	if fused.Attack != detector.DetectAt(score, core.DefaultThreshold) {
		t.Fatal("fused attack bit disagrees with DetectAt")
	}
}

// TestFuseWeightedMean pins the weighting rule: spans are the weights,
// equal spans degenerate to the plain mean, and the primary (first
// contributing) device supplies the non-score fields.
func TestFuseWeightedMean(t *testing.T) {
	a, b := fv("watch:1", 0.60, 4), fv("earbud:2", 0.40, 4)
	fused, n, e := core.FuseVerdicts([]core.DeviceVerdict{a, b}, core.DefaultThreshold)
	if e != nil || n != 2 {
		t.Fatalf("fuse: n=%d err=%v", n, e)
	}
	if math.Abs(fused.Score-0.50) > 1e-15 {
		t.Fatalf("equal-weight fused score %v, want plain mean 0.50", fused.Score)
	}
	if fused.SyncOffset != a.Verdict.SyncOffset {
		t.Fatal("fused verdict did not take the primary device's sync offset")
	}

	// Unequal spans: 3:1 weighting.
	c, d := fv("watch:1", 0.60, 3), fv("earbud:2", 0.40, 1)
	fused, _, e = core.FuseVerdicts([]core.DeviceVerdict{c, d}, core.DefaultThreshold)
	if e != nil {
		t.Fatal(e)
	}
	want := (3*0.60 + 1*0.40) / 4
	if math.Abs(fused.Score-want) > 1e-15 {
		t.Fatalf("3:1 fused score %v, want %v", fused.Score, want)
	}

	// Span-less verdicts (baseline methods) weigh 1, not 0.
	e1, e2 := fv("a", 0.2, 0), fv("b", 0.8, 0)
	fused, _, fe := core.FuseVerdicts([]core.DeviceVerdict{e1, e2}, core.DefaultThreshold)
	if fe != nil || math.Abs(fused.Score-0.5) > 1e-15 {
		t.Fatalf("span-less fusion score %v err %v, want 0.5/nil", fused.Score, fe)
	}
}

// TestFuseQuorum pins the quorum rule: any single finite score yields a
// verdict; failed or non-finite devices contribute nothing; zero
// contributors is ErrNoQuorum wrapping the first device error.
func TestFuseQuorum(t *testing.T) {
	good := fv("watch:1", 0.30, 2)
	dead := core.DeviceVerdict{Addr: "earbud:2", Err: errors.New("link lost")}
	nan := fv("anklet:3", math.NaN(), 2)

	fused, n, e := core.FuseVerdicts([]core.DeviceVerdict{dead, good, nan}, core.DefaultThreshold)
	if e != nil || n != 1 {
		t.Fatalf("quorum-of-one: n=%d err=%v", n, e)
	}
	if math.Float64bits(fused.Score) != math.Float64bits(0.30) || !fused.Attack {
		t.Fatalf("quorum-of-one verdict %+v, want the surviving device's attack verdict", fused)
	}

	_, n, e = core.FuseVerdicts([]core.DeviceVerdict{dead, nan}, core.DefaultThreshold)
	if !errors.Is(e, core.ErrNoQuorum) || n != 0 {
		t.Fatalf("no-quorum: n=%d err=%v, want ErrNoQuorum", n, e)
	}

	_, _, e = core.FuseVerdicts(nil, core.DefaultThreshold)
	if !errors.Is(e, core.ErrNoQuorum) {
		t.Fatalf("empty fuse err %v, want ErrNoQuorum", e)
	}
}

// TestFuseThreshold pins that the fused attack bit respects the supplied
// (possibly per-user calibrated) threshold, not a baked-in constant.
func TestFuseThreshold(t *testing.T) {
	dv := fv("watch:1", 0.47, 2)
	if fused, _, _ := core.FuseVerdicts([]core.DeviceVerdict{dv}, core.DefaultThreshold); fused.Attack {
		t.Fatal("0.47 flagged as attack at the default threshold 0.45")
	}
	if fused, _, _ := core.FuseVerdicts([]core.DeviceVerdict{dv}, 0.50); !fused.Attack {
		t.Fatal("0.47 not flagged at calibrated threshold 0.50")
	}
}

// TestFuseGoldenTwoWearables is the fusion golden: two wearables scoring
// the same golden-generator session through real pipelines, fused — the
// fused score must be bit-identical across runs for a fixed seed, and
// agree with the plain mean of the two per-device scores to within one
// ULP (same VA audio → same spans → equal weights; the weighted form
// (w·a + w·b)/2w rounds once more than (a+b)/2 when w is not a power of
// two, so bit-equality is asserted against runs, not against the
// re-derived mean).
func TestFuseGoldenTwoWearables(t *testing.T) {
	samples := streamSamples(t, 424242)
	s := samples[0] // legitimate session
	run := func() (uint64, [2]float64) {
		var dvs []core.DeviceVerdict
		var scores [2]float64
		for i := 0; i < 2; i++ {
			d := sampleDefense(t, s)
			rng := rand.New(rand.NewSource(9000 + int64(i)))
			v, err := d.Inspect(s.VARec, s.WearRec, rng)
			if err != nil {
				t.Fatal(err)
			}
			scores[i] = v.Score
			dvs = append(dvs, core.DeviceVerdict{Addr: "wear", Verdict: v})
		}
		fused, n, err := core.FuseVerdicts(dvs, core.DefaultThreshold)
		if err != nil || n != 2 {
			t.Fatalf("fuse: n=%d err=%v", n, err)
		}
		if fused.Attack {
			t.Fatal("legitimate two-wearable session fused to an attack verdict")
		}
		return math.Float64bits(fused.Score), scores
	}
	bits1, scores := run()
	bits2, _ := run()
	if bits1 != bits2 {
		t.Fatalf("fused score not bit-identical across runs: %x vs %x", bits1, bits2)
	}
	mean := (scores[0] + scores[1]) / 2
	fusedScore := math.Float64frombits(bits1)
	if diff := math.Abs(fusedScore - mean); diff > math.Abs(mean)*1e-15 {
		t.Fatalf("equal-weight fused score %v strays from mean %v by %v", fusedScore, mean, diff)
	}
}
