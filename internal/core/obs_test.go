package core

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"

	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/obs"
)

// TestInspectStageSpansReachMetricsEndpoint runs one full-method Inspect
// and asserts that every pipeline stage span — align and segment recorded
// here, phoneme-select/replay/stft/correlate recorded by the detector and
// sensing layers below — and the verdict counters show up in the /metrics
// JSON a debug listener would serve. This is the end-to-end wiring check:
// instrumented package -> process registry -> HTTP export.
func TestInspectStageSpansReachMetricsEndpoint(t *testing.T) {
	spans, legitVA, legitWear, _, _ := buildScenario(t, 99)
	d, err := NewDefense(DefaultConfig(device.NewFossilGen5(), &detector.StaticSegmenter{Spans: spans}))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Default()
	before := reg.Snapshot()
	rng := rand.New(rand.NewSource(7))
	if _, err := d.Inspect(legitVA, legitWear, rng); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.MetricsHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics output does not parse: %v", err)
	}

	// Stage histograms must have gained observations relative to the
	// pre-Inspect snapshot (other tests share the process registry, so
	// absolute counts are not meaningful — deltas are).
	stages := []string{
		"pipeline.stage.align",
		"pipeline.stage.segment",
		"pipeline.stage.phoneme-select",
		"pipeline.stage.replay",
		"pipeline.stage.stft",
		"pipeline.stage.correlate",
	}
	for _, name := range stages {
		if got, was := snap.Histograms[name].Count, before.Histograms[name].Count; got <= was {
			t.Errorf("stage %s: count %d, want > %d after Inspect", name, got, was)
		}
	}
	if got, was := snap.Counters["core.inspect.total"], before.Counters["core.inspect.total"]; got != was+1 {
		t.Errorf("inspect total = %d, want %d", got, was+1)
	}
	verdicts := snap.Counters["core.inspect.verdict.attack"] + snap.Counters["core.inspect.verdict.accept"]
	verdictsBefore := before.Counters["core.inspect.verdict.attack"] + before.Counters["core.inspect.verdict.accept"]
	if verdicts != verdictsBefore+1 {
		t.Errorf("verdict counters moved by %d, want 1", verdicts-verdictsBefore)
	}
	// Stage latency snapshots must be internally consistent.
	align := snap.Histograms["pipeline.stage.align"]
	if align.Sum <= 0 || align.P50 < align.Min || align.P99 > align.Max {
		t.Errorf("align stage snapshot inconsistent: %+v", align)
	}
}
