package core

import (
	"math/rand"
	"testing"

	"vibguard/internal/acoustics"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/phoneme"
	"vibguard/internal/segment"
	"vibguard/internal/selection"
	"vibguard/internal/syncnet"
)

func TestNewDefenseValidation(t *testing.T) {
	w := device.NewFossilGen5()
	seg := &detector.StaticSegmenter{}
	bad := DefaultConfig(w, seg)
	bad.SampleRate = 0
	if _, err := NewDefense(bad); err == nil {
		t.Error("zero sample rate should error")
	}
	bad = DefaultConfig(w, seg)
	bad.MaxSyncLagSeconds = -1
	if _, err := NewDefense(bad); err == nil {
		t.Error("negative sync lag should error")
	}
	bad = DefaultConfig(nil, seg)
	if _, err := NewDefense(bad); err == nil {
		t.Error("nil wearable should error")
	}
	good := DefaultConfig(w, seg)
	d, err := NewDefense(good)
	if err != nil {
		t.Fatal(err)
	}
	if d.Threshold() != DefaultThreshold {
		t.Error("threshold mismatch")
	}
	if d.Method() != detector.MethodFull {
		t.Error("method mismatch")
	}
}

// buildScenario creates a legit and an attack recording pair with a
// simulated network delay on the wearable side.
func buildScenario(t *testing.T, seed int64) (spans []segment.Span, legitVA, legitWear, atkVA, atkWear []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	synth, err := phoneme.NewSynthesizer(phoneme.NewStudioVoicePool(1, seed)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[1])
	if err != nil {
		t.Fatal(err)
	}
	spans = segment.OracleSpans(utt, selection.CanonicalSelected())
	room, err := acoustics.RoomByName("A")
	if err != nil {
		t.Fatal(err)
	}
	transmit := func(spl, dist float64, barrier bool) []float64 {
		p, err := room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: barrier, SampleRate: 16000,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	legitVA = transmit(72, 1.5, false)
	legitWear = syncnet.SimulateNetworkDelay(transmit(72, 0.3, false), 0.1, 16000, rng)
	atkVA = transmit(80, 2.1, true)
	atkWear = syncnet.SimulateNetworkDelay(transmit(80, 2.4, true), 0.08, 16000, rng)
	return spans, legitVA, legitWear, atkVA, atkWear
}

// countingSegmenter counts EffectiveSpans calls, verifying the hot path
// runs segmentation (one BRNN inference in production) exactly once.
type countingSegmenter struct {
	calls int
	spans []segment.Span
}

func (c *countingSegmenter) EffectiveSpans([]float64) ([]segment.Span, error) {
	c.calls++
	return c.spans, nil
}

func TestInspectSegmentsExactlyOnce(t *testing.T) {
	spans, legitVA, legitWear, _, _ := buildScenario(t, 15)
	seg := &countingSegmenter{spans: spans}
	d, err := NewDefense(DefaultConfig(device.NewFossilGen5(), seg))
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Inspect(legitVA, legitWear, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if seg.calls != 1 {
		t.Errorf("Inspect ran the segmenter %d times, want exactly 1", seg.calls)
	}
	if len(v.Spans) != len(spans) {
		t.Errorf("verdict spans = %d, want the segmenter's %d", len(v.Spans), len(spans))
	}
	seg.calls = 0
	if _, err := d.Score(legitVA, legitWear, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	if seg.calls != 1 {
		t.Errorf("Score ran the segmenter %d times, want exactly 1", seg.calls)
	}
}

// TestThresholdAgreesWithDetector pins the bugfix for the 0.45-vs-0.5
// default-threshold drift: both config paths must resolve to the same
// constant.
func TestThresholdAgreesWithDetector(t *testing.T) {
	w := device.NewFossilGen5()
	seg := &detector.StaticSegmenter{}
	coreCfg := DefaultConfig(w, seg)
	detCfg := detector.DefaultConfig(w, seg)
	if coreCfg.Threshold != detCfg.Threshold {
		t.Errorf("core default threshold %v != detector default threshold %v",
			coreCfg.Threshold, detCfg.Threshold)
	}
	if DefaultThreshold != detector.DefaultThreshold {
		t.Errorf("core.DefaultThreshold %v != detector.DefaultThreshold %v",
			DefaultThreshold, detector.DefaultThreshold)
	}
	if coreCfg.SampleRate != detCfg.SampleRate {
		t.Errorf("core default sample rate %v != detector default %v",
			coreCfg.SampleRate, detCfg.SampleRate)
	}
}

func TestInspectEndToEnd(t *testing.T) {
	spans, legitVA, legitWear, atkVA, atkWear := buildScenario(t, 5)
	w := device.NewFossilGen5()
	d, err := NewDefense(DefaultConfig(w, &detector.StaticSegmenter{Spans: spans}))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	legit, err := d.Inspect(legitVA, legitWear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if legit.Attack {
		t.Errorf("legitimate command flagged as attack (score %v)", legit.Score)
	}
	// The 100ms network delay (1600 samples) must be recovered.
	if legit.SyncOffset < 1500 || legit.SyncOffset > 1700 {
		t.Errorf("sync offset = %d, want ~1600", legit.SyncOffset)
	}
	if len(legit.Spans) == 0 {
		t.Error("verdict missing spans")
	}
	atk, err := d.Inspect(atkVA, atkWear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Attack {
		t.Errorf("thru-barrier attack not flagged (score %v)", atk.Score)
	}
	if legit.Score <= atk.Score {
		t.Errorf("legit score %v not above attack score %v", legit.Score, atk.Score)
	}
}

func TestScoreMatchesInspect(t *testing.T) {
	spans, legitVA, legitWear, _, _ := buildScenario(t, 7)
	w := device.NewFossilGen5()
	d, err := NewDefense(DefaultConfig(w, &detector.StaticSegmenter{Spans: spans}))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := d.Score(legitVA, legitWear, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Inspect(legitVA, legitWear, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != v.Score {
		t.Errorf("Score %v != Inspect score %v for identical rng", s1, v.Score)
	}
}

func TestInspectEmptyRecordings(t *testing.T) {
	w := device.NewFossilGen5()
	d, err := NewDefense(DefaultConfig(w, &detector.StaticSegmenter{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Inspect(nil, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty recordings should error")
	}
}

func TestDefenseWithBaselineMethods(t *testing.T) {
	spans, legitVA, legitWear, atkVA, atkWear := buildScenario(t, 9)
	w := device.NewFossilGen5()
	for _, m := range []detector.Method{detector.MethodAudio, detector.MethodVibration} {
		cfg := DefaultConfig(w, &detector.StaticSegmenter{Spans: spans})
		cfg.Method = m
		d, err := NewDefense(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		legit, err := d.Score(legitVA, legitWear, rng)
		if err != nil {
			t.Fatal(err)
		}
		atk, err := d.Score(atkVA, atkWear, rng)
		if err != nil {
			t.Fatal(err)
		}
		if legit <= atk {
			t.Errorf("%v: legit %v not above attack %v", m, legit, atk)
		}
	}
}
