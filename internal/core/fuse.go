package core

import (
	"errors"
	"fmt"
	"math"

	"vibguard/internal/detector"
)

// Score-level multi-wearable fusion. A user with several paired wearables
// (watch, earbud, …) gives the defense several independent cross-domain
// views of the same voice command; each device is scored by the full
// pipeline independently, and the per-device scores are fused here. Fusion
// is at the score level — not the feature level — so a device that failed
// outright (dead link, corrupt recording) simply contributes nothing, and
// the quorum rule is the weakest possible: any single finite score still
// yields a verdict. Barrier-blocked attacks score low on every device that
// actually heard the command, so fusion tightens the legitimate/attack
// margin without making the defense fragile to device loss.

// ErrNoQuorum is returned when fusion has no usable per-device score: every
// device either errored or produced no verdict. The session cannot be
// decided and must be surfaced as a failure, never silently accepted.
var ErrNoQuorum = errors.New("core: fusion quorum failed, no device produced a score")

// DeviceVerdict is one wearable's independently scored view of a session.
type DeviceVerdict struct {
	// Addr is the wearable's address (diagnostics only; fusion does not
	// interpret it).
	Addr string
	// Verdict is the device's pipeline verdict, nil when the device failed.
	Verdict *Verdict
	// Err is the device's pipeline error, nil when Verdict is set.
	Err error
}

// FuseVerdicts fuses per-device verdicts into one session verdict by
// weighted mean over the finite per-device scores, deciding attack at the
// given threshold (detector.DetectAt, the same strict < as Detect).
//
// Each contributing device is weighted by the number of effective-phoneme
// spans its pipeline used (minimum 1, so span-less baseline methods fuse
// too): a device whose view covered more barrier-sensitive phonemes gets
// proportionally more say. When every device segments the same VA audio
// the weights are equal and the fusion degenerates to the plain mean.
//
// The fused verdict's SyncOffset, Spans, Early, and Consumed come from the
// first contributing device (the session's primary wearable), so a
// single-device session fuses to a verdict bit-identical to that device's
// own — fusion is a strict generalization of the single-wearable path.
//
// The returned count is the number of contributing devices. With zero
// contributors FuseVerdicts returns ErrNoQuorum, wrapping the first
// device error for diagnosis.
func FuseVerdicts(devices []DeviceVerdict, threshold float64) (*Verdict, int, error) {
	var (
		sum, wsum float64
		primary   *Verdict
		n         int
	)
	for i := range devices {
		v := devices[i].Verdict
		if devices[i].Err != nil || v == nil || !isFinite(v.Score) {
			continue
		}
		w := float64(len(v.Spans))
		if w < 1 {
			w = 1
		}
		sum += w * v.Score
		wsum += w
		if primary == nil {
			primary = v
		}
		n++
	}
	if n == 0 {
		for i := range devices {
			if devices[i].Err != nil {
				return nil, 0, fmt.Errorf("%w: %s: %v", ErrNoQuorum, devices[i].Addr, devices[i].Err)
			}
		}
		return nil, 0, ErrNoQuorum
	}
	score := primary.Score
	if n > 1 {
		score = sum / wsum
	}
	fused := *primary
	fused.Score = score
	fused.Attack = detector.DetectAt(score, threshold)
	return &fused, n, nil
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
