package core

import "vibguard/internal/obs"

// Pipeline instrumentation, bound to the process-wide registry at init.
// The "pipeline.stage.*" timers are shared naming with the detector and
// sensing packages, which time the stages that live below this layer
// (phoneme-select, replay, stft, correlate); together the seven stages
// cover one full Inspect. Recording is lock-free and allocation-free, so
// it stays enabled in production and in the parallel scoring workers.
var (
	metInspectTotal  = obs.Default().Counter("core.inspect.total")
	metInspectErrors = obs.Default().Counter("core.inspect.errors")
	metVerdictAttack = obs.Default().Counter("core.inspect.verdict.attack")
	metVerdictAccept = obs.Default().Counter("core.inspect.verdict.accept")

	stageAlign   = obs.Default().StageTimer("pipeline.stage.align")
	stageSegment = obs.Default().StageTimer("pipeline.stage.segment")
)
