package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vibguard/internal/detector"
	"vibguard/internal/dsp"
	"vibguard/internal/obs"
	"vibguard/internal/segment"
	"vibguard/internal/syncnet"
)

// Streaming inspection: chunked ingest with VAD gating and an early-exit
// verdict once a confidence interval on the running correlation score
// clears the threshold on the safe side (DESIGN.md section 14). The batch
// Inspect on the buffered recordings remains the fallback whenever the
// interval never separates, and because every provisional evaluation runs
// on its own derived rng, that fallback is bit-identical to handing the
// concatenated audio to Inspect directly.

// Streaming-pipeline instrumentation: the early-exit/full-run split, the
// frames the VAD gate rejected, and the end-to-end time from first chunk
// to verdict.
var (
	metEarlyExit      = obs.Default().Counter("pipeline.early_exit")
	metFullRun        = obs.Default().Counter("pipeline.full_run")
	metVADGatedFrames = obs.Default().Counter("vad.gated_frames")
	metStreamEvals    = obs.Default().Counter("pipeline.stream.evals")
	metStreamEvalSkip = obs.Default().Counter("pipeline.stream.eval_errors")
	histTimeToVerdict = obs.Default().Histogram("pipeline.time_to_verdict_seconds")
)

// StreamConfig parameterizes a StreamInspector.
type StreamConfig struct {
	// ChunkSamples is the advisory ingest chunk size used by servers and
	// benchmarks when they slice a recording into a stream (default
	// 100 ms of audio). The inspector itself accepts any chunking.
	ChunkSamples int
	// MinSeconds is the minimum VA audio before the first provisional
	// evaluation (default 0.6).
	MinSeconds float64
	// EvalEverySeconds is the minimum new VA audio between provisional
	// evaluations (default 0.1, matching the default chunk duration so
	// evaluation opportunities line up with chunk arrival instead of
	// beating against it onto a coarser grid).
	EvalEverySeconds float64
	// GuardSeconds is how far a phoneme span must end before the stream
	// frontier to count as completed (default 0.25): the segmenter's BRNN
	// is bidirectional, so labels near the frontier can still change as
	// more audio arrives.
	GuardSeconds float64
	// Z is the half-width multiplier of the Fisher-z normal-approximation
	// confidence interval on the provisional score (default 4.0 —
	// deliberately far past an i.i.d. 99.99% interval, because
	// neighboring spectrogram cells are correlated).
	Z float64
	// MinCells is the minimum number of (frame, bin) correlation cells
	// before the interval is trusted (default 128).
	MinCells int
	// DisableEarlyExit turns provisional evaluation off: the inspector
	// only buffers, and the verdict always comes from the batch fallback
	// (used by the equivalence tests and as the non-MethodFull behavior).
	DisableEarlyExit bool
	// VAD configures the admission gate; the zero value uses
	// dsp.DefaultVADConfig at the pipeline sample rate.
	VAD dsp.VADConfig
}

// DefaultStreamConfig returns the streaming tuning used by the serve tier.
func DefaultStreamConfig() StreamConfig { return StreamConfig{} }

// withStreamDefaults resolves defaults against the defense sample rate.
func (c StreamConfig) withStreamDefaults(sampleRate float64) StreamConfig {
	if c.ChunkSamples <= 0 {
		c.ChunkSamples = int(sampleRate / 10)
		if c.ChunkSamples <= 0 {
			c.ChunkSamples = 1
		}
	}
	if c.MinSeconds <= 0 {
		c.MinSeconds = 0.6
	}
	if c.EvalEverySeconds <= 0 {
		c.EvalEverySeconds = 0.1
	}
	if c.GuardSeconds <= 0 {
		c.GuardSeconds = 0.25
	}
	if c.Z <= 0 {
		c.Z = 4.0
	}
	if c.MinCells <= 0 {
		c.MinCells = 128
	}
	if c.VAD.SampleRate <= 0 {
		c.VAD = dsp.DefaultVADConfig(sampleRate)
	}
	return c
}

// StreamInspector consumes one session's VA recording chunk by chunk and
// tries to reach a verdict before the recording ends. The wearable
// recording is fed separately (all at once or in chunks); provisional
// evaluations only consider the prefix both devices have covered.
//
// Determinism contract: the fallback rng (derived from the seed exactly
// like a batch session's) is never consumed by provisional work — each
// evaluation forks its own SplitMix64-derived rng — so when no early exit
// fires, Finish returns math.Float64bits-identical results to
// Defense.Inspect on the concatenated audio with a fresh rng from the same
// seed.
//
// Not safe for concurrent use; one inspector serves one session.
type StreamInspector struct {
	d    *Defense
	cfg  StreamConfig
	seed int64
	rng  *rand.Rand // fallback rng, untouched until the batch fallback

	vad     *dsp.VAD
	aligner *syncnet.StreamAligner

	va, wear []float64

	voicedPending bool // voiced frames arrived since the last evaluation
	nextEval      int  // VA length that permits the next evaluation
	evals         uint64
	verdict       *Verdict
	finished      bool
	started       time.Time
}

// NewStreamInspector builds a streaming session around the defense. The
// seed drives the session's stochastic sensing exactly like a batch
// session: the fallback path consumes rand.New(rand.NewSource(seed))
// untouched. Early exit requires MethodFull with a segmenter; other
// methods stream in buffer-only mode (the verdict always comes from the
// batch fallback).
func (d *Defense) NewStreamInspector(cfg StreamConfig, seed int64) (*StreamInspector, error) {
	cfg = cfg.withStreamDefaults(d.cfg.SampleRate)
	if d.cfg.Method != detector.MethodFull || d.cfg.Segmenter == nil {
		cfg.DisableEarlyExit = true
	}
	vad, err := dsp.NewVAD(cfg.VAD)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &StreamInspector{
		d:        d,
		cfg:      cfg,
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		vad:      vad,
		aligner:  syncnet.NewStreamAligner(d.cfg.MaxSyncLagSeconds, d.cfg.SampleRate),
		nextEval: int(cfg.MinSeconds * d.cfg.SampleRate),
		started:  time.Now(),
	}, nil
}

// Config returns the resolved streaming configuration.
func (si *StreamInspector) Config() StreamConfig { return si.cfg }

// ConsumedSamples returns how many VA samples have been fed so far.
func (si *StreamInspector) ConsumedSamples() int { return len(si.va) }

// FeedWearable appends wearable audio to the session. The wearable side
// carries no evaluation trigger — provisional evaluations fire on VA
// chunks and use however much wearable audio has arrived.
func (si *StreamInspector) FeedWearable(chunk []float64) error {
	if si.finished {
		return fmt.Errorf("core: stream feed after finish")
	}
	si.wear = append(si.wear, chunk...)
	return nil
}

// Feed appends one VA chunk, runs the VAD gate, and — once enough voiced
// audio has accumulated — a provisional evaluation. It returns a non-nil
// verdict as soon as an early exit fires; after that, further chunks are
// ignored (the session already has its answer). A nil, nil return means
// "keep streaming".
func (si *StreamInspector) Feed(chunk []float64) (*Verdict, error) {
	if si.finished {
		return nil, fmt.Errorf("core: stream feed after finish")
	}
	if si.verdict != nil {
		return si.verdict, nil
	}
	si.va = append(si.va, chunk...)
	voiced, gated := si.vad.Feed(chunk)
	if gated > 0 {
		metVADGatedFrames.Add(uint64(gated))
	}
	if voiced > 0 {
		si.voicedPending = true
	}
	// The gate: segmentation, replay, and correlation only spin up when
	// voiced audio has arrived since the last look, and at most once per
	// EvalEverySeconds of new audio.
	if !si.cfg.DisableEarlyExit && si.voicedPending && len(si.va) >= si.nextEval {
		si.evaluate()
	}
	return si.verdict, nil
}

// evaluate runs one provisional scoring pass over the completed phoneme
// spans of the prefix both devices cover, and records an early verdict if
// the confidence interval clears the threshold on either side. Evaluation
// errors on a prefix are never fatal: the batch fallback owns error
// semantics for the complete recordings.
func (si *StreamInspector) evaluate() {
	si.voicedPending = false
	si.nextEval = len(si.va) + int(si.cfg.EvalEverySeconds*si.d.cfg.SampleRate)
	tau, stable := si.aligner.Estimate(si.va, si.wear)
	if !stable {
		return
	}
	// The usable prefix is bounded by both devices' coverage (the wearable
	// view starts tau samples in).
	frontier := len(si.va)
	if wearCover := len(si.wear) - tau; wearCover < frontier {
		frontier = wearCover
	}
	guard := int(si.cfg.GuardSeconds * si.d.cfg.SampleRate)
	if frontier-guard <= 0 {
		return
	}
	metStreamEvals.Inc()
	si.evals++
	spans, err := si.d.cfg.Segmenter.EffectiveSpans(si.va[:frontier])
	if err != nil {
		metStreamEvalSkip.Inc()
		return
	}
	// Keep only the span audio that lies well before the frontier: the
	// bidirectional segmenter can still relabel frames near it. A span
	// that continues past the guard boundary is clipped rather than
	// dropped — its frames before the boundary are as stable as a
	// completed span's (continuous speech often segments into one long
	// span, which would otherwise never complete and starve the early
	// exit).
	cut := frontier - guard
	completed := spans[:0:0]
	for _, sp := range spans {
		switch {
		case sp.End <= cut:
			completed = append(completed, sp)
		case sp.Start < cut:
			completed = append(completed, segment.Span{Start: sp.Start, End: cut})
		}
	}
	if len(completed) == 0 {
		return
	}
	vaSeg := segment.ExtractSpans(si.va, completed)
	wearSeg := segment.ExtractSpans(si.wear[tau:], completed)
	// Fork an rng per evaluation so the provisional sensing never touches
	// the fallback rng's stream.
	provRng := rand.New(rand.NewSource(provisionalSeed(si.seed, si.evals)))
	score, cells, err := si.d.det.CorrelateSegments(vaSeg, wearSeg, provRng)
	if err != nil {
		metStreamEvalSkip.Inc()
		return
	}
	if cells < si.cfg.MinCells || cells <= 3 {
		return
	}
	lo, hi := fisherInterval(score, cells, si.cfg.Z)
	thr := si.d.cfg.Threshold
	var attack bool
	switch {
	case lo > thr:
		attack = false
	case hi < thr:
		attack = true
	default:
		return // interval straddles the threshold; keep streaming
	}
	metEarlyExit.Inc()
	if attack {
		metVerdictAttack.Inc()
	} else {
		metVerdictAccept.Inc()
	}
	histTimeToVerdict.Observe(time.Since(si.started).Seconds())
	si.verdict = &Verdict{
		Score:      score,
		Attack:     attack,
		SyncOffset: tau,
		Spans:      completed,
		Early:      true,
		Consumed:   len(si.va),
	}
}

// Finish ends the stream. If an early exit already fired, its verdict is
// returned; otherwise the batch fallback runs: Defense.Inspect on the
// complete buffered recordings with the untouched session rng, so the
// result is bit-identical to never having streamed at all.
func (si *StreamInspector) Finish() (*Verdict, error) {
	if si.verdict != nil {
		si.finished = true
		return si.verdict, nil
	}
	if si.finished {
		return nil, fmt.Errorf("core: stream finished twice without a verdict")
	}
	si.finished = true
	if _, gated := si.vad.Finish(); gated > 0 {
		metVADGatedFrames.Add(uint64(gated))
	}
	metFullRun.Inc()
	v, err := si.d.Inspect(si.va, si.wear, si.rng)
	histTimeToVerdict.Observe(time.Since(si.started).Seconds())
	if err != nil {
		return nil, err
	}
	v.Consumed = len(si.va)
	return v, nil
}

// fisherInterval returns the Fisher z-transform confidence interval of a
// Pearson correlation r observed over n cells: z = atanh(r) is treated as
// normal with standard error 1/sqrt(n-3), and the interval is mapped back
// through tanh. r is clamped just inside (-1, 1) so atanh stays finite. A
// non-finite r (NaN from a constant cell window, ±Inf from an upstream
// overflow) carries no information, so it yields the maximal interval
// (-1, 1): the interval straddles any threshold, which the early-exit
// switch reads as "no exit this evaluation" rather than a spurious
// verdict — NaN would otherwise sail through the clamp below, because
// both comparisons are false for NaN.
func fisherInterval(r float64, n int, zMult float64) (lo, hi float64) {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return -1, 1
	}
	const rCap = 1 - 1e-12
	if r > rCap {
		r = rCap
	}
	if r < -rCap {
		r = -rCap
	}
	z := math.Atanh(r)
	se := 1 / math.Sqrt(float64(n-3))
	return math.Tanh(z - zMult*se), math.Tanh(z + zMult*se)
}

// provisionalSeed derives evaluation k's rng seed from the session seed
// with the SplitMix64 finalizer (the serve.SessionSeed / eval.SampleSeed
// scheme), so provisional sensing streams are decorrelated from each other
// and from the session's fallback rng.
func provisionalSeed(seed int64, k uint64) int64 {
	z := uint64(seed) ^ 0xa5a5a5a55a5a5a5a + 0x9e3779b97f4a7c15*(k+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
