// Package core assembles the paper's primary contribution: the
// training-free thru-barrier attack defense. A Defense takes the two
// recordings of a voice command (VA device and wearable), synchronizes
// them with the cross-correlation of Eq. (5), segments the
// barrier-effect-sensitive phonemes, performs cross-domain sensing on the
// wearable, and detects attacks with the 2D-correlation threshold test of
// Eq. (6).
package core

import (
	"fmt"
	"math/rand"

	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/segment"
	"vibguard/internal/sensing"
	"vibguard/internal/syncnet"
)

// DefaultThreshold is the decision threshold on the 2D correlation score,
// calibrated at the equal-error point of the evaluation datasets. It
// aliases the detector package's constant so the two config layers cannot
// drift apart.
const DefaultThreshold = detector.DefaultThreshold

// Config parameterizes the defense pipeline.
type Config struct {
	// Wearable is the user's smartwatch (speaker + accelerometer).
	Wearable *device.Wearable
	// Segmenter provides effective-phoneme spans of the VA recording.
	Segmenter detector.Segmenter
	// Method selects the detector (MethodFull is the paper's system; the
	// baselines are used for ablation).
	Method detector.Method
	// Sensing configures vibration-domain feature extraction.
	Sensing sensing.Config
	// AudioFFTSize configures the audio-domain baseline.
	AudioFFTSize int
	// Threshold on the correlation score; lower scores are attacks.
	Threshold float64
	// MaxSyncLagSeconds bounds the Eq. (5) delay search.
	MaxSyncLagSeconds float64
	// SampleRate of the recordings in Hz.
	SampleRate float64
}

// DefaultConfig returns the paper's configuration for the given wearable
// and segmenter.
func DefaultConfig(w *device.Wearable, seg detector.Segmenter) Config {
	return Config{
		Wearable:          w,
		Segmenter:         seg,
		Method:            detector.MethodFull,
		Sensing:           sensing.DefaultConfig(),
		AudioFFTSize:      256,
		Threshold:         DefaultThreshold,
		MaxSyncLagSeconds: 0.5,
		SampleRate:        detector.DefaultSampleRate,
	}
}

// Defense is the end-to-end thru-barrier attack detection pipeline. A
// Defense holds no mutable state: every Inspect/Score call reads only the
// immutable configuration and the caller-supplied rng, so one instance is
// safe for concurrent use by multiple goroutines as long as each call gets
// its own rng (and, for MethodFull, the configured Segmenter is itself
// stateless per call).
type Defense struct {
	cfg Config
	det *detector.Detector
}

// NewDefense builds the pipeline.
func NewDefense(cfg Config) (*Defense, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("core: sample rate %v must be positive", cfg.SampleRate)
	}
	if cfg.MaxSyncLagSeconds < 0 {
		return nil, fmt.Errorf("core: max sync lag %v must be non-negative", cfg.MaxSyncLagSeconds)
	}
	det, err := detector.New(detector.Config{
		Method:       cfg.Method,
		Wearable:     cfg.Wearable,
		Segmenter:    cfg.Segmenter,
		Sensing:      cfg.Sensing,
		AudioFFTSize: cfg.AudioFFTSize,
		Threshold:    cfg.Threshold,
		SampleRate:   cfg.SampleRate,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Defense{cfg: cfg, det: det}, nil
}

// Verdict is the outcome of inspecting one voice command.
type Verdict struct {
	// Score is the 2D correlation similarity in [-1, 1]; legitimate
	// commands score high.
	Score float64
	// Attack is true when the score falls below the threshold.
	Attack bool
	// SyncOffset is the estimated wearable offset in samples (Eq. 5).
	SyncOffset int
	// Spans are the effective-phoneme spans used (MethodFull only).
	Spans []segment.Span
	// Early is true when a streaming session reached this verdict before
	// the recording ended (StreamInspector early exit). Batch verdicts
	// always leave it false.
	Early bool
	// Consumed is the number of VA samples a streaming session had
	// ingested when the verdict was reached (0 for batch verdicts).
	Consumed int
}

// Inspect runs the full pipeline on a VA recording and a raw (unaligned)
// wearable recording and returns the verdict. The rng drives the
// stochastic cross-domain sensing. For MethodFull the segmenter (one BRNN
// inference in production) runs exactly once; the resulting spans feed
// both the score and the verdict.
//
// Inspect is the production entry point, so it validates both recordings
// first: fatal corruption (empty, non-finite, truncated, or
// length-inconsistent input) returns one of the typed errors of
// validate.go instead of a garbage score, and a DC bias is repaired before
// scoring. The returned score is guaranteed finite. The Score* fast paths
// skip this and trust their caller (the evaluation engine feeds
// generator-made samples).
func (d *Defense) Inspect(vaRec, wearRec []float64, rng *rand.Rand) (*Verdict, error) {
	metInspectTotal.Inc()
	vaRec, wearRec, err := d.validatePair(vaRec, wearRec)
	if err != nil {
		metInspectErrors.Inc()
		return nil, err
	}
	sp := stageAlign.Start()
	aligned, tau, err := syncnet.AlignRecordings(vaRec, wearRec, d.cfg.MaxSyncLagSeconds, d.cfg.SampleRate)
	sp.End()
	if err != nil {
		metInspectErrors.Inc()
		return nil, fmt.Errorf("core: %w", err)
	}
	var spans []segment.Span
	if d.cfg.Method == detector.MethodFull {
		if d.cfg.Segmenter == nil {
			metInspectErrors.Inc()
			return nil, fmt.Errorf("core: full method needs a segmenter")
		}
		sp = stageSegment.Start()
		spans, err = d.cfg.Segmenter.EffectiveSpans(vaRec)
		sp.End()
		if err != nil {
			metInspectErrors.Inc()
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	score, err := d.det.ScoreWithSpans(vaRec, aligned, spans, rng)
	if err != nil {
		metInspectErrors.Inc()
		return nil, fmt.Errorf("core: %w", err)
	}
	attack := d.det.Detect(score)
	if attack {
		metVerdictAttack.Inc()
	} else {
		metVerdictAccept.Inc()
	}
	return &Verdict{
		Score:      score,
		Attack:     attack,
		SyncOffset: tau,
		Spans:      spans,
	}, nil
}

// Score runs the pipeline and returns only the similarity score; it is the
// hot path used by the evaluation sweeps.
func (d *Defense) Score(vaRec, wearRec []float64, rng *rand.Rand) (float64, error) {
	sp := stageAlign.Start()
	aligned, _, err := syncnet.AlignRecordings(vaRec, wearRec, d.cfg.MaxSyncLagSeconds, d.cfg.SampleRate)
	sp.End()
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	score, err := d.det.Score(vaRec, aligned, rng)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return score, nil
}

// ScoreWithSpans runs the pipeline with caller-provided effective-phoneme
// spans instead of the configured Segmenter. It is the per-call span path
// of the parallel evaluation engine: the Defense reads only immutable
// state, so concurrent callers need nothing but their own rng. The spans
// are ignored by the baseline methods.
func (d *Defense) ScoreWithSpans(vaRec, wearRec []float64, spans []segment.Span, rng *rand.Rand) (float64, error) {
	sp := stageAlign.Start()
	aligned, _, err := syncnet.AlignRecordings(vaRec, wearRec, d.cfg.MaxSyncLagSeconds, d.cfg.SampleRate)
	sp.End()
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	score, err := d.det.ScoreWithSpans(vaRec, aligned, spans, rng)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return score, nil
}

// Threshold returns the configured decision threshold.
func (d *Defense) Threshold() float64 { return d.cfg.Threshold }

// Method returns the configured detection method.
func (d *Defense) Method() detector.Method { return d.cfg.Method }
