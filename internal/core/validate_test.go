package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/detector"
	"vibguard/internal/device"
)

func newValidationDefense(t *testing.T) *Defense {
	t.Helper()
	d, err := NewDefense(DefaultConfig(device.NewFossilGen5(), &detector.StaticSegmenter{}))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInspectTypedErrors(t *testing.T) {
	d := newValidationDefense(t)
	rng := rand.New(rand.NewSource(1))
	va := make([]float64, 16000)
	for i := range va {
		va[i] = math.Sin(float64(i) / 9)
	}
	wear := make([]float64, 16400)
	copy(wear, va)

	cases := []struct {
		name     string
		va, wear []float64
		want     error
	}{
		{"empty va", nil, wear, ErrEmptyRecording},
		{"empty wearable", va, nil, ErrEmptyRecording},
		{"nan in wearable", va, withValue(wear, 100, math.NaN()), ErrNonFiniteRecording},
		{"inf in va", withValue(va, 5, math.Inf(1)), wear, ErrNonFiniteRecording},
		{"truncated va", va[:100], wear[:100], ErrRecordingTooShort},
		{"half-rate wearable", va, wear[:len(va)/2], ErrLengthMismatch},
		{"overlong wearable", va, make([]float64, 4*len(va)), ErrLengthMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := d.Inspect(tc.va, tc.wear, rng)
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
			var issue *RecordingIssue
			if !errors.As(err, &issue) {
				t.Errorf("err %v is not a *RecordingIssue", err)
			}
		})
	}
}

func withValue(x []float64, i int, v float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	out[i] = v
	return out
}

// TestInspectRepairsDCOffset verifies graceful degradation: a biased
// wearable recording is scored, not rejected, and the verdict matches the
// unbiased one.
func TestInspectRepairsDCOffset(t *testing.T) {
	spans, legitVA, legitWear, _, _ := buildScenario(t, 21)
	d, err := NewDefense(DefaultConfig(device.NewFossilGen5(), &detector.StaticSegmenter{Spans: spans}))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := d.Inspect(legitVA, legitWear, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	biased := make([]float64, len(legitWear))
	for i, v := range legitWear {
		biased[i] = v + 0.2
	}
	repaired, err := d.Inspect(legitVA, biased, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("DC-biased recording should degrade gracefully: %v", err)
	}
	if repaired.Attack != clean.Attack {
		t.Errorf("DC bias flipped the verdict: clean=%v repaired=%v", clean.Attack, repaired.Attack)
	}
	if math.Abs(repaired.Score-clean.Score) > 0.05 {
		t.Errorf("repaired score %v drifted from clean score %v", repaired.Score, clean.Score)
	}
}

// TestInspectCleanInputUntouched pins that validation does not perturb
// healthy recordings: Inspect and the unvalidated Score fast path must
// agree bit-for-bit, which only holds if sanitization leaves clean input
// alone.
func TestInspectCleanInputUntouched(t *testing.T) {
	spans, legitVA, legitWear, _, _ := buildScenario(t, 23)
	d, err := NewDefense(DefaultConfig(device.NewFossilGen5(), &detector.StaticSegmenter{Spans: spans}))
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Inspect(legitVA, legitWear, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Score(legitVA, legitWear, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if v.Score != s {
		t.Errorf("Inspect score %v != fast-path score %v on clean input", v.Score, s)
	}
	if math.IsNaN(v.Score) || math.IsInf(v.Score, 0) {
		t.Errorf("non-finite score %v", v.Score)
	}
}
