package core

import (
	"math"
	"testing"
)

// TestFisherIntervalNonFinite is the constant-cell regression: a window of
// constant cells has zero variance, so the Pearson r upstream is NaN —
// and NaN passes a plain min/max clamp untouched, because both NaN
// comparisons are false. The interval must be the maximal (-1, 1), which
// straddles every threshold in [-1, 1] and lands the evaluate() switch in
// its default no-exit branch, instead of NaN endpoints that would make
// both straddle comparisons false too and could misorder a later refactor
// of the branch logic.
func TestFisherIntervalNonFinite(t *testing.T) {
	for _, r := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		lo, hi := fisherInterval(r, 200, 1.96)
		if lo != -1 || hi != 1 {
			t.Errorf("fisherInterval(%v) = (%v, %v), want maximal (-1, 1)", r, lo, hi)
		}
		// The no-exit contract: neither switch arm may fire for any
		// threshold the detector can hold.
		for _, thr := range []float64{-1, -0.5, 0, 0.45, 1} {
			if lo > thr || hi < thr {
				t.Errorf("fisherInterval(%v) interval clears threshold %v — spurious early exit", r, thr)
			}
		}
	}
}

// TestFisherIntervalFinite pins the ordinary path around the fix: finite r
// still produces a proper interval containing tanh(atanh(r)) ≈ r, and the
// ±1 clamp keeps atanh finite at the extremes.
func TestFisherIntervalFinite(t *testing.T) {
	for _, r := range []float64{-0.9, 0, 0.45, 0.9} {
		lo, hi := fisherInterval(r, 100, 1.96)
		if !(lo < r && r < hi) {
			t.Errorf("fisherInterval(%v) = (%v, %v) does not contain r", r, lo, hi)
		}
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Errorf("fisherInterval(%v) produced NaN endpoints", r)
		}
	}
	for _, r := range []float64{1, -1, 1.5, -1.5} {
		lo, hi := fisherInterval(r, 100, 1.96)
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			t.Errorf("fisherInterval(%v) = (%v, %v), want finite clamped interval", r, lo, hi)
		}
	}
	// Wider windows tighten the interval.
	lo1, hi1 := fisherInterval(0.5, 20, 1.96)
	lo2, hi2 := fisherInterval(0.5, 2000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not tighten with n: n=20 width %v, n=2000 width %v", hi1-lo1, hi2-lo2)
	}
}
