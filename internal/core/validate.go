package core

import (
	"errors"
	"fmt"
	"math"

	"vibguard/internal/dsp"
)

// Typed recording-validation errors. Inspect classifies corrupt input into
// one of these instead of feeding it to the detectors, where it would
// surface as a garbage score (a half-rate recording correlates near zero
// and flags a legitimate user) or poison every downstream statistic with
// NaN. errors.Is sees through the RecordingIssue wrapper.
var (
	// ErrEmptyRecording marks a recording with no samples.
	ErrEmptyRecording = errors.New("core: empty recording")
	// ErrNonFiniteRecording marks NaN or ±Inf samples (sensor glitches,
	// corrupt transport frames).
	ErrNonFiniteRecording = errors.New("core: recording contains non-finite samples")
	// ErrRecordingTooShort marks a recording below the minimum usable
	// length (a truncated capture).
	ErrRecordingTooShort = errors.New("core: recording too short")
	// ErrLengthMismatch marks a wearable recording whose length is
	// inconsistent with the VA recording beyond what network delay can
	// explain — the signature of a sample-rate mismatch or severe
	// truncation, which cross-correlation cannot align.
	ErrLengthMismatch = errors.New("core: recording length mismatch")
)

// MinInspectSeconds is the shortest recording Inspect accepts. Below one
// sensing STFT window of vibration data there is nothing to correlate.
const MinInspectSeconds = 0.05

// RecordingIssue wraps a typed validation error with the recording it was
// found in.
type RecordingIssue struct {
	// Source is "va" or "wearable".
	Source string
	// Err is one of the typed validation errors.
	Err error
	// Detail locates the problem (sample index, lengths, ...).
	Detail string
}

// Error implements the error interface.
func (e *RecordingIssue) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("%v (%s recording)", e.Err, e.Source)
	}
	return fmt.Sprintf("%v (%s recording: %s)", e.Err, e.Source, e.Detail)
}

// Unwrap exposes the typed error to errors.Is.
func (e *RecordingIssue) Unwrap() error { return e.Err }

// checkRecording validates one recording: non-empty, finite, long enough.
func checkRecording(source string, x []float64, minSamples int) error {
	if len(x) == 0 {
		return &RecordingIssue{Source: source, Err: ErrEmptyRecording}
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &RecordingIssue{Source: source, Err: ErrNonFiniteRecording,
				Detail: fmt.Sprintf("sample %d = %v", i, v)}
		}
	}
	if len(x) < minSamples {
		return &RecordingIssue{Source: source, Err: ErrRecordingTooShort,
			Detail: fmt.Sprintf("%d samples, need >= %d", len(x), minSamples)}
	}
	return nil
}

// dcOffsetTolerance is the largest recording mean treated as natural:
// acoustic captures are zero-mean, so anything beyond this is an ADC bias
// that would distort the Eq. (5) alignment and is removed before scoring.
// Staying well above numeric noise keeps clean recordings bit-untouched, so
// validated and unvalidated scoring paths agree exactly on good input.
const dcOffsetTolerance = 0.01

// removeDCOffset returns x with its mean subtracted when the bias exceeds
// the tolerance, and x itself (no copy) otherwise.
func removeDCOffset(x []float64) []float64 {
	mean := dsp.Mean(x)
	if math.Abs(mean) <= dcOffsetTolerance {
		return x
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - mean
	}
	return out
}

// validatePair validates both recordings of an Inspect call and returns
// sanitized versions: fatal corruption (empty, non-finite, truncated,
// length-inconsistent) becomes a typed error, while benign degradation (DC
// bias) is repaired in place of failing — graceful degradation on the
// conditions WearID identifies as the practical failure mode of
// wearable-assisted verification.
func (d *Defense) validatePair(vaRec, wearRec []float64) ([]float64, []float64, error) {
	minSamples := int(MinInspectSeconds * d.cfg.SampleRate)
	if err := checkRecording("va", vaRec, minSamples); err != nil {
		return nil, nil, err
	}
	if err := checkRecording("wearable", wearRec, minSamples); err != nil {
		return nil, nil, err
	}
	// The wearable recording is the VA recording plus up to
	// MaxSyncLagSeconds of network-delay lead. A length far outside that
	// envelope means the two captures cannot describe the same command.
	maxLead := int(d.cfg.MaxSyncLagSeconds * d.cfg.SampleRate)
	slack := len(vaRec) / 4
	if len(wearRec) < len(vaRec)-slack || len(wearRec) > len(vaRec)+maxLead+slack {
		return nil, nil, &RecordingIssue{Source: "wearable", Err: ErrLengthMismatch,
			Detail: fmt.Sprintf("wearable %d samples vs va %d (max lead %d)", len(wearRec), len(vaRec), maxLead)}
	}
	return removeDCOffset(vaRec), removeDCOffset(wearRec), nil
}
