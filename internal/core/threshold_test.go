package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/detector"
	"vibguard/internal/device"
)

// TestInspectThresholdBoundary drives the full pipeline to the exact
// decision boundary: it first measures the score of a real recording pair
// under a fixed seed, then rebuilds the defense with the threshold set to
// that score (and one ULP above it) and re-runs the identical inspection.
// Detect is a strict less-than, so score == threshold must pass while
// threshold = Nextafter(score, +Inf) must flag — a bit-exact contract that
// also pins Inspect's determinism (same seed, same score, both runs).
func TestInspectThresholdBoundary(t *testing.T) {
	spans, legitVA, legitWear, _, _ := buildScenario(t, 21)
	seg := &detector.StaticSegmenter{Spans: spans}

	inspect := func(threshold float64) *Verdict {
		t.Helper()
		cfg := DefaultConfig(device.NewFossilGen5(), seg)
		cfg.Threshold = threshold
		d, err := NewDefense(cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, err := d.Inspect(legitVA, legitWear, rand.New(rand.NewSource(33)))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	score := inspect(DefaultThreshold).Score
	if math.IsNaN(score) || math.IsInf(score, 0) {
		t.Fatalf("scenario score %v is not finite", score)
	}

	at := inspect(score)
	if at.Score != score {
		t.Fatalf("Inspect is not deterministic under a fixed seed: %v then %v", score, at.Score)
	}
	if at.Attack {
		t.Errorf("score %v at threshold %v flagged as attack; Detect must be a strict less-than", at.Score, score)
	}
	above := inspect(math.Nextafter(score, math.Inf(1)))
	if !above.Attack {
		t.Errorf("score %v one ULP below threshold must flag as attack", above.Score)
	}
	below := inspect(math.Nextafter(score, math.Inf(-1)))
	if below.Attack {
		t.Errorf("score %v one ULP above threshold must pass", below.Score)
	}
}

// TestInspectNonFiniteScoreTyped pins the ErrNonFiniteScore contract at
// the core layer: recordings whose every sample is finite (so validation
// admits them) but whose power overflows float64 must fail Inspect with
// the detector's typed sentinel, not a verdict built from NaN.
func TestInspectNonFiniteScoreTyped(t *testing.T) {
	spans, legitVA, legitWear, _, _ := buildScenario(t, 21)
	huge := func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = v * 1e160
		}
		return out
	}
	d, err := NewDefense(DefaultConfig(device.NewFossilGen5(), &detector.StaticSegmenter{Spans: spans}))
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Inspect(huge(legitVA), huge(legitWear), rand.New(rand.NewSource(33)))
	if !errors.Is(err, detector.ErrNonFiniteScore) {
		t.Fatalf("Inspect err = %v, want detector.ErrNonFiniteScore", err)
	}
	if v != nil {
		t.Errorf("Inspect returned a verdict (%+v) alongside ErrNonFiniteScore", v)
	}
}

// TestDefaultThresholdAliasesDetector pins the cross-package constant: the
// core default must stay an alias of the detector's, so retuning the
// calibrated threshold can never reintroduce the historical 0.45-vs-0.5
// drift between the two entry points.
func TestDefaultThresholdAliasesDetector(t *testing.T) {
	if DefaultThreshold != detector.DefaultThreshold {
		t.Fatalf("core.DefaultThreshold = %v, detector.DefaultThreshold = %v; they must be one constant",
			DefaultThreshold, detector.DefaultThreshold)
	}
}
