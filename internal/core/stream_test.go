package core_test

import (
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/attack"
	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/eval"
	"vibguard/internal/selection"
)

// streamSamples builds one legitimate session plus one of each attack kind
// from the golden evaluation generator at the given seed, with the
// ground-truth oracle spans each sample's defense will use.
func streamSamples(t *testing.T, seed int64) []*eval.Sample {
	t.Helper()
	g, err := eval.NewGenerator(3, seed)
	if err != nil {
		t.Fatal(err)
	}
	cond := eval.DefaultCondition()
	var samples []*eval.Sample
	legit, err := g.Legit(0, 0, cond)
	if err != nil {
		t.Fatal(err)
	}
	samples = append(samples, legit)
	legit2, err := g.Legit(1, 1, cond)
	if err != nil {
		t.Fatal(err)
	}
	samples = append(samples, legit2)
	for _, kind := range attack.Kinds() {
		s, err := g.Attack(kind, 0, 1, cond)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	return samples
}

// sampleDefense builds the sample's defense around its oracle spans.
func sampleDefense(t *testing.T, s *eval.Sample) *core.Defense {
	t.Helper()
	provider := &eval.OracleProvider{Selected: selection.CanonicalSelected()}
	spans, err := provider.SpansFor(s)
	if err != nil {
		t.Fatal(err)
	}
	clone := *device.NewFossilGen5()
	d, err := core.NewDefense(core.DefaultConfig(&clone, &detector.StaticSegmenter{Spans: spans}))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// label names a sample in failure messages.
func label(s *eval.Sample) string {
	if !s.IsAttack {
		return "legit"
	}
	return s.AttackKind.String()
}

// feedStream pushes a recording through a StreamInspector in chunkSamples
// slices and finishes, returning the verdict.
func feedStream(t *testing.T, si *core.StreamInspector, va []float64, chunkSamples int) *core.Verdict {
	t.Helper()
	for lo := 0; lo < len(va); lo += chunkSamples {
		hi := lo + chunkSamples
		if hi > len(va) {
			hi = len(va)
		}
		v, err := si.Feed(va[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			break
		}
	}
	v, err := si.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestStreamInspectorMatchesBatchBitExact is the determinism contract of
// the streaming pipeline: with early exit disabled, streaming a recording
// chunk by chunk and finishing returns math.Float64bits-identical scores
// (and identical verdicts, offsets, and spans) to Defense.Inspect on the
// concatenated audio — for a legitimate session and all four attack
// kinds, at several chunk sizes.
func TestStreamInspectorMatchesBatchBitExact(t *testing.T) {
	const seed = 1234
	for _, s := range streamSamples(t, 77) {
		d := sampleDefense(t, s)
		want, err := d.Inspect(s.VARec, s.WearRec, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("%s: batch: %v", label(s), err)
		}
		for _, chunk := range []int{1600, 701, len(s.VARec)} {
			si, err := d.NewStreamInspector(core.StreamConfig{DisableEarlyExit: true}, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := si.FeedWearable(s.WearRec); err != nil {
				t.Fatal(err)
			}
			got := feedStream(t, si, s.VARec, chunk)
			if got.Early {
				t.Fatalf("%s chunk %d: early verdict with early exit disabled", label(s), chunk)
			}
			if math.Float64bits(got.Score) != math.Float64bits(want.Score) {
				t.Errorf("%s chunk %d: streamed score %v != batch score %v",
					label(s), chunk, got.Score, want.Score)
			}
			if got.Attack != want.Attack || got.SyncOffset != want.SyncOffset {
				t.Errorf("%s chunk %d: streamed verdict (attack %v, tau %d) != batch (attack %v, tau %d)",
					label(s), chunk, got.Attack, got.SyncOffset, want.Attack, want.SyncOffset)
			}
			if len(got.Spans) != len(want.Spans) {
				t.Errorf("%s chunk %d: %d spans != batch %d", label(s), chunk, len(got.Spans), len(want.Spans))
			}
			if got.Consumed != len(s.VARec) {
				t.Errorf("%s chunk %d: consumed %d of %d samples", label(s), chunk, got.Consumed, len(s.VARec))
			}
		}
	}
}

// TestStreamInspectorEarlyExitSoundness is the early-exit soundness table:
// across the golden corpus seeds, every streamed session with early exit
// enabled must reach the same attack/legit verdict as the batch pipeline —
// zero flips — and the early exit must actually fire on a healthy share of
// sessions (otherwise the mechanism is dead weight and the test is
// vacuous).
func TestStreamInspectorEarlyExitSoundness(t *testing.T) {
	const seed = 5150
	const chunk = 1600 // 100 ms of 16 kHz audio
	sessions, early, flips := 0, 0, 0
	for _, corpusSeed := range []int64{77, 78, 1379} {
		for _, s := range streamSamples(t, corpusSeed) {
			d := sampleDefense(t, s)
			want, err := d.Inspect(s.VARec, s.WearRec, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("seed %d %s: batch: %v", corpusSeed, label(s), err)
			}
			si, err := d.NewStreamInspector(core.StreamConfig{}, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := si.FeedWearable(s.WearRec); err != nil {
				t.Fatal(err)
			}
			got := feedStream(t, si, s.VARec, chunk)
			sessions++
			if got.Early {
				early++
				if got.Consumed >= len(s.VARec) {
					t.Errorf("seed %d %s: early verdict consumed the whole recording (%d samples)",
						corpusSeed, label(s), got.Consumed)
				}
			}
			if got.Attack != want.Attack {
				flips++
				t.Errorf("seed %d %s: streamed verdict attack=%v (score %v, early %v) flips batch attack=%v (score %v)",
					corpusSeed, label(s), got.Attack, got.Score, got.Early, want.Attack, want.Score)
			}
		}
	}
	if flips != 0 {
		t.Fatalf("%d verdict flips in %d sessions", flips, sessions)
	}
	if early == 0 {
		t.Fatalf("early exit never fired in %d sessions", sessions)
	}
	t.Logf("early exits: %d of %d sessions, zero flips", early, sessions)
}

// TestStreamInspectorLifecycle pins the state machine: feeding after
// Finish errors, Finish after an early verdict returns it unchanged, and
// Feed after a verdict is a no-op returning the cached verdict.
func TestStreamInspectorLifecycle(t *testing.T) {
	s := streamSamples(t, 77)[0]
	d := sampleDefense(t, s)
	si, err := d.NewStreamInspector(core.StreamConfig{DisableEarlyExit: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := si.FeedWearable(s.WearRec); err != nil {
		t.Fatal(err)
	}
	if _, err := si.Feed(s.VARec); err != nil {
		t.Fatal(err)
	}
	v, err := si.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Early {
		t.Fatalf("fallback verdict = %+v, want a non-early verdict", v)
	}
	if _, err := si.Feed([]float64{0}); err == nil {
		t.Fatal("Feed after Finish did not error")
	}
	if err := si.FeedWearable([]float64{0}); err == nil {
		t.Fatal("FeedWearable after Finish did not error")
	}
}
