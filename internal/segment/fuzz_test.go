package segment

import (
	"bytes"
	"testing"

	"vibguard/internal/brnn"
	"vibguard/internal/mfcc"
	"vibguard/internal/selection"
)

// FuzzLoad hammers the detector deserializer with malformed input:
// garbage, truncations, and mutations of a valid saved detector. Load
// must never panic; when it does accept a blob, the restored detector
// must satisfy the invariants NewDetector enforces (MFCC-matched input
// dimension, binary classes, non-empty phoneme set), since everything
// downstream — DetectFrames, the serve loop — relies on them. Seed
// corpora live in testdata/fuzz/FuzzLoad.
func FuzzLoad(f *testing.F) {
	// A valid saved detector (tiny hidden layer keeps the corpus small;
	// the input dimension must match the MFCC geometry to be accepted).
	d, err := NewDetector(selection.CanonicalSelected(),
		brnn.Config{InputDim: 14, HiddenDim: 2, NumClasses: 2, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := d.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte("not a detector"))
	f.Add([]byte{})
	// A flipped byte in the middle of the model blob.
	mutated := append([]byte(nil), valid.Bytes()...)
	mutated[len(mutated)/2] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if d.Model().InputDim() != mfcc.DefaultConfig().NumCoeffs {
			t.Fatalf("accepted input dim %d", d.Model().InputDim())
		}
		if d.Model().NumClasses() != 2 {
			t.Fatalf("accepted %d classes", d.Model().NumClasses())
		}
		// The restored detector must actually run.
		if _, err := d.DetectFrames(make([]float64, 800)); err != nil {
			t.Fatalf("restored detector cannot detect: %v", err)
		}
	})
}
