// Package segment implements the barrier-effect-sensitive phoneme
// segmentation of Section V-B: MFCC features over 25 ms/10 ms frames feed
// a bidirectional LSTM that classifies each frame as "effective phoneme"
// (barrier-effect sensitive) or not. Detected frames are merged into
// sample-accurate segments that the defense extracts and concatenates for
// cross-domain sensing.
package segment

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"vibguard/internal/brnn"
	"vibguard/internal/dsp"
	"vibguard/internal/mfcc"
	"vibguard/internal/phoneme"
)

// Span is a half-open sample range [Start, End) of detected effective-
// phoneme audio.
type Span struct {
	Start, End int
}

// Len returns the span length in samples.
func (s Span) Len() int { return s.End - s.Start }

// Detector wraps the MFCC extractor, the BRNN model, and the selected
// phoneme set. The model weights are read-only at inference; the mutable
// per-call scratch lives in a pool of brnn.Inference sessions, so one
// Detector can be shared by any number of goroutines (serve workers, the
// parallel evaluation engine) with allocation-free steady-state inference.
type Detector struct {
	ext      *mfcc.Extractor
	model    *brnn.Model
	selected map[string]bool
	scratch  sync.Pool // of *inferScratch
}

// inferScratch is one worker's pooled inference state: a brnn session plus
// the prediction buffer it refills.
type inferScratch struct {
	inf  *brnn.Inference
	pred []int
}

// validateModel enforces the invariants NewDetector promises: the model's
// input dimension matches the MFCC coefficient count and detection is
// binary. Load re-runs it on deserialized models so a stale or mismatched
// detector file fails at load time, not with a confusing dim error (or a
// silent mislabel) later.
func validateModel(m *brnn.Model, mfccCfg mfcc.Config) error {
	if m.InputDim() != mfccCfg.NumCoeffs {
		return fmt.Errorf("segment: model input dim %d != MFCC coeffs %d", m.InputDim(), mfccCfg.NumCoeffs)
	}
	if m.NumClasses() != 2 {
		return fmt.Errorf("segment: detection is binary, got %d classes", m.NumClasses())
	}
	return nil
}

// newDetector assembles a Detector around a validated model.
func newDetector(ext *mfcc.Extractor, model *brnn.Model, selected map[string]bool) *Detector {
	d := &Detector{ext: ext, model: model, selected: selected}
	d.scratch.New = func() any {
		return &inferScratch{inf: model.NewInference()}
	}
	return d
}

// NewDetector creates an untrained detector for the given selected phoneme
// set. The model input dimension must match the MFCC coefficient count.
func NewDetector(selected map[string]bool, modelCfg brnn.Config) (*Detector, error) {
	if len(selected) == 0 {
		return nil, fmt.Errorf("segment: empty selected phoneme set")
	}
	mfccCfg := mfcc.DefaultConfig()
	if modelCfg.InputDim != mfccCfg.NumCoeffs {
		return nil, fmt.Errorf("segment: model input dim %d != MFCC coeffs %d", modelCfg.InputDim, mfccCfg.NumCoeffs)
	}
	if modelCfg.NumClasses != 2 {
		return nil, fmt.Errorf("segment: detection is binary, got %d classes", modelCfg.NumClasses)
	}
	ext, err := mfcc.NewExtractor(mfccCfg)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	model, err := brnn.New(modelCfg)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	sel := make(map[string]bool, len(selected))
	for k, v := range selected {
		sel[k] = v
	}
	return newDetector(ext, model, sel), nil
}

// Selected reports whether a phoneme symbol is in the detector's effective
// set.
func (d *Detector) Selected(symbol string) bool { return d.selected[symbol] }

// Model returns the underlying BRNN (for serialization).
func (d *Detector) Model() *brnn.Model { return d.model }

// frameLabel returns the ground-truth label of the MFCC frame starting at
// the given sample: 1 if the frame center falls inside a selected phoneme
// segment, else 0.
func (d *Detector) frameLabel(alignment []phoneme.Segment, frameStart int) int {
	center := frameStart + d.ext.FrameLength()/2
	for _, seg := range alignment {
		if center >= seg.Start && center < seg.End {
			if d.selected[seg.Symbol] {
				return 1
			}
			return 0
		}
	}
	return 0
}

// BuildSequence converts a labeled utterance into a training sequence:
// MFCC features with per-frame ground-truth labels derived from the
// time-aligned transcription.
func (d *Detector) BuildSequence(utt *phoneme.Utterance) (brnn.Sequence, error) {
	feats, err := d.ext.Extract(utt.Samples)
	if err != nil {
		return brnn.Sequence{}, fmt.Errorf("segment: %w", err)
	}
	if len(feats) == 0 {
		return brnn.Sequence{}, fmt.Errorf("segment: utterance too short (%d samples)", len(utt.Samples))
	}
	labels := make([]int, len(feats))
	for t := range feats {
		labels[t] = d.frameLabel(utt.Alignment, t*d.ext.FrameShift())
	}
	return brnn.Sequence{Inputs: feats, Labels: labels}, nil
}

// Train fits the BRNN on labeled utterances, returning per-epoch losses.
func (d *Detector) Train(utts []*phoneme.Utterance, cfg brnn.TrainConfig) ([]float64, error) {
	if len(utts) == 0 {
		return nil, fmt.Errorf("segment: no training utterances")
	}
	data := make([]brnn.Sequence, 0, len(utts))
	for _, u := range utts {
		seq, err := d.BuildSequence(u)
		if err != nil {
			return nil, err
		}
		data = append(data, seq)
	}
	trainer, err := brnn.NewTrainer(d.model, cfg)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	losses, err := trainer.Train(data)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	return losses, nil
}

// FrameAccuracy evaluates frame-level detection accuracy on labeled
// utterances (the statistic of Section V-B: 94% without a barrier, 91%
// through a barrier).
func (d *Detector) FrameAccuracy(utts []*phoneme.Utterance) (float64, error) {
	data := make([]brnn.Sequence, 0, len(utts))
	for _, u := range utts {
		seq, err := d.BuildSequence(u)
		if err != nil {
			return 0, err
		}
		data = append(data, seq)
	}
	acc, err := brnn.Evaluate(d.model, data)
	if err != nil {
		return 0, fmt.Errorf("segment: %w", err)
	}
	return acc, nil
}

// DetectFrames classifies each MFCC frame of an audio recording as
// effective (true) or not, applying a short median smoothing to remove
// single-frame flicker. Inference runs on a pooled batched session, so
// concurrent callers share read-only weights and reuse scratch instead of
// allocating per call.
func (d *Detector) DetectFrames(audio []float64) ([]bool, error) {
	feats, err := d.ext.Extract(audio)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if len(feats) == 0 {
		return nil, nil
	}
	s := d.scratch.Get().(*inferScratch)
	s.pred, err = s.inf.Predict(feats, s.pred)
	if err != nil {
		d.scratch.Put(s)
		return nil, fmt.Errorf("segment: %w", err)
	}
	out := make([]bool, len(s.pred))
	for t, p := range s.pred {
		out[t] = p == 1
	}
	d.scratch.Put(s)
	return medianSmooth(out, 2), nil
}

// DetectFramesBatch classifies the frames of several recordings in one
// batched inference pass: the model weights are traversed once per
// timestep for the whole batch instead of once per recording. The result
// for each recording is identical to DetectFrames on it (nil for
// recordings too short to frame).
func (d *Detector) DetectFramesBatch(audios [][]float64) ([][]bool, error) {
	feats := make([][][]float64, len(audios))
	for i, audio := range audios {
		f, err := d.ext.Extract(audio)
		if err != nil {
			return nil, fmt.Errorf("segment: recording %d: %w", i, err)
		}
		feats[i] = f
	}
	s := d.scratch.Get().(*inferScratch)
	probs, err := s.inf.ForwardBatch(feats)
	if err != nil {
		d.scratch.Put(s)
		return nil, fmt.Errorf("segment: %w", err)
	}
	out := make([][]bool, len(audios))
	for i, seq := range probs {
		if len(seq) == 0 {
			continue
		}
		frames := make([]bool, len(seq))
		for t, p := range seq {
			best := 0
			for k, v := range p {
				if v > p[best] {
					best = k
				}
			}
			frames[t] = best == 1
		}
		out[i] = medianSmooth(frames, 2)
	}
	d.scratch.Put(s)
	return out, nil
}

// medianSmooth applies a sliding majority vote of half-width radius.
func medianSmooth(x []bool, radius int) []bool {
	if radius <= 0 || len(x) == 0 {
		return x
	}
	out := make([]bool, len(x))
	for i := range x {
		count, total := 0, 0
		for j := i - radius; j <= i+radius; j++ {
			if j < 0 || j >= len(x) {
				continue
			}
			total++
			if x[j] {
				count++
			}
		}
		out[i] = count*2 > total
	}
	return out
}

// Spans merges consecutive detected frames into sample spans. Because
// frames overlap (shift < frame length), runs separated by a short
// inactive gap can still overlap or touch in sample terms — with the
// default 160/400 geometry, two runs one inactive frame apart overlap by
// 80 samples. Such spans are merged, so ExtractSpans never duplicates
// audio or double-fades a seam.
func (d *Detector) Spans(frames []bool) []Span {
	var spans []Span
	shift, frameLen := d.ext.FrameShift(), d.ext.FrameLength()
	start := -1
	for t := 0; t <= len(frames); t++ {
		active := t < len(frames) && frames[t]
		switch {
		case active && start < 0:
			start = t
		case !active && start >= 0:
			sp := Span{Start: start * shift, End: (t-1)*shift + frameLen}
			if n := len(spans); n > 0 && sp.Start <= spans[n-1].End {
				if sp.End > spans[n-1].End {
					spans[n-1].End = sp.End
				}
			} else {
				spans = append(spans, sp)
			}
			start = -1
		}
	}
	return spans
}

// ExtractEffective detects effective-phoneme frames in a recording and
// returns the concatenated samples of the detected spans, plus the spans
// themselves (which the VA sends to the wearable so both recordings are
// segmented identically, Section VI-A).
func (d *Detector) ExtractEffective(audio []float64) ([]float64, []Span, error) {
	frames, err := d.DetectFrames(audio)
	if err != nil {
		return nil, nil, err
	}
	spans := d.Spans(frames)
	return ExtractSpans(audio, spans), spans, nil
}

// ExtractSpans concatenates the given sample spans of a recording,
// clamping out-of-range bounds. Each piece gets a short raised-cosine fade
// so the splice points do not introduce clicks — broadband discontinuities
// at identical positions in both devices' extractions would otherwise
// masquerade as correlated signal. It is used on the wearable side with
// the spans computed from the VA recording.
func ExtractSpans(audio []float64, spans []Span) []float64 {
	var out []float64
	for _, sp := range spans {
		start, end := sp.Start, sp.End
		if start < 0 {
			start = 0
		}
		if end > len(audio) {
			end = len(audio)
		}
		if end <= start {
			continue
		}
		piece := make([]float64, end-start)
		copy(piece, audio[start:end])
		fade := len(piece) / 16
		if fade > 160 {
			fade = 160 // 10 ms at 16 kHz
		}
		out = append(out, dsp.FadeEdges(piece, fade)...)
	}
	return out
}

// detectorFile is the serialized form of a trained Detector.
type detectorFile struct {
	Selected []string
	Model    []byte
}

// Save serializes the trained detector (model weights plus the selected
// phoneme set) to a writer.
func (d *Detector) Save(w io.Writer) error {
	blob, err := d.model.MarshalBinary()
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	file := detectorFile{Model: blob}
	for sym := range d.selected {
		file.Selected = append(file.Selected, sym)
	}
	sort.Strings(file.Selected)
	if err := gob.NewEncoder(w).Encode(&file); err != nil {
		return fmt.Errorf("segment: encode: %w", err)
	}
	return nil
}

// Load restores a detector serialized by Save, re-validating the
// invariants NewDetector enforces: the deserialized model must match the
// MFCC coefficient count and be binary, so a stale or mismatched detector
// file fails here with a clear error instead of mislabeling frames or
// dying later with a confusing dim mismatch.
func Load(r io.Reader) (*Detector, error) {
	var file detectorFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("segment: decode: %w", err)
	}
	if len(file.Selected) == 0 {
		return nil, fmt.Errorf("segment: serialized detector has no selected phonemes")
	}
	var model brnn.Model
	if err := model.UnmarshalBinary(file.Model); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	mfccCfg := mfcc.DefaultConfig()
	if err := validateModel(&model, mfccCfg); err != nil {
		return nil, err
	}
	ext, err := mfcc.NewExtractor(mfccCfg)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	selected := make(map[string]bool, len(file.Selected))
	for _, sym := range file.Selected {
		selected[sym] = true
	}
	return newDetector(ext, &model, selected), nil
}

// OracleSpans returns the ground-truth effective-phoneme spans of an
// utterance, used to validate the learned detector and as a baseline.
func OracleSpans(utt *phoneme.Utterance, selected map[string]bool) []Span {
	var spans []Span
	for _, seg := range utt.Alignment {
		if selected[seg.Symbol] {
			spans = append(spans, Span{Start: seg.Start, End: seg.End})
		}
	}
	return spans
}
