package segment

import (
	"bytes"
	"testing"

	"vibguard/internal/brnn"
	"vibguard/internal/phoneme"
	"vibguard/internal/selection"
)

// smallModelCfg keeps tests fast.
func smallModelCfg() brnn.Config {
	return brnn.Config{InputDim: 14, HiddenDim: 16, NumClasses: 2, Seed: 1}
}

func trainingUtterances(t *testing.T, numVoices, numCommands int) []*phoneme.Utterance {
	t.Helper()
	voices := phoneme.NewVoicePool(numVoices, 5)
	cmds := phoneme.Commands()
	if numCommands > len(cmds) {
		numCommands = len(cmds)
	}
	var utts []*phoneme.Utterance
	for _, v := range voices {
		synth, err := phoneme.NewSynthesizer(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, cmd := range cmds[:numCommands] {
			u, err := synth.Synthesize(cmd)
			if err != nil {
				t.Fatal(err)
			}
			utts = append(utts, u)
		}
	}
	return utts
}

func TestNewDetectorValidation(t *testing.T) {
	sel := selection.CanonicalSelected()
	if _, err := NewDetector(nil, smallModelCfg()); err == nil {
		t.Error("empty selected set should error")
	}
	bad := smallModelCfg()
	bad.InputDim = 10
	if _, err := NewDetector(sel, bad); err == nil {
		t.Error("mismatched input dim should error")
	}
	bad = smallModelCfg()
	bad.NumClasses = 3
	if _, err := NewDetector(sel, bad); err == nil {
		t.Error("non-binary classes should error")
	}
	d, err := NewDetector(sel, smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Selected("er") || d.Selected("s") {
		t.Error("selected set membership wrong")
	}
}

func TestBuildSequenceLabels(t *testing.T) {
	sel := selection.CanonicalSelected()
	d, err := NewDetector(sel, smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	// "stop the music": /s/ frames must be labeled 0, vowels 1.
	utt, err := synth.Synthesize(phoneme.Commands()[5])
	if err != nil {
		t.Fatal(err)
	}
	seq, err := d.BuildSequence(utt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Inputs) != len(seq.Labels) {
		t.Fatal("inputs/labels length mismatch")
	}
	ones, zeros := 0, 0
	for _, l := range seq.Labels {
		switch l {
		case 1:
			ones++
		case 0:
			zeros++
		default:
			t.Fatalf("label %d out of range", l)
		}
	}
	if ones == 0 || zeros == 0 {
		t.Errorf("labels degenerate: %d ones, %d zeros", ones, zeros)
	}
	// Frames inside the /s/ segment must be 0.
	var sSeg phoneme.Segment
	for _, seg := range utt.Alignment {
		if seg.Symbol == "s" {
			sSeg = seg
			break
		}
	}
	if sSeg.End == 0 {
		t.Fatal("no /s/ segment found")
	}
	for tIdx := range seq.Labels {
		center := tIdx*160 + 200
		if center >= sSeg.Start && center < sSeg.End && seq.Labels[tIdx] != 0 {
			t.Errorf("frame %d inside /s/ labeled 1", tIdx)
		}
	}
}

func TestTrainAndDetect(t *testing.T) {
	sel := selection.CanonicalSelected()
	d, err := NewDetector(sel, smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	train := trainingUtterances(t, 2, 6)
	losses, err := d.Train(train, brnn.TrainConfig{Epochs: 4, LearningRate: 0.01, ClipNorm: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
	acc, err := d.FrameAccuracy(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.82 {
		t.Errorf("training accuracy = %v, want >= 0.82", acc)
	}
	// Detection produces sensible spans on a held-out voice.
	heldOut := phoneme.NewVoicePool(4, 99)[3]
	synth, err := phoneme.NewSynthesizer(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	extracted, spans, err := d.ExtractEffective(utt.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || len(extracted) == 0 {
		t.Fatal("no effective audio detected")
	}
	// Extracted audio must be shorter than the utterance (something was
	// rejected) but a substantial fraction of it.
	if len(extracted) >= len(utt.Samples) {
		t.Error("extraction did not reject anything")
	}
	if len(extracted) < len(utt.Samples)/8 {
		t.Errorf("extraction too aggressive: %d of %d samples", len(extracted), len(utt.Samples))
	}
}

func TestTrainErrors(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Train(nil, brnn.DefaultTrainConfig()); err == nil {
		t.Error("empty training set should error")
	}
	short := &phoneme.Utterance{Samples: make([]float64, 10)}
	if _, err := d.Train([]*phoneme.Utterance{short}, brnn.DefaultTrainConfig()); err == nil {
		t.Error("too-short utterance should error")
	}
}

func TestSpansMergesFrames(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	frames := []bool{false, true, true, true, false, false, true, false}
	spans := d.Spans(frames)
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	// Frames 1-3: start 160, end 3*160+400 = 880.
	if spans[0].Start != 160 || spans[0].End != 880 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Start != 6*160 || spans[1].End != 6*160+400 {
		t.Errorf("span 1 = %+v", spans[1])
	}
	if spans[0].Len() != 720 {
		t.Errorf("span len = %d", spans[0].Len())
	}
	// All-false and empty inputs.
	if got := d.Spans([]bool{false, false}); got != nil {
		t.Errorf("all-false spans = %v", got)
	}
	if got := d.Spans(nil); got != nil {
		t.Errorf("nil spans = %v", got)
	}
}

func TestMedianSmooth(t *testing.T) {
	in := []bool{true, false, true, true, true, false, false}
	out := medianSmooth(in, 1)
	// The isolated false at index 1 flips to true.
	if !out[1] {
		t.Error("isolated flicker not smoothed")
	}
	if out[6] {
		t.Error("trailing false should stay false")
	}
	if got := medianSmooth(nil, 1); len(got) != 0 {
		t.Error("empty input")
	}
	same := medianSmooth(in, 0)
	for i := range in {
		if same[i] != in[i] {
			t.Error("radius 0 should be identity")
		}
	}
}

func TestExtractSpansClamping(t *testing.T) {
	audio := make([]float64, 100)
	for i := range audio {
		audio[i] = float64(i)
	}
	out := ExtractSpans(audio, []Span{{Start: -10, End: 5}, {Start: 95, End: 300}, {Start: 50, End: 40}})
	if len(out) != 10 {
		t.Errorf("extracted %d samples, want 10", len(out))
	}
	if out[0] != 0 || out[5] != 95 {
		t.Errorf("extracted values wrong: %v", out)
	}
}

func TestOracleSpans(t *testing.T) {
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	// "stop the music" contains /s/ (excluded) and vowels (selected).
	utt, err := synth.Synthesize(phoneme.Commands()[5])
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.CanonicalSelected()
	spans := OracleSpans(utt, sel)
	if len(spans) == 0 {
		t.Fatal("no oracle spans")
	}
	// Count of spans = count of selected phonemes in the alignment.
	want := 0
	for _, seg := range utt.Alignment {
		if sel[seg.Symbol] {
			want++
		}
	}
	if len(spans) != want {
		t.Errorf("spans = %d, want %d", len(spans), want)
	}
	// No span may cover the /s/ segment.
	for _, seg := range utt.Alignment {
		if seg.Symbol != "s" {
			continue
		}
		for _, sp := range spans {
			if sp.Start < seg.End && sp.End > seg.Start {
				t.Error("oracle span overlaps excluded /s/")
			}
		}
	}
}

func TestDetectFramesEmptyAudio(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.DetectFrames(make([]float64, 10))
	if err != nil {
		t.Fatal(err)
	}
	if frames != nil {
		t.Errorf("short audio produced %d frames", len(frames))
	}
}

func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	sel := selection.CanonicalSelected()
	d, err := NewDetector(sel, smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	train := trainingUtterances(t, 1, 3)
	if _, err := d.Train(train, brnn.TrainConfig{Epochs: 2, LearningRate: 0.01, ClipNorm: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Selected("er") || restored.Selected("s") {
		t.Error("restored selected set wrong")
	}
	// Identical predictions on the same audio.
	audio := train[0].Samples
	want, err := d.DetectFrames(audio)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.DetectFrames(audio)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatal("frame count differs")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction differs at frame %d", i)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage should error")
	}
}
