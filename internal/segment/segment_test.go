package segment

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"

	"vibguard/internal/brnn"
	"vibguard/internal/phoneme"
	"vibguard/internal/selection"
)

// smallModelCfg keeps tests fast.
func smallModelCfg() brnn.Config {
	return brnn.Config{InputDim: 14, HiddenDim: 16, NumClasses: 2, Seed: 1}
}

func trainingUtterances(t *testing.T, numVoices, numCommands int) []*phoneme.Utterance {
	t.Helper()
	voices := phoneme.NewVoicePool(numVoices, 5)
	cmds := phoneme.Commands()
	if numCommands > len(cmds) {
		numCommands = len(cmds)
	}
	var utts []*phoneme.Utterance
	for _, v := range voices {
		synth, err := phoneme.NewSynthesizer(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, cmd := range cmds[:numCommands] {
			u, err := synth.Synthesize(cmd)
			if err != nil {
				t.Fatal(err)
			}
			utts = append(utts, u)
		}
	}
	return utts
}

func TestNewDetectorValidation(t *testing.T) {
	sel := selection.CanonicalSelected()
	if _, err := NewDetector(nil, smallModelCfg()); err == nil {
		t.Error("empty selected set should error")
	}
	bad := smallModelCfg()
	bad.InputDim = 10
	if _, err := NewDetector(sel, bad); err == nil {
		t.Error("mismatched input dim should error")
	}
	bad = smallModelCfg()
	bad.NumClasses = 3
	if _, err := NewDetector(sel, bad); err == nil {
		t.Error("non-binary classes should error")
	}
	d, err := NewDetector(sel, smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Selected("er") || d.Selected("s") {
		t.Error("selected set membership wrong")
	}
}

func TestBuildSequenceLabels(t *testing.T) {
	sel := selection.CanonicalSelected()
	d, err := NewDetector(sel, smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	// "stop the music": /s/ frames must be labeled 0, vowels 1.
	utt, err := synth.Synthesize(phoneme.Commands()[5])
	if err != nil {
		t.Fatal(err)
	}
	seq, err := d.BuildSequence(utt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Inputs) != len(seq.Labels) {
		t.Fatal("inputs/labels length mismatch")
	}
	ones, zeros := 0, 0
	for _, l := range seq.Labels {
		switch l {
		case 1:
			ones++
		case 0:
			zeros++
		default:
			t.Fatalf("label %d out of range", l)
		}
	}
	if ones == 0 || zeros == 0 {
		t.Errorf("labels degenerate: %d ones, %d zeros", ones, zeros)
	}
	// Frames inside the /s/ segment must be 0.
	var sSeg phoneme.Segment
	for _, seg := range utt.Alignment {
		if seg.Symbol == "s" {
			sSeg = seg
			break
		}
	}
	if sSeg.End == 0 {
		t.Fatal("no /s/ segment found")
	}
	for tIdx := range seq.Labels {
		center := tIdx*160 + 200
		if center >= sSeg.Start && center < sSeg.End && seq.Labels[tIdx] != 0 {
			t.Errorf("frame %d inside /s/ labeled 1", tIdx)
		}
	}
}

func TestTrainAndDetect(t *testing.T) {
	sel := selection.CanonicalSelected()
	d, err := NewDetector(sel, smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	train := trainingUtterances(t, 2, 6)
	losses, err := d.Train(train, brnn.TrainConfig{Epochs: 4, LearningRate: 0.01, ClipNorm: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
	acc, err := d.FrameAccuracy(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.82 {
		t.Errorf("training accuracy = %v, want >= 0.82", acc)
	}
	// Detection produces sensible spans on a held-out voice.
	heldOut := phoneme.NewVoicePool(4, 99)[3]
	synth, err := phoneme.NewSynthesizer(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	extracted, spans, err := d.ExtractEffective(utt.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || len(extracted) == 0 {
		t.Fatal("no effective audio detected")
	}
	// Extracted audio must be shorter than the utterance (something was
	// rejected) but a substantial fraction of it.
	if len(extracted) >= len(utt.Samples) {
		t.Error("extraction did not reject anything")
	}
	if len(extracted) < len(utt.Samples)/8 {
		t.Errorf("extraction too aggressive: %d of %d samples", len(extracted), len(utt.Samples))
	}
}

func TestTrainErrors(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Train(nil, brnn.DefaultTrainConfig()); err == nil {
		t.Error("empty training set should error")
	}
	short := &phoneme.Utterance{Samples: make([]float64, 10)}
	if _, err := d.Train([]*phoneme.Utterance{short}, brnn.DefaultTrainConfig()); err == nil {
		t.Error("too-short utterance should error")
	}
}

func TestSpansMergesFrames(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	frames := []bool{false, true, true, true, false, false, true, false}
	spans := d.Spans(frames)
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	// Frames 1-3: start 160, end 3*160+400 = 880.
	if spans[0].Start != 160 || spans[0].End != 880 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Start != 6*160 || spans[1].End != 6*160+400 {
		t.Errorf("span 1 = %+v", spans[1])
	}
	if spans[0].Len() != 720 {
		t.Errorf("span len = %d", spans[0].Len())
	}
	// All-false and empty inputs.
	if got := d.Spans([]bool{false, false}); got != nil {
		t.Errorf("all-false spans = %v", got)
	}
	if got := d.Spans(nil); got != nil {
		t.Errorf("nil spans = %v", got)
	}
}

// TestSpansMergeOverlap is the regression test for the overlapping-span
// bug: with the 160/400 frame geometry, runs separated by ONE inactive
// frame overlap by 80 samples and must merge into a single span, or
// ExtractSpans duplicates audio and double-fades the seam.
func TestSpansMergeOverlap(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	// One-frame gap: run {0} ends at 400, run {2} starts at 320.
	spans := d.Spans([]bool{true, false, true})
	if len(spans) != 1 || spans[0] != (Span{Start: 0, End: 2*160 + 400}) {
		t.Fatalf("one-frame gap spans = %v, want one merged span (0,720)", spans)
	}
	// Alternating frames chain-merge into one span.
	spans = d.Spans([]bool{true, false, true, false, true})
	if len(spans) != 1 || spans[0] != (Span{Start: 0, End: 4*160 + 400}) {
		t.Fatalf("alternating spans = %v, want one merged span (0,1040)", spans)
	}
	// A two-frame gap leaves 80 samples between the spans: no merge.
	spans = d.Spans([]bool{true, false, false, true})
	if len(spans) != 2 {
		t.Fatalf("two-frame gap spans = %v, want 2", spans)
	}
	// Whatever the input, emitted spans must be sorted and disjoint so
	// extraction never duplicates samples.
	frames := []bool{true, true, false, true, false, false, true, true, false, true}
	spans = d.Spans(frames)
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Fatalf("spans %v overlap at %d", spans, i)
		}
	}
}

// TestLoadRejectsMismatchedModel pins the Load-side re-validation of the
// NewDetector invariants: a structurally valid file whose model does not
// match the MFCC geometry (or is not binary, or is corrupt) must fail at
// load time.
func TestLoadRejectsMismatchedModel(t *testing.T) {
	encode := func(t *testing.T, file detectorFile) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&file); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	blobFor := func(t *testing.T, cfg brnn.Config) []byte {
		t.Helper()
		m, err := brnn.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	sel := []string{"aa", "er"}
	cases := []struct {
		name string
		file detectorFile
	}{
		{"input dim mismatch", detectorFile{
			Selected: sel,
			Model:    blobFor(t, brnn.Config{InputDim: 10, HiddenDim: 4, NumClasses: 2, Seed: 1}),
		}},
		{"non-binary classes", detectorFile{
			Selected: sel,
			Model:    blobFor(t, brnn.Config{InputDim: 14, HiddenDim: 4, NumClasses: 3, Seed: 1}),
		}},
		{"corrupt model blob", detectorFile{
			Selected: sel,
			Model:    blobFor(t, smallModelCfg())[:40],
		}},
		{"no selected phonemes", detectorFile{
			Model: blobFor(t, smallModelCfg()),
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(encode(t, c.file))); err == nil {
				t.Fatalf("%s should fail to load", c.name)
			}
		})
	}
	// Sanity: the same encoding with a conforming model loads fine.
	good := detectorFile{Selected: sel, Model: blobFor(t, smallModelCfg())}
	if _, err := Load(bytes.NewReader(encode(t, good))); err != nil {
		t.Fatalf("conforming file failed to load: %v", err)
	}
}

// TestDetectFramesBatchMatchesSingle pins the batch entry point against
// per-recording DetectFrames, including a too-short recording in the
// middle of the batch.
func TestDetectFramesBatchMatchesSingle(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	utts := trainingUtterances(t, 2, 2)
	audios := [][]float64{
		utts[0].Samples,
		make([]float64, 10), // too short to frame
		utts[1].Samples,
		utts[2].Samples[:4000],
	}
	got, err := d.DetectFramesBatch(audios)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(audios) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(audios))
	}
	for i, audio := range audios {
		want, err := d.DetectFrames(audio)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got[i]) {
			t.Fatalf("recording %d: %d frames, want %d", i, len(got[i]), len(want))
		}
		for f := range want {
			if want[f] != got[i][f] {
				t.Fatalf("recording %d frame %d differs from DetectFrames", i, f)
			}
		}
	}
}

// TestDetectFramesConcurrent hammers one shared detector from several
// goroutines (the serve-worker pattern backed by the session pool); run
// under -race by the CI brnn job.
func TestDetectFramesConcurrent(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	audio := trainingUtterances(t, 1, 1)[0].Samples
	want, err := d.DetectFrames(audio)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, err := d.DetectFrames(audio)
				if err != nil {
					errs <- err
					return
				}
				for f := range want {
					if want[f] != got[f] {
						errs <- fmt.Errorf("concurrent detection diverged at frame %d", f)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMedianSmooth(t *testing.T) {
	in := []bool{true, false, true, true, true, false, false}
	out := medianSmooth(in, 1)
	// The isolated false at index 1 flips to true.
	if !out[1] {
		t.Error("isolated flicker not smoothed")
	}
	if out[6] {
		t.Error("trailing false should stay false")
	}
	if got := medianSmooth(nil, 1); len(got) != 0 {
		t.Error("empty input")
	}
	same := medianSmooth(in, 0)
	for i := range in {
		if same[i] != in[i] {
			t.Error("radius 0 should be identity")
		}
	}
}

func TestExtractSpansClamping(t *testing.T) {
	audio := make([]float64, 100)
	for i := range audio {
		audio[i] = float64(i)
	}
	out := ExtractSpans(audio, []Span{{Start: -10, End: 5}, {Start: 95, End: 300}, {Start: 50, End: 40}})
	if len(out) != 10 {
		t.Errorf("extracted %d samples, want 10", len(out))
	}
	if out[0] != 0 || out[5] != 95 {
		t.Errorf("extracted values wrong: %v", out)
	}
}

func TestOracleSpans(t *testing.T) {
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	// "stop the music" contains /s/ (excluded) and vowels (selected).
	utt, err := synth.Synthesize(phoneme.Commands()[5])
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.CanonicalSelected()
	spans := OracleSpans(utt, sel)
	if len(spans) == 0 {
		t.Fatal("no oracle spans")
	}
	// Count of spans = count of selected phonemes in the alignment.
	want := 0
	for _, seg := range utt.Alignment {
		if sel[seg.Symbol] {
			want++
		}
	}
	if len(spans) != want {
		t.Errorf("spans = %d, want %d", len(spans), want)
	}
	// No span may cover the /s/ segment.
	for _, seg := range utt.Alignment {
		if seg.Symbol != "s" {
			continue
		}
		for _, sp := range spans {
			if sp.Start < seg.End && sp.End > seg.Start {
				t.Error("oracle span overlaps excluded /s/")
			}
		}
	}
}

func TestDetectFramesEmptyAudio(t *testing.T) {
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.DetectFrames(make([]float64, 10))
	if err != nil {
		t.Fatal(err)
	}
	if frames != nil {
		t.Errorf("short audio produced %d frames", len(frames))
	}
}

func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	sel := selection.CanonicalSelected()
	d, err := NewDetector(sel, smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	train := trainingUtterances(t, 1, 3)
	if _, err := d.Train(train, brnn.TrainConfig{Epochs: 2, LearningRate: 0.01, ClipNorm: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Selected("er") || restored.Selected("s") {
		t.Error("restored selected set wrong")
	}
	// Identical predictions on the same audio.
	audio := train[0].Samples
	want, err := d.DetectFrames(audio)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.DetectFrames(audio)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatal("frame count differs")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction differs at frame %d", i)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage should error")
	}
}
