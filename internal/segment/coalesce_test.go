package segment

import (
	"errors"
	"sync"
	"testing"

	"vibguard/internal/selection"
)

// coalesceDetector builds a small untrained detector (weights are seeded,
// so outputs are deterministic — training is irrelevant to batching
// semantics) plus a few real utterance recordings to push through it.
func coalesceDetector(t *testing.T) (*Detector, [][]float64) {
	t.Helper()
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	utts := trainingUtterances(t, 2, 2)
	audios := [][]float64{
		utts[0].Samples,
		utts[1].Samples,
		utts[2].Samples[:4000],
		utts[3].Samples,
		make([]float64, 10), // too short to frame: empty spans, no error
	}
	return d, audios
}

// TestCoalescerMatchesDirect is the transparency contract: spans through
// the coalescer are identical to DetectFrames+Spans on the same audio,
// whatever batch each request lands in — including many concurrent
// callers, which is exactly the serve-worker pattern that forms batches.
func TestCoalescerMatchesDirect(t *testing.T) {
	d, audios := coalesceDetector(t)
	want := make([][]Span, len(audios))
	for i, audio := range audios {
		frames, err := d.DetectFrames(audio)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = d.Spans(frames)
	}

	c := NewCoalescer(d, 4)
	defer c.Close()

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(audios))
	for r := 0; r < rounds; r++ {
		for i := range audios {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := c.EffectiveSpans(audios[i])
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want[i]) {
					t.Errorf("audio %d: %d spans via coalescer, want %d", i, len(got), len(want[i]))
					return
				}
				for s := range got {
					if got[s] != want[i][s] {
						t.Errorf("audio %d span %d: %+v != direct %+v", i, s, got[s], want[i][s])
						return
					}
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCoalescerSolo pins the no-waiting property: a single request with no
// neighbors completes (the dispatcher must not hold it hoping for a batch).
func TestCoalescerSolo(t *testing.T) {
	d, audios := coalesceDetector(t)
	c := NewCoalescer(d, 8)
	defer c.Close()
	spans, err := c.EffectiveSpans(audios[0])
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.DetectFrames(audios[0])
	if err != nil {
		t.Fatal(err)
	}
	if direct := d.Spans(frames); len(spans) != len(direct) {
		t.Fatalf("solo request: %d spans, want %d", len(spans), len(direct))
	}
}

// TestCoalescerClose pins shutdown: requests after Close fail with
// ErrCoalescerClosed, Close is idempotent, and nothing deadlocks.
func TestCoalescerClose(t *testing.T) {
	d, audios := coalesceDetector(t)
	c := NewCoalescer(d, 4)
	c.Close()
	c.Close()
	if _, err := c.EffectiveSpans(audios[0]); !errors.Is(err, ErrCoalescerClosed) {
		t.Fatalf("EffectiveSpans after Close = %v, want ErrCoalescerClosed", err)
	}
}

// BenchmarkSpansDirect / BenchmarkSpansCoalesced pin the allocation story
// of satellite 2: eight concurrent sessions through one coalescer must do
// one batched weight traversal per wave rather than eight, and allocate no
// more per session than the direct path (compare benchmem numbers).
func BenchmarkSpansDirect(b *testing.B) {
	d, audio := benchDetector(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			frames, err := d.DetectFrames(audio)
			if err != nil {
				b.Fatal(err)
			}
			d.Spans(frames)
		}
	})
}

func BenchmarkSpansCoalesced(b *testing.B) {
	d, audio := benchDetector(b)
	c := NewCoalescer(d, 8)
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.EffectiveSpans(audio); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchDetector(b *testing.B) (*Detector, []float64) {
	b.Helper()
	d, err := NewDetector(selection.CanonicalSelected(), smallModelCfg())
	if err != nil {
		b.Fatal(err)
	}
	// One second of deterministic pseudo-audio; content does not matter
	// for the batching cost being measured.
	audio := make([]float64, 16000)
	x := uint64(88172645463325252)
	for i := range audio {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		audio[i] = float64(int64(x)) / (1 << 63)
	}
	return d, audio
}
