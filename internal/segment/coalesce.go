package segment

import (
	"errors"
	"fmt"
)

// Coalescer batches concurrent span requests into single
// DetectFramesBatch inference passes: serve workers each own a private
// Defense, but their segmenters can share one Coalescer, so sessions that
// arrive together traverse the BRNN weights once per timestep for the
// whole batch instead of once per session. A request that arrives alone
// runs alone — the dispatcher never waits for a batch to fill, so an idle
// server adds no latency.
//
// Coalescer satisfies the detector.Segmenter interface structurally
// (EffectiveSpans), letting it drop in as the segmenter of every worker's
// Defense.

// ErrCoalescerClosed is returned by EffectiveSpans after Close.
var ErrCoalescerClosed = errors.New("segment: coalescer closed")

// coalesceReq is one enqueued span request.
type coalesceReq struct {
	audio []float64
	reply chan coalesceResp
}

type coalesceResp struct {
	frames []bool
	err    error
}

// Coalescer is safe for concurrent use; Close releases the dispatcher.
type Coalescer struct {
	det      *Detector
	maxBatch int
	reqs     chan coalesceReq
	stop     chan struct{}
	done     chan struct{}
}

// NewCoalescer starts a batching dispatcher over the detector. maxBatch
// caps one inference batch (default 8; larger batches trade per-session
// latency for weight-traversal amortization).
func NewCoalescer(det *Detector, maxBatch int) *Coalescer {
	if maxBatch <= 0 {
		maxBatch = 8
	}
	c := &Coalescer{
		det:      det,
		maxBatch: maxBatch,
		reqs:     make(chan coalesceReq, 4*maxBatch),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.dispatch()
	return c
}

// Close stops the dispatcher; pending and later requests fail with
// ErrCoalescerClosed. Idempotent.
func (c *Coalescer) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// EffectiveSpans enqueues the recording, waits for its batch to run, and
// returns the merged spans — identical to Detector.DetectFrames + Spans
// on the same audio, whatever batch it lands in.
func (c *Coalescer) EffectiveSpans(audio []float64) ([]Span, error) {
	reply := make(chan coalesceResp, 1)
	select {
	case c.reqs <- coalesceReq{audio: audio, reply: reply}:
	case <-c.stop:
		return nil, ErrCoalescerClosed
	}
	var resp coalesceResp
	select {
	case resp = <-reply:
	case <-c.done:
		// Close raced the enqueue (a ready send and a closed stop channel
		// select randomly): the dispatcher may have answered on its way
		// out, or exited without ever seeing the request.
		select {
		case resp = <-reply:
		default:
			return nil, ErrCoalescerClosed
		}
	}
	if resp.err != nil {
		return nil, resp.err
	}
	return c.det.Spans(resp.frames), nil
}

// dispatch drains the queue: one blocking take, then a non-blocking sweep
// up to maxBatch, one batched inference for whatever arrived together.
func (c *Coalescer) dispatch() {
	defer close(c.done)
	for {
		var first coalesceReq
		select {
		case <-c.stop:
			c.drainClosed()
			return
		case first = <-c.reqs:
		}
		batch := []coalesceReq{first}
		for len(batch) < c.maxBatch {
			var more coalesceReq
			select {
			case more = <-c.reqs:
				batch = append(batch, more)
				continue
			default:
			}
			break
		}
		c.run(batch)
	}
}

// run executes one batch. A failed batch pass falls back to per-recording
// DetectFrames so each request gets its own error (a corrupt recording in
// the batch must not fail its neighbors).
func (c *Coalescer) run(batch []coalesceReq) {
	audios := make([][]float64, len(batch))
	for i, r := range batch {
		audios[i] = r.audio
	}
	frames, err := c.det.DetectFramesBatch(audios)
	if err == nil {
		for i, r := range batch {
			r.reply <- coalesceResp{frames: frames[i]}
		}
		return
	}
	for _, r := range batch {
		f, ferr := c.det.DetectFrames(r.audio)
		if ferr != nil {
			ferr = fmt.Errorf("segment: coalesced detect: %w", ferr)
		}
		r.reply <- coalesceResp{frames: f, err: ferr}
	}
}

// drainClosed answers every request still queued at Close time.
func (c *Coalescer) drainClosed() {
	for {
		select {
		case r := <-c.reqs:
			r.reply <- coalesceResp{err: ErrCoalescerClosed}
		default:
			return
		}
	}
}
