package profile

import "vibguard/internal/obs"

// Profile-layer instrumentation, in the process-wide registry next to the
// serve and pipeline metrics (DESIGN.md section 10). The cache counters
// split known-user fast-path hits from recalibrating misses; the
// calibration gauge tracks the most recently computed personalized
// threshold offset, so an operator can see per-user adaptation moving
// (and confirm the clamp is holding it inside ±MaxOffset).
var (
	metCacheHits      = obs.Default().Counter("profile.cache.hits")
	metCacheMisses    = obs.Default().Counter("profile.cache.misses")
	metCacheEvictions = obs.Default().Counter("profile.cache.evictions")
	gaugeCalibOffset  = obs.Default().Gauge("calibration.offset")
)

// RecordOffset publishes a freshly computed calibration offset to the
// calibration.offset gauge; the serve worker calls it after Observe.
func RecordOffset(offset float64) { gaugeCalibOffset.Set(offset) }
