// Package profile is the per-user stateful layer of the serving tier: a
// sharded in-memory store of per-user calibration state, persisted to
// disk as atomic versioned snapshots. The paper's defense is per-session
// — one VA recording, one wearable, one fixed threshold — but WearID-style
// cross-domain similarity checks improve materially with per-user
// calibration, and a million-user deployment needs that state to survive
// sessions (and restarts).
//
// A profile holds two things:
//
//   - an online threshold offset: an EWMA over the user's recent
//     legitimate scores positions a personalized decision threshold a
//     fixed margin below the user's typical score, and the offset from
//     detector.DefaultThreshold is clamped to ±MaxOffset so a drifting
//     (or poisoned) calibration can never move the threshold far from the
//     paper's equal-error point;
//   - the user's known wearable devices (watch, earbud, …), so the
//     serving tier can fuse multiple cross-domain views of one command.
//
// The store shards users across power-of-two buckets with an RWMutex per
// shard; the shard index comes from the same FNV-1a + SplitMix64-finalizer
// hash the routing ring uses on UserID, so profiles shard the way sessions
// route. Snapshots (snapshot.go) use the framed-wire encoding style of
// internal/serve/wire.go and are written atomically (temp file + rename).
package profile

import (
	"math"
	"sort"
	"sync"

	"vibguard/internal/detector"
)

// Calibration defaults. They are deliberately conservative: the offset
// moves slowly (Alpha) and can never leave a narrow band around the
// paper's threshold (MaxOffset), so per-user adaptation refines the
// decision boundary without ever being able to disable it.
const (
	// DefaultShards is the default shard count (power of two).
	DefaultShards = 64
	// DefaultAlpha is the EWMA weight of the newest legitimate score.
	DefaultAlpha = 0.2
	// DefaultMargin is how far below the user's typical legitimate score
	// the personalized threshold sits.
	DefaultMargin = 0.15
	// DefaultMaxOffset clamps the personalized threshold to
	// detector.DefaultThreshold ± MaxOffset.
	DefaultMaxOffset = 0.08
)

// Config parameterizes a Store. The zero value uses the defaults above.
type Config struct {
	// Shards is the shard count, rounded up to the next power of two
	// (default DefaultShards).
	Shards int
	// Alpha is the EWMA weight of the newest legitimate score in (0, 1]
	// (default DefaultAlpha).
	Alpha float64
	// Margin is the distance below the legitimate-score EWMA at which the
	// personalized threshold sits (default DefaultMargin).
	Margin float64
	// MaxOffset clamps |Offset| (default DefaultMaxOffset).
	MaxOffset float64
	// BaseThreshold is the reference threshold offsets are computed
	// against (default detector.DefaultThreshold).
	BaseThreshold float64
}

// withDefaults resolves the zero value.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	c.Shards = nextPowerOfTwo(c.Shards)
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.Margin <= 0 {
		c.Margin = DefaultMargin
	}
	if c.MaxOffset <= 0 {
		c.MaxOffset = DefaultMaxOffset
	}
	if c.BaseThreshold == 0 {
		c.BaseThreshold = detector.DefaultThreshold
	}
	return c
}

// nextPowerOfTwo rounds n up to a power of two.
func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Profile is one user's calibration state. Store methods return copies;
// mutating a returned Profile never touches the store.
type Profile struct {
	// UserID is the wearable-paired user the profile belongs to — the
	// same tenancy key the routing ring hashes.
	UserID string
	// Mean is the EWMA of the user's recent legitimate scores.
	Mean float64
	// Samples counts the legitimate scores folded into Mean.
	Samples uint64
	// Offset is the personalized threshold offset: the effective decision
	// threshold for the user is BaseThreshold + Offset, and |Offset| is
	// clamped to MaxOffset.
	Offset float64
	// Devices are the user's known wearable addresses, sorted.
	Devices []string
}

// clone deep-copies a profile for return to callers.
func (p *Profile) clone() Profile {
	out := *p
	out.Devices = append([]string(nil), p.Devices...)
	return out
}

// shard is one lock-striped bucket of users.
type shard struct {
	mu    sync.RWMutex
	users map[string]*Profile
}

// Store is the sharded per-user profile store. All methods are safe for
// concurrent use; the hot path (Lookup, Observe) takes exactly one shard
// lock.
type Store struct {
	cfg    Config
	mask   uint64
	shards []shard
}

// NewStore builds an empty store.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, mask: uint64(cfg.Shards - 1), shards: make([]shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i].users = make(map[string]*Profile)
	}
	return s
}

// Shards returns the resolved (power-of-two) shard count.
func (s *Store) Shards() int { return len(s.shards) }

// BaseThreshold returns the reference threshold offsets are computed
// against.
func (s *Store) BaseThreshold() float64 { return s.cfg.BaseThreshold }

// shardFor picks the user's shard: FNV-1a over the id, then the SplitMix64
// finalizer — the routing ring's hash shape, so short ids with shared
// prefixes still spread (and profiles shard the way sessions route).
func (s *Store) shardFor(user string) *shard {
	return &s.shards[mixHash(user)&s.mask]
}

// mixHash is FNV-1a followed by the SplitMix64 finalizer.
func mixHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Len returns the number of stored profiles.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.users)
		sh.mu.RUnlock()
	}
	return n
}

// Lookup returns a copy of the user's profile.
func (s *Store) Lookup(user string) (Profile, bool) {
	sh := s.shardFor(user)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	p, ok := sh.users[user]
	if !ok {
		return Profile{}, false
	}
	return p.clone(), true
}

// Offset returns the user's personalized threshold offset (0 for unknown
// users — an unknown user runs at the paper's threshold).
func (s *Store) Offset(user string) (offset float64, known bool) {
	sh := s.shardFor(user)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if p, ok := sh.users[user]; ok {
		return p.Offset, true
	}
	return 0, false
}

// Observe folds one legitimate session score into the user's calibration
// (creating the profile on first sight) and returns the updated copy.
// Non-finite scores are ignored: the pipeline guarantees finite scores,
// so a non-finite value here is a caller bug that must not poison the
// EWMA. Attack-verdict scores must never be fed to Observe — calibration
// tracks the user's legitimate voice, not the adversary's.
func (s *Store) Observe(user string, score float64) Profile {
	sh := s.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.users[user]
	if !ok {
		p = &Profile{UserID: user}
		sh.users[user] = p
	}
	if math.IsNaN(score) || math.IsInf(score, 0) {
		return p.clone()
	}
	if p.Samples == 0 {
		p.Mean = score
	} else {
		p.Mean = (1-s.cfg.Alpha)*p.Mean + s.cfg.Alpha*score
	}
	p.Samples++
	p.Offset = s.offsetFor(p.Mean)
	return p.clone()
}

// offsetFor maps a legitimate-score EWMA to the clamped threshold offset:
// the personalized threshold wants to sit Margin below the user's typical
// score, but may never leave BaseThreshold ± MaxOffset.
func (s *Store) offsetFor(mean float64) float64 {
	off := (mean - s.cfg.Margin) - s.cfg.BaseThreshold
	if off > s.cfg.MaxOffset {
		off = s.cfg.MaxOffset
	}
	if off < -s.cfg.MaxOffset {
		off = -s.cfg.MaxOffset
	}
	return off
}

// AddDevices records wearable addresses as known devices of the user
// (creating the profile on first sight). Duplicates are ignored; the
// device list stays sorted so snapshots and fusion summaries are
// deterministic.
func (s *Store) AddDevices(user string, addrs ...string) {
	if len(addrs) == 0 {
		return
	}
	sh := s.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.users[user]
	if !ok {
		p = &Profile{UserID: user}
		sh.users[user] = p
	}
	for _, addr := range addrs {
		if addr == "" {
			continue
		}
		i := sort.SearchStrings(p.Devices, addr)
		if i < len(p.Devices) && p.Devices[i] == addr {
			continue
		}
		p.Devices = append(p.Devices, "")
		copy(p.Devices[i+1:], p.Devices[i:])
		p.Devices[i] = addr
	}
}

// Range calls f for a copy of every profile, shard by shard, until f
// returns false. Iteration order is deterministic given identical insert
// histories only within a shard's sort; Range sorts each shard's users so
// the full walk is deterministic regardless of map order.
func (s *Store) Range(f func(Profile) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.users))
		for id := range sh.users {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		profiles := make([]Profile, 0, len(ids))
		for _, id := range ids {
			profiles = append(profiles, sh.users[id].clone())
		}
		sh.mu.RUnlock()
		for _, p := range profiles {
			if !f(p) {
				return
			}
		}
	}
}
