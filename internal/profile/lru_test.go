package profile

import (
	"fmt"
	"testing"
)

func wantUsers(t *testing.T, l *LRU, want ...string) {
	t.Helper()
	got := l.Users()
	if len(got) != len(want) {
		t.Fatalf("cache holds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cache order %v, want %v", got, want)
		}
	}
}

// TestLRUEvictionDeterministic pins the exact eviction sequence for a
// fixed access pattern: Get and Put both refresh recency, and the Back
// entry — and only the Back entry — is evicted when a new user arrives
// at capacity.
func TestLRUEvictionDeterministic(t *testing.T) {
	l := NewLRU(3)
	l.Put("a", 0.45)
	l.Put("b", 0.46)
	l.Put("c", 0.47)
	wantUsers(t, l, "c", "b", "a")

	// Get refreshes: "a" moves to the front.
	if v, ok := l.Get("a"); !ok || v != 0.45 {
		t.Fatalf("Get(a) = %v/%v, want 0.45/true", v, ok)
	}
	wantUsers(t, l, "a", "c", "b")

	// Insert at capacity evicts the Back ("b"), nothing else.
	l.Put("d", 0.48)
	wantUsers(t, l, "d", "a", "c")
	if _, ok := l.Get("b"); ok {
		t.Fatal("evicted user still cached")
	}

	// Put on an existing user refreshes in place, no eviction.
	l.Put("c", 0.50)
	wantUsers(t, l, "c", "d", "a")
	if v, _ := l.Get("c"); v != 0.50 {
		t.Fatalf("refreshed threshold %v, want 0.50", v)
	}

	// The next eviction victim is "a", the current Back.
	l.Put("e", 0.51)
	wantUsers(t, l, "e", "c", "d")
}

// TestLRUCapacityFloor pins the minimum capacity of one.
func TestLRUCapacityFloor(t *testing.T) {
	l := NewLRU(0)
	if l.Capacity() != 1 {
		t.Fatalf("capacity %d, want 1", l.Capacity())
	}
	l.Put("a", 1)
	l.Put("b", 2)
	wantUsers(t, l, "b")
}

// TestLRUInvalidate drops an entry without disturbing the rest.
func TestLRUInvalidate(t *testing.T) {
	l := NewLRU(4)
	for i, u := range []string{"a", "b", "c"} {
		l.Put(u, float64(i))
	}
	l.Invalidate("b")
	wantUsers(t, l, "c", "a")
	if _, ok := l.Get("b"); ok {
		t.Fatal("invalidated user still cached")
	}
	l.Invalidate("ghost") // no-op, must not panic
	if l.Len() != 2 {
		t.Fatalf("len %d, want 2", l.Len())
	}
}

// TestLRUSweep runs a long deterministic access sequence and checks the
// final contents exactly — a change to the eviction policy shows up as a
// different survivor set.
func TestLRUSweep(t *testing.T) {
	l := NewLRU(8)
	for i := 0; i < 100; i++ {
		u := fmt.Sprintf("user-%d", i%13)
		if i%3 == 0 {
			l.Get(u)
		}
		l.Put(u, float64(i))
	}
	// i=99 → user-8; walking backwards over the last distinct touches:
	// 99:u8 98:u7 97:u6 96:u5 95:u4 94:u3 93:u2 92:u1.
	wantUsers(t, l, "user-8", "user-7", "user-6", "user-5",
		"user-4", "user-3", "user-2", "user-1")
}
