package profile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Snapshot persistence: the whole store serializes to one versioned binary
// blob in the framed-wire style of internal/serve/wire.go — a magic
// prefix, a version byte, uvarint counts, length-prefixed strings, and
// float64s as IEEE-754 bits (little-endian). Decoding is hardened the
// same way the wire decoder is: every declared length is validated
// against the bytes actually present before anything is allocated, every
// failure is one of the typed errors below, and the receiving store is
// left unchanged on any error (the brnn.UnmarshalBinary contract).
//
// On-disk writes are atomic: the snapshot lands in a temp file in the
// destination directory and is renamed over the target, so a crash
// mid-write leaves the previous snapshot intact.

// snapshotMagic prefixes every snapshot blob.
const snapshotMagic = "VGPF"

// SnapshotVersion is the encoding version stamped after the magic.
const SnapshotVersion = 1

// Typed snapshot-decode errors: any blob either decodes or fails with one
// of these — never a panic, never a partially applied store.
var (
	// ErrBadMagic is returned for a blob that does not start with the
	// snapshot magic (not a profile snapshot at all).
	ErrBadMagic = errors.New("profile: snapshot magic mismatch")
	// ErrUnknownSnapshotVersion is returned for a snapshot written by an
	// unknown encoding version.
	ErrUnknownSnapshotVersion = errors.New("profile: unknown snapshot version")
	// ErrCorruptSnapshot is returned for truncated blobs, overlong
	// varints, and lengths inconsistent with the bytes present.
	ErrCorruptSnapshot = errors.New("profile: corrupt snapshot")
)

// EncodeSnapshot serializes every profile. The encoding is deterministic:
// profiles are walked in the Range order (sorted within each shard), so
// two stores with identical contents produce identical bytes.
func (s *Store) EncodeSnapshot() []byte {
	var profiles []Profile
	s.Range(func(p Profile) bool {
		profiles = append(profiles, p)
		return true
	})
	dst := append([]byte(nil), snapshotMagic...)
	dst = append(dst, SnapshotVersion)
	dst = binary.AppendUvarint(dst, uint64(len(profiles)))
	for _, p := range profiles {
		dst = appendString(dst, p.UserID)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Mean))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Offset))
		dst = binary.AppendUvarint(dst, p.Samples)
		dst = binary.AppendUvarint(dst, uint64(len(p.Devices)))
		for _, d := range p.Devices {
			dst = appendString(dst, d)
		}
	}
	return dst
}

// DecodeSnapshot replaces the store's contents with the snapshot's. On any
// error the store is unchanged: the blob decodes into fresh shard maps
// first, and only a fully valid snapshot is swapped in.
func (s *Store) DecodeSnapshot(data []byte) error {
	profiles, err := decodeProfiles(data)
	if err != nil {
		return err
	}
	fresh := make([]map[string]*Profile, len(s.shards))
	for i := range fresh {
		fresh[i] = make(map[string]*Profile)
	}
	for i := range profiles {
		p := profiles[i]
		fresh[mixHash(p.UserID)&s.mask][p.UserID] = &p
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.users = fresh[i]
		sh.mu.Unlock()
	}
	return nil
}

// decodeProfiles parses a snapshot blob into profiles, validating every
// length before allocating.
func decodeProfiles(data []byte) ([]Profile, error) {
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, ErrBadMagic
	}
	data = data[len(snapshotMagic):]
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: missing version", ErrCorruptSnapshot)
	}
	if data[0] != SnapshotVersion {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSnapshotVersion, data[0])
	}
	data = data[1:]
	count, n, err := takeUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("%w: profile count", ErrCorruptSnapshot)
	}
	data = data[n:]
	// Each profile needs at least 1+8+8+1+1 bytes, so the count bounds the
	// allocation against the bytes actually present.
	if count > uint64(len(data)/19)+1 {
		return nil, fmt.Errorf("%w: %d profiles in %d bytes", ErrCorruptSnapshot, count, len(data))
	}
	profiles := make([]Profile, 0, count)
	for i := uint64(0); i < count; i++ {
		var p Profile
		if p.UserID, data, err = takeSnapString(data); err != nil {
			return nil, err
		}
		if len(data) < 16 {
			return nil, fmt.Errorf("%w: truncated calibration of %q", ErrCorruptSnapshot, p.UserID)
		}
		p.Mean = math.Float64frombits(binary.LittleEndian.Uint64(data))
		p.Offset = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		data = data[16:]
		if p.Samples, n, err = takeUvarint(data); err != nil {
			return nil, fmt.Errorf("%w: sample count of %q", ErrCorruptSnapshot, p.UserID)
		}
		data = data[n:]
		devCount, n, err := takeUvarint(data)
		if err != nil {
			return nil, fmt.Errorf("%w: device count of %q", ErrCorruptSnapshot, p.UserID)
		}
		data = data[n:]
		if devCount > uint64(len(data)) {
			return nil, fmt.Errorf("%w: %d devices in %d bytes", ErrCorruptSnapshot, devCount, len(data))
		}
		if devCount > 0 {
			p.Devices = make([]string, 0, devCount)
			for j := uint64(0); j < devCount; j++ {
				var d string
				if d, data, err = takeSnapString(data); err != nil {
					return nil, err
				}
				p.Devices = append(p.Devices, d)
			}
		}
		profiles = append(profiles, p)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, len(data))
	}
	return profiles, nil
}

// Save writes the snapshot atomically: a temp file in path's directory,
// then a rename over path.
func (s *Store) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("profile: snapshot temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(s.EncodeSnapshot()); err != nil {
		return fmt.Errorf("profile: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("profile: snapshot sync: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		_ = os.Remove(name)
		return fmt.Errorf("profile: snapshot close: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("profile: snapshot rename: %w", err)
	}
	return nil
}

// Load replaces the store's contents with the snapshot at path. The store
// is unchanged on any error (missing file, corrupt blob).
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("profile: snapshot read: %w", err)
	}
	return s.DecodeSnapshot(data)
}

// appendString appends a uvarint-length-prefixed string (the wire.go
// string encoding).
func appendString(dst []byte, v string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// takeUvarint decodes a uvarint from the head of data.
func takeUvarint(data []byte) (uint64, int, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, ErrCorruptSnapshot
	}
	return v, n, nil
}

// takeSnapString decodes a length-prefixed string, validating the length
// against the bytes present before copying.
func takeSnapString(data []byte) (string, []byte, error) {
	n, sz, err := takeUvarint(data)
	if err != nil {
		return "", nil, fmt.Errorf("%w: string length", ErrCorruptSnapshot)
	}
	data = data[sz:]
	if n > uint64(len(data)) {
		return "", nil, fmt.Errorf("%w: string of %d bytes in %d remaining", ErrCorruptSnapshot, n, len(data))
	}
	return string(data[:n]), data[n:], nil
}
