package profile

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity cache of per-user effective thresholds — the
// front the serve workers consult so a known user skips recalibration
// (no store shard lock, no offset recomputation) on the hot path.
// Eviction is deterministic: strictly least-recently-used, with Get and
// Put both counting as use, so a fixed access sequence always evicts the
// same users in the same order. Hits and misses feed the
// profile.cache.{hits,misses} counters. Safe for concurrent use.
type LRU struct {
	capacity int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// NewLRU builds a cache holding at most capacity users (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// lruEntry is one cached user.
type lruEntry struct {
	user      string
	threshold float64
}

// Capacity returns the cache capacity.
func (l *LRU) Capacity() int { return l.capacity }

// Len returns the number of cached users.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// Get returns the user's cached effective threshold and records the
// cache outcome (hit refreshes recency).
func (l *LRU) Get(user string) (threshold float64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[user]
	if !ok {
		metCacheMisses.Inc()
		return 0, false
	}
	metCacheHits.Inc()
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).threshold, true
}

// Put inserts or refreshes the user's effective threshold, evicting the
// least-recently-used entry when the cache is full.
func (l *LRU) Put(user string, threshold float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[user]; ok {
		el.Value.(*lruEntry).threshold = threshold
		l.ll.MoveToFront(el)
		return
	}
	if l.ll.Len() >= l.capacity {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry).user)
		metCacheEvictions.Inc()
	}
	l.items[user] = l.ll.PushFront(&lruEntry{user: user, threshold: threshold})
}

// Invalidate drops the user's cached threshold (e.g. after an external
// snapshot load changed the calibration behind the cache's back).
func (l *LRU) Invalidate(user string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[user]; ok {
		l.ll.Remove(el)
		delete(l.items, user)
	}
}

// Users returns the cached users from most to least recently used — the
// deterministic eviction order, exposed for tests and debugging.
func (l *LRU) Users() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, l.ll.Len())
	for el := l.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).user)
	}
	return out
}
