package profile

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"vibguard/internal/detector"
)

// TestShardRounding pins the power-of-two shard contract.
func TestShardRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards}, {-4, DefaultShards},
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
	}
	for _, c := range cases {
		if got := NewStore(Config{Shards: c.in}).Shards(); got != c.want {
			t.Errorf("Shards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestObserveCalibration checks the EWMA and the clamp: the offset follows
// the legitimate-score mean but never leaves ±MaxOffset around the base
// threshold.
func TestObserveCalibration(t *testing.T) {
	s := NewStore(Config{})
	// First observation seeds the mean directly.
	p := s.Observe("alice", 0.70)
	if p.Mean != 0.70 || p.Samples != 1 {
		t.Fatalf("first observe: mean %v samples %d, want 0.70/1", p.Mean, p.Samples)
	}
	// 0.70 - margin(0.15) - base(0.45) = 0.10 > MaxOffset → clamped high.
	if p.Offset != DefaultMaxOffset {
		t.Fatalf("offset %v, want clamped %v", p.Offset, DefaultMaxOffset)
	}
	// A user whose legit scores run low pushes the threshold down, clamped.
	p = s.Observe("bob", 0.30)
	if p.Offset != -DefaultMaxOffset {
		t.Fatalf("low-score offset %v, want %v", p.Offset, -DefaultMaxOffset)
	}
	// An in-band mean lands unclamped: 0.62 - 0.15 - 0.45 = 0.02.
	p = s.Observe("carol", 0.62)
	if math.Abs(p.Offset-0.02) > 1e-12 {
		t.Fatalf("in-band offset %v, want 0.02", p.Offset)
	}
	// EWMA: second observation blends with Alpha.
	p = s.Observe("alice", 0.50)
	wantMean := (1-DefaultAlpha)*0.70 + DefaultAlpha*0.50
	if math.Abs(p.Mean-wantMean) > 1e-12 || p.Samples != 2 {
		t.Fatalf("ewma mean %v samples %d, want %v/2", p.Mean, p.Samples, wantMean)
	}
	// Non-finite scores are ignored entirely.
	before, _ := s.Lookup("alice")
	p = s.Observe("alice", math.NaN())
	if p.Mean != before.Mean || p.Samples != before.Samples {
		t.Fatalf("NaN observe mutated the profile: %+v vs %+v", p, before)
	}
	if p = s.Observe("alice", math.Inf(1)); p.Samples != before.Samples {
		t.Fatalf("Inf observe mutated the profile")
	}
}

// TestBaseThresholdDefault pins that calibration is anchored at the
// paper's threshold unless overridden.
func TestBaseThresholdDefault(t *testing.T) {
	if got := NewStore(Config{}).BaseThreshold(); got != detector.DefaultThreshold {
		t.Fatalf("base threshold %v, want detector.DefaultThreshold %v", got, detector.DefaultThreshold)
	}
}

// TestAddDevices checks dedup, sorting, and empty-address filtering.
func TestAddDevices(t *testing.T) {
	s := NewStore(Config{})
	s.AddDevices("u", "watch:2", "earbud:1")
	s.AddDevices("u", "watch:2", "", "anklet:3")
	p, ok := s.Lookup("u")
	if !ok {
		t.Fatal("profile not created by AddDevices")
	}
	want := []string{"anklet:3", "earbud:1", "watch:2"}
	if len(p.Devices) != len(want) {
		t.Fatalf("devices %v, want %v", p.Devices, want)
	}
	for i := range want {
		if p.Devices[i] != want[i] {
			t.Fatalf("devices %v, want %v", p.Devices, want)
		}
	}
	// The returned copy must be detached from the store.
	p.Devices[0] = "mutated"
	q, _ := s.Lookup("u")
	if q.Devices[0] != "anklet:3" {
		t.Fatal("Lookup returned a live slice into the store")
	}
}

// TestRangeDeterministic pins the sorted walk order.
func TestRangeDeterministic(t *testing.T) {
	s := NewStore(Config{Shards: 4})
	for i := 0; i < 32; i++ {
		s.Observe(fmt.Sprintf("user-%02d", i), 0.6)
	}
	walk := func() []string {
		var ids []string
		s.Range(func(p Profile) bool {
			ids = append(ids, p.UserID)
			return true
		})
		return ids
	}
	a, b := walk(), walk()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("walk lengths %d/%d, want 32", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk order diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestStoreConcurrency hammers one store from many goroutines — reads,
// calibration writes, device registration, snapshot encodes, and LRU
// churn — under the race detector (make profile-race).
func TestStoreConcurrency(t *testing.T) {
	s := NewStore(Config{Shards: 8})
	cache := NewLRU(16)
	const goroutines = 16
	const opsPerG = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				user := fmt.Sprintf("user-%d", rng.Intn(64))
				switch i % 5 {
				case 0:
					p := s.Observe(user, 0.4+0.3*rng.Float64())
					cache.Put(user, s.BaseThreshold()+p.Offset)
				case 1:
					if _, ok := cache.Get(user); !ok {
						off, _ := s.Offset(user)
						cache.Put(user, s.BaseThreshold()+off)
					}
				case 2:
					s.AddDevices(user, fmt.Sprintf("dev-%d", rng.Intn(4)))
				case 3:
					_, _ = s.Lookup(user)
				case 4:
					_ = s.EncodeSnapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 || s.Len() > 64 {
		t.Fatalf("store holds %d users, want 1..64", s.Len())
	}
	for _, u := range cache.Users() {
		if _, ok := s.Lookup(u); !ok {
			t.Fatalf("cache holds unknown user %q", u)
		}
	}
}

// TestOffsetUnknownUser pins that unknown users run at the paper's
// threshold (offset 0, not known).
func TestOffsetUnknownUser(t *testing.T) {
	s := NewStore(Config{})
	off, known := s.Offset("ghost")
	if off != 0 || known {
		t.Fatalf("unknown user offset %v known=%v, want 0/false", off, known)
	}
}
