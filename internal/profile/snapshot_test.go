package profile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// seededStore builds a store with a few calibrated multi-device users.
func seededStore() *Store {
	s := NewStore(Config{Shards: 8})
	s.Observe("alice", 0.61)
	s.Observe("alice", 0.64)
	s.AddDevices("alice", "watch:a1", "earbud:a2")
	s.Observe("bob", 0.38)
	s.AddDevices("bob", "watch:b1")
	s.Observe("carol", 0.55)
	return s
}

// sameContents compares two stores profile by profile.
func sameContents(t *testing.T, a, b *Store) {
	t.Helper()
	var got []Profile
	b.Range(func(p Profile) bool { got = append(got, p); return true })
	i := 0
	a.Range(func(p Profile) bool {
		if i >= len(got) {
			t.Fatalf("decoded store short: %d profiles", len(got))
		}
		q := got[i]
		i++
		if p.UserID != q.UserID || p.Mean != q.Mean || p.Offset != q.Offset || p.Samples != q.Samples {
			t.Fatalf("profile mismatch: %+v vs %+v", p, q)
		}
		if len(p.Devices) != len(q.Devices) {
			t.Fatalf("device mismatch for %q: %v vs %v", p.UserID, p.Devices, q.Devices)
		}
		for j := range p.Devices {
			if p.Devices[j] != q.Devices[j] {
				t.Fatalf("device mismatch for %q: %v vs %v", p.UserID, p.Devices, q.Devices)
			}
		}
		return true
	})
	if i != len(got) {
		t.Fatalf("decoded store long: %d vs %d profiles", len(got), i)
	}
}

// TestSnapshotRoundTrip pins encode→decode identity and deterministic
// encoding (identical contents → identical bytes).
func TestSnapshotRoundTrip(t *testing.T) {
	s := seededStore()
	blob := s.EncodeSnapshot()
	if string(blob[:4]) != snapshotMagic || blob[4] != SnapshotVersion {
		t.Fatalf("header % x, want magic %q version %d", blob[:5], snapshotMagic, SnapshotVersion)
	}
	again := s.EncodeSnapshot()
	if string(blob) != string(again) {
		t.Fatal("encoding is not deterministic")
	}

	dst := NewStore(Config{Shards: 8})
	dst.Observe("stale-user", 0.5) // must be dropped by the swap
	if err := dst.DecodeSnapshot(blob); err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if _, ok := dst.Lookup("stale-user"); ok {
		t.Fatal("decode did not replace prior contents")
	}
	sameContents(t, s, dst)

	// A store with a different shard count decodes the same contents.
	wide := NewStore(Config{Shards: 64})
	if err := wide.DecodeSnapshot(blob); err != nil {
		t.Fatalf("DecodeSnapshot into 64 shards: %v", err)
	}
	sameContents(t, s, wide)
}

// TestSnapshotEmpty round-trips an empty store.
func TestSnapshotEmpty(t *testing.T) {
	s := NewStore(Config{})
	blob := s.EncodeSnapshot()
	dst := seededStore()
	if err := dst.DecodeSnapshot(blob); err != nil {
		t.Fatalf("DecodeSnapshot(empty): %v", err)
	}
	if dst.Len() != 0 {
		t.Fatalf("decoded empty snapshot left %d profiles", dst.Len())
	}
}

// TestSnapshotDecodeErrors is the corrupt/truncated-blob table: every
// mangled blob fails with the right typed error and leaves the receiving
// store unchanged (the brnn.UnmarshalBinary contract).
func TestSnapshotDecodeErrors(t *testing.T) {
	valid := seededStore().EncodeSnapshot()
	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"short magic", []byte("VG"), ErrBadMagic},
		{"wrong magic", append([]byte("XXXX"), valid[4:]...), ErrBadMagic},
		{"missing version", []byte(snapshotMagic), ErrCorruptSnapshot},
		{"unknown version", func() []byte {
			b := append([]byte(nil), valid...)
			b[4] = 99
			return b
		}(), ErrUnknownSnapshotVersion},
		{"truncated count", valid[:5], ErrCorruptSnapshot},
		{"count exceeds bytes", func() []byte {
			b := append([]byte(nil), valid[:5]...)
			return append(b, 0xff, 0xff, 0xff, 0x7f) // huge profile count, no payload
		}(), ErrCorruptSnapshot},
		{"truncated mid-profile", valid[:len(valid)/2], ErrCorruptSnapshot},
		{"truncated last byte", valid[:len(valid)-1], ErrCorruptSnapshot},
		{"trailing bytes", append(append([]byte(nil), valid...), 0x00), ErrCorruptSnapshot},
		{"string length past end", func() []byte {
			// Header + count=1, then a user id claiming 200 bytes with none present.
			b := append([]byte(nil), valid[:5]...)
			return append(b, 0x01, 0xc8, 0x01)
		}(), ErrCorruptSnapshot},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := seededStore()
			before := dst.EncodeSnapshot()
			err := dst.DecodeSnapshot(tc.blob)
			if !errors.Is(err, tc.want) {
				t.Fatalf("DecodeSnapshot error %v, want %v", err, tc.want)
			}
			if after := dst.EncodeSnapshot(); string(after) != string(before) {
				t.Fatal("failed decode mutated the store")
			}
		})
	}
}

// TestSnapshotSaveLoad pins the atomic on-disk round trip and that a
// failed Load leaves the store unchanged.
func TestSnapshotSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.snap")
	s := seededStore()
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// No temp litter after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "profiles.snap" {
		t.Fatalf("directory holds %v, want only profiles.snap", entries)
	}

	dst := NewStore(Config{})
	if err := dst.Load(path); err != nil {
		t.Fatalf("Load: %v", err)
	}
	sameContents(t, s, dst)

	// Corrupt file on disk: typed error, store untouched.
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := dst.EncodeSnapshot()
	if err := dst.Load(path); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Load(corrupt) error %v, want ErrBadMagic", err)
	}
	if string(dst.EncodeSnapshot()) != string(before) {
		t.Fatal("failed Load mutated the store")
	}

	// Missing file: error, store untouched.
	if err := dst.Load(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("Load(missing) succeeded")
	}
}
