// Package selection implements the offline barrier-effect-sensitive
// phoneme selection of Section V-A. For every common phoneme it measures
// third-quartile FFT magnitudes of the wearable's vibration signals with
// and without the barrier, then applies the two criteria of Eqs. (2)-(3):
//
//	Criterion I:  max_f Q3_adv(p, f)  < α  — the phoneme cannot trigger
//	              the accelerometer after passing a barrier.
//	Criterion II: min_f Q3_user(p, f) > α  — the phoneme does trigger the
//	              accelerometer when not passing a barrier.
//
// The barrier-effect-sensitive set is the intersection of both criteria.
package selection

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/acoustics"
	"vibguard/internal/device"
	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
)

// DefaultAlpha is the FFT-magnitude threshold α of Eqs. (2)-(3),
// empirically set from the noise-magnitude floor of the simulated
// accelerometer, following the paper's procedure (the paper's own value,
// 0.015, is tied to the absolute scale of its hardware's FFT magnitudes;
// our simulated sensor has a different absolute scale).
const DefaultAlpha = 0.0062

// CanonicalSelected returns the 31 barrier-effect-sensitive phonemes that
// the offline study (Run with DefaultConfig) identifies, cached here so
// downstream components do not need to re-run the study. The excluded six
// are the weak fricatives /s/, /z/, /th/, /sh/ (Criterion II) and the loud
// open vowels /aa/, /ao/ (Criterion I), matching Section V-A's rationale.
func CanonicalSelected() map[string]bool {
	excluded := map[string]bool{"s": true, "z": true, "th": true, "sh": true, "aa": true, "ao": true}
	out := make(map[string]bool, phoneme.Count()-len(excluded))
	for _, sym := range phoneme.Symbols() {
		if !excluded[sym] {
			out[sym] = true
		}
	}
	return out
}

// Config parameterizes the offline selection study.
type Config struct {
	// Barrier is the typical barrier used for Criterion I (glass window
	// or wooden door).
	Barrier acoustics.Barrier
	// Wearable provides the speaker + accelerometer for cross-domain
	// sensing.
	Wearable *device.Wearable
	// SPLs are the playback sound pressure levels (75 and 85 dB in the
	// paper).
	SPLs []float64
	// SpeakerCount is the number of voices used (10 in the paper: five
	// male, five female).
	SpeakerCount int
	// SegmentsPerSpeaker is the number of segments per speaker and SPL.
	SegmentsPerSpeaker int
	// DistanceM is the playback-to-receiver distance.
	DistanceM float64
	// Alpha is the threshold of Eqs. (2)-(3).
	Alpha float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's setup with a Fossil Gen 5 and a glass
// window, at a size that keeps the offline study fast.
func DefaultConfig() Config {
	return Config{
		Barrier:            acoustics.GlassWindow,
		Wearable:           device.NewFossilGen5(),
		SPLs:               []float64{75, 85},
		SpeakerCount:       10,
		SegmentsPerSpeaker: 5,
		DistanceM:          2,
		Alpha:              DefaultAlpha,
		Seed:               1,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Barrier.Validate(); err != nil {
		return fmt.Errorf("selection: %w", err)
	}
	if c.Wearable == nil {
		return fmt.Errorf("selection: wearable is nil")
	}
	if len(c.SPLs) == 0 {
		return fmt.Errorf("selection: no SPLs")
	}
	if c.SpeakerCount <= 0 || c.SegmentsPerSpeaker <= 0 {
		return fmt.Errorf("selection: speakers %d and segments %d must be positive", c.SpeakerCount, c.SegmentsPerSpeaker)
	}
	if c.DistanceM <= 0 {
		return fmt.Errorf("selection: distance %v must be positive", c.DistanceM)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("selection: alpha %v must be positive", c.Alpha)
	}
	return nil
}

// PhonemeStats records the measured quartile statistics for one phoneme.
type PhonemeStats struct {
	// Symbol is the phoneme.
	Symbol string
	// QAdvMax is max_f Q3_adv(p, f): the peak third-quartile vibration
	// magnitude after the barrier.
	QAdvMax float64
	// QUserMin is min_f Q3_user(p, f): the weakest third-quartile
	// vibration magnitude without the barrier.
	QUserMin float64
	// PassI and PassII report the two criteria.
	PassI, PassII bool
	// QAdv and QUser are the full third-quartile spectra (per vibration-
	// domain FFT bin), used to reproduce Fig. 6.
	QAdv, QUser []float64
}

// Sensitive reports whether the phoneme is barrier-effect sensitive (both
// criteria hold).
func (s *PhonemeStats) Sensitive() bool { return s.PassI && s.PassII }

// Result is the outcome of the offline selection study.
type Result struct {
	// Stats maps each phoneme symbol to its measurements.
	Stats map[string]*PhonemeStats
	// Selected lists the barrier-effect-sensitive phonemes in Table II
	// order.
	Selected []string
	// Alpha echoes the threshold used.
	Alpha float64
}

// IsSelected reports whether a phoneme symbol was selected.
func (r *Result) IsSelected(symbol string) bool {
	s, ok := r.Stats[symbol]
	return ok && s.Sensitive()
}

// SelectedSet returns the selected phonemes as a set.
func (r *Result) SelectedSet() map[string]bool {
	out := make(map[string]bool, len(r.Selected))
	for _, s := range r.Selected {
		out[s] = true
	}
	return out
}

// vibrationSpectrum measures the mean FFT magnitude spectrum (64-point
// frames) of one cross-domain sensing pass.
func vibrationSpectrum(w *device.Wearable, audio []float64, rng *rand.Rand) ([]float64, error) {
	vib, err := w.SenseVibration(audio, rng)
	if err != nil {
		return nil, err
	}
	spec, err := dsp.STFT(vib, dsp.STFTConfig{FFTSize: 64, HopSize: 32, SampleRate: device.AccelSampleRate})
	if err != nil {
		return nil, err
	}
	if spec.NumFrames() == 0 {
		return make([]float64, 33), nil
	}
	out := make([]float64, spec.NumBins())
	for _, row := range spec.Power {
		for k, v := range row {
			out[k] += v
		}
	}
	// Mean magnitude per bin: sqrt of mean power keeps the statistic on
	// the same scale as an FFT magnitude.
	for k := range out {
		out[k] = sqrtSafe(out[k] / float64(spec.NumFrames()))
	}
	return out, nil
}

func sqrtSafe(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Run executes the offline phoneme selection study.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	voices := phoneme.NewStudioVoicePool(cfg.SpeakerCount, cfg.Seed+100)
	res := &Result{Stats: make(map[string]*PhonemeStats, phoneme.Count()), Alpha: cfg.Alpha}

	for _, spec := range phoneme.All() {
		var advSpectra, userSpectra [][]float64
		for _, voice := range voices {
			synth, err := phoneme.NewSynthesizer(voice)
			if err != nil {
				return nil, fmt.Errorf("selection: %w", err)
			}
			for seg := 0; seg < cfg.SegmentsPerSpeaker; seg++ {
				raw, err := synth.Phoneme(spec.Symbol)
				if err != nil {
					return nil, fmt.Errorf("selection: %w", err)
				}
				for _, spl := range cfg.SPLs {
					// Scale the phoneme to the playback SPL, preserving
					// its relative intensity within the utterance.
					gain := dsp.SPLToAmplitude(spl) / 0.1 // refRMS of a unit vowel
					calibrated := dsp.Scale(raw, gain)

					// Criterion I path: through the barrier, then to the
					// receiver.
					adv := cfg.Barrier.Apply(calibrated, phoneme.SampleRate)
					adv = acoustics.Propagate(adv, cfg.DistanceM)
					advSpec, err := vibrationSpectrum(cfg.Wearable, adv, rng)
					if err != nil {
						return nil, fmt.Errorf("selection: %w", err)
					}
					advSpectra = append(advSpectra, advSpec)

					// Criterion II path: same setup without the barrier.
					user := acoustics.Propagate(calibrated, cfg.DistanceM)
					userSpec, err := vibrationSpectrum(cfg.Wearable, user, rng)
					if err != nil {
						return nil, fmt.Errorf("selection: %w", err)
					}
					userSpectra = append(userSpectra, userSpec)
				}
			}
		}
		stats := &PhonemeStats{Symbol: spec.Symbol}
		stats.QAdv = quartilePerBin(advSpectra)
		stats.QUser = quartilePerBin(userSpectra)
		// Bins at or below 5 Hz carry the accelerometer's hypersensitivity
		// artifact (Fig. 7) and are cropped by the detector (Section VI-B),
		// so they are excluded from both criteria.
		skip := artifactBins(64, device.AccelSampleRate, 5)
		stats.QAdvMax = maxOf(stats.QAdv[skip:])
		stats.QUserMin = minOf(stats.QUser[skip:])
		stats.PassI = stats.QAdvMax < cfg.Alpha
		stats.PassII = stats.QUserMin > cfg.Alpha
		res.Stats[spec.Symbol] = stats
	}
	// Selected keeps Table II order because Symbols() is already sorted.
	for _, sym := range phoneme.Symbols() {
		if res.Stats[sym].Sensitive() {
			res.Selected = append(res.Selected, sym)
		}
	}
	return res, nil
}

// quartilePerBin computes the third quartile across samples for every
// frequency bin.
func quartilePerBin(spectra [][]float64) []float64 {
	if len(spectra) == 0 {
		return nil
	}
	bins := len(spectra[0])
	out := make([]float64, bins)
	col := make([]float64, len(spectra))
	for k := 0; k < bins; k++ {
		for i, s := range spectra {
			col[i] = s[k]
		}
		out[k] = dsp.Quartile3(col)
	}
	return out
}

func maxOf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

func minOf(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// artifactBins returns the number of leading FFT bins whose center
// frequency is at or below cutoff Hz for the given FFT size and rate.
func artifactBins(fftSize int, sampleRate, cutoff float64) int {
	n := 0
	for n <= fftSize/2 && dsp.BinFrequency(n, fftSize, sampleRate) <= cutoff {
		n++
	}
	return n
}
