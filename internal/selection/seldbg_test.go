package selection

import (
	"fmt"
	"testing"
)

func TestDebugSelection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpeakerCount = 4
	cfg.SegmentsPerSpeaker = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for sym, s := range res.Stats {
		if !s.Sensitive() {
			fmt.Printf("%-3s QAdvMax=%.5f QUserMin=%.5f I=%v II=%v EXCLUDED\n", sym, s.QAdvMax, s.QUserMin, s.PassI, s.PassII)
		}
	}
	fmt.Println("selected:", len(res.Selected))
}
