package selection

import (
	"testing"

	"vibguard/internal/acoustics"
	"vibguard/internal/device"
	"vibguard/internal/phoneme"
)

// fastConfig shrinks the study so tests stay quick while keeping enough
// samples for stable quartiles.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.SpeakerCount = 4
	cfg.SegmentsPerSpeaker = 2
	return cfg
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Barrier = acoustics.Barrier{} },
		func(c *Config) { c.Wearable = nil },
		func(c *Config) { c.SPLs = nil },
		func(c *Config) { c.SpeakerCount = 0 },
		func(c *Config) { c.SegmentsPerSpeaker = 0 },
		func(c *Config) { c.DistanceM = 0 },
		func(c *Config) { c.Alpha = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestRunSelectsThirtyOnePhonemes(t *testing.T) {
	// The paper identifies 31 of the 37 common phonemes as barrier-effect
	// sensitive (Section V-A). Our calibrated simulation reproduces both
	// the count and the rationale: weak fricatives (/s/, /z/, /th/, /sh/)
	// fail Criterion II, and the loud open vowels (/aa/, /ao/) fail
	// Criterion I.
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Selected); got != 31 {
		t.Errorf("selected %d phonemes, want 31: %v", got, res.Selected)
	}
	wantExcluded := []string{"s", "z", "th", "sh", "aa", "ao"}
	for _, sym := range wantExcluded {
		if res.IsSelected(sym) {
			t.Errorf("%q should be excluded", sym)
		}
	}
	// Weak fricatives fail because they cannot trigger the accelerometer
	// even without a barrier (Criterion II).
	for _, sym := range []string{"s", "z", "th", "sh"} {
		if !res.Stats[sym].PassI {
			t.Errorf("%q should pass Criterion I (it is quiet everywhere)", sym)
		}
		if res.Stats[sym].PassII {
			t.Errorf("%q should fail Criterion II (too weak)", sym)
		}
	}
	// Loud vowels fail because they still trigger the accelerometer after
	// the barrier (Criterion I).
	for _, sym := range []string{"aa", "ao"} {
		if res.Stats[sym].PassI {
			t.Errorf("%q should fail Criterion I (too loud)", sym)
		}
		if !res.Stats[sym].PassII {
			t.Errorf("%q should pass Criterion II", sym)
		}
	}
}

func TestCanonicalSelectedMatchesStudy(t *testing.T) {
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	canonical := CanonicalSelected()
	if len(canonical) != 31 {
		t.Fatalf("canonical set has %d phonemes, want 31", len(canonical))
	}
	for _, sym := range phoneme.Symbols() {
		if canonical[sym] != res.IsSelected(sym) {
			t.Errorf("%q: canonical %v, study %v", sym, canonical[sym], res.IsSelected(sym))
		}
	}
}

func TestRunStatsComplete(t *testing.T) {
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != phoneme.Count() {
		t.Fatalf("stats for %d phonemes, want %d", len(res.Stats), phoneme.Count())
	}
	for sym, s := range res.Stats {
		if s.Symbol != sym {
			t.Errorf("stats key %q has symbol %q", sym, s.Symbol)
		}
		if s.QAdvMax < 0 || s.QUserMin < 0 {
			t.Errorf("%q has negative statistics", sym)
		}
		if len(s.QAdv) != 33 || len(s.QUser) != 33 {
			t.Errorf("%q spectra have %d/%d bins, want 33", sym, len(s.QAdv), len(s.QUser))
		}
		// Criterion I implies the barrier substantially reduced energy:
		// adv spectrum peak must not exceed the user spectrum peak.
		if s.Sensitive() && s.QAdvMax >= maxOf(s.QUser) {
			t.Errorf("%q: adv peak %v >= user peak %v", sym, s.QAdvMax, maxOf(s.QUser))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != len(b.Selected) {
		t.Fatalf("selection not deterministic: %d vs %d", len(a.Selected), len(b.Selected))
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatalf("selection order differs at %d", i)
		}
	}
	if a.Stats["er"].QAdvMax != b.Stats["er"].QAdvMax {
		t.Error("statistics not deterministic")
	}
}

func TestFig6ErProfile(t *testing.T) {
	// Fig. 6 shows /er/ passing a glass window: every Q3 bin below α, and
	// without the barrier: every Q3 bin above α.
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	er := res.Stats["er"]
	if !er.Sensitive() {
		t.Fatal("/er/ should be barrier-effect sensitive (Fig. 6)")
	}
	skip := artifactBins(64, device.AccelSampleRate, 5)
	for k := skip; k < len(er.QAdv); k++ {
		if er.QAdv[k] >= res.Alpha {
			t.Errorf("/er/ adv bin %d = %v, want < alpha %v", k, er.QAdv[k], res.Alpha)
		}
		if er.QUser[k] <= res.Alpha {
			t.Errorf("/er/ user bin %d = %v, want > alpha %v", k, er.QUser[k], res.Alpha)
		}
	}
}

func TestSelectedSet(t *testing.T) {
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	set := res.SelectedSet()
	if len(set) != len(res.Selected) {
		t.Error("set size mismatch")
	}
	if !set["er"] || set["s"] {
		t.Error("set membership wrong")
	}
	if res.IsSelected("bogus") {
		t.Error("unknown symbol should not be selected")
	}
}

func TestArtifactBins(t *testing.T) {
	// At 200 Hz with 64-point FFT, bins are 3.125 Hz apart: bins 0 and 1
	// are at or below 5 Hz.
	if got := artifactBins(64, 200, 5); got != 2 {
		t.Errorf("artifactBins = %d, want 2", got)
	}
	if got := artifactBins(64, 200, 0); got != 1 {
		t.Errorf("artifactBins(0Hz cutoff) = %d, want 1 (DC)", got)
	}
}

func TestQuartilePerBin(t *testing.T) {
	spectra := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	q := quartilePerBin(spectra)
	if len(q) != 2 {
		t.Fatalf("bins = %d", len(q))
	}
	if q[0] != 3.25 || q[1] != 32.5 {
		t.Errorf("Q3 per bin = %v", q)
	}
	if quartilePerBin(nil) != nil {
		t.Error("empty input should be nil")
	}
}
