package dsp

import (
	"math"
	"testing"
)

func sine(n int, freq, fs float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2 * math.Pi * freq * float64(i) / fs)
	}
	return out
}

func TestResampleIdentityRate(t *testing.T) {
	x := sine(1000, 440, 16000)
	y, err := Resample(x, 16000, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != len(x) {
		t.Fatalf("identity resample changed length: %d -> %d", len(x), len(y))
	}
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity resample changed sample %d: %v -> %v", i, x[i], y[i])
		}
	}
	// The output must be a copy, not an alias.
	y[0] = 99
	if x[0] == 99 {
		t.Error("identity resample aliases its input")
	}
}

func TestResampleRatios(t *testing.T) {
	x := sine(16000, 100, 16000)
	cases := []struct {
		fsIn, fsOut float64
		wantLen     int
	}{
		{16000, 8000, 8000},
		{16000, 4000, 4000},
		{16000, 32000, 32000},
		{16000, 48000, 48000},
		{16000, 200, 200},
	}
	for _, tc := range cases {
		y, err := Resample(x, tc.fsIn, tc.fsOut)
		if err != nil {
			t.Fatal(err)
		}
		if len(y) != tc.wantLen {
			t.Errorf("%v->%v: length %d, want %d", tc.fsIn, tc.fsOut, len(y), tc.wantLen)
		}
	}
}

// TestResampleRoundTripError bounds the error of down-then-up resampling a
// smooth signal: linear interpolation of a 100 Hz tone sampled at 4 kHz has
// per-sample error well under 1%.
func TestResampleRoundTripError(t *testing.T) {
	x := sine(16000, 100, 16000)
	down, err := Resample(x, 16000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	up, err := Resample(down, 4000, 16000)
	if err != nil {
		t.Fatal(err)
	}
	n := len(x)
	if len(up) < n {
		n = len(up)
	}
	// Skip the tail, where the sample-and-hold boundary dominates.
	n -= 16
	var maxErr float64
	for i := 0; i < n; i++ {
		if e := math.Abs(up[i] - x[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.01 {
		t.Errorf("round-trip max error %v exceeds 0.01", maxErr)
	}
}

// TestResamplePreservesToneFrequency verifies the interpolation does not
// shift a tone: a 50 Hz sine resampled to 8 kHz must still cross zero
// ~100 times per second.
func TestResamplePreservesToneFrequency(t *testing.T) {
	x := sine(32000, 50, 16000) // 2 seconds
	y, err := Resample(x, 16000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	crossings := 0
	for i := 1; i < len(y); i++ {
		if (y[i-1] < 0) != (y[i] < 0) {
			crossings++
		}
	}
	// 2 s of 50 Hz: 200 half-periods; allow boundary slop.
	if crossings < 196 || crossings > 202 {
		t.Errorf("zero crossings = %d, want ~199", crossings)
	}
}

func TestResampleNegativeInputRate(t *testing.T) {
	if _, err := Resample([]float64{1, 2, 3}, -16000, 8000); err == nil {
		t.Error("negative input rate should error")
	}
}

func TestResampleTinyInput(t *testing.T) {
	// A one-sample input must survive even an extreme downsample.
	y, err := Resample([]float64{0.7}, 16000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1 || y[0] != 0.7 {
		t.Errorf("tiny input: %v", y)
	}
}

func TestDecimateSampleHoldEdgeFactors(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if _, err := DecimateSampleHold(x, -2); err == nil {
		t.Error("negative factor should error")
	}
	one, err := DecimateSampleHold(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(x) {
		t.Errorf("factor 1 changed length: %d", len(one))
	}
	for i := range x {
		if one[i] != x[i] {
			t.Fatalf("factor 1 changed sample %d", i)
		}
	}
}
