package dsp_test

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"vibguard/internal/dsp"
	"vibguard/internal/dsp/dspbench"
)

func randomComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func randomReal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// maxMagnitude returns the largest |v| over a complex spectrum, used as the
// scale for relative-error comparisons.
func maxMagnitude(x []complex128) float64 {
	m := 0.0
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// The planned complex transform fills its twiddle tables with the same
// recurrence the legacy per-call code evaluated inline, so the outputs must
// be bit-identical — the property that keeps golden metrics stable across
// the engine swap.
func TestPlanBitIdenticalToLegacyFFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256, 1024} {
		x := randomComplex(n, int64(n))
		got := dsp.FFT(x)
		want := dspbench.FFTLegacy(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d bin %d: planned %v != legacy %v", n, i, got[i], want[i])
			}
		}
		gotInv := dsp.IFFT(x)
		wantInv := dspbench.IFFTLegacy(x)
		for i := range wantInv {
			if gotInv[i] != wantInv[i] {
				t.Fatalf("n=%d inverse bin %d: planned %v != legacy %v", n, i, gotInv[i], wantInv[i])
			}
		}
	}
}

// The packed real transform takes a different (half-length) route through
// the butterflies, so it is pinned within 1e-9 relative error of the full
// complex transform rather than bit-exactly.
func TestRealPlanMatchesComplexTransform(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 512, 4096} {
		x := randomReal(n, int64(n)+100)
		p, err := dsp.PlanRealFFT(n)
		if err != nil {
			t.Fatal(err)
		}
		got := p.Transform(nil, x, nil)
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		want := dspbench.FFTLegacy(cx)
		scale := maxMagnitude(want)
		if scale == 0 {
			scale = 1
		}
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: %d bins, want %d", n, len(got), n/2+1)
		}
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*scale {
				t.Fatalf("n=%d bin %d: packed %v, complex %v (rel err %v)",
					n, k, got[k], want[k], cmplx.Abs(got[k]-want[k])/scale)
			}
		}
	}
}

// FFTReal unfolds the half spectrum by conjugate symmetry; the full result
// must match the legacy full-length transform within relative 1e-9.
func TestFFTRealMatchesLegacy(t *testing.T) {
	for _, n := range []int{2, 16, 128, 1000, 1024} { // 1000 exercises Bluestein
		x := randomReal(n, int64(n)+200)
		got := dsp.FFTReal(x)
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		want := dsp.FFT(cx)
		scale := maxMagnitude(want)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*scale {
				t.Fatalf("n=%d bin %d: FFTReal %v, FFT %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestPowerAndMagnitudeSpectrumMatchLegacy(t *testing.T) {
	for _, n := range []int{2, 64, 512, 2048} {
		x := randomReal(n, int64(n)+300)
		gotP := dsp.PowerSpectrum(x)
		wantP := dspbench.PowerSpectrumLegacy(x)
		scale := 0.0
		for _, v := range wantP {
			if v > scale {
				scale = v
			}
		}
		if scale == 0 {
			scale = 1
		}
		for k := range wantP {
			if math.Abs(gotP[k]-wantP[k]) > 1e-9*scale {
				t.Fatalf("n=%d bin %d: power %v, legacy %v", n, k, gotP[k], wantP[k])
			}
		}
		gotM := dsp.MagnitudeSpectrum(x)
		for k := range wantP {
			want := math.Sqrt(wantP[k])
			if math.Abs(gotM[k]-want) > 1e-9*math.Sqrt(scale) {
				t.Fatalf("n=%d bin %d: magnitude %v, legacy %v", n, k, gotM[k], want)
			}
		}
	}
}

func TestSTFTMatchesLegacy(t *testing.T) {
	cases := []struct {
		n    int
		cfg  dsp.STFTConfig
		name string
	}{
		{4800, dsp.STFTConfig{FFTSize: 64, HopSize: 16, SampleRate: 200}, "vibration"},
		{16000, dsp.STFTConfig{FFTSize: 512, HopSize: 160, SampleRate: 16000}, "audio"},
		{100, dsp.STFTConfig{FFTSize: 256, SampleRate: 200}, "zero-padded single frame"},
		{700, dsp.STFTConfig{FFTSize: 64, HopSize: 200, SampleRate: 200}, "hop larger than window"},
		{64, dsp.STFTConfig{FFTSize: 64, HopSize: 16, SampleRate: 200, Window: dsp.WindowBlackman}, "exact one window"},
	}
	for _, tc := range cases {
		x := randomReal(tc.n, int64(tc.n))
		got, err := dsp.STFT(x, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := dspbench.STFTLegacy(x, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.NumFrames() != want.NumFrames() || got.NumBins() != want.NumBins() {
			t.Fatalf("%s: shape %dx%d, want %dx%d", tc.name,
				got.NumFrames(), got.NumBins(), want.NumFrames(), want.NumBins())
		}
		scale := want.MaxValue()
		if scale == 0 {
			scale = 1
		}
		for f, row := range want.Power {
			for k, w := range row {
				if math.Abs(got.Power[f][k]-w) > 1e-9*scale {
					t.Fatalf("%s: frame %d bin %d: %v, want %v", tc.name, f, k, got.Power[f][k], w)
				}
			}
		}
	}
}

func TestPlanCacheReturnsSharedInstance(t *testing.T) {
	p1, err := dsp.PlanFFT(128)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := dsp.PlanFFT(128)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("PlanFFT(128) built two instances for one size")
	}
	r1, err := dsp.PlanRealFFT(128)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dsp.PlanRealFFT(128)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("PlanRealFFT(128) built two instances for one size")
	}
}

func TestPlanRejectsInvalidLengths(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		if _, err := dsp.PlanFFT(n); err == nil {
			t.Errorf("PlanFFT(%d) = nil error", n)
		}
		if _, err := dsp.PlanRealFFT(n); err == nil {
			t.Errorf("PlanRealFFT(%d) = nil error", n)
		}
	}
}

func TestPlanForwardInPlaceAliasing(t *testing.T) {
	x := randomComplex(256, 7)
	want := dsp.FFT(x)
	p, err := dsp.PlanFFT(256)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]complex128, 256)
	copy(buf, x)
	got := p.Forward(buf, buf) // dst aliases src: transform in place
	if &got[0] != &buf[0] {
		t.Fatal("aliased Forward reallocated its destination")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d: in-place %v != out-of-place %v", i, got[i], want[i])
		}
	}
	p.Inverse(buf, buf)
	for i := range x {
		if cmplx.Abs(buf[i]-x[i]) > 1e-9 {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, buf[i], x[i])
		}
	}
}

// Reused destination and scratch buffers make planned transforms
// allocation-free — the property the STFT and MFCC hot loops rely on.
func TestPlanReusedBuffersAllocationFree(t *testing.T) {
	p, err := dsp.PlanFFT(512)
	if err != nil {
		t.Fatal(err)
	}
	src := randomComplex(512, 8)
	dst := make([]complex128, 512)
	if avg := testing.AllocsPerRun(50, func() { p.Forward(dst, src) }); avg != 0 {
		t.Errorf("planned Forward with reused dst: %.1f allocs/op, want 0", avg)
	}
	rp, err := dsp.PlanRealFFT(512)
	if err != nil {
		t.Fatal(err)
	}
	x := randomReal(512, 9)
	power := make([]float64, rp.NumBins())
	scratch := rp.Scratch()
	if avg := testing.AllocsPerRun(50, func() { rp.PowerInto(power, x, scratch) }); avg != 0 {
		t.Errorf("PowerInto with reused buffers: %.1f allocs/op, want 0", avg)
	}
}

// STFT's per-call allocation count must stay O(1) in the frame count: one
// contiguous backing array plus a handful of fixed buffers, never per-frame
// garbage. 300 frames in, a small constant out.
func TestSTFTConstantAllocations(t *testing.T) {
	x := randomReal(4800, 10)
	cfg := dsp.STFTConfig{FFTSize: 64, HopSize: 16, SampleRate: 200}
	// Warm the plan and window caches so the steady state is measured.
	if _, err := dsp.STFT(x, cfg); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := dsp.STFT(x, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 8 {
		t.Errorf("STFT allocates %.1f times per call for 298 frames, want <= 8", avg)
	}
}

// Plans are shared, immutable state; hammer one from many goroutines (the
// ParallelScorer pattern) and check every result. Run under -race in CI.
func TestPlanConcurrentUse(t *testing.T) {
	const workers = 8
	x := randomReal(1024, 11)
	want := dsp.PowerSpectrum(x)
	cfg := dsp.STFTConfig{FFTSize: 64, HopSize: 16, SampleRate: 200}
	wantSpec, err := dsp.STFT(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				got := dsp.PowerSpectrum(x)
				for k := range want {
					if got[k] != want[k] {
						errs <- errMismatch
						return
					}
				}
				spec, err := dsp.STFT(x, cfg)
				if err != nil {
					errs <- err
					return
				}
				for f := range wantSpec.Power {
					for k := range wantSpec.Power[f] {
						if spec.Power[f][k] != wantSpec.Power[f][k] {
							errs <- errMismatch
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = errMismatchType{}

type errMismatchType struct{}

func (errMismatchType) Error() string { return "concurrent transform produced a different result" }
