package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1, 0, 0, 0] is all-ones.
	out := FFT([]complex128{1, 0, 0, 0})
	for i, v := range out {
		if cmplx.Abs(v-1) > eps {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a constant is an impulse at DC.
	out = FFT([]complex128{2, 2, 2, 2})
	if cmplx.Abs(out[0]-8) > eps {
		t.Errorf("DC bin = %v, want 8", out[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(out[i]) > eps {
			t.Errorf("bin %d = %v, want 0", i, out[i])
		}
	}
}

func TestFFTSineBinLocation(t *testing.T) {
	const n = 256
	const k = 17
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(k) * float64(i) / n)
	}
	mag := Magnitude(FFTReal(x))
	// Expect peaks exactly at bins k and n-k of height n/2.
	for i := 0; i < n; i++ {
		want := 0.0
		if i == k || i == n-k {
			want = n / 2
		}
		if !approxEqual(mag[i], want, 1e-6) {
			t.Errorf("bin %d magnitude = %v, want %v", i, mag[i], want)
		}
	}
}

func TestFFTRoundTripPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		back := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTRoundTripArbitraryLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 7, 12, 100, 441, 1000} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		back := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-7 {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestBluesteinMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 13
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	got := FFT(x)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k*j) / float64(n)
			want += x[j] * cmplx.Rect(1, angle)
		}
		if cmplx.Abs(got[k]-want) > 1e-8 {
			t.Errorf("bin %d = %v, want %v", k, got[k], want)
		}
	}
}

// Property: Parseval's theorem — energy in time domain equals energy in the
// frequency domain divided by N.
func TestFFTParsevalProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 512 {
			vals = vals[:512]
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				vals[i] = math.Mod(v, 1000)
				if math.IsNaN(vals[i]) {
					vals[i] = 0
				}
			}
		}
		timeEnergy := Energy(vals)
		spec := FFTReal(vals)
		freqEnergy := 0.0
		for _, v := range spec {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(len(vals))
		tol := 1e-6 * (1 + timeEnergy)
		return math.Abs(timeEnergy-freqEnergy) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: FFT is linear.
func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 1 << (1 + rng.Intn(8))
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = a[i] + b[i]
		}
		fa, fb, fsum := FFT(a), FFT(b), FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(fsum[i]-(fa[i]+fb[i])) > 1e-8 {
				t.Fatalf("n=%d bin %d: FFT(a+b) != FFT(a)+FFT(b)", n, i)
			}
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if out := FFT(nil); out != nil {
		t.Errorf("FFT(nil) = %v, want nil", out)
	}
	if out := IFFT(nil); out != nil {
		t.Errorf("IFFT(nil) = %v, want nil", out)
	}
}

// TestMagnitudeLargeBins covers the cmplx.Abs -> sqrt(re^2+im^2) swap:
// the plain form must stay exact for bins far beyond any audio scale
// (squaring overflows only past ~1.3e154, which spectra of unit-scale
// signals never approach).
func TestMagnitudeLargeBins(t *testing.T) {
	x := []complex128{
		complex(3e150, 4e150),
		complex(-3e150, 4e150),
		complex(0, -7e152),
		complex(1e-150, 0), // squaring still in range; ~1e-154 is the floor
		0,
	}
	want := []float64{5e150, 5e150, 7e152, 1e-150, 0}
	got := Magnitude(x)
	for i := range want {
		if want[i] == 0 {
			if got[i] != 0 {
				t.Errorf("bin %d: |0| = %v", i, got[i])
			}
			continue
		}
		if math.Abs(got[i]-want[i]) > 1e-12*want[i] {
			t.Errorf("bin %d: magnitude %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMagnitudeSpectrumBins(t *testing.T) {
	x := make([]float64, 128)
	spec := MagnitudeSpectrum(x)
	if len(spec) != 65 {
		t.Errorf("got %d bins, want 65", len(spec))
	}
}

func TestBinFrequencyRoundTrip(t *testing.T) {
	const n, fs = 1024, 16000.0
	for _, f := range []float64{0, 100, 500, 1000, 7999} {
		k := FrequencyBin(f, n, fs)
		back := BinFrequency(k, n, fs)
		if math.Abs(back-f) > fs/float64(n) {
			t.Errorf("f=%v: bin %d maps back to %v", f, k, back)
		}
	}
	if FrequencyBin(-5, n, fs) != 0 {
		t.Error("negative frequency should clamp to bin 0")
	}
	if FrequencyBin(1e9, n, fs) != n/2 {
		t.Error("huge frequency should clamp to Nyquist bin")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-1: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestValidateLength(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 4096} {
		if err := ValidateLength(n); err != nil {
			t.Errorf("ValidateLength(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -4, 3, 5, 100} {
		if err := ValidateLength(n); err == nil {
			t.Errorf("ValidateLength(%d) = nil, want error", n)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkBluestein1000(b *testing.B) {
	x := make([]complex128, 1000)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
