// Package dspbench preserves the pre-plan reference implementations of the
// hot dsp primitives (per-call radix-2 FFT, per-frame-allocating STFT, the
// O(n*maxLag) delay search) and defines the benchmark kernels that compare
// them against the planned engine. The kernels are shared by the
// `go test -bench` wrappers in internal/dsp and by cmd/benchdsp, which
// emits the checked-in BENCH_dsp.json baseline, so the two can never
// measure different workloads.
package dspbench

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"testing"

	"vibguard/internal/dsp"
)

// legacyRadix2 is the historical in-place iterative radix-2 FFT that
// recomputed its bit-reversal permutation and twiddle recurrence on every
// call. It is the bit-exact ancestor of the planned transform.
func legacyRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// FFTLegacy computes the DFT of a power-of-two-length input with the
// historical per-call transform (fresh output slice, twiddles recomputed).
func FFTLegacy(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	legacyRadix2(out, false)
	return out
}

// IFFTLegacy is the historical inverse transform including 1/N scaling.
func IFFTLegacy(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	legacyRadix2(out, true)
	inv := 1 / float64(len(x))
	for i := range out {
		out[i] = complex(real(out[i])*inv, imag(out[i])*inv)
	}
	return out
}

// PowerSpectrumLegacy computes the single-sided power spectrum of a
// power-of-two-length real signal the historical way: a full-length complex
// transform with per-call buffers.
func PowerSpectrumLegacy(x []float64) []float64 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	legacyRadix2(cx, false)
	half := len(x)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		re, im := real(cx[i]), imag(cx[i])
		out[i] = re*re + im*im
	}
	return out
}

// STFTLegacy computes the power spectrogram with the historical
// implementation: a fresh window, a full complex FFT per frame, and a
// per-frame allocated spectrum copy and output row.
func STFTLegacy(x []float64, cfg dsp.STFTConfig) (*dsp.Spectrogram, error) {
	if err := dsp.ValidateLength(cfg.FFTSize); err != nil {
		return nil, fmt.Errorf("stft: %w", err)
	}
	hop := cfg.HopSize
	if hop <= 0 {
		hop = cfg.FFTSize / 2
	}
	kind := cfg.Window
	if kind == 0 {
		kind = dsp.WindowHann
	}
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("stft: sample rate %v must be positive", cfg.SampleRate)
	}
	if len(x) == 0 {
		return &dsp.Spectrogram{FFTSize: cfg.FFTSize, HopSize: hop, SampleRate: cfg.SampleRate}, nil
	}
	win := dsp.Window(kind, cfg.FFTSize)
	numFrames := 1
	if len(x) > cfg.FFTSize {
		numFrames = 1 + (len(x)-cfg.FFTSize+hop-1)/hop
	}
	half := cfg.FFTSize/2 + 1
	power := make([][]float64, numFrames)
	frame := make([]complex128, cfg.FFTSize)
	for t := 0; t < numFrames; t++ {
		start := t * hop
		for i := 0; i < cfg.FFTSize; i++ {
			v := 0.0
			if start+i < len(x) {
				v = x[start+i] * win[i]
			}
			frame[i] = complex(v, 0)
		}
		spec := make([]complex128, cfg.FFTSize)
		copy(spec, frame)
		legacyRadix2(spec, false)
		row := make([]float64, half)
		for f := 0; f < half; f++ {
			re, im := real(spec[f]), imag(spec[f])
			row[f] = re*re + im*im
		}
		power[t] = row
	}
	return &dsp.Spectrogram{
		Power:      power,
		FFTSize:    cfg.FFTSize,
		HopSize:    hop,
		SampleRate: cfg.SampleRate,
	}, nil
}

// EstimateDelayLegacy is the historical delay search: the direct
// O(n*maxLag) correlation loop followed by an argmax with ties resolving to
// the smallest lag.
func EstimateDelayLegacy(a, b []float64, maxLag int) int {
	if maxLag < 0 {
		maxLag = 0
	}
	best, bestVal := 0, math.Inf(-1)
	for tau := 0; tau <= maxLag; tau++ {
		sum := 0.0
		for n := 0; n+tau < len(b) && n < len(a); n++ {
			sum += a[n] * b[n+tau]
		}
		if sum > bestVal {
			best, bestVal = tau, sum
		}
	}
	return best
}

// Case is one benchmark kernel: Group matches a Benchmark<Group> wrapper in
// internal/dsp and Name is the sub-benchmark label.
type Case struct {
	Group string
	Name  string
	Fn    func(b *testing.B)
}

// Signal returns the deterministic benchmark input used by every kernel: a
// sine buried in seeded Gaussian noise.
func Signal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/37) + 0.3*rng.NormFloat64()
	}
	return x
}

func complexSignal(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	return x
}

const (
	delaySignalLen = 16000
	delayShift     = 1600
	delayMaxLag    = 8000
)

func delayPair() (a, b []float64) {
	a = Signal(delaySignalLen, 3)
	b = make([]float64, delayShift+len(a))
	copy(b[delayShift:], a)
	return a, b
}

// Cases returns every benchmark kernel, current engine and legacy reference
// side by side on identical workloads.
func Cases() []Case {
	return []Case{
		{"FFTPlan", "1024", func(b *testing.B) {
			p, err := dsp.PlanFFT(1024)
			if err != nil {
				b.Fatal(err)
			}
			src := complexSignal(1024)
			dst := make([]complex128, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Forward(dst, src)
			}
		}},
		{"FFTPlan", "legacy-1024", func(b *testing.B) {
			src := complexSignal(1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FFTLegacy(src)
			}
		}},
		{"STFT", "64x16-4800", benchSTFT(64, 16, 200, 4800, false)},
		{"STFT", "512x160-16000", benchSTFT(512, 160, 16000, 16000, false)},
		{"STFTLegacy", "64x16-4800", benchSTFT(64, 16, 200, 4800, true)},
		{"STFTLegacy", "512x160-16000", benchSTFT(512, 160, 16000, 16000, true)},
		{"EstimateDelayFFT", "16000x8000", func(b *testing.B) {
			a, bb := delayPair()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := dsp.EstimateDelayFFT(a, bb, delayMaxLag); got != delayShift {
					b.Fatalf("delay %d", got)
				}
			}
		}},
		{"EstimateDelayLegacy", "16000x8000", func(b *testing.B) {
			a, bb := delayPair()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := EstimateDelayLegacy(a, bb, delayMaxLag); got != delayShift {
					b.Fatalf("delay %d", got)
				}
			}
		}},
		{"PowerSpectrum", "512", func(b *testing.B) {
			x := Signal(512, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dsp.PowerSpectrum(x)
			}
		}},
		{"PowerSpectrum", "legacy-512", func(b *testing.B) {
			x := Signal(512, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				PowerSpectrumLegacy(x)
			}
		}},
	}
}

func benchSTFT(fftSize, hop int, rate float64, n int, legacy bool) func(b *testing.B) {
	return func(b *testing.B) {
		x := Signal(n, int64(fftSize))
		cfg := dsp.STFTConfig{FFTSize: fftSize, HopSize: hop, SampleRate: rate}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if legacy {
				_, err = STFTLegacy(x, cfg)
			} else {
				_, err = dsp.STFT(x, cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
