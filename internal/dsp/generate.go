package dsp

import (
	"fmt"
	"math"
)

// Tone generates a sine wave of the given frequency, amplitude, and
// duration in seconds at sample rate fs.
func Tone(freq, amplitude, duration, fs float64) []float64 {
	n := int(duration * fs)
	out := make([]float64, n)
	for i := range out {
		out[i] = amplitude * math.Sin(2*math.Pi*freq*float64(i)/fs)
	}
	return out
}

// Chirp generates a linear frequency sweep from f0 to f1 Hz over the given
// duration. It is used to reproduce the accelerometer frequency-response
// measurement of Fig. 7 (a 500-2500 Hz chirp).
func Chirp(f0, f1, amplitude, duration, fs float64) []float64 {
	n := int(duration * fs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k := (f1 - f0) / duration
	for i := range out {
		t := float64(i) / fs
		phase := 2 * math.Pi * (f0*t + k*t*t/2)
		out[i] = amplitude * math.Sin(phase)
	}
	return out
}

// Mix sums any number of signals sample-wise; the output has the length of
// the longest input.
func Mix(signals ...[]float64) []float64 {
	maxLen := 0
	for _, s := range signals {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	out := make([]float64, maxLen)
	for _, s := range signals {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// Scale multiplies x by g into a new slice.
func Scale(x []float64, g float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v * g
	}
	return out
}

// Concat concatenates signals into a single new slice.
func Concat(signals ...[]float64) []float64 {
	total := 0
	for _, s := range signals {
		total += len(s)
	}
	out := make([]float64, 0, total)
	for _, s := range signals {
		out = append(out, s...)
	}
	return out
}

// FadeEdges applies a raised-cosine fade-in/out of fadeLen samples to avoid
// clicks at segment boundaries. It modifies x in place and returns it.
func FadeEdges(x []float64, fadeLen int) []float64 {
	if fadeLen*2 > len(x) {
		fadeLen = len(x) / 2
	}
	for i := 0; i < fadeLen; i++ {
		g := 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(fadeLen)))
		x[i] *= g
		x[len(x)-1-i] *= g
	}
	return x
}

// AmplitudeToDB converts a linear amplitude ratio to decibels. Amplitudes
// at or below zero map to a -120 dB floor.
func AmplitudeToDB(a float64) float64 {
	if a <= 0 {
		return -120
	}
	return 20 * math.Log10(a)
}

// DBToAmplitude converts decibels to a linear amplitude ratio.
func DBToAmplitude(db float64) float64 {
	return math.Pow(10, db/20)
}

// SPLToAmplitude converts a sound pressure level in dB SPL to a nominal
// linear waveform amplitude, calibrated so that 94 dB SPL corresponds to
// amplitude 1.0 (a common digital full-scale calibration point).
func SPLToAmplitude(splDB float64) float64 {
	return DBToAmplitude(splDB - 94)
}

// AmplitudeToSPL is the inverse of SPLToAmplitude.
func AmplitudeToSPL(a float64) float64 {
	return AmplitudeToDB(a) + 94
}

// NormalizeRMS scales x so its RMS equals target, returning a new slice.
// A silent signal is returned unchanged (copied).
func NormalizeRMS(x []float64, target float64) ([]float64, error) {
	if target < 0 {
		return nil, fmt.Errorf("normalize: target RMS %v must be non-negative", target)
	}
	rms := RMS(x)
	out := make([]float64, len(x))
	copy(out, x)
	if rms == 0 {
		return out, nil
	}
	g := target / rms
	for i := range out {
		out[i] *= g
	}
	return out, nil
}
