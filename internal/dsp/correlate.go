package dsp

import (
	"math"
	"sort"
	"sync"
)

// CrossCorrelate computes the raw cross-correlation Corr(tau) =
// sum_n a[n]*b[n+tau] for tau in [0, maxLag], as used by the cross-device
// synchronization of Eq. (5): a is the VA recording, b the wearable
// recording, and the argmax lag estimates how many samples of b precede the
// content of a.
//
// Small problems use the direct O(n*maxLag) loop; above the crossover where
// the transform work pays for itself the values are computed in O(m log m)
// via the planned FFT engine (see CrossCorrelateFFT). Both paths compute
// the same sums, differing only by floating-point rounding on the order of
// machine epsilon.
func CrossCorrelate(a, b []float64, maxLag int) []float64 {
	if maxLag < 0 {
		maxLag = 0
	}
	if useFFTCorrelation(len(a), len(b), maxLag) {
		return CrossCorrelateFFT(a, b, maxLag)
	}
	return crossCorrelateDirect(a, b, maxLag)
}

// crossCorrelateDirect is the reference O(n*maxLag) correlation loop, kept
// both as the below-crossover fast path (tiny problems don't amortize a
// transform) and as the ground truth the FFT path is pinned against.
func crossCorrelateDirect(a, b []float64, maxLag int) []float64 {
	out := make([]float64, maxLag+1)
	for tau := 0; tau <= maxLag; tau++ {
		sum := 0.0
		for n := 0; n+tau < len(b) && n < len(a); n++ {
			sum += a[n] * b[n+tau]
		}
		out[tau] = sum
	}
	return out
}

// useFFTCorrelation decides whether the transform path beats the direct
// loop: roughly (maxLag+1)*minLen multiply-adds against two planned FFTs of
// the padded length. The factor under-weights the FFT (whose constant per
// butterfly is higher than a fused multiply-add in the direct loop).
func useFFTCorrelation(na, nb, maxLag int) bool {
	if na == 0 || nb == 0 {
		return false
	}
	minLen := na
	if nb < minLen {
		minLen = nb
	}
	direct := float64(maxLag+1) * float64(minLen)
	m := float64(corrFFTLength(na, nb, maxLag))
	return direct > 8*m*math.Log2(m)
}

// corrFFTLength returns the power-of-two transform length that keeps the
// circular correlation free of wraparound for lags 0..maxLag: indices reach
// na-1+maxLag, and b must fit.
func corrFFTLength(na, nb, maxLag int) int {
	need := na + maxLag
	if nb > need {
		need = nb
	}
	return NextPow2(need)
}

// corrBufPool recycles the large transform buffers of the FFT correlation
// path. AlignRecordings runs once per scored sample from every
// ParallelScorer worker, so steady-state delay estimation allocates
// nothing; sync.Pool keeps recycling per-P and race-safe.
var corrBufPool sync.Pool

// getCorrBuf hands out a zeroed m-entry buffer plus the boxed header
// pointer that travels through the pool with it. The header is boxed
// here, once per fresh allocation — never in putCorrBuf, where taking a
// parameter's address would force a heap copy on every call.
func getCorrBuf(m int) ([]complex128, *[]complex128) {
	if v := corrBufPool.Get(); v != nil {
		ptr := v.(*[]complex128)
		if cap(*ptr) >= m {
			buf := (*ptr)[:m]
			for i := range buf {
				buf[i] = 0
			}
			return buf, ptr
		}
	}
	ptr := new([]complex128)
	*ptr = make([]complex128, m)
	return *ptr, ptr
}

func putCorrBuf(ptr *[]complex128) {
	corrBufPool.Put(ptr)
}

// corrSpectrum computes the circular cross-correlation of a and b (scaled
// by m, the returned transform length) into a pooled buffer: entry tau
// holds m*Corr(tau) in its real part for tau in [0, maxLag]. The caller
// must return the buffer with putCorrBuf.
func corrSpectrum(a, b []float64, maxLag int) ([]complex128, *[]complex128, int) {
	m := corrFFTLength(len(a), len(b), maxLag)
	p := mustPlanFFT(m)
	f, ptr := getCorrBuf(m)
	for i, v := range a {
		f[i] = complex(v, 0)
	}
	for i, v := range b {
		f[i] = complex(real(f[i]), v)
	}
	p.transform(f, p.fwd)
	// For packed f = a + i*b the individual spectra are
	//   A[k] = (F[k] + conj(F[m-k]))/2,  B[k] = -i*(F[k] - conj(F[m-k]))/2,
	// and the cross-spectrum S[k] = conj(A[k])*B[k] is Hermitian (the
	// correlation is real), so only half of it needs computing.
	half := m / 2
	for k := 0; k <= half; k++ {
		fk := f[k]
		fmk := f[(m-k)%m]
		h := complex(real(fmk), -imag(fmk))
		ak := (fk + h) * complex(0.5, 0)
		bk := (fk - h) * complex(0, -0.5)
		s := complex(real(ak), -imag(ak)) * bk
		f[k] = s
		if k != 0 && k != half {
			f[m-k] = complex(real(s), -imag(s))
		}
	}
	p.transform(f, p.inv)
	return f, ptr, m
}

// CrossCorrelateFFT computes the same lags as CrossCorrelate via the
// frequency domain: both signals are packed into one complex transform
// (a in the real lane, b in the imaginary lane), the conjugate
// cross-spectrum conj(A)*B is assembled from the packed spectrum's
// Hermitian halves, and a single inverse transform yields the correlation.
// Two planned FFTs total, O(m log m) independent of maxLag.
func CrossCorrelateFFT(a, b []float64, maxLag int) []float64 {
	if maxLag < 0 {
		maxLag = 0
	}
	if len(a) == 0 || len(b) == 0 {
		return make([]float64, maxLag+1)
	}
	f, ptr, m := corrSpectrum(a, b, maxLag)
	inv := 1 / float64(m)
	out := make([]float64, maxLag+1)
	for tau := range out {
		out[tau] = real(f[tau]) * inv
	}
	putCorrBuf(ptr)
	return out
}

// EstimateDelay returns the lag in [0, maxLag] that maximizes the
// cross-correlation of a and b (Eq. 5). Ties resolve to the smallest lag.
// Above the correlation crossover size the search runs on the FFT path.
func EstimateDelay(a, b []float64, maxLag int) int {
	if maxLag < 0 {
		maxLag = 0
	}
	if useFFTCorrelation(len(a), len(b), maxLag) {
		return EstimateDelayFFT(a, b, maxLag)
	}
	return argmaxLag(crossCorrelateDirect(a, b, maxLag))
}

// EstimateDelayFFT is EstimateDelay forced onto the frequency-domain
// correlation path regardless of problem size (benchmarks and equivalence
// tests pin it against the direct loop). With the pooled transform buffer
// the steady-state search allocates nothing.
func EstimateDelayFFT(a, b []float64, maxLag int) int {
	if maxLag < 0 {
		maxLag = 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	f, ptr, m := corrSpectrum(a, b, maxLag)
	inv := 1 / float64(m)
	best, bestVal := 0, math.Inf(-1)
	for tau := 0; tau <= maxLag; tau++ {
		if v := real(f[tau]) * inv; v > bestVal {
			best, bestVal = tau, v
		}
	}
	putCorrBuf(ptr)
	return best
}

func argmaxLag(corr []float64) int {
	best, bestVal := 0, math.Inf(-1)
	for tau, v := range corr {
		if v > bestVal {
			best, bestVal = tau, v
		}
	}
	return best
}

// EstimateDelayRange returns the lag in [loLag, hiLag] maximizing the
// cross-correlation of a and b. Ties resolve to the smallest lag.
func EstimateDelayRange(a, b []float64, loLag, hiLag int) int {
	if loLag < 0 {
		loLag = 0
	}
	if hiLag < loLag {
		hiLag = loLag
	}
	best, bestVal := loLag, math.Inf(-1)
	for tau := loLag; tau <= hiLag; tau++ {
		sum := 0.0
		for n := 0; n+tau < len(b) && n < len(a); n++ {
			sum += a[n] * b[n+tau]
		}
		if sum > bestVal {
			best, bestVal = tau, sum
		}
	}
	return best
}

// EstimateDelayFast estimates the delay like EstimateDelay but with a
// coarse-to-fine search: a decimated pass locates the neighborhood and a
// full-rate pass refines it. It predates the FFT correlation path (which is
// both exact and usually faster — see EstimateDelay) and is kept for
// callers that want the bounded-refinement behavior; it trades a tiny
// accuracy risk (pathological narrowband signals) for a ~factor^2 speedup
// over the direct loop on long recordings.
func EstimateDelayFast(a, b []float64, maxLag int) int {
	const factor = 16
	if maxLag < 4*factor || len(a) < 4*factor || len(b) < 4*factor {
		return EstimateDelay(a, b, maxLag)
	}
	// Box-filter before decimating so off-grid shifts still correlate in
	// the coarse pass.
	da, err := DecimateSampleHold(boxFilter(a, factor), factor)
	if err != nil {
		return EstimateDelay(a, b, maxLag)
	}
	db, err := DecimateSampleHold(boxFilter(b, factor), factor)
	if err != nil {
		return EstimateDelay(a, b, maxLag)
	}
	coarse := EstimateDelay(da, db, maxLag/factor)
	// The coarse pass matches envelopes, whose correlation peaks are broad
	// (tens of ms for speech); refine over a window wide enough to recover
	// the exact peak even when the envelope estimate sits a pitch period
	// or two away.
	lo := coarse*factor - 24*factor
	if lo < 0 {
		// Clamp here rather than relying on EstimateDelayRange's internal
		// clamp: a coarse peak near zero legitimately produces a negative
		// window start, and the search contract is [0, maxLag].
		lo = 0
	}
	hi := coarse*factor + 24*factor
	if hi > maxLag {
		hi = maxLag
	}
	return EstimateDelayRange(a, b, lo, hi)
}

// boxFilter applies a running mean of the given width.
func boxFilter(x []float64, width int) []float64 {
	if width <= 1 || len(x) == 0 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, len(x))
	sum := 0.0
	for i, v := range x {
		sum += v
		if i >= width {
			sum -= x[i-width]
		}
		n := width
		if i+1 < width {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// vectors. It returns 0 when either vector has zero variance or the lengths
// differ.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	meanA, meanB := Mean(a), Mean(b)
	var num, varA, varB float64
	for i := range a {
		da, db := a[i]-meanA, b[i]-meanB
		num += da * db
		varA += da * da
		varB += db * db
	}
	den := math.Sqrt(varA * varB)
	if den == 0 {
		return 0
	}
	return num / den
}

// Correlate2D computes the 2D correlation coefficient of Eq. (6) between
// two spectrograms: the Pearson correlation over all (time, frequency)
// cells. The spectrograms are compared over their overlapping region so
// that small frame-count differences (from slightly different recording
// lengths) do not fail the comparison.
//
// The correlation streams over the spectrogram rows directly — no flattened
// copies — visiting cells in the same frame-major order as a Pearson over
// flattened vectors, so the result is bit-identical to the historical
// implementation while allocating nothing.
func Correlate2D(a, b *Spectrogram) float64 {
	if a == nil || b == nil {
		return 0
	}
	frames := a.NumFrames()
	if b.NumFrames() < frames {
		frames = b.NumFrames()
	}
	bins := a.NumBins()
	if b.NumBins() < bins {
		bins = b.NumBins()
	}
	if frames == 0 || bins == 0 {
		return 0
	}
	n := float64(frames * bins)
	var sumA, sumB float64
	for t := 0; t < frames; t++ {
		for _, v := range a.Power[t][:bins] {
			sumA += v
		}
	}
	for t := 0; t < frames; t++ {
		for _, v := range b.Power[t][:bins] {
			sumB += v
		}
	}
	meanA, meanB := sumA/n, sumB/n
	var num, varA, varB float64
	for t := 0; t < frames; t++ {
		ra, rb := a.Power[t][:bins], b.Power[t][:bins]
		for k := range ra {
			da, db := ra[k]-meanA, rb[k]-meanB
			num += da * db
			varA += da * da
			varB += db * db
		}
	}
	den := math.Sqrt(varA * varB)
	if den == 0 {
		return 0
	}
	return num / den
}

// Mean returns the arithmetic mean of x (0 for an empty slice).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Energy returns the sum of squares of x.
func Energy(x []float64) float64 {
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	return sum
}

// RMS returns the root-mean-square amplitude of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return math.Sqrt(Energy(x) / float64(len(x)))
}

// MaxAbs returns the maximum absolute value in x.
func MaxAbs(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Quartile3 returns the third quartile (75th percentile) of x using linear
// interpolation between order statistics, matching the Q3 statistic of the
// phoneme selection criteria (Eqs. 2-3). It returns 0 for an empty slice.
// The input is not modified.
func Quartile3(x []float64) float64 {
	return Percentile(x, 0.75)
}

// Percentile returns the p-quantile (p in [0,1]) of x using linear
// interpolation. The input is not modified.
func Percentile(x []float64, p float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, x)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
