package dsp

import (
	"math"
	"sort"
)

// CrossCorrelate computes the raw cross-correlation Corr(tau) =
// sum_n a[n]*b[n+tau] for tau in [0, maxLag], as used by the cross-device
// synchronization of Eq. (5): a is the VA recording, b the wearable
// recording, and the argmax lag estimates how many samples of b precede the
// content of a.
func CrossCorrelate(a, b []float64, maxLag int) []float64 {
	if maxLag < 0 {
		maxLag = 0
	}
	out := make([]float64, maxLag+1)
	for tau := 0; tau <= maxLag; tau++ {
		sum := 0.0
		for n := 0; n+tau < len(b) && n < len(a); n++ {
			sum += a[n] * b[n+tau]
		}
		out[tau] = sum
	}
	return out
}

// EstimateDelay returns the lag in [0, maxLag] that maximizes the
// cross-correlation of a and b (Eq. 5). Ties resolve to the smallest lag.
func EstimateDelay(a, b []float64, maxLag int) int {
	corr := CrossCorrelate(a, b, maxLag)
	best, bestVal := 0, math.Inf(-1)
	for tau, v := range corr {
		if v > bestVal {
			best, bestVal = tau, v
		}
	}
	return best
}

// EstimateDelayRange returns the lag in [loLag, hiLag] maximizing the
// cross-correlation of a and b. Ties resolve to the smallest lag.
func EstimateDelayRange(a, b []float64, loLag, hiLag int) int {
	if loLag < 0 {
		loLag = 0
	}
	if hiLag < loLag {
		hiLag = loLag
	}
	best, bestVal := loLag, math.Inf(-1)
	for tau := loLag; tau <= hiLag; tau++ {
		sum := 0.0
		for n := 0; n+tau < len(b) && n < len(a); n++ {
			sum += a[n] * b[n+tau]
		}
		if sum > bestVal {
			best, bestVal = tau, sum
		}
	}
	return best
}

// EstimateDelayFast estimates the delay like EstimateDelay but with a
// coarse-to-fine search: a decimated pass locates the neighborhood and a
// full-rate pass refines it. It trades a tiny accuracy risk (pathological
// narrowband signals) for a ~factor^2 speedup on long recordings.
func EstimateDelayFast(a, b []float64, maxLag int) int {
	const factor = 16
	if maxLag < 4*factor || len(a) < 4*factor || len(b) < 4*factor {
		return EstimateDelay(a, b, maxLag)
	}
	// Box-filter before decimating so off-grid shifts still correlate in
	// the coarse pass.
	da, err := DecimateSampleHold(boxFilter(a, factor), factor)
	if err != nil {
		return EstimateDelay(a, b, maxLag)
	}
	db, err := DecimateSampleHold(boxFilter(b, factor), factor)
	if err != nil {
		return EstimateDelay(a, b, maxLag)
	}
	coarse := EstimateDelay(da, db, maxLag/factor)
	// The coarse pass matches envelopes, whose correlation peaks are broad
	// (tens of ms for speech); refine over a window wide enough to recover
	// the exact peak even when the envelope estimate sits a pitch period
	// or two away.
	lo := coarse*factor - 24*factor
	hi := coarse*factor + 24*factor
	if hi > maxLag {
		hi = maxLag
	}
	return EstimateDelayRange(a, b, lo, hi)
}

// boxFilter applies a running mean of the given width.
func boxFilter(x []float64, width int) []float64 {
	if width <= 1 || len(x) == 0 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, len(x))
	sum := 0.0
	for i, v := range x {
		sum += v
		if i >= width {
			sum -= x[i-width]
		}
		n := width
		if i+1 < width {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// vectors. It returns 0 when either vector has zero variance or the lengths
// differ.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	meanA, meanB := Mean(a), Mean(b)
	var num, varA, varB float64
	for i := range a {
		da, db := a[i]-meanA, b[i]-meanB
		num += da * db
		varA += da * da
		varB += db * db
	}
	den := math.Sqrt(varA * varB)
	if den == 0 {
		return 0
	}
	return num / den
}

// Correlate2D computes the 2D correlation coefficient of Eq. (6) between
// two spectrograms: the Pearson correlation over all (time, frequency)
// cells. The spectrograms are compared over their overlapping region so
// that small frame-count differences (from slightly different recording
// lengths) do not fail the comparison.
func Correlate2D(a, b *Spectrogram) float64 {
	if a == nil || b == nil {
		return 0
	}
	frames := a.NumFrames()
	if b.NumFrames() < frames {
		frames = b.NumFrames()
	}
	bins := a.NumBins()
	if b.NumBins() < bins {
		bins = b.NumBins()
	}
	if frames == 0 || bins == 0 {
		return 0
	}
	va := make([]float64, 0, frames*bins)
	vb := make([]float64, 0, frames*bins)
	for t := 0; t < frames; t++ {
		va = append(va, a.Power[t][:bins]...)
		vb = append(vb, b.Power[t][:bins]...)
	}
	return Pearson(va, vb)
}

// Mean returns the arithmetic mean of x (0 for an empty slice).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Energy returns the sum of squares of x.
func Energy(x []float64) float64 {
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	return sum
}

// RMS returns the root-mean-square amplitude of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return math.Sqrt(Energy(x) / float64(len(x)))
}

// MaxAbs returns the maximum absolute value in x.
func MaxAbs(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Quartile3 returns the third quartile (75th percentile) of x using linear
// interpolation between order statistics, matching the Q3 statistic of the
// phoneme selection criteria (Eqs. 2-3). It returns 0 for an empty slice.
// The input is not modified.
func Quartile3(x []float64) float64 {
	return Percentile(x, 0.75)
}

// Percentile returns the p-quantile (p in [0,1]) of x using linear
// interpolation. The input is not modified.
func Percentile(x []float64, p float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, x)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
