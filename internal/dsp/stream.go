package dsp

// Streaming short-time Fourier analysis: the batch STFT of stft.go,
// restructured so the signal can arrive in chunks. The streamer runs
// against the exact same machinery — the cached RealFFTPlan, the cached
// analysis window, and RealFFTPlan.PowerInto — and performs the identical
// per-frame arithmetic in the identical order, so the accumulated
// spectrogram is bit-identical (math.Float64bits) to STFT on the
// concatenated samples, for any chunking of the same signal.

// STFTStreamer consumes a signal incrementally and emits power-spectrogram
// frames as soon as their analysis window is fully covered by fed samples.
// Finish flushes the zero-padded tail frames using the batch STFT's frame
// count rule, so a Feed…Feed/Finish sequence over chunks of x produces the
// same frames as STFT(x).
//
// A streamer retains only the unconsumed sample tail (at most one window
// plus one hop), not the whole signal, so long-running streams hold O(FFT)
// memory beyond the emitted frames. Not safe for concurrent use.
type STFTStreamer struct {
	cfg     STFTConfig
	plan    *RealFFTPlan
	win     []float64
	frame   []float64
	scratch []complex128

	// tail holds the fed-but-unconsumed samples [tailBase, total).
	tail     []float64
	tailBase int
	total    int
	emitted  int
	rows     [][]float64
	done     bool
}

// NewSTFTStreamer builds a streamer for the given configuration (the same
// validation and defaulting as STFT).
func NewSTFTStreamer(cfg STFTConfig) (*STFTStreamer, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	plan := mustPlanRealFFT(c.FFTSize)
	return &STFTStreamer{
		cfg:     c,
		plan:    plan,
		win:     cachedWindow(c.Window, c.FFTSize),
		frame:   make([]float64, c.FFTSize),
		scratch: plan.Scratch(),
	}, nil
}

// Config returns the resolved configuration (defaults applied).
func (s *STFTStreamer) Config() STFTConfig { return s.cfg }

// NumFrames returns the number of frames emitted so far.
func (s *STFTStreamer) NumFrames() int { return len(s.rows) }

// Frames returns the power rows emitted so far. The slice grows with every
// Feed/Finish; rows already returned are never mutated, so a consumer may
// track its own read offset into the result.
func (s *STFTStreamer) Frames() [][]float64 { return s.rows }

// SamplesFed returns the total number of samples consumed so far.
func (s *STFTStreamer) SamplesFed() int { return s.total }

// Feed appends samples to the stream and emits every frame whose window is
// now fully covered, returning how many frames were emitted by this call.
// Feed after Finish panics: the streamer's tail state is already flushed.
func (s *STFTStreamer) Feed(samples []float64) int {
	if s.done {
		panic("dsp: STFTStreamer.Feed after Finish")
	}
	s.tail = append(s.tail, samples...)
	s.total += len(samples)
	emitted := 0
	// Frame t covers [t*hop, t*hop+FFTSize); emit while fully covered.
	for s.emitted*s.cfg.HopSize+s.cfg.FFTSize <= s.total {
		s.emitFrame(s.cfg.FFTSize)
		emitted++
	}
	return emitted
}

// emitFrame windows the next frame (n real samples, zero-padded to
// FFTSize), transforms it, and appends the power row. The windowed copy and
// the zero fill mirror the batch STFT loop statement for statement.
func (s *STFTStreamer) emitFrame(n int) {
	start := s.emitted * s.cfg.HopSize
	off := start - s.tailBase
	if off > len(s.tail) {
		off = len(s.tail)
	}
	if avail := len(s.tail) - off; n > avail {
		n = avail
	}
	if n < 0 {
		n = 0
	}
	for i := 0; i < n; i++ {
		s.frame[i] = s.tail[off+i] * s.win[i]
	}
	for i := n; i < s.cfg.FFTSize; i++ {
		s.frame[i] = 0
	}
	row := make([]float64, s.plan.NumBins())
	s.plan.PowerInto(row, s.frame, s.scratch)
	s.rows = append(s.rows, row)
	s.emitted++
	// Drop the samples no frame will need again: everything before the
	// next frame's start (clamped to what we actually hold).
	drop := s.emitted*s.cfg.HopSize - s.tailBase
	if drop > len(s.tail) {
		drop = len(s.tail)
	}
	if drop > 0 {
		kept := copy(s.tail, s.tail[drop:])
		s.tail = s.tail[:kept]
		s.tailBase += drop
	}
}

// Finish flushes the zero-padded tail frames and returns the completed
// spectrogram. The frame count follows the batch rule: one frame for any
// non-empty signal up to FFTSize, then one per hop of the remainder,
// rounded up — so the result matches STFT on the concatenated samples
// frame for frame and bit for bit. Finish is idempotent; the first call
// decides the result.
func (s *STFTStreamer) Finish() *Spectrogram {
	if !s.done {
		s.done = true
		if s.total > 0 {
			numFrames := 1
			if s.total > s.cfg.FFTSize {
				numFrames = 1 + (s.total-s.cfg.FFTSize+s.cfg.HopSize-1)/s.cfg.HopSize
			}
			for s.emitted < numFrames {
				s.emitFrame(s.cfg.FFTSize)
			}
		}
		s.tail = nil
	}
	return &Spectrogram{
		Power:      s.rows,
		FFTSize:    s.cfg.FFTSize,
		HopSize:    s.cfg.HopSize,
		SampleRate: s.cfg.SampleRate,
	}
}
