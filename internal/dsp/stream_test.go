package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// chunkings slices x into chunks per a named strategy.
func chunkings(x []float64, rng *rand.Rand) map[string][][]float64 {
	out := map[string][][]float64{
		"all-at-once": {x},
	}
	one := make([][]float64, 0, len(x))
	for i := range x {
		one = append(one, x[i:i+1])
	}
	out["one-sample"] = one
	const prime = 37
	var pr [][]float64
	for lo := 0; lo < len(x); lo += prime {
		hi := lo + prime
		if hi > len(x) {
			hi = len(x)
		}
		pr = append(pr, x[lo:hi])
	}
	out["prime-37"] = pr
	var rd [][]float64
	for lo := 0; lo < len(x); {
		hi := lo + 1 + rng.Intn(200)
		if hi > len(x) {
			hi = len(x)
		}
		rd = append(rd, x[lo:hi])
		lo = hi
	}
	out["random"] = rd
	// Empty chunks interleaved must be harmless.
	var we [][]float64
	for lo := 0; lo < len(x); lo += 100 {
		hi := lo + 100
		if hi > len(x) {
			hi = len(x)
		}
		we = append(we, nil, x[lo:hi], []float64{})
	}
	out["with-empties"] = we
	return out
}

// TestSTFTStreamerMatchesBatchBitExact is the streaming tentpole's
// foundation: for any chunking of any signal, Feed…Finish produces a
// spectrogram math.Float64bits-identical to STFT on the concatenated
// samples.
func TestSTFTStreamerMatchesBatchBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	configs := []STFTConfig{
		{FFTSize: 256, SampleRate: 16000},
		{FFTSize: 64, HopSize: 16, SampleRate: 200},
		{FFTSize: 128, HopSize: 128, SampleRate: 8000, Window: WindowHamming},
		{FFTSize: 32, HopSize: 48, SampleRate: 1000}, // hop > FFT: gapped frames
	}
	lengths := []int{0, 1, 5, 31, 100, 256, 257, 1000, 5000}
	for _, cfg := range configs {
		for _, n := range lengths {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want, err := STFT(x, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for name, chunks := range chunkings(x, rng) {
				s, err := NewSTFTStreamer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				fed := 0
				for _, c := range chunks {
					fed += len(c)
					s.Feed(c)
				}
				if fed != n || s.SamplesFed() != n {
					t.Fatalf("fft=%d len=%d %s: fed %d/%d samples", cfg.FFTSize, n, name, s.SamplesFed(), n)
				}
				got := s.Finish()
				if got.NumFrames() != want.NumFrames() {
					t.Fatalf("fft=%d len=%d %s: %d frames, want %d",
						cfg.FFTSize, n, name, got.NumFrames(), want.NumFrames())
				}
				for ti, row := range got.Power {
					for f, v := range row {
						if math.Float64bits(v) != math.Float64bits(want.Power[ti][f]) {
							t.Fatalf("fft=%d len=%d %s: frame %d bin %d: %v != %v",
								cfg.FFTSize, n, name, ti, f, v, want.Power[ti][f])
						}
					}
				}
			}
		}
	}
}

// TestSTFTStreamerIncrementalEmission pins the streaming property itself:
// frames appear as soon as their window is covered, not only at Finish,
// and rows already returned are never mutated by later feeds.
func TestSTFTStreamerIncrementalEmission(t *testing.T) {
	cfg := STFTConfig{FFTSize: 64, HopSize: 16, SampleRate: 1000}
	s, err := NewSTFTStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if n := s.Feed(make([]float64, 63)); n != 0 || s.NumFrames() != 0 {
		t.Fatalf("frame emitted before its window was covered (%d emitted)", n)
	}
	if n := s.Feed([]float64{rng.NormFloat64()}); n != 1 || s.NumFrames() != 1 {
		t.Fatalf("Feed to 64 samples emitted %d frames, want 1", n)
	}
	row0 := append([]float64(nil), s.Frames()[0]...)
	// 64 more samples cover frames at hops 16,32,48,64: four more frames.
	if n := s.Feed(make([]float64, 64)); n != 4 {
		t.Fatalf("Feed emitted %d frames, want 4", n)
	}
	for f, v := range s.Frames()[0] {
		if math.Float64bits(v) != math.Float64bits(row0[f]) {
			t.Fatal("an already-returned row was mutated by a later Feed")
		}
	}
	s.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("Feed after Finish did not panic")
		}
	}()
	s.Feed([]float64{1})
}

// TestSTFTStreamerFinishIdempotent pins that a second Finish returns the
// same spectrogram without emitting more frames.
func TestSTFTStreamerFinishIdempotent(t *testing.T) {
	s, err := NewSTFTStreamer(STFTConfig{FFTSize: 32, SampleRate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s.Feed(make([]float64, 100))
	a := s.Finish()
	b := s.Finish()
	if a.NumFrames() != b.NumFrames() {
		t.Fatalf("second Finish changed the frame count: %d vs %d", a.NumFrames(), b.NumFrames())
	}
}

// TestSTFTStreamerRejectsBadConfig mirrors the batch validation.
func TestSTFTStreamerRejectsBadConfig(t *testing.T) {
	if _, err := NewSTFTStreamer(STFTConfig{FFTSize: 33, SampleRate: 1000}); err == nil {
		t.Fatal("non-power-of-two FFT size accepted")
	}
	if _, err := NewSTFTStreamer(STFTConfig{FFTSize: 64}); err == nil {
		t.Fatal("zero sample rate accepted")
	}
}

// voicedTestTone synthesizes n samples of a speech-band tone stack (200 Hz
// fundamental plus harmonics) at the given amplitude.
func voicedTestTone(n int, sampleRate, amp float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / sampleRate
		x[i] = amp * (math.Sin(2*math.Pi*200*ti) +
			0.5*math.Sin(2*math.Pi*400*ti) +
			0.25*math.Sin(2*math.Pi*800*ti))
	}
	return x
}

// TestVADGatesSilenceAndRumble: silence, sub-band rumble, and impulsive
// clicks must be gated; a speech-band harmonic stack must pass.
func TestVADGatesSilenceAndRumble(t *testing.T) {
	const sr = 16000.0
	n := int(sr) // one second
	cases := []struct {
		name       string
		audio      []float64
		wantVoiced bool
	}{
		{"silence", make([]float64, n), false},
		{"voiced-tones", voicedTestTone(n, sr, 0.3), true},
		{"rumble-20hz", func() []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = 0.5 * math.Sin(2*math.Pi*20*float64(i)/sr)
			}
			return x
		}(), false},
		{"nyquist-buzz", func() []float64 {
			// Alternating-sign full-band buzz: ZCR ~1, far above the band.
			x := make([]float64, n)
			for i := range x {
				if i%2 == 0 {
					x[i] = 0.3
				} else {
					x[i] = -0.3
				}
			}
			return x
		}(), false},
		{"sub-floor-voice", voicedTestTone(n, sr, 1e-4), false}, // ~-78 dBFS
	}
	for _, tc := range cases {
		v, err := NewVAD(DefaultVADConfig(sr))
		if err != nil {
			t.Fatal(err)
		}
		voiced, gated := v.Feed(tc.audio)
		fv, fg := v.Finish()
		voiced += fv
		gated += fg
		if voiced+gated != v.FramesDecided() {
			t.Errorf("%s: %d voiced + %d gated != %d decided", tc.name, voiced, gated, v.FramesDecided())
		}
		if tc.wantVoiced && voiced == 0 {
			t.Errorf("%s: no voiced frames, want some", tc.name)
		}
		// Hangover keeps a trailing tail open, so "unvoiced" signals may
		// still see a handful of voiced frames; require a decisive gate.
		if !tc.wantVoiced && gated < v.FramesDecided()/2 {
			t.Errorf("%s: only %d of %d frames gated", tc.name, gated, v.FramesDecided())
		}
	}
}

// TestVADChunkingInvariant: the voiced/gated totals must not depend on how
// the audio is chunked.
func TestVADChunkingInvariant(t *testing.T) {
	const sr = 16000.0
	rng := rand.New(rand.NewSource(5))
	audio := voicedTestTone(int(sr), sr, 0.2)
	// Silence gap in the middle.
	for i := 4000; i < 8000; i++ {
		audio[i] = 0
	}
	type split struct{ voiced, gated int }
	var results []split
	for _, chunks := range chunkings(audio, rng) {
		v, err := NewVAD(DefaultVADConfig(sr))
		if err != nil {
			t.Fatal(err)
		}
		var s split
		for _, c := range chunks {
			dv, dg := v.Feed(c)
			s.voiced += dv
			s.gated += dg
		}
		dv, dg := v.Finish()
		s.voiced += dv
		s.gated += dg
		results = append(results, s)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("chunking changed the VAD outcome: %+v vs %+v", results[i], results[0])
		}
	}
}

// TestVADConfigValidation pins the config error paths.
func TestVADConfigValidation(t *testing.T) {
	if _, err := NewVAD(VADConfig{}); err == nil {
		t.Fatal("zero sample rate accepted")
	}
	if _, err := NewVAD(VADConfig{SampleRate: 16000, HighPassHz: 9000}); err == nil {
		t.Fatal("high-pass above Nyquist accepted")
	}
	if _, err := NewVAD(VADConfig{SampleRate: 16000, FFTSize: 100}); err == nil {
		t.Fatal("non-power-of-two FFT size accepted")
	}
}
