// Package dsp provides the digital signal processing primitives that the
// rest of the system is built on: FFT/IFFT for arbitrary lengths, windowed
// short-time analysis, IIR/FIR filtering, correlation (1D and 2D), the
// DCT-II used by MFCC extraction, mel filterbanks, resampling, and test
// signal generators.
//
// Everything is implemented from scratch on float64 slices using only the
// standard library, so the package has no external dependencies and is
// deterministic across platforms.
//
// All transforms run on the planned FFT engine (see plan.go): bit-reversal
// permutations, twiddle tables, and Bluestein chirp filters are precomputed
// once per length and cached process-wide, so repeated transforms of the
// same size — the normal case in every pipeline stage — do no trigonometric
// work and no table allocation.
package dsp

import (
	"fmt"
	"math"
)

// FFT computes the discrete Fourier transform of x.
//
// The input may have any length: power-of-two lengths use a planned
// iterative radix-2 Cooley-Tukey transform, and all other lengths fall back
// to Bluestein's chirp-z algorithm (also planned). The input slice is not
// modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		return mustPlanFFT(n).Forward(nil, x)
	}
	return planBluestein(n).transform(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x, including the
// 1/N normalization, so that IFFT(FFT(x)) == x up to rounding error.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		return mustPlanFFT(n).Inverse(nil, x)
	}
	out := planBluestein(n).transform(x, true)
	inv := 1 / float64(n)
	for i := range out {
		out[i] = complex(real(out[i])*inv, imag(out[i])*inv)
	}
	return out
}

// FFTReal transforms a real-valued signal and returns the full complex
// spectrum of the same length. Power-of-two lengths run through the
// half-size packed real transform and are unfolded by conjugate symmetry.
func FFTReal(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		p := mustPlanRealFFT(n)
		half := p.Transform(nil, x, nil)
		out := make([]complex128, n)
		copy(out, half)
		for k := 1; k < n/2; k++ {
			out[n-k] = complex(real(half[k]), -imag(half[k]))
		}
		return out
	}
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return planBluestein(n).transform(cx, false)
}

// mustPlanRealFFT is PlanRealFFT for lengths already known to be powers of
// two.
func mustPlanRealFFT(n int) *RealFFTPlan {
	p, err := PlanRealFFT(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Magnitude returns |x| for each bin of a complex spectrum. The plain
// sqrt(re^2+im^2) form is used instead of cmplx.Abs: the overflow-guarded
// hypot is measurably slower on the hot path and spectra of unit-scale
// audio never approach the ~1e154 squaring overflow bound.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		re, im := real(v), imag(v)
		out[i] = math.Sqrt(re*re + im*im)
	}
	return out
}

// MagnitudeSpectrum computes the single-sided magnitude spectrum of a real
// signal: len(x)/2+1 bins covering 0..fs/2. Bin k corresponds to frequency
// k*fs/len(x).
func MagnitudeSpectrum(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		return mustPlanRealFFT(n).MagnitudeInto(nil, x, nil)
	}
	spec := FFTReal(x)
	half := n/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		re, im := real(spec[i]), imag(spec[i])
		out[i] = math.Sqrt(re*re + im*im)
	}
	return out
}

// PowerSpectrum computes the single-sided power spectrum |X(k)|^2 of a real
// signal, with the same bin layout as MagnitudeSpectrum.
func PowerSpectrum(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		return mustPlanRealFFT(n).PowerInto(nil, x, nil)
	}
	spec := FFTReal(x)
	half := n/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		re, im := real(spec[i]), imag(spec[i])
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the center frequency in Hz of FFT bin k for a
// transform of length n over a signal sampled at rate fs.
func BinFrequency(k, n int, fs float64) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) * fs / float64(n)
}

// FrequencyBin returns the FFT bin index closest to frequency f for a
// transform of length n over a signal sampled at fs. The result is clamped
// to [0, n/2].
func FrequencyBin(f float64, n int, fs float64) int {
	if fs <= 0 || n == 0 {
		return 0
	}
	k := int(math.Round(f * float64(n) / fs))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 0).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ValidateLength returns an error if n is not a positive power of two. It is
// used by transforms that require radix-2 lengths at their API boundary.
func ValidateLength(n int) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: length %d is not a positive power of two", n)
	}
	return nil
}
