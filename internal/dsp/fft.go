// Package dsp provides the digital signal processing primitives that the
// rest of the system is built on: FFT/IFFT for arbitrary lengths, windowed
// short-time analysis, IIR/FIR filtering, correlation (1D and 2D), the
// DCT-II used by MFCC extraction, mel filterbanks, resampling, and test
// signal generators.
//
// Everything is implemented from scratch on float64 slices using only the
// standard library, so the package has no external dependencies and is
// deterministic across platforms.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x.
//
// The input may have any length: power-of-two lengths use an in-place
// iterative radix-2 Cooley-Tukey transform, and all other lengths fall back
// to Bluestein's chirp-z algorithm. The input slice is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT computes the inverse discrete Fourier transform of x, including the
// 1/N normalization, so that IFFT(FFT(x)) == x up to rounding error.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := 1 / float64(n)
	for i := range out {
		out[i] = complex(real(out[i])*inv, imag(out[i])*inv)
	}
	return out
}

// FFTReal transforms a real-valued signal and returns the full complex
// spectrum of the same length.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// Magnitude returns |x| for each bin of a complex spectrum.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// MagnitudeSpectrum computes the single-sided magnitude spectrum of a real
// signal: len(x)/2+1 bins covering 0..fs/2. Bin k corresponds to frequency
// k*fs/len(x).
func MagnitudeSpectrum(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	spec := FFTReal(x)
	half := len(x)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		out[i] = cmplx.Abs(spec[i])
	}
	return out
}

// PowerSpectrum computes the single-sided power spectrum |X(k)|^2 of a real
// signal, with the same bin layout as MagnitudeSpectrum.
func PowerSpectrum(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	spec := FFTReal(x)
	half := len(x)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		re, im := real(spec[i]), imag(spec[i])
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the center frequency in Hz of FFT bin k for a
// transform of length n over a signal sampled at rate fs.
func BinFrequency(k, n int, fs float64) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) * fs / float64(n)
}

// FrequencyBin returns the FFT bin index closest to frequency f for a
// transform of length n over a signal sampled at fs. The result is clamped
// to [0, n/2].
func FrequencyBin(f float64, n int, fs float64) int {
	if fs <= 0 || n == 0 {
		return 0
	}
	k := int(math.Round(f * float64(n) / fs))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}

// fftRadix2 performs an in-place iterative radix-2 FFT. len(x) must be a
// power of two. If inverse is true the conjugate transform is computed
// (without the 1/N scaling).
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// using three power-of-two FFTs of length >= 2n-1.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n). Use k^2 mod 2n to avoid
	// precision loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Rect(1, angle)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invM := 1 / float64(m)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * chirp[k] * complex(invM, 0)
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 0).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ValidateLength returns an error if n is not a positive power of two. It is
// used by transforms that require radix-2 lengths at their API boundary.
func ValidateLength(n int) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: length %d is not a positive power of two", n)
	}
	return nil
}
