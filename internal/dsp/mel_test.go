package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMelHzRoundTrip(t *testing.T) {
	f := func(hz float64) bool {
		hz = math.Abs(math.Mod(hz, 8000))
		back := MelToHz(HzToMel(hz))
		return math.Abs(back-hz) < 1e-6*(1+hz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMelScaleMonotonic(t *testing.T) {
	prev := -1.0
	for hz := 0.0; hz <= 8000; hz += 50 {
		m := HzToMel(hz)
		if m <= prev {
			t.Fatalf("mel scale not monotonic at %vHz", hz)
		}
		prev = m
	}
}

func TestMelFilterbankCoverage(t *testing.T) {
	fb, err := NewMelFilterbank(40, 512, 16000, 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	if fb.NumChannels() != 40 {
		t.Fatalf("channels = %d", fb.NumChannels())
	}
	// A flat power spectrum should produce positive energy in every channel.
	power := make([]float64, 257)
	for i := range power {
		power[i] = 1
	}
	out, err := fb.Apply(power)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range out {
		if v <= 0 {
			t.Errorf("channel %d has zero energy on flat spectrum", c)
		}
	}
}

func TestMelFilterbankSelectsBand(t *testing.T) {
	const fs = 16000.0
	fb, err := NewMelFilterbank(10, 512, fs, 0, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Power only at ~3500Hz: top channels should dominate bottom ones.
	power := make([]float64, 257)
	power[FrequencyBin(3500, 512, fs)] = 100
	out, err := fb.Apply(power)
	if err != nil {
		t.Fatal(err)
	}
	low := out[0] + out[1] + out[2]
	high := out[7] + out[8] + out[9]
	if high <= low {
		t.Errorf("high-band energy %v not above low-band %v", high, low)
	}
}

func TestMelFilterbankErrors(t *testing.T) {
	if _, err := NewMelFilterbank(0, 512, 16000, 0, 900); err == nil {
		t.Error("zero channels should error")
	}
	if _, err := NewMelFilterbank(10, 512, 16000, 900, 100); err == nil {
		t.Error("inverted band should error")
	}
	if _, err := NewMelFilterbank(10, 512, 16000, 0, 9000); err == nil {
		t.Error("band above Nyquist should error")
	}
	fb, err := NewMelFilterbank(10, 512, 16000, 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.Apply(make([]float64, 10)); err == nil {
		t.Error("wrong bin count should error")
	}
}

func TestDCT2KnownValues(t *testing.T) {
	// DCT of a constant vector concentrates everything in coefficient 0.
	x := []float64{1, 1, 1, 1}
	out := DCT2(x, 4)
	if math.Abs(out[0]-2) > 1e-12 { // sqrt(1/4)*4 = 2
		t.Errorf("c0 = %v, want 2", out[0])
	}
	for k := 1; k < 4; k++ {
		if math.Abs(out[k]) > 1e-12 {
			t.Errorf("c%d = %v, want 0", k, out[k])
		}
	}
}

func TestDCT2Energy(t *testing.T) {
	// Orthonormal DCT preserves energy when all coefficients are kept.
	x := []float64{0.3, -1.2, 2.5, 0.7, -0.1}
	out := DCT2(x, len(x))
	if math.Abs(Energy(x)-Energy(out)) > 1e-9 {
		t.Errorf("energy %v -> %v not preserved", Energy(x), Energy(out))
	}
}

func TestDCT2Truncation(t *testing.T) {
	x := make([]float64, 40)
	out := DCT2(x, 14)
	if len(out) != 14 {
		t.Errorf("len = %d, want 14", len(out))
	}
	if DCT2(nil, 5) != nil {
		t.Error("empty input should return nil")
	}
	if DCT2(x, 0) != nil {
		t.Error("zero coeffs should return nil")
	}
	if got := DCT2([]float64{1, 2}, 10); len(got) != 2 {
		t.Errorf("over-request should clamp: len = %d", len(got))
	}
}
