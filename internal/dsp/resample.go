package dsp

import "fmt"

// Resample converts x from rate fsIn to fsOut using linear interpolation.
// It deliberately applies NO anti-alias filtering: the accelerometer model
// relies on this to reproduce the aliasing of high-frequency audio content
// into the 0-100 Hz vibration band that the paper identifies as a core
// challenge (Section IV-B). Callers who want alias-free decimation should
// low-pass filter first.
func Resample(x []float64, fsIn, fsOut float64) ([]float64, error) {
	if fsIn <= 0 || fsOut <= 0 {
		return nil, fmt.Errorf("resample: rates %v->%v must be positive", fsIn, fsOut)
	}
	if len(x) == 0 {
		return nil, nil
	}
	ratio := fsIn / fsOut
	n := int(float64(len(x)) / ratio)
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		pos := float64(i) * ratio
		lo := int(pos)
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out, nil
}

// DecimateSampleHold decimates x by an integer factor by taking every
// factor-th sample (pure point sampling, maximal aliasing). This models an
// ADC that samples an analog waveform at a low rate with no front-end
// filter, as wearable accelerometers do.
func DecimateSampleHold(x []float64, factor int) ([]float64, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("decimate: factor %d must be positive", factor)
	}
	out := make([]float64, 0, len(x)/factor+1)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}
