package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// This file implements the planned FFT engine: transforms that precompute
// their bit-reversal permutation and per-stage twiddle tables once per size
// and cache the result process-wide, so the hot paths (STFT frames, MFCC
// power spectra, FFT-based delay search) never recompute trigonometry or
// allocate per call.
//
// Plans are immutable after construction and therefore safe for concurrent
// use from any number of goroutines — the eval package's ParallelScorer
// workers all share one plan per size. Callers own the scratch/destination
// buffers, which keeps the mutable state out of the shared plan.

// FFTPlan holds the precomputed state for radix-2 transforms of one
// power-of-two size: the bit-reversal permutation and flattened per-stage
// twiddle-factor tables for both transform directions.
//
// The twiddle tables are filled with the same repeated-multiplication
// recurrence the previous per-call implementation used, so planned
// transforms are bit-identical to the historical fftRadix2 output (golden
// metrics do not shift).
type FFTPlan struct {
	n    int
	perm []int32      // bit-reversal target index per position
	fwd  []complex128 // forward twiddles, stages flattened (n-1 entries)
	inv  []complex128 // inverse (conjugate) twiddles, same layout
}

// planCache maps transform length -> *FFTPlan. sync.Map suits the
// write-once/read-many pattern: a handful of distinct sizes, looked up from
// every scoring worker.
var planCache sync.Map

// PlanFFT returns the cached transform plan for length n, building and
// caching it on first use. n must be a positive power of two.
func PlanFFT(n int) (*FFTPlan, error) {
	if err := ValidateLength(n); err != nil {
		return nil, err
	}
	if v, ok := planCache.Load(n); ok {
		return v.(*FFTPlan), nil
	}
	v, _ := planCache.LoadOrStore(n, newFFTPlan(n))
	return v.(*FFTPlan), nil
}

// mustPlanFFT is PlanFFT for callers that construct n as a power of two
// themselves (NextPow2 results and validated configs).
func mustPlanFFT(n int) *FFTPlan {
	p, err := PlanFFT(n)
	if err != nil {
		panic(err)
	}
	return p
}

func newFFTPlan(n int) *FFTPlan {
	p := &FFTPlan{n: n, perm: make([]int32, n)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.perm[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	if n > 1 {
		p.fwd = make([]complex128, n-1)
		p.inv = make([]complex128, n-1)
		fillTwiddles(p.fwd, n, -1)
		fillTwiddles(p.inv, n, +1)
	}
	return p
}

// fillTwiddles writes the stage-k twiddle factors for every butterfly stage,
// flattened as [stage size=2 | size=4 | ... | size=n]. The values are
// produced by the same w *= wStep recurrence the pre-plan code evaluated
// inside the butterfly loop, which keeps planned output bit-identical to it.
func fillTwiddles(dst []complex128, n int, sign float64) {
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		wStep := cmplx.Rect(1, sign*2*math.Pi/float64(size))
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			dst[off+k] = w
			w *= wStep
		}
		off += half
	}
}

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// InPlace transforms x in place (forward DFT, or the unnormalized conjugate
// transform when inverse is true — divide by Size for a true inverse).
// len(x) must equal Size.
func (p *FFTPlan) InPlace(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic("dsp: FFTPlan length mismatch")
	}
	tw := p.fwd
	if inverse {
		tw = p.inv
	}
	p.transform(x, tw)
}

// Forward computes the DFT of src into dst and returns dst. dst is grown
// (reallocated) when nil or too short and may alias src for an in-place
// transform; passing a reused buffer makes the call allocation-free.
func (p *FFTPlan) Forward(dst, src []complex128) []complex128 {
	dst = p.into(dst, src)
	p.transform(dst, p.fwd)
	return dst
}

// Inverse computes the inverse DFT of src into dst, including the 1/N
// normalization, and returns dst. Buffer semantics match Forward.
func (p *FFTPlan) Inverse(dst, src []complex128) []complex128 {
	dst = p.into(dst, src)
	p.transform(dst, p.inv)
	inv := 1 / float64(p.n)
	for i := range dst {
		dst[i] = complex(real(dst[i])*inv, imag(dst[i])*inv)
	}
	return dst
}

func (p *FFTPlan) into(dst, src []complex128) []complex128 {
	if len(src) != p.n {
		panic("dsp: FFTPlan length mismatch")
	}
	if cap(dst) < p.n {
		dst = make([]complex128, p.n)
	}
	dst = dst[:p.n]
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	return dst
}

// transform runs the permutation and butterfly stages with the precomputed
// twiddle table tw (p.fwd or p.inv).
func (p *FFTPlan) transform(x []complex128, tw []complex128) {
	n := p.n
	if n <= 1 {
		return
	}
	for i, pi := range p.perm {
		if j := int(pi); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		t := tw[off : off+half : off+half]
		for start := 0; start < n; start += size {
			blk := x[start : start+size : start+size]
			for k := 0; k < half; k++ {
				a := blk[k]
				b := blk[k+half] * t[k]
				blk[k] = a + b
				blk[k+half] = a - b
			}
		}
		off += half
	}
}

// RealFFTPlan transforms real-valued signals of one power-of-two length by
// packing the 2M input samples into an M-point complex transform and
// unpacking the half spectrum with precomputed twiddles — half the butterfly
// work of a full complex transform. Like FFTPlan it is immutable and safe
// for concurrent use.
type RealFFTPlan struct {
	n      int          // real input length
	half   *FFTPlan     // complex plan of size n/2 (nil when n == 1)
	unpack []complex128 // e^{-2*pi*i*k/n} for k = 0..n/2
}

var realPlanCache sync.Map

// PlanRealFFT returns the cached real-input transform plan for length n,
// building it on first use. n must be a positive power of two.
func PlanRealFFT(n int) (*RealFFTPlan, error) {
	if err := ValidateLength(n); err != nil {
		return nil, err
	}
	if v, ok := realPlanCache.Load(n); ok {
		return v.(*RealFFTPlan), nil
	}
	p := &RealFFTPlan{n: n}
	if n > 1 {
		p.half = mustPlanFFT(n / 2)
		p.unpack = make([]complex128, n/2+1)
		for k := range p.unpack {
			p.unpack[k] = cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
		}
	}
	v, _ := realPlanCache.LoadOrStore(n, p)
	return v.(*RealFFTPlan), nil
}

// Size returns the real input length the plan was built for.
func (p *RealFFTPlan) Size() int { return p.n }

// NumBins returns the number of single-sided spectrum bins, Size/2+1.
func (p *RealFFTPlan) NumBins() int { return p.n/2 + 1 }

// Scratch returns a correctly sized scratch buffer for Transform. Reuse it
// across calls to stay allocation-free; each concurrent caller needs its
// own.
func (p *RealFFTPlan) Scratch() []complex128 { return make([]complex128, p.n/2) }

// Transform computes the single-sided spectrum (bins 0..Size/2) of the real
// signal x into dst and returns dst. len(x) must equal Size. dst (NumBins
// entries) and scratch (Size/2 entries, see Scratch) are allocated when nil
// or too small; pass reused buffers to make repeated calls allocation-free.
// dst and scratch must not overlap.
func (p *RealFFTPlan) Transform(dst []complex128, x []float64, scratch []complex128) []complex128 {
	if len(x) != p.n {
		panic("dsp: RealFFTPlan length mismatch")
	}
	if cap(dst) < p.NumBins() {
		dst = make([]complex128, p.NumBins())
	}
	dst = dst[:p.NumBins()]
	if p.n == 1 {
		dst[0] = complex(x[0], 0)
		return dst
	}
	m := p.n / 2
	if cap(scratch) < m {
		scratch = make([]complex128, m)
	}
	scratch = scratch[:m]
	// Pack even samples into the real lane and odd samples into the
	// imaginary lane, then run one half-length complex transform.
	for j := 0; j < m; j++ {
		scratch[j] = complex(x[2*j], x[2*j+1])
	}
	p.half.transform(scratch, p.half.fwd)
	// Unpack: with Z the half-length spectrum and E/O the even/odd-sample
	// spectra, E[k] = (Z[k]+conj(Z[M-k]))/2 and O[k] = -i(Z[k]-conj(Z[M-k]))/2,
	// so X[k] = E[k] + e^{-2*pi*i*k/n} O[k] for k = 0..M (Z[M] wraps to Z[0]).
	for k := 0; k <= m; k++ {
		zk := scratch[k%m]
		zmk := cmplx.Conj(scratch[(m-k)%m])
		e := (zk + zmk) * complex(0.5, 0)
		o := (zk - zmk) * complex(0, -0.5)
		dst[k] = e + p.unpack[k]*o
	}
	return dst
}

// PowerInto computes the single-sided power spectrum |X(k)|^2 of x into dst
// and returns dst, with the buffer semantics of Transform. It needs no
// complex destination: the spectrum is squared bin by bin as it is unpacked.
func (p *RealFFTPlan) PowerInto(dst []float64, x []float64, scratch []complex128) []float64 {
	return p.reduceInto(dst, x, scratch, false)
}

// MagnitudeInto computes the single-sided magnitude spectrum |X(k)| of x
// into dst and returns dst, with the buffer semantics of Transform.
func (p *RealFFTPlan) MagnitudeInto(dst []float64, x []float64, scratch []complex128) []float64 {
	return p.reduceInto(dst, x, scratch, true)
}

func (p *RealFFTPlan) reduceInto(dst []float64, x []float64, scratch []complex128, sqrt bool) []float64 {
	if len(x) != p.n {
		panic("dsp: RealFFTPlan length mismatch")
	}
	if cap(dst) < p.NumBins() {
		dst = make([]float64, p.NumBins())
	}
	dst = dst[:p.NumBins()]
	if p.n == 1 {
		if sqrt {
			dst[0] = math.Abs(x[0])
		} else {
			dst[0] = x[0] * x[0]
		}
		return dst
	}
	m := p.n / 2
	if cap(scratch) < m {
		scratch = make([]complex128, m)
	}
	scratch = scratch[:m]
	for j := 0; j < m; j++ {
		scratch[j] = complex(x[2*j], x[2*j+1])
	}
	p.half.transform(scratch, p.half.fwd)
	// Scalar unpack (same algebra as Transform, spelled out on float64 so
	// the compiler keeps everything in registers — this loop dominates the
	// per-frame STFT cost at small sizes). DC and Nyquist come from the
	// packed bin 0 alone.
	a0, b0 := real(scratch[0]), imag(scratch[0])
	s, d := a0+b0, a0-b0
	if sqrt {
		dst[0] = math.Abs(s)
		dst[m] = math.Abs(d)
	} else {
		dst[0] = s * s
		dst[m] = d * d
	}
	w := p.unpack
	for k := 1; k < m; k++ {
		z1, z2 := scratch[k], scratch[m-k]
		a1, b1 := real(z1), imag(z1)
		a2, b2 := real(z2), imag(z2)
		er, ei := (a1+a2)*0.5, (b1-b2)*0.5
		or, oi := (b1+b2)*0.5, (a2-a1)*0.5
		wr, wi := real(w[k]), imag(w[k])
		re := er + (wr*or - wi*oi)
		im := ei + (wr*oi + wi*or)
		pw := re*re + im*im
		if sqrt {
			pw = math.Sqrt(pw)
		}
		dst[k] = pw
	}
	return dst
}

// bluesteinPlan caches the chirp sequences and the pre-transformed filter
// spectra for one arbitrary (non-power-of-two) DFT length, in both
// directions. Only the input-dependent transform pair remains per call.
type bluesteinPlan struct {
	n    int
	m    int      // padded power-of-two convolution length (>= 2n-1)
	plan *FFTPlan // cached plan of size m
	// Forward (sign -1) and inverse (sign +1) chirps of length n, and the
	// length-m spectra of the matching correlation filters.
	chirpFwd, chirpInv []complex128
	filtFwd, filtInv   []complex128
}

var bluesteinCache sync.Map

func planBluestein(n int) *bluesteinPlan {
	if v, ok := bluesteinCache.Load(n); ok {
		return v.(*bluesteinPlan)
	}
	m := NextPow2(2*n - 1)
	bp := &bluesteinPlan{
		n:        n,
		m:        m,
		plan:     mustPlanFFT(m),
		chirpFwd: bluesteinChirp(n, -1),
		chirpInv: bluesteinChirp(n, +1),
	}
	bp.filtFwd = bp.filter(bp.chirpFwd)
	bp.filtInv = bp.filter(bp.chirpInv)
	v, _ := bluesteinCache.LoadOrStore(n, bp)
	return v.(*bluesteinPlan)
}

// bluesteinChirp builds w[k] = exp(sign * i*pi*k^2/n), reducing k^2 mod 2n
// to avoid precision loss for large k (identical to the historical code).
func bluesteinChirp(n int, sign float64) []complex128 {
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Rect(1, angle)
	}
	return chirp
}

// filter returns the length-m spectrum of the conjugate-chirp correlation
// filter b (b[k] = b[m-k] = conj(chirp[k])), computed once at plan build.
func (bp *bluesteinPlan) filter(chirp []complex128) []complex128 {
	b := make([]complex128, bp.m)
	for k := 0; k < bp.n; k++ {
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < bp.n; k++ {
		b[bp.m-k] = cmplx.Conj(chirp[k])
	}
	bp.plan.transform(b, bp.plan.fwd)
	return b
}

// transform computes the length-n DFT (or unnormalized conjugate transform)
// of x via the chirp-z convolution, reusing every precomputed table.
func (bp *bluesteinPlan) transform(x []complex128, inverse bool) []complex128 {
	chirp, filt := bp.chirpFwd, bp.filtFwd
	if inverse {
		chirp, filt = bp.chirpInv, bp.filtInv
	}
	a := make([]complex128, bp.m)
	for k := 0; k < bp.n; k++ {
		a[k] = x[k] * chirp[k]
	}
	bp.plan.transform(a, bp.plan.fwd)
	for i := range a {
		a[i] *= filt[i]
	}
	bp.plan.transform(a, bp.plan.inv)
	invM := 1 / float64(bp.m)
	out := make([]complex128, bp.n)
	for k := 0; k < bp.n; k++ {
		out[k] = a[k] * chirp[k] * complex(invM, 0)
	}
	return out
}
