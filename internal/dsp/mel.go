package dsp

import (
	"fmt"
	"math"
)

// HzToMel converts a frequency in Hz to the mel scale (O'Shaughnessy).
func HzToMel(hz float64) float64 {
	return 2595 * math.Log10(1+hz/700)
}

// MelToHz converts a mel-scale value back to Hz.
func MelToHz(mel float64) float64 {
	return 700 * (math.Pow(10, mel/2595) - 1)
}

// MelFilterbank is a bank of triangular filters on the mel scale applied to
// a power spectrum.
type MelFilterbank struct {
	filters [][]float64 // filters[c][bin]
	numBins int
}

// NewMelFilterbank builds numChannels triangular filters spanning
// [lowHz, highHz] for power spectra with numBins bins (fftSize/2+1) at the
// given sample rate.
func NewMelFilterbank(numChannels, fftSize int, sampleRate, lowHz, highHz float64) (*MelFilterbank, error) {
	if numChannels <= 0 {
		return nil, fmt.Errorf("mel: channels %d must be positive", numChannels)
	}
	if highHz <= lowHz || lowHz < 0 {
		return nil, fmt.Errorf("mel: invalid band [%v, %v]", lowHz, highHz)
	}
	if highHz > sampleRate/2 {
		return nil, fmt.Errorf("mel: high edge %vHz above Nyquist %vHz", highHz, sampleRate/2)
	}
	numBins := fftSize/2 + 1
	lowMel, highMel := HzToMel(lowHz), HzToMel(highHz)
	// numChannels+2 edge points.
	edges := make([]float64, numChannels+2)
	for i := range edges {
		mel := lowMel + (highMel-lowMel)*float64(i)/float64(numChannels+1)
		edges[i] = MelToHz(mel)
	}
	binFreq := func(k int) float64 { return BinFrequency(k, fftSize, sampleRate) }
	filters := make([][]float64, numChannels)
	for c := 0; c < numChannels; c++ {
		f := make([]float64, numBins)
		left, center, right := edges[c], edges[c+1], edges[c+2]
		for k := 0; k < numBins; k++ {
			freq := binFreq(k)
			switch {
			case freq >= left && freq <= center && center > left:
				f[k] = (freq - left) / (center - left)
			case freq > center && freq <= right && right > center:
				f[k] = (right - freq) / (right - center)
			}
		}
		// A triangle narrower than one FFT bin can land entirely between
		// bins; give such filters support at the bin nearest their center
		// so no channel is silently dead.
		hasSupport := false
		for _, v := range f {
			if v > 0 {
				hasSupport = true
				break
			}
		}
		if !hasSupport {
			f[FrequencyBin(center, fftSize, sampleRate)] = 1
		}
		filters[c] = f
	}
	return &MelFilterbank{filters: filters, numBins: numBins}, nil
}

// NumChannels returns the number of filterbank channels.
func (m *MelFilterbank) NumChannels() int { return len(m.filters) }

// Apply computes per-channel filterbank energies from a power spectrum of
// the expected bin count.
func (m *MelFilterbank) Apply(power []float64) ([]float64, error) {
	return m.ApplyInto(nil, power)
}

// ApplyInto computes per-channel filterbank energies into dst and returns
// it. dst is allocated when nil or too small; passing a reused buffer makes
// repeated applications (one per MFCC frame) allocation-free.
func (m *MelFilterbank) ApplyInto(dst, power []float64) ([]float64, error) {
	if len(power) != m.numBins {
		return nil, fmt.Errorf("mel: power spectrum has %d bins, want %d", len(power), m.numBins)
	}
	if cap(dst) < len(m.filters) {
		dst = make([]float64, len(m.filters))
	}
	dst = dst[:len(m.filters)]
	for c, f := range m.filters {
		sum := 0.0
		for k, w := range f {
			if w != 0 {
				sum += w * power[k]
			}
		}
		dst[c] = sum
	}
	return dst, nil
}

// DCT2 computes the type-II discrete cosine transform of x with the
// orthonormal scaling used in MFCC pipelines, returning the first numCoeffs
// coefficients.
func DCT2(x []float64, numCoeffs int) []float64 {
	n := len(x)
	if n == 0 || numCoeffs <= 0 {
		return nil
	}
	if numCoeffs > n {
		numCoeffs = n
	}
	out := make([]float64, numCoeffs)
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for k := 0; k < numCoeffs; k++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += x[i] * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		if k == 0 {
			out[k] = sum * scale0
		} else {
			out[k] = sum * scale
		}
	}
	return out
}
