package dsp_test

import (
	"testing"

	"vibguard/internal/dsp/dspbench"
)

// The benchmark bodies live in dspbench so that cmd/benchdsp (which writes
// the BENCH_dsp.json baseline) measures exactly the same kernels as
// `go test -bench` / `make bench-dsp`.

func runGroup(b *testing.B, group string) {
	ran := false
	for _, c := range dspbench.Cases() {
		if c.Group == group {
			ran = true
			b.Run(c.Name, c.Fn)
		}
	}
	if !ran {
		b.Fatalf("no benchmark cases in group %q", group)
	}
}

// BenchmarkFFTPlan measures a planned 1024-point transform into a reused
// destination (zero allocations) next to the legacy per-call transform.
func BenchmarkFFTPlan(b *testing.B) { runGroup(b, "FFTPlan") }

// BenchmarkSTFT measures the planned zero-alloc spectrogram on the paper's
// vibration configuration (64-point frames at 200 Hz) and an audio-scale
// configuration (512-point frames at 16 kHz).
func BenchmarkSTFT(b *testing.B) { runGroup(b, "STFT") }

// BenchmarkSTFTLegacy is the pre-plan implementation on the same inputs.
func BenchmarkSTFTLegacy(b *testing.B) { runGroup(b, "STFTLegacy") }

// BenchmarkEstimateDelayFFT measures the frequency-domain Eq. (5) delay
// search on a sync-sized problem (16k samples, 8k max lag).
func BenchmarkEstimateDelayFFT(b *testing.B) { runGroup(b, "EstimateDelayFFT") }

// BenchmarkEstimateDelayLegacy is the direct O(n*maxLag) search on the same
// problem.
func BenchmarkEstimateDelayLegacy(b *testing.B) { runGroup(b, "EstimateDelayLegacy") }

// BenchmarkPowerSpectrum measures the packed real-input spectrum against
// the legacy full-length complex transform.
func BenchmarkPowerSpectrum(b *testing.B) { runGroup(b, "PowerSpectrum") }
