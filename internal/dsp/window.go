package dsp

import (
	"math"
	"sync"
)

// WindowKind selects a window function for short-time analysis.
type WindowKind int

// Supported analysis windows.
const (
	WindowHann WindowKind = iota + 1
	WindowHamming
	WindowRect
	WindowBlackman
)

// String returns the human-readable window name.
func (w WindowKind) String() string {
	switch w {
	case WindowHann:
		return "hann"
	case WindowHamming:
		return "hamming"
	case WindowRect:
		return "rect"
	case WindowBlackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Window returns the n-point window of the given kind. Periodic form is
// used (denominator n), which is the conventional choice for STFT.
func Window(kind WindowKind, n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	switch kind {
	case WindowHamming:
		for i := range w {
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case WindowRect:
		for i := range w {
			w[i] = 1
		}
	case WindowBlackman:
		for i := range w {
			t := 2 * math.Pi * float64(i) / float64(n)
			w[i] = 0.42 - 0.5*math.Cos(t) + 0.08*math.Cos(2*t)
		}
	default: // Hann
		for i := range w {
			w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
		}
	}
	return w
}

// windowCache holds one immutable window per (kind, length) pair so hot
// loops like STFT never rebuild them. Entries are never mutated after
// insertion, making the cache safe for concurrent readers.
var windowCache sync.Map

type windowKey struct {
	kind WindowKind
	n    int
}

// cachedWindow returns the shared n-point window of the given kind. The
// returned slice is cached and MUST NOT be modified; external callers who
// may mutate the window should use Window, which always returns a fresh
// copy.
func cachedWindow(kind WindowKind, n int) []float64 {
	key := windowKey{kind, n}
	if v, ok := windowCache.Load(key); ok {
		return v.([]float64)
	}
	v, _ := windowCache.LoadOrStore(key, Window(kind, n))
	return v.([]float64)
}

// ApplyWindow multiplies x element-wise by window w into a new slice. If the
// lengths differ, the shorter length is used.
func ApplyWindow(x, w []float64) []float64 {
	n := len(x)
	if len(w) < n {
		n = len(w)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = x[i] * w[i]
	}
	return out
}
