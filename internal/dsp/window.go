package dsp

import "math"

// WindowKind selects a window function for short-time analysis.
type WindowKind int

// Supported analysis windows.
const (
	WindowHann WindowKind = iota + 1
	WindowHamming
	WindowRect
	WindowBlackman
)

// String returns the human-readable window name.
func (w WindowKind) String() string {
	switch w {
	case WindowHann:
		return "hann"
	case WindowHamming:
		return "hamming"
	case WindowRect:
		return "rect"
	case WindowBlackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Window returns the n-point window of the given kind. Periodic form is
// used (denominator n), which is the conventional choice for STFT.
func Window(kind WindowKind, n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	switch kind {
	case WindowHamming:
		for i := range w {
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case WindowRect:
		for i := range w {
			w[i] = 1
		}
	case WindowBlackman:
		for i := range w {
			t := 2 * math.Pi * float64(i) / float64(n)
			w[i] = 0.42 - 0.5*math.Cos(t) + 0.08*math.Cos(2*t)
		}
	default: // Hann
		for i := range w {
			w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
		}
	}
	return w
}

// ApplyWindow multiplies x element-wise by window w into a new slice. If the
// lengths differ, the shorter length is used.
func ApplyWindow(x, w []float64) []float64 {
	n := len(x)
	if len(w) < n {
		n = len(w)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = x[i] * w[i]
	}
	return out
}
