package dsp

import (
	"math"
	"testing"
)

func TestHighPassAttenuatesLowFrequencies(t *testing.T) {
	const fs = 16000.0
	hp, err := NewHighPass(500, fs, math.Sqrt2/2)
	if err != nil {
		t.Fatal(err)
	}
	low := Tone(50, 1, 0.5, fs)
	high := Tone(3000, 1, 0.5, fs)
	lowOut := hp.Process(low)
	highOut := hp.Process(high)
	// Skip transient.
	lowRMS := RMS(lowOut[2000:])
	highRMS := RMS(highOut[2000:])
	if lowRMS > 0.05 {
		t.Errorf("low tone RMS after highpass = %v, want < 0.05", lowRMS)
	}
	if highRMS < 0.6 {
		t.Errorf("high tone RMS after highpass = %v, want > 0.6", highRMS)
	}
}

func TestLowPassAttenuatesHighFrequencies(t *testing.T) {
	const fs = 16000.0
	lp, err := NewLowPass(500, fs, math.Sqrt2/2)
	if err != nil {
		t.Fatal(err)
	}
	low := Tone(50, 1, 0.5, fs)
	high := Tone(4000, 1, 0.5, fs)
	lowRMS := RMS(lp.Process(low)[2000:])
	highRMS := RMS(lp.Process(high)[2000:])
	if lowRMS < 0.6 {
		t.Errorf("low tone RMS after lowpass = %v, want > 0.6", lowRMS)
	}
	if highRMS > 0.05 {
		t.Errorf("high tone RMS after lowpass = %v, want < 0.05", highRMS)
	}
}

func TestBandPassSelectsCenter(t *testing.T) {
	const fs = 16000.0
	bp, err := NewBandPass(1000, fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	rCenter := bp.Response(1000, fs)
	rLow := bp.Response(100, fs)
	rHigh := bp.Response(5000, fs)
	if rCenter < 0.9 {
		t.Errorf("center response %v, want near 1", rCenter)
	}
	if rLow > 0.3 || rHigh > 0.3 {
		t.Errorf("stopband responses %v / %v too high", rLow, rHigh)
	}
}

func TestFilterConstructorErrors(t *testing.T) {
	cases := []struct {
		cutoff, fs float64
	}{
		{0, 16000}, {-100, 16000}, {8000, 16000}, {9000, 16000}, {100, 0}, {100, -1},
	}
	for _, c := range cases {
		if _, err := NewHighPass(c.cutoff, c.fs, 0.707); err == nil {
			t.Errorf("NewHighPass(%v, %v) should error", c.cutoff, c.fs)
		}
		if _, err := NewLowPass(c.cutoff, c.fs, 0.707); err == nil {
			t.Errorf("NewLowPass(%v, %v) should error", c.cutoff, c.fs)
		}
		if _, err := NewBandPass(c.cutoff, c.fs, 2); err == nil {
			t.Errorf("NewBandPass(%v, %v) should error", c.cutoff, c.fs)
		}
	}
}

func TestBiquadResponseMatchesMeasured(t *testing.T) {
	const fs = 16000.0
	hp, err := NewHighPass(1000, fs, math.Sqrt2/2)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic response at cutoff for Butterworth Q should be ~-3dB.
	r := hp.Response(1000, fs)
	if math.Abs(AmplitudeToDB(r)-(-3)) > 0.5 {
		t.Errorf("response at cutoff = %v dB, want about -3 dB", AmplitudeToDB(r))
	}
	// Measured gain of a steady tone should match the analytic response.
	x := Tone(2500, 1, 0.5, fs)
	y := hp.Process(x)
	measured := RMS(y[2000:]) / RMS(x[2000:])
	analytic := hp.Response(2500, fs)
	if math.Abs(measured-analytic) > 0.02 {
		t.Errorf("measured gain %v vs analytic %v", measured, analytic)
	}
}

func TestBiquadReset(t *testing.T) {
	hp, err := NewHighPass(100, 1000, 0.707)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1, 1, 1}
	a := hp.Process(x)
	b := hp.Process(x) // Process resets internally
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Process is not stateless across calls at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPreEmphasis(t *testing.T) {
	x := []float64{1, 1, 1}
	y := PreEmphasis(x, 0.97)
	if y[0] != 1 {
		t.Errorf("y[0] = %v, want 1", y[0])
	}
	if math.Abs(y[1]-0.03) > 1e-12 || math.Abs(y[2]-0.03) > 1e-12 {
		t.Errorf("y = %v, want [1 0.03 0.03]", y)
	}
}

func TestFrequencyShapeAppliesGainCurve(t *testing.T) {
	const fs = 16000.0
	x := Mix(Tone(100, 1, 0.25, fs), Tone(3000, 1, 0.25, fs))
	// Kill everything above 1kHz.
	y := FrequencyShape(x, fs, func(f float64) float64 {
		if f > 1000 {
			return 0
		}
		return 1
	})
	if len(y) != len(x) {
		t.Fatalf("length changed: %d -> %d", len(x), len(y))
	}
	spec := MagnitudeSpectrum(y)
	n := NextPow2(len(y))
	_ = n
	binLow := FrequencyBin(100, len(y), fs)
	binHigh := FrequencyBin(3000, len(y), fs)
	// The low tone should dominate the high tone by a large margin.
	if spec[binHigh] > spec[binLow]*0.05 {
		t.Errorf("high bin %v not attenuated vs low bin %v", spec[binHigh], spec[binLow])
	}
}

func TestFrequencyShapeIdentity(t *testing.T) {
	const fs = 1000.0
	x := Tone(100, 1, 0.1, fs)
	y := FrequencyShape(x, fs, func(float64) float64 { return 1 })
	for i := range x {
		if math.Abs(x[i]-y[i]) > 1e-9 {
			t.Fatalf("identity shape changed sample %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestFrequencyShapeEmpty(t *testing.T) {
	if out := FrequencyShape(nil, 16000, func(float64) float64 { return 1 }); out != nil {
		t.Error("empty input should return nil")
	}
}
