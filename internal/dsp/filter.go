package dsp

import (
	"fmt"
	"math"
)

// Biquad is a second-order IIR filter section in direct form II transposed.
// The zero value is an identity filter only after normalization; construct
// instances with the NewHighPass/NewLowPass/NewBandPass helpers.
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	z1, z2     float64
}

// NewHighPass returns a Butterworth-style high-pass biquad with the given
// cutoff frequency and quality factor. Q of 1/sqrt(2) gives the maximally
// flat response.
func NewHighPass(cutoff, sampleRate, q float64) (*Biquad, error) {
	if err := validateCutoff(cutoff, sampleRate); err != nil {
		return nil, fmt.Errorf("highpass: %w", err)
	}
	w0 := 2 * math.Pi * cutoff / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cosW0 := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 + cosW0) / 2 / a0,
		b1: -(1 + cosW0) / a0,
		b2: (1 + cosW0) / 2 / a0,
		a1: -2 * cosW0 / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewLowPass returns a Butterworth-style low-pass biquad.
func NewLowPass(cutoff, sampleRate, q float64) (*Biquad, error) {
	if err := validateCutoff(cutoff, sampleRate); err != nil {
		return nil, fmt.Errorf("lowpass: %w", err)
	}
	w0 := 2 * math.Pi * cutoff / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cosW0 := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cosW0) / 2 / a0,
		b1: (1 - cosW0) / a0,
		b2: (1 - cosW0) / 2 / a0,
		a1: -2 * cosW0 / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewBandPass returns a constant-peak-gain band-pass biquad centered at
// the given frequency.
func NewBandPass(center, sampleRate, q float64) (*Biquad, error) {
	if err := validateCutoff(center, sampleRate); err != nil {
		return nil, fmt.Errorf("bandpass: %w", err)
	}
	w0 := 2 * math.Pi * center / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cosW0 := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: alpha / a0,
		b1: 0,
		b2: -alpha / a0,
		a1: -2 * cosW0 / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

func validateCutoff(cutoff, sampleRate float64) error {
	if sampleRate <= 0 {
		return fmt.Errorf("sample rate %v must be positive", sampleRate)
	}
	if cutoff <= 0 || cutoff >= sampleRate/2 {
		return fmt.Errorf("cutoff %vHz outside (0, %vHz)", cutoff, sampleRate/2)
	}
	return nil
}

// Reset clears the filter state.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// ProcessSample filters one sample, advancing the internal state.
func (f *Biquad) ProcessSample(x float64) float64 {
	y := f.b0*x + f.z1
	f.z1 = f.b1*x - f.a1*y + f.z2
	f.z2 = f.b2*x - f.a2*y
	return y
}

// Process filters the whole signal into a new slice, resetting state first.
func (f *Biquad) Process(x []float64) []float64 {
	f.Reset()
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.ProcessSample(v)
	}
	return out
}

// Response returns the filter's magnitude response at frequency f for the
// given sample rate.
func (f *Biquad) Response(freq, sampleRate float64) float64 {
	w := 2 * math.Pi * freq / sampleRate
	cos1, sin1 := math.Cos(w), math.Sin(w)
	cos2, sin2 := math.Cos(2*w), math.Sin(2*w)
	numRe := f.b0 + f.b1*cos1 + f.b2*cos2
	numIm := -(f.b1*sin1 + f.b2*sin2)
	denRe := 1 + f.a1*cos1 + f.a2*cos2
	denIm := -(f.a1*sin1 + f.a2*sin2)
	num := math.Hypot(numRe, numIm)
	den := math.Hypot(denRe, denIm)
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// PreEmphasis applies the standard first-order pre-emphasis filter
// y[n] = x[n] - coef*x[n-1] used before MFCC extraction.
func PreEmphasis(x []float64, coef float64) []float64 {
	out := make([]float64, len(x))
	prev := 0.0
	for i, v := range x {
		out[i] = v - coef*prev
		prev = v
	}
	return out
}

// FrequencyShape filters a real signal in the frequency domain by
// multiplying each FFT bin magnitude with gain(freq). It is used to apply
// measured transfer functions (barrier transmission, microphone and
// accelerometer responses) that are easier to express as magnitude curves
// than as rational filters. Phase is preserved.
func FrequencyShape(x []float64, sampleRate float64, gain func(freqHz float64) float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	m := NextPow2(n)
	p := mustPlanFFT(m)
	buf := make([]complex128, m)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	p.transform(buf, p.fwd)
	// Apply gain symmetrically so the result stays real.
	for k := 0; k <= m/2; k++ {
		f := BinFrequency(k, m, sampleRate)
		g := gain(f)
		buf[k] = complex(real(buf[k])*g, imag(buf[k])*g)
		if k != 0 && k != m/2 {
			buf[m-k] = complex(real(buf[m-k])*g, imag(buf[m-k])*g)
		}
	}
	p.transform(buf, p.inv)
	out := make([]float64, n)
	inv := 1 / float64(m)
	for i := 0; i < n; i++ {
		out[i] = real(buf[i]) * inv
	}
	return out
}
