package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestWindowShapes(t *testing.T) {
	for _, kind := range []WindowKind{WindowHann, WindowHamming, WindowBlackman} {
		w := Window(kind, 64)
		if len(w) != 64 {
			t.Fatalf("%v: len %d", kind, len(w))
		}
		// Endpoints small, middle near 1, all within [0, 1.001].
		if w[32] < 0.9 {
			t.Errorf("%v: center %v too small", kind, w[32])
		}
		for i, v := range w {
			if v < -1e-12 || v > 1.001 {
				t.Errorf("%v[%d] = %v out of range", kind, i, v)
			}
		}
	}
	w := Window(WindowRect, 8)
	for _, v := range w {
		if v != 1 {
			t.Errorf("rect window value %v != 1", v)
		}
	}
	if Window(WindowHann, 0) != nil {
		t.Error("zero-length window should be nil")
	}
}

func TestWindowKindString(t *testing.T) {
	names := map[WindowKind]string{
		WindowHann: "hann", WindowHamming: "hamming",
		WindowRect: "rect", WindowBlackman: "blackman", WindowKind(99): "unknown",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestSTFTToneLandsInRightBin(t *testing.T) {
	const fs = 200.0
	const freq = 50.0
	x := Tone(freq, 1.0, 2.0, fs)
	spec, err := STFT(x, STFTConfig{FFTSize: 64, SampleRate: fs})
	if err != nil {
		t.Fatal(err)
	}
	if spec.NumBins() != 33 {
		t.Fatalf("bins = %d, want 33", spec.NumBins())
	}
	wantBin := FrequencyBin(freq, 64, fs)
	for tIdx := 1; tIdx < spec.NumFrames()-1; tIdx++ {
		best, bestV := 0, 0.0
		for f, v := range spec.Power[tIdx] {
			if v > bestV {
				best, bestV = f, v
			}
		}
		if best != wantBin {
			t.Fatalf("frame %d: peak at bin %d (%.1fHz), want %d (%.1fHz)",
				tIdx, best, spec.BinFrequency(best), wantBin, freq)
		}
	}
}

func TestSTFTFrameCount(t *testing.T) {
	x := make([]float64, 1000)
	spec, err := STFT(x, STFTConfig{FFTSize: 64, HopSize: 32, SampleRate: 200})
	if err != nil {
		t.Fatal(err)
	}
	// 1 + ceil((1000-64)/32) = 1 + 30 = 31
	if spec.NumFrames() != 31 {
		t.Errorf("frames = %d, want 31", spec.NumFrames())
	}
}

func TestSTFTShortSignalZeroPads(t *testing.T) {
	x := []float64{1, 2, 3}
	spec, err := STFT(x, STFTConfig{FFTSize: 64, SampleRate: 200})
	if err != nil {
		t.Fatal(err)
	}
	if spec.NumFrames() != 1 {
		t.Errorf("frames = %d, want 1", spec.NumFrames())
	}
}

func TestSTFTErrors(t *testing.T) {
	if _, err := STFT(nil, STFTConfig{FFTSize: 63, SampleRate: 200}); err == nil {
		t.Error("non-pow2 FFT size should error")
	}
	if _, err := STFT(nil, STFTConfig{FFTSize: 64}); err == nil {
		t.Error("missing sample rate should error")
	}
}

func TestSpectrogramCropBelow(t *testing.T) {
	x := Tone(50, 1, 1, 200)
	spec, err := STFT(x, STFTConfig{FFTSize: 64, SampleRate: 200})
	if err != nil {
		t.Fatal(err)
	}
	before := spec.NumBins()
	cropped := spec.CropBelow(5)
	// Bins at 0Hz and 3.125Hz (bin 1) should be gone: 200/64=3.125 per bin.
	if got, want := before-cropped.NumBins(), 2; got != want {
		t.Errorf("cropped %d bins, want %d", got, want)
	}
	if cropped.BinFrequency(0) != spec.BinFrequency(0) {
		// BinFrequency uses absolute index, so just check values shifted.
		t.Log("bin frequency indexing is relative to original layout by design")
	}
	// Original must be untouched.
	if spec.NumBins() != before {
		t.Error("CropBelow modified the receiver")
	}
}

func TestSpectrogramNormalize(t *testing.T) {
	spec := &Spectrogram{Power: [][]float64{{1, 2}, {4, 3}}, FFTSize: 4, HopSize: 2, SampleRate: 8}
	spec.Normalize()
	if spec.Power[1][0] != 1 {
		t.Errorf("max after normalize = %v, want 1", spec.Power[1][0])
	}
	if spec.Power[0][0] != 0.25 {
		t.Errorf("value = %v, want 0.25", spec.Power[0][0])
	}
	zero := &Spectrogram{Power: [][]float64{{0, 0}}}
	zero.Normalize() // must not panic or divide by zero
	if zero.Power[0][0] != 0 {
		t.Error("zero spectrogram changed by Normalize")
	}
}

func TestSpectrogramNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := &Spectrogram{Power: make([][]float64, 5)}
	for i := range spec.Power {
		row := make([]float64, 9)
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		spec.Power[i] = row
	}
	spec.Normalize()
	snapshot := spec.Clone()
	spec.Normalize()
	for i := range spec.Power {
		for j := range spec.Power[i] {
			if math.Abs(spec.Power[i][j]-snapshot.Power[i][j]) > 1e-12 {
				t.Fatalf("normalize not idempotent at (%d,%d)", i, j)
			}
		}
	}
}

func TestSpectrogramCloneIsDeep(t *testing.T) {
	spec := &Spectrogram{Power: [][]float64{{1, 2}}, FFTSize: 4, HopSize: 2, SampleRate: 8}
	c := spec.Clone()
	c.Power[0][0] = 99
	if spec.Power[0][0] != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestSpectrogramFlatten(t *testing.T) {
	spec := &Spectrogram{Power: [][]float64{{1, 2}, {3, 4}}}
	flat := spec.Flatten()
	want := []float64{1, 2, 3, 4}
	for i, v := range want {
		if flat[i] != v {
			t.Fatalf("flatten[%d] = %v, want %v", i, flat[i], v)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	x := []float64{2, 2, 2}
	w := []float64{0.5, 1}
	out := ApplyWindow(x, w)
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Errorf("ApplyWindow = %v", out)
	}
}
