package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEstimateDelayRecoversShift(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	signal := make([]float64, 2000)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	for _, shift := range []int{0, 7, 100, 500} {
		// b contains `shift` samples of noise, then the signal: the wearable
		// started recording `shift` samples before the command content that
		// the VA recording a starts with.
		b := make([]float64, shift+len(signal))
		for i := 0; i < shift; i++ {
			b[i] = 0.01 * rng.NormFloat64()
		}
		copy(b[shift:], signal)
		got := EstimateDelay(signal, b, 600)
		if got != shift {
			t.Errorf("shift %d: estimated %d", shift, got)
		}
	}
}

func TestCrossCorrelateNegativeMaxLag(t *testing.T) {
	out := CrossCorrelate([]float64{1, 2}, []float64{1, 2}, -5)
	if len(out) != 1 {
		t.Errorf("len = %d, want 1", len(out))
	}
}

func TestPearsonKnownValues(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if r := Pearson(a, a); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %v, want 1", r)
	}
	neg := []float64{4, 3, 2, 1}
	if r := Pearson(a, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation = %v, want -1", r)
	}
	if r := Pearson(a, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant vector correlation = %v, want 0", r)
	}
	if r := Pearson(a, []float64{1, 2}); r != 0 {
		t.Errorf("mismatched lengths = %v, want 0", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Errorf("empty = %v, want 0", r)
	}
}

// Property: Pearson correlation is always in [-1, 1] and symmetric.
func TestPearsonProperty(t *testing.T) {
	f := func(pairs []struct{ A, B float64 }) bool {
		if len(pairs) < 2 {
			return true
		}
		a := make([]float64, len(pairs))
		b := make([]float64, len(pairs))
		for i, p := range pairs {
			av, bv := p.A, p.B
			if math.IsNaN(av) || math.IsInf(av, 0) {
				av = 0
			}
			if math.IsNaN(bv) || math.IsInf(bv, 0) {
				bv = 0
			}
			a[i] = math.Mod(av, 1e6)
			b[i] = math.Mod(bv, 1e6)
		}
		r := Pearson(a, b)
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		return math.Abs(r-Pearson(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		scale := rng.Float64()*10 + 0.1
		offset := rng.NormFloat64() * 5
		a2 := make([]float64, n)
		for i := range a {
			a2[i] = a[i]*scale + offset
		}
		if math.Abs(Pearson(a, b)-Pearson(a2, b)) > 1e-9 {
			t.Fatalf("trial %d: affine transform changed correlation", trial)
		}
	}
}

func TestCorrelate2DIdenticalSpectrograms(t *testing.T) {
	spec := &Spectrogram{Power: [][]float64{{1, 2, 3}, {4, 5, 6}}}
	if r := Correlate2D(spec, spec.Clone()); math.Abs(r-1) > 1e-12 {
		t.Errorf("identical spectrograms correlation = %v, want 1", r)
	}
}

func TestCorrelate2DNoiseLowersCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := &Spectrogram{Power: make([][]float64, 20)}
	for i := range base.Power {
		row := make([]float64, 33)
		for j := range row {
			row[j] = math.Abs(rng.NormFloat64())
		}
		base.Power[i] = row
	}
	noisy := base.Clone()
	for i := range noisy.Power {
		for j := range noisy.Power[i] {
			noisy.Power[i][j] += math.Abs(rng.NormFloat64()) * 3
		}
	}
	clean := Correlate2D(base, base.Clone())
	dirty := Correlate2D(base, noisy)
	if dirty >= clean {
		t.Errorf("noise did not reduce correlation: clean %v, noisy %v", clean, dirty)
	}
}

func TestCorrelate2DMismatchedSizesUsesOverlap(t *testing.T) {
	a := &Spectrogram{Power: [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}}
	b := &Spectrogram{Power: [][]float64{{1, 2}, {4, 5}}}
	r := Correlate2D(a, b)
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("overlap correlation = %v, want 1", r)
	}
}

func TestCorrelate2DNil(t *testing.T) {
	if r := Correlate2D(nil, nil); r != 0 {
		t.Errorf("nil correlation = %v, want 0", r)
	}
	empty := &Spectrogram{}
	if r := Correlate2D(empty, empty); r != 0 {
		t.Errorf("empty correlation = %v, want 0", r)
	}
}

func TestQuartile3(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if q := Quartile3(x); q != 4 {
		t.Errorf("Q3 = %v, want 4", q)
	}
	if q := Quartile3(nil); q != 0 {
		t.Errorf("Q3(nil) = %v, want 0", q)
	}
	if q := Quartile3([]float64{7}); q != 7 {
		t.Errorf("Q3 single = %v, want 7", q)
	}
}

func TestPercentileDoesNotModifyInput(t *testing.T) {
	x := []float64{3, 1, 2}
	Percentile(x, 0.5)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentileBounds(t *testing.T) {
	x := []float64{10, 20, 30}
	if p := Percentile(x, 0); p != 10 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(x, 1); p != 30 {
		t.Errorf("p1 = %v", p)
	}
	if p := Percentile(x, 0.5); p != 20 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(x, -1); p != 10 {
		t.Errorf("clamped low = %v", p)
	}
	if p := Percentile(x, 2); p != 30 {
		t.Errorf("clamped high = %v", p)
	}
}

func TestStatHelpers(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if e := Energy([]float64{3, 4}); e != 25 {
		t.Errorf("Energy = %v", e)
	}
	if r := RMS([]float64{3, 4}); math.Abs(r-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", r)
	}
	if r := RMS(nil); r != 0 {
		t.Errorf("RMS(nil) = %v", r)
	}
	if m := MaxAbs([]float64{-5, 3}); m != 5 {
		t.Errorf("MaxAbs = %v", m)
	}
}

func TestEstimateDelayFastMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	signal := make([]float64, 8000)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	for _, shift := range []int{0, 100, 1600, 2400} {
		b := make([]float64, shift+len(signal))
		for i := 0; i < shift; i++ {
			b[i] = 0.01 * rng.NormFloat64()
		}
		copy(b[shift:], signal)
		exact := EstimateDelay(signal, b, 3000)
		fast := EstimateDelayFast(signal, b, 3000)
		if fast != exact {
			t.Errorf("shift %d: fast %d != exact %d", shift, fast, exact)
		}
	}
}

// TestCrossCorrelateFFTMatchesDirect pins the frequency-domain correlation
// against the reference loop: values within 1e-9 of the correlation scale
// and identical argmax, over a seeded corpus of lengths (including
// non-power-of-two) and lag bounds straddling the dispatch crossover.
func TestCrossCorrelateFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct{ na, nb, maxLag int }{
		{16, 16, 4},
		{100, 137, 50},
		{1000, 1300, 400},
		{4096, 4096, 2000},
		{5000, 3000, 2999}, // b shorter than a
		{300, 8000, 6000},  // a much shorter than b
	}
	for _, tc := range cases {
		a := make([]float64, tc.na)
		b := make([]float64, tc.nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := crossCorrelateDirect(a, b, tc.maxLag)
		got := CrossCorrelateFFT(a, b, tc.maxLag)
		if len(got) != len(want) {
			t.Fatalf("%+v: %d lags, want %d", tc, len(got), len(want))
		}
		scale := 0.0
		for _, v := range want {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		if scale == 0 {
			scale = 1
		}
		for tau := range want {
			if math.Abs(got[tau]-want[tau]) > 1e-9*scale {
				t.Fatalf("%+v lag %d: fft %v, direct %v", tc, tau, got[tau], want[tau])
			}
		}
		if fa, da := argmaxLag(got), argmaxLag(want); fa != da {
			t.Fatalf("%+v: fft argmax %d, direct argmax %d", tc, fa, da)
		}
	}
}

// TestEstimateDelayFFTExactEquality demands exactly equal delay estimates
// from the FFT path and the direct loop on a seeded corpus of shifted
// noise recordings — the Eq. (5) sync must not move by even one sample
// when the engine changes.
func TestEstimateDelayFFTExactEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		n := 500 + rng.Intn(4000)
		shift := rng.Intn(800)
		maxLag := 800 + rng.Intn(400)
		sig := make([]float64, n)
		for i := range sig {
			sig[i] = rng.NormFloat64()
		}
		b := make([]float64, shift+n)
		for i := 0; i < shift; i++ {
			b[i] = 0.01 * rng.NormFloat64()
		}
		copy(b[shift:], sig)
		direct := argmaxLag(crossCorrelateDirect(sig, b, maxLag))
		fft := EstimateDelayFFT(sig, b, maxLag)
		if fft != direct {
			t.Fatalf("trial %d (n=%d shift=%d maxLag=%d): fft %d, direct %d",
				trial, n, shift, maxLag, fft, direct)
		}
		if disp := EstimateDelay(sig, b, maxLag); disp != direct {
			t.Fatalf("trial %d: dispatched %d, direct %d", trial, disp, direct)
		}
	}
}

// TestEstimateDelayFFTSteadyStateAllocationFree pins the pooled transform
// buffer: after a warm-up call has populated the plan cache and the
// sync.Pool, the delay search must not allocate. (The pool hands back a
// dirty buffer, so this also exercises the re-zeroing path against a
// fresh computation of the same inputs.)
func TestEstimateDelayFFTSteadyStateAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := make([]float64, 4000)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	b := make([]float64, 4300)
	copy(b[300:], a)
	want := EstimateDelayFFT(a, b, 800) // warm plan cache + pool
	if want != 300 {
		t.Fatalf("delay = %d, want 300", want)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if got := EstimateDelayFFT(a, b, 800); got != want {
			t.Errorf("pooled rerun delay = %d, want %d", got, want)
		}
	})
	if allocs != 0 {
		t.Errorf("EstimateDelayFFT allocated %.1f times per run, want 0", allocs)
	}
}

func TestCrossCorrelateFFTDegenerateInputs(t *testing.T) {
	if got := CrossCorrelateFFT(nil, []float64{1, 2}, 3); len(got) != 4 {
		t.Errorf("empty a: %d lags, want 4", len(got))
	}
	if got := CrossCorrelateFFT([]float64{1, 2}, nil, -1); len(got) != 1 {
		t.Errorf("negative maxLag: %d lags, want 1", len(got))
	}
	got := CrossCorrelateFFT([]float64{1}, []float64{2}, 0)
	if math.Abs(got[0]-2) > 1e-12 {
		t.Errorf("single-sample correlation = %v, want 2", got[0])
	}
}

// TestEstimateDelayFastNearZeroCoarsePeak is the regression test for the
// refinement-window clamp: a true delay close to zero makes the coarse
// pass land at (or near) lag 0, so the refinement window start
// coarse*factor - 24*factor is negative and must be clamped to 0 inside
// EstimateDelayFast itself rather than silently relying on the callee.
func TestEstimateDelayFastNearZeroCoarsePeak(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	signal := make([]float64, 8000)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	for _, shift := range []int{0, 1, 3, 15} { // all give coarse*16-384 < 0
		b := make([]float64, shift+len(signal))
		for i := 0; i < shift; i++ {
			b[i] = 0.01 * rng.NormFloat64()
		}
		copy(b[shift:], signal)
		got := EstimateDelayFast(signal, b, 3000)
		if got != shift {
			t.Errorf("shift %d: EstimateDelayFast = %d", shift, got)
		}
	}
}

func TestEstimateDelayRange(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	// Range clamping must not panic and must respect bounds.
	if got := EstimateDelayRange(a, a, -5, -1); got != 0 {
		t.Errorf("clamped range = %d", got)
	}
	if got := EstimateDelayRange(a, a, 2, 1); got != 2 {
		t.Errorf("inverted range = %d", got)
	}
}
