package dsp

import (
	"fmt"
	"math"
)

// Voice-activity admission gate for the streaming pipeline: a per-frame
// voiced/unvoiced decision combining an RMS level floor, a zero-crossing-
// rate band on high-passed samples, and a spectral voice-band filter on
// streamed STFT frames (the barge-in listener recipe: RMS catches silence,
// the high-pass + ZCR band rejects low-frequency table-thump rumble and
// impulsive clicks, and the spectral ratio rejects energy that lives
// outside the speech band entirely). Frames that fail the gate are counted
// as gated; the caller skips the expensive segmentation and replay stages
// while no voiced frame has arrived.

// VADConfig parameterizes a VAD.
type VADConfig struct {
	// SampleRate of the audio in Hz. Required.
	SampleRate float64
	// FrameSamples is the decision-frame hop (default 10 ms of audio).
	FrameSamples int
	// FFTSize is the spectral-gate analysis window (default 256). Each
	// decision frame is judged over the FFTSize-sample window starting at
	// its hop position.
	FFTSize int
	// RMSFloorDB is the level floor in dBFS (full scale = 1.0) below which
	// a frame is unvoiced regardless of shape (default -48).
	RMSFloorDB float64
	// ZCRMin and ZCRMax bound the zero-crossing rate of voiced audio,
	// measured on high-passed samples: low-frequency rumble falls below
	// the band, impulsive broadband clicks above it (defaults 0.02, 0.45).
	ZCRMin, ZCRMax float64
	// HighPassHz is the first-order IIR high-pass cutoff applied before
	// the ZCR measurement (default 100 Hz).
	HighPassHz float64
	// VoiceLowHz and VoiceHighHz bound the speech band of the spectral
	// gate (defaults 80 Hz, 4 kHz).
	VoiceLowHz, VoiceHighHz float64
	// VoiceBandMin is the minimum fraction of (non-DC) spectral energy
	// inside the speech band for a voiced frame (default 0.35).
	VoiceBandMin float64
	// HangoverFrames keeps the gate open for this many frames after the
	// last voiced one, so trailing phoneme energy is not chopped
	// (default 8).
	HangoverFrames int
}

// DefaultVADConfig returns the gate tuning used by the streaming pipeline.
func DefaultVADConfig(sampleRate float64) VADConfig {
	return VADConfig{SampleRate: sampleRate}
}

func (c VADConfig) withDefaults() (VADConfig, error) {
	if c.SampleRate <= 0 {
		return c, fmt.Errorf("vad: sample rate %v must be positive", c.SampleRate)
	}
	if c.FrameSamples <= 0 {
		c.FrameSamples = int(c.SampleRate / 100)
		if c.FrameSamples <= 0 {
			c.FrameSamples = 1
		}
	}
	if c.FFTSize <= 0 {
		c.FFTSize = 256
	}
	if err := ValidateLength(c.FFTSize); err != nil {
		return c, fmt.Errorf("vad: %w", err)
	}
	if c.RMSFloorDB == 0 {
		c.RMSFloorDB = -48
	}
	if c.ZCRMin == 0 {
		c.ZCRMin = 0.02
	}
	if c.ZCRMax == 0 {
		c.ZCRMax = 0.45
	}
	if c.HighPassHz == 0 {
		c.HighPassHz = 100
	}
	if c.HighPassHz < 0 || c.HighPassHz >= c.SampleRate/2 {
		return c, fmt.Errorf("vad: high-pass %vHz outside [0, %vHz)", c.HighPassHz, c.SampleRate/2)
	}
	if c.VoiceLowHz == 0 {
		c.VoiceLowHz = 80
	}
	if c.VoiceHighHz == 0 {
		c.VoiceHighHz = 4000
	}
	if c.VoiceBandMin == 0 {
		c.VoiceBandMin = 0.35
	}
	if c.HangoverFrames == 0 {
		c.HangoverFrames = 8
	}
	return c, nil
}

// VAD is a streaming voice-activity detector. Feed it chunks; it decides
// one frame per FrameSamples hop, each judged over the FFTSize window
// starting at the frame position (decisions therefore trail the fed
// samples by FFTSize-FrameSamples samples until Finish flushes the tail).
// Not safe for concurrent use.
type VAD struct {
	cfg  VADConfig
	stft *STFTStreamer

	// raw and hp hold the samples [base, total) still needed by pending
	// frames: raw for the RMS window, hp (first-order high-passed) for the
	// ZCR window.
	raw, hp []float64
	base    int
	total   int

	// one-pole high-pass state.
	hpAlpha    float64
	hpPrevIn   float64
	hpPrevOut  float64
	hpPrimed   bool
	decided    int
	hangover   int
	voicedOn   bool
	cntVoiced  int
	cntGated   int
	cntHang    int
	finishDone bool
}

// NewVAD builds a streaming voice-activity detector.
func NewVAD(cfg VADConfig) (*VAD, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	stft, err := NewSTFTStreamer(STFTConfig{
		FFTSize:    c.FFTSize,
		HopSize:    c.FrameSamples,
		SampleRate: c.SampleRate,
	})
	if err != nil {
		return nil, fmt.Errorf("vad: %w", err)
	}
	// RC high-pass: alpha = RC/(RC+dt) with RC = 1/(2*pi*fc).
	alpha := 1.0
	if c.HighPassHz > 0 {
		rc := 1 / (2 * math.Pi * c.HighPassHz)
		dt := 1 / c.SampleRate
		alpha = rc / (rc + dt)
	}
	return &VAD{cfg: c, stft: stft, hpAlpha: alpha}, nil
}

// Config returns the resolved configuration.
func (v *VAD) Config() VADConfig { return v.cfg }

// FramesDecided returns the number of frames decided so far.
func (v *VAD) FramesDecided() int { return v.decided }

// FramesVoiced returns the number of frames judged voiced (including
// hangover frames).
func (v *VAD) FramesVoiced() int { return v.cntVoiced }

// FramesGated returns the number of frames the gate rejected.
func (v *VAD) FramesGated() int { return v.cntGated }

// Feed consumes a chunk and returns how many of the newly decided frames
// were voiced and how many were gated. Feed after Finish panics.
func (v *VAD) Feed(chunk []float64) (voiced, gated int) {
	if v.finishDone {
		panic("dsp: VAD.Feed after Finish")
	}
	v.ingest(chunk)
	newFrames := v.stft.Feed(chunk)
	return v.decideFrames(newFrames)
}

// Finish flushes the zero-padded tail frames (every started hop gets its
// decision) and returns their voiced/gated split. Idempotent.
func (v *VAD) Finish() (voiced, gated int) {
	if v.finishDone {
		return 0, 0
	}
	v.finishDone = true
	before := v.stft.NumFrames()
	v.stft.Finish()
	return v.decideFrames(v.stft.NumFrames() - before)
}

// ingest appends raw samples and their high-passed counterparts.
func (v *VAD) ingest(chunk []float64) {
	for _, x := range chunk {
		if !v.hpPrimed {
			v.hpPrimed = true
			v.hpPrevIn, v.hpPrevOut = x, 0
		} else {
			v.hpPrevOut = v.hpAlpha * (v.hpPrevOut + x - v.hpPrevIn)
			v.hpPrevIn = x
		}
		v.raw = append(v.raw, x)
		v.hp = append(v.hp, v.hpPrevOut)
	}
	v.total += len(chunk)
}

// decideFrames judges the next n emitted STFT frames.
func (v *VAD) decideFrames(n int) (voiced, gated int) {
	rows := v.stft.Frames()
	for i := 0; i < n; i++ {
		t := v.decided
		start := t * v.cfg.FrameSamples
		end := start + v.cfg.FFTSize
		if end > v.total {
			end = v.total
		}
		lo, hi := start-v.base, end-v.base
		if lo < 0 {
			lo = 0
		}
		if hi < lo {
			hi = lo
		}
		if v.decide(v.raw[lo:hi], v.hp[lo:hi], rows[t]) {
			voiced++
		} else {
			gated++
		}
		v.decided++
		// Drop samples no pending frame needs: everything before the next
		// undecided frame's window start.
		drop := v.decided*v.cfg.FrameSamples - v.base
		if drop > len(v.raw) {
			drop = len(v.raw)
		}
		if drop > 0 {
			kept := copy(v.raw, v.raw[drop:])
			v.raw = v.raw[:kept]
			kept = copy(v.hp, v.hp[drop:])
			v.hp = v.hp[:kept]
			v.base += drop
		}
	}
	v.cntVoiced += voiced
	v.cntGated += gated
	return voiced, gated
}

// decide applies the three gates plus hangover to one frame.
func (v *VAD) decide(raw, hp []float64, power []float64) bool {
	live := len(raw) > 0 &&
		v.rmsOK(raw) && v.zcrOK(hp) && v.spectralOK(power)
	if live {
		v.hangover = v.cfg.HangoverFrames
		return true
	}
	if v.hangover > 0 {
		v.hangover--
		v.cntHang++
		return true
	}
	return false
}

// rmsOK checks the dBFS level floor.
func (v *VAD) rmsOK(raw []float64) bool {
	rms := RMS(raw)
	if rms <= 0 {
		return false
	}
	return 20*math.Log10(rms) >= v.cfg.RMSFloorDB
}

// zcrOK checks the zero-crossing rate of the high-passed window against
// the voiced band.
func (v *VAD) zcrOK(hp []float64) bool {
	if len(hp) < 2 {
		return false
	}
	crossings := 0
	for i := 1; i < len(hp); i++ {
		if (hp[i-1] >= 0) != (hp[i] >= 0) {
			crossings++
		}
	}
	zcr := float64(crossings) / float64(len(hp)-1)
	return zcr >= v.cfg.ZCRMin && zcr <= v.cfg.ZCRMax
}

// spectralOK checks that enough of the frame's (non-DC) spectral energy
// lies inside the speech band.
func (v *VAD) spectralOK(power []float64) bool {
	var band, total float64
	for f := 1; f < len(power); f++ {
		freq := BinFrequency(f, v.cfg.FFTSize, v.cfg.SampleRate)
		total += power[f]
		if freq >= v.cfg.VoiceLowHz && freq <= v.cfg.VoiceHighHz {
			band += power[f]
		}
	}
	if total <= 0 {
		return false
	}
	return band/total >= v.cfg.VoiceBandMin
}
