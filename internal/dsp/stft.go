package dsp

import "fmt"

// Spectrogram is a time-frequency power representation: Power[t][f] holds
// the squared magnitude of frequency bin f in frame t. NumBins is
// FFTSize/2+1; bin f covers frequency f*SampleRate/FFTSize.
//
// Spectrograms produced by this package store all frames in one contiguous
// backing array (Power rows are consecutive slices of it), which keeps
// construction to a single bulk allocation and makes whole-spectrogram
// scans cache-friendly. The [][]float64 shape is preserved so external
// construction from independent rows keeps working.
type Spectrogram struct {
	Power      [][]float64
	FFTSize    int
	HopSize    int
	SampleRate float64
}

// newSpectrogramFrames returns a frames x bins Power matrix carved out of
// one contiguous allocation.
func newSpectrogramFrames(frames, bins int) [][]float64 {
	power := make([][]float64, frames)
	backing := make([]float64, frames*bins)
	for t := range power {
		power[t] = backing[t*bins : (t+1)*bins : (t+1)*bins]
	}
	return power
}

// NumFrames returns the number of time frames.
func (s *Spectrogram) NumFrames() int { return len(s.Power) }

// NumBins returns the number of frequency bins per frame.
func (s *Spectrogram) NumBins() int {
	if len(s.Power) == 0 {
		return 0
	}
	return len(s.Power[0])
}

// BinFrequency returns the center frequency in Hz of bin f.
func (s *Spectrogram) BinFrequency(f int) float64 {
	return BinFrequency(f, s.FFTSize, s.SampleRate)
}

// Clone returns a deep copy of the spectrogram (contiguously backed).
func (s *Spectrogram) Clone() *Spectrogram {
	out := &Spectrogram{
		Power:      newSpectrogramFrames(s.NumFrames(), s.NumBins()),
		FFTSize:    s.FFTSize,
		HopSize:    s.HopSize,
		SampleRate: s.SampleRate,
	}
	for i, row := range s.Power {
		copy(out.Power[i], row)
	}
	return out
}

// CropBelow removes all bins whose center frequency is <= cutoff Hz,
// returning a new spectrogram. The paper crops <= 5 Hz to suppress the
// accelerometer's low-frequency sensitivity artifact and body-motion
// interference (Section VI-B).
func (s *Spectrogram) CropBelow(cutoff float64) *Spectrogram {
	start := 0
	for start < s.NumBins() && s.BinFrequency(start) <= cutoff {
		start++
	}
	out := &Spectrogram{FFTSize: s.FFTSize, HopSize: s.HopSize, SampleRate: s.SampleRate}
	out.Power = newSpectrogramFrames(s.NumFrames(), s.NumBins()-start)
	for i, row := range s.Power {
		copy(out.Power[i], row[start:])
	}
	return out
}

// MaxValue returns the maximum power value over all frames and bins (0 for
// an empty spectrogram).
func (s *Spectrogram) MaxValue() float64 {
	max := 0.0
	for _, row := range s.Power {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Normalize divides every value by the spectrogram maximum in place, so the
// result lies in [0, 1]. A zero spectrogram is left unchanged. This is the
// vibration-domain normalization of Section VI-C that removes the scale
// differences caused by varying user-to-VA distances.
func (s *Spectrogram) Normalize() {
	max := s.MaxValue()
	if max <= 0 {
		return
	}
	inv := 1 / max
	for _, row := range s.Power {
		for i := range row {
			row[i] *= inv
		}
	}
}

// Flatten returns all values in frame-major order.
func (s *Spectrogram) Flatten() []float64 {
	out := make([]float64, 0, s.NumFrames()*s.NumBins())
	for _, row := range s.Power {
		out = append(out, row...)
	}
	return out
}

// STFTConfig configures short-time Fourier analysis.
type STFTConfig struct {
	// FFTSize is both the analysis window length and the FFT length.
	// Must be a positive power of two.
	FFTSize int
	// HopSize is the frame advance in samples. Defaults to FFTSize/2.
	HopSize int
	// Window selects the analysis window. Defaults to Hann.
	Window WindowKind
	// SampleRate is the sampling rate of the input in Hz.
	SampleRate float64
}

func (c *STFTConfig) withDefaults() (STFTConfig, error) {
	cfg := *c
	if err := ValidateLength(cfg.FFTSize); err != nil {
		return cfg, fmt.Errorf("stft: %w", err)
	}
	if cfg.HopSize <= 0 {
		cfg.HopSize = cfg.FFTSize / 2
	}
	if cfg.Window == 0 {
		cfg.Window = WindowHann
	}
	if cfg.SampleRate <= 0 {
		return cfg, fmt.Errorf("stft: sample rate %v must be positive", cfg.SampleRate)
	}
	return cfg, nil
}

// STFT computes the power spectrogram of x. Frames that would run past the
// end of the signal are zero-padded, so even a short signal yields at least
// one frame.
//
// The analysis runs on the planned real-input FFT engine: the window, the
// transform plan, one frame buffer, and one transform scratch buffer are
// shared across all frames, and the output rows live in a single contiguous
// backing array, so the per-frame cost is pure butterfly work with no
// allocation.
func STFT(x []float64, cfg STFTConfig) (*Spectrogram, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return &Spectrogram{FFTSize: c.FFTSize, HopSize: c.HopSize, SampleRate: c.SampleRate}, nil
	}
	plan := mustPlanRealFFT(c.FFTSize)
	win := cachedWindow(c.Window, c.FFTSize)
	numFrames := 1
	if len(x) > c.FFTSize {
		numFrames = 1 + (len(x)-c.FFTSize+c.HopSize-1)/c.HopSize
	}
	power := newSpectrogramFrames(numFrames, plan.NumBins())
	frame := make([]float64, c.FFTSize)
	scratch := plan.Scratch()
	for t := 0; t < numFrames; t++ {
		start := t * c.HopSize
		n := len(x) - start
		if n > c.FFTSize {
			n = c.FFTSize
		}
		if n < 0 {
			n = 0
		}
		for i := 0; i < n; i++ {
			frame[i] = x[start+i] * win[i]
		}
		for i := n; i < c.FFTSize; i++ {
			frame[i] = 0
		}
		plan.PowerInto(power[t], frame, scratch)
	}
	return &Spectrogram{
		Power:      power,
		FFTSize:    c.FFTSize,
		HopSize:    c.HopSize,
		SampleRate: c.SampleRate,
	}, nil
}
