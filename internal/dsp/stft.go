package dsp

import "fmt"

// Spectrogram is a time-frequency power representation: Power[t][f] holds
// the squared magnitude of frequency bin f in frame t. NumBins is
// FFTSize/2+1; bin f covers frequency f*SampleRate/FFTSize.
type Spectrogram struct {
	Power      [][]float64
	FFTSize    int
	HopSize    int
	SampleRate float64
}

// NumFrames returns the number of time frames.
func (s *Spectrogram) NumFrames() int { return len(s.Power) }

// NumBins returns the number of frequency bins per frame.
func (s *Spectrogram) NumBins() int {
	if len(s.Power) == 0 {
		return 0
	}
	return len(s.Power[0])
}

// BinFrequency returns the center frequency in Hz of bin f.
func (s *Spectrogram) BinFrequency(f int) float64 {
	return BinFrequency(f, s.FFTSize, s.SampleRate)
}

// Clone returns a deep copy of the spectrogram.
func (s *Spectrogram) Clone() *Spectrogram {
	out := &Spectrogram{
		Power:      make([][]float64, len(s.Power)),
		FFTSize:    s.FFTSize,
		HopSize:    s.HopSize,
		SampleRate: s.SampleRate,
	}
	for i, row := range s.Power {
		r := make([]float64, len(row))
		copy(r, row)
		out.Power[i] = r
	}
	return out
}

// CropBelow removes all bins whose center frequency is <= cutoff Hz,
// returning a new spectrogram. The paper crops <= 5 Hz to suppress the
// accelerometer's low-frequency sensitivity artifact and body-motion
// interference (Section VI-B).
func (s *Spectrogram) CropBelow(cutoff float64) *Spectrogram {
	start := 0
	for start < s.NumBins() && s.BinFrequency(start) <= cutoff {
		start++
	}
	out := &Spectrogram{FFTSize: s.FFTSize, HopSize: s.HopSize, SampleRate: s.SampleRate}
	out.Power = make([][]float64, len(s.Power))
	for i, row := range s.Power {
		r := make([]float64, len(row)-start)
		copy(r, row[start:])
		out.Power[i] = r
	}
	return out
}

// MaxValue returns the maximum power value over all frames and bins (0 for
// an empty spectrogram).
func (s *Spectrogram) MaxValue() float64 {
	max := 0.0
	for _, row := range s.Power {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Normalize divides every value by the spectrogram maximum in place, so the
// result lies in [0, 1]. A zero spectrogram is left unchanged. This is the
// vibration-domain normalization of Section VI-C that removes the scale
// differences caused by varying user-to-VA distances.
func (s *Spectrogram) Normalize() {
	max := s.MaxValue()
	if max <= 0 {
		return
	}
	inv := 1 / max
	for _, row := range s.Power {
		for i := range row {
			row[i] *= inv
		}
	}
}

// Flatten returns all values in frame-major order.
func (s *Spectrogram) Flatten() []float64 {
	out := make([]float64, 0, s.NumFrames()*s.NumBins())
	for _, row := range s.Power {
		out = append(out, row...)
	}
	return out
}

// STFTConfig configures short-time Fourier analysis.
type STFTConfig struct {
	// FFTSize is both the analysis window length and the FFT length.
	// Must be a positive power of two.
	FFTSize int
	// HopSize is the frame advance in samples. Defaults to FFTSize/2.
	HopSize int
	// Window selects the analysis window. Defaults to Hann.
	Window WindowKind
	// SampleRate is the sampling rate of the input in Hz.
	SampleRate float64
}

func (c *STFTConfig) withDefaults() (STFTConfig, error) {
	cfg := *c
	if err := ValidateLength(cfg.FFTSize); err != nil {
		return cfg, fmt.Errorf("stft: %w", err)
	}
	if cfg.HopSize <= 0 {
		cfg.HopSize = cfg.FFTSize / 2
	}
	if cfg.Window == 0 {
		cfg.Window = WindowHann
	}
	if cfg.SampleRate <= 0 {
		return cfg, fmt.Errorf("stft: sample rate %v must be positive", cfg.SampleRate)
	}
	return cfg, nil
}

// STFT computes the power spectrogram of x. Frames that would run past the
// end of the signal are zero-padded, so even a short signal yields at least
// one frame.
func STFT(x []float64, cfg STFTConfig) (*Spectrogram, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return &Spectrogram{FFTSize: c.FFTSize, HopSize: c.HopSize, SampleRate: c.SampleRate}, nil
	}
	win := Window(c.Window, c.FFTSize)
	numFrames := 1
	if len(x) > c.FFTSize {
		numFrames = 1 + (len(x)-c.FFTSize+c.HopSize-1)/c.HopSize
	}
	half := c.FFTSize/2 + 1
	power := make([][]float64, numFrames)
	frame := make([]complex128, c.FFTSize)
	for t := 0; t < numFrames; t++ {
		start := t * c.HopSize
		for i := 0; i < c.FFTSize; i++ {
			v := 0.0
			if start+i < len(x) {
				v = x[start+i] * win[i]
			}
			frame[i] = complex(v, 0)
		}
		spec := make([]complex128, c.FFTSize)
		copy(spec, frame)
		fftRadix2(spec, false)
		row := make([]float64, half)
		for f := 0; f < half; f++ {
			re, im := real(spec[f]), imag(spec[f])
			row[f] = re*re + im*im
		}
		power[t] = row
	}
	return &Spectrogram{
		Power:      power,
		FFTSize:    c.FFTSize,
		HopSize:    c.HopSize,
		SampleRate: c.SampleRate,
	}, nil
}
