package dsp

import (
	"math"
	"testing"
)

func TestToneProperties(t *testing.T) {
	const fs = 16000.0
	x := Tone(440, 0.5, 1.0, fs)
	if len(x) != 16000 {
		t.Fatalf("len = %d", len(x))
	}
	if MaxAbs(x) > 0.5+1e-9 {
		t.Errorf("amplitude exceeded: %v", MaxAbs(x))
	}
	// RMS of a sine is A/sqrt(2).
	if math.Abs(RMS(x)-0.5/math.Sqrt2) > 1e-3 {
		t.Errorf("RMS = %v", RMS(x))
	}
}

func TestChirpSweepsFrequency(t *testing.T) {
	const fs = 16000.0
	x := Chirp(500, 2500, 1, 2, fs)
	if len(x) != 32000 {
		t.Fatalf("len = %d", len(x))
	}
	// Check instantaneous frequency via spectral peak in early vs late windows.
	early := x[:2048]
	late := x[len(x)-2048:]
	peakFreq := func(seg []float64) float64 {
		mag := MagnitudeSpectrum(seg)
		best, bestV := 0, 0.0
		for i, v := range mag {
			if v > bestV {
				best, bestV = i, v
			}
		}
		return BinFrequency(best, len(seg), fs)
	}
	fEarly, fLate := peakFreq(early), peakFreq(late)
	if fEarly > 900 {
		t.Errorf("early chirp frequency %v, want < 900", fEarly)
	}
	if fLate < 2000 {
		t.Errorf("late chirp frequency %v, want > 2000", fLate)
	}
	if len(Chirp(1, 2, 1, 0, fs)) != 0 {
		t.Error("zero duration chirp should be empty")
	}
}

func TestMixAndConcat(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{10, 20, 30}
	m := Mix(a, b)
	if len(m) != 3 || m[0] != 11 || m[1] != 22 || m[2] != 30 {
		t.Errorf("Mix = %v", m)
	}
	c := Concat(a, b)
	if len(c) != 5 || c[0] != 1 || c[4] != 30 {
		t.Errorf("Concat = %v", c)
	}
	if len(Mix()) != 0 {
		t.Error("empty Mix should be empty")
	}
}

func TestScale(t *testing.T) {
	x := []float64{1, -2}
	y := Scale(x, 3)
	if y[0] != 3 || y[1] != -6 {
		t.Errorf("Scale = %v", y)
	}
	if x[0] != 1 {
		t.Error("Scale modified input")
	}
}

func TestFadeEdges(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 1
	}
	FadeEdges(x, 10)
	if x[0] != 0 {
		t.Errorf("first sample = %v, want 0", x[0])
	}
	if x[50] != 1 {
		t.Errorf("middle sample = %v, want 1", x[50])
	}
	if x[len(x)-1] != 0 {
		t.Errorf("last sample = %v, want 0", x[len(x)-1])
	}
	short := []float64{1, 1}
	FadeEdges(short, 10) // must not panic
}

func TestDBConversions(t *testing.T) {
	if db := AmplitudeToDB(1); db != 0 {
		t.Errorf("0 dB for unit amplitude, got %v", db)
	}
	if db := AmplitudeToDB(10); math.Abs(db-20) > 1e-12 {
		t.Errorf("20 dB for 10x, got %v", db)
	}
	if db := AmplitudeToDB(0); db != -120 {
		t.Errorf("floor = %v, want -120", db)
	}
	if a := DBToAmplitude(20); math.Abs(a-10) > 1e-12 {
		t.Errorf("DBToAmplitude(20) = %v", a)
	}
	// Round trip.
	for _, a := range []float64{0.001, 0.5, 1, 42} {
		back := DBToAmplitude(AmplitudeToDB(a))
		if math.Abs(back-a) > 1e-9*a {
			t.Errorf("roundtrip %v -> %v", a, back)
		}
	}
}

func TestSPLCalibration(t *testing.T) {
	if a := SPLToAmplitude(94); math.Abs(a-1) > 1e-12 {
		t.Errorf("94 dB SPL = %v, want 1.0", a)
	}
	// 75dB is ~0.112 amplitude.
	a75 := SPLToAmplitude(75)
	if math.Abs(a75-0.1122) > 0.001 {
		t.Errorf("75 dB SPL = %v", a75)
	}
	// Louder SPL => larger amplitude.
	if SPLToAmplitude(85) <= SPLToAmplitude(65) {
		t.Error("SPL mapping not monotonic")
	}
	if spl := AmplitudeToSPL(SPLToAmplitude(65)); math.Abs(spl-65) > 1e-9 {
		t.Errorf("SPL roundtrip = %v", spl)
	}
}

func TestNormalizeRMS(t *testing.T) {
	x := Tone(100, 2, 0.1, 1000)
	y, err := NormalizeRMS(x, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(RMS(y)-0.25) > 1e-9 {
		t.Errorf("RMS after normalize = %v", RMS(y))
	}
	silent := make([]float64, 10)
	z, err := NormalizeRMS(silent, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if RMS(z) != 0 {
		t.Error("silent signal should remain silent")
	}
	if _, err := NormalizeRMS(x, -1); err == nil {
		t.Error("negative target should error")
	}
}

func TestResampleDownUp(t *testing.T) {
	const fs = 16000.0
	x := Tone(50, 1, 0.5, fs)
	down, err := Resample(x, fs, 200)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := int(0.5 * 200)
	if math.Abs(float64(len(down)-wantLen)) > 2 {
		t.Errorf("downsampled len = %d, want about %d", len(down), wantLen)
	}
	// A 50Hz tone is below the new Nyquist (100Hz) and should survive.
	mag := MagnitudeSpectrum(down)
	best, bestV := 0, 0.0
	for i, v := range mag {
		if v > bestV {
			best, bestV = i, v
		}
	}
	gotFreq := BinFrequency(best, len(down), 200)
	if math.Abs(gotFreq-50) > 5 {
		t.Errorf("peak at %vHz, want 50Hz", gotFreq)
	}
}

func TestResampleAliasing(t *testing.T) {
	const fs = 16000.0
	// A 150Hz tone sampled at 200Hz aliases to |150-200| = 50Hz.
	x := Tone(150, 1, 1.0, fs)
	down, err := Resample(x, fs, 200)
	if err != nil {
		t.Fatal(err)
	}
	mag := MagnitudeSpectrum(down)
	best, bestV := 0, 0.0
	for i, v := range mag {
		if v > bestV {
			best, bestV = i, v
		}
	}
	gotFreq := BinFrequency(best, len(down), 200)
	if math.Abs(gotFreq-50) > 5 {
		t.Errorf("aliased peak at %vHz, want 50Hz", gotFreq)
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample([]float64{1}, 0, 100); err == nil {
		t.Error("zero input rate should error")
	}
	if _, err := Resample([]float64{1}, 100, -1); err == nil {
		t.Error("negative output rate should error")
	}
	out, err := Resample(nil, 100, 50)
	if err != nil || out != nil {
		t.Errorf("empty input: %v, %v", out, err)
	}
}

func TestDecimateSampleHold(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	out, err := DecimateSampleHold(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 3, 6}
	if len(out) != len(want) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := DecimateSampleHold(x, 0); err == nil {
		t.Error("zero factor should error")
	}
}
