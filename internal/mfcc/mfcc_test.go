package mfcc

import (
	"math"
	"testing"

	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.FrameLength != 0.025 || cfg.FrameShift != 0.010 {
		t.Error("frame geometry should be 25ms/10ms (Section V-B)")
	}
	if cfg.NumFilters != 40 || cfg.NumCoeffs != 14 {
		t.Error("want 40 filterbank channels and 14 coefficients")
	}
	if cfg.HighHz != 900 {
		t.Error("band should top out at 900Hz for thru-barrier robustness")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.FrameLength = 0 },
		func(c *Config) { c.FrameShift = -1 },
		func(c *Config) { c.NumFilters = 0 },
		func(c *Config) { c.NumCoeffs = 0 },
		func(c *Config) { c.NumCoeffs = 100 },
		func(c *Config) { c.HighHz = 0 },
		func(c *Config) { c.HighHz = 9000 },
		func(c *Config) { c.PreEmphasis = 1.5 },
		func(c *Config) { c.PreEmphasis = -0.1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestExtractorGeometry(t *testing.T) {
	e, err := NewExtractor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.FrameLength() != 400 {
		t.Errorf("frame length = %d, want 400 (25ms at 16kHz)", e.FrameLength())
	}
	if e.FrameShift() != 160 {
		t.Errorf("frame shift = %d, want 160 (10ms at 16kHz)", e.FrameShift())
	}
}

func TestExtractFrameCountAndShape(t *testing.T) {
	e, err := NewExtractor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	audio := dsp.Tone(300, 0.1, 1.0, 16000) // 16000 samples
	frames, err := e.Extract(audio)
	if err != nil {
		t.Fatal(err)
	}
	want := e.NumFrames(16000) // 1 + (16000-400)/160 = 98
	if len(frames) != want || want != 98 {
		t.Errorf("frames = %d, NumFrames = %d, want 98", len(frames), want)
	}
	for i, f := range frames {
		if len(f) != 14 {
			t.Fatalf("frame %d has %d coeffs", i, len(f))
		}
		for j, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("frame %d coeff %d not finite", i, j)
			}
		}
	}
}

func TestExtractShortSignal(t *testing.T) {
	e, err := NewExtractor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	frames, err := e.Extract(make([]float64, 100))
	if err != nil {
		t.Fatal(err)
	}
	if frames != nil {
		t.Errorf("short signal produced %d frames", len(frames))
	}
}

func TestExtractSilenceIsFinite(t *testing.T) {
	e, err := NewExtractor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	frames, err := e.Extract(make([]float64, 4000))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		for _, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("silence produced non-finite MFCC")
			}
		}
	}
}

func TestMFCCDiscriminatesPhonemeClasses(t *testing.T) {
	// The whole point of MFCC features: different phonemes produce
	// separable vectors, same phonemes cluster.
	e, err := NewExtractor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	meanVec := func(sym string) []float64 {
		seg, err := synth.PhonemeDur(sym, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		frames, err := e.Extract(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) == 0 {
			t.Fatalf("%s produced no frames", sym)
		}
		mean := make([]float64, len(frames[0]))
		for _, f := range frames {
			for i, v := range f {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(len(frames))
		}
		return mean
	}
	dist := func(a, b []float64) float64 {
		sum := 0.0
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	ae1 := meanVec("ae")
	ae2 := meanVec("ae")
	s1 := meanVec("s")
	if dist(ae1, s1) < 2*dist(ae1, ae2) {
		t.Errorf("vowel/fricative distance %v not >> same-phoneme distance %v",
			dist(ae1, s1), dist(ae1, ae2))
	}
}

func TestExtractFrame(t *testing.T) {
	e, err := NewExtractor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vec, err := e.ExtractFrame(dsp.Tone(300, 0.1, 0.05, 16000))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 14 {
		t.Errorf("coeffs = %d", len(vec))
	}
	if _, err := e.ExtractFrame(make([]float64, 10)); err == nil {
		t.Error("short frame should error")
	}
}
