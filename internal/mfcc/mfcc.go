// Package mfcc extracts Mel-frequency cepstral coefficients for the
// phoneme detector, following the configuration of Section V-B: 25 ms
// frames shifted by 10 ms, 40 mel filterbank channels restricted to
// 0-900 Hz (so detection still works on thru-barrier sounds that lack
// high-frequency energy), and 14 cepstral coefficients per frame.
package mfcc

import (
	"fmt"
	"math"

	"vibguard/internal/dsp"
)

// Config parameterizes MFCC extraction.
type Config struct {
	// SampleRate of the input audio in Hz.
	SampleRate float64
	// FrameLength and FrameShift in seconds.
	FrameLength, FrameShift float64
	// NumFilters is the number of mel filterbank channels.
	NumFilters int
	// NumCoeffs is the number of cepstral coefficients kept per frame.
	NumCoeffs int
	// LowHz and HighHz bound the analyzed band.
	LowHz, HighHz float64
	// PreEmphasis coefficient (0 disables).
	PreEmphasis float64
}

// DefaultConfig returns the paper's configuration for 16 kHz audio.
func DefaultConfig() Config {
	return Config{
		SampleRate:  16000,
		FrameLength: 0.025,
		FrameShift:  0.010,
		NumFilters:  40,
		NumCoeffs:   14,
		LowHz:       0,
		HighHz:      900,
		PreEmphasis: 0.97,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("mfcc: sample rate %v must be positive", c.SampleRate)
	}
	if c.FrameLength <= 0 || c.FrameShift <= 0 {
		return fmt.Errorf("mfcc: frame length %v and shift %v must be positive", c.FrameLength, c.FrameShift)
	}
	if c.NumFilters <= 0 || c.NumCoeffs <= 0 {
		return fmt.Errorf("mfcc: filters %d and coeffs %d must be positive", c.NumFilters, c.NumCoeffs)
	}
	if c.NumCoeffs > c.NumFilters {
		return fmt.Errorf("mfcc: coeffs %d exceed filters %d", c.NumCoeffs, c.NumFilters)
	}
	if c.HighHz <= c.LowHz || c.HighHz > c.SampleRate/2 {
		return fmt.Errorf("mfcc: band [%v, %v] invalid", c.LowHz, c.HighHz)
	}
	if c.PreEmphasis < 0 || c.PreEmphasis >= 1 {
		return fmt.Errorf("mfcc: pre-emphasis %v outside [0, 1)", c.PreEmphasis)
	}
	return nil
}

// Extractor computes MFCC frame sequences. The extractor itself is
// immutable after construction (the FFT plan and filterbank are shared,
// read-only state), so one extractor may serve concurrent goroutines; all
// mutable scratch lives on the stack of each Extract call.
type Extractor struct {
	cfg      Config
	frameLen int
	shiftLen int
	fftSize  int
	window   []float64
	bank     *dsp.MelFilterbank
	plan     *dsp.RealFFTPlan
}

// NewExtractor builds an extractor for the given configuration.
func NewExtractor(cfg Config) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	frameLen := int(cfg.FrameLength * cfg.SampleRate)
	shiftLen := int(cfg.FrameShift * cfg.SampleRate)
	fftSize := dsp.NextPow2(frameLen)
	bank, err := dsp.NewMelFilterbank(cfg.NumFilters, fftSize, cfg.SampleRate, cfg.LowHz, cfg.HighHz)
	if err != nil {
		return nil, fmt.Errorf("mfcc: %w", err)
	}
	plan, err := dsp.PlanRealFFT(fftSize)
	if err != nil {
		return nil, fmt.Errorf("mfcc: %w", err)
	}
	return &Extractor{
		cfg:      cfg,
		frameLen: frameLen,
		shiftLen: shiftLen,
		fftSize:  fftSize,
		window:   dsp.Window(dsp.WindowHamming, frameLen),
		bank:     bank,
		plan:     plan,
	}, nil
}

// Config returns the extractor configuration.
func (e *Extractor) Config() Config { return e.cfg }

// FrameLength returns the frame length in samples (400 at 16 kHz/25 ms).
func (e *Extractor) FrameLength() int { return e.frameLen }

// FrameShift returns the frame shift in samples (160 at 16 kHz/10 ms).
func (e *Extractor) FrameShift() int { return e.shiftLen }

// NumFrames returns how many MFCC frames Extract will produce for n input
// samples.
func (e *Extractor) NumFrames(n int) int {
	if n < e.frameLen {
		return 0
	}
	return 1 + (n-e.frameLen)/e.shiftLen
}

// Extract computes the MFCC sequence of an audio signal: one vector of
// NumCoeffs coefficients per frame. Signals shorter than one frame yield
// an empty (nil) result.
func (e *Extractor) Extract(audio []float64) ([][]float64, error) {
	if len(audio) < e.frameLen {
		return nil, nil
	}
	x := audio
	if e.cfg.PreEmphasis > 0 {
		x = dsp.PreEmphasis(audio, e.cfg.PreEmphasis)
	}
	numFrames := e.NumFrames(len(x))
	out := make([][]float64, 0, numFrames)
	// All per-frame scratch is hoisted out of the loop and reused: the
	// planned transform writes into the same power buffer every frame, so
	// the only per-frame allocation is the returned coefficient vector.
	buf := make([]float64, e.fftSize)
	scratch := e.plan.Scratch()
	power := make([]float64, e.plan.NumBins())
	energies := make([]float64, e.bank.NumChannels())
	logE := make([]float64, e.bank.NumChannels())
	for idx := 0; idx < numFrames; idx++ {
		start := idx * e.shiftLen
		for i := 0; i < e.fftSize; i++ {
			if i < e.frameLen {
				buf[i] = x[start+i] * e.window[i]
			} else {
				buf[i] = 0
			}
		}
		e.plan.PowerInto(power, buf, scratch)
		if _, err := e.bank.ApplyInto(energies, power); err != nil {
			return nil, fmt.Errorf("mfcc: %w", err)
		}
		for i, v := range energies {
			logE[i] = math.Log(v + 1e-12)
		}
		out = append(out, dsp.DCT2(logE, e.cfg.NumCoeffs))
	}
	return out, nil
}

// ExtractFrame computes the MFCC vector of exactly one frame of audio
// (len >= FrameLength; extra samples are ignored).
func (e *Extractor) ExtractFrame(frame []float64) ([]float64, error) {
	if len(frame) < e.frameLen {
		return nil, fmt.Errorf("mfcc: frame has %d samples, want >= %d", len(frame), e.frameLen)
	}
	seq, err := e.Extract(frame[:e.frameLen])
	if err != nil {
		return nil, err
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("mfcc: no frame produced")
	}
	return seq[0], nil
}
