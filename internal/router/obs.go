package router

import "vibguard/internal/obs"

// Router instrumentation, in the process-wide registry next to the serve
// and syncnet metrics (DESIGN.md section 10). Counters split routing
// outcomes (routed / completed / failed / node_lost / rejected) from
// health-probe activity and up/down transitions; the gauge tracks the
// registered fleet size.
var (
	metSessionsRouted    = obs.Default().Counter("router.sessions.routed")
	metSessionsCompleted = obs.Default().Counter("router.sessions.completed")
	metSessionsFailed    = obs.Default().Counter("router.sessions.failed")
	metSessionsNodeLost  = obs.Default().Counter("router.sessions.node_lost")
	metSessionsResubmit  = obs.Default().Counter("router.sessions.resubmitted")
	metSessionsRejected  = obs.Default().Counter("router.sessions.rejected")
	metProbes            = obs.Default().Counter("router.probes.total")
	metProbeFailures     = obs.Default().Counter("router.probes.failed")
	metNodeUp            = obs.Default().Counter("router.node.transitions_up")
	metNodeDown          = obs.Default().Counter("router.node.transitions_down")
	gaugeNodes           = obs.Default().Gauge("router.nodes.registered")
)
