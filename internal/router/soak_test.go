package router_test

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"vibguard/internal/obs"
	"vibguard/internal/router"
	"vibguard/internal/serve"
)

// routerSoakSessions is the 3-node soak size: every session crosses both
// hops (client → router front-door → node) simultaneously with the
// others, under -race in CI.
const routerSoakSessions = 48

// routerFleet mirrors the serve soak's wearable fleet: half the agents
// heard a legitimate command, half a thru-barrier replay. Each session
// also carries a user id, so the router spreads the fleet's tenants over
// the ring.
type routerFleet struct {
	addrs        []string
	expectAttack []bool
	va           [][]float64
}

func newRouterFleet(t *testing.T, wearables int) *routerFleet {
	t.Helper()
	sc := scenarioFor(t)
	f := &routerFleet{}
	for j := 0; j < wearables; j++ {
		attack := j%2 == 1
		wear, va := sc.legitWear, sc.legitVA
		if attack {
			wear, va = sc.attackWear, sc.attackVA
		}
		agent := newAgent(t, wear)
		f.addrs = append(f.addrs, agent.Addr())
		f.expectAttack = append(f.expectAttack, attack)
		f.va = append(f.va, va)
	}
	return f
}

// session returns the seeded request and expected verdict of soak
// session i. Sixteen users share the fleet, so several users multiplex
// onto each node and each front-door connection.
func (f *routerFleet) session(i int) (serve.Request, bool) {
	j := i % len(f.addrs)
	req := request(userName(i), f.addrs[j], f.va[j], uint64(i))
	return req, f.expectAttack[j]
}

func userName(i int) string { return "soak-user-" + string(rune('a'+i%16)) }

// TestSoakThreeNodeCluster is the race-gated cluster soak: 48
// simultaneous sessions from 4 multiplexed front-door clients through the
// router onto 3 nodes, against an 8-wearable fleet. The single-node
// soak's accounting contract holds across the extra hop — none lost, none
// double-assigned (a duplicate stream response kills its connection, so
// it would surface as lost sessions), zero shed with the queues sized for
// the burst — and every healthy node's verdict is bit-identical to a
// single-node run of the same seeded session, router or no router.
func TestSoakThreeNodeCluster(t *testing.T) {
	before := obs.Default().Snapshot()
	fleet := newRouterFleet(t, 8)
	cl := newCluster(t, 3, nodeConfig{workers: 4, queueDepth: routerSoakSessions}, router.Config{
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second, FailAfter: 3,
	})
	addr, err := cl.r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// 4 clients, 12 sessions each: the front door multiplexes many
	// concurrent sessions per TCP connection.
	const clients = 4
	pool := make([]*serve.Client, clients)
	for c := range pool {
		pool[c], err = serve.DialServer(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer func(c *serve.Client) { _ = c.Close() }(pool[c])
	}

	type outcome struct {
		attack bool
		raw    uint64 // score bits, for the bit-identical cross-check
		err    error
	}
	results := make([]outcome, routerSoakSessions)
	var wg sync.WaitGroup
	for i := 0; i < routerSoakSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := fleet.session(i)
			v, err := pool[i%clients].Inspect(req)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			results[i] = outcome{attack: v.Attack, raw: math.Float64bits(v.Score)}
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		_, expectAttack := fleet.session(i)
		if res.err != nil {
			t.Errorf("session %d lost: %v", i, res.err)
			continue
		}
		score := math.Float64frombits(res.raw)
		if math.IsNaN(score) || math.IsInf(score, 0) {
			t.Errorf("session %d: non-finite score %v", i, score)
		}
		if res.attack != expectAttack {
			t.Errorf("session %d: attack=%v (score %v), want %v", i, res.attack, score, expectAttack)
		}
	}

	// Bit-identical cross-check: replay every seeded session against a
	// standalone single node (no router, direct Submit) and compare score
	// bits. Verdicts are a pure function of (recordings, RNGSeed), so the
	// node a session landed on must not matter.
	sc := scenarioFor(t)
	solo, err := serve.NewServer(serve.Config{
		NewDefense:     sc.defenseFactory(),
		Workers:        4,
		QueueDepth:     routerSoakSessions,
		SessionTimeout: time.Minute,
		Seed:           routerSeed,
		RetryPolicy:    fastRetries(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = solo.Shutdown(ctx)
	}()
	for i, res := range results {
		if res.err != nil {
			continue
		}
		req, _ := fleet.session(i)
		v, err := solo.Submit(context.Background(), req)
		if err != nil {
			t.Fatalf("single-node replay of session %d: %v", i, err)
		}
		if got := math.Float64bits(v.Score); got != res.raw {
			t.Errorf("session %d: cluster score bits %#x != single-node %#x — verdict depends on placement",
				i, res.raw, got)
		}
		if v.Attack != res.attack {
			t.Errorf("session %d: cluster attack=%v, single-node attack=%v", i, res.attack, v.Attack)
		}
	}

	after := obs.Default().Snapshot()
	if got := after.Counters["router.sessions.routed"] - before.Counters["router.sessions.routed"]; got < routerSoakSessions {
		t.Errorf("routed counter rose by %d, want >= %d", got, routerSoakSessions)
	}
	if got := after.Counters["router.sessions.completed"] - before.Counters["router.sessions.completed"]; got < routerSoakSessions {
		t.Errorf("completed counter rose by %d, want >= %d", got, routerSoakSessions)
	}
	if got := after.Counters["router.sessions.rejected"] - before.Counters["router.sessions.rejected"]; got != 0 {
		t.Errorf("queues sized for the burst, but %d sessions rejected at the router", got)
	}
}
