package router_test

import (
	"fmt"
	"math/rand"
	"testing"

	"vibguard/internal/router"
)

// TestRingDeterministicLookup pins that ownership is a pure function of
// the (node set, key) pair: two independently built rings agree on every
// key, regardless of insertion order.
func TestRingDeterministicLookup(t *testing.T) {
	a := router.NewRing(64)
	b := router.NewRing(64)
	nodes := []string{"alpha", "beta", "gamma", "delta"}
	for _, n := range nodes {
		a.Add(n)
	}
	for i := len(nodes) - 1; i >= 0; i-- {
		b.Add(nodes[i])
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user-%d", i)
		if got, want := a.Lookup(key), b.Lookup(key); got != want {
			t.Fatalf("key %q: insertion order changed owner %q vs %q", key, got, want)
		}
	}
}

// TestRingSuccessorsStartWithOwner pins the failover walk contract: the
// first successor is the owner, every registered node appears exactly
// once, and the walk is deterministic per key.
func TestRingSuccessorsStartWithOwner(t *testing.T) {
	r := router.NewRing(32)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("w-%d", i)
		succ := r.Successors(key)
		if len(succ) != 5 {
			t.Fatalf("key %q: %d successors, want 5", key, len(succ))
		}
		if succ[0] != r.Lookup(key) {
			t.Fatalf("key %q: walk starts at %q, owner is %q", key, succ[0], r.Lookup(key))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("key %q: node %q repeated in walk", key, n)
			}
			seen[n] = true
		}
	}
}

// TestRingConsistencyUnderRemoval is the ring-consistency property test:
// across 1000 seeded trials with random node sets, removing one node
// remaps ONLY that node's keys — every key owned by a survivor keeps its
// owner (no shuffling among survivors), and every orphaned key lands on
// some survivor.
func TestRingConsistencyUnderRemoval(t *testing.T) {
	const trials = 1000
	const keysPerTrial = 100
	rng := rand.New(rand.NewSource(routerSeed))
	for trial := 0; trial < trials; trial++ {
		nodeCount := 2 + rng.Intn(11)    // 2..12 nodes
		vnodes := 1 << (3 + rng.Intn(4)) // 8..64 virtual nodes
		r := router.NewRing(vnodes)
		nodes := make([]string, nodeCount)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("t%d-node%d", trial, i)
			r.Add(nodes[i])
		}

		keys := make([]string, keysPerTrial)
		before := make([]string, keysPerTrial)
		for i := range keys {
			keys[i] = fmt.Sprintf("t%d-user%d", trial, rng.Int63())
			before[i] = r.Lookup(keys[i])
			if before[i] == "" {
				t.Fatalf("trial %d: empty owner with %d nodes", trial, nodeCount)
			}
		}

		removed := nodes[rng.Intn(nodeCount)]
		r.Remove(removed)
		if r.Len() != nodeCount-1 {
			t.Fatalf("trial %d: ring has %d nodes after removal, want %d", trial, r.Len(), nodeCount-1)
		}
		for i, key := range keys {
			after := r.Lookup(key)
			if before[i] == removed {
				if after == removed || after == "" {
					t.Fatalf("trial %d: orphaned key %q still maps to %q", trial, key, after)
				}
				continue
			}
			if after != before[i] {
				t.Fatalf("trial %d: removing %q shuffled survivor key %q from %q to %q",
					trial, removed, key, before[i], after)
			}
		}

		// Re-adding the removed node restores the original assignment
		// exactly — ownership is a pure function of the node set.
		r.Add(removed)
		for i, key := range keys {
			if got := r.Lookup(key); got != before[i] {
				t.Fatalf("trial %d: re-adding %q did not restore key %q (got %q, want %q)",
					trial, removed, key, got, before[i])
			}
		}
	}
}

// TestRingBalance sanity-checks virtual-node spreading: with 64 vnodes
// and 4 nodes, no node owns more than half of 10k random keys.
func TestRingBalance(t *testing.T) {
	r := router.NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	for node, c := range counts {
		if c > 5000 {
			t.Errorf("node %s owns %d/10000 keys — ring badly unbalanced", node, c)
		}
		if c == 0 {
			t.Errorf("node %s owns no keys", node)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d nodes own keys, want 4", len(counts))
	}
}
