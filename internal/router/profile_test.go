package router_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"vibguard/internal/router"
	"vibguard/internal/serve"
)

// TestRouteKeyLegacyFallback pins the routing-key contract: UserID when
// present, the wearable address for legacy anonymous single-wearable
// sessions — and the fallback never consults the multi-wearable extras,
// because sessions carrying extras are rejected before routing.
func TestRouteKeyLegacyFallback(t *testing.T) {
	cases := []struct {
		name string
		req  serve.Request
		want string
	}{
		{"user id wins", serve.Request{UserID: "alice", WearableAddr: "watch:1"}, "alice"},
		{"legacy fallback", serve.Request{WearableAddr: "watch:1"}, "watch:1"},
		{"user id wins over extras",
			serve.Request{UserID: "alice", WearableAddr: "watch:1",
				WearableAddrs: []string{"earbud:2"}}, "alice"},
		{"empty session", serve.Request{}, ""},
	}
	for _, tc := range cases {
		if got := router.RouteKey(tc.req); got != tc.want {
			t.Errorf("%s: RouteKey = %q, want %q", tc.name, got, tc.want)
		}
	}

	// End to end: a legacy anonymous session still routes — by wearable
	// address — and produces a verdict.
	sc := scenarioFor(t)
	watch := newAgent(t, sc.legitWear)
	cl := newCluster(t, 3, nodeConfig{}, router.Config{})
	req := request("", watch.Addr(), sc.legitVA, 1)
	wantNode, err := cl.r.NodeFor(watch.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if gotNode, _ := cl.r.NodeFor(router.RouteKey(req)); gotNode != wantNode {
		t.Fatalf("anonymous session routes to %s, want the wearable-address owner %s",
			gotNode, wantNode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := cl.r.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Fatal("legitimate anonymous session flagged as attack")
	}
}

// TestRouterUserIDRequired pins the other half of the contract: a
// profile-backed session (extra wearable addresses) with no UserID is
// rejected with the typed sentinel before any node is picked — batch and
// streamed alike.
func TestRouterUserIDRequired(t *testing.T) {
	sc := scenarioFor(t)
	watch := newAgent(t, sc.legitWear)
	earbud := newAgent(t, sc.legitWear)
	cl := newCluster(t, 1, nodeConfig{}, router.Config{})

	req := request("", watch.Addr(), sc.legitVA, 2)
	req.WearableAddrs = []string{earbud.Addr()}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cl.r.Submit(ctx, req); !errors.Is(err, serve.ErrUserIDRequired) {
		t.Fatalf("Submit err %v, want ErrUserIDRequired", err)
	}

	chunks := make(chan []float64)
	close(chunks)
	if _, err := cl.r.SubmitStream(ctx, req, chunks); !errors.Is(err, serve.ErrUserIDRequired) {
		t.Fatalf("SubmitStream err %v, want ErrUserIDRequired", err)
	}

	// The same multi-wearable session with an identity goes through.
	req.UserID = "alice"
	v, err := cl.r.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Fatal("legitimate fused session flagged as attack")
	}
}

// TestRelayStreamAbortNoLeak pins the relay-leak fix: a streamed session
// abandoned mid-flight for a reason other than the connection dying (a
// canceled caller context) must deregister its stream id from the node
// client's mux table, and the shared node connection must keep serving.
func TestRelayStreamAbortNoLeak(t *testing.T) {
	sc := scenarioFor(t)
	watch := newAgent(t, sc.legitWear)
	cl := newCluster(t, 1, nodeConfig{}, router.Config{})
	id := cl.ids[0]

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chunks := make(chan []float64, 1)
	chunks <- sc.legitVA[:4096] // a chunk in flight, stream held open

	errCh := make(chan error, 1)
	go func() {
		req := request("alice", watch.Addr(), nil, 3)
		_, err := cl.r.SubmitStream(ctx, req, chunks)
		errCh <- err
	}()

	// The relay is parked in its select with the stream registered.
	waitFor(t, 5*time.Second, func() bool { return cl.r.NodeStreams(id) == 1 })

	cancel()
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitStream err %v, want context.Canceled", err)
	}
	if got := cl.r.NodeStreams(id); got != 0 {
		t.Fatalf("node has %d pending streams after abort, want 0 — stream id leaked", got)
	}

	// The node connection survived the server's late terminal frame for
	// the aborted stream: a full session over the same client still works.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	v, err := cl.r.Submit(ctx2, request("alice", watch.Addr(), sc.legitVA, 4))
	if err != nil {
		t.Fatalf("node connection unusable after abort: %v", err)
	}
	if v.Attack {
		t.Fatal("legitimate session flagged after abort")
	}
	if got := cl.r.NodeStreams(id); got != 0 {
		t.Fatalf("node has %d pending streams after follow-up, want 0", got)
	}
}
