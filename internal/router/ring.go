// Package router is the fleet front-door: it consistent-hashes sessions
// by wearable/user id onto N registered serve nodes, health-checks every
// node with periodic protocol-level probes (typed up/down transitions),
// propagates typed sheds across hops (ErrOverloaded/ErrDraining from a
// node reach the router's client wrapped in a serve.NodeError carrying
// the node identity), and rebalances drain-aware: a draining node leaves
// the ring for new sessions while its in-flight ones finish.
//
// Both hops — client→router and router→node — speak the framed binary
// protocol of internal/serve (wire.go), with connection multiplexing, so
// the router holds exactly one TCP connection per healthy node no matter
// how many sessions it carries.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Each node
// contributes vnodes points placed by hashing "id#i"; a key is owned by
// the first point clockwise from the key's own hash. Removing a node
// removes only its points, so only keys owned by the removed node remap —
// the survivors' keys never shuffle among themselves (pinned by the
// 1k-trial property test).
//
// Ring is not safe for concurrent use; Router guards it with its lock.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates an empty ring with the given virtual-node count per
// node (values < 1 become 64, a good balance/size tradeoff for fleets of
// tens of nodes).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// hashKey positions a key (or virtual-node label) on the ring: FNV-1a
// finished with the SplitMix64 finalizer (the repo's standard mixer, cf.
// faults.Mix). FNV alone clusters short sequential labels like "n0#17" on
// one arc; the finalizer decorrelates them. Deterministic across
// processes and Go versions, so routing stays stable across a fleet of
// independently restarted routers.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Add places a node's virtual points on the ring. Adding a present node
// is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash: hashKey(node + "#" + strconv.Itoa(i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the node owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.at(key)].node
}

// Successors returns the owner of key followed by each remaining node in
// ring order — the failover walk for down nodes: the owner first, then
// deterministic, key-dependent alternates.
func (r *Ring) Successors(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]struct{}, len(r.nodes))
	start := r.at(key)
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// at finds the index of the first point clockwise from key's hash.
func (r *Ring) at(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
