package router_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vibguard/internal/acoustics"
	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/phoneme"
	"vibguard/internal/router"
	"vibguard/internal/segment"
	"vibguard/internal/selection"
	"vibguard/internal/serve"
	"vibguard/internal/syncnet"
)

// The router suite drives the full two-hop stack — client → router
// front-door (TCP) → serve node (TCP) → worker → syncnet wearable fetch
// (TCP) → Inspect — under the race detector, with chaos injected at the
// router↔node hop via internal/faults. All randomness is pinned
// (per-session via Request.RNGSeed), so every test is deterministic under
// arbitrary scheduling, and verdicts are bit-comparable to a single-node
// run of the same seeded scenario.

const routerSeed = 2028

// routerScenario holds one synthesized command heard through both
// acoustic paths, built once and shared read-only by every test.
type routerScenario struct {
	spans      []segment.Span
	legitVA    []float64
	legitWear  []float64
	attackVA   []float64
	attackWear []float64
}

var (
	scnOnce sync.Once
	scn     *routerScenario
	scnErr  error
)

func scenarioFor(t *testing.T) *routerScenario {
	t.Helper()
	scnOnce.Do(func() { scn, scnErr = buildRouterScenario() })
	if scnErr != nil {
		t.Fatal(scnErr)
	}
	return scn
}

func buildRouterScenario() (*routerScenario, error) {
	rng := rand.New(rand.NewSource(routerSeed))
	synth, err := phoneme.NewSynthesizer(phoneme.NewStudioVoicePool(1, routerSeed)[0])
	if err != nil {
		return nil, err
	}
	utt, err := synth.Synthesize(phoneme.Commands()[1])
	if err != nil {
		return nil, err
	}
	spans := segment.OracleSpans(utt, selection.CanonicalSelected())
	room, err := acoustics.RoomByName("A")
	if err != nil {
		return nil, err
	}
	transmit := func(spl, dist float64, barrier bool) ([]float64, error) {
		return room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: barrier, SampleRate: 16000,
		}, rng)
	}
	legitVA, err := transmit(72, 1.5, false)
	if err != nil {
		return nil, err
	}
	legitNear, err := transmit(72, 0.3, false)
	if err != nil {
		return nil, err
	}
	attackVA, err := transmit(80, 2.1, true)
	if err != nil {
		return nil, err
	}
	attackNear, err := transmit(80, 2.4, true)
	if err != nil {
		return nil, err
	}
	return &routerScenario{
		spans:      spans,
		legitVA:    legitVA,
		legitWear:  syncnet.SimulateNetworkDelay(legitNear, 0.1, 16000, rng),
		attackVA:   attackVA,
		attackWear: syncnet.SimulateNetworkDelay(attackNear, 0.08, 16000, rng),
	}, nil
}

// defenseFactory builds one worker's private Defense from the scenario's
// oracle spans (cheap, no BRNN training).
func (sc *routerScenario) defenseFactory() func() (*core.Defense, error) {
	return func() (*core.Defense, error) {
		clone := *device.NewFossilGen5()
		return core.NewDefense(core.DefaultConfig(&clone, &detector.StaticSegmenter{Spans: sc.spans}))
	}
}

// newAgent starts a wearable agent serving a fixed recording.
func newAgent(t *testing.T, rec []float64) *syncnet.WearableAgent {
	t.Helper()
	agent, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return rec, nil })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	return agent
}

// gatedAgent starts a wearable agent whose RecordFunc blocks until
// release closes, so in-flight sessions stay in flight on demand.
func gatedAgent(t *testing.T, rec []float64) (addr string, calls *atomic.Int64, release chan struct{}) {
	t.Helper()
	calls = new(atomic.Int64)
	release = make(chan struct{})
	agent, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		calls.Add(1)
		<-release
		return rec, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	return agent.Addr(), calls, release
}

// fastRetries keeps the wearable-fetch transport snappy in tests.
func fastRetries() syncnet.RetryPolicy {
	return syncnet.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2}
}

// cluster is a router fronting n live serve nodes, all with registered
// cleanup.
type cluster struct {
	r     *router.Router
	nodes []*serve.Server
	ids   []string
	addrs []string
}

// nodeConfig is one chaos knob set for newCluster.
type nodeConfig struct {
	workers    int
	queueDepth int
}

// newCluster boots n serve nodes and a router with all of them
// registered (ids "node0".."nodeN-1"). rcfg.Dial routes the router→node
// hop, so tests can interpose fault injectors per node address.
func newCluster(t *testing.T, n int, nc nodeConfig, rcfg router.Config) *cluster {
	t.Helper()
	sc := scenarioFor(t)
	if nc.workers == 0 {
		nc.workers = 2
	}
	if nc.queueDepth == 0 {
		nc.queueDepth = 64
	}
	cl := &cluster{r: router.New(rcfg)}
	for i := 0; i < n; i++ {
		srv, err := serve.NewServer(serve.Config{
			NewDefense:     sc.defenseFactory(),
			Workers:        nc.workers,
			QueueDepth:     nc.queueDepth,
			SessionTimeout: time.Minute,
			Seed:           routerSeed,
			RetryPolicy:    fastRetries(),
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("node%d", i)
		if err := cl.r.Register(id, addr); err != nil {
			t.Fatal(err)
		}
		cl.nodes = append(cl.nodes, srv)
		cl.ids = append(cl.ids, id)
		cl.addrs = append(cl.addrs, addr)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = cl.r.Shutdown(ctx)
		for _, srv := range cl.nodes {
			_ = srv.Shutdown(ctx)
		}
	})
	return cl
}

// request builds the seeded session i against a wearable address. The
// per-session RNGSeed is a pure function of (routerSeed, i), so the same
// i produces bit-identical verdicts on any node — or with no router at
// all.
func request(user string, wearAddr string, va []float64, i uint64) serve.Request {
	return serve.Request{
		UserID:       user,
		WearableAddr: wearAddr,
		VARecording:  va,
		RNGSeed:      serve.SessionSeed(routerSeed, i),
	}
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, limit time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
