package router_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vibguard/internal/core"
	"vibguard/internal/faults"
	"vibguard/internal/router"
	"vibguard/internal/serve"
)

// The multi-node chaos harness: internal/faults dial routing extended to
// the router↔node hop. Node death mid-session, a partitioned link, a
// rolling drain under live traffic, and shed propagation each must
// degrade to the documented typed error — never a hang, never a lost or
// double-assigned verdict — while healthy nodes keep completing sessions.

// hopRouter routes the router→node dial per node address, so each node's
// link can carry its own faults.NetSpec. Addresses without an injector
// dial cleanly. It is the router-hop twin of the serve fault matrix's
// per-wearable faultRouter.
type hopRouter struct {
	mu    sync.RWMutex
	dials map[string]router.DialFunc
}

func newHopRouter() *hopRouter {
	return &hopRouter{dials: make(map[string]router.DialFunc)}
}

// fault wraps addr's dials with spec.
func (h *hopRouter) fault(addr string, spec faults.NetSpec) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dials[addr] = faults.NewInjector(spec).WrapDial(nil)
}

// clear restores clean dialing for addr.
func (h *hopRouter) clear(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.dials, addr)
}

func (h *hopRouter) dialFunc() router.DialFunc {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		h.mu.RLock()
		dial := h.dials[addr]
		h.mu.RUnlock()
		if dial == nil {
			return net.DialTimeout("tcp", addr, timeout)
		}
		return dial(addr, timeout)
	}
}

// userOwnedBy finds a user id the router currently maps to the wanted
// node, so chaos tests can aim sessions at a specific node.
func userOwnedBy(t *testing.T, r *router.Router, node string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		user := fmt.Sprintf("aimed-user-%d", i)
		owner, err := r.NodeFor(user)
		if err != nil {
			t.Fatal(err)
		}
		if owner == node {
			return user
		}
	}
	t.Fatalf("no user maps to %s in 10000 tries", node)
	return ""
}

// TestRouterRoutesByUser pins the tenancy contract end to end: sessions
// submitted through the router complete with correct verdicts, and one
// user's sessions always land on one node (NodeFor is stable while the
// fleet is healthy).
func TestRouterRoutesByUser(t *testing.T) {
	sc := scenarioFor(t)
	// Agents before the cluster: node workers cache wearable connections
	// for their lifetime, and cleanups run LIFO, so the nodes must shut
	// down before the agents' Close waits out their connections.
	legit := newAgent(t, sc.legitWear)
	attack := newAgent(t, sc.attackWear)
	cl := newCluster(t, 3, nodeConfig{}, router.Config{
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second, FailAfter: 2,
	})

	owners := make(map[string]string)
	for i := 0; i < 12; i++ {
		user := fmt.Sprintf("user-%d", i%4) // 4 users, 3 sessions each
		wantAttack := i%4 >= 2
		wear, va := legit.Addr(), sc.legitVA
		if wantAttack {
			wear, va = attack.Addr(), sc.attackVA
		}
		owner, err := cl.r.NodeFor(user)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := owners[user]; ok && prev != owner {
			t.Errorf("user %s moved from %s to %s with a healthy fleet", user, prev, owner)
		}
		owners[user] = owner
		v, err := cl.r.Submit(context.Background(), request(user, wear, va, uint64(i)))
		if err != nil {
			t.Fatalf("session %d (user %s): %v", i, user, err)
		}
		if v.Attack != wantAttack {
			t.Errorf("session %d: attack=%v (score %v), want %v", i, v.Attack, v.Score, wantAttack)
		}
	}
}

// TestNodeDeathMidSession is the headline chaos cell: a node dies (hard
// network kill, RST to every peer) while a session is in flight on it.
// With resubmission disabled, the session must fail promptly with the
// typed serve.ErrNodeLost wrapped in a NodeError naming the dead node —
// not hang, not vanish — the node must transition down immediately (no
// waiting out the prober), and the same user's next session must succeed
// on a surviving node. (TestNodeDeathResubmit covers the default-on
// resubmit policy, where the same kill completes transparently.)
func TestNodeDeathMidSession(t *testing.T) {
	sc := scenarioFor(t)
	gated, calls, release := gatedAgent(t, sc.legitWear) // before the cluster: cleanup is LIFO
	healthy := newAgent(t, sc.legitWear)
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	cl := newCluster(t, 2, nodeConfig{}, router.Config{
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second, FailAfter: 3,
		Resubmits: -1,
	})

	victim := cl.ids[0]
	user := userOwnedBy(t, cl.r, victim)

	done := make(chan error, 1)
	go func() {
		_, err := cl.r.Submit(context.Background(), request(user, gated, sc.legitVA, 100))
		done <- err
	}()
	waitFor(t, 10*time.Second, func() bool { return calls.Load() >= 1 })

	victimIdx := 0
	cl.nodes[victimIdx].Kill()

	var err error
	select {
	case err = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("session hung after node death")
	}
	if !errors.Is(err, serve.ErrNodeLost) {
		t.Fatalf("err = %v, want serve.ErrNodeLost", err)
	}
	var ne *serve.NodeError
	if !errors.As(err, &ne) || ne.Node != victim {
		t.Fatalf("err = %v, want a NodeError naming %s", err, victim)
	}

	// The failure itself demotes the node — no prober round trip needed.
	if got := cl.r.NodeStates()[victim]; got != router.NodeDown {
		t.Fatalf("victim state = %v after mid-session death, want down", got)
	}

	// Release the gated worker so the dead node's pool can drain later.
	releaseOnce()

	// The same user now routes to the survivor and completes.
	owner, err := cl.r.NodeFor(user)
	if err != nil {
		t.Fatal(err)
	}
	if owner == victim {
		t.Fatalf("user still routed to dead node %s", victim)
	}
	v, err := cl.r.Submit(context.Background(), request(user, healthy.Addr(), sc.legitVA, 101))
	if err != nil {
		t.Fatalf("failover session: %v", err)
	}
	if v.Attack {
		t.Errorf("failover session flagged legit command as attack (score %v)", v.Score)
	}
}

// TestNodeDeathResubmit is the resubmit-policy regression: with the
// default-on policy, a node killed mid-session no longer surfaces
// serve.ErrNodeLost — the router demotes the victim and replays the
// session on the next ring successor, and the caller receives the verdict
// as if nothing happened. The verdict must match a clean submission of
// the identical seeded request bit for bit (sessions are pure functions
// of (va, wear, seed), whichever node runs them).
func TestNodeDeathResubmit(t *testing.T) {
	sc := scenarioFor(t)
	gated, calls, release := gatedAgent(t, sc.legitWear) // before the cluster: cleanup is LIFO
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	cl := newCluster(t, 2, nodeConfig{}, router.Config{
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second, FailAfter: 3,
	})

	victim := cl.ids[0]
	user := userOwnedBy(t, cl.r, victim)
	req := request(user, gated, sc.legitVA, 100)

	type result struct {
		v   *core.Verdict
		err error
	}
	done := make(chan result, 1)
	go func() {
		v, err := cl.r.Submit(context.Background(), req)
		done <- result{v, err}
	}()
	waitFor(t, 10*time.Second, func() bool { return calls.Load() >= 1 })

	cl.nodes[0].Kill()

	// The resubmitted session lands on the survivor, whose worker fetches
	// the wearable recording again; release both fetches then.
	waitFor(t, 10*time.Second, func() bool { return calls.Load() >= 2 })
	releaseOnce()

	var res result
	select {
	case res = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("resubmitted session hung after node death")
	}
	if res.err != nil {
		t.Fatalf("resubmitted session failed: %v", res.err)
	}
	if res.v.Attack {
		t.Errorf("resubmitted session flagged legit command as attack (score %v)", res.v.Score)
	}
	if got := cl.r.NodeStates()[victim]; got != router.NodeDown {
		t.Fatalf("victim state = %v after mid-session death, want down", got)
	}

	// The same seeded request submitted cleanly must match bit for bit.
	clean, err := cl.r.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("clean resubmission: %v", err)
	}
	if math.Float64bits(clean.Score) != math.Float64bits(res.v.Score) || clean.Attack != res.v.Attack {
		t.Errorf("resubmitted verdict (score %v, attack %v) != clean verdict (score %v, attack %v)",
			res.v.Score, res.v.Attack, clean.Score, clean.Attack)
	}
}

// TestPartitionedNodeLink partitions the router↔node link of one node
// (every dial refused — probes and sessions alike) while the node itself
// stays healthy. The prober must take the node down after FailAfter
// consecutive failures, and every session — including those whose keys
// the partitioned node owns — must complete on the survivors.
func TestPartitionedNodeLink(t *testing.T) {
	sc := scenarioFor(t)
	legit := newAgent(t, sc.legitWear) // before the cluster: cleanup is LIFO
	hop := newHopRouter()
	var transitions atomic.Int64
	cl := newCluster(t, 3, nodeConfig{}, router.Config{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailAfter:     2,
		Dial:          hop.dialFunc(),
		OnTransition: func(node string, from, to router.NodeState) {
			if to == router.NodeDown {
				transitions.Add(1)
			}
		},
	})

	partitioned := cl.ids[2]
	// A key the partitioned node owns, captured while it is still up.
	orphanUser := userOwnedBy(t, cl.r, partitioned)
	hop.fault(cl.addrs[2], faults.NetSpec{Seed: faults.Mix(routerSeed, 9), RefuseDials: 1 << 30})

	waitFor(t, 10*time.Second, func() bool {
		return cl.r.NodeStates()[partitioned] == router.NodeDown
	})
	if transitions.Load() == 0 {
		t.Error("down transition hook never fired")
	}

	// Sessions for the orphaned key fail over deterministically; a spread
	// of other users completes too.
	users := []string{orphanUser}
	for i := 0; i < 9; i++ {
		users = append(users, fmt.Sprintf("p-user-%d", i))
	}
	for i, user := range users {
		owner, err := cl.r.NodeFor(user)
		if err != nil {
			t.Fatal(err)
		}
		if owner == partitioned {
			t.Fatalf("user %s routed to partitioned node", user)
		}
		v, err := cl.r.Submit(context.Background(), request(user, legit.Addr(), sc.legitVA, uint64(200+i)))
		if err != nil {
			t.Fatalf("session for %s during partition: %v", user, err)
		}
		if v.Attack {
			t.Errorf("session for %s: legit flagged as attack", user)
		}
	}

	// Heal the partition: the prober promotes the node back up and the
	// orphaned key returns home (ring ownership never changed).
	hop.clear(cl.addrs[2])
	waitFor(t, 10*time.Second, func() bool {
		return cl.r.NodeStates()[partitioned] == router.NodeUp
	})
	owner, err := cl.r.NodeFor(orphanUser)
	if err != nil {
		t.Fatal(err)
	}
	if owner != partitioned {
		t.Errorf("healed node did not reclaim its key: owner %s, want %s", owner, partitioned)
	}
	if _, err := cl.r.Submit(context.Background(), request(orphanUser, legit.Addr(), sc.legitVA, 299)); err != nil {
		t.Fatalf("session after heal: %v", err)
	}
}

// TestRollingDrainLosesNothing drains one node while traffic flows: mark
// it draining (off the ring for new sessions), wait for its in-flight
// sessions, then gracefully shut it down — all with concurrent sessions
// arriving. Every session in the run must complete with the correct
// verdict: zero lost, zero shed, zero typed failures.
func TestRollingDrainLosesNothing(t *testing.T) {
	sc := scenarioFor(t)
	legit := newAgent(t, sc.legitWear) // before the cluster: cleanup is LIFO
	attack := newAgent(t, sc.attackWear)
	cl := newCluster(t, 3, nodeConfig{workers: 2, queueDepth: 64}, router.Config{
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second, FailAfter: 3,
	})

	const total = 36
	drainAt := total / 3
	errs := make([]error, total)
	wrong := make([]bool, total)
	var wg sync.WaitGroup
	drainStarted := make(chan struct{})
	drainDone := make(chan error, 1)
	for i := 0; i < total; i++ {
		if i == drainAt {
			// Start the rolling drain mid-burst: router-side drain first
			// (new sessions rebalance away), then the node's own ordered
			// shutdown.
			go func() {
				close(drainStarted)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := cl.r.DrainNode(ctx, cl.ids[1]); err != nil {
					drainDone <- fmt.Errorf("DrainNode: %w", err)
					return
				}
				drainDone <- cl.nodes[1].Shutdown(ctx)
			}()
			<-drainStarted
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("rolling-user-%d", i%12)
			wantAttack := i%2 == 1
			wear, va := legit.Addr(), sc.legitVA
			if wantAttack {
				wear, va = attack.Addr(), sc.attackVA
			}
			v, err := cl.r.Submit(context.Background(), request(user, wear, va, uint64(300+i)))
			if err != nil {
				errs[i] = err
				return
			}
			wrong[i] = v.Attack != wantAttack
		}(i)
	}
	wg.Wait()
	if err := <-drainDone; err != nil {
		t.Fatalf("rolling drain failed: %v", err)
	}

	for i := range errs {
		if errs[i] != nil {
			t.Errorf("session %d lost during rolling drain: %v", i, errs[i])
		}
		if wrong[i] {
			t.Errorf("session %d: wrong verdict during rolling drain", i)
		}
	}
	if got := cl.r.NodeStates()[cl.ids[1]]; got != router.NodeDraining {
		t.Errorf("drained node state = %v, want draining", got)
	}
	if n := cl.r.InFlight(cl.ids[1]); n != 0 {
		t.Errorf("drained node still shows %d in-flight sessions", n)
	}
}

// TestShedPropagatesWithNodeIdentity pins typed shed propagation across
// the hop: a node whose admission queue overflows sheds with
// ErrOverloaded, and the router's caller sees that same sentinel wrapped
// in a NodeError naming the shedding node. A draining node propagates
// ErrDraining the same way.
func TestShedPropagatesWithNodeIdentity(t *testing.T) {
	sc := scenarioFor(t)
	gated, calls, release := gatedAgent(t, sc.legitWear) // before the cluster: cleanup is LIFO
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	cl := newCluster(t, 1, nodeConfig{workers: 1, queueDepth: 1}, router.Config{
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second, FailAfter: 3,
	})

	// Fill the node: one session on the worker, one in the queue.
	const burst = 10
	var wg sync.WaitGroup
	var shedSeen atomic.Int64
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := cl.r.Submit(context.Background(),
				request(fmt.Sprintf("shed-user-%d", i), gated, sc.legitVA, uint64(400+i)))
			errs[i] = err
			if errors.Is(err, serve.ErrOverloaded) {
				shedSeen.Add(1)
			}
		}(i)
	}
	waitFor(t, 10*time.Second, func() bool { return calls.Load() >= 1 })
	// The burst outruns the depth-1 queue, so sheds surface before the
	// gate opens; once they have, release the gate and let the admitted
	// sessions finish. (errs itself is only read after wg.Wait.)
	waitFor(t, 10*time.Second, func() bool { return shedSeen.Load() > 0 })
	releaseOnce()
	wg.Wait()

	var shed, completed int
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, serve.ErrOverloaded):
			shed++
			var ne *serve.NodeError
			if !errors.As(err, &ne) || ne.Node != cl.ids[0] {
				t.Errorf("session %d: shed without node identity: %v", i, err)
			}
		default:
			t.Errorf("session %d: unexpected error %v", i, err)
		}
	}
	if shed == 0 {
		t.Error("no session shed: a 10-burst against queue depth 1 must overflow")
	}
	if completed == 0 {
		t.Error("no session completed under overload")
	}
	if shed+completed != burst {
		t.Errorf("sessions lost: shed %d + completed %d != %d", shed, completed, burst)
	}

	// Draining node: same propagation, ErrDraining flavor. Drain the only
	// node, so the router either reports the draining node... or, since
	// the drain removes it from the ring, the no-nodes sentinel.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.r.DrainNode(ctx, cl.ids[0]); err != nil {
		t.Fatal(err)
	}
	_, err := cl.r.Submit(context.Background(), request("post-drain", gated, sc.legitVA, 499))
	if !errors.Is(err, serve.ErrNoNodes) {
		t.Fatalf("submit after draining the only node: err = %v, want serve.ErrNoNodes", err)
	}
}

// TestFinalVerdictSurvivesHalfCloseThroughRouter is the two-hop drain
// regression: the single-node suite already pins that a verdict survives
// the server's half-close; here the session is in flight across BOTH hops
// (client → router front-door → node) when the router and then the node
// begin draining, and the final verdict must still arrive at the client
// over the half-closed chain.
func TestFinalVerdictSurvivesHalfCloseThroughRouter(t *testing.T) {
	sc := scenarioFor(t)
	gated, calls, release := gatedAgent(t, sc.legitWear) // before the cluster: cleanup is LIFO
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	cl := newCluster(t, 1, nodeConfig{}, router.Config{
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second, FailAfter: 3,
	})

	addr, err := cl.r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	type reply struct {
		attack bool
		err    error
	}
	got := make(chan reply, 1)
	go func() {
		v, err := client.Inspect(request("halfclose-user", gated, sc.legitVA, 500))
		if err != nil {
			got <- reply{err: err}
			return
		}
		got <- reply{attack: v.Attack}
	}()
	waitFor(t, 10*time.Second, func() bool { return calls.Load() >= 1 })

	// Drain the router first, then the node — the rolling-restart order.
	// Both block on the gated in-flight session.
	routerDone := make(chan error, 1)
	nodeDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		routerDone <- cl.r.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		nodeDone <- cl.nodes[0].Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond)

	// Nothing may have returned yet: the verdict is still gated.
	select {
	case r := <-got:
		t.Fatalf("client returned (%+v) before the in-flight session finished", r)
	default:
	}

	releaseOnce()
	if err := <-routerDone; err != nil {
		t.Fatalf("router shutdown: %v", err)
	}
	if err := <-nodeDone; err != nil {
		t.Fatalf("node shutdown: %v", err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight verdict lost through the router hop: %v", r.err)
		}
		if r.attack {
			t.Error("legitimate in-flight session flagged as attack")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight verdict never arrived through the router hop")
	}

	// Both tiers now reject new sessions typed.
	if _, err := cl.r.Submit(context.Background(), request("late", gated, sc.legitVA, 501)); !errors.Is(err, serve.ErrDraining) {
		t.Errorf("submit after router drain: err = %v, want ErrDraining", err)
	}
}
