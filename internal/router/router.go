package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vibguard/internal/core"
	"vibguard/internal/serve"
)

// Router lifecycle states (mirroring serve.Server).
const (
	stateRunning = iota
	stateDraining
	stateStopped
)

// NodeState is a registered node's health state.
type NodeState int32

const (
	// NodeUp: the node answers probes and takes new sessions.
	NodeUp NodeState = iota
	// NodeDown: probes (or a live session) failed; the node stays
	// registered and on the ring, but the routing walk skips it until a
	// probe succeeds again.
	NodeDown
	// NodeDraining: operator-initiated drain; off the ring for new
	// sessions while in-flight ones finish. Terminal until Deregister.
	NodeDraining
)

// String names the state for logs and transition hooks.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDown:
		return "down"
	case NodeDraining:
		return "draining"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// DialFunc dials a node front-end; it matches syncnet.DialFunc so the
// faults injector plugs straight in.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// Config parameterizes a Router.
type Config struct {
	// VirtualNodes is the points-per-node count on the hash ring
	// (default 64).
	VirtualNodes int
	// ProbeInterval is the health-check period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe's dial + ping round trip
	// (default 2s).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive probe failures before an up node
	// transitions down (default 2). A session-level connection loss
	// transitions immediately.
	FailAfter int
	// DialTimeout bounds the session-path dial of a node connection
	// (default 5s).
	DialTimeout time.Duration
	// Dial overrides both the probe and session transport (fault
	// injection, testing). Nil dials TCP.
	Dial DialFunc
	// OnTransition, if set, observes every health transition. Called
	// outside the router lock; must be safe for concurrent use.
	OnTransition func(node string, from, to NodeState)
	// Resubmits is how many times a session that died with a node
	// (serve.ErrNodeLost) is resubmitted to the next ring successor before
	// the failure is surfaced. The failed node is demoted first, so each
	// resubmit deterministically walks to the next up node. 0 means the
	// default of 1 resubmit; negative disables resubmission entirely.
	// Typed application errors (shed, timeout, wearable failure) are never
	// resubmitted — only node loss, where the session provably has no
	// answer.
	Resubmits int
}

// withDefaults fills in defaults.
func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if c.Resubmits == 0 {
		c.Resubmits = 1
	}
	if c.Resubmits < 0 {
		c.Resubmits = -1
	}
	return c
}

// resubmits returns the effective resubmit budget.
func (c Config) resubmits() int {
	if c.Resubmits < 0 {
		return 0
	}
	return c.Resubmits
}

// node is one registered serve node.
type node struct {
	id   string
	addr string

	// state is guarded by the router lock; inflight is atomic so drains
	// can poll it without the lock.
	state    NodeState
	failures int
	inflight atomic.Int64

	// client is the lazily dialed multiplexed session connection,
	// guarded by cmu (not the router lock: dialing must not block
	// routing to other nodes).
	cmu    sync.Mutex
	client *serve.Client

	stopOnce  sync.Once
	probeStop chan struct{}
	probeDone chan struct{}
}

// stop ends the node's prober (idempotent: Deregister and Shutdown may
// race) and waits for it, then releases the session connection.
func (n *node) stop() {
	n.stopOnce.Do(func() { close(n.probeStop) })
	<-n.probeDone
	n.cmu.Lock()
	if n.client != nil {
		_ = n.client.Close()
		n.client = nil
	}
	n.cmu.Unlock()
}

// Router consistent-hashes sessions onto a fleet of serve nodes. See the
// package comment for the architecture.
type Router struct {
	cfg Config

	mu    sync.RWMutex
	state int
	ring  *Ring
	nodes map[string]*node

	listener net.Listener
	conns    map[net.Conn]struct{}
	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	// submitWG counts in-flight Submits; Add happens only while the
	// state is running (under the read lock), so Shutdown's flip-then-
	// wait is race-free.
	submitWG sync.WaitGroup
	drained  chan struct{}
}

// New builds a router with no nodes; Register adds them.
func New(cfg Config) *Router {
	return &Router{
		cfg:     cfg.withDefaults(),
		ring:    NewRing(cfg.VirtualNodes),
		nodes:   make(map[string]*node),
		conns:   make(map[net.Conn]struct{}),
		drained: make(chan struct{}),
	}
}

// Register adds a serve node under a stable id and starts probing it.
// The node is immediately eligible for new sessions (optimistically up;
// the first failed probes or session demote it).
func (r *Router) Register(id, addr string) error {
	if id == "" || addr == "" {
		return fmt.Errorf("router: node needs an id and an address")
	}
	r.mu.Lock()
	if r.state != stateRunning {
		r.mu.Unlock()
		return serve.ErrDraining
	}
	if _, ok := r.nodes[id]; ok {
		r.mu.Unlock()
		return fmt.Errorf("router: node %q already registered", id)
	}
	n := &node{
		id: id, addr: addr, state: NodeUp,
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	r.nodes[id] = n
	r.ring.Add(id)
	gaugeNodes.Set(float64(len(r.nodes)))
	r.mu.Unlock()
	go r.probeLoop(n)
	return nil
}

// Deregister removes a node entirely: off the ring, probe stopped,
// connection closed. In-flight sessions on it run to completion (their
// verdicts still flow back over the shared connection until Close).
func (r *Router) Deregister(id string) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	if ok {
		delete(r.nodes, id)
		r.ring.Remove(id)
		gaugeNodes.Set(float64(len(r.nodes)))
	}
	r.mu.Unlock()
	if !ok {
		return
	}
	n.stop()
}

// DrainNode removes a node from the ring for new sessions and blocks
// until its in-flight sessions finish (bounded by ctx). The node stays
// registered in the draining state; pair with the node's own
// serve.Server.Shutdown for a rolling restart that loses nothing.
func (r *Router) DrainNode(ctx context.Context, id string) error {
	r.mu.Lock()
	n, ok := r.nodes[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("router: unknown node %q", id)
	}
	if n.state != NodeDraining {
		r.transitionLocked(n, NodeDraining)
		r.ring.Remove(id)
	}
	r.mu.Unlock()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for n.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// NodeStates snapshots every registered node's health state.
func (r *Router) NodeStates() map[string]NodeState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]NodeState, len(r.nodes))
	for id, n := range r.nodes {
		out[id] = n.state
	}
	return out
}

// NodeFor returns the id of the node that would serve key right now —
// the ring owner, or its first up successor while the owner is down.
func (r *Router) NodeFor(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, id := range r.ring.Successors(key) {
		if n := r.nodes[id]; n != nil && n.state == NodeUp {
			return id, nil
		}
	}
	return "", serve.ErrNoNodes
}

// NodeStreams returns the number of sessions pending on a node's
// multiplexed connection (0 for unknown ids or before the first dial).
// It is the relay-leak observability hook: a router at rest must report
// 0 for every node — a stable nonzero count is a leaked stream id.
func (r *Router) NodeStreams(id string) int {
	r.mu.RLock()
	n := r.nodes[id]
	r.mu.RUnlock()
	if n == nil {
		return 0
	}
	n.cmu.Lock()
	defer n.cmu.Unlock()
	if n.client == nil {
		return 0
	}
	return n.client.InFlight()
}

// InFlight returns a node's in-flight session count (0 for unknown ids).
func (r *Router) InFlight(id string) int64 {
	r.mu.RLock()
	n := r.nodes[id]
	r.mu.RUnlock()
	if n == nil {
		return 0
	}
	return n.inflight.Load()
}

// transitionLocked moves a node to a new state under the router lock and
// fires the hook/metrics outside it.
func (r *Router) transitionLocked(n *node, to NodeState) {
	from := n.state
	if from == to {
		return
	}
	n.state = to
	switch to {
	case NodeUp:
		metNodeUp.Inc()
	case NodeDown:
		metNodeDown.Inc()
	}
	if hook := r.cfg.OnTransition; hook != nil {
		go hook(n.id, from, to)
	}
}

// RouteKey is the consistent-hash key contract of a session: the
// wearable-paired user id, falling back to the wearable address for
// legacy single-wearable sessions that carry no identity. The fallback
// is only sound when the session names exactly one wearable — with a
// multi-wearable fleet, hashing whichever address came first would
// scatter one user's sessions (and the per-user profile state the nodes
// cache) across the ring. Submit and SubmitStream therefore reject
// profile-backed sessions (non-empty WearableAddrs) whose UserID is
// empty with serve.ErrUserIDRequired instead of routing them.
func RouteKey(req serve.Request) string {
	if req.UserID != "" {
		return req.UserID
	}
	return req.WearableAddr
}

// checkRoutable rejects sessions whose routing key would be ambiguous:
// a profile-backed session (one carrying extra wearable addresses) must
// name the user it belongs to.
func checkRoutable(req serve.Request) error {
	if len(req.WearableAddrs) > 0 && req.UserID == "" {
		return serve.ErrUserIDRequired
	}
	return nil
}

// pick chooses the serving node for key: the ring owner if it is up,
// else the first up successor (deterministic, key-dependent failover).
// It registers the in-flight session under the router's read lock, so a
// concurrent Shutdown cannot miss it.
func (r *Router) pick(key string) (*node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.state != stateRunning {
		return nil, fmt.Errorf("%w (router)", serve.ErrDraining)
	}
	for _, id := range r.ring.Successors(key) {
		n := r.nodes[id]
		if n != nil && n.state == NodeUp {
			n.inflight.Add(1)
			r.submitWG.Add(1)
			return n, nil
		}
	}
	return nil, serve.ErrNoNodes
}

// ErrResubmitsExhausted marks a session that was resubmitted after node
// losses until the budget ran out; the final node's failure is wrapped, so
// errors.Is(err, serve.ErrNodeLost) still holds.
var ErrResubmitsExhausted = errors.New("router: resubmits exhausted")

// Submit routes one session to its node and blocks until the verdict (or
// typed failure) is back. A session that dies with its node
// (serve.ErrNodeLost) is resubmitted to the next ring successor up to
// Config.Resubmits times — the victim is demoted first, so the walk is the
// deterministic key-dependent failover order — before the loss is
// surfaced wrapped in ErrResubmitsExhausted. Per-node failures come
// wrapped in a serve.NodeError carrying the node id: a shed node surfaces
// as errors.Is(err, serve.ErrOverloaded) with the identity attached, a
// dead one as serve.ErrNodeLost. Routing failures (serve.ErrNoNodes, a
// draining router) carry no node.
func (r *Router) Submit(ctx context.Context, req serve.Request) (*core.Verdict, error) {
	if err := checkRoutable(req); err != nil {
		metSessionsRejected.Inc()
		return nil, err
	}
	budget := r.cfg.resubmits()
	var lastErr error
	for try := 0; try <= budget; try++ {
		if try > 0 {
			metSessionsResubmit.Inc()
		}
		v, err := r.submitOnce(ctx, req)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !errors.Is(err, serve.ErrNodeLost) {
			return nil, err // typed application or routing failure: final
		}
	}
	if budget > 0 {
		return nil, fmt.Errorf("%w after %d attempts: %w", ErrResubmitsExhausted, budget+1, lastErr)
	}
	return nil, lastErr
}

// submitOnce runs one routing attempt of a session.
func (r *Router) submitOnce(ctx context.Context, req serve.Request) (*core.Verdict, error) {
	n, err := r.pick(RouteKey(req))
	if err != nil {
		metSessionsRejected.Inc()
		return nil, err
	}
	defer r.submitWG.Done()
	defer n.inflight.Add(-1)
	metSessionsRouted.Inc()

	client, err := r.nodeClient(n)
	if err != nil {
		r.noteSessionFailure(n)
		metSessionsNodeLost.Inc()
		return nil, &serve.NodeError{Node: n.id,
			Err: fmt.Errorf("%w (dial: %v)", serve.ErrNodeLost, err)}
	}
	v, err := client.Inspect(req)
	if err != nil {
		if errors.Is(err, serve.ErrConnLost) {
			// The node (or its link) died mid-session. The connection is
			// unusable; demote the node now instead of waiting for the
			// prober to notice.
			n.dropClient(client)
			r.noteSessionFailure(n)
			metSessionsNodeLost.Inc()
			return nil, &serve.NodeError{Node: n.id,
				Err: fmt.Errorf("%w (%v)", serve.ErrNodeLost, err)}
		}
		// A typed application error from the node (shed, timeout,
		// wearable failure, …): propagate with the node identity.
		metSessionsFailed.Inc()
		return nil, &serve.NodeError{Node: n.id, Err: err}
	}
	metSessionsCompleted.Inc()
	return v, nil
}

// SubmitStream routes one streamed session, forwarding chunks to the
// node's stream as they arrive and buffering them so a mid-stream node
// loss can be resubmitted to the next successor with the full prefix
// replayed (resubmission is transparent: the client sees one stream and
// one verdict). Early exits propagate: the node's early verdict resolves
// the call and remaining inbound chunks are dropped. It satisfies
// serve.StreamSessionHandler, so it is the front door's chunk handler.
func (r *Router) SubmitStream(ctx context.Context, req serve.Request, chunks <-chan []float64) (*core.Verdict, error) {
	if err := checkRoutable(req); err != nil {
		metSessionsRejected.Inc()
		return nil, err
	}
	budget := r.cfg.resubmits()
	relay := &streamRelay{src: chunks}
	var lastErr error
	for try := 0; try <= budget; try++ {
		if try > 0 {
			metSessionsResubmit.Inc()
		}
		v, err := r.streamOnce(ctx, req, relay)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !errors.Is(err, serve.ErrNodeLost) {
			return nil, err
		}
	}
	if budget > 0 {
		return nil, fmt.Errorf("%w after %d attempts: %w", ErrResubmitsExhausted, budget+1, lastErr)
	}
	return nil, lastErr
}

// streamRelay buffers the chunks already pulled from the inbound stream so
// a resubmitted attempt can replay the identical prefix to a new node.
type streamRelay struct {
	src    <-chan []float64
	buf    [][]float64
	closed bool // src is exhausted
}

// streamOnce runs one routing attempt of a streamed session: replay the
// buffered prefix, then forward live chunks until the node answers early,
// the stream closes, or the node dies.
func (r *Router) streamOnce(ctx context.Context, req serve.Request, relay *streamRelay) (*core.Verdict, error) {
	n, err := r.pick(RouteKey(req))
	if err != nil {
		metSessionsRejected.Inc()
		return nil, err
	}
	defer r.submitWG.Done()
	defer n.inflight.Add(-1)
	metSessionsRouted.Inc()

	client, err := r.nodeClient(n)
	if err != nil {
		r.noteSessionFailure(n)
		metSessionsNodeLost.Inc()
		return nil, &serve.NodeError{Node: n.id,
			Err: fmt.Errorf("%w (dial: %v)", serve.ErrNodeLost, err)}
	}
	v, err := r.relayStream(ctx, client, req, relay)
	if err != nil {
		if errors.Is(err, serve.ErrConnLost) {
			n.dropClient(client)
			r.noteSessionFailure(n)
			metSessionsNodeLost.Inc()
			return nil, &serve.NodeError{Node: n.id,
				Err: fmt.Errorf("%w (%v)", serve.ErrNodeLost, err)}
		}
		metSessionsFailed.Inc()
		return nil, &serve.NodeError{Node: n.id, Err: err}
	}
	metSessionsCompleted.Inc()
	return v, nil
}

// relayStream pushes the relay's prefix and live chunks through one node
// stream and waits for the verdict.
func (r *Router) relayStream(ctx context.Context, client *serve.Client, req serve.Request, relay *streamRelay) (v *core.Verdict, err error) {
	s, err := client.OpenStream(req)
	if err != nil {
		return nil, err
	}
	// Any failure after the stream opened must abort it. Without the
	// abort, an attempt that fails for a reason other than the connection
	// dying — a canceled context above all — leaves the stream id
	// registered in the client's pending mux table forever: the entry is
	// only reaped by a verdict (which the abandoned stream will get, but
	// nobody is waiting to consume) or by the connection dying. Abort
	// deregisters the id and tombstones it so the node's eventual terminal
	// frame is dropped instead of killing the shared connection. On a
	// conn-lost failure the abort is a harmless no-op (the dead connection
	// already failed every pending stream).
	defer func() {
		if err != nil {
			s.Abort()
		}
	}()
	feeding := true
	for _, chunk := range relay.buf {
		done, err := s.Send(chunk)
		if err != nil {
			return nil, err
		}
		if done {
			feeding = false
			break
		}
	}
	for feeding && !relay.closed {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case chunk, ok := <-relay.src:
			if !ok {
				relay.closed = true
				break
			}
			relay.buf = append(relay.buf, chunk)
			done, err := s.Send(chunk)
			if err != nil {
				return nil, err
			}
			if done {
				feeding = false
			}
		}
	}
	if err := s.CloseSend(); err != nil {
		return nil, err
	}
	return s.Wait()
}

// nodeClient returns the node's multiplexed connection, dialing it on
// first use (or after a drop).
func (r *Router) nodeClient(n *node) (*serve.Client, error) {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	if n.client != nil {
		return n.client, nil
	}
	conn, err := r.cfg.Dial(n.addr, r.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	n.client = serve.NewClient(conn)
	return n.client, nil
}

// dropClient discards a dead connection so the next session redials.
func (n *node) dropClient(c *serve.Client) {
	n.cmu.Lock()
	if n.client == c {
		n.client = nil
	}
	n.cmu.Unlock()
	_ = c.Close()
}

// noteSessionFailure demotes a node after a session-path connection
// failure (draining nodes keep their state).
func (r *Router) noteSessionFailure(n *node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n.state == NodeUp {
		n.failures = r.cfg.FailAfter // a live session beats FailAfter probes
		r.transitionLocked(n, NodeDown)
	}
}

// Listen mounts the router front-door on addr, speaking the same framed
// binary protocol as the nodes behind it. Sessions arriving over it run
// through Submit.
func (r *Router) Listen(addr string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != stateRunning {
		return "", serve.ErrDraining
	}
	if r.listener != nil {
		return "", fmt.Errorf("router: already listening on %s", r.listener.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("router: listen: %w", err)
	}
	r.listener = ln
	r.acceptWG.Add(1)
	go r.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the front-door listen address ("" before Listen).
func (r *Router) Addr() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.listener == nil {
		return ""
	}
	return r.listener.Addr().String()
}

func (r *Router) acceptLoop(ln net.Listener) {
	defer r.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.mu.Lock()
		if r.state != stateRunning {
			r.mu.Unlock()
			_ = conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.connWG.Add(1)
		r.mu.Unlock()
		go r.handleConn(conn)
	}
}

func (r *Router) handleConn(conn net.Conn) {
	defer func() {
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		_ = conn.Close()
		r.connWG.Done()
	}()
	serve.ServeMuxConnStream(conn, r.Submit, r.SubmitStream)
}

// Shutdown drains the router: no new sessions from the moment it begins
// (Submit returns serve.ErrDraining), the front-door listener closes
// first, in-flight sessions finish (bounded by ctx), lingering front-door
// connections are half-closed so their final responses still flush, and
// only then do the probers stop and the node connections close. The
// two-hop drain ordering — router drains before the nodes behind it —
// is what lets a rolling restart lose nothing. Concurrent and repeated
// calls converge on the first drain.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.state != stateRunning {
		r.mu.Unlock()
		select {
		case <-r.drained:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	r.state = stateDraining
	ln := r.listener
	r.mu.Unlock()

	// 1. Close the listener: no new connection throughout the drain.
	if ln != nil {
		_ = ln.Close()
		r.acceptWG.Wait()
	}

	// 2. Wait for in-flight sessions (Submit calls), bounded by ctx. No
	// new Submit can start after the state flip.
	submitsDone := make(chan struct{})
	go func() {
		r.submitWG.Wait()
		close(submitsDone)
	}()
	select {
	case <-submitsDone:
	case <-ctx.Done():
		return ctx.Err()
	}

	// 3. Every stream now has its result; half-close lingering front-door
	// connections so handlers can flush final responses, then see EOF.
	r.mu.Lock()
	for conn := range r.conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseRead()
		} else {
			_ = conn.Close()
		}
	}
	r.mu.Unlock()
	connsDone := make(chan struct{})
	go func() {
		r.connWG.Wait()
		close(connsDone)
	}()
	select {
	case <-connsDone:
	case <-ctx.Done():
		return ctx.Err()
	}

	// 4. Stop the probers and release the node connections.
	r.mu.Lock()
	nodes := make([]*node, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.state = stateStopped
	r.mu.Unlock()
	for _, n := range nodes {
		n.stop()
	}
	close(r.drained)
	return nil
}
