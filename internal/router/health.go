package router

import (
	"time"

	"vibguard/internal/serve"
)

// Health checking: every registered node gets a prober goroutine that
// periodically dials a fresh connection and performs one protocol-level
// ping/pong (serve.PingConn). A fresh dial per probe is deliberate — it
// detects a partitioned router↔node link even while an established
// session connection lingers, and it exercises the same dial path (and
// fault injectors) sessions use. FailAfter consecutive failures demote an
// up node to NodeDown; one success promotes a down node back to NodeUp.
// Draining nodes are still probed but never leave NodeDraining.

// probeLoop drives one node's health checks until the router stops it.
func (r *Router) probeLoop(n *node) {
	defer close(n.probeDone)
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.probeStop:
			return
		case <-ticker.C:
			r.noteProbe(n, r.probe(n) == nil)
		}
	}
}

// probe performs one dial + ping round trip against the node.
func (r *Router) probe(n *node) error {
	conn, err := r.cfg.Dial(n.addr, r.cfg.ProbeTimeout)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	return serve.PingConn(conn, r.cfg.ProbeTimeout)
}

// noteProbe applies one probe outcome to the node's health state.
func (r *Router) noteProbe(n *node, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	metProbes.Inc()
	if !ok {
		metProbeFailures.Inc()
		n.failures++
		if n.state == NodeUp && n.failures >= r.cfg.FailAfter {
			r.transitionLocked(n, NodeDown)
		}
		return
	}
	n.failures = 0
	if n.state == NodeDown {
		r.transitionLocked(n, NodeUp)
	}
}
