package faults

import (
	"math"
	"math/rand"

	"vibguard/internal/dsp"
	"vibguard/internal/obs"
)

// signalCounters counts applied corruptions per kind, indexed by
// SignalKind (SignalNone included: a no-op application is still a matrix
// cell). Bound at init so Apply stays allocation-free.
var signalCounters = [...]*obs.Counter{
	SignalNone:         obs.Default().Counter("faults.signal.none"),
	SignalTruncate:     obs.Default().Counter("faults.signal.truncate"),
	SignalClip:         obs.Default().Counter("faults.signal.clip"),
	SignalNonFinite:    obs.Default().Counter("faults.signal.nonfinite"),
	SignalDCOffset:     obs.Default().Counter("faults.signal.dc-offset"),
	SignalRateMismatch: obs.Default().Counter("faults.signal.rate-mismatch"),
	SignalDropout:      obs.Default().Counter("faults.signal.dropout"),
}

// SignalKind identifies one class of recording corruption. The kinds model
// the degraded-capture failure modes of a real deployment: a wearable that
// stops recording early (truncation), saturates its microphone (clipping),
// produces sensor glitches (non-finite samples), carries a miscalibrated
// ADC bias (DC offset), reports the wrong sample rate (rate mismatch), or
// drops buffers under load (dropout).
type SignalKind int

// Signal corruption kinds.
const (
	// SignalNone leaves the recording untouched (a copy is still returned).
	SignalNone SignalKind = iota
	// SignalTruncate keeps only the leading Severity fraction of samples.
	SignalTruncate
	// SignalClip hard-clips at Severity times the peak absolute amplitude.
	SignalClip
	// SignalNonFinite replaces scattered samples with NaN/±Inf.
	SignalNonFinite
	// SignalDCOffset adds a constant Severity offset to every sample.
	SignalDCOffset
	// SignalRateMismatch resamples by factor Severity while the nominal
	// rate stays unchanged, as if the device misreported its clock.
	SignalRateMismatch
	// SignalDropout zeroes random windows totalling a Severity fraction of
	// the recording.
	SignalDropout
)

// String names the kind for test output.
func (k SignalKind) String() string {
	switch k {
	case SignalNone:
		return "none"
	case SignalTruncate:
		return "truncate"
	case SignalClip:
		return "clip"
	case SignalNonFinite:
		return "nonfinite"
	case SignalDCOffset:
		return "dc-offset"
	case SignalRateMismatch:
		return "rate-mismatch"
	case SignalDropout:
		return "dropout"
	default:
		return "unknown"
	}
}

// SignalSpec configures one deterministic recording corruption.
type SignalSpec struct {
	// Kind selects the corruption.
	Kind SignalKind
	// Severity scales it; the meaning is kind-specific (see the kind
	// constants). Zero applies a kind-specific default.
	Severity float64
	// Seed drives the corruption's random placement decisions.
	Seed int64
}

// defaultSeverity returns the per-kind severity used when the spec leaves
// it zero.
func (s SignalSpec) defaultSeverity() float64 {
	switch s.Kind {
	case SignalTruncate:
		return 0.4
	case SignalClip:
		return 0.3
	case SignalNonFinite:
		return 0.001
	case SignalDCOffset:
		return 0.2
	case SignalRateMismatch:
		return 0.5
	case SignalDropout:
		return 0.2
	default:
		return 0
	}
}

// Apply returns a corrupted copy of x. The input is never mutated, and the
// output depends only on (x, Kind, Severity, Seed) — same spec, same bytes.
func (s SignalSpec) Apply(x []float64) []float64 {
	if int(s.Kind) >= 0 && int(s.Kind) < len(signalCounters) {
		signalCounters[s.Kind].Inc()
	}
	out := make([]float64, len(x))
	copy(out, x)
	if len(out) == 0 {
		return out
	}
	sev := s.Severity
	if sev == 0 {
		sev = s.defaultSeverity()
	}
	rng := rand.New(rand.NewSource(Mix(s.Seed, int64(s.Kind))))
	switch s.Kind {
	case SignalTruncate:
		n := int(float64(len(out)) * sev)
		if n < 1 {
			n = 1
		}
		if n > len(out) {
			n = len(out)
		}
		out = out[:n]
	case SignalClip:
		limit := dsp.MaxAbs(out) * sev
		for i, v := range out {
			if v > limit {
				out[i] = limit
			} else if v < -limit {
				out[i] = -limit
			}
		}
	case SignalNonFinite:
		n := int(float64(len(out)) * sev)
		if n < 1 {
			n = 1
		}
		bad := [3]float64{math.NaN(), math.Inf(1), math.Inf(-1)}
		for i := 0; i < n; i++ {
			out[rng.Intn(len(out))] = bad[i%len(bad)]
		}
	case SignalDCOffset:
		for i := range out {
			out[i] += sev
		}
	case SignalRateMismatch:
		resampled, err := dsp.Resample(out, 1, sev)
		if err == nil && len(resampled) > 0 {
			out = resampled
		}
	case SignalDropout:
		const windows = 4
		total := int(float64(len(out)) * sev)
		winLen := total / windows
		if winLen < 1 {
			winLen = 1
		}
		for w := 0; w < windows; w++ {
			start := rng.Intn(len(out))
			for i := start; i < start+winLen && i < len(out); i++ {
				out[i] = 0
			}
		}
	}
	return out
}
