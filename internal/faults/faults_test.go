package faults

import (
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"
)

func TestSignalSpecDeterministicAndPure(t *testing.T) {
	x := make([]float64, 2000)
	for i := range x {
		x[i] = math.Sin(float64(i) / 7)
	}
	orig := make([]float64, len(x))
	copy(orig, x)
	kinds := []SignalKind{SignalNone, SignalTruncate, SignalClip, SignalNonFinite,
		SignalDCOffset, SignalRateMismatch, SignalDropout}
	for _, kind := range kinds {
		spec := SignalSpec{Kind: kind, Seed: 42}
		a := spec.Apply(x)
		b := spec.Apply(x)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ across runs: %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			same := a[i] == b[i] || (math.IsNaN(a[i]) && math.IsNaN(b[i]))
			if !same {
				t.Fatalf("%v: sample %d differs across runs: %v vs %v", kind, i, a[i], b[i])
			}
		}
		for i := range x {
			if x[i] != orig[i] {
				t.Fatalf("%v: Apply mutated its input at %d", kind, i)
			}
		}
	}
}

func TestSignalTruncate(t *testing.T) {
	x := make([]float64, 1000)
	out := SignalSpec{Kind: SignalTruncate, Severity: 0.4}.Apply(x)
	if len(out) != 400 {
		t.Errorf("truncated length = %d, want 400", len(out))
	}
}

func TestSignalClipBounds(t *testing.T) {
	x := []float64{-1, -0.5, 0, 0.5, 1}
	out := SignalSpec{Kind: SignalClip, Severity: 0.5}.Apply(x)
	for i, v := range out {
		if v > 0.5 || v < -0.5 {
			t.Errorf("sample %d = %v exceeds clip limit 0.5", i, v)
		}
	}
}

func TestSignalNonFiniteInjects(t *testing.T) {
	x := make([]float64, 1000)
	out := SignalSpec{Kind: SignalNonFinite, Seed: 3}.Apply(x)
	bad := 0
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad++
		}
	}
	if bad == 0 {
		t.Error("no non-finite samples injected")
	}
}

func TestSignalDCOffset(t *testing.T) {
	x := make([]float64, 100)
	out := SignalSpec{Kind: SignalDCOffset, Severity: 0.25}.Apply(x)
	for i, v := range out {
		if v != 0.25 {
			t.Fatalf("sample %d = %v, want 0.25", i, v)
		}
	}
}

func TestSignalRateMismatchLength(t *testing.T) {
	x := make([]float64, 1000)
	out := SignalSpec{Kind: SignalRateMismatch, Severity: 0.5}.Apply(x)
	if len(out) != 500 {
		t.Errorf("half-rate length = %d, want 500", len(out))
	}
}

func TestSignalEmptyInput(t *testing.T) {
	for kind := SignalNone; kind <= SignalDropout; kind++ {
		out := SignalSpec{Kind: kind}.Apply(nil)
		if len(out) != 0 {
			t.Errorf("%v: empty input produced %d samples", kind, len(out))
		}
	}
}

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer func() { _ = conn.Close() }()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return ln
}

func TestInjectorRefusesDials(t *testing.T) {
	ln := echoServer(t)
	defer func() { _ = ln.Close() }()
	inj := NewInjector(NetSpec{Seed: 1, RefuseDials: 2})
	dial := inj.WrapDial(nil)
	for i := 0; i < 2; i++ {
		if _, err := dial(ln.Addr().String(), time.Second); !errors.Is(err, ErrInjectedRefusal) {
			t.Fatalf("dial %d: err = %v, want ErrInjectedRefusal", i, err)
		}
	}
	conn, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("third dial should succeed: %v", err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("echo = %q", buf)
	}
}

func TestInjectorResetAfterBytes(t *testing.T) {
	ln := echoServer(t)
	defer func() { _ = ln.Close() }()
	inj := NewInjector(NetSpec{Seed: 1, ResetConnections: 1, ResetAfterBytes: 8})
	dial := inj.WrapDial(nil)
	conn, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadFull(conn, make([]byte, 64))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read err = %v, want ErrInjectedReset", err)
	}
	// The second connection is clean.
	conn2, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn2.Close() }()
	if _, err := conn2.Write(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn2, make([]byte, 64)); err != nil {
		t.Fatalf("clean second connection failed: %v", err)
	}
}

func TestInjectorPartialReads(t *testing.T) {
	ln := echoServer(t)
	defer func() { _ = ln.Close() }()
	inj := NewInjector(NetSpec{Seed: 1, ReadChunk: 3})
	dial := inj.WrapDial(nil)
	conn, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	msg := []byte("hello, fault injection")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n > 3 {
		t.Errorf("single Read returned %d bytes, chunk limit 3", n)
	}
	if _, err := io.ReadFull(conn, buf[n:]); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Errorf("reassembled = %q, want %q", buf, msg)
	}
}

func TestMixMatchesSampleSeedScheme(t *testing.T) {
	// Distinct (seed, index) pairs must map to distinct streams; identical
	// pairs to identical streams.
	if Mix(1, 0) == Mix(1, 1) || Mix(1, 0) == Mix(2, 0) {
		t.Error("Mix collides on adjacent inputs")
	}
	if Mix(7, 3) != Mix(7, 3) {
		t.Error("Mix is not a pure function")
	}
}
