// Package faults provides deterministic, seedable fault injection for the
// defense pipeline: net.Conn/Listener wrappers that inject latency, jitter,
// partial reads, refused dials, and mid-stream resets, plus signal-level
// corruptors (truncation, clipping, non-finite samples, DC offset,
// sample-rate mismatch, dropouts).
//
// Every fault decision derives from a SplitMix64 stream seeded by
// (Seed, connection index) — the same derivation scheme as eval.SampleSeed —
// so a fixed seed reproduces the exact fault sequence regardless of
// scheduling. That property is what makes the fault-matrix simulation suite
// (matrix_test.go) deterministic: each (network fault × signal fault) cell
// either produces the same verdict bits on every run or fails the same typed
// error.
package faults

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vibguard/internal/obs"
)

// Typed-error counters: every injected transport fault increments the
// counter matching its error, so a fault-matrix run shows up in /metrics
// next to the syncnet retry counters it provokes.
var (
	metInjectedRefusals = obs.Default().Counter("faults.injected.refusals")
	metInjectedResets   = obs.Default().Counter("faults.injected.resets")
)

// Injected transport errors. They are returned (and observed by the peer as
// an aborted connection) when the corresponding NetSpec knob fires.
var (
	// ErrInjectedRefusal is returned by a wrapped dialer for dial attempts
	// the spec refuses outright, modeling an unreachable wearable.
	ErrInjectedRefusal = errors.New("faults: injected connection refusal")
	// ErrInjectedReset is returned by a faulted connection's Read once its
	// byte budget is exhausted; the underlying connection is aborted so the
	// peer observes a reset too.
	ErrInjectedReset = errors.New("faults: injected connection reset")
)

// NetSpec configures deterministic network-fault injection. The zero value
// injects nothing.
type NetSpec struct {
	// Seed drives every random fault decision. Connections derive their
	// private RNG from (Seed, connection index), so the fault sequence is
	// reproducible and independent of goroutine scheduling.
	Seed int64
	// Latency is a fixed delay added to every Read.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) to every Read.
	Jitter time.Duration
	// ReadChunk caps the bytes returned by a single Read (0 = unlimited),
	// forcing the peer's decoder to reassemble frames from partial reads.
	ReadChunk int
	// RefuseDials fails this many initial dial attempts with
	// ErrInjectedRefusal before letting connections through.
	RefuseDials int
	// ResetConnections marks this many initial established connections as
	// destructive: their Reads fail with ErrInjectedReset once
	// ResetAfterBytes have been delivered. A negative value marks every
	// connection (a black-holed link that no retry can survive).
	ResetConnections int
	// ResetAfterBytes is the byte budget of a destructive connection.
	ResetAfterBytes int64
}

// Injector wraps dialers and listeners with the fault behavior of one
// NetSpec. Dial attempts and established connections are counted across the
// injector's lifetime, so "the first N connections misbehave" is well
// defined even when dials race.
type Injector struct {
	spec  NetSpec
	dials atomic.Int64
	conns atomic.Int64
}

// NewInjector creates an injector for the spec.
func NewInjector(spec NetSpec) *Injector { return &Injector{spec: spec} }

// Dials returns the number of dial attempts observed so far.
func (in *Injector) Dials() int64 { return in.dials.Load() }

// Conns returns the number of connections established so far.
func (in *Injector) Conns() int64 { return in.conns.Load() }

// WrapDial returns a dial function that injects the spec's faults. A nil
// base uses net.DialTimeout over TCP. The returned function matches
// syncnet.DialFunc, so it plugs straight into syncnet.WithDialFunc.
func (in *Injector) WrapDial(base func(addr string, timeout time.Duration) (net.Conn, error)) func(addr string, timeout time.Duration) (net.Conn, error) {
	if base == nil {
		base = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		attempt := in.dials.Add(1) - 1
		if attempt < int64(in.spec.RefuseDials) {
			metInjectedRefusals.Inc()
			return nil, ErrInjectedRefusal
		}
		conn, err := base(addr, timeout)
		if err != nil {
			return nil, err
		}
		return in.wrap(conn), nil
	}
}

// WrapListener returns a listener whose accepted connections carry the
// spec's faults, for injecting faults on the wearable-agent side.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, in: in}
}

func (in *Injector) wrap(conn net.Conn) net.Conn {
	idx := in.conns.Add(1) - 1
	destructive := in.spec.ResetConnections < 0 || idx < int64(in.spec.ResetConnections)
	return &faultConn{
		Conn:        conn,
		spec:        &in.spec,
		destructive: destructive,
		rng:         rand.New(rand.NewSource(Mix(in.spec.Seed, idx))),
	}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.wrap(conn), nil
}

// faultConn injects the spec's read-side faults. Requests in the syncnet
// protocol are tiny, so read-side faults exercise both directions: a reset
// aborts the underlying connection, which the peer observes on its next
// read or write.
type faultConn struct {
	net.Conn
	spec        *NetSpec
	destructive bool

	mu   sync.Mutex
	rng  *rand.Rand
	read int64
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	delay := c.spec.Latency
	if c.spec.Jitter > 0 {
		delay += time.Duration(c.rng.Int63n(int64(c.spec.Jitter)))
	}
	if c.spec.ReadChunk > 0 && len(p) > c.spec.ReadChunk {
		p = p[:c.spec.ReadChunk]
	}
	reset := false
	if c.destructive {
		remaining := c.spec.ResetAfterBytes - c.read
		if remaining <= 0 {
			reset = true
		} else if int64(len(p)) > remaining {
			p = p[:remaining]
		}
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		metInjectedResets.Inc()
		c.abort()
		return 0, ErrInjectedReset
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.read += int64(n)
	c.mu.Unlock()
	return n, err
}

// abort tears the connection down so the peer sees a hard reset rather than
// a clean close: for TCP, SO_LINGER(0) makes Close send an RST.
func (c *faultConn) abort() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
}

// Mix derives a decorrelated RNG seed from (seed, index) with the
// SplitMix64 finalizer, matching eval.SampleSeed: per-index fault streams
// depend only on the pair, never on scheduling order.
func Mix(seed, index int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
