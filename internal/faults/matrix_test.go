package faults_test

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vibguard/internal/acoustics"
	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/faults"
	"vibguard/internal/phoneme"
	"vibguard/internal/segment"
	"vibguard/internal/selection"
	"vibguard/internal/syncnet"
)

// The fault-matrix suite runs the real end-to-end pipeline — wearable agent
// over TCP, hardened client with retry/backoff, full Inspect — under every
// (network fault x signal fault) combination with fixed seeds. Every cell
// must produce either the correct verdict or one of the typed errors; never
// a panic, never a NaN score. All randomness is seeded, so the suite is
// deterministic under -race and arbitrary scheduling.

const matrixSeed = 1013

// matrixScenario is one synthesized command heard by the VA device and the
// wearable, built once and shared read-only across all cells.
type matrixScenario struct {
	defense    *core.Defense
	legitVA    []float64
	legitWear  []float64
	attackVA   []float64
	attackWear []float64
}

var (
	scenarioOnce sync.Once
	scenario     *matrixScenario
	scenarioErr  error
)

func matrixScenarioFor(t *testing.T) *matrixScenario {
	t.Helper()
	scenarioOnce.Do(func() { scenario, scenarioErr = buildMatrixScenario() })
	if scenarioErr != nil {
		t.Fatal(scenarioErr)
	}
	return scenario
}

func buildMatrixScenario() (*matrixScenario, error) {
	rng := rand.New(rand.NewSource(matrixSeed))
	synth, err := phoneme.NewSynthesizer(phoneme.NewStudioVoicePool(1, matrixSeed)[0])
	if err != nil {
		return nil, err
	}
	utt, err := synth.Synthesize(phoneme.Commands()[1])
	if err != nil {
		return nil, err
	}
	spans := segment.OracleSpans(utt, selection.CanonicalSelected())
	room, err := acoustics.RoomByName("A")
	if err != nil {
		return nil, err
	}
	transmit := func(spl, dist float64, barrier bool) ([]float64, error) {
		return room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: barrier, SampleRate: 16000,
		}, rng)
	}
	legitVA, err := transmit(72, 1.5, false)
	if err != nil {
		return nil, err
	}
	legitNear, err := transmit(72, 0.3, false)
	if err != nil {
		return nil, err
	}
	attackVA, err := transmit(80, 2.1, true)
	if err != nil {
		return nil, err
	}
	attackNear, err := transmit(80, 2.4, true)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDefense(core.DefaultConfig(device.NewFossilGen5(), &detector.StaticSegmenter{Spans: spans}))
	if err != nil {
		return nil, err
	}
	return &matrixScenario{
		defense:    d,
		legitVA:    legitVA,
		legitWear:  syncnet.SimulateNetworkDelay(legitNear, 0.1, 16000, rng),
		attackVA:   attackVA,
		attackWear: syncnet.SimulateNetworkDelay(attackNear, 0.08, 16000, rng),
	}, nil
}

// matrixPolicy keeps the retry backoff fast enough for a 36-cell matrix.
func matrixPolicy() syncnet.RetryPolicy {
	return syncnet.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2}
}

// runCell serves wear through a fresh agent, fetches it through a fresh
// hardened client dialing through the cell's fault injector, and inspects
// the result. It returns the transport or validation error as-is so the
// caller can classify it.
func runCell(t *testing.T, sc *matrixScenario, net faults.NetSpec, va, wear []float64, rngSeed int64) (*core.Verdict, error) {
	t.Helper()
	agent, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return wear, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	client, err := syncnet.NewReliableClient(agent.Addr(),
		syncnet.WithDialFunc(faults.NewInjector(net).WrapDial(nil)),
		syncnet.WithRetryPolicy(matrixPolicy()),
		syncnet.WithTimeouts(time.Second, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	got, err := client.RequestRecording()
	if err != nil {
		return nil, err
	}
	return sc.defense.Inspect(va, got, rand.New(rand.NewSource(rngSeed)))
}

type netCase struct {
	name string
	spec faults.NetSpec
	// wantErr is non-nil for faults no retry policy can survive; it takes
	// precedence over the signal expectation because the recording never
	// arrives.
	wantErr error
}

type sigCase struct {
	name string
	spec faults.SignalSpec
	// wantErr is the typed validation error for fatal corruption; nil means
	// the pipeline must degrade gracefully to a verdict.
	wantErr error
	// wantAttack is the required verdict when wantErr is nil.
	wantAttack bool
}

func matrixNetCases() []netCase {
	return []netCase{
		{name: "clean", spec: faults.NetSpec{}},
		{name: "latency-jitter", spec: faults.NetSpec{Seed: 1, Latency: time.Millisecond, Jitter: 2 * time.Millisecond}},
		{name: "partial-reads", spec: faults.NetSpec{Seed: 2, ReadChunk: 61}},
		{name: "reset-then-recover", spec: faults.NetSpec{Seed: 3, ResetConnections: 1, ResetAfterBytes: 4096}},
		{name: "refuse-then-recover", spec: faults.NetSpec{Seed: 4, RefuseDials: 2}},
		{name: "blackhole", spec: faults.NetSpec{Seed: 5, ResetConnections: -1}, wantErr: syncnet.ErrRetriesExhausted},
	}
}

func matrixSigCases() []sigCase {
	return []sigCase{
		{name: "none", spec: faults.SignalSpec{Kind: faults.SignalNone, Seed: matrixSeed}},
		{name: "truncate", spec: faults.SignalSpec{Kind: faults.SignalTruncate, Seed: matrixSeed}, wantErr: core.ErrLengthMismatch},
		{name: "clip", spec: faults.SignalSpec{Kind: faults.SignalClip, Severity: 0.5, Seed: matrixSeed}},
		{name: "nonfinite", spec: faults.SignalSpec{Kind: faults.SignalNonFinite, Seed: matrixSeed}, wantErr: core.ErrNonFiniteRecording},
		{name: "dc-offset", spec: faults.SignalSpec{Kind: faults.SignalDCOffset, Severity: 0.2, Seed: matrixSeed}},
		{name: "rate-mismatch", spec: faults.SignalSpec{Kind: faults.SignalRateMismatch, Severity: 0.5, Seed: matrixSeed}, wantErr: core.ErrLengthMismatch},
	}
}

// TestFaultMatrix is the full (network x signal) grid on a legitimate
// command: 6 network faults x 6 signal faults, every cell end-to-end.
func TestFaultMatrix(t *testing.T) {
	sc := matrixScenarioFor(t)
	for ni, nc := range matrixNetCases() {
		for si, sgc := range matrixSigCases() {
			nc, sgc := nc, sgc
			cell := int64(ni*100 + si)
			t.Run(nc.name+"/"+sgc.name, func(t *testing.T) {
				wear := sgc.spec.Apply(sc.legitWear)
				v, err := runCell(t, sc, nc.spec, sc.legitVA, wear, faults.Mix(matrixSeed, cell))
				switch {
				case nc.wantErr != nil:
					if !errors.Is(err, nc.wantErr) {
						t.Fatalf("err = %v, want %v", err, nc.wantErr)
					}
				case sgc.wantErr != nil:
					if !errors.Is(err, sgc.wantErr) {
						t.Fatalf("err = %v, want %v", err, sgc.wantErr)
					}
					var issue *core.RecordingIssue
					if !errors.As(err, &issue) {
						t.Fatalf("err %v is not a *core.RecordingIssue", err)
					}
				default:
					if err != nil {
						t.Fatalf("cell should degrade gracefully, got %v", err)
					}
					if math.IsNaN(v.Score) || math.IsInf(v.Score, 0) {
						t.Fatalf("non-finite score %v", v.Score)
					}
					if v.Attack != sgc.wantAttack {
						t.Errorf("verdict attack=%v (score %v), want %v", v.Attack, v.Score, sgc.wantAttack)
					}
				}
			})
		}
	}
}

// TestFaultMatrixDetectsAttackUnderFaults verifies the injected faults do
// not mask a real thru-barrier attack: a degraded network and a survivable
// corruption must still yield an attack verdict.
func TestFaultMatrixDetectsAttackUnderFaults(t *testing.T) {
	sc := matrixScenarioFor(t)
	spec := faults.NetSpec{Seed: 6, ReadChunk: 61, RefuseDials: 1}
	wear := (faults.SignalSpec{Kind: faults.SignalDCOffset, Severity: 0.1, Seed: matrixSeed}).Apply(sc.attackWear)
	v, err := runCell(t, sc, spec, sc.attackVA, wear, faults.Mix(matrixSeed, 999))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack {
		t.Errorf("thru-barrier attack not flagged under faults (score %v)", v.Score)
	}
	clean, err := runCell(t, sc, faults.NetSpec{}, sc.legitVA, sc.legitWear, faults.Mix(matrixSeed, 998))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Attack {
		t.Errorf("legit command flagged on clean network (score %v)", clean.Score)
	}
	if clean.Score <= v.Score {
		t.Errorf("legit score %v not above attack score %v", clean.Score, v.Score)
	}
}

// TestFaultMatrixDeterministic pins the determinism contract: rerunning a
// fault-heavy cell with the same seeds reproduces the exact score bits,
// regardless of goroutine scheduling or TCP fragmentation.
func TestFaultMatrixDeterministic(t *testing.T) {
	sc := matrixScenarioFor(t)
	spec := faults.NetSpec{Seed: 7, ReadChunk: 127, ResetConnections: 1, ResetAfterBytes: 2048}
	wear := (faults.SignalSpec{Kind: faults.SignalDCOffset, Severity: 0.15, Seed: matrixSeed}).Apply(sc.legitWear)
	first, err := runCell(t, sc, spec, sc.legitVA, wear, faults.Mix(matrixSeed, 42))
	if err != nil {
		t.Fatal(err)
	}
	second, err := runCell(t, sc, spec, sc.legitVA, wear, faults.Mix(matrixSeed, 42))
	if err != nil {
		t.Fatal(err)
	}
	if first.Score != second.Score {
		t.Errorf("score not reproducible: %v vs %v", first.Score, second.Score)
	}
	if first.Attack != second.Attack || first.SyncOffset != second.SyncOffset {
		t.Errorf("verdict not reproducible: %+v vs %+v", first, second)
	}
}
