package phoneme

import (
	"math"
	"testing"

	"vibguard/internal/dsp"
)

func testProfile() VoiceProfile {
	return VoiceProfile{
		Name: "T01", Sex: Male, F0: 120, FormantScale: 1.0,
		Loudness: 1.0, Jitter: 0.01, Seed: 42,
	}
}

func TestNewSynthesizerValidation(t *testing.T) {
	bad := testProfile()
	bad.F0 = 10
	if _, err := NewSynthesizer(bad); err == nil {
		t.Error("invalid F0 should error")
	}
	bad = testProfile()
	bad.FormantScale = 3
	if _, err := NewSynthesizer(bad); err == nil {
		t.Error("invalid formant scale should error")
	}
	bad = testProfile()
	bad.Loudness = 0
	if _, err := NewSynthesizer(bad); err == nil {
		t.Error("zero loudness should error")
	}
	bad = testProfile()
	bad.Jitter = 0.5
	if _, err := NewSynthesizer(bad); err == nil {
		t.Error("excessive jitter should error")
	}
	if _, err := NewSynthesizer(testProfile()); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestSynthesizeAllPhonemes(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range All() {
		seg, err := s.Phoneme(spec.Symbol)
		if err != nil {
			t.Errorf("%q: %v", spec.Symbol, err)
			continue
		}
		if len(seg) == 0 {
			t.Errorf("%q: empty segment", spec.Symbol)
			continue
		}
		rms := dsp.RMS(seg)
		if rms <= 0 {
			t.Errorf("%q: silent segment", spec.Symbol)
		}
		for i, v := range seg {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%q: non-finite sample at %d", spec.Symbol, i)
				break
			}
		}
	}
}

func TestSynthesizeIntensityOrdering(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	rmsOf := func(sym string) float64 {
		seg, err := s.Phoneme(sym)
		if err != nil {
			t.Fatal(err)
		}
		return dsp.RMS(seg)
	}
	// Strong vowels must be much louder than weak fricatives.
	if rmsOf("aa") < 5*rmsOf("s") {
		t.Errorf("aa RMS %v not >> s RMS %v", rmsOf("aa"), rmsOf("s"))
	}
	if rmsOf("ao") < 5*rmsOf("z") {
		t.Errorf("ao RMS %v not >> z RMS %v", rmsOf("ao"), rmsOf("z"))
	}
}

func TestVowelFormantStructure(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	seg, err := s.PhonemeDur("ae", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	spec := dsp.MagnitudeSpectrum(seg)
	n := len(seg)
	bandEnergy := func(lo, hi float64) float64 {
		sum := 0.0
		for k := dsp.FrequencyBin(lo, n, SampleRate); k <= dsp.FrequencyBin(hi, n, SampleRate); k++ {
			sum += spec[k] * spec[k]
		}
		return sum
	}
	// /ae/ has F1=660: energy near F1 should dominate energy far above F3.
	nearF1 := bandEnergy(500, 900)
	above := bandEnergy(4000, 6000)
	if nearF1 < 10*above {
		t.Errorf("F1 band energy %v not dominant over 4-6kHz %v", nearF1, above)
	}
}

func TestFricativeHighFrequencyEnergy(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	seg, err := s.PhonemeDur("s", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	spec := dsp.MagnitudeSpectrum(seg)
	n := len(seg)
	bandEnergy := func(lo, hi float64) float64 {
		sum := 0.0
		for k := dsp.FrequencyBin(lo, n, SampleRate); k <= dsp.FrequencyBin(hi, n, SampleRate); k++ {
			sum += spec[k] * spec[k]
		}
		return sum
	}
	// /s/ noise centered at 6kHz: high band should dominate low band.
	high := bandEnergy(5000, 7000)
	low := bandEnergy(100, 1000)
	if high < 5*low {
		t.Errorf("/s/ high-band %v not dominant over low-band %v", high, low)
	}
}

func TestVoicedPhonemeHasF0Harmonics(t *testing.T) {
	p := testProfile()
	p.Jitter = 0 // clean harmonics for measurement
	s, err := NewSynthesizer(p)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := s.PhonemeDur("aa", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	spec := dsp.MagnitudeSpectrum(seg)
	n := len(seg)
	// Peak near F0 (120Hz) or its low harmonics should be strong relative
	// to inter-harmonic valleys.
	f0Bin := dsp.FrequencyBin(120, n, SampleRate)
	valleyBin := dsp.FrequencyBin(180, n, SampleRate)
	peak := 0.0
	for k := f0Bin - 2; k <= f0Bin+2; k++ {
		if spec[k] > peak {
			peak = spec[k]
		}
	}
	valley := spec[valleyBin]
	if peak < 2*valley {
		t.Errorf("F0 peak %v vs valley %v: no harmonic structure", peak, valley)
	}
}

func TestDiphthongFormantGlide(t *testing.T) {
	p := testProfile()
	s, err := NewSynthesizer(p)
	if err != nil {
		t.Fatal(err)
	}
	// /ay/ glides F2 from 1090 to 1990.
	seg, err := s.PhonemeDur("ay", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	third := len(seg) / 3
	early := seg[:third]
	late := seg[2*third:]
	// Ratio of energy near the F2 target (1990Hz) to energy near the F2
	// origin (1090Hz) must grow as the glide progresses.
	f2Ratio := func(x []float64) float64 {
		spec := dsp.MagnitudeSpectrum(x)
		band := func(lo, hi float64) float64 {
			sum := 0.0
			for k := dsp.FrequencyBin(lo, len(x), SampleRate); k <= dsp.FrequencyBin(hi, len(x), SampleRate); k++ {
				sum += spec[k] * spec[k]
			}
			return sum
		}
		origin := band(900, 1300)
		target := band(1700, 2300)
		if origin == 0 {
			return 0
		}
		return target / origin
	}
	if f2Ratio(late) <= f2Ratio(early) {
		t.Errorf("diphthong F2 did not glide up: early ratio %v, late ratio %v", f2Ratio(early), f2Ratio(late))
	}
}

func TestStopHasClosureSilence(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	seg, err := s.PhonemeDur("t", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// First ~25% (closure) should be much quieter than the burst region.
	closure := dsp.RMS(seg[:len(seg)/5])
	rest := dsp.RMS(seg[len(seg)/4:])
	if closure > rest*0.3 {
		t.Errorf("closure RMS %v not quiet vs rest %v", closure, rest)
	}
}

func TestSynthesizerDeterministicPerSeed(t *testing.T) {
	a, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	segA, _ := a.Phoneme("ae")
	segB, _ := b.Phoneme("ae")
	if len(segA) != len(segB) {
		t.Fatal("lengths differ")
	}
	for i := range segA {
		if segA[i] != segB[i] {
			t.Fatal("same seed produced different audio")
		}
	}
}

func TestPhonemeDurErrors(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PhonemeDur("ae", 0); err == nil {
		t.Error("zero duration should error")
	}
	if _, err := s.PhonemeDur("nope", 0.1); err == nil {
		t.Error("unknown phoneme should error")
	}
}

func TestNewVoicePool(t *testing.T) {
	pool := NewVoicePool(20, 1)
	if len(pool) != 20 {
		t.Fatalf("pool size %d", len(pool))
	}
	males, females := 0, 0
	for _, p := range pool {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		switch p.Sex {
		case Male:
			males++
			if p.F0 > 160 {
				t.Errorf("male %s F0 %v too high", p.Name, p.F0)
			}
		case Female:
			females++
			if p.F0 < 160 {
				t.Errorf("female %s F0 %v too low", p.Name, p.F0)
			}
		}
	}
	if males != 10 || females != 10 {
		t.Errorf("males %d females %d, want 10/10", males, females)
	}
	// Deterministic.
	pool2 := NewVoicePool(20, 1)
	if pool[3].F0 != pool2[3].F0 {
		t.Error("pool not deterministic for same seed")
	}
	pool3 := NewVoicePool(20, 2)
	if pool[3].F0 == pool3[3].F0 {
		t.Error("different seeds produced identical profiles")
	}
}

func TestSexString(t *testing.T) {
	if Male.String() != "male" || Female.String() != "female" || Sex(0).String() != "unknown" {
		t.Error("Sex.String() mismatch")
	}
}
