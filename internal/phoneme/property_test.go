package phoneme

import (
	"math"
	"testing"
	"testing/quick"

	"vibguard/internal/dsp"
)

// Property: every phoneme synthesized by any plausible voice is finite,
// non-silent, and has RMS proportional to its inventory intensity.
func TestSynthesisPropertyAllVoices(t *testing.T) {
	f := func(seedRaw int64, voiceIdx uint8) bool {
		pool := NewVoicePool(6, seedRaw%1e6)
		voice := pool[int(voiceIdx)%len(pool)]
		synth, err := NewSynthesizer(voice)
		if err != nil {
			return false
		}
		for _, sym := range []string{"ae", "s", "t", "m", "er", "aa"} {
			seg, err := synth.Phoneme(sym)
			if err != nil {
				return false
			}
			for _, v := range seg {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
			spec, err := Lookup(sym)
			if err != nil {
				return false
			}
			// The post-normalization edge fades shave a few percent off
			// the RMS target.
			want := 0.1 * spec.Intensity * voice.Loudness
			if math.Abs(dsp.RMS(seg)-want) > want*0.08 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: utterance alignments tile the non-pause audio exactly.
func TestAlignmentTilingProperty(t *testing.T) {
	f := func(seedRaw int64, cmdIdx uint8) bool {
		pool := NewVoicePool(2, seedRaw%1e6)
		synth, err := NewSynthesizer(pool[0])
		if err != nil {
			return false
		}
		cmd := Commands()[int(cmdIdx)%len(Commands())]
		utt, err := synth.Synthesize(cmd)
		if err != nil {
			return false
		}
		// Segments are ordered, non-overlapping, within bounds, and the
		// total segment length plus pauses equals the utterance length.
		prevEnd := 0
		segTotal := 0
		for _, seg := range utt.Alignment {
			if seg.Start < prevEnd || seg.End <= seg.Start || seg.End > len(utt.Samples) {
				return false
			}
			segTotal += seg.Duration()
			prevEnd = seg.End
		}
		pauses := 0
		for _, p := range cmd.Phonemes {
			if p == Pause {
				pauses++
			}
		}
		return segTotal+pauses*int(pauseDuration*SampleRate) == len(utt.Samples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: brighter voices have relatively more high-frequency energy.
func TestBrightnessMonotonicity(t *testing.T) {
	base := VoiceProfile{Name: "B", Sex: Male, F0: 120, FormantScale: 1.0,
		Loudness: 1.0, Jitter: 0.0, Seed: 1, Brightness: 0.4}
	bright := base
	bright.Brightness = 1.2
	ratioOf := func(p VoiceProfile) float64 {
		synth, err := NewSynthesizer(p)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := synth.PhonemeDur("ae", 0.3)
		if err != nil {
			t.Fatal(err)
		}
		spec := dsp.PowerSpectrum(seg)
		lo, hi := 0.0, 0.0
		for k := range spec {
			f := dsp.BinFrequency(k, len(seg), SampleRate)
			switch {
			case f > 100 && f <= 1000:
				lo += spec[k]
			case f > 1000 && f <= 4000:
				hi += spec[k]
			}
		}
		return hi / lo
	}
	if ratioOf(bright) <= ratioOf(base) {
		t.Error("brightness did not raise high-frequency fraction")
	}
}

// Property: formant scale shifts spectral energy upward.
func TestFormantScaleShiftsSpectrum(t *testing.T) {
	low := VoiceProfile{Name: "L", Sex: Male, F0: 120, FormantScale: 0.94,
		Loudness: 1.0, Jitter: 0.0, Seed: 1, Brightness: 1.0}
	high := low
	high.FormantScale = 1.2
	centroid := func(p VoiceProfile) float64 {
		synth, err := NewSynthesizer(p)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := synth.PhonemeDur("ae", 0.3)
		if err != nil {
			t.Fatal(err)
		}
		spec := dsp.PowerSpectrum(seg)
		num, den := 0.0, 0.0
		for k := range spec {
			f := dsp.BinFrequency(k, len(seg), SampleRate)
			if f > 3000 {
				break
			}
			num += f * spec[k]
			den += spec[k]
		}
		return num / den
	}
	if centroid(high) <= centroid(low) {
		t.Error("higher formant scale did not raise the spectral centroid")
	}
}
