package phoneme

import (
	"fmt"

	"vibguard/internal/dsp"
)

// Pause is the pseudo-symbol marking a short inter-word silence in a
// phonetic transcription.
const Pause = "pau"

// pauseDuration is the length of an inter-word pause in seconds.
const pauseDuration = 0.3

// Command is a VA voice command with its phonetic transcription.
type Command struct {
	// Text is the orthographic command, e.g. "turn on the lights".
	Text string
	// Phonemes is the phoneme sequence; Pause marks word boundaries.
	Phonemes []string
}

// Segment is one time-aligned phoneme in a synthesized utterance,
// equivalent to a TIMIT phonetic transcription entry.
type Segment struct {
	// Symbol is the phoneme symbol (never Pause).
	Symbol string
	// Start and End are sample offsets into the utterance, [Start, End).
	Start, End int
}

// Duration returns the segment length in samples.
func (s Segment) Duration() int { return s.End - s.Start }

// Commands returns the corpus of 20 common VA voice commands used by the
// evaluation, phonetically transcribed with the Table II inventory. The
// set mirrors the command categories of the paper's references [16], [17]
// (smart-home control, media, timers, queries).
func Commands() []Command {
	return []Command{
		{Text: "turn on the lights", Phonemes: split("t er n", "aa n", "dh ah", "l ay t s")},
		{Text: "turn off the lights", Phonemes: split("t er n", "ao f", "dh ah", "l ay t s")},
		{Text: "what is the weather", Phonemes: split("w ah t", "ih z", "dh ah", "w eh dh er")},
		{Text: "set an alarm", Phonemes: split("s eh t", "ae n", "ah l aa r m")},
		{Text: "play some music", Phonemes: split("p l ey", "s ah m", "m y uw z ih k")},
		{Text: "stop the music", Phonemes: split("s t aa p", "dh ah", "m y uw z ih k")},
		{Text: "lock the front door", Phonemes: split("l aa k", "dh ah", "f r ah n t", "d ao r")},
		{Text: "unlock the door", Phonemes: split("ah n l aa k", "dh ah", "d ao r")},
		{Text: "what time is it", Phonemes: split("w ah t", "t ay m", "ih z", "ih t")},
		{Text: "open the garage", Phonemes: split("ow p ah n", "dh ah", "g ah r aa jh")},
		{Text: "volume up", Phonemes: split("v aa l y uw m", "ah p")},
		{Text: "volume down", Phonemes: split("v aa l y uw m", "d aw n")},
		{Text: "good morning", Phonemes: split("g uh d", "m ao r n ih ng")},
		{Text: "call my phone", Phonemes: split("k ao l", "m ay", "f ow n")},
		{Text: "add milk to the list", Phonemes: split("ae d", "m ih l k", "t uw", "dh ah", "l ih s t")},
		{Text: "turn up the heat", Phonemes: split("t er n", "ah p", "dh ah", "hh iy t")},
		{Text: "set a timer for ten minutes", Phonemes: split("s eh t", "ah", "t ay m er", "f ao r", "t eh n", "m ih n ah t s")},
		{Text: "dim the bedroom lights", Phonemes: split("d ih m", "dh ah", "b eh d r uw m", "l ay t s")},
		{Text: "what is on my calendar", Phonemes: split("w ah t", "ih z", "aa n", "m ay", "k ae l ah n d er")},
		{Text: "turn on the coffee maker", Phonemes: split("t er n", "aa n", "dh ah", "k ao f iy", "m ey k er")},
	}
}

// WakeWords returns the wake-word commands used by the Table I attack
// study.
func WakeWords() []Command {
	return []Command{
		{Text: "ok google", Phonemes: split("ow k ey", "g uw g ah l")},
		{Text: "alexa", Phonemes: split("ah l eh k s ah")},
		{Text: "hey siri", Phonemes: split("hh ey", "s ih r iy")},
	}
}

// split joins space-separated phoneme words with Pause markers.
func split(words ...string) []string {
	out := make([]string, 0, 16)
	for i, w := range words {
		if i > 0 {
			out = append(out, Pause)
		}
		start := 0
		for j := 0; j <= len(w); j++ {
			if j == len(w) || w[j] == ' ' {
				if j > start {
					out = append(out, w[start:j])
				}
				start = j + 1
			}
		}
	}
	return out
}

// Validate checks that every phoneme of the command exists in the
// inventory.
func (c *Command) Validate() error {
	if len(c.Phonemes) == 0 {
		return fmt.Errorf("command %q: empty transcription", c.Text)
	}
	for _, p := range c.Phonemes {
		if p == Pause {
			continue
		}
		if _, err := Lookup(p); err != nil {
			return fmt.Errorf("command %q: %w", c.Text, err)
		}
	}
	return nil
}

// Utterance is a synthesized command waveform with its time-aligned
// phonetic transcription.
type Utterance struct {
	// Samples is the 16 kHz waveform.
	Samples []float64
	// Alignment lists every phoneme segment with sample-accurate bounds.
	Alignment []Segment
	// Command is the source command.
	Command Command
	// Speaker names the voice profile that produced the utterance.
	Speaker string
}

// SampleRate returns the waveform sampling rate.
func (u *Utterance) SampleRate() float64 { return SampleRate }

// Synthesize renders a command with this synthesizer's voice, returning
// the waveform and the time-aligned phoneme segments.
func (s *Synthesizer) Synthesize(cmd Command) (*Utterance, error) {
	if err := cmd.Validate(); err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	var samples []float64
	alignment := make([]Segment, 0, len(cmd.Phonemes))
	for _, sym := range cmd.Phonemes {
		if sym == Pause {
			samples = append(samples, make([]float64, int(pauseDuration*SampleRate))...)
			continue
		}
		seg, err := s.Phoneme(sym)
		if err != nil {
			return nil, fmt.Errorf("synth: %w", err)
		}
		start := len(samples)
		samples = append(samples, seg...)
		alignment = append(alignment, Segment{Symbol: sym, Start: start, End: len(samples)})
	}
	return &Utterance{
		Samples:   samples,
		Alignment: alignment,
		Command:   cmd,
		Speaker:   s.profile.Name,
	}, nil
}

// ExtractSegments concatenates the sample ranges of the given segments from
// a waveform, with short fades to avoid splice clicks. Segments outside the
// waveform are clamped.
func ExtractSegments(samples []float64, segs []Segment) []float64 {
	var out []float64
	for _, seg := range segs {
		start, end := seg.Start, seg.End
		if start < 0 {
			start = 0
		}
		if end > len(samples) {
			end = len(samples)
		}
		if end <= start {
			continue
		}
		piece := make([]float64, end-start)
		copy(piece, samples[start:end])
		out = append(out, dsp.FadeEdges(piece, len(piece)/16)...)
	}
	return out
}
