package phoneme

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/dsp"
)

// refRMS is the target RMS amplitude of a reference vowel (Intensity 1.0,
// Loudness 1.0). It corresponds to roughly 74 dB SPL under the package's
// 94 dB = 1.0 calibration, a typical close-talking conversational level.
const refRMS = 0.1

// Synthesizer produces phoneme and command waveforms for one speaker using
// a classic source-filter model: a Rosenberg glottal pulse train (voiced
// source) and band-filtered noise (frication source) shaped by cascaded
// formant resonators.
type Synthesizer struct {
	profile VoiceProfile
	rng     *rand.Rand
}

// NewSynthesizer creates a synthesizer for the given voice profile.
func NewSynthesizer(profile VoiceProfile) (*Synthesizer, error) {
	if err := profile.Validate(); err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	return &Synthesizer{
		profile: profile,
		rng:     rand.New(rand.NewSource(profile.Seed)),
	}, nil
}

// Profile returns the synthesizer's voice profile.
func (s *Synthesizer) Profile() VoiceProfile { return s.profile }

// Phoneme synthesizes one phoneme at its typical duration.
func (s *Synthesizer) Phoneme(symbol string) ([]float64, error) {
	spec, err := Lookup(symbol)
	if err != nil {
		return nil, err
	}
	return s.synthesize(spec, spec.Duration), nil
}

// PhonemeDur synthesizes one phoneme with an explicit duration in seconds.
func (s *Synthesizer) PhonemeDur(symbol string, duration float64) ([]float64, error) {
	spec, err := Lookup(symbol)
	if err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("synth: duration %v must be positive", duration)
	}
	return s.synthesize(spec, duration), nil
}

func (s *Synthesizer) synthesize(spec *Spec, duration float64) []float64 {
	n := int(duration * SampleRate)
	if n < 16 {
		n = 16
	}
	var out []float64
	switch spec.Class {
	case ClassVowel, ClassSemivowel:
		out = s.voicedSegmentTilt(n, spec.Formants, spec.Formants, spec.TiltBoost)
	case ClassDiphthong:
		out = s.voicedSegment(n, spec.Formants, spec.FormantsEnd)
	case ClassNasal:
		out = s.nasalSegment(n, spec.Formants)
	case ClassFricativeVoiced:
		voiced := s.voicedSegment(n, spec.Formants, spec.Formants)
		noise := s.noiseBand(n, spec.NoiseCenter, spec.NoiseWidth)
		out = dsp.Mix(dsp.Scale(voiced, 0.5), dsp.Scale(noise, 0.8))
	case ClassFricativeUnvoiced, ClassAspirate:
		out = s.noiseBand(n, spec.NoiseCenter, spec.NoiseWidth)
	case ClassStopUnvoiced:
		out = s.stopSegment(n, spec, false)
	case ClassStopVoiced:
		out = s.stopSegment(n, spec, true)
	case ClassAffricate:
		out = s.affricateSegment(n, spec)
	default:
		out = make([]float64, n)
	}
	// Post-normalize so relative phoneme intensities are controlled by the
	// inventory table rather than by incidental filter gains.
	target := refRMS * spec.Intensity * s.profile.Loudness
	normalized, err := dsp.NormalizeRMS(out, target)
	if err != nil {
		// Unreachable: target is always non-negative.
		return out
	}
	return dsp.FadeEdges(normalized, len(normalized)/16)
}

// voicedSegment generates a glottal pulse train filtered by a cascade of
// formant resonators. Formant frequencies glide linearly from start to end
// (identical arrays give a monophthong).
func (s *Synthesizer) voicedSegment(n int, start, end [3]float64) []float64 {
	return s.voicedSegmentTilt(n, start, end, 0)
}

// voicedSegmentTilt is voicedSegment with a spectral tilt boost: loud
// pressed vowels have stronger F2/F3 relative to F1.
func (s *Synthesizer) voicedSegmentTilt(n int, start, end [3]float64, tiltBoost float64) []float64 {
	src := s.glottalSource(n)
	amps := formantAmplitudes
	if tiltBoost > 0 {
		amps[1] *= 1 + tiltBoost
		amps[2] *= 1 + tiltBoost
	}
	if b := s.profile.Brightness; b > 0 {
		amps[1] *= b
		amps[2] *= b
	}
	return s.formantFilterAmps(src, start, end, amps)
}

func (s *Synthesizer) nasalSegment(n int, formants [3]float64) []float64 {
	seg := s.voicedSegment(n, formants, formants)
	// Nasal murmur: strong low resonance, moderately damped higher
	// formants (the oral anti-resonance removes some but not all
	// high-frequency energy).
	return dsp.FrequencyShape(seg, SampleRate, func(f float64) float64 {
		switch {
		case f < 500:
			return 0.6
		case f < 2500:
			return 1
		default:
			return 0.6
		}
	})
}

func (s *Synthesizer) stopSegment(n int, spec *Spec, voiced bool) []float64 {
	closure := n * 3 / 10
	burstLen := int(0.01 * SampleRate)
	if closure+burstLen > n {
		burstLen = n - closure
	}
	tail := n - closure - burstLen
	out := make([]float64, 0, n)
	// Closure: silence, or a low-frequency voice bar for voiced stops.
	if voiced {
		bar := dsp.Tone(s.profile.F0, 0.3, float64(closure)/SampleRate, SampleRate)
		out = append(out, bar...)
	} else {
		out = append(out, make([]float64, closure)...)
	}
	// Release burst: a short noise click in the stop's burst band.
	burst := s.noiseBand(burstLen, spec.NoiseCenter, spec.NoiseWidth)
	out = append(out, dsp.Scale(burst, 2.0)...)
	// Aspiration (unvoiced) or voiced transition.
	if tail > 0 {
		if voiced {
			out = append(out, dsp.Scale(s.voicedSegment(tail, spec.Formants, spec.Formants), 0.8)...)
		} else {
			out = append(out, dsp.Scale(s.noiseBand(tail, spec.NoiseCenter, spec.NoiseWidth*1.5), 0.4)...)
		}
	}
	return out
}

func (s *Synthesizer) affricateSegment(n int, spec *Spec) []float64 {
	closure := n / 5
	burstLen := int(0.008 * SampleRate)
	if closure+burstLen > n {
		burstLen = n - closure
	}
	fricLen := n - closure - burstLen
	out := make([]float64, 0, n)
	out = append(out, make([]float64, closure)...)
	out = append(out, dsp.Scale(s.noiseBand(burstLen, spec.NoiseCenter, spec.NoiseWidth), 1.8)...)
	if fricLen > 0 {
		fric := s.noiseBand(fricLen, spec.NoiseCenter, spec.NoiseWidth)
		if spec.Voiced() {
			voiced := s.voicedSegment(fricLen, spec.Formants, spec.Formants)
			fric = dsp.Mix(dsp.Scale(fric, 0.7), dsp.Scale(voiced, 0.5))
		}
		out = append(out, fric...)
	}
	return out
}

// glottalSource generates a Rosenberg-pulse train at the speaker's F0 with
// cycle-to-cycle jitter.
func (s *Synthesizer) glottalSource(n int) []float64 {
	out := make([]float64, n)
	pos := 0
	for pos < n {
		f0 := s.profile.F0 * (1 + s.profile.Jitter*s.rng.NormFloat64())
		if f0 < 40 {
			f0 = 40
		}
		period := int(SampleRate / f0)
		if period < 8 {
			period = 8
		}
		// Rosenberg pulse: opening phase 40% of the period, closing 20%.
		open := period * 2 / 5
		closing := period / 5
		for i := 0; i < period && pos+i < n; i++ {
			var v float64
			switch {
			case i < open:
				v = 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(open)))
			case i < open+closing:
				v = math.Cos(math.Pi * float64(i-open) / (2 * float64(closing)))
			}
			out[pos+i] = v
		}
		pos += period
	}
	// Remove the DC offset of the pulse train and apply spectral tilt by
	// differentiation (radiation characteristic).
	diff := make([]float64, n)
	prev := 0.0
	for i, v := range out {
		diff[i] = v - prev
		prev = v
	}
	return diff
}

// formantAmplitudes are the relative peak amplitudes of F1..F3 in the
// parallel formant bank. They set the spectral balance of voiced sounds:
// F1 dominates, with F2/F3 10-14 dB below, matching typical vowel spectra.
var formantAmplitudes = [3]float64{1.0, 0.6, 0.28}

// formantFilter runs x through a parallel bank of three time-varying
// two-pole resonators whose center frequencies glide from start to end.
// Each resonator's output is normalized to its analytic center-frequency
// gain so formant amplitudes are controlled by formantAmplitudes rather
// than by incidental filter gains.
func (s *Synthesizer) formantFilter(x []float64, start, end [3]float64) []float64 {
	return s.formantFilterAmps(x, start, end, formantAmplitudes)
}

// formantFilterAmps is formantFilter with explicit formant amplitudes.
func (s *Synthesizer) formantFilterAmps(x []float64, start, end [3]float64, amps [3]float64) []float64 {
	const blockSize = 64
	bandwidths := [3]float64{80, 110, 160}
	sum := make([]float64, len(x))
	for fIdx := 0; fIdx < 3; fIdx++ {
		if start[fIdx] <= 0 {
			continue
		}
		var y1, y2 float64
		for blockStart := 0; blockStart < len(x); blockStart += blockSize {
			blockEnd := blockStart + blockSize
			if blockEnd > len(x) {
				blockEnd = len(x)
			}
			frac := float64(blockStart) / float64(len(x))
			endF := end[fIdx]
			if endF <= 0 {
				endF = start[fIdx]
			}
			freq := (start[fIdx] + (endF-start[fIdx])*frac) * s.profile.FormantScale
			if freq > SampleRate/2*0.95 {
				freq = SampleRate / 2 * 0.95
			}
			r := math.Exp(-math.Pi * bandwidths[fIdx] / SampleRate)
			w := 2 * math.Pi * freq / SampleRate
			b1 := 2 * r * math.Cos(w)
			b2 := -r * r
			a := 1 - b1 - b2
			// Analytic gain of the resonator at its center frequency.
			denRe := 1 - b1*math.Cos(w) - b2*math.Cos(2*w)
			denIm := b1*math.Sin(w) + b2*math.Sin(2*w)
			centerGain := math.Abs(a) / math.Hypot(denRe, denIm)
			if centerGain == 0 {
				centerGain = 1
			}
			scale := amps[fIdx] / centerGain
			for i := blockStart; i < blockEnd; i++ {
				y := a*x[i] + b1*y1 + b2*y2
				y2, y1 = y1, y
				sum[i] += scale * y
			}
		}
	}
	return sum
}

// noiseBand generates white noise band-passed around center with the given
// width.
func (s *Synthesizer) noiseBand(n int, center, width float64) []float64 {
	if n <= 0 {
		return nil
	}
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = s.rng.NormFloat64()
	}
	if center <= 0 {
		return noise
	}
	lo := center - width/2
	hi := center + width/2
	if lo < 50 {
		lo = 50
	}
	nyq := SampleRate/2 - 50
	if hi > nyq {
		hi = nyq
	}
	return dsp.FrequencyShape(noise, SampleRate, func(f float64) float64 {
		if f >= lo && f <= hi {
			return 1
		}
		// Gentle skirts so the band edges are not brick-wall.
		d := math.Min(math.Abs(f-lo), math.Abs(f-hi))
		return math.Exp(-d / 300)
	})
}
