// Package phoneme provides a synthetic stand-in for the TIMIT phoneme
// corpus used by the paper: a 37-phoneme inventory matching Table II, a
// formant-based source-filter synthesizer, parametric voice profiles for
// simulated speakers, and a corpus of VA voice commands with time-aligned
// phonetic transcriptions.
//
// The substitution is documented in DESIGN.md: the defense depends only on
// the spectral envelope class of each phoneme (strong voiced vowels vs.
// weak fricatives vs. stop bursts), which formant synthesis reproduces.
package phoneme

import (
	"fmt"
	"sort"
)

// SampleRate is the audio sampling rate used throughout the system, matching
// the 16 kHz microphone recordings in the paper.
const SampleRate = 16000.0

// Class categorizes a phoneme by its articulatory production, which
// determines its synthesis recipe and its spectral energy profile.
type Class int

// Phoneme classes.
const (
	ClassVowel Class = iota + 1
	ClassDiphthong
	ClassSemivowel
	ClassNasal
	ClassFricativeVoiced
	ClassFricativeUnvoiced
	ClassStopVoiced
	ClassStopUnvoiced
	ClassAffricate
	ClassAspirate
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassVowel:
		return "vowel"
	case ClassDiphthong:
		return "diphthong"
	case ClassSemivowel:
		return "semivowel"
	case ClassNasal:
		return "nasal"
	case ClassFricativeVoiced:
		return "fricative-voiced"
	case ClassFricativeUnvoiced:
		return "fricative-unvoiced"
	case ClassStopVoiced:
		return "stop-voiced"
	case ClassStopUnvoiced:
		return "stop-unvoiced"
	case ClassAffricate:
		return "affricate"
	case ClassAspirate:
		return "aspirate"
	default:
		return "unknown"
	}
}

// Spec describes one phoneme: its TIMIT symbol, articulatory class,
// reference formant frequencies (adult male), synthesis parameters, and its
// appearance count in common VA commands (Table II of the paper).
type Spec struct {
	// Symbol is the TIMIT phoneme symbol, e.g. "ae" or "t".
	Symbol string
	// Class is the articulatory class.
	Class Class
	// Formants holds up to three formant center frequencies in Hz for
	// voiced sounds. For diphthongs these are the starting formants.
	Formants [3]float64
	// FormantsEnd holds the ending formants for diphthongs (zero for
	// monophthongs).
	FormantsEnd [3]float64
	// NoiseCenter and NoiseWidth describe the frication noise band in Hz
	// for fricatives, affricates, and stop bursts.
	NoiseCenter float64
	NoiseWidth  float64
	// Intensity is the relative acoustic intensity of the phoneme on an
	// open scale where 1.0 is a typical vowel. The paper's phoneme
	// selection hinges on these differences: /aa/ and /ao/ are produced
	// with strong larynx vibration, while /s/, /z/ and similar fricatives
	// are inherently weak (Section V-A).
	Intensity float64
	// TiltBoost raises the F2/F3 formant amplitudes of loud pressed
	// vowels (reduced spectral tilt): their sounds "still contain strong
	// high-frequency components after passing the barrier" (Section V-A),
	// which is exactly why /aa/ and /ao/ fail Criterion I.
	TiltBoost float64
	// Duration is the typical duration in seconds.
	Duration float64
	// Appearances is the phoneme's appearance count in common VA voice
	// commands from Table II.
	Appearances int
}

// Voiced reports whether the phoneme has a periodic glottal source.
func (s *Spec) Voiced() bool {
	switch s.Class {
	case ClassVowel, ClassDiphthong, ClassSemivowel, ClassNasal,
		ClassFricativeVoiced, ClassStopVoiced:
		return true
	default:
		return false
	}
}

// IsDiphthong reports whether the phoneme glides between two formant
// targets.
func (s *Spec) IsDiphthong() bool { return s.Class == ClassDiphthong }

// inventory lists the 37 common phonemes of Table II. The paper's table
// prints "ch" twice (counts 69 and 13); the second entry is interpreted as
// /eh/, the only frequent English vowel otherwise absent from the table.
//
// Formant values follow the classic Peterson-Barney measurements for adult
// male speakers; consonant noise bands follow standard acoustic-phonetics
// references.
var inventory = []Spec{
	// Vowels.
	{Symbol: "iy", Class: ClassVowel, Formants: [3]float64{270, 2150, 3010}, Intensity: 0.9, Duration: 0.13, Appearances: 65},
	{Symbol: "ih", Class: ClassVowel, Formants: [3]float64{390, 1990, 2550}, Intensity: 0.85, Duration: 0.10, Appearances: 99},
	{Symbol: "eh", Class: ClassVowel, Formants: [3]float64{530, 1840, 2480}, Intensity: 0.9, Duration: 0.11, Appearances: 13},
	{Symbol: "ae", Class: ClassVowel, Formants: [3]float64{660, 1720, 2410}, Intensity: 1.0, Duration: 0.16, Appearances: 39},
	{Symbol: "aa", Class: ClassVowel, Formants: [3]float64{730, 1090, 2440}, TiltBoost: 10.0, Intensity: 2.8, Duration: 0.16, Appearances: 32},
	{Symbol: "ao", Class: ClassVowel, Formants: [3]float64{570, 840, 2410}, TiltBoost: 10.0, Intensity: 2.7, Duration: 0.16, Appearances: 29},
	{Symbol: "ah", Class: ClassVowel, Formants: [3]float64{640, 1190, 2390}, TiltBoost: 0.8, Intensity: 0.95, Duration: 0.09, Appearances: 107},
	{Symbol: "uh", Class: ClassVowel, Formants: [3]float64{440, 1020, 2240}, Intensity: 0.8, Duration: 0.09, Appearances: 6},
	{Symbol: "uw", Class: ClassVowel, Formants: [3]float64{300, 870, 2240}, Intensity: 0.85, Duration: 0.13, Appearances: 31},
	{Symbol: "er", Class: ClassVowel, Formants: [3]float64{490, 1350, 1690}, Intensity: 0.9, Duration: 0.13, Appearances: 58},
	// Diphthongs.
	{Symbol: "ey", Class: ClassDiphthong, Formants: [3]float64{530, 1840, 2480}, FormantsEnd: [3]float64{390, 1990, 2550}, Intensity: 0.95, Duration: 0.16, Appearances: 38},
	{Symbol: "ay", Class: ClassDiphthong, Formants: [3]float64{730, 1090, 2440}, FormantsEnd: [3]float64{390, 1900, 2550}, Intensity: 0.8, Duration: 0.18, Appearances: 36},
	{Symbol: "aw", Class: ClassDiphthong, Formants: [3]float64{730, 1090, 2440}, FormantsEnd: [3]float64{440, 1020, 2240}, Intensity: 0.8, Duration: 0.18, Appearances: 15},
	{Symbol: "ow", Class: ClassDiphthong, Formants: [3]float64{570, 840, 2410}, FormantsEnd: [3]float64{300, 870, 2240}, Intensity: 0.95, Duration: 0.16, Appearances: 17},
	// Semivowels and liquids.
	{Symbol: "w", Class: ClassSemivowel, Formants: [3]float64{300, 610, 2200}, TiltBoost: 2.8, Intensity: 1.3, Duration: 0.08, Appearances: 40},
	{Symbol: "y", Class: ClassSemivowel, Formants: [3]float64{270, 2100, 3000}, TiltBoost: 1.5, Intensity: 0.9, Duration: 0.07, Appearances: 15},
	{Symbol: "r", Class: ClassSemivowel, Formants: [3]float64{310, 1060, 1380}, TiltBoost: 1.5, Intensity: 0.8, Duration: 0.08, Appearances: 100},
	{Symbol: "l", Class: ClassSemivowel, Formants: [3]float64{360, 1300, 2500}, TiltBoost: 0.8, Intensity: 1.0, Duration: 0.07, Appearances: 70},
	// Nasals.
	{Symbol: "m", Class: ClassNasal, Formants: [3]float64{250, 1100, 2100}, Intensity: 0.95, Duration: 0.08, Appearances: 65},
	{Symbol: "n", Class: ClassNasal, Formants: [3]float64{250, 1400, 2300}, Intensity: 1.0, Duration: 0.07, Appearances: 108},
	{Symbol: "ng", Class: ClassNasal, Formants: [3]float64{250, 1600, 2200}, Intensity: 0.75, Duration: 0.08, Appearances: 17},
	// Voiced fricatives.
	{Symbol: "v", Class: ClassFricativeVoiced, Formants: [3]float64{250, 1100, 2300}, NoiseCenter: 3500, NoiseWidth: 2500, Intensity: 0.45, Duration: 0.07, Appearances: 28},
	{Symbol: "dh", Class: ClassFricativeVoiced, Formants: [3]float64{250, 1300, 2500}, NoiseCenter: 4000, NoiseWidth: 3000, Intensity: 0.45, Duration: 0.05, Appearances: 12},
	{Symbol: "z", Class: ClassFricativeVoiced, Formants: [3]float64{250, 1400, 2500}, NoiseCenter: 5500, NoiseWidth: 2500, Intensity: 0.025, Duration: 0.08, Appearances: 49},
	// Unvoiced fricatives.
	{Symbol: "f", Class: ClassFricativeUnvoiced, NoiseCenter: 4000, NoiseWidth: 3500, Intensity: 0.40, Duration: 0.09, Appearances: 29},
	{Symbol: "th", Class: ClassFricativeUnvoiced, NoiseCenter: 4500, NoiseWidth: 3500, Intensity: 0.018, Duration: 0.08, Appearances: 10},
	{Symbol: "s", Class: ClassFricativeUnvoiced, NoiseCenter: 6000, NoiseWidth: 2000, Intensity: 0.02, Duration: 0.10, Appearances: 101},
	{Symbol: "sh", Class: ClassFricativeUnvoiced, NoiseCenter: 3000, NoiseWidth: 1500, Intensity: 0.022, Duration: 0.10, Appearances: 8},
	{Symbol: "hh", Class: ClassAspirate, NoiseCenter: 1500, NoiseWidth: 1400, Intensity: 0.50, Duration: 0.06, Appearances: 20},
	// Voiced stops.
	{Symbol: "b", Class: ClassStopVoiced, Formants: [3]float64{300, 800, 2100}, NoiseCenter: 800, NoiseWidth: 700, Intensity: 0.85, Duration: 0.05, Appearances: 31},
	{Symbol: "d", Class: ClassStopVoiced, Formants: [3]float64{300, 1700, 2600}, NoiseCenter: 3000, NoiseWidth: 2000, Intensity: 0.7, Duration: 0.05, Appearances: 83},
	{Symbol: "g", Class: ClassStopVoiced, Formants: [3]float64{300, 1500, 2200}, NoiseCenter: 2000, NoiseWidth: 1500, Intensity: 0.8, Duration: 0.05, Appearances: 13},
	// Unvoiced stops.
	{Symbol: "p", Class: ClassStopUnvoiced, NoiseCenter: 900, NoiseWidth: 800, Intensity: 0.75, Duration: 0.06, Appearances: 37},
	{Symbol: "t", Class: ClassStopUnvoiced, NoiseCenter: 3500, NoiseWidth: 2500, Intensity: 0.6, Duration: 0.06, Appearances: 129},
	{Symbol: "k", Class: ClassStopUnvoiced, NoiseCenter: 2200, NoiseWidth: 1500, Intensity: 0.6, Duration: 0.06, Appearances: 70},
	// Affricates.
	{Symbol: "ch", Class: ClassAffricate, NoiseCenter: 3600, NoiseWidth: 1400, Intensity: 0.55, Duration: 0.10, Appearances: 69},
	{Symbol: "jh", Class: ClassAffricate, Formants: [3]float64{300, 1700, 2500}, NoiseCenter: 3700, NoiseWidth: 1300, Intensity: 0.55, Duration: 0.09, Appearances: 14},
}

var bySymbol = func() map[string]*Spec {
	m := make(map[string]*Spec, len(inventory))
	for i := range inventory {
		m[inventory[i].Symbol] = &inventory[i]
	}
	return m
}()

// Lookup returns the spec for a phoneme symbol.
func Lookup(symbol string) (*Spec, error) {
	s, ok := bySymbol[symbol]
	if !ok {
		return nil, fmt.Errorf("phoneme: unknown symbol %q", symbol)
	}
	return s, nil
}

// All returns the full 37-phoneme inventory sorted by descending appearance
// count (the order of Table II), then alphabetically.
func All() []Spec {
	out := make([]Spec, len(inventory))
	copy(out, inventory)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Appearances != out[j].Appearances {
			return out[i].Appearances > out[j].Appearances
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out
}

// Symbols returns all phoneme symbols in Table II order.
func Symbols() []string {
	all := All()
	out := make([]string, len(all))
	for i := range all {
		out[i] = all[i].Symbol
	}
	return out
}

// Count returns the inventory size (37).
func Count() int { return len(inventory) }
