package phoneme

import (
	"testing"
)

func TestInventorySize(t *testing.T) {
	if Count() != 37 {
		t.Errorf("inventory has %d phonemes, want 37 (Table II)", Count())
	}
}

func TestInventoryUniqueSymbols(t *testing.T) {
	seen := make(map[string]bool, Count())
	for _, s := range All() {
		if seen[s.Symbol] {
			t.Errorf("duplicate symbol %q", s.Symbol)
		}
		seen[s.Symbol] = true
	}
}

func TestInventoryTableIICounts(t *testing.T) {
	// Spot-check appearance counts against Table II.
	want := map[string]int{
		"t": 129, "n": 108, "ah": 107, "s": 101, "r": 100, "ih": 99,
		"d": 83, "l": 70, "k": 70, "ch": 69, "iy": 65, "m": 65,
		"er": 58, "z": 49, "w": 40, "ae": 39, "ey": 38, "p": 37,
		"ay": 36, "aa": 32, "uw": 31, "b": 31, "ao": 29, "f": 29,
		"v": 28, "hh": 20, "ng": 17, "ow": 17, "y": 15, "aw": 15,
		"jh": 14, "g": 13, "eh": 13, "dh": 12, "th": 10, "sh": 8, "uh": 6,
	}
	if len(want) != 37 {
		t.Fatalf("test table has %d entries", len(want))
	}
	for sym, count := range want {
		spec, err := Lookup(sym)
		if err != nil {
			t.Errorf("Lookup(%q): %v", sym, err)
			continue
		}
		if spec.Appearances != count {
			t.Errorf("%q appearances = %d, want %d", sym, spec.Appearances, count)
		}
	}
}

func TestAllSortedByAppearances(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].Appearances > all[i-1].Appearances {
			t.Fatalf("All() not sorted at %d: %q(%d) after %q(%d)",
				i, all[i].Symbol, all[i].Appearances, all[i-1].Symbol, all[i-1].Appearances)
		}
	}
	if all[0].Symbol != "t" {
		t.Errorf("most common phoneme = %q, want t", all[0].Symbol)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("zz"); err == nil {
		t.Error("unknown symbol should error")
	}
}

func TestVoicedClassification(t *testing.T) {
	voiced := []string{"ae", "aa", "m", "z", "b", "w", "ey"}
	unvoiced := []string{"s", "t", "f", "sh", "hh", "ch", "p", "k", "th"}
	for _, sym := range voiced {
		spec, err := Lookup(sym)
		if err != nil {
			t.Fatal(err)
		}
		if !spec.Voiced() {
			t.Errorf("%q should be voiced", sym)
		}
	}
	for _, sym := range unvoiced {
		spec, err := Lookup(sym)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Voiced() {
			t.Errorf("%q should be unvoiced", sym)
		}
	}
}

func TestDiphthongsHaveEndFormants(t *testing.T) {
	for _, s := range All() {
		if s.Class == ClassDiphthong {
			if !s.IsDiphthong() {
				t.Errorf("%q IsDiphthong() false", s.Symbol)
			}
			if s.FormantsEnd[0] == 0 {
				t.Errorf("diphthong %q has no end formants", s.Symbol)
			}
		}
	}
}

func TestSpecSanity(t *testing.T) {
	for _, s := range All() {
		if s.Intensity <= 0 {
			t.Errorf("%q intensity %v", s.Symbol, s.Intensity)
		}
		if s.Duration <= 0 || s.Duration > 0.5 {
			t.Errorf("%q duration %v", s.Symbol, s.Duration)
		}
		if s.Appearances <= 0 {
			t.Errorf("%q appearances %d", s.Symbol, s.Appearances)
		}
		if s.Voiced() && s.Class != ClassStopVoiced && s.Formants[0] <= 0 {
			t.Errorf("voiced %q has no formants", s.Symbol)
		}
		if (s.Class == ClassFricativeUnvoiced || s.Class == ClassStopUnvoiced ||
			s.Class == ClassAffricate || s.Class == ClassAspirate) && s.NoiseCenter <= 0 {
			t.Errorf("noise phoneme %q has no noise band", s.Symbol)
		}
	}
}

func TestWeakAndStrongPhonemeIntensities(t *testing.T) {
	// The paper's selection logic requires /s/, /z/ (and similar) to be
	// inherently weak and /aa/, /ao/ to be inherently strong.
	for _, weak := range []string{"s", "z", "th", "sh"} {
		spec, err := Lookup(weak)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Intensity > 0.1 {
			t.Errorf("%q intensity %v, want <= 0.1 (weak per Section V-A)", weak, spec.Intensity)
		}
	}
	for _, strong := range []string{"aa", "ao"} {
		spec, err := Lookup(strong)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Intensity < 1.3 {
			t.Errorf("%q intensity %v, want >= 1.3 (strong larynx vibration)", strong, spec.Intensity)
		}
	}
}

func TestClassString(t *testing.T) {
	classes := []Class{
		ClassVowel, ClassDiphthong, ClassSemivowel, ClassNasal,
		ClassFricativeVoiced, ClassFricativeUnvoiced, ClassStopVoiced,
		ClassStopUnvoiced, ClassAffricate, ClassAspirate,
	}
	seen := make(map[string]bool)
	for _, c := range classes {
		name := c.String()
		if name == "unknown" || seen[name] {
			t.Errorf("class %d has bad/duplicate name %q", c, name)
		}
		seen[name] = true
	}
	if Class(0).String() != "unknown" {
		t.Error("zero class should be unknown")
	}
}

func TestSymbols(t *testing.T) {
	syms := Symbols()
	if len(syms) != 37 {
		t.Fatalf("len = %d", len(syms))
	}
	if syms[0] != "t" {
		t.Errorf("first = %q", syms[0])
	}
}
