package phoneme

import (
	"testing"

	"vibguard/internal/dsp"
)

func TestCommandsValid(t *testing.T) {
	cmds := Commands()
	if len(cmds) != 20 {
		t.Fatalf("corpus has %d commands, want 20", len(cmds))
	}
	seen := make(map[string]bool, len(cmds))
	for _, c := range cmds {
		if err := c.Validate(); err != nil {
			t.Errorf("%v", err)
		}
		if seen[c.Text] {
			t.Errorf("duplicate command %q", c.Text)
		}
		seen[c.Text] = true
	}
}

func TestWakeWordsValid(t *testing.T) {
	ww := WakeWords()
	if len(ww) != 3 {
		t.Fatalf("wake words = %d, want 3", len(ww))
	}
	for _, c := range ww {
		if err := c.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestCommandValidateErrors(t *testing.T) {
	empty := Command{Text: "x"}
	if err := empty.Validate(); err == nil {
		t.Error("empty transcription should error")
	}
	bad := Command{Text: "x", Phonemes: []string{"nope"}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown phoneme should error")
	}
	pauseOnly := Command{Text: "x", Phonemes: []string{Pause, "ae"}}
	if err := pauseOnly.Validate(); err != nil {
		t.Errorf("pause marker rejected: %v", err)
	}
}

func TestSplit(t *testing.T) {
	got := split("t er n", "aa n")
	want := []string{"t", "er", "n", Pause, "aa", "n"}
	if len(got) != len(want) {
		t.Fatalf("split = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("split[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSynthesizeCommand(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	cmd := Commands()[0] // "turn on the lights"
	utt, err := s.Synthesize(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if utt.Speaker != "T01" {
		t.Errorf("speaker = %q", utt.Speaker)
	}
	if utt.SampleRate() != SampleRate {
		t.Errorf("rate = %v", utt.SampleRate())
	}
	// Alignment covers exactly the non-pause phonemes, in order, within
	// bounds, non-overlapping.
	nonPause := 0
	for _, p := range cmd.Phonemes {
		if p != Pause {
			nonPause++
		}
	}
	if len(utt.Alignment) != nonPause {
		t.Fatalf("alignment has %d segments, want %d", len(utt.Alignment), nonPause)
	}
	prevEnd := 0
	for i, seg := range utt.Alignment {
		if seg.Start < prevEnd {
			t.Errorf("segment %d overlaps previous", i)
		}
		if seg.End <= seg.Start {
			t.Errorf("segment %d empty", i)
		}
		if seg.End > len(utt.Samples) {
			t.Errorf("segment %d out of bounds", i)
		}
		if seg.Duration() != seg.End-seg.Start {
			t.Errorf("segment %d Duration mismatch", i)
		}
		prevEnd = seg.End
	}
	// Utterance long enough to be a plausible command (> 0.5s).
	if len(utt.Samples) < int(0.5*SampleRate) {
		t.Errorf("utterance only %d samples", len(utt.Samples))
	}
	if dsp.RMS(utt.Samples) <= 0 {
		t.Error("silent utterance")
	}
}

func TestSynthesizeCommandErrors(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Synthesize(Command{Text: "bad", Phonemes: []string{"zzz"}}); err == nil {
		t.Error("bad command should error")
	}
}

func TestExtractSegments(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 1
	}
	segs := []Segment{{Symbol: "ae", Start: 10, End: 30}, {Symbol: "t", Start: 50, End: 70}}
	out := ExtractSegments(samples, segs)
	if len(out) != 40 {
		t.Errorf("extracted %d samples, want 40", len(out))
	}
	// Clamping.
	out = ExtractSegments(samples, []Segment{{Start: -5, End: 10}, {Start: 95, End: 200}, {Start: 60, End: 40}})
	if len(out) != 15 {
		t.Errorf("clamped extraction = %d samples, want 15", len(out))
	}
	// Extraction must not modify the source.
	for i, v := range samples {
		if v != 1 {
			t.Fatalf("source modified at %d", i)
		}
	}
}

func TestAllCommandsSynthesize(t *testing.T) {
	s, err := NewSynthesizer(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range append(Commands(), WakeWords()...) {
		utt, err := s.Synthesize(cmd)
		if err != nil {
			t.Errorf("%q: %v", cmd.Text, err)
			continue
		}
		if len(utt.Samples) == 0 {
			t.Errorf("%q: empty", cmd.Text)
		}
	}
}
