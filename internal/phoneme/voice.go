package phoneme

import (
	"fmt"
	"math/rand"
)

// Sex of a simulated speaker; it shifts the fundamental frequency and the
// formant scale.
type Sex int

// Speaker sexes.
const (
	Male Sex = iota + 1
	Female
)

// String returns "male" or "female".
func (s Sex) String() string {
	switch s {
	case Male:
		return "male"
	case Female:
		return "female"
	default:
		return "unknown"
	}
}

// VoiceProfile parameterizes one simulated speaker. Profiles drive the
// synthesizer so that different "participants" produce acoustically
// distinct versions of the same command, which is what makes the random
// attack (another speaker's voice) differ from the legitimate user.
type VoiceProfile struct {
	// Name identifies the speaker, e.g. "P03".
	Name string
	// Sex selects the base voice register.
	Sex Sex
	// F0 is the fundamental frequency in Hz (male ~85-155, female ~165-255).
	F0 float64
	// FormantScale multiplies all formant frequencies (shorter vocal
	// tracts shift formants up; ~1.0 male, ~1.15 female).
	FormantScale float64
	// Loudness multiplies the overall amplitude (speaker-dependent).
	Loudness float64
	// Jitter is the relative cycle-to-cycle F0 perturbation (~0.5-2%).
	Jitter float64
	// Brightness scales the F2/F3 formant amplitudes: some speakers have
	// inherently dark voices with little high-frequency energy (the very
	// voices that defeat audio-domain high-frequency checks, Section I),
	// others bright ones. 1.0 is neutral.
	Brightness float64
	// Seed makes the speaker's random articulation reproducible.
	Seed int64
}

// NewVoicePool deterministically generates n voice profiles, alternating
// male and female, from the given seed. It mirrors the paper's participant
// pool (20 recruited participants): voices span the full brightness range,
// including the dark voices with little inherent high-frequency energy
// that defeat audio-domain checks (Section I).
func NewVoicePool(n int, seed int64) []VoiceProfile {
	return newPool(n, seed, 0.3, 1.25)
}

// NewStudioVoicePool generates speakers with the brighter, close-mic
// spectral balance of a studio-recorded corpus such as TIMIT; the offline
// phoneme-selection study and the phoneme-detector training use this pool.
func NewStudioVoicePool(n int, seed int64) []VoiceProfile {
	return newPool(n, seed, 0.85, 1.25)
}

func newPool(n int, seed int64, brightLo, brightHi float64) []VoiceProfile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]VoiceProfile, 0, n)
	for i := 0; i < n; i++ {
		sex := Male
		if i%2 == 1 {
			sex = Female
		}
		p := VoiceProfile{
			Name: fmt.Sprintf("P%02d", i+1),
			Sex:  sex,
			Seed: rng.Int63(),
		}
		switch sex {
		case Female:
			p.F0 = 165 + rng.Float64()*90
			p.FormantScale = 1.10 + rng.Float64()*0.12
		default:
			p.F0 = 85 + rng.Float64()*70
			p.FormantScale = 0.94 + rng.Float64()*0.12
		}
		p.Loudness = 0.85 + rng.Float64()*0.3
		p.Jitter = 0.015 + rng.Float64()*0.02
		p.Brightness = brightLo + rng.Float64()*(brightHi-brightLo)
		out = append(out, p)
	}
	return out
}

// Validate reports whether the profile parameters are physically plausible.
func (p *VoiceProfile) Validate() error {
	if p.F0 < 50 || p.F0 > 500 {
		return fmt.Errorf("voice %s: F0 %vHz outside [50, 500]", p.Name, p.F0)
	}
	if p.FormantScale < 0.7 || p.FormantScale > 1.5 {
		return fmt.Errorf("voice %s: formant scale %v outside [0.7, 1.5]", p.Name, p.FormantScale)
	}
	if p.Loudness <= 0 {
		return fmt.Errorf("voice %s: loudness %v must be positive", p.Name, p.Loudness)
	}
	if p.Jitter < 0 || p.Jitter > 0.1 {
		return fmt.Errorf("voice %s: jitter %v outside [0, 0.1]", p.Name, p.Jitter)
	}
	if p.Brightness < 0 {
		return fmt.Errorf("voice %s: brightness %v must be non-negative", p.Name, p.Brightness)
	}
	return nil
}
