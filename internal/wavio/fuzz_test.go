package wavio

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRead hammers the WAV decoder with malformed input: corrupt headers,
// absurd chunk sizes, truncated data chunks, and zero/absurd sample rates.
// The decoder must never panic or over-allocate; on success the samples
// must be finite, in range, and the sample rate sane. Seed corpora live in
// testdata/fuzz/FuzzRead.
func FuzzRead(f *testing.F) {
	// A valid tiny file.
	var valid bytes.Buffer
	if err := Write(&valid, []float64{0, 0.5, -0.5, 1, -1}, 16000); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// A valid file with an unknown chunk before the data chunk.
	withList := injectChunk(valid.Bytes(), "LIST", []byte("INFOjunk"))
	f.Add(withList)
	// Truncated variants.
	f.Add(valid.Bytes()[:20])
	f.Add(valid.Bytes()[:45])
	// Not RIFF at all.
	f.Add([]byte("not a wav file"))
	// Zero sample rate.
	f.Add(mutateUint32(valid.Bytes(), 24, 0))
	// Absurd sample rate.
	f.Add(mutateUint32(valid.Bytes(), 24, 0xFFFFFFFF))
	// Data chunk declaring 4 GiB.
	f.Add(mutateUint32(valid.Bytes(), 40, 0xFFFFFFFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		samples, rate, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rate <= 0 || rate > MaxSampleRate {
			t.Fatalf("accepted sample rate %d", rate)
		}
		for i, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("sample %d is non-finite: %v", i, s)
			}
			// int16 / 32767 can slightly exceed -1 at the negative rail.
			if s < -1.001 || s > 1.001 {
				t.Fatalf("sample %d = %v outside [-1, 1]", i, s)
			}
		}
	})
}

// mutateUint32 returns a copy of data with a little-endian uint32 patched
// in at off.
func mutateUint32(data []byte, off int, v uint32) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if off+4 <= len(out) {
		binary.LittleEndian.PutUint32(out[off:], v)
	}
	return out
}

// injectChunk inserts an extra chunk between the fmt and data chunks of a
// canonical 44-byte-header WAV.
func injectChunk(data []byte, id string, body []byte) []byte {
	const dataChunkOff = 36
	out := make([]byte, 0, len(data)+8+len(body))
	out = append(out, data[:dataChunkOff]...)
	out = append(out, id[:4]...)
	var size [4]byte
	binary.LittleEndian.PutUint32(size[:], uint32(len(body)))
	out = append(out, size[:]...)
	out = append(out, body...)
	out = append(out, data[dataChunkOff:]...)
	// Fix the RIFF size field.
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(out)-8))
	return out
}

// TestReadRejectsAbsurdInput pins the fuzz-hardening fixes as plain tests,
// so the guarantees hold even when fuzzing is not run.
func TestReadRejectsAbsurdInput(t *testing.T) {
	var valid bytes.Buffer
	if err := Write(&valid, []float64{0.25, -0.25}, 16000); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"zero sample rate", mutateUint32(valid.Bytes(), 24, 0)},
		{"absurd sample rate", mutateUint32(valid.Bytes(), 24, 0xFFFFFFFF)},
		{"4GiB data chunk", mutateUint32(valid.Bytes(), 40, 0xFFFFFFFF)},
		{"4GiB fmt chunk", mutateUint32(valid.Bytes(), 16, 0xFFFFFFFF)},
		{"truncated data", valid.Bytes()[:46]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Read(bytes.NewReader(tc.data)); err == nil {
				t.Error("corrupt stream accepted")
			}
		})
	}
	// The unknown-chunk path must still work.
	withList := injectChunk(valid.Bytes(), "LIST", []byte("INFO"))
	samples, rate, err := Read(bytes.NewReader(withList))
	if err != nil {
		t.Fatalf("valid file with LIST chunk rejected: %v", err)
	}
	if rate != 16000 || len(samples) != 2 {
		t.Errorf("rate=%d samples=%d", rate, len(samples))
	}
}
