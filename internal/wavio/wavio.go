// Package wavio reads and writes mono 16-bit PCM WAV files, so the
// simulated recordings, attack sounds, and vibration captures can be
// exported for listening or external analysis, and external recordings can
// be fed into the defense.
package wavio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// fmtChunkPCM is the PCM audio format tag.
const fmtChunkPCM = 1

// MaxSampleRate is the largest sample rate Read accepts. Real WAV files
// top out at 384 kHz; anything beyond this is a corrupt header.
const MaxSampleRate = 1 << 20

// maxChunkBytes caps a single chunk's declared size (64 MiB, ~35 minutes
// of 16 kHz mono audio). A corrupt or adversarial header can declare a
// 4 GiB chunk; without the cap, Read would attempt the allocation before
// ever touching the (much shorter) stream.
const maxChunkBytes = 64 << 20

// Write encodes samples in [-1, 1] as a mono 16-bit PCM WAV stream.
// Samples outside the range are clipped.
func Write(w io.Writer, samples []float64, sampleRate int) error {
	if sampleRate <= 0 {
		return fmt.Errorf("wavio: sample rate %d must be positive", sampleRate)
	}
	dataLen := len(samples) * 2
	var header [44]byte
	copy(header[0:4], "RIFF")
	binary.LittleEndian.PutUint32(header[4:8], uint32(36+dataLen))
	copy(header[8:12], "WAVE")
	copy(header[12:16], "fmt ")
	binary.LittleEndian.PutUint32(header[16:20], 16)
	binary.LittleEndian.PutUint16(header[20:22], fmtChunkPCM)
	binary.LittleEndian.PutUint16(header[22:24], 1) // mono
	binary.LittleEndian.PutUint32(header[24:28], uint32(sampleRate))
	binary.LittleEndian.PutUint32(header[28:32], uint32(sampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(header[32:34], 2)                    // block align
	binary.LittleEndian.PutUint16(header[34:36], 16)                   // bits per sample
	copy(header[36:40], "data")
	binary.LittleEndian.PutUint32(header[40:44], uint32(dataLen))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("wavio: header: %w", err)
	}
	buf := make([]byte, 2*len(samples))
	for i, s := range samples {
		if s > 1 {
			s = 1
		} else if s < -1 {
			s = -1
		}
		v := int16(math.Round(s * 32767))
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wavio: data: %w", err)
	}
	return nil
}

// WriteFile writes samples to a WAV file.
func WriteFile(path string, samples []float64, sampleRate int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wavio: %w", err)
	}
	if err := Write(f, samples, sampleRate); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wavio: close: %w", err)
	}
	return nil
}

// Read decodes a mono 16-bit PCM WAV stream, returning samples in [-1, 1]
// and the sample rate.
func Read(r io.Reader) ([]float64, int, error) {
	var header [12]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, 0, fmt.Errorf("wavio: riff header: %w", err)
	}
	if string(header[0:4]) != "RIFF" || string(header[8:12]) != "WAVE" {
		return nil, 0, fmt.Errorf("wavio: not a RIFF/WAVE stream")
	}
	var (
		sampleRate int
		numChans   int
		bits       int
		haveFmt    bool
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			return nil, 0, fmt.Errorf("wavio: chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		if size > maxChunkBytes {
			return nil, 0, fmt.Errorf("wavio: %q chunk declares %d bytes (max %d)", id, size, maxChunkBytes)
		}
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, 0, fmt.Errorf("wavio: fmt chunk: %w", err)
			}
			if len(body) < 16 {
				return nil, 0, fmt.Errorf("wavio: fmt chunk too short")
			}
			if tag := binary.LittleEndian.Uint16(body[0:2]); tag != fmtChunkPCM {
				return nil, 0, fmt.Errorf("wavio: unsupported format tag %d (want PCM)", tag)
			}
			numChans = int(binary.LittleEndian.Uint16(body[2:4]))
			sampleRate = int(binary.LittleEndian.Uint32(body[4:8]))
			bits = int(binary.LittleEndian.Uint16(body[14:16]))
			if numChans != 1 {
				return nil, 0, fmt.Errorf("wavio: %d channels unsupported (want mono)", numChans)
			}
			if bits != 16 {
				return nil, 0, fmt.Errorf("wavio: %d-bit samples unsupported (want 16)", bits)
			}
			if sampleRate <= 0 || sampleRate > MaxSampleRate {
				return nil, 0, fmt.Errorf("wavio: sample rate %d outside (0, %d]", sampleRate, MaxSampleRate)
			}
			haveFmt = true
		case "data":
			if !haveFmt {
				return nil, 0, fmt.Errorf("wavio: data chunk before fmt chunk")
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, 0, fmt.Errorf("wavio: data chunk: %w", err)
			}
			n := len(body) / 2
			samples := make([]float64, n)
			for i := 0; i < n; i++ {
				v := int16(binary.LittleEndian.Uint16(body[2*i:]))
				samples[i] = float64(v) / 32767
			}
			return samples, sampleRate, nil
		default:
			// Skip unknown chunks (LIST, fact, ...).
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return nil, 0, fmt.Errorf("wavio: skipping %q chunk: %w", id, err)
			}
		}
	}
}

// ReadFile reads a mono 16-bit PCM WAV file.
func ReadFile(path string) ([]float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wavio: %w", err)
	}
	defer func() { _ = f.Close() }()
	return Read(f)
}
