package wavio

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]float64, 1000)
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}
	var buf bytes.Buffer
	if err := Write(&buf, in, 16000); err != nil {
		t.Fatal(err)
	}
	out, rate, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 16000 {
		t.Errorf("rate = %d", rate)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Abs(out[i]-in[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %v -> %v", i, in[i], out[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []float64, rateRaw uint16) bool {
		rate := int(rateRaw)%48000 + 8000
		in := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			in[i] = math.Mod(v, 1)
		}
		var buf bytes.Buffer
		if err := Write(&buf, in, rate); err != nil {
			return false
		}
		out, gotRate, err := Read(&buf)
		if err != nil || gotRate != rate || len(out) != len(in) {
			return false
		}
		for i := range in {
			if math.Abs(out[i]-in[i]) > 1.0/16000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClipping(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float64{2.5, -3.0}, 8000); err != nil {
		t.Fatal(err)
	}
	out, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || math.Abs(out[1]+1) > 1.0/16000 {
		t.Errorf("clipped samples = %v", out)
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float64{0}, 0); err == nil {
		t.Error("zero rate should error")
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("not a wav"))); err == nil {
		t.Error("garbage should error")
	}
	// Valid RIFF but wrong format tag.
	var buf bytes.Buffer
	if err := Write(&buf, []float64{0, 0}, 8000); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[20] = 3 // float format tag
	if _, _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("non-PCM tag should error")
	}
	// Stereo.
	buf.Reset()
	if err := Write(&buf, []float64{0, 0}, 8000); err != nil {
		t.Fatal(err)
	}
	b = buf.Bytes()
	b[22] = 2
	if _, _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("stereo should error")
	}
	// Truncated data.
	buf.Reset()
	if err := Write(&buf, make([]float64, 100), 8000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(bytes.NewReader(buf.Bytes()[:50])); err == nil {
		t.Error("truncated stream should error")
	}
}

func TestSkipsUnknownChunks(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float64{0.5, -0.5}, 8000); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Insert a LIST chunk between fmt and data.
	list := append([]byte("LIST"), 4, 0, 0, 0, 'I', 'N', 'F', 'O')
	patched := append(append(append([]byte{}, raw[:36]...), list...), raw[36:]...)
	// Fix the RIFF size.
	patched[4] = byte(len(patched) - 8)
	out, rate, err := Read(bytes.NewReader(patched))
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 || len(out) != 2 {
		t.Errorf("rate %d, %d samples", rate, len(out))
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wav")
	in := []float64{0, 0.25, -0.25, 0.99}
	if err := WriteFile(path, in, 16000); err != nil {
		t.Fatal(err)
	}
	out, rate, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 16000 || len(out) != 4 {
		t.Errorf("rate %d, %d samples", rate, len(out))
	}
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "missing.wav")); err == nil {
		t.Error("missing file should error")
	}
}
