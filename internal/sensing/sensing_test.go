package sensing

import (
	"math"
	"math/rand"
	"testing"

	"vibguard/internal/device"
	"vibguard/internal/dsp"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.FFTSize != 64 {
		t.Error("STFT size should be 64 (Section VI-B)")
	}
	if cfg.CropHz != 5 {
		t.Error("crop should remove <= 5Hz (accelerometer artifact)")
	}
	if !cfg.Normalize {
		t.Error("max-normalization should be on (Section VI-C)")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.FFTSize = 63 },
		func(c *Config) { c.FFTSize = 0 },
		func(c *Config) { c.HopSize = -1 },
		func(c *Config) { c.CropHz = -1 },
		func(c *Config) { c.CropHz = 150 },
		func(c *Config) { c.HighPassHz = 150 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestExtractFeaturesShape(t *testing.T) {
	vib := dsp.Tone(30, 0.01, 2.0, device.AccelSampleRate)
	feat, err := ExtractFeatures(vib, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 64-point FFT at 200Hz: 33 bins, minus bins 0 and 1 (0 and 3.125Hz).
	if feat.NumBins() != 31 {
		t.Errorf("bins = %d, want 31 after 5Hz crop", feat.NumBins())
	}
	if feat.NumFrames() == 0 {
		t.Error("no frames")
	}
}

func TestExtractFeaturesCropRemovesArtifact(t *testing.T) {
	// A strong 2Hz drift plus a 30Hz tone: after the crop the 2Hz content
	// must be gone.
	cfg := DefaultConfig()
	cfg.Normalize = false
	cfg.BinStandardize = false
	cfg.HighPassHz = 0 // isolate the crop's effect
	drift := dsp.Tone(2, 0.3, 4.0, device.AccelSampleRate)
	tone := dsp.Tone(40, 0.3, 4.0, device.AccelSampleRate)
	feat, err := ExtractFeatures(dsp.Mix(drift, tone), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The huge drift lives below 5Hz; after cropping, the strongest
	// remaining bin should be near 30Hz, not at the lowest kept bin.
	bestBin, bestV := 0, 0.0
	mid := feat.NumFrames() / 2
	for k, v := range feat.Power[mid] {
		if v > bestV {
			bestBin, bestV = k, v
		}
	}
	// Bin k in the cropped spectrogram corresponds to (k+2)*3.125 Hz.
	freq := float64(bestBin+2) * device.AccelSampleRate / 64
	if math.Abs(freq-40) > 5 {
		t.Errorf("dominant frequency after crop = %vHz, want ~40", freq)
	}
}

func TestExtractFeaturesNormalized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BinStandardize = false
	vib := dsp.Tone(40, 5.0, 2.0, device.AccelSampleRate)
	feat, err := ExtractFeatures(vib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := feat.MaxValue(); math.Abs(m-1) > 1e-9 {
		t.Errorf("max after normalization = %v, want 1", m)
	}
}

func TestBinStandardizeRemovesStationaryShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Normalize = false
	// A stationary tone: after bin standardization each bin's temporal
	// mean is zero.
	vib := dsp.Tone(40, 1.0, 4.0, device.AccelSampleRate)
	feat, err := ExtractFeatures(vib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < feat.NumBins(); k++ {
		sum := 0.0
		for _, row := range feat.Power {
			sum += row[k]
		}
		mean := sum / float64(feat.NumFrames())
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("bin %d temporal mean = %v, want 0", k, mean)
		}
	}
}

func TestSenseFeaturesEndToEnd(t *testing.T) {
	w := device.NewFossilGen5()
	rng := rand.New(rand.NewSource(1))
	audio := dsp.Mix(dsp.Tone(300, 0.05, 1.5, 16000), dsp.Tone(2000, 0.05, 1.5, 16000))
	feat, err := SenseFeatures(w, audio, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if feat.NumFrames() == 0 || feat.NumBins() != 31 {
		t.Errorf("features %dx%d", feat.NumFrames(), feat.NumBins())
	}
}

func TestSameAudioSensedTwiceCorrelates(t *testing.T) {
	// The core cross-domain property: two sensing passes of the same
	// broadband audio yield highly correlated features, because broadband
	// sound is captured at high SNR.
	w := device.NewFossilGen5()
	audio := dsp.Mix(dsp.Tone(1900, 0.08, 2.0, 16000), dsp.Tone(2600, 0.05, 2.0, 16000), dsp.Tone(3500, 0.06, 2.0, 16000))
	// Amplitude-modulate so there is temporal structure to correlate.
	for i := range audio {
		audio[i] *= 0.5 + 0.5*math.Sin(2*math.Pi*3*float64(i)/16000)
	}
	f1, err := SenseFeatures(w, audio, DefaultConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := SenseFeatures(w, audio, DefaultConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if r := dsp.Correlate2D(f1, f2); r < 0.7 {
		t.Errorf("repeated sensing correlation = %v, want >= 0.7", r)
	}
}
