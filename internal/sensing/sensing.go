// Package sensing implements the vibration-domain feature extraction of
// Section VI-B: the wearable replays audio through its built-in speaker,
// captures the conductive vibration with its accelerometer, high-pass
// filters the measurement, derives a 64-point STFT spectrogram, crops the
// sub-5 Hz accelerometer artifact band, and max-normalizes the result so
// features from different recording distances are comparable.
package sensing

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/device"
	"vibguard/internal/dsp"
	"vibguard/internal/obs"
)

// Stage timers of the "pipeline.stage.*" family (see internal/core/obs.go):
// replay is the cross-domain sensing pass (speaker replay + accelerometer
// capture), stft the whole feature extraction (high-pass, STFT, crop,
// normalization). Observations are lock-free and allocation-free, so the
// parallel scoring workers share these handles without contention.
var (
	stageReplay = obs.Default().StageTimer("pipeline.stage.replay")
	stageSTFT   = obs.Default().StageTimer("pipeline.stage.stft")
)

// Config parameterizes vibration-domain feature extraction.
type Config struct {
	// FFTSize is the STFT window and FFT length (64 in the paper).
	FFTSize int
	// HopSize is the STFT hop (defaults to FFTSize/2).
	HopSize int
	// CropHz removes spectrogram bins at or below this frequency
	// (5 Hz in the paper, suppressing the accelerometer artifact and
	// body-motion interference).
	CropHz float64
	// HighPassHz is the cutoff of the preprocessing high-pass filter on
	// the raw accelerometer signal (0 disables).
	HighPassHz float64
	// Normalize applies max-normalization to the cropped spectrogram.
	Normalize bool
	// FrameNormalize divides every frame by its total power, cancelling
	// per-frame amplitude envelopes so the correlation compares spectral
	// shape: a shared loudness envelope (which even two noise-only
	// captures of the same command inherit through the segment fades)
	// otherwise masquerades as similarity.
	FrameNormalize bool
	// BinStandardize subtracts each frequency bin's temporal mean so the
	// correlation compares time-varying structure. The stationary
	// expected spectrum of a capture (the coupling curve shaping ambient
	// noise and amplifier noise) is identical on both devices and would
	// otherwise correlate even between two noise-only captures.
	BinStandardize bool
}

// DefaultConfig returns the paper's feature configuration.
func DefaultConfig() Config {
	return Config{FFTSize: 64, HopSize: 16, CropHz: 5, HighPassHz: 5, Normalize: true, FrameNormalize: false, BinStandardize: true}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := dsp.ValidateLength(c.FFTSize); err != nil {
		return fmt.Errorf("sensing: %w", err)
	}
	if c.HopSize < 0 {
		return fmt.Errorf("sensing: hop %d must be non-negative", c.HopSize)
	}
	if c.CropHz < 0 || c.CropHz >= device.AccelSampleRate/2 {
		return fmt.Errorf("sensing: crop %vHz outside [0, %v)", c.CropHz, device.AccelSampleRate/2)
	}
	if c.HighPassHz < 0 || c.HighPassHz >= device.AccelSampleRate/2 {
		return fmt.Errorf("sensing: highpass %vHz outside [0, %v)", c.HighPassHz, device.AccelSampleRate/2)
	}
	return nil
}

// ExtractFeatures converts a raw 200 Hz vibration signal into the
// normalized, cropped spectrogram features of Section VI-B.
func ExtractFeatures(vib []float64, cfg Config) (*dsp.Spectrogram, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	x := vib
	if cfg.HighPassHz > 0 {
		hp, err := dsp.NewHighPass(cfg.HighPassHz, device.AccelSampleRate, math.Sqrt2/2)
		if err != nil {
			return nil, fmt.Errorf("sensing: %w", err)
		}
		x = hp.Process(vib)
	}
	spec, err := dsp.STFT(x, dsp.STFTConfig{
		FFTSize:    cfg.FFTSize,
		HopSize:    cfg.HopSize,
		SampleRate: device.AccelSampleRate,
	})
	if err != nil {
		return nil, fmt.Errorf("sensing: %w", err)
	}
	if cfg.CropHz > 0 {
		spec = spec.CropBelow(cfg.CropHz)
	}
	if cfg.FrameNormalize {
		for _, row := range spec.Power {
			total := 0.0
			for _, v := range row {
				total += v
			}
			if total > 0 {
				for i := range row {
					row[i] /= total
				}
			}
		}
	}
	if cfg.BinStandardize && spec.NumFrames() > 1 {
		bins := spec.NumBins()
		means := make([]float64, bins)
		for _, row := range spec.Power {
			for k, v := range row {
				means[k] += v
			}
		}
		inv := 1 / float64(spec.NumFrames())
		for k := range means {
			means[k] *= inv
		}
		for _, row := range spec.Power {
			for k := range row {
				row[k] -= means[k]
			}
		}
	}
	if cfg.Normalize {
		spec.Normalize()
	}
	return spec, nil
}

// SenseFeatures runs one full cross-domain sensing pass: replay the audio
// on the wearable, capture the vibration, and extract features.
func SenseFeatures(w *device.Wearable, audio []float64, cfg Config, rng *rand.Rand) (*dsp.Spectrogram, error) {
	sp := stageReplay.Start()
	vib, err := w.SenseVibration(audio, rng)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("sensing: %w", err)
	}
	sp = stageSTFT.Start()
	feat, err := ExtractFeatures(vib, cfg)
	sp.End()
	return feat, err
}
