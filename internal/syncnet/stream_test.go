package syncnet

import (
	"math"
	"math/rand"
	"testing"
)

// streamScenario builds a noisy VA signal and a delayed wearable copy.
func streamScenario(rng *rand.Rand, n, delay int) (va, wear []float64) {
	va = make([]float64, n)
	for i := range va {
		va[i] = math.Sin(2*math.Pi*180*float64(i)/16000) + 0.1*rng.NormFloat64()
	}
	wear = make([]float64, n+delay)
	for i := range wear {
		if i < delay {
			wear[i] = 0.01 * rng.NormFloat64()
		} else {
			wear[i] = va[i-delay] + 0.05*rng.NormFloat64()
		}
	}
	return va, wear
}

// TestStreamAlignerConvergesIncrementally: fed growing prefixes, the
// aligner must converge on the true delay, report it stable, and agree
// with the batch estimate on the full recordings.
func TestStreamAlignerConvergesIncrementally(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const delay = 1600 // 100 ms at 16 kHz
	va, wear := streamScenario(rng, 16000, delay)

	a := NewStreamAligner(0.5, 16000)

	// Too-short prefixes must refuse to estimate.
	if tau, stable := a.Estimate(va[:10], wear[:10]); stable || tau != 0 {
		t.Fatalf("estimate on a 10-sample prefix: tau=%d stable=%v", tau, stable)
	}

	var tau int
	var stable bool
	// Feed prefixes in 0.1 s steps, the wearable trailing slightly.
	for n := 4000; n <= len(va); n += 1600 {
		wn := n + delay
		if wn > len(wear) {
			wn = len(wear)
		}
		tau, stable = a.Estimate(va[:n], wear[:wn])
	}
	if !stable {
		t.Fatal("aligner never reported a stable estimate on a clean delayed copy")
	}
	if diff := tau - delay; diff < -2 || diff > 2 {
		t.Fatalf("incremental tau = %d, want about %d", tau, delay)
	}
	if a.Offset() != tau {
		t.Fatalf("Offset() = %d, want %d", a.Offset(), tau)
	}

	// Final must equal the batch alignment bit for bit.
	gotAligned, gotTau, err := a.Final(va, wear)
	if err != nil {
		t.Fatal(err)
	}
	wantAligned, wantTau, err := AlignRecordings(va, wear, 0.5, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if gotTau != wantTau || len(gotAligned) != len(wantAligned) {
		t.Fatalf("Final (tau %d, %d samples) != AlignRecordings (tau %d, %d samples)",
			gotTau, len(gotAligned), wantTau, len(wantAligned))
	}
	for i := range gotAligned {
		if math.Float64bits(gotAligned[i]) != math.Float64bits(wantAligned[i]) {
			t.Fatalf("Final sample %d differs from batch alignment", i)
		}
	}
}

// TestStreamAlignerRecoversFromBadCoarseEstimate: when the refinement hits
// its window edge, the aligner must redo a full search instead of walking
// a wrong coarse estimate a window at a time.
func TestStreamAlignerRecoversFromBadCoarseEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const delay = 3200
	va, wear := streamScenario(rng, 24000, delay)

	a := NewStreamAligner(0.5, 16000)
	// Poison the coarse pass with a tiny misleading prefix, then feed real
	// prefixes; the edge-hit fallback must still find the true delay.
	a.Estimate(va[:a.minVA], wear[:a.minVA])
	var tau int
	var stable bool
	for n := 8000; n <= len(va); n += 1600 {
		wn := n + delay
		if wn > len(wear) {
			wn = len(wear)
		}
		tau, stable = a.Estimate(va[:n], wear[:wn])
	}
	if !stable {
		t.Fatal("aligner never stabilized after a bad coarse estimate")
	}
	if diff := tau - delay; diff < -2 || diff > 2 {
		t.Fatalf("recovered tau = %d, want about %d", tau, delay)
	}
}

// TestStreamAlignerEmptyWearable: an empty wearable prefix must not panic
// or estimate.
func TestStreamAlignerEmptyWearable(t *testing.T) {
	a := NewStreamAligner(0.5, 16000)
	if tau, stable := a.Estimate(make([]float64, 8000), nil); stable || tau != 0 {
		t.Fatalf("estimate with no wearable audio: tau=%d stable=%v", tau, stable)
	}
}
