package syncnet

import (
	"errors"
	"math"
	"testing"
)

// fuzzBytesToSamples maps fuzz bytes onto audio samples, reserving two byte
// values for non-finite samples so the alignment path is exercised against
// sensor-glitch input too.
func fuzzBytesToSamples(data []byte) []float64 {
	out := make([]float64, len(data))
	for i, b := range data {
		switch b {
		case 0xFF:
			out[i] = math.NaN()
		case 0xFE:
			out[i] = math.Inf(1)
		default:
			out[i] = (float64(b) - 128) / 128
		}
	}
	return out
}

// FuzzAlignRecordings drives the Eq. (5) alignment with adversarial signal
// pairs — empty, short, constant, and non-finite — plus unconstrained lag
// bounds and sample rates. It must never panic; on success the offset must
// be in range and the aligned length consistent. Seed corpora live in
// testdata/fuzz/FuzzAlignRecordings.
func FuzzAlignRecordings(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{1, 2, 3, 4}, 0.5, 16000.0)
	f.Add([]byte{}, []byte{9}, 0.5, 16000.0)
	f.Add([]byte{128}, []byte{}, 0.5, 16000.0)
	// Constant signals: zero variance, degenerate correlation.
	f.Add(bytesOf(100, 64), bytesOf(100, 200), 0.5, 16000.0)
	f.Add(bytesOf(128, 300), bytesOf(128, 300), 0.1, 16000.0)
	// Non-finite samples.
	f.Add([]byte{0xFF, 0xFE, 1, 2, 0xFF}, []byte{3, 0xFE, 0xFF, 4, 5}, 0.5, 16000.0)
	// Hostile lag bounds and rates.
	f.Add(bytesOf(7, 32), bytesOf(7, 32), math.Inf(1), 16000.0)
	f.Add(bytesOf(7, 32), bytesOf(7, 32), math.NaN(), 16000.0)
	f.Add(bytesOf(7, 32), bytesOf(7, 32), -3.0, 16000.0)
	f.Add(bytesOf(7, 32), bytesOf(7, 32), 0.5, -1.0)
	f.Add(bytesOf(7, 32), bytesOf(7, 32), 1e300, 1e300)

	f.Fuzz(func(t *testing.T, vaB, wearB []byte, maxLag, rate float64) {
		va := fuzzBytesToSamples(vaB)
		wear := fuzzBytesToSamples(wearB)
		aligned, tau, err := AlignRecordings(va, wear, maxLag, rate)
		if err != nil {
			if !errors.Is(err, ErrNoOverlap) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return
		}
		if tau < 0 || tau >= len(wear) {
			t.Fatalf("offset %d out of range [0, %d)", tau, len(wear))
		}
		if len(aligned) != len(wear)-tau {
			t.Fatalf("aligned length %d != %d - %d", len(aligned), len(wear), tau)
		}
	})
}

func bytesOf(v byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestAlignRecordingsDegenerateSignals pins the fuzz findings as plain
// tests: constant, tiny, and non-finite signals must align without panics
// and with in-range offsets.
func TestAlignRecordingsDegenerateSignals(t *testing.T) {
	constant := make([]float64, 4000)
	for i := range constant {
		constant[i] = 0.5
	}
	if _, tau, err := AlignRecordings(constant, constant, 0.5, 16000); err != nil || tau < 0 || tau >= len(constant) {
		t.Errorf("constant signals: tau=%d err=%v", tau, err)
	}
	withNaN := make([]float64, 2000)
	withNaN[7] = math.NaN()
	withNaN[1999] = math.Inf(-1)
	aligned, tau, err := AlignRecordings(withNaN, withNaN, 0.5, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0 || tau >= len(withNaN) || len(aligned) != len(withNaN)-tau {
		t.Errorf("non-finite signals: tau=%d len=%d", tau, len(aligned))
	}
	// Non-finite lag bounds clamp instead of corrupting the conversion.
	for _, lag := range []float64{math.NaN(), math.Inf(1), -5, 1e300} {
		if _, tau, err := AlignRecordings(constant, constant, lag, 16000); err != nil || tau < 0 || tau >= len(constant) {
			t.Errorf("lag %v: tau=%d err=%v", lag, tau, err)
		}
	}
}
