package syncnet

import (
	"math"

	"vibguard/internal/dsp"
)

// StreamAligner estimates the wearable offset of Eq. (5) incrementally as
// chunks arrive: the first usable prefix gets a coarse decimated
// correlation search over the whole lag range, later prefixes refine the
// estimate with a cheap direct search in a narrow window around it (and
// fall back to a full search if the refinement runs into the window edge —
// the coarse estimate was wrong). The estimate is reported stable once two
// consecutive evaluations agree within a couple of samples; the streaming
// pipeline only trusts a stable offset for provisional early-exit scoring.
// The batch path's final alignment (AlignRecordings on the complete
// recordings) remains the authoritative one.
//
// Not safe for concurrent use.
type StreamAligner struct {
	maxLagSeconds float64
	sampleRate    float64

	minVA        int // VA samples required before the first estimate
	refineWindow int // half-width of the refinement search, in samples

	tau          int
	haveEstimate bool
	stableRuns   int
}

// stableTolerance is the sample slack within which two consecutive
// estimates count as agreeing.
const stableTolerance = 2

// NewStreamAligner builds an incremental delay estimator with the same lag
// bound semantics as AlignRecordings.
func NewStreamAligner(maxLagSeconds, sampleRate float64) *StreamAligner {
	minVA := int(0.25 * sampleRate)
	if minVA < 16 {
		minVA = 16
	}
	refine := int(0.025 * sampleRate)
	if refine < 8 {
		refine = 8
	}
	return &StreamAligner{
		maxLagSeconds: maxLagSeconds,
		sampleRate:    sampleRate,
		minVA:         minVA,
		refineWindow:  refine,
	}
}

// maxLag replicates the batch clamp of AlignRecordings: the float-domain
// product first (a non-finite or absurd value must not hit the int
// conversion), then the wearable length.
func (a *StreamAligner) maxLag(wearLen int) int {
	lagf := a.maxLagSeconds * a.sampleRate
	if math.IsNaN(lagf) || lagf < 0 {
		lagf = 0
	}
	maxLag := wearLen - 1
	if lagf < float64(maxLag) {
		maxLag = int(lagf)
	}
	return maxLag
}

// Estimate updates the delay estimate from the current recording prefixes
// and returns it together with whether it is stable (two consecutive
// evaluations agreeing within stableTolerance samples). Before enough VA
// audio has arrived it returns (0, false) without searching.
func (a *StreamAligner) Estimate(va, wear []float64) (tau int, stable bool) {
	if len(va) < a.minVA || len(wear) == 0 {
		return a.tau, false
	}
	maxLag := a.maxLag(len(wear))
	if !a.haveEstimate {
		// Coarse pass: decimated envelope search over the full lag range.
		a.tau = dsp.EstimateDelayFast(va, wear, maxLag)
		a.haveEstimate = true
		a.stableRuns = 0
		return a.tau, false
	}
	lo, hi := a.tau-a.refineWindow, a.tau+a.refineWindow
	if lo < 0 {
		lo = 0
	}
	if hi > maxLag {
		hi = maxLag
	}
	t := dsp.EstimateDelayRange(va, wear, lo, hi)
	if (t == lo && lo > 0) || (t == hi && hi < maxLag) {
		// The peak sits at the window edge: the coarse estimate missed.
		// Redo the full search and restart the stability count.
		t = dsp.EstimateDelay(va, wear, maxLag)
		a.stableRuns = 0
	} else if abs(t-a.tau) <= stableTolerance {
		a.stableRuns++
	} else {
		a.stableRuns = 0
	}
	a.tau = t
	return a.tau, a.stableRuns >= 1
}

// Offset returns the current delay estimate (0 before the first Estimate).
func (a *StreamAligner) Offset() int { return a.tau }

// Final runs the exact batch alignment on the complete recordings —
// byte-for-byte AlignRecordings — so the fallback path of the streaming
// pipeline matches the batch pipeline bit for bit.
func (a *StreamAligner) Final(va, wear []float64) ([]float64, int, error) {
	return AlignRecordings(va, wear, a.maxLagSeconds, a.sampleRate)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
