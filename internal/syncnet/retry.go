package syncnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vibguard/internal/obs"
)

// ReliableClient instrumentation: transport attempt counts, redials,
// backoff sleeps (count + slept duration), per-attempt latency, and the
// two terminal outcomes retries cannot help (wearable application errors,
// exhausted policies). Recording is lock-free and allocation-free.
var (
	metClientAttempts  = obs.Default().Counter("syncnet.client.attempts")
	metClientRedials   = obs.Default().Counter("syncnet.client.redials")
	metClientBackoffs  = obs.Default().Counter("syncnet.client.backoffs")
	metClientWearErrs  = obs.Default().Counter("syncnet.client.wearable_errors")
	metClientExhausted = obs.Default().Counter("syncnet.client.retries_exhausted")
	histClientBackoff  = obs.Default().Histogram("syncnet.client.backoff_seconds")
	stageClientAttempt = obs.Default().StageTimer("syncnet.client.attempt")
)

// DialFunc abstracts the transport dial so callers (and the fault-injection
// layer of internal/faults) can interpose on connection establishment. The
// default dials TCP with a per-attempt timeout.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

func tcpDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// ErrRetriesExhausted is returned when every transport attempt of a retried
// operation failed; it wraps the last attempt's error.
var ErrRetriesExhausted = errors.New("syncnet: retries exhausted")

// WearableError is an application-level failure reported by the wearable
// itself (a MsgError reply): the link works, so transport retries cannot
// help and ReliableClient returns it immediately.
type WearableError struct {
	// Msg is the wearable's failure description.
	Msg string
}

// Error implements the error interface.
func (e *WearableError) Error() string { return "syncnet: wearable error: " + e.Msg }

// RetryPolicy bounds transport retries with exponential backoff. The VA
// device and the wearable share a consumer WiFi network (Section VI-A), so
// transient dial failures and mid-stream resets are expected; the paper's
// pipeline only needs the recording to arrive within the command-handling
// window, which the bounded attempt count and MaxDelay cap guarantee.
type RetryPolicy struct {
	// MaxAttempts is the total number of transport attempts (>= 1).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive attempts (>= 1).
	Multiplier float64
}

// DefaultRetryPolicy returns the production policy: 4 attempts, 25 ms base
// delay doubling up to 500 ms (worst-case added latency ~175 ms, within the
// ~100 ms network-delay budget the Eq. (5) alignment already tolerates).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: 500 * time.Millisecond, Multiplier: 2}
}

// Validate checks the policy.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("syncnet: retry attempts %d must be >= 1", p.MaxAttempts)
	}
	if p.BaseDelay < 0 || p.MaxDelay < 0 {
		return fmt.Errorf("syncnet: negative retry delay")
	}
	if p.Multiplier < 1 {
		return fmt.Errorf("syncnet: retry multiplier %v must be >= 1", p.Multiplier)
	}
	return nil
}

// Backoff returns the delay to sleep before attempt number attempt+2, i.e.
// Backoff(0) is the delay after the first failure. The sequence is
// deterministic: BaseDelay * Multiplier^attempt, capped at MaxDelay.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// DialWearableRetry dials a wearable agent with per-attempt deadlines and
// the policy's bounded exponential backoff.
func DialWearableRetry(addr string, timeout time.Duration, policy RetryPolicy) (*VAClient, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(policy.Backoff(attempt - 1))
		}
		client, err := dialWearableVia(tcpDial, addr, timeout)
		if err == nil {
			return client, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, policy.MaxAttempts, lastErr)
}

// ReliableClient is the hardened VA-side client: it owns the agent address
// rather than a single connection, lazily (re)dials, applies per-attempt
// deadlines to both the dial and the request, and retries transport
// failures with bounded exponential backoff. A request that fails mid-frame
// abandons the connection entirely — after a partial gob frame the stream
// state is unknowable — and the next attempt starts on a fresh one.
//
// Application-level failures (WearableError) are returned without retrying:
// the link demonstrably works, so backing off cannot change the outcome.
type ReliableClient struct {
	addr           string
	dial           DialFunc
	dialTimeout    time.Duration
	requestTimeout time.Duration
	policy         RetryPolicy

	mu       sync.Mutex
	client   *VAClient
	attempts uint64
	redials  uint64
}

// ClientOption configures a ReliableClient.
type ClientOption func(*ReliableClient)

// WithRetryPolicy overrides the retry policy.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(rc *ReliableClient) { rc.policy = p }
}

// WithDialFunc overrides the transport dial (fault injection, testing).
func WithDialFunc(d DialFunc) ClientOption {
	return func(rc *ReliableClient) {
		if d != nil {
			rc.dial = d
		}
	}
}

// WithTimeouts sets the per-attempt dial and request deadlines
// (non-positive values keep the defaults of 2 s and 10 s).
func WithTimeouts(dial, request time.Duration) ClientOption {
	return func(rc *ReliableClient) {
		if dial > 0 {
			rc.dialTimeout = dial
		}
		if request > 0 {
			rc.requestTimeout = request
		}
	}
}

// NewReliableClient creates a hardened client for the agent address. No
// connection is made until the first request.
func NewReliableClient(addr string, opts ...ClientOption) (*ReliableClient, error) {
	rc := &ReliableClient{
		addr:           addr,
		dial:           tcpDial,
		dialTimeout:    2 * time.Second,
		requestTimeout: 10 * time.Second,
		policy:         DefaultRetryPolicy(),
	}
	for _, opt := range opts {
		opt(rc)
	}
	if err := rc.policy.Validate(); err != nil {
		return nil, err
	}
	return rc, nil
}

// Attempts returns the total number of transport attempts made.
func (rc *ReliableClient) Attempts() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.attempts
}

// Redials returns how many times the client had to establish a connection.
func (rc *ReliableClient) Redials() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.redials
}

// Close closes the current connection, if any. The client remains usable: a
// later request simply redials.
func (rc *ReliableClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.client == nil {
		return nil
	}
	err := rc.client.Close()
	rc.client = nil
	return err
}

// RequestRecording triggers the wearable and returns its recording,
// retrying transport failures per the policy. It returns
// ErrRetriesExhausted (wrapping the last transport error) when every
// attempt failed, or the WearableError as-is when the wearable itself
// reported a failure.
func (rc *ReliableClient) RequestRecording() ([]float64, error) {
	return rc.RequestRecordingContext(context.Background())
}

// RequestRecordingContext is RequestRecording bounded by a context: the
// session-oriented server gives every session a deadline, and a fetch must
// stop burning transport attempts (and abort a backoff sleep immediately)
// once that deadline is gone. Cancellation is checked before every attempt
// and during every backoff sleep, and the per-attempt dial/request
// deadlines are clipped so no single attempt outlives the context. On
// cancellation the context's error is returned (wrapping the last
// transport error, if any, for diagnosis).
func (rc *ReliableClient) RequestRecordingContext(ctx context.Context) ([]float64, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < rc.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoff := rc.policy.Backoff(attempt - 1)
			metClientBackoffs.Inc()
			histClientBackoff.Observe(backoff.Seconds())
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, ctxError(err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, ctxError(err, lastErr)
		}
		rc.attempts++
		metClientAttempts.Inc()
		attemptStart := time.Now()
		if rc.client == nil {
			client, err := dialWearableVia(rc.dial, rc.addr, clipTimeout(ctx, rc.dialTimeout))
			if err != nil {
				lastErr = err
				stageClientAttempt.ObserveSince(attemptStart)
				continue
			}
			rc.redials++
			metClientRedials.Inc()
			rc.client = client
		}
		samples, err := rc.client.RequestRecording(clipTimeout(ctx, rc.requestTimeout))
		stageClientAttempt.ObserveSince(attemptStart)
		if err == nil {
			return samples, nil
		}
		var wearErr *WearableError
		if errors.As(err, &wearErr) {
			metClientWearErrs.Inc()
			return nil, err
		}
		lastErr = err
		_ = rc.client.Close()
		rc.client = nil
	}
	metClientExhausted.Inc()
	return nil, fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, rc.policy.MaxAttempts, lastErr)
}

// sleepCtx sleeps for d or until the context is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// ctxError wraps a context cancellation with the last transport error seen
// before it, so a timed-out session still reports what the link was doing.
func ctxError(ctxErr, lastErr error) error {
	if lastErr == nil {
		return ctxErr
	}
	return fmt.Errorf("%w (last transport error: %v)", ctxErr, lastErr)
}

// clipTimeout bounds a per-attempt timeout by the context deadline, so an
// attempt started just before the deadline cannot run long past it.
func clipTimeout(ctx context.Context, timeout time.Duration) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return timeout
	}
	remaining := time.Until(dl)
	if remaining <= 0 {
		// The deadline just passed; keep the attempt bounded (a
		// non-positive value would disable the connection deadline).
		return time.Nanosecond
	}
	if remaining < timeout {
		return remaining
	}
	return timeout
}
