package syncnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
)

func TestTriggerRecordingRoundTrip(t *testing.T) {
	want := []float64{1, 2, 3, 4.5}
	agent, err := NewWearableAgent("127.0.0.1:0", func(id uint64) ([]float64, error) {
		return want, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	client, err := DialWearable(agent.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	got, err := client.RequestRecording(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMultipleSessionsOverOneConnection(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(id uint64) ([]float64, error) {
		return []float64{float64(id)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	client, err := DialWearable(agent.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	for i := 1; i <= 5; i++ {
		got, err := client.RequestRecording(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != float64(i) {
			t.Fatalf("session %d returned %v", i, got[0])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(id uint64) ([]float64, error) {
		return []float64{42}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := DialWearable(agent.Addr(), time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = client.Close() }()
			if _, err := client.RequestRecording(2 * time.Second); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWearableErrorPropagates(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(id uint64) ([]float64, error) {
		return nil, fmt.Errorf("microphone busy")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	client, err := DialWearable(agent.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	if _, err := client.RequestRecording(2 * time.Second); err == nil {
		t.Fatal("wearable error should propagate")
	}
}

func TestAgentValidation(t *testing.T) {
	if _, err := NewWearableAgent("127.0.0.1:0", nil); err == nil {
		t.Error("nil record func should error")
	}
	if _, err := DialWearable("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dial to closed port should error")
	}
}

func TestAgentCloseIdempotent(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := agent.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}

func TestSimulateAndAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	va := utt.Samples
	for _, delay := range []float64{0, 0.05, 0.1, 0.2} {
		wear := SimulateNetworkDelay(utt.Samples, delay, 16000, rng)
		wantOffset := int(delay * 16000)
		if len(wear) != len(utt.Samples)+wantOffset {
			t.Fatalf("delay %v: wearable length %d", delay, len(wear))
		}
		aligned, tau, err := AlignRecordings(va, wear, 0.5, 16000)
		if err != nil {
			t.Fatal(err)
		}
		if int(math.Abs(float64(tau-wantOffset))) > 8 {
			t.Errorf("delay %v: estimated offset %d, want ~%d", delay, tau, wantOffset)
		}
		// After alignment the two signals should be nearly identical.
		n := len(va)
		if len(aligned) < n {
			n = len(aligned)
		}
		if r := dsp.Pearson(va[:n], aligned[:n]); r < 0.95 {
			t.Errorf("delay %v: post-alignment correlation %v", delay, r)
		}
	}
}

func TestAlignRecordingsErrors(t *testing.T) {
	if _, _, err := AlignRecordings(nil, []float64{1}, 0.5, 16000); err == nil {
		t.Error("empty VA recording should error")
	}
	if _, _, err := AlignRecordings([]float64{1}, nil, 0.5, 16000); err == nil {
		t.Error("empty wearable recording should error")
	}
	// Tiny recordings with huge lag bound must clamp, not panic.
	aligned, tau, err := AlignRecordings([]float64{1, 2}, []float64{1, 2}, 100, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0 || len(aligned) == 0 {
		t.Errorf("clamped alignment: tau=%d len=%d", tau, len(aligned))
	}
}

func TestSimulateNetworkDelayZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := []float64{1, 2, 3}
	out := SimulateNetworkDelay(in, 0, 16000, rng)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	out[0] = 99
	if in[0] == 99 {
		t.Error("zero-delay output shares storage with input")
	}
}

func TestEndToEndRecordingTransfer(t *testing.T) {
	// Full path: synthesize a command, "record" it on the wearable side,
	// ship it over TCP, align against the VA copy.
	rng := rand.New(rand.NewSource(3))
	synth, err := phoneme.NewSynthesizer(phoneme.NewVoicePool(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[2])
	if err != nil {
		t.Fatal(err)
	}
	delayed := SimulateNetworkDelay(utt.Samples, 0.1, 16000, rng)
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		return delayed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	client, err := DialWearable(agent.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	wearRec, err := client.RequestRecording(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	aligned, tau, err := AlignRecordings(utt.Samples, wearRec, 0.5, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(tau)-1600) > 8 {
		t.Errorf("tau = %d, want ~1600", tau)
	}
	if len(aligned) < len(utt.Samples)-16 {
		t.Errorf("aligned too short: %d", len(aligned))
	}
}
