// Package syncnet implements the cross-device synchronization of Section
// VI-A: the VA device and the wearable share a local WiFi network; upon
// detecting a wake word the VA sends a trigger message so the wearable
// records the same voice command, and the residual offset caused by
// network delay (~100 ms) is estimated and removed with the
// cross-correlation of Eq. (5).
//
// The transport is a real TCP protocol (length-prefixed gob frames) so the
// distributed path is exercised end-to-end; network delay is additionally
// modeled as a sample-domain offset on the wearable recording, which is
// what the correlation-based estimator corrects.
package syncnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vibguard/internal/dsp"
)

// MessageType discriminates protocol frames.
type MessageType int

// Protocol message types.
const (
	// MsgTrigger asks the wearable to record a command.
	MsgTrigger MessageType = iota + 1
	// MsgRecording carries the wearable's recording back.
	MsgRecording
	// MsgError reports a wearable-side failure.
	MsgError
)

// Message is one protocol frame.
type Message struct {
	// Type discriminates the frame.
	Type MessageType
	// SessionID correlates a trigger with its recording.
	SessionID uint64
	// SentAt is the sender's wall-clock timestamp.
	SentAt time.Time
	// Samples carries recorded audio (MsgRecording only).
	Samples []float64
	// Error carries a failure description (MsgError only).
	Error string
}

// RecordFunc produces the wearable's recording for a trigger.
type RecordFunc func(sessionID uint64) ([]float64, error)

// WearableAgent is the wearable-side server: it accepts connections from
// the VA device and answers trigger messages with recordings.
type WearableAgent struct {
	listener net.Listener
	record   RecordFunc
	onError  func(error)

	errCount atomic.Uint64

	mu      sync.Mutex
	closed  bool
	lastErr error
	wg      sync.WaitGroup
}

// AgentOption configures a WearableAgent.
type AgentOption func(*WearableAgent)

// WithConnErrorHandler installs a callback invoked (from the connection's
// goroutine) for every per-connection failure: decode errors from corrupt
// or reset streams, record-func failures, and reply-encode errors. Clean
// client disconnects (EOF between frames) are not reported.
func WithConnErrorHandler(fn func(error)) AgentOption {
	return func(a *WearableAgent) { a.onError = fn }
}

// NewWearableAgent starts a wearable agent listening on addr
// (e.g. "127.0.0.1:0").
func NewWearableAgent(addr string, record RecordFunc, opts ...AgentOption) (*WearableAgent, error) {
	if record == nil {
		return nil, fmt.Errorf("syncnet: nil record func")
	}
	a := &WearableAgent{record: record}
	for _, opt := range opts {
		opt(a)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("syncnet: listen: %w", err)
	}
	a.listener = ln
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// ConnErrors returns the number of per-connection failures observed since
// the agent started. A reset mid-stream counts once; the agent keeps
// serving other connections.
func (a *WearableAgent) ConnErrors() uint64 { return a.errCount.Load() }

// LastConnError returns the most recent per-connection failure (nil if
// none).
func (a *WearableAgent) LastConnError() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}

// reportConnError records a per-connection failure instead of silently
// dropping it: the counter and last-error snapshot feed health metrics, and
// the optional handler feeds logs. The handler runs before the counter
// increment, so an observer that sees ConnErrors() > 0 is guaranteed the
// handler for that failure already completed.
func (a *WearableAgent) reportConnError(err error) {
	if a.onError != nil {
		a.onError(err)
	}
	a.mu.Lock()
	a.lastErr = err
	a.mu.Unlock()
	a.errCount.Add(1)
}

// Addr returns the agent's listen address.
func (a *WearableAgent) Addr() string { return a.listener.Addr().String() }

// Close stops the agent and waits for in-flight connections.
func (a *WearableAgent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	err := a.listener.Close()
	a.wg.Wait()
	return err
}

func (a *WearableAgent) serve() {
	defer a.wg.Done()
	for {
		conn, err := a.listener.Accept()
		if err != nil {
			return // listener closed
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handle(conn)
		}()
	}
}

func (a *WearableAgent) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			// A clean EOF between frames is a normal client disconnect;
			// anything else (mid-frame reset, corrupt stream) is a real
			// per-connection failure and must be surfaced, not swallowed.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				a.reportConnError(fmt.Errorf("syncnet: agent decode: %w", err))
			}
			return
		}
		if msg.Type != MsgTrigger {
			a.reportConnError(fmt.Errorf("syncnet: agent: unexpected message type %d", msg.Type))
			_ = enc.Encode(&Message{Type: MsgError, SessionID: msg.SessionID, Error: "unexpected message type"})
			continue
		}
		samples, err := a.record(msg.SessionID)
		reply := Message{SessionID: msg.SessionID, SentAt: time.Now()}
		if err != nil {
			a.reportConnError(fmt.Errorf("syncnet: agent record: %w", err))
			reply.Type = MsgError
			reply.Error = err.Error()
		} else {
			reply.Type = MsgRecording
			reply.Samples = samples
		}
		if err := enc.Encode(&reply); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				a.reportConnError(fmt.Errorf("syncnet: agent encode: %w", err))
			}
			return
		}
	}
}

// VAClient is the VA-side client that triggers wearable recordings.
type VAClient struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	mu      sync.Mutex
	session uint64
}

// DialWearable connects to a wearable agent with a single attempt; see
// DialWearableRetry and ReliableClient for the hardened paths.
func DialWearable(addr string, timeout time.Duration) (*VAClient, error) {
	return dialWearableVia(tcpDial, addr, timeout)
}

// dialWearableVia connects through an arbitrary transport dial.
func dialWearableVia(dial DialFunc, addr string, timeout time.Duration) (*VAClient, error) {
	conn, err := dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("syncnet: dial: %w", err)
	}
	return &VAClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the client connection.
func (c *VAClient) Close() error { return c.conn.Close() }

// RequestRecording sends a trigger and waits for the wearable's recording.
func (c *VAClient) RequestRecording(timeout time.Duration) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.session++
	id := c.session
	if timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("syncnet: deadline: %w", err)
		}
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := c.enc.Encode(&Message{Type: MsgTrigger, SessionID: id, SentAt: time.Now()}); err != nil {
		return nil, fmt.Errorf("syncnet: send trigger: %w", err)
	}
	var reply Message
	if err := c.dec.Decode(&reply); err != nil {
		return nil, fmt.Errorf("syncnet: read reply: %w", err)
	}
	if reply.SessionID != id {
		return nil, fmt.Errorf("syncnet: session mismatch: got %d, want %d", reply.SessionID, id)
	}
	switch reply.Type {
	case MsgRecording:
		return reply.Samples, nil
	case MsgError:
		return nil, &WearableError{Msg: reply.Error}
	default:
		return nil, fmt.Errorf("syncnet: unexpected reply type %d", reply.Type)
	}
}

// ErrNoOverlap is returned when the recordings share no usable content.
var ErrNoOverlap = errors.New("syncnet: recordings do not overlap")

// SimulateNetworkDelay models the trigger message's network latency: the
// wearable serves its recording from a continuous buffer, so relative to
// the VA recording it carries delaySeconds of extra pre-command ambient
// context at the front, which AlignRecordings must strip.
func SimulateNetworkDelay(wearable []float64, delaySeconds, sampleRate float64, rng *rand.Rand) []float64 {
	n := int(delaySeconds * sampleRate)
	if n <= 0 {
		out := make([]float64, len(wearable))
		copy(out, wearable)
		return out
	}
	lead := make([]float64, n)
	noise := dsp.RMS(wearable) * 0.01
	for i := range lead {
		lead[i] = noise * rng.NormFloat64()
	}
	return dsp.Concat(lead, wearable)
}

// AlignRecordings estimates the offset of the wearable recording relative
// to the VA recording with the cross-correlation of Eq. (5) and removes
// the first tau_est samples of the wearable recording so both start at the
// same instant. maxLagSeconds bounds the search (network delays are
// ~100 ms, so 0.5 s is a safe bound).
func AlignRecordings(va, wearable []float64, maxLagSeconds, sampleRate float64) ([]float64, int, error) {
	if len(va) == 0 || len(wearable) == 0 {
		return nil, 0, ErrNoOverlap
	}
	// Clamp in the float domain first: a non-finite or absurd product would
	// make the float-to-int conversion implementation-defined.
	lagf := maxLagSeconds * sampleRate
	if math.IsNaN(lagf) || lagf < 0 {
		lagf = 0
	}
	maxLag := len(wearable) - 1
	if lagf < float64(maxLag) {
		maxLag = int(lagf)
	}
	// EstimateDelay dispatches to the planned FFT correlation above the
	// crossover size: exact Eq. (5) over the full lag range in O(m log m),
	// faster than the decimated coarse-to-fine search it replaced and
	// without that search's narrowband failure mode.
	tau := dsp.EstimateDelay(va, wearable, maxLag)
	aligned := make([]float64, len(wearable)-tau)
	copy(aligned, wearable[tau:])
	return aligned, tau, nil
}
