package syncnet

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// fastPolicy keeps test retries snappy.
func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2}
}

func TestBackoffSequence(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 45, 45}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if got := p.Backoff(-3); got != 10*time.Millisecond {
		t.Errorf("Backoff(-3) = %v, want base delay", got)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	bad := []RetryPolicy{
		{MaxAttempts: 0, Multiplier: 2},
		{MaxAttempts: 1, Multiplier: 0.5},
		{MaxAttempts: 1, Multiplier: 2, BaseDelay: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d should fail validation", i)
		}
	}
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
}

func TestReliableClientRoundTrip(t *testing.T) {
	want := []float64{1, 2, 3}
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	rc, err := NewReliableClient(agent.Addr(), WithRetryPolicy(fastPolicy(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	got, err := rc.RequestRecording()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	if rc.Attempts() != 1 || rc.Redials() != 1 {
		t.Errorf("attempts=%d redials=%d, want 1/1", rc.Attempts(), rc.Redials())
	}
	// Second request reuses the connection.
	if _, err := rc.RequestRecording(); err != nil {
		t.Fatal(err)
	}
	if rc.Redials() != 1 {
		t.Errorf("second request redialed (%d)", rc.Redials())
	}
}

func TestReliableClientRetriesTransientDialFailure(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return []float64{7}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	failures := 2
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		if failures > 0 {
			failures--
			return nil, fmt.Errorf("transient dial failure")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	rc, err := NewReliableClient(agent.Addr(), WithDialFunc(dial), WithRetryPolicy(fastPolicy(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	if _, err := rc.RequestRecording(); err != nil {
		t.Fatalf("request should survive two dial failures: %v", err)
	}
	if rc.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", rc.Attempts())
	}
}

func TestReliableClientExhaustsRetries(t *testing.T) {
	dial := func(string, time.Duration) (net.Conn, error) {
		return nil, fmt.Errorf("unreachable")
	}
	rc, err := NewReliableClient("127.0.0.1:1", WithDialFunc(dial), WithRetryPolicy(fastPolicy(3)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rc.RequestRecording()
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if rc.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", rc.Attempts())
	}
}

func TestReliableClientDoesNotRetryWearableErrors(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		return nil, fmt.Errorf("microphone busy")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	rc, err := NewReliableClient(agent.Addr(), WithRetryPolicy(fastPolicy(5)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	_, err = rc.RequestRecording()
	var wearErr *WearableError
	if !errors.As(err, &wearErr) {
		t.Fatalf("err = %v, want *WearableError", err)
	}
	if rc.Attempts() != 1 {
		t.Errorf("wearable-side error retried: %d attempts", rc.Attempts())
	}
}

func TestDialWearableRetry(t *testing.T) {
	if _, err := DialWearableRetry("127.0.0.1:1", 50*time.Millisecond, fastPolicy(2)); !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("dial to closed port: err = %v, want ErrRetriesExhausted", err)
	}
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return []float64{1}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	client, err := DialWearableRetry(agent.Addr(), time.Second, fastPolicy(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	if _, err := client.RequestRecording(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestAgentSurvivesMidStreamReset pins the handle() error-propagation fix:
// a connection torn down mid-stream must be counted as a per-connection
// error, and the agent must keep serving subsequent clients.
func TestAgentSurvivesMidStreamReset(t *testing.T) {
	var reported []error
	agent, err := NewWearableAgent("127.0.0.1:0",
		func(uint64) ([]float64, error) { return []float64{9}, nil },
		WithConnErrorHandler(func(err error) { reported = append(reported, err) }))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	// Write a garbage partial frame, then reset the connection hard.
	raw, err := net.Dial("tcp", agent.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{0xff, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = raw.Close()

	// The agent must notice the failure...
	deadline := time.Now().Add(2 * time.Second)
	for agent.ConnErrors() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if agent.ConnErrors() == 0 {
		t.Fatal("mid-stream reset was silently dropped")
	}
	if agent.LastConnError() == nil {
		t.Error("LastConnError is nil after a reset")
	}

	// ...and still serve a fresh client.
	client, err := DialWearable(agent.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	got, err := client.RequestRecording(2 * time.Second)
	if err != nil {
		t.Fatalf("agent stopped serving after a reset: %v", err)
	}
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("recording = %v", got)
	}
	if len(reported) == 0 {
		t.Error("error handler was never invoked")
	}
}

// TestAgentCleanDisconnectNotCounted verifies a polite client close is not
// treated as a failure.
func TestAgentCleanDisconnectNotCounted(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return []float64{1}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	client, err := DialWearable(agent.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestRecording(time.Second); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	time.Sleep(20 * time.Millisecond)
	if n := agent.ConnErrors(); n != 0 {
		t.Errorf("clean disconnect counted as %d errors (last: %v)", n, agent.LastConnError())
	}
}
