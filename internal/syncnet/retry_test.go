package syncnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// fastPolicy keeps test retries snappy.
func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2}
}

func TestBackoffSequence(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 45, 45}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if got := p.Backoff(-3); got != 10*time.Millisecond {
		t.Errorf("Backoff(-3) = %v, want base delay", got)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	bad := []RetryPolicy{
		{MaxAttempts: 0, Multiplier: 2},
		{MaxAttempts: 1, Multiplier: 0.5},
		{MaxAttempts: 1, Multiplier: 2, BaseDelay: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d should fail validation", i)
		}
	}
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
}

func TestReliableClientRoundTrip(t *testing.T) {
	want := []float64{1, 2, 3}
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	rc, err := NewReliableClient(agent.Addr(), WithRetryPolicy(fastPolicy(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	got, err := rc.RequestRecording()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	if rc.Attempts() != 1 || rc.Redials() != 1 {
		t.Errorf("attempts=%d redials=%d, want 1/1", rc.Attempts(), rc.Redials())
	}
	// Second request reuses the connection.
	if _, err := rc.RequestRecording(); err != nil {
		t.Fatal(err)
	}
	if rc.Redials() != 1 {
		t.Errorf("second request redialed (%d)", rc.Redials())
	}
}

func TestReliableClientRetriesTransientDialFailure(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return []float64{7}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	failures := 2
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		if failures > 0 {
			failures--
			return nil, fmt.Errorf("transient dial failure")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	rc, err := NewReliableClient(agent.Addr(), WithDialFunc(dial), WithRetryPolicy(fastPolicy(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	if _, err := rc.RequestRecording(); err != nil {
		t.Fatalf("request should survive two dial failures: %v", err)
	}
	if rc.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", rc.Attempts())
	}
}

func TestReliableClientExhaustsRetries(t *testing.T) {
	dial := func(string, time.Duration) (net.Conn, error) {
		return nil, fmt.Errorf("unreachable")
	}
	rc, err := NewReliableClient("127.0.0.1:1", WithDialFunc(dial), WithRetryPolicy(fastPolicy(3)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rc.RequestRecording()
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if rc.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", rc.Attempts())
	}
}

func TestReliableClientDoesNotRetryWearableErrors(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
		return nil, fmt.Errorf("microphone busy")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	rc, err := NewReliableClient(agent.Addr(), WithRetryPolicy(fastPolicy(5)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	_, err = rc.RequestRecording()
	var wearErr *WearableError
	if !errors.As(err, &wearErr) {
		t.Fatalf("err = %v, want *WearableError", err)
	}
	if rc.Attempts() != 1 {
		t.Errorf("wearable-side error retried: %d attempts", rc.Attempts())
	}
}

func TestDialWearableRetry(t *testing.T) {
	if _, err := DialWearableRetry("127.0.0.1:1", 50*time.Millisecond, fastPolicy(2)); !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("dial to closed port: err = %v, want ErrRetriesExhausted", err)
	}
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return []float64{1}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	client, err := DialWearableRetry(agent.Addr(), time.Second, fastPolicy(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	if _, err := client.RequestRecording(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestAgentSurvivesMidStreamReset pins the handle() error-propagation fix:
// a connection torn down mid-stream must be counted as a per-connection
// error, and the agent must keep serving subsequent clients.
func TestAgentSurvivesMidStreamReset(t *testing.T) {
	var reported []error
	agent, err := NewWearableAgent("127.0.0.1:0",
		func(uint64) ([]float64, error) { return []float64{9}, nil },
		WithConnErrorHandler(func(err error) { reported = append(reported, err) }))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	// Write a garbage partial frame, then reset the connection hard.
	raw, err := net.Dial("tcp", agent.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{0xff, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = raw.Close()

	// The agent must notice the failure...
	deadline := time.Now().Add(2 * time.Second)
	for agent.ConnErrors() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if agent.ConnErrors() == 0 {
		t.Fatal("mid-stream reset was silently dropped")
	}
	if agent.LastConnError() == nil {
		t.Error("LastConnError is nil after a reset")
	}

	// ...and still serve a fresh client.
	client, err := DialWearable(agent.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	got, err := client.RequestRecording(2 * time.Second)
	if err != nil {
		t.Fatalf("agent stopped serving after a reset: %v", err)
	}
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("recording = %v", got)
	}
	if len(reported) == 0 {
		t.Error("error handler was never invoked")
	}
}

// TestAgentCleanDisconnectNotCounted verifies a polite client close is not
// treated as a failure.
func TestAgentCleanDisconnectNotCounted(t *testing.T) {
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return []float64{1}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	client, err := DialWearable(agent.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestRecording(time.Second); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	time.Sleep(20 * time.Millisecond)
	if n := agent.ConnErrors(); n != 0 {
		t.Errorf("clean disconnect counted as %d errors (last: %v)", n, agent.LastConnError())
	}
}

func TestRequestRecordingContextCancelDuringBackoff(t *testing.T) {
	// Every dial fails, so the client sits in backoff between attempts; a
	// cancellation mid-sleep must surface promptly as the context error.
	failDial := func(addr string, timeout time.Duration) (net.Conn, error) {
		return nil, fmt.Errorf("dial refused")
	}
	rc, err := NewReliableClient("127.0.0.1:1",
		WithDialFunc(failDial),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 100, BaseDelay: time.Second, MaxDelay: time.Second, Multiplier: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = rc.RequestRecordingContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("cancellation took %v, backoff sleep not interrupted", elapsed)
	}
	// The cancellation wrapper still reports what the transport was doing.
	if err.Error() == context.Canceled.Error() {
		t.Errorf("err %q lost the last transport error", err)
	}
}

func TestRequestRecordingContextDeadlineBoundsAttempts(t *testing.T) {
	var dials int
	failDial := func(addr string, timeout time.Duration) (net.Conn, error) {
		dials++
		return nil, fmt.Errorf("dial refused")
	}
	rc, err := NewReliableClient("127.0.0.1:1",
		WithDialFunc(failDial),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 1000, BaseDelay: 5 * time.Millisecond, MaxDelay: 5 * time.Millisecond, Multiplier: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = rc.RequestRecordingContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if dials >= 1000 {
		t.Errorf("deadline did not bound attempts: %d dials", dials)
	}
}

func TestRequestRecordingContextBackgroundMatchesPlain(t *testing.T) {
	want := []float64{4, 5, 6}
	agent, err := NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	rc, err := NewReliableClient(agent.Addr(), WithRetryPolicy(fastPolicy(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	got, err := rc.RequestRecordingContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
}

func TestClipTimeout(t *testing.T) {
	if got := clipTimeout(context.Background(), time.Second); got != time.Second {
		t.Errorf("no deadline: %v, want 1s", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if got := clipTimeout(ctx, time.Hour); got > 10*time.Millisecond || got <= 0 {
		t.Errorf("near deadline: %v, want (0, 10ms]", got)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if got := clipTimeout(expired, time.Hour); got <= 0 {
		t.Errorf("past deadline: %v, must stay positive so the conn deadline fires", got)
	}
}
