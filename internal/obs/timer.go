package obs

import "time"

// StageTimer measures the duration of one pipeline stage (align, segment,
// sensing, ...) into a histogram of seconds. The Start/End pair is the
// span API:
//
//	defer stageAlign.Start().End()
//
// or, when the stage is a region rather than a whole function:
//
//	sp := stageAlign.Start()
//	... stage work ...
//	sp.End()
//
// Span is a value type, so timing a stage allocates nothing; End performs
// one lock-free histogram observation.
type StageTimer struct {
	h *Histogram
}

// Histogram exposes the underlying histogram (seconds).
func (t *StageTimer) Histogram() *Histogram {
	if t == nil {
		return nil
	}
	return t.h
}

// Start opens a span. Starting a nil timer returns a span whose End is a
// no-op.
func (t *StageTimer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{h: t.h, start: time.Now()}
}

// ObserveSince records the elapsed time since start, for callers that
// carry their own time.Time instead of a Span.
func (t *StageTimer) ObserveSince(start time.Time) {
	if t == nil {
		return
	}
	t.h.Observe(time.Since(start).Seconds())
}

// Span is one in-flight stage measurement.
type Span struct {
	h     *Histogram
	start time.Time
}

// End records the span's duration in seconds. End on a zero Span is a
// no-op; calling End twice records twice.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}
