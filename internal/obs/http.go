package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// MetricsHandler serves the registry snapshot as JSON ("application/json",
// pretty-printed: the endpoint is for humans and scrapers alike).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// HealthHandler reports liveness; anything that can serve it is alive.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
}

var publishOnce sync.Once

// PublishExpvar exposes the default registry under the expvar name
// "vibguard", so the standard /debug/vars page carries the pipeline
// metrics next to the runtime's memstats. Safe to call more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("vibguard", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// DebugMux builds the debug endpoint surface served by
// vibguardd -debug-addr:
//
//	/metrics      registry snapshot as JSON
//	/healthz      liveness
//	/debug/vars   expvar (includes the registry under "vibguard")
//	/debug/pprof  CPU/heap/goroutine profiles
func DebugMux(r *Registry) *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/healthz", HealthHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
