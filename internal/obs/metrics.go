package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. All methods are
// lock-free, allocation-free, and safe for concurrent use.
type Counter struct {
	on *atomic.Bool
	v  atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 level that can move both ways (pool sizes, queue
// depths). All methods are lock-free, allocation-free, and safe for
// concurrent use.
type Gauge struct {
	on *atomic.Bool
	v  atomic.Uint64 // float64 bits
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		old := g.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}
