package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: log-linear, subCount linear sub-buckets per
// power of two, covering binary exponents [minExp, maxExp] (math.Frexp
// convention: v = frac * 2^exp, frac in [0.5, 1)). Bucket 0 catches
// underflow (including zero and negative observations, which are clamped),
// the last bucket catches overflow. With subCount = 8 the worst-case
// relative quantization error is 1/16 ≈ 6%, plenty for latency quantiles,
// and the whole histogram is ~4 KiB of fixed memory.
//
// For timer histograms the observed unit is seconds: the range spans
// 2^-41 s (~0.5 ps) to 2^23 s (~97 days), so any realistic span lands in a
// main bucket.
const (
	histSubCount = 8
	histMinExp   = -40
	histMaxExp   = 23
	histOctaves  = histMaxExp - histMinExp + 1
	histBuckets  = histOctaves*histSubCount + 2 // + underflow + overflow
)

// Histogram is a streaming histogram over nonnegative float64 observations
// with quantile export. Observe is lock-free and allocation-free: one
// atomic bucket increment plus CAS updates of sum/min/max on fixed
// storage. Negative observations are clamped to zero.
type Histogram struct {
	on      *atomic.Bool
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-add
	min     atomic.Uint64 // float64 bits
	max     atomic.Uint64 // float64 bits
	buckets [histBuckets]atomic.Uint64
}

func newHistogram(on *atomic.Bool) *Histogram {
	h := &Histogram{on: on}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) { // Frexp(+Inf) = +Inf, 0 — route it to overflow
		return histBuckets - 1
	}
	frac, exp := math.Frexp(v)
	if exp < histMinExp {
		return 0
	}
	if exp > histMaxExp {
		return histBuckets - 1
	}
	sub := int((frac - 0.5) * 2 * histSubCount)
	if sub >= histSubCount { // guard the frac -> 1 float edge
		sub = histSubCount - 1
	}
	return 1 + (exp-histMinExp)*histSubCount + sub
}

// bucketBounds returns the value range [lower, upper) covered by a bucket.
func bucketBounds(i int) (lower, upper float64) {
	switch {
	case i <= 0:
		return 0, math.Ldexp(1, histMinExp-1)
	case i >= histBuckets-1:
		return math.Ldexp(1, histMaxExp), math.Inf(1)
	default:
		o := (i - 1) / histSubCount
		s := (i - 1) % histSubCount
		exp := histMinExp + o
		lower = math.Ldexp(1+float64(s)/histSubCount, exp-1)
		upper = math.Ldexp(1+float64(s+1)/histSubCount, exp-1)
		return lower, upper
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	casAdd(&h.sum, v)
	casMin(&h.min, v)
	casMax(&h.max, v)
}

func casAdd(a *atomic.Uint64, delta float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

func casMin(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts,
// interpolating linearly inside the selected bucket and clamping to the
// observed min/max. It returns 0 for an empty histogram. Quantile reads
// the buckets without a consistent cut, which is fine for monitoring;
// accuracy is bounded by the log-linear bucket width (~6% relative).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	obsMin := math.Float64frombits(h.min.Load())
	obsMax := math.Float64frombits(h.max.Load())
	target := q * float64(total)
	cum := 0.0
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lower, upper := bucketBounds(i)
			if lower < obsMin {
				lower = obsMin
			}
			if upper > obsMax {
				upper = obsMax
			}
			if upper < lower {
				upper = lower
			}
			frac := (target - cum) / n
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return obsMax
}

// HistogramSnapshot is a point-in-time summary shaped for JSON export.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram. An empty histogram reports all
// zeros (never NaN/Inf, so the snapshot always JSON-encodes).
func (h *Histogram) Snapshot() HistogramSnapshot {
	count := h.Count()
	if count == 0 {
		return HistogramSnapshot{}
	}
	sum := h.Sum()
	return HistogramSnapshot{
		Count: count,
		Sum:   sum,
		Min:   math.Float64frombits(h.min.Load()),
		Max:   math.Float64frombits(h.max.Load()),
		Mean:  sum / float64(count),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
	}
}
