// Package obs is the dependency-free observability layer of the defense
// pipeline: counters, gauges, streaming histograms with quantile export,
// and stage timers for pipeline spans, all safe for lock-free concurrent
// use by the parallel scoring workers.
//
// Design constraints (see DESIGN.md section 10):
//
//   - Zero allocations in steady state. Every record call — Counter.Add,
//     Gauge.Set, Histogram.Observe, StageTimer span Start/End — performs
//     only atomic operations on memory allocated at registration time, so
//     instrumentation can stay enabled in production hot paths (the same
//     bar as the internal/dsp kernels, pinned by testing.AllocsPerRun).
//   - Lock-free recording. Registration (cold path) takes a mutex;
//     recording never does. Histograms are fixed log-linear bucket arrays
//     updated with atomic increments, and their float64 sum/min/max are
//     maintained with CAS loops.
//   - No dependencies beyond the standard library, and none outside
//     sync/atomic + math on the hot path.
//
// The process-wide registry is obs.Default(); instrumented packages bind
// their metric handles to it at init. A muted registry (obs.Nop(), or any
// registry after SetEnabled(false)) turns every record call into a cheap
// atomic load + branch, so the library remains usable with observability
// off.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry owns a namespace of metrics. Metric constructors are
// idempotent: asking twice for the same name returns the same handle, so
// packages can bind handles at init without coordination. A registry is
// safe for concurrent use; recording into its metrics is lock-free.
type Registry struct {
	on atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New creates an enabled registry.
func New() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	r.on.Store(true)
	return r
}

// Nop creates a muted registry: metric handles work (and stay zero-alloc)
// but never accumulate, and snapshots are empty of activity. It lets
// library code thread a *Registry unconditionally while keeping
// observability off.
func Nop() *Registry {
	r := New()
	r.on.Store(false)
	return r
}

// defaultRegistry is the process-wide registry instrumented packages bind
// to at init.
var defaultRegistry = New()

// Default returns the process-wide registry. It is enabled from process
// start; call Default().SetEnabled(false) to mute all built-in
// instrumentation.
func Default() *Registry { return defaultRegistry }

// SetEnabled switches recording on or off for every metric of the
// registry. Disabling does not clear accumulated values.
func (r *Registry) SetEnabled(on bool) { r.on.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.on.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{on: &r.on}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{on: &r.on}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(&r.on)
		r.histograms[name] = h
	}
	return h
}

// StageTimer returns a timer over the named histogram (observing seconds),
// creating it on first use. The histogram appears in snapshots under the
// timer's name.
func (r *Registry) StageTimer(name string) *StageTimer {
	return &StageTimer{h: r.Histogram(name)}
}

// Snapshot is a point-in-time copy of every metric of a registry, shaped
// for JSON export (the /metrics endpoint of cmd/vibguardd).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every registered metric. Values are
// read atomically per metric; the snapshot as a whole is not a consistent
// cut across metrics (nor does it need to be for monitoring).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// MetricNames returns the sorted names of every registered metric, for
// tests and debugging.
func (r *Registry) MetricNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
