package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBucketIndexBoundsRoundTrip(t *testing.T) {
	// Every representative value must land in a bucket whose bounds
	// contain it.
	values := []float64{1e-12, 1e-9, 2.5e-7, 1e-3, 0.7, 1, 1.5, 42, 1e6}
	for _, v := range values {
		i := bucketIndex(v)
		lower, upper := bucketBounds(i)
		if v < lower || v >= upper {
			t.Errorf("value %g in bucket %d with bounds [%g, %g)", v, i, lower, upper)
		}
	}
}

func TestBucketIndexEdges(t *testing.T) {
	if i := bucketIndex(0); i != 0 {
		t.Errorf("zero -> bucket %d, want 0 (underflow)", i)
	}
	if i := bucketIndex(-1); i != 0 {
		t.Errorf("negative -> bucket %d, want 0", i)
	}
	if i := bucketIndex(math.NaN()); i != 0 {
		t.Errorf("NaN -> bucket %d, want 0", i)
	}
	if i := bucketIndex(math.Inf(1)); i != histBuckets-1 {
		t.Errorf("+Inf -> bucket %d, want overflow", i)
	}
	if i := bucketIndex(1e300); i != histBuckets-1 {
		t.Errorf("1e300 -> bucket %d, want overflow", i)
	}
	if i := bucketIndex(1e-300); i != 0 {
		t.Errorf("1e-300 -> bucket %d, want underflow", i)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := 1e-11; v < 1e7; v *= 1.07 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucket index not monotone at %g: %d < %d", v, i, prev)
		}
		prev = i
	}
}

// TestQuantileAccuracy draws a seeded log-normal sample (latency-shaped:
// multiplicative spread across decades) and requires the streamed
// quantiles to match the exact empirical quantiles within the log-linear
// bucket resolution (~1/histSubCount relative).
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := New()
	h := r.Histogram("lat")
	const n = 50000
	values := make([]float64, n)
	for i := range values {
		// median e^-7 s ≈ 0.9 ms, sigma one decade-ish.
		v := math.Exp(rng.NormFloat64()*1.2 - 7)
		values[i] = v
		h.Observe(v)
	}
	sort.Float64s(values)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 0.999} {
		exact := values[int(q*float64(n-1))]
		got := h.Quantile(q)
		relErr := math.Abs(got-exact) / exact
		if relErr > 2.0/histSubCount {
			t.Errorf("q=%v: got %g, exact %g (rel err %.3f)", q, got, exact, relErr)
		}
	}
	snap := h.Snapshot()
	if snap.Min != values[0] || snap.Max != values[n-1] {
		t.Errorf("min/max = %g/%g, want %g/%g", snap.Min, snap.Max, values[0], values[n-1])
	}
	exactMean := 0.0
	for _, v := range values {
		exactMean += v
	}
	exactMean /= n
	if math.Abs(snap.Mean-exactMean)/exactMean > 1e-9 {
		t.Errorf("mean = %g, want %g", snap.Mean, exactMean)
	}
}

func TestQuantileExtremesClampToObserved(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	h.Observe(3)
	h.Observe(5)
	h.Observe(7)
	if q := h.Quantile(0); q < 3 {
		t.Errorf("q0 = %v, want >= observed min", q)
	}
	if q := h.Quantile(1); q > 7 {
		t.Errorf("q1 = %v, want <= observed max", q)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := New()
	h := r.Histogram("empty")
	snap := h.Snapshot()
	if snap != (HistogramSnapshot{}) {
		t.Errorf("empty snapshot = %+v, want zero value", snap)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestSingleValueQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("one")
	h.Observe(0.125) // exact power of two: bucket bounds hit it exactly
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0.125 {
			t.Errorf("q%v = %v, want 0.125", q, got)
		}
	}
}
