package obs

import "testing"

// The record calls run inside the scoring hot paths of every pipeline
// stage, so they are pinned at zero allocations per operation — the same
// bar as the internal/dsp kernels. A regression here means a heap escape
// crept into the instrumentation and the stage timers can no longer stay
// enabled in production.

func TestCounterIncZeroAlloc(t *testing.T) {
	c := New().Counter("c")
	if avg := testing.AllocsPerRun(100, func() { c.Inc() }); avg != 0 {
		t.Errorf("Counter.Inc allocates %v per op, want 0", avg)
	}
}

func TestGaugeSetZeroAlloc(t *testing.T) {
	g := New().Gauge("g")
	if avg := testing.AllocsPerRun(100, func() { g.Set(1.5); g.Add(0.25) }); avg != 0 {
		t.Errorf("Gauge.Set/Add allocates %v per op, want 0", avg)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := New().Histogram("h")
	v := 1e-3
	if avg := testing.AllocsPerRun(100, func() { h.Observe(v); v *= 1.01 }); avg != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", avg)
	}
}

func TestStageTimerSpanZeroAlloc(t *testing.T) {
	st := New().StageTimer("t")
	if avg := testing.AllocsPerRun(100, func() { st.Start().End() }); avg != 0 {
		t.Errorf("StageTimer span allocates %v per op, want 0", avg)
	}
}

func TestMutedRecordZeroAlloc(t *testing.T) {
	r := Nop()
	c := r.Counter("c")
	h := r.Histogram("h")
	st := r.StageTimer("t")
	if avg := testing.AllocsPerRun(100, func() { c.Inc(); h.Observe(1); st.Start().End() }); avg != 0 {
		t.Errorf("muted records allocate %v per op, want 0", avg)
	}
}
