package obs

import (
	"sync"
	"testing"
)

func TestRegistryHandlesAreIdempotent(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not idempotent")
	}
	if r.StageTimer("t").Histogram() != r.StageTimer("t").Histogram() {
		t.Error("StageTimer histograms not idempotent")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var st *StageTimer
	c.Inc()
	g.Set(1)
	h.Observe(1)
	st.Start().End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles should read zero")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("nil quantile = %v", q)
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := Nop()
	c := r.Counter("c")
	h := r.Histogram("h")
	g := r.Gauge("g")
	c.Add(10)
	h.Observe(1)
	g.Set(3)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Error("muted registry accumulated values")
	}
	r.SetEnabled(true)
	c.Inc()
	h.Observe(2)
	if c.Value() != 1 || h.Count() != 1 {
		t.Error("re-enabled registry should record")
	}
	r.SetEnabled(false)
	c.Inc()
	if c.Value() != 1 {
		t.Error("disable should mute existing handles")
	}
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from
// many goroutines; under -race this is the lock-free-correctness gate,
// and the final counts must be exact.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	st := r.StageTimer("t")
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%97) + 0.5)
				st.Start().End()
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent reads must be safe too
					_ = h.Quantile(0.9)
				}
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	if got := st.Histogram().Count(); got != total {
		t.Errorf("timer count = %d, want %d", got, total)
	}
	wantSum := float64(0)
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i%97) + 0.5
	}
	wantSum *= workers
	if got := h.Sum(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("histogram sum = %v, want ~%v", got, wantSum)
	}
}

func TestSnapshotCoversAllMetrics(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(1)
	r.StageTimer("t").Start().End()
	snap := r.Snapshot()
	if snap.Counters["c"] != 3 {
		t.Errorf("counter snapshot = %d", snap.Counters["c"])
	}
	if snap.Gauges["g"] != 7 {
		t.Errorf("gauge snapshot = %v", snap.Gauges["g"])
	}
	if snap.Histograms["h"].Count != 1 {
		t.Errorf("histogram snapshot = %+v", snap.Histograms["h"])
	}
	if snap.Histograms["t"].Count != 1 {
		t.Errorf("timer snapshot = %+v", snap.Histograms["t"])
	}
	names := r.MetricNames()
	if len(names) != 4 {
		t.Errorf("MetricNames = %v", names)
	}
}

func TestStageTimerRecordsPositiveSpans(t *testing.T) {
	r := New()
	st := r.StageTimer("stage")
	for i := 0; i < 10; i++ {
		sp := st.Start()
		busyWork()
		sp.End()
	}
	h := st.Histogram()
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() <= 0 {
		t.Errorf("sum = %v, want > 0", h.Sum())
	}
	snap := h.Snapshot()
	if snap.Min < 0 || snap.Max < snap.Min || snap.P50 < snap.Min || snap.P50 > snap.Max {
		t.Errorf("inconsistent snapshot %+v", snap)
	}
}

var busySink float64

func busyWork() {
	for i := 0; i < 100; i++ {
		busySink += float64(i)
	}
}
