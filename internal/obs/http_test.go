package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
)

func TestMetricsHandlerServesParsableSnapshot(t *testing.T) {
	r := New()
	r.Counter("requests").Add(2)
	r.StageTimer("stage.align").Start().End()
	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics output does not parse: %v", err)
	}
	if snap.Counters["requests"] != 2 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Histograms["stage.align"].Count != 1 {
		t.Errorf("histograms = %v", snap.Histograms)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/healthz", "/debug/vars", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", path)
		}
	}

	// /healthz and /debug/vars must be JSON too.
	for _, path := range []string{"/healthz", "/debug/vars"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Errorf("%s does not parse as JSON: %v", path, err)
		}
	}
}

func TestPublishExpvarIsIdempotent(t *testing.T) {
	PublishExpvar()
	PublishExpvar() // a second call must not panic (expvar.Publish would)
}
