package eval

import (
	"math"
	"testing"

	"vibguard/internal/attack"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/selection"
)

// TestCorpusBuilderCoversEveryKind is the eval half of the exhaustiveness
// satellite: the generator must produce a well-formed sample for every
// kind in attack.Kinds() — an eighth kind added to the enum without a
// switch case in Generator.Attack fails here via the default-case error —
// and BuildDataset with no Kinds restriction must cover the same set.
func TestCorpusBuilderCoversEveryKind(t *testing.T) {
	g, err := NewGenerator(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cond := DefaultCondition()
	for _, kind := range attack.Kinds() {
		s, err := g.Attack(kind, 0, 0, cond)
		if err != nil {
			t.Fatalf("%v: corpus builder cannot generate it: %v", kind, err)
		}
		if !s.IsAttack || s.AttackKind != kind {
			t.Errorf("%v: bad labels", kind)
		}
		if len(s.VARec) == 0 || len(s.WearRec) <= len(s.VARec) {
			t.Errorf("%v: recording lengths %d/%d", kind, len(s.VARec), len(s.WearRec))
		}
		if s.Utterance == nil {
			t.Errorf("%v: missing source utterance (oracle spans need it)", kind)
		}
	}

	ds, err := BuildDataset(DatasetConfig{
		Participants:    2,
		CommandsPerUser: 1,
		AttacksPerKind:  1,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Attacks) != len(attack.Kinds()) {
		t.Fatalf("unrestricted dataset covers %d kinds, Kinds() declares %d", len(ds.Attacks), len(attack.Kinds()))
	}
	for _, kind := range attack.Kinds() {
		if len(ds.Attacks[kind]) != 1 {
			t.Errorf("%v: %d samples in unrestricted dataset, want 1", kind, len(ds.Attacks[kind]))
		}
	}
}

// buildAdaptiveSet builds a small adaptive-only dataset at a fixed seed.
func buildAdaptiveSet(t *testing.T, seed int64) *Dataset {
	t.Helper()
	ds, err := BuildDataset(DatasetConfig{
		Participants:    2,
		CommandsPerUser: 1,
		AttacksPerKind:  3,
		Kinds:           []attack.Kind{attack.Adaptive},
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestAdaptiveCorpusSeedDeterministic is the eval half of the determinism
// satellite: building the adaptive-adversary corpus twice from the same
// seed yields bit-identical recordings, and scoring it with the parallel
// engine is bit-identical for any worker count. Different seeds produce
// different corpora.
func TestAdaptiveCorpusSeedDeterministic(t *testing.T) {
	ds1 := buildAdaptiveSet(t, 11)
	ds2 := buildAdaptiveSet(t, 11)
	a1, a2 := ds1.Attacks[attack.Adaptive], ds2.Attacks[attack.Adaptive]
	if len(a1) != len(a2) {
		t.Fatalf("sample counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		for _, pair := range []struct {
			name   string
			x1, x2 []float64
		}{{"va", a1[i].VARec, a2[i].VARec}, {"wear", a1[i].WearRec, a2[i].WearRec}} {
			if len(pair.x1) != len(pair.x2) {
				t.Fatalf("sample %d %s: lengths differ", i, pair.name)
			}
			for j := range pair.x1 {
				if math.Float64bits(pair.x1[j]) != math.Float64bits(pair.x2[j]) {
					t.Fatalf("sample %d %s differs at %d", i, pair.name, j)
				}
			}
		}
	}

	// Worker-count invariance on the adaptive samples.
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	var scores [][]float64
	for _, workers := range []int{1, 4} {
		sc, err := NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 99, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.ScoreAll(a1)
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, got)
	}
	for i := range scores[0] {
		if math.Float64bits(scores[0][i]) != math.Float64bits(scores[1][i]) {
			t.Errorf("score %d differs across worker counts: %v vs %v", i, scores[0][i], scores[1][i])
		}
	}

	// A different seed must explore differently.
	ds3 := buildAdaptiveSet(t, 12)
	a3 := ds3.Attacks[attack.Adaptive]
	identical := len(a1[0].VARec) == len(a3[0].VARec)
	if identical {
		for j := range a1[0].VARec {
			if math.Float64bits(a1[0].VARec[j]) != math.Float64bits(a3[0].VARec[j]) {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Error("different seeds produced an identical adaptive corpus")
	}
}
