package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeROCErrors(t *testing.T) {
	if _, err := ComputeROC(nil, []float64{1}); err == nil {
		t.Error("empty legit scores should error")
	}
	if _, err := ComputeROC([]float64{1}, nil); err == nil {
		t.Error("empty attack scores should error")
	}
}

func TestPerfectSeparation(t *testing.T) {
	legit := []float64{0.8, 0.9, 0.95}
	attacks := []float64{0.0, 0.1, 0.2}
	roc, err := ComputeROC(legit, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); math.Abs(auc-1) > 0.01 {
		t.Errorf("AUC = %v, want ~1", auc)
	}
	if eer := roc.EER(); eer > 0.01 {
		t.Errorf("EER = %v, want ~0", eer)
	}
	th := roc.EERThreshold()
	if th <= 0.2 || th >= 0.8 {
		t.Errorf("EER threshold = %v, want inside the gap", th)
	}
}

func TestChanceLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	legit := make([]float64, 500)
	attacks := make([]float64, 500)
	for i := range legit {
		legit[i] = rng.Float64()*2 - 1
		attacks[i] = rng.Float64()*2 - 1
	}
	roc, err := ComputeROC(legit, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); math.Abs(auc-0.5) > 0.06 {
		t.Errorf("AUC = %v, want ~0.5 for identical distributions", auc)
	}
	if eer := roc.EER(); math.Abs(eer-0.5) > 0.06 {
		t.Errorf("EER = %v, want ~0.5", eer)
	}
}

func TestInvertedDetector(t *testing.T) {
	// Attacks scoring HIGHER than legit: AUC below 0.5.
	legit := []float64{0.1, 0.15, 0.2}
	attacks := []float64{0.8, 0.85, 0.9}
	roc, err := ComputeROC(legit, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); auc > 0.1 {
		t.Errorf("AUC = %v, want ~0 for inverted detector", auc)
	}
}

// Property: AUC and EER are bounded, and the ROC is monotone in threshold.
func TestROCProperties(t *testing.T) {
	f := func(legitRaw, attackRaw []float64) bool {
		if len(legitRaw) == 0 || len(attackRaw) == 0 {
			return true
		}
		clamp := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, v := range xs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				out[i] = math.Mod(v, 1)
			}
			return out
		}
		legit, attacks := clamp(legitRaw), clamp(attackRaw)
		roc, err := ComputeROC(legit, attacks)
		if err != nil {
			return false
		}
		auc, eer := roc.AUC(), roc.EER()
		if auc < -1e-9 || auc > 1+1e-9 || eer < -1e-9 || eer > 1+1e-9 {
			return false
		}
		prevTDR, prevFDR := -1.0, -1.0
		for _, p := range roc.Points {
			if p.TDR < prevTDR || p.FDR < prevFDR {
				return false // rates must be non-decreasing in threshold
			}
			prevTDR, prevFDR = p.TDR, p.FDR
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize("x", []float64{0.9, 0.8}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || s.LegitCount != 2 || s.AttackCount != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.AUC < 0.99 {
		t.Errorf("AUC = %v", s.AUC)
	}
	if _, err := Summarize("x", nil, nil); err == nil {
		t.Error("empty scores should error")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9}
	if f := fractionBelow(xs, 0.5); f != 1.0/3 {
		t.Errorf("fractionBelow = %v", f)
	}
	if f := fractionBelow(xs, 2); f != 1 {
		t.Errorf("fractionBelow above all = %v", f)
	}
	if f := fractionBelow(xs, -2); f != 0 {
		t.Errorf("fractionBelow below all = %v", f)
	}
}
