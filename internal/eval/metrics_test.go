package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeROCErrors(t *testing.T) {
	if _, err := ComputeROC(nil, []float64{1}); err == nil {
		t.Error("empty legit scores should error")
	}
	if _, err := ComputeROC([]float64{1}, nil); err == nil {
		t.Error("empty attack scores should error")
	}
}

func TestPerfectSeparation(t *testing.T) {
	legit := []float64{0.8, 0.9, 0.95}
	attacks := []float64{0.0, 0.1, 0.2}
	roc, err := ComputeROC(legit, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); math.Abs(auc-1) > 0.01 {
		t.Errorf("AUC = %v, want ~1", auc)
	}
	if eer := roc.EER(); eer > 0.01 {
		t.Errorf("EER = %v, want ~0", eer)
	}
	th := roc.EERThreshold()
	if th <= 0.2 || th >= 0.8 {
		t.Errorf("EER threshold = %v, want inside the gap", th)
	}
}

func TestChanceLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	legit := make([]float64, 500)
	attacks := make([]float64, 500)
	for i := range legit {
		legit[i] = rng.Float64()*2 - 1
		attacks[i] = rng.Float64()*2 - 1
	}
	roc, err := ComputeROC(legit, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); math.Abs(auc-0.5) > 0.06 {
		t.Errorf("AUC = %v, want ~0.5 for identical distributions", auc)
	}
	if eer := roc.EER(); math.Abs(eer-0.5) > 0.06 {
		t.Errorf("EER = %v, want ~0.5", eer)
	}
}

func TestInvertedDetector(t *testing.T) {
	// Attacks scoring HIGHER than legit: AUC below 0.5.
	legit := []float64{0.1, 0.15, 0.2}
	attacks := []float64{0.8, 0.85, 0.9}
	roc, err := ComputeROC(legit, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); auc > 0.1 {
		t.Errorf("AUC = %v, want ~0 for inverted detector", auc)
	}
}

// Property: AUC and EER are bounded, and the ROC is monotone in threshold.
func TestROCProperties(t *testing.T) {
	f := func(legitRaw, attackRaw []float64) bool {
		if len(legitRaw) == 0 || len(attackRaw) == 0 {
			return true
		}
		clamp := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, v := range xs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				out[i] = math.Mod(v, 1)
			}
			return out
		}
		legit, attacks := clamp(legitRaw), clamp(attackRaw)
		roc, err := ComputeROC(legit, attacks)
		if err != nil {
			return false
		}
		auc, eer := roc.AUC(), roc.EER()
		if auc < -1e-9 || auc > 1+1e-9 || eer < -1e-9 || eer > 1+1e-9 {
			return false
		}
		prevTDR, prevFDR := -1.0, -1.0
		for _, p := range roc.Points {
			if p.TDR < prevTDR || p.FDR < prevFDR {
				return false // rates must be non-decreasing in threshold
			}
			prevTDR, prevFDR = p.TDR, p.FDR
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize("x", []float64{0.9, 0.8}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || s.LegitCount != 2 || s.AttackCount != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.AUC < 0.99 {
		t.Errorf("AUC = %v", s.AUC)
	}
	if _, err := Summarize("x", nil, nil); err == nil {
		t.Error("empty scores should error")
	}
}

// TestROCThresholdGridIsExact pins the threshold grid to exact hundredths:
// the old additive form (-1 + i*0.01) accumulated float error, so grid
// points drifted off the representable hundredths and scores lying exactly
// on a grid value could land on the wrong side of the strict < comparison.
func TestROCThresholdGridIsExact(t *testing.T) {
	roc, err := ComputeROC([]float64{0.5}, []float64{-0.5})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(roc.Points); n != 201 {
		t.Fatalf("got %d grid points, want 201", n)
	}
	for i, p := range roc.Points {
		want := float64(i-100) / 100
		if p.Threshold != want {
			t.Errorf("point %d: threshold %v, want exactly %v", i, p.Threshold, want)
		}
	}
	if roc.Points[0].Threshold != -1 || roc.Points[100].Threshold != 0 || roc.Points[200].Threshold != 1 {
		t.Error("grid endpoints drifted")
	}
}

// TestROCScoresAtGridThresholds covers scores lying exactly on grid
// thresholds, including a perfect Pearson score of 1.0: with strict <
// tie handling, a score equal to the threshold must NOT count as below
// it at that grid point, and must count at the next one up.
func TestROCScoresAtGridThresholds(t *testing.T) {
	legit := []float64{1.0, 0.5} // perfect Pearson score and a mid-grid tie
	attacks := []float64{-0.5, 0.25}
	roc, err := ComputeROC(legit, attacks)
	if err != nil {
		t.Fatal(err)
	}
	at := func(th float64) ROCPoint {
		for _, p := range roc.Points {
			if p.Threshold == th {
				return p
			}
		}
		t.Fatalf("threshold %v not on grid", th)
		return ROCPoint{}
	}
	// A perfect score of 1.0 is never strictly below the top threshold.
	if p := at(1.0); p.FDR != 0.5 { // only the 0.5 legit score is below 1.0
		t.Errorf("FDR at th=1.0 = %v, want 0.5 (score 1.0 is not < 1.0)", p.FDR)
	}
	// Exactly at 0.5 the tied legit score is not yet below...
	if p := at(0.5); p.FDR != 0 {
		t.Errorf("FDR at th=0.5 = %v, want 0", p.FDR)
	}
	// ...and one grid step up it is.
	if p := at(0.51); p.FDR != 0.5 {
		t.Errorf("FDR at th=0.51 = %v, want 0.5", p.FDR)
	}
	// Same on the attack side: -0.5 flips between th=-0.5 and th=-0.49.
	if p := at(-0.5); p.TDR != 0 {
		t.Errorf("TDR at th=-0.5 = %v, want 0", p.TDR)
	}
	if p := at(-0.49); p.TDR != 0.5 {
		t.Errorf("TDR at th=-0.49 = %v, want 0.5", p.TDR)
	}
	if p := at(0.25); p.TDR != 0.5 {
		t.Errorf("TDR at th=0.25 = %v, want 0.5 (0.25 not < 0.25)", p.TDR)
	}
	if p := at(0.26); p.TDR != 1 {
		t.Errorf("TDR at th=0.26 = %v, want 1", p.TDR)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9}
	if f := fractionBelow(xs, 0.5); f != 1.0/3 {
		t.Errorf("fractionBelow = %v", f)
	}
	if f := fractionBelow(xs, 2); f != 1 {
		t.Errorf("fractionBelow above all = %v", f)
	}
	if f := fractionBelow(xs, -2); f != 0 {
		t.Errorf("fractionBelow below all = %v", f)
	}
}
