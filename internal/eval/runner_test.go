package eval

import (
	"testing"

	"vibguard/internal/attack"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/selection"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := BuildDataset(DatasetConfig{
		Participants:    4,
		CommandsPerUser: 2,
		AttacksPerKind:  3,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildDatasetShape(t *testing.T) {
	ds := smallDataset(t)
	if len(ds.Legit) != 8 {
		t.Errorf("legit samples = %d, want 8", len(ds.Legit))
	}
	if len(ds.Attacks) != len(attack.Kinds()) {
		t.Errorf("attack kinds = %d, want %d", len(ds.Attacks), len(attack.Kinds()))
	}
	for kind, samples := range ds.Attacks {
		if len(samples) != 3 {
			t.Errorf("%v: %d samples, want 3", kind, len(samples))
		}
		for i, s := range samples {
			if !s.IsAttack || s.AttackKind != kind {
				t.Errorf("%v[%d]: bad labels", kind, i)
			}
			if len(s.VARec) == 0 || len(s.WearRec) <= len(s.VARec) {
				t.Errorf("%v[%d]: recording lengths %d/%d (wearable should carry the network-delay lead)",
					kind, i, len(s.VARec), len(s.WearRec))
			}
			if s.LeadSamples <= 0 {
				t.Errorf("%v[%d]: missing lead context", kind, i)
			}
		}
	}
	for i, s := range ds.Legit {
		if s.IsAttack {
			t.Errorf("legit[%d] labeled as attack", i)
		}
		if s.Utterance == nil {
			t.Errorf("legit[%d] missing utterance", i)
		}
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	if _, err := BuildDataset(DatasetConfig{Participants: 1, CommandsPerUser: 1}); err == nil {
		t.Error("single participant should error")
	}
	if _, err := BuildDataset(DatasetConfig{Participants: 2, CommandsPerUser: 0}); err == nil {
		t.Error("zero commands should error")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(1, 1); err == nil {
		t.Error("single participant should error")
	}
	gen, err := NewGenerator(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Voices()) != 3 || len(gen.Commands()) != 20 {
		t.Error("generator accessors wrong")
	}
	if _, err := gen.Legit(5, 0, DefaultCondition()); err == nil {
		t.Error("out-of-range voice should error")
	}
	if _, err := gen.Attack(attack.Replay, 9, 0, DefaultCondition()); err == nil {
		t.Error("out-of-range victim should error")
	}
	if _, err := gen.Attack(attack.Kind(99), 0, 0, DefaultCondition()); err == nil {
		t.Error("unknown attack kind should error")
	}
}

func TestOracleProviderShiftsSpans(t *testing.T) {
	ds := smallDataset(t)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	s := ds.Legit[0]
	spans, err := provider.SpansFor(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	// Spans must start at or after the lead context.
	if spans[0].Start < s.LeadSamples {
		t.Errorf("span start %d before lead %d", spans[0].Start, s.LeadSamples)
	}
	// And fit inside the recording.
	last := spans[len(spans)-1]
	if last.End > len(s.VARec) {
		t.Errorf("span end %d beyond recording %d", last.End, len(s.VARec))
	}
	if _, err := provider.SpansFor(&Sample{}); err == nil {
		t.Error("sample without utterance should error")
	}
}

func TestScorerSeparatesClasses(t *testing.T) {
	ds := smallDataset(t)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	sc, err := NewScorer(detector.MethodFull, device.NewFossilGen5(), provider, 7)
	if err != nil {
		t.Fatal(err)
	}
	legit, err := sc.ScoreAll(ds.Legit)
	if err != nil {
		t.Fatal(err)
	}
	attacks, err := sc.ScoreAll(ds.Attacks[attack.Replay])
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(xs []float64) float64 {
		sum := 0.0
		for _, v := range xs {
			sum += v
		}
		return sum / float64(len(xs))
	}
	if meanOf(legit) <= meanOf(attacks) {
		t.Errorf("legit mean %v not above attack mean %v", meanOf(legit), meanOf(attacks))
	}
}

func TestEvaluateArmsOrder(t *testing.T) {
	ds := smallDataset(t)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	sums, err := EvaluateArms(ds, ds.Attacks[attack.Replay], device.NewFossilGen5(), provider, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("arms = %d", len(sums))
	}
	wantNames := []string{"audio-domain baseline", "vibration-domain baseline", "our defense system"}
	for i, s := range sums {
		if s.Name != wantNames[i] {
			t.Errorf("arm %d = %q, want %q", i, s.Name, wantNames[i])
		}
		if s.AUC < 0 || s.AUC > 1 {
			t.Errorf("arm %d AUC = %v", i, s.AUC)
		}
	}
}

func TestMethodArms(t *testing.T) {
	arms := MethodArms()
	if len(arms) != 3 || arms[2] != detector.MethodFull {
		t.Errorf("MethodArms = %v", arms)
	}
}
