package eval

import (
	"fmt"
	"math/rand"

	"vibguard/internal/attack"
	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/segment"
	"vibguard/internal/sensing"
)

// SpanProvider yields effective-phoneme spans for a sample. The oracle
// provider uses ground-truth alignments; the BRNN provider runs the
// learned detector of Section V-B on the VA recording.
type SpanProvider interface {
	SpansFor(s *Sample) ([]segment.Span, error)
}

// OracleProvider derives spans from the sample's ground-truth alignment.
type OracleProvider struct {
	// Selected is the barrier-effect-sensitive phoneme set.
	Selected map[string]bool
}

var _ SpanProvider = (*OracleProvider)(nil)

// SpansFor returns the aligned selected-phoneme spans, shifted by the
// recording's lead-in context.
func (p *OracleProvider) SpansFor(s *Sample) ([]segment.Span, error) {
	if s.Utterance == nil {
		return nil, fmt.Errorf("eval: sample has no utterance for oracle spans")
	}
	spans := segment.OracleSpans(s.Utterance, p.Selected)
	for i := range spans {
		spans[i].Start += s.LeadSamples
		spans[i].End += s.LeadSamples
	}
	return spans, nil
}

// BRNNProvider runs the trained phoneme detector on the VA recording.
type BRNNProvider struct {
	Detector *segment.Detector
}

var _ SpanProvider = (*BRNNProvider)(nil)

// SpansFor detects effective phonemes in the VA recording.
func (p *BRNNProvider) SpansFor(s *Sample) ([]segment.Span, error) {
	frames, err := p.Detector.DetectFrames(s.VARec)
	if err != nil {
		return nil, err
	}
	return p.Detector.Spans(frames), nil
}

// Dataset is a collection of labeled samples.
type Dataset struct {
	// Legit holds the legitimate (no attack) samples.
	Legit []*Sample
	// Attacks maps each attack kind to its samples.
	Attacks map[attack.Kind][]*Sample
}

// DatasetConfig sizes a dataset build.
type DatasetConfig struct {
	// Participants in the voice pool (the paper recruits 20).
	Participants int
	// CommandsPerUser spoken by each legitimate participant.
	CommandsPerUser int
	// AttacksPerKind is the number of attack samples per attack type.
	AttacksPerKind int
	// Kinds restricts the attack kinds (nil means all four).
	Kinds []attack.Kind
	// Conditions to cycle through (nil means the default condition).
	Conditions []Condition
	// Seed drives all randomness.
	Seed int64
}

// DefaultDatasetConfig returns a medium-size configuration suitable for
// the figure reproductions.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		Participants:    20,
		CommandsPerUser: 5,
		AttacksPerKind:  60,
		Seed:            1,
	}
}

// BuildDataset generates a dataset.
func BuildDataset(cfg DatasetConfig) (*Dataset, error) {
	if cfg.Participants < 2 || cfg.CommandsPerUser <= 0 || cfg.AttacksPerKind < 0 {
		return nil, fmt.Errorf("eval: invalid dataset config %+v", cfg)
	}
	gen, err := NewGenerator(cfg.Participants, cfg.Seed)
	if err != nil {
		return nil, err
	}
	conditions := cfg.Conditions
	if len(conditions) == 0 {
		conditions = []Condition{DefaultCondition()}
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = attack.Kinds()
	}
	ds := &Dataset{Attacks: make(map[attack.Kind][]*Sample, len(kinds))}
	condIdx := 0
	nextCond := func() Condition {
		c := conditions[condIdx%len(conditions)]
		condIdx++
		return c
	}
	for v := 0; v < cfg.Participants; v++ {
		for c := 0; c < cfg.CommandsPerUser; c++ {
			s, err := gen.Legit(v, v*cfg.CommandsPerUser+c, nextCond())
			if err != nil {
				return nil, err
			}
			ds.Legit = append(ds.Legit, s)
		}
	}
	for _, kind := range kinds {
		for i := 0; i < cfg.AttacksPerKind; i++ {
			victim := i % cfg.Participants
			s, err := gen.Attack(kind, victim, i, nextCond())
			if err != nil {
				return nil, err
			}
			ds.Attacks[kind] = append(ds.Attacks[kind], s)
		}
	}
	return ds, nil
}

// switchSegmenter adapts a per-sample SpanProvider to the detector's
// Segmenter interface; Scorer points it at the current sample before each
// score call.
type switchSegmenter struct {
	provider SpanProvider
	current  *Sample
}

var _ detector.Segmenter = (*switchSegmenter)(nil)

func (s *switchSegmenter) EffectiveSpans([]float64) ([]segment.Span, error) {
	if s.current == nil {
		return nil, fmt.Errorf("eval: no current sample")
	}
	return s.provider.SpansFor(s.current)
}

// Scorer scores datasets with one detection method through the full
// defense pipeline (synchronization included).
type Scorer struct {
	defense *core.Defense
	sw      *switchSegmenter
	rng     *rand.Rand
}

// NewScorer builds a scorer for one method. The provider is required for
// MethodFull and ignored otherwise.
func NewScorer(method detector.Method, w *device.Wearable, provider SpanProvider, seed int64) (*Scorer, error) {
	sw := &switchSegmenter{provider: provider}
	cfg := core.DefaultConfig(w, sw)
	cfg.Method = method
	defense, err := core.NewDefense(cfg)
	if err != nil {
		return nil, err
	}
	return &Scorer{defense: defense, sw: sw, rng: rand.New(rand.NewSource(seed))}, nil
}

// NewScorerWithSensing builds a scorer whose vibration-domain sensing
// configuration is modified by mutate (nil means defaults). Used by the
// ablation benchmarks.
func NewScorerWithSensing(method detector.Method, w *device.Wearable, provider SpanProvider, seed int64, mutate func(*sensing.Config)) (*Scorer, error) {
	sw := &switchSegmenter{provider: provider}
	cfg := core.DefaultConfig(w, sw)
	cfg.Method = method
	if mutate != nil {
		mutate(&cfg.Sensing)
	}
	defense, err := core.NewDefense(cfg)
	if err != nil {
		return nil, err
	}
	return &Scorer{defense: defense, sw: sw, rng: rand.New(rand.NewSource(seed))}, nil
}

// EvaluateWithoutSync scores the dataset with the Eq. (5) synchronization
// disabled (zero maximum lag), quantifying how much the cross-correlation
// alignment contributes: the wearable's 50-150 ms network-delay offset is
// left in place.
func EvaluateWithoutSync(ds *Dataset, attackSamples []*Sample, w *device.Wearable, provider SpanProvider, seed int64) (Summary, error) {
	sw := &switchSegmenter{provider: provider}
	cfg := core.DefaultConfig(w, sw)
	cfg.MaxSyncLagSeconds = 0
	defense, err := core.NewDefense(cfg)
	if err != nil {
		return Summary{}, err
	}
	sc := &Scorer{defense: defense, sw: sw, rng: rand.New(rand.NewSource(seed))}
	legit, err := sc.ScoreAll(ds.Legit)
	if err != nil {
		return Summary{}, err
	}
	attacks, err := sc.ScoreAll(attackSamples)
	if err != nil {
		return Summary{}, err
	}
	return Summarize("no-sync ablation", legit, attacks)
}

// Score runs the pipeline on one sample.
func (sc *Scorer) Score(s *Sample) (float64, error) {
	sc.sw.current = s
	return sc.defense.Score(s.VARec, s.WearRec, sc.rng)
}

// ScoreAll scores a slice of samples.
func (sc *Scorer) ScoreAll(samples []*Sample) ([]float64, error) {
	out := make([]float64, 0, len(samples))
	for i, s := range samples {
		score, err := sc.Score(s)
		if err != nil {
			return nil, fmt.Errorf("eval: sample %d: %w", i, err)
		}
		out = append(out, score)
	}
	return out, nil
}

// MethodArm names the three detector arms of every figure, in the order
// the paper plots them.
func MethodArms() []detector.Method {
	return []detector.Method{detector.MethodAudio, detector.MethodVibration, detector.MethodFull}
}

// EvaluateArms scores the dataset's legit samples and the given attack
// samples with all three methods and returns one summary per arm.
func EvaluateArms(ds *Dataset, attackSamples []*Sample, w *device.Wearable, provider SpanProvider, seed int64) ([]Summary, error) {
	summaries := make([]Summary, 0, 3)
	for _, method := range MethodArms() {
		sc, err := NewScorer(method, w, provider, seed)
		if err != nil {
			return nil, err
		}
		legit, err := sc.ScoreAll(ds.Legit)
		if err != nil {
			return nil, err
		}
		attacks, err := sc.ScoreAll(attackSamples)
		if err != nil {
			return nil, err
		}
		s, err := Summarize(method.String(), legit, attacks)
		if err != nil {
			return nil, err
		}
		summaries = append(summaries, s)
	}
	return summaries, nil
}
